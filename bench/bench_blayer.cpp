// Figure 5: variable boundary-layer heights providing a smooth transition
// to the isotropic region.
//
// Reproduced as the distribution of per-ray layer counts and final heights
// along the main element, for each growth function. The paper's picture --
// heights shrinking where the surface spacing is fine (leading edge) and
// near truncations, growing where spacing is coarse -- appears as the
// height histogram and the height-vs-arclength series.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "blayer/boundary_layer.hpp"

using namespace aero;

int main() {
  const AirfoilConfig config = make_three_element(300);

  for (const auto& [name, kind, rate] :
       {std::tuple{"geometric", GrowthKind::kGeometric, 1.2},
        std::tuple{"polynomial", GrowthKind::kPolynomial, 1.0},
        std::tuple{"adaptive", GrowthKind::kAdaptive, 1.25}}) {
    BoundaryLayerOptions opts;
    opts.growth = {kind, 3e-4, rate};
    opts.max_layers = 40;
    const BoundaryLayer bl = build_boundary_layer(config, opts);

    std::vector<int> layers = bl.layers_per_ray;
    std::sort(layers.begin(), layers.end());
    const double mean =
        std::accumulate(layers.begin(), layers.end(), 0.0) / layers.size();
    std::printf("\ngrowth=%s: rays=%zu points=%zu\n", name, layers.size(),
                bl.points.size());
    std::printf("  layers per ray: min=%d p25=%d median=%d p75=%d max=%d "
                "mean=%.1f\n",
                layers.front(), layers[layers.size() / 4],
                layers[layers.size() / 2], layers[3 * layers.size() / 4],
                layers.back(), mean);

    // Histogram of final boundary-layer heights (Figure 5's variability).
    std::vector<double> heights;
    for (const int l : bl.layers_per_ray) {
      heights.push_back(opts.growth.height(l));
    }
    std::sort(heights.begin(), heights.end());
    std::printf("  final height:  min=%.5f median=%.5f max=%.5f\n",
                heights.front(), heights[heights.size() / 2],
                heights.back());
    const double ratio = heights.back() / heights[heights.size() / 2];
    std::printf("  height variability (max/median): %.1fx; truncated-to-zero "
                "rays: %zu  [paper Fig 5: strongly variable heights]\n",
                ratio,
                static_cast<std::size_t>(std::count(layers.begin(),
                                                    layers.end(), 0)));
  }
  return 0;
}
