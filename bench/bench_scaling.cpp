// Figures 11 & 12: strong scalability and efficiency up to 256 processes.
//
// Paper: fixed 172.7M-triangle mesh on a 32-node / 256-core FDR-Infiniband
// cluster; speedup ~102 at 128 ranks (80% efficiency), ~180 at 256 ranks
// (~70% efficiency).
//
// Here: the pipeline runs for real on this machine to measure every task's
// sequential cost and transfer size, then the discrete-event cluster model
// replays the task graph through the work-stealing protocol for each rank
// count. Granularity matches the paper's coarse partitioner: enough
// subdomains for good load balancing at 256 ranks (several per rank).
//
// Two sweeps are printed:
//   1. as measured -- honest strong scaling of the mesh this machine can
//      build in minutes (the curve bends earlier than the paper's because
//      the mesh is ~200x smaller: per-task costs shrink relative to the
//      fixed communication costs and the serial stages);
//   2. paper scale -- every task cost, payload, and serial stage multiplied
//      by the ratio of the paper's 172.7M triangles to this run's count, so
//      compute-to-communication ratios match the paper's testbed. This is
//      the curve to compare against Figures 11-12.

#include <algorithm>
#include <cstdio>
#include <vector>
#include <string_view>

#include "core/timer.hpp"
#include "obs/bench_report.hpp"
#include "runtime/cluster_model.hpp"
#include "runtime/parallel_driver.hpp"

int main(int argc, char** argv) {
  using namespace aero;
  Timer bench_wall;

  // --big roughly quadruples the measured mesh (slower, sharper curves).
  const bool big = argc > 1 && std::string_view(argv[1]) == "--big";

  Options config;
  config.airfoil = make_three_element(big ? 600 : 400);
  config.growth_kind = GrowthKind::kGeometric;
  config.first_height = big ? 1.5e-4 : 2.5e-4;
  config.growth_ratio = 1.2;
  config.max_layers = 45;
  config.farfield_chords = 30.0;
  // Mild gradation, as in the paper's regime (172.7M triangles over a
  // 60-chord box is fine nearly everywhere): this is what makes the
  // monolithic near-body subdomain a sub-percent fraction of the work.
  config.grade = big ? 0.0012 : 0.002;
  config.surface_length_factor = 4.0;
  config.nearbody_margin = 0.01;
  // Coarse-partitioner granularity: several subdomains per rank at P = 256.
  config.inviscid_target_triangles = big ? 2500.0 : 1500.0;
  config.inviscid_max_level = 16;
  config.bl_min_points = big ? 600 : 400;
  config.bl_max_level = 16;

  std::printf("measuring task graph on this machine...\n");
  const TaskGraph graph = build_task_graph(config);

  std::size_t leaves = 0;
  double longest = 0.0;
  for (const TaskNode& n : graph.nodes) {
    if (n.children.empty()) ++leaves;
    longest = std::max(longest, n.seconds);
  }
  std::printf("tasks=%zu (leaves=%zu)  total work=%.2f s  longest task=%.3f s"
              "  distributable stages=%.3f s\n",
              graph.nodes.size(), leaves, graph.total_seconds(), longest,
              graph.distributable_before[0] + graph.distributable_before[1]);
  {
    std::vector<const TaskNode*> sorted;
    for (const TaskNode& n : graph.nodes) sorted.push_back(&n);
    std::sort(sorted.begin(), sorted.end(),
              [](const TaskNode* a, const TaskNode* b) {
                return a->seconds > b->seconds;
              });
    std::printf("top tasks:");
    for (std::size_t i = 0; i < 5 && i < sorted.size(); ++i) {
      std::printf(" %s=%.3fs", sorted[i]->label, sorted[i]->seconds);
    }
    std::printf("\n\n");
  }

  const std::vector<int> ranks{1, 2, 4, 8, 16, 32, 64, 128, 256};
  const auto print_sweep = [&](const TaskGraph& g, const char* title) {
    std::printf("%s\n", title);
    std::printf("%8s %12s %10s %12s %8s  %s\n", "ranks", "makespan(s)",
                "speedup", "efficiency", "steals", "paper (speedup/eff)");
    const auto sweep = strong_scaling_sweep(g, ranks, ClusterOptions{});
    for (const SimResult& r : sweep) {
      const char* paper = "";
      if (r.ranks == 128) paper = "~102 / ~80%";
      if (r.ranks == 256) paper = "~180 / ~70%";
      std::printf("%8d %12.4f %10.2f %11.1f%% %8zu  %s\n", r.ranks,
                  r.makespan_seconds, r.speedup, 100.0 * r.efficiency,
                  r.steals, paper);
    }
    std::printf("\n");
    return sweep;
  };

  const auto measured =
      print_sweep(graph, "Figure 11/12 (as measured, laptop-scale mesh):");

  // Paper-scale extrapolation: the paper's fixed mesh divided by ours.
  // Task costs scale with the triangles they produce; payloads scale with
  // the points they carry; the serial stages scale with the cloud size.
  // Communication latency/bandwidth stay at the measured-hardware values.
  double measured_triangles = 0.0;
  for (const TaskNode& n : graph.nodes) {
    if (n.children.empty()) measured_triangles += n.cost_estimate;
  }
  const double scale = 172'768'355.0 / measured_triangles;
  TaskGraph scaled = graph;
  for (TaskNode& n : scaled.nodes) {
    n.seconds *= scale;
    n.bytes = static_cast<std::size_t>(static_cast<double>(n.bytes) * scale);
  }
  for (double& s : scaled.serial_before) s *= scale;
  for (double& s : scaled.distributable_before) s *= scale;
  std::printf("paper-scale factor: x%.0f (measured ~%.0f estimated "
              "triangles -> 172.77M)\n\n", scale, measured_triangles);
  const auto paper_scale =
      print_sweep(scaled, "Figure 11/12 (paper scale, 172.77M triangles):");

  // Transport A/B: the real in-process pool at 8 ranks, zero-copy window
  // transfers on vs. the full-copy mailbox path. Same work, same mesh --
  // the only difference is how many payload bytes ride the fabric.
  std::printf("Transport A/B (real pool, 8 ranks):\n");
  Options ab = config;
  ab.airfoil = make_naca0012(200);
  ab.growth_kind = GrowthKind::kGeometric;
  ab.first_height = 5e-4;
  ab.growth_ratio = 1.25;
  ab.max_layers = 30;
  ab.farfield_chords = 10.0;
  ab.grade = 0.05;
  ab.inviscid_target_triangles = 4000.0;
  ab.inviscid_max_level = 10;
  ab.bl_min_points = 400;
  ab.bl_max_level = 10;

  const auto pool_bytes = [](const ParallelMeshResult& r) {
    return r.bl_pool.comm_bytes + r.inviscid_pool.comm_bytes;
  };
  PoolTuning rma_on;  // defaults: window transfers enabled
  PoolTuning rma_off;
  rma_off.rma = false;

  Timer t_rma;
  const ParallelMeshResult with_rma =
      parallel_generate_mesh(ab, 8, FaultConfig{}, nullptr, rma_on);
  const double wall_rma_ms = 1000.0 * t_rma.seconds();
  Timer t_copy;
  const ParallelMeshResult with_copy =
      parallel_generate_mesh(ab, 8, FaultConfig{}, nullptr, rma_off);
  const double wall_copy_ms = 1000.0 * t_copy.seconds();

  const double rma_bytes = static_cast<double>(pool_bytes(with_rma));
  const double copy_bytes = static_cast<double>(pool_bytes(with_copy));
  const double reduction_pct =
      copy_bytes > 0.0 ? 100.0 * (1.0 - rma_bytes / copy_bytes) : 0.0;
  const std::size_t zero_copy_hits = with_rma.bl_pool.zero_copy_hits +
                                     with_rma.inviscid_pool.zero_copy_hits;
  std::printf("  rma=on   copied %.0f B  zero-copy %zu payloads (%.0f B)"
              "  wall %.0f ms  triangles %zu\n",
              rma_bytes, zero_copy_hits,
              static_cast<double>(with_rma.bl_pool.window_bytes +
                                  with_rma.inviscid_pool.window_bytes),
              wall_rma_ms, with_rma.mesh.triangle_count());
  std::printf("  rma=off  copied %.0f B  wall %.0f ms  triangles %zu\n",
              copy_bytes, wall_copy_ms, with_copy.mesh.triangle_count());
  std::printf("  copied-bytes reduction: %.1f%% (acceptance bar: >= 50%%)"
              "  meshes %s\n\n",
              reduction_pct,
              with_rma.mesh.triangle_count() == with_copy.mesh.triangle_count()
                  ? "agree"
                  : "DISAGREE");

  // Ranks x threads grid: the real pool with intra-rank refinement threads
  // layered under the rank parallelism. Same config, same mesh at every
  // cell (threads_per_rank is performance-only); the grid shows how the two
  // axes compose on this machine's core budget.
  std::printf("Ranks x threads-per-rank grid (real pool):\n");
  struct GridCell { int ranks; int threads; double seconds; };
  std::vector<GridCell> grid{{2, 1, 0}, {2, 2, 0}, {4, 1, 0}, {4, 2, 0}};
  std::size_t grid_triangles = 0;
  bool grid_agrees = true;
  for (GridCell& cell : grid) {
    PoolTuning tuned = rma_on;
    tuned.threads_per_rank = cell.threads;
    Timer t;
    const ParallelMeshResult r =
        parallel_generate_mesh(ab, cell.ranks, FaultConfig{}, nullptr, tuned);
    cell.seconds = t.seconds();
    if (grid_triangles == 0) grid_triangles = r.mesh.triangle_count();
    grid_agrees = grid_agrees && r.mesh.triangle_count() == grid_triangles;
    std::printf("  ranks=%d threads=%d  wall %7.0f ms  triangles %zu\n",
                cell.ranks, cell.threads, 1000.0 * cell.seconds,
                r.mesh.triangle_count());
  }
  std::printf("  meshes %s across the grid\n\n",
              grid_agrees ? "agree" : "DISAGREE");

  // Checkpoint overhead A/B: the identical 8-rank run with the journal sink
  // streaming every finalized leaf to disk. The sink frames each leaf's raw
  // triangle array with a chained CRC and appends+flushes, so the wall cost
  // must stay marginal next to the meshing itself.
  std::printf("Checkpoint overhead A/B (real pool, 8 ranks):\n");
  const char* journal_path = "bench_scaling_ckpt.aerojnl";
  std::remove(journal_path);
  ResilienceOptions res;
  res.checkpoint_path = journal_path;
  res.config_hash = 0x5ca1ab1eull;
  // Min-of-5 interleaved pairs: on an oversubscribed box the scheduler's
  // noise on a ~100 ms run dwarfs the journal's real cost, and the minimum
  // is the run the scheduler interfered with least.
  double wall_off_ms = wall_rma_ms;
  double wall_ckpt_ms = 0.0;
  std::size_t ckpt_records = 0;
  std::size_t ckpt_triangles = 0;
  for (int i = 0; i < 5; ++i) {
    Timer t_off;
    const ParallelMeshResult off =
        parallel_generate_mesh(ab, 8, FaultConfig{}, nullptr, rma_on);
    wall_off_ms = std::min(wall_off_ms, 1000.0 * t_off.seconds());
    (void)off;
    Timer t_on;
    const ParallelMeshResult on =
        parallel_generate_mesh(ab, 8, FaultConfig{}, nullptr, rma_on, res);
    const double ms = 1000.0 * t_on.seconds();
    if (i == 0 || ms < wall_ckpt_ms) wall_ckpt_ms = ms;
    ckpt_records = on.resilience.checkpointed_units;
    ckpt_triangles = on.mesh.triangle_count();
  }
  double journal_bytes = 0.0;
  if (std::FILE* jf = std::fopen(journal_path, "rb")) {
    std::fseek(jf, 0, SEEK_END);
    journal_bytes = static_cast<double>(std::ftell(jf));
    std::fclose(jf);
  }
  std::remove(journal_path);
  const double overhead_pct =
      wall_off_ms > 0.0 ? 100.0 * (wall_ckpt_ms / wall_off_ms - 1.0) : 0.0;
  std::printf("  ckpt=off wall %.0f ms  triangles %zu\n", wall_off_ms,
              with_rma.mesh.triangle_count());
  std::printf("  ckpt=on  wall %.0f ms  triangles %zu  records %zu"
              "  journal %.0f B\n",
              wall_ckpt_ms, ckpt_triangles, ckpt_records, journal_bytes);
  std::printf("  checkpoint overhead: %.1f%% (acceptance bar: < 3%%,"
              " wall noise permitting)  meshes %s\n\n",
              overhead_pct,
              ckpt_triangles == with_rma.mesh.triangle_count()
                  ? "agree"
                  : "DISAGREE");

  obs::BenchReport report;
  report.bench = "bench_scaling";
  report.case_name = big ? "three-element-600" : "three-element-400";
  report.ranks = 256;
  report.wall_ms = 1000.0 * bench_wall.seconds();
  report.counters.emplace_back("tasks", static_cast<double>(graph.nodes.size()));
  report.counters.emplace_back("total_work_s", graph.total_seconds());
  report.counters.emplace_back("measured_triangles", measured_triangles);
  for (const SimResult& r : measured) {
    if (r.ranks == 128 || r.ranks == 256) {
      report.counters.emplace_back(
          "speedup_measured_" + std::to_string(r.ranks), r.speedup);
    }
  }
  for (const SimResult& r : paper_scale) {
    if (r.ranks == 128 || r.ranks == 256) {
      report.counters.emplace_back(
          "speedup_paper_scale_" + std::to_string(r.ranks), r.speedup);
    }
  }
  report.counters.emplace_back("rma_comm_bytes", rma_bytes);
  report.counters.emplace_back("copy_comm_bytes", copy_bytes);
  report.counters.emplace_back("rma_reduction_pct", reduction_pct);
  report.counters.emplace_back("rma_zero_copy_hits",
                               static_cast<double>(zero_copy_hits));
  report.counters.emplace_back("wall_rma_ms", wall_rma_ms);
  report.counters.emplace_back("wall_copy_ms", wall_copy_ms);
  report.counters.emplace_back(
      "ab_triangles_rma",
      static_cast<double>(with_rma.mesh.triangle_count()));
  report.counters.emplace_back(
      "ab_triangles_copy",
      static_cast<double>(with_copy.mesh.triangle_count()));
  for (const GridCell& cell : grid) {
    report.counters.emplace_back("grid_r" + std::to_string(cell.ranks) + "_t" +
                                     std::to_string(cell.threads) + "_s",
                                 cell.seconds);
  }
  report.counters.emplace_back("grid_triangles_agree",
                               grid_agrees ? 1.0 : 0.0);
  report.counters.emplace_back("wall_ckpt_ms", wall_ckpt_ms);
  report.counters.emplace_back("checkpoint_overhead_pct", overhead_pct);
  report.counters.emplace_back(
      "checkpoint_records",
      static_cast<double>(ckpt_records));
  report.counters.emplace_back("checkpoint_journal_bytes", journal_bytes);
  report.counters.emplace_back(
      "ab_triangles_ckpt",
      static_cast<double>(ckpt_triangles));
  if (write_bench_json(report, "BENCH_scaling.json")) {
    std::printf("wrote BENCH_scaling.json\n");
  }
  return 0;
}
