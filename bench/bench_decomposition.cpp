// Figure 8: the boundary layer decomposed into 128 independently
// triangulable Delaunay subdomains.
//
// Reports the decomposition tree shape, per-leaf sizes (load balance), the
// exactness check (union of owned triangles == direct triangulation), and
// timing of decomposition vs triangulation.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "blayer/boundary_layer.hpp"
#include "hull/subdomain.hpp"
#include "core/timer.hpp"

using namespace aero;

int main() {
  const AirfoilConfig config = make_three_element(400);
  BoundaryLayerOptions bl_opts;
  bl_opts.growth = {GrowthKind::kGeometric, 2e-4, 1.2};
  bl_opts.max_layers = 45;
  const BoundaryLayer bl = build_boundary_layer(config, bl_opts);
  std::printf("boundary-layer cloud: %zu points\n\n", bl.points.size());

  std::printf("Figure 8: decomposition into ~128 subdomains\n");
  std::printf("%10s %8s %10s %10s %10s %12s %12s\n", "min_pts", "leaves",
              "min", "median", "max", "decomp(s)", "mesh(s)");

  for (const std::size_t min_points : {8000u, 4000u, 2000u, 1000u, 500u}) {
    Timer t_dec;
    Subdomain root = make_root_subdomain(bl.points);
    DecomposeOptions opts{min_points, 16};
    const auto leaves = decompose(std::move(root), opts);
    const double dec_s = t_dec.seconds();

    std::vector<std::size_t> sizes;
    for (const auto& l : leaves) sizes.push_back(l.size());
    std::sort(sizes.begin(), sizes.end());

    Timer t_mesh;
    std::size_t owned = 0;
    for (const auto& leaf : leaves) {
      const auto r = triangulate_subdomain(leaf);
      r.mesh.for_each_triangle([&](TriIndex t) {
        if (r.mesh.tri(t).inside) ++owned;
      });
    }
    const double mesh_s = t_mesh.seconds();

    std::printf("%10zu %8zu %10zu %10zu %10zu %12.3f %12.3f\n", min_points,
                leaves.size(), sizes.front(), sizes[sizes.size() / 2],
                sizes.back(), dec_s, mesh_s);
    if (min_points == 500u) {
      // Exactness at the deepest level: compare against the direct DT.
      std::vector<Vec2> pts = bl.points;
      std::sort(pts.begin(), pts.end(), LessXY{});
      pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
      const auto direct = triangulate_points(pts, true);
      std::printf("\nowned-union triangles: %zu, direct: %zu  (%s)\n", owned,
                  direct.mesh.triangle_count(),
                  owned == direct.mesh.triangle_count() ? "EXACT MATCH"
                                                        : "MISMATCH");
    }
  }
  std::printf("\npaper Fig 8: 128 independent Delaunay subdomains; here the "
              "leaf count is driven by the vertex tolerance\n");
  return 0;
}
