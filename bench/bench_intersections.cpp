// Figure 13: resolved self-intersections, multi-element intersections, and
// trailing-edge treatments on the multi-element configuration -- plus the
// ablation of the paper's hierarchical pruning (AABB clip + ADT) against
// brute-force O(n^2) intersection testing.

#include <cstdio>

#include "blayer/boundary_layer.hpp"
#include "geom/segment.hpp"
#include "core/timer.hpp"

using namespace aero;

int main() {
  const AirfoilConfig config = make_three_element(400);
  BoundaryLayerOptions opts;
  opts.growth = {GrowthKind::kGeometric, 2.5e-4, 1.2};
  opts.max_layers = 45;

  std::printf("Figure 13: special-case resolution on the three-element "
              "configuration\n");
  Timer t_full;
  const BoundaryLayer bl = build_boundary_layer(config, opts);
  const double full_s = t_full.seconds();
  const IntersectionStats& s = bl.stats;
  std::printf("  (b,c) self-intersections resolved : %zu ray-ray + %zu "
              "ray-surface truncations\n",
              s.self_truncations, s.surface_truncations);
  std::printf("  (d) multi-element resolved        : %zu truncations "
              "(from %zu AABB candidates, %zu ADT-tested pairs)\n",
              s.multi_truncations, s.multi_candidates, s.multi_pairs_tested);
  std::printf("  (e) trailing-edge fans            : %zu fans, %zu rays\n",
              s.fans, s.fan_rays);
  std::printf("  pairs tested via ADT (self)       : %zu\n",
              s.self_pairs_tested);
  std::printf("  total boundary-layer build        : %.3f s\n\n", full_s);

  // Ablation: brute-force all-pairs self-intersection of the main element's
  // rays vs the ADT-pruned pipeline count.
  IntersectionStats raw;
  ElementRays er = build_rays(config.elements[1], opts, 1, &raw);
  const std::size_t nrays = er.rays.size();

  Timer t_brute;
  std::size_t brute_pairs = 0, brute_hits = 0;
  {
    const double cap = opts.growth.height(opts.max_layers);
    std::vector<Segment> segs;
    segs.reserve(nrays);
    for (const Ray& r : er.rays) {
      segs.push_back({r.origin, r.origin + r.dir * cap});
    }
    for (std::size_t i = 0; i < nrays; ++i) {
      for (std::size_t j = i + 1; j < nrays; ++j) {
        if (er.rays[i].origin == er.rays[j].origin) continue;
        ++brute_pairs;
        const auto hit = intersect(segs[i], segs[j]);
        if (hit && hit.kind == IntersectKind::kProper) ++brute_hits;
      }
    }
  }
  const double brute_s = t_brute.seconds();

  Timer t_adt;
  IntersectionStats pruned;
  ElementRays er2 = build_rays(config.elements[1], opts, 1, &pruned);
  resolve_self_intersections(er2, opts, &pruned);
  const double adt_s = t_adt.seconds();

  std::printf("ablation: ADT pruning vs brute force (main element, %zu rays)\n",
              nrays);
  std::printf("  brute force : %10zu pairs tested, %6zu proper hits, %8.3f s\n",
              brute_pairs, brute_hits, brute_s);
  std::printf("  AABB + ADT  : %10zu pairs tested, %6zu truncations, %8.3f s\n",
              pruned.self_pairs_tested,
              pruned.self_truncations + pruned.surface_truncations, adt_s);
  std::printf("  pruning factor: %.1fx fewer pairs, %.1fx faster\n",
              static_cast<double>(brute_pairs) /
                  static_cast<double>(std::max<std::size_t>(1, pruned.self_pairs_tested)),
              brute_s / std::max(adt_s, 1e-9));
  std::printf("\npaper: candidate rays pruned by AABB (Cohen-Sutherland) then "
              "ADT in n log n before exact checks\n");
  return 0;
}
