// Kernel fast-path benchmark: the Bowyer-Watson hot loop in isolation.
//
// Measures the pieces the kernel overhaul touched, each on the same clouds:
//   - insertion order: x-sorted vs BRIO/Hilbert vs unsorted input order
//   - cavity-arena reuse: fresh DelaunayMesh per run vs one reused object
//   - Ruppert refinement (locate hints + filtered predicates on the
//     circumcenter walk)
//
// The headline wall_ms (guarded by bench_compare) is the sum of the
// representative cases: x-sorted and BRIO triangulation of the large cloud
// plus the refinement case, so a regression in any fast path moves it.

#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "core/timer.hpp"
#include "delaunay/triangulator.hpp"
#include "obs/bench_report.hpp"

int main() {
  using namespace aero;
  Timer bench_wall;

  constexpr std::size_t kN = 400000;
  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<Vec2> cloud(kN);
  for (Vec2& p : cloud) p = {u(rng), u(rng)};

  std::printf("cloud: %zu uniform random points\n\n", cloud.size());

  const auto time_order = [&](const char* name, InsertionOrder order) {
    Timer t;
    const TriangulateResult r = triangulate_points(cloud, order);
    const double s = t.seconds();
    std::printf("  %-12s %8.3f s  (%zu tris)\n", name, s,
                r.mesh.triangle_count());
    return s;
  };

  std::printf("insertion order (fresh mesh each):\n");
  const double t_xsorted = time_order("x-sorted", InsertionOrder::kXSorted);
  const double t_brio = time_order("brio", InsertionOrder::kBrio);
  // Unsorted input order has no walk locality at all (quadratic-ish walks);
  // a 100k subset is enough to show the cliff without dominating the run.
  double t_input;
  {
    const std::vector<Vec2> sub(cloud.begin(), cloud.begin() + 100000);
    Timer t;
    const TriangulateResult r = triangulate_points(sub, InsertionOrder::kInput);
    t_input = t.seconds();
    std::printf("  %-12s %8.3f s  (%zu tris, 100k subset)\n", "input", t_input,
                r.mesh.triangle_count());
  }

  // Arena reuse: repeated medium clouds through one DelaunayMesh vs a fresh
  // object per run. The delta is the allocator traffic the arena removes.
  constexpr int kRuns = 16;
  constexpr std::size_t kM = 50000;
  std::vector<std::vector<Vec2>> clouds(kRuns);
  for (int i = 0; i < kRuns; ++i) {
    clouds[i].resize(kM);
    for (Vec2& p : clouds[i]) p = {u(rng), u(rng)};
    std::sort(clouds[i].begin(), clouds[i].end(), LessXY{});
  }
  double t_fresh, t_reused;
  {
    Timer t;
    for (int i = 0; i < kRuns; ++i) {
      DelaunayMesh mesh;
      mesh.triangulate(clouds[i]);
    }
    t_fresh = t.seconds();
  }
  {
    Timer t;
    DelaunayMesh mesh;
    for (int i = 0; i < kRuns; ++i) mesh.triangulate(clouds[i]);
    t_reused = t.seconds();
  }
  std::printf("\narena (%d x %zu-point runs): fresh %.3f s, reused %.3f s\n",
              kRuns, kM, t_fresh, t_reused);

  // Refinement: exercises locate hints on the circumcenter walk plus the
  // filtered predicates in the cavity and quality tests.
  double t_refine;
  std::size_t refine_tris;
  {
    Pslg pslg;
    pslg.points = {{-1, -1}, {1, -1}, {1, 1}, {-1, 1}};
    pslg.segments = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
    TriangulateOptions opts;
    opts.refine = true;
    opts.refine_options.radius_edge_bound = 1.4142135623730951;
    opts.refine_options.sizing = [](Vec2 p) {
      const double r2 = p.x * p.x + p.y * p.y;
      return 1e-5 + 4e-4 * r2;  // fine at the center, graded outward
    };
    Timer t;
    const TriangulateResult r = triangulate(pslg, opts);
    t_refine = t.seconds();
    refine_tris = r.mesh.inside_triangle_count();
    std::printf("refinement: %.3f s (%zu tris, %zu Steiner points)\n",
                t_refine, refine_tris, r.refine_stats.steiner_points);
  }

  const double headline_ms = 1000.0 * (t_xsorted + t_brio + t_refine);
  std::printf("\nheadline (x-sorted + brio + refine): %.1f ms\n", headline_ms);

  obs::BenchReport report;
  report.bench = "bench_kernel";
  report.case_name = "uniform-400k";
  report.ranks = 1;
  report.wall_ms = headline_ms;
  report.counters = {
      {"cloud_points", static_cast<double>(kN)},
      {"xsorted_s", t_xsorted},
      {"brio_s", t_brio},
      {"input_order_s", t_input},
      {"arena_fresh_s", t_fresh},
      {"arena_reused_s", t_reused},
      {"refine_s", t_refine},
      {"refine_triangles", static_cast<double>(refine_tris)},
  };
  if (write_bench_json(report, "BENCH_kernel.json")) {
    std::printf("wrote BENCH_kernel.json\n");
  }
  return 0;
}
