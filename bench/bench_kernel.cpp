// Kernel fast-path benchmark: the Bowyer-Watson hot loop in isolation.
//
// Measures the pieces the kernel overhaul touched, each on the same clouds:
//   - insertion order: x-sorted vs BRIO/Hilbert vs unsorted input order
//   - intra-rank strong scaling: the scatter-order speculate/commit engine
//     at 1/2/4/8 threads on the same cloud (threads_*_s / speedup_4t)
//   - cavity-arena reuse: fresh DelaunayMesh per run vs one reused object
//   - Ruppert refinement (locate hints + filtered predicates on the
//     circumcenter walk)
//
// The headline wall_ms (guarded by bench_compare) is the sum of the
// representative cases: x-sorted and BRIO triangulation of the large cloud
// plus the refinement case, so a regression in any fast path moves it.

#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "core/timer.hpp"
#include "delaunay/triangulator.hpp"
#include "obs/bench_report.hpp"

int main() {
  using namespace aero;
  Timer bench_wall;

  constexpr std::size_t kN = 400000;
  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<Vec2> cloud(kN);
  for (Vec2& p : cloud) p = {u(rng), u(rng)};

  std::printf("cloud: %zu uniform random points\n\n", cloud.size());

  const auto time_order = [&](const char* name, InsertionOrder order) {
    Timer t;
    const TriangulateResult r = triangulate_points(cloud, order);
    const double s = t.seconds();
    std::printf("  %-12s %8.3f s  (%zu tris)\n", name, s,
                r.mesh.triangle_count());
    return s;
  };

  std::printf("insertion order (fresh mesh each):\n");
  const double t_xsorted = time_order("x-sorted", InsertionOrder::kXSorted);
  const double t_brio = time_order("brio", InsertionOrder::kBrio);
  // Unsorted input order has no walk locality at all (quadratic-ish walks);
  // a 100k subset is enough to show the cliff without dominating the run.
  double t_input;
  {
    const std::vector<Vec2> sub(cloud.begin(), cloud.begin() + 100000);
    Timer t;
    const TriangulateResult r = triangulate_points(sub, InsertionOrder::kInput);
    t_input = t.seconds();
    std::printf("  %-12s %8.3f s  (%zu tris, 100k subset)\n", "input", t_input,
                r.mesh.triangle_count());
  }

  // Intra-rank strong scaling: the windowed speculate/commit engine on the
  // same scatter sequence at 1/2/4/8 threads. The T=1 leg runs the identical
  // windowed algorithm (same hint grid, same commit schedule), so the ratios
  // isolate the speculation parallelism rather than an algorithm switch.
  std::printf("\nscatter engine strong scaling (%zu points):\n", cloud.size());
  double t_threads[4];
  {
    const int thread_cases[4] = {1, 2, 4, 8};
    for (int i = 0; i < 4; ++i) {
      Timer t;
      const TriangulateResult r =
          triangulate_points(cloud, InsertionOrder::kScatter, thread_cases[i]);
      t_threads[i] = t.seconds();
      std::printf("  %d thread%s %8.3f s  (%zu tris)\n", thread_cases[i],
                  thread_cases[i] == 1 ? " " : "s", t_threads[i],
                  r.mesh.triangle_count());
    }
    std::printf("  4-thread speedup over 1: %.2fx\n",
                t_threads[0] / t_threads[2]);
  }

  // Arena reuse: repeated medium clouds through one DelaunayMesh vs a fresh
  // object per run. The delta is the allocator traffic the arena removes.
  // One untimed warm-up pass faults in the clouds and primes the allocator,
  // and each variant takes the min of several passes: a single cold
  // measurement is dominated by page-fault noise that used to drown the
  // reuse win (and occasionally invert its sign).
  constexpr int kRuns = 16;
  constexpr int kPasses = 3;
  constexpr std::size_t kM = 50000;
  std::vector<std::vector<Vec2>> clouds(kRuns);
  for (int i = 0; i < kRuns; ++i) {
    clouds[i].resize(kM);
    for (Vec2& p : clouds[i]) p = {u(rng), u(rng)};
    std::sort(clouds[i].begin(), clouds[i].end(), LessXY{});
  }
  {
    DelaunayMesh warmup;
    for (int i = 0; i < kRuns; ++i) warmup.triangulate(clouds[i]);
  }
  double t_fresh = 1e30, t_reused = 1e30;
  for (int pass = 0; pass < kPasses; ++pass) {
    {
      Timer t;
      for (int i = 0; i < kRuns; ++i) {
        DelaunayMesh mesh;
        mesh.triangulate(clouds[i]);
      }
      t_fresh = std::min(t_fresh, t.seconds());
    }
    {
      Timer t;
      DelaunayMesh mesh;
      for (int i = 0; i < kRuns; ++i) mesh.triangulate(clouds[i]);
      t_reused = std::min(t_reused, t.seconds());
    }
  }
  std::printf(
      "\narena (%d x %zu-point runs, min of %d): fresh %.3f s, reused %.3f "
      "s\n",
      kRuns, kM, kPasses, t_fresh, t_reused);

  // Refinement: exercises locate hints on the circumcenter walk plus the
  // filtered predicates in the cavity and quality tests.
  double t_refine;
  std::size_t refine_tris;
  {
    Pslg pslg;
    pslg.points = {{-1, -1}, {1, -1}, {1, 1}, {-1, 1}};
    pslg.segments = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
    TriangulateOptions opts;
    opts.refine = true;
    opts.refine_options.radius_edge_bound = 1.4142135623730951;
    opts.refine_options.sizing = [](Vec2 p) {
      const double r2 = p.x * p.x + p.y * p.y;
      return 1e-5 + 4e-4 * r2;  // fine at the center, graded outward
    };
    Timer t;
    const TriangulateResult r = triangulate(pslg, opts);
    t_refine = t.seconds();
    refine_tris = r.mesh.inside_triangle_count();
    std::printf("refinement: %.3f s (%zu tris, %zu Steiner points)\n",
                t_refine, refine_tris, r.refine_stats.steiner_points);
  }

  const double headline_ms = 1000.0 * (t_xsorted + t_brio + t_refine);
  std::printf("\nheadline (x-sorted + brio + refine): %.1f ms\n", headline_ms);

  obs::BenchReport report;
  report.bench = "bench_kernel";
  report.case_name = "uniform-400k";
  report.ranks = 1;
  report.wall_ms = headline_ms;
  report.counters = {
      {"cloud_points", static_cast<double>(kN)},
      {"xsorted_s", t_xsorted},
      {"brio_s", t_brio},
      {"input_order_s", t_input},
      {"threads_1_s", t_threads[0]},
      {"threads_2_s", t_threads[1]},
      {"threads_4_s", t_threads[2]},
      {"threads_8_s", t_threads[3]},
      {"speedup_4t", t_threads[0] / t_threads[2]},
      {"arena_fresh_s", t_fresh},
      {"arena_reused_s", t_reused},
      {"refine_s", t_refine},
      {"refine_triangles", static_cast<double>(refine_tris)},
  };
  if (write_bench_json(report, "BENCH_kernel.json")) {
    std::printf("wrote BENCH_kernel.json\n");
  }
  return 0;
}
