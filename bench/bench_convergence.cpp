// Figure 16 + the element-count comparison: the anisotropic mesh contains
// ~14x fewer elements than an isotropic mesh built from the same surface
// distribution and sizing function, and its solution converges to the
// 1e-12 residual tolerance in roughly half the iterations.
//
// Paper: anisotropic 360,241 triangles converged ~5,000 FUN3D iterations;
// isotropic 5,314,372 triangles (20.7-degree quality) took ~10,000.
// Substitute solver: Jacobi-preconditioned CG on a P1 diffusion
// discretization of the same domains to the same 1e-12 tolerance.

#include <cstdio>

#include "core/mesh_generator.hpp"
#include "delaunay/stats.hpp"
#include "delaunay/triangulator.hpp"
#include "core/distance_field.hpp"
#include "solver/fem.hpp"

using namespace aero;

namespace {

/// Isotropic reference: same surfaces, same sizing function, but the
/// boundary layer region is refined isotropically (quality 20.7 degrees and
/// the near-body area bound everywhere) instead of anisotropically.
MergedMesh isotropic_reference(const Options& config,
                               const GradedSizing& sizing,
                               double wall_length, double band) {
  // Distance field over the near-body region: inside `band` of a surface the
  // isotropic mesh must resolve the boundary-layer gradients with edges of
  // ~wall_length -- this is exactly why the paper's isotropic reference blew
  // up to 14.8x the elements.
  std::vector<std::vector<Vec2>> loops;
  for (const auto& e : config.airfoil.elements) loops.push_back(e.surface);
  const DistanceField field(loops,
                            config.airfoil.bbox().inflated(4.0 * band), 768);

  Pslg pslg;
  for (const auto& e : config.airfoil.elements) {
    const auto base = static_cast<std::uint32_t>(pslg.points.size());
    pslg.points.insert(pslg.points.end(), e.surface.begin(), e.surface.end());
    const auto n = static_cast<std::uint32_t>(e.surface.size());
    for (std::uint32_t i = 0; i < n; ++i) {
      pslg.segments.emplace_back(base + i, base + (i + 1) % n);
    }
    pslg.holes.push_back(e.interior_point());
  }
  // Outer boundary box.
  const Vec2 c = config.airfoil.bbox().center();
  const double h = config.farfield_chords * config.airfoil.chord;
  const auto base = static_cast<std::uint32_t>(pslg.points.size());
  pslg.points.push_back({c.x - h, c.y - h});
  pslg.points.push_back({c.x + h, c.y - h});
  pslg.points.push_back({c.x + h, c.y + h});
  pslg.points.push_back({c.x - h, c.y + h});
  for (std::uint32_t i = 0; i < 4; ++i) {
    pslg.segments.emplace_back(base + i, base + (i + 1) % 4);
  }

  TriangulateOptions opts;
  opts.refine = true;
  opts.refine_options.radius_edge_bound = 1.4142135623730951;  // 20.7 deg
  const double wall_area = 0.4330127018922193 * wall_length * wall_length;
  opts.refine_options.sizing = [sizing, &field, wall_area, band](Vec2 p) {
    const double graded = sizing.area_at(p);
    return field.distance(p) < band ? std::min(graded, wall_area) : graded;
  };
  const auto r = triangulate(pslg, opts);
  MergedMesh m;
  m.append(r.mesh);
  return m;
}

std::pair<std::size_t, std::size_t> solve_iterations(const MergedMesh& mesh,
                                                     const char* name) {
  // Pure diffusion (symmetric) so the Jacobi-preconditioned CG scheme
  // applies; Dirichlet data separates the body region from the far field.
  FemProblem problem(mesh, 1.0, {0.0, 0.0}, nullptr, [](Vec2 p) {
    return std::abs(p.x - 0.5) < 2.0 && std::abs(p.y) < 2.0 ? 1.0 : 0.0;
  });
  SolveOptions opts;
  opts.scheme = IterScheme::kConjugateGradient;
  opts.tolerance = 1e-12;
  opts.max_iterations = 400000;
  const SolveResult r = problem.solve(opts);
  std::printf("  %-12s %9zu unknowns, %8zu iterations to 1e-12 (%s)\n", name,
              problem.unknowns(), r.iterations,
              r.converged ? "converged" : "NOT CONVERGED");
  return {r.iterations, problem.unknowns()};
}

}  // namespace

int main() {
  Options config;
  config.airfoil = make_three_element(260);
  config.growth_kind = GrowthKind::kGeometric;
  config.first_height = 3e-4;
  config.growth_ratio = 1.25;
  config.max_layers = 40;
  config.farfield_chords = 8.0;
  config.grade = 0.35;  // coarse shared background: the ratio is about the
                        // near-wall resolution difference
  config.surface_length_factor = 2.5;

  std::printf("generating anisotropic mesh (this library)...\n");
  const MeshGenerationResult aniso = generate_mesh(config);
  std::printf("generating isotropic reference (same sizing, 20.7 deg "
              "quality everywhere)...\n");
  // Wall resolution ~3x the first boundary-layer cell, banded over the
  // boundary-layer thickness.
  const MergedMesh iso = isotropic_reference(
      config, aniso.sizing, 1.5 * config.first_height, 0.012);

  const std::size_t n_aniso = aniso.mesh.triangle_count();
  const std::size_t n_iso = iso.triangle_count();
  std::printf("\nelement counts:\n");
  std::printf("  anisotropic: %zu triangles\n", n_aniso);
  std::printf("  isotropic  : %zu triangles\n", n_iso);
  std::printf("  ratio      : %.1fx   [paper: 5,314,372 / 360,241 = 14.8x]\n",
              static_cast<double>(n_iso) / static_cast<double>(n_aniso));

  std::printf("\nFigure 16: convergence to 1e-12 residual\n");
  const auto [it_a, unk_a] = solve_iterations(aniso.mesh, "anisotropic");
  const auto [it_i, unk_i] = solve_iterations(iso, "isotropic");
  std::printf("  iteration ratio (iso/aniso): %.2fx   "
              "[paper: ~10,000 / ~5,000 = 2x]\n",
              static_cast<double>(it_i) / static_cast<double>(it_a));
  // FUN3D's per-iteration cost scales with the mesh; the honest total-work
  // comparison multiplies iterations by unknowns.
  std::printf("  work ratio (iters x unknowns)     : %.1fx   "
              "[paper: ~29x]\n",
              static_cast<double>(it_i) * static_cast<double>(unk_i) /
                  (static_cast<double>(it_a) * static_cast<double>(unk_a)));
  return 0;
}
