// Section IV's sequential-efficiency claim: "the sequential meshing time of
// Triangle was 192 seconds while the sequential meshing time of our
// application was 196 seconds, yielding an efficiency of approximately 98%".
//
// Reproduced as: triangulate the boundary-layer cloud directly (the role of
// Triangle) vs through the full decomposition machinery on one rank, and
// refine the inviscid region directly vs through the decoupling. The
// decomposition/decoupling overhead fraction is the measured quantity; the
// paper attributes its ~2% to the extra triangles the decoupling creates.

#include <cstdio>

#include "core/mesh_generator.hpp"
#include "core/pipeline_config.hpp"  // aerolint: allow(public-api)
#include "delaunay/triangulator.hpp"
#include <unordered_map>

#include "core/timer.hpp"
#include "obs/bench_report.hpp"

int main() {
  using namespace aero;
  Timer bench_wall;

  Options config;
  config.airfoil = make_three_element(400);
  config.growth_kind = GrowthKind::kGeometric;
  config.first_height = 2e-4;
  config.growth_ratio = 1.2;
  config.max_layers = 45;
  config.farfield_chords = 25.0;
  config.grade = 0.01;
  config.surface_length_factor = 2.0;
  config.inviscid_target_triangles = 100000.0;
  config.bl_min_points = 2000;
  config.bl_max_level = 12;

  const BoundaryLayer bl = build_boundary_layer(config.airfoil, blayer_options(config));
  std::printf("boundary-layer cloud: %zu points\n\n", bl.points.size());

  // --- Boundary layer: direct vs decomposed -------------------------------
  double t_direct, t_decomposed;
  std::size_t tris_direct, tris_decomposed;
  {
    std::vector<Vec2> pts = bl.points;
    std::sort(pts.begin(), pts.end(), LessXY{});
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
    Timer t;
    const auto r = triangulate_points(pts, /*assume_sorted=*/true);
    t_direct = t.seconds();
    tris_direct = r.mesh.triangle_count();
  }
  {
    Timer t;
    MergedMesh mesh;
    std::size_t nsub;
    triangulate_boundary_layer(bl, bl_decompose_options(config), mesh, &nsub, nullptr);
    t_decomposed = t.seconds();
    tris_decomposed = mesh.triangle_count();
    std::printf("decomposition produced %zu subdomains\n", nsub);
  }
  std::printf("boundary layer: direct %.3f s (%zu tris), decomposed+merged "
              "%.3f s (%zu tris kept)\n",
              t_direct, tris_direct, t_decomposed, tris_decomposed);

  // --- Full pipeline one-rank efficiency ----------------------------------
  Timer t_all;
  const MeshGenerationResult full = generate_mesh(config);
  const double t_pipeline = t_all.seconds();
  // Peak RSS sampled here covers the pipeline (plus the small direct BL
  // runs above), before the reference's quadedge mesh inflates the process
  // peak -- this is the number that measures the SoA mesh core.
  const long pipeline_rss_kb = obs::peak_rss_kb();
  std::printf("\npipeline stages:\n");
  for (const auto& [phase, sec] : full.timings.entries()) {
    std::printf("  %-32s %8.3f s\n", phase.c_str(), sec);
  }

  // The "sequential Triangle" reference: what the fastest sequential tool
  // does for the same job -- triangulate the boundary-layer cloud directly
  // and refine the whole inviscid domain as ONE PSLG (no decomposition, no
  // decoupling, no merging).
  Timer t_ref;
  std::size_t ref_tris = 0;
  {
    std::vector<Vec2> pts = bl.points;
    std::sort(pts.begin(), pts.end(), LessXY{});
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
    const auto r_bl = triangulate_points(pts, /*assume_sorted=*/true);
    ref_tris += r_bl.mesh.triangle_count();

    // One global inviscid PSLG: interface + far-field box, one refinement.
    MergedMesh bl_mesh;
    bl_mesh.append(r_bl.mesh);
    restrict_to_ring(bl_mesh, bl);
    const InviscidDomain domain = make_inviscid_domain(bl, config, bl_mesh);
    Pslg pslg;
    std::unordered_map<Vec2, std::uint32_t, Vec2Hash> index_of;
    const auto intern = [&](Vec2 p) {
      const auto [it, fresh] = index_of.try_emplace(
          p, static_cast<std::uint32_t>(pslg.points.size()));
      if (fresh) pslg.points.push_back(p);
      return it->second;
    };
    const Vec2 c = domain.outer.center();
    const double h = domain.outer.width() / 2.0;
    const std::uint32_t b0 = intern({c.x - h, c.y - h});
    const std::uint32_t b1 = intern({c.x + h, c.y - h});
    const std::uint32_t b2 = intern({c.x + h, c.y + h});
    const std::uint32_t b3 = intern({c.x - h, c.y + h});
    pslg.segments = {{b0, b1}, {b1, b2}, {b2, b3}, {b3, b0}};
    for (const auto& [a, b] : domain.bl_interface) {
      const std::uint32_t ia = intern(a);
      const std::uint32_t ib = intern(b);
      if (ia != ib) pslg.segments.emplace_back(ia, ib);
    }
    pslg.holes = domain.hole_seeds;
    TriangulateOptions opts;
    opts.refine = true;
    opts.refine_options.radius_edge_bound = 1.4142135623730951;
    const GradedSizing sizing = domain.sizing;
    opts.refine_options.sizing = [sizing](Vec2 p) { return sizing.area_at(p); };
    const auto r_inv = triangulate(pslg, opts);
    ref_tris += r_inv.mesh.inside_triangle_count();
  }
  const double t_reference = t_ref.seconds();

  std::printf("\nsequential reference (direct triangulation + one global "
              "refinement): %.3f s (%zu tris)\n", t_reference, ref_tris);
  std::printf("full pipeline (1 rank, decomposition + decoupling + merge): "
              "%.3f s (%zu tris)\n", t_pipeline, full.mesh.triangle_count());
  std::printf("sequential efficiency (reference / pipeline): %.1f%%   "
              "[paper: ~98%% (192 s vs 196 s)]\n",
              100.0 * t_reference / t_pipeline);

  // Storage-compactness counter: process peak RSS amortized over the final
  // mesh. The SoA mesh core's whole point is lowering this; the tolerances
  // sidecar gates it so a storage regression fails bench_compare.
  const double rss_per_tri =
      1024.0 * static_cast<double>(pipeline_rss_kb) /
      static_cast<double>(full.mesh.triangle_count());
  std::printf("peak RSS per final triangle: %.1f B/tri\n", rss_per_tri);

  obs::BenchReport report;
  report.bench = "bench_sequential";
  report.case_name = "three-element-400";
  report.ranks = 1;
  report.wall_ms = 1000.0 * bench_wall.seconds();
  report.counters = {
      {"cloud_points", static_cast<double>(bl.points.size())},
      {"bl_direct_s", t_direct},
      {"bl_decomposed_s", t_decomposed},
      {"reference_s", t_reference},
      {"pipeline_s", t_pipeline},
      {"pipeline_triangles",
       static_cast<double>(full.mesh.triangle_count())},
      {"sequential_efficiency_pct", 100.0 * t_reference / t_pipeline},
      {"peak_rss_per_triangle_b", rss_per_tri},
  };
  if (write_bench_json(report, "BENCH_sequential.json")) {
    std::printf("wrote BENCH_sequential.json\n");
  }
  return 0;
}
