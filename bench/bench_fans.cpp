// Figures 3 & 4: poorly sized triangles at a trailing edge caused by the
// slope discontinuity, fixed by a fan of curved rays.
//
// Measured as the largest angle between neighboring rays before and after
// fan refinement, swept over the large-angle threshold. Without fans the
// trailing-edge cusp leaves a near-180-degree gap between neighboring rays
// (Figure 3's spread elements); with fans every gap is below the threshold
// (Figure 4).

#include <cmath>
#include <cstdio>

#include "blayer/rays.hpp"
#include "geom/segment.hpp"

using namespace aero;

namespace {

constexpr double kRad2Deg = 180.0 / 3.14159265358979323846;

/// Largest angular gap between consecutive rays (fans collapse gaps).
double max_gap_deg(const ElementRays& er) {
  double worst = 0.0;
  for (std::size_t i = 0; i + 1 < er.rays.size(); ++i) {
    worst = std::max(worst, std::fabs(signed_angle(er.rays[i].dir,
                                                   er.rays[i + 1].dir)));
  }
  return worst * kRad2Deg;
}

}  // namespace

int main() {
  const AirfoilConfig config = make_three_element(300);

  std::printf("Figure 3/4: ray-angle refinement at cusps and corners\n");
  std::printf("%12s %10s %10s %8s %10s %12s\n", "threshold", "before",
              "after", "fans", "fan rays", "extra rays");

  for (const double threshold : {40.0, 30.0, 20.0, 10.0, 5.0}) {
    BoundaryLayerOptions opts;
    opts.growth = {GrowthKind::kGeometric, 3e-4, 1.2};
    opts.large_angle_deg = threshold;

    double before = 0.0, after = 0.0;
    std::size_t fans = 0, fan_rays = 0, extra = 0;
    for (std::uint32_t e = 0; e < config.elements.size(); ++e) {
      // "Before": single bisector ray per vertex = build with a threshold
      // no angle can exceed.
      BoundaryLayerOptions off = opts;
      off.large_angle_deg = 360.0;
      const ElementRays raw = build_rays(config.elements[e], off, e, nullptr);
      before = std::max(before, max_gap_deg(raw));

      IntersectionStats stats;
      const ElementRays refined =
          build_rays(config.elements[e], opts, e, &stats);
      after = std::max(after, max_gap_deg(refined));
      fans += stats.fans;
      fan_rays += stats.fan_rays;
      extra += stats.edge_refinement_rays;
    }
    std::printf("%10.0f d %9.1f d %9.1f d %8zu %10zu %12zu\n", threshold,
                before, after, fans, fan_rays, extra);
  }
  std::printf("\npaper: trailing-edge gap (Fig 3) -> bounded by the "
              "threshold after the fan of curved rays (Fig 4)\n");
  return 0;
}
