// Figures 9 & 10: the four initial quadrants and the recursively decoupled
// Delaunay subdomains, each with roughly the same estimated triangle count.
//
// Reports subdomain counts, per-subdomain triangle estimates vs actual
// refined counts (estimate quality drives load balance), and verifies the
// decoupling property: zero shared-border splits during refinement.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "inviscid/decouple.hpp"
#include "core/timer.hpp"

using namespace aero;

int main() {
  InviscidDomain domain;
  domain.inner = BBox2{{-1.0, -0.8}, {2.0, 0.8}};
  domain.outer = BBox2{{-29.5, -30.0}, {30.5, 30.0}};
  domain.sizing = GradedSizing{domain.inner, 0.01, 0.02};

  std::printf("Figure 9: initial quadrants (far field %gx%g chords)\n",
              domain.outer.width(), domain.outer.height());
  auto quads = initial_quadrants(domain);
  for (std::size_t i = 0; i < quads.size(); ++i) {
    std::printf("  quadrant %zu: %zu border points, est %.0f triangles\n", i,
                quads[i].border.size(),
                quads[i].estimated_triangles(domain.sizing));
  }

  std::printf("\nFigure 10: recursive '+' decoupling\n");
  std::printf("%14s %8s %12s %12s %12s\n", "target_tris", "leaves",
              "est min", "est median", "est max");
  for (const double target : {400000.0, 100000.0, 25000.0, 6000.0}) {
    std::vector<InviscidSubdomain> leaves;
    for (const auto& q : initial_quadrants(domain)) {
      for (auto& leaf : decouple_recursive(q, domain.sizing, target, 12)) {
        leaves.push_back(std::move(leaf));
      }
    }
    std::vector<double> est;
    for (const auto& l : leaves) {
      est.push_back(l.estimated_triangles(domain.sizing));
    }
    std::sort(est.begin(), est.end());
    std::printf("%14.0f %8zu %12.0f %12.0f %12.0f\n", target, leaves.size(),
                est.front(), est[est.size() / 2], est.back());
  }

  // Estimate quality + decoupling property on a medium decomposition.
  std::printf("\nestimate vs actual (target 25000):\n");
  std::vector<InviscidSubdomain> leaves;
  for (const auto& q : initial_quadrants(domain)) {
    for (auto& leaf : decouple_recursive(q, domain.sizing, 25000.0, 12)) {
      leaves.push_back(std::move(leaf));
    }
  }
  double worst_ratio = 0.0, sum_est = 0.0, sum_act = 0.0;
  std::size_t splits = 0;
  Timer t;
  for (const auto& leaf : leaves) {
    const double est = leaf.estimated_triangles(domain.sizing);
    const auto r = refine_subdomain(leaf, domain.sizing);
    const double act = static_cast<double>(r.mesh.inside_triangle_count());
    splits += r.refine_stats.segment_splits;
    sum_est += est;
    sum_act += act;
    worst_ratio = std::max(worst_ratio, std::max(est / act, act / est));
  }
  std::printf("  %zu subdomains refined in %.2f s: estimate/actual total "
              "%.0f/%.0f, worst per-subdomain ratio %.2fx\n",
              leaves.size(), t.seconds(), sum_est, sum_act, worst_ratio);
  std::printf("  shared-border splits during refinement: %zu "
              "(decoupling property: must be 0)\n", splits);
  std::printf("\npaper Fig 10: subdomains sized so each holds roughly the "
              "same number of triangles; smaller area near the body\n");
  return 0;
}
