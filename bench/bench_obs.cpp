// Tracing overhead: the observability subsystem promises < 2% end-to-end
// cost when enabled and zero measurable cost when the macros compile out.
//
// Measured two ways:
//   1. per-event micro cost -- nanoseconds per span / instant emit into the
//      ring buffer, and per disabled-site check (one relaxed atomic load);
//   2. pipeline cost -- the full mesh pipeline run alternately with tracing
//      off and on (interleaved, after a warm-up run, so drift and cache
//      effects hit both sides equally), reported as a percent delta.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/mesh_generator.hpp"
#include "core/timer.hpp"
#include "obs/bench_report.hpp"
#include "obs/trace.hpp"

int main() {
  using namespace aero;
  Timer bench_wall;
  obs::TraceRecorder& rec = obs::TraceRecorder::global();

  // --- Per-event micro cost ------------------------------------------------
  constexpr std::size_t kEvents = 1u << 20;
  rec.reset();
  rec.set_capacity(kEvents + 16);
  rec.set_enabled(true);
  double span_ns, instant_ns, disabled_ns;
  {
    Timer t;
    for (std::size_t k = 0; k < kEvents; ++k) {
      AERO_TRACE_SPAN("bench", "emit");
    }
    span_ns = 1e9 * t.seconds() / kEvents;
  }
  rec.reset();
  rec.set_capacity(kEvents + 16);
  {
    Timer t;
    for (std::size_t k = 0; k < kEvents; ++k) {
      AERO_TRACE_INSTANT_ARG("bench", "emit", k);
    }
    instant_ns = 1e9 * t.seconds() / kEvents;
  }
  rec.set_enabled(false);
  rec.reset();
  {
    Timer t;
    for (std::size_t k = 0; k < kEvents; ++k) {
      AERO_TRACE_SPAN("bench", "emit");
    }
    disabled_ns = 1e9 * t.seconds() / kEvents;
  }
  std::printf("per-event cost: span %.1f ns, instant %.1f ns, "
              "disabled site %.2f ns\n\n",
              span_ns, instant_ns, disabled_ns);

  // --- Pipeline cost -------------------------------------------------------
  Options config;
  config.airfoil = make_three_element(400);
  config.growth_kind = GrowthKind::kGeometric;
  config.first_height = 4e-4;
  config.growth_ratio = 1.2;
  config.max_layers = 40;
  config.farfield_chords = 10.0;
  config.inviscid_target_triangles = 200000.0;
  config.bl_min_points = 800;
  config.bl_max_level = 12;

  generate_mesh(config);  // warm-up: fault caches and the allocator

  // Alternate which side goes first each rep so cache warmth and clock drift
  // cancel instead of biasing one side.
  constexpr int kReps = 6;
  std::vector<double> off_s, on_s;
  const auto run_once = [&](bool traced, std::vector<double>& out) {
    config.trace = traced;
    rec.set_enabled(false);
    rec.reset();
    Timer t;
    generate_mesh(config);
    out.push_back(t.seconds());
    rec.set_enabled(false);
  };
  for (int rep = 0; rep < kReps; ++rep) {
    if (rep % 2 == 0) {
      run_once(false, off_s);
      run_once(true, on_s);
    } else {
      run_once(true, on_s);
      run_once(false, off_s);
    }
  }
  const auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double off = median(off_s), on = median(on_s);
  const double overhead_pct = 100.0 * (on - off) / off;
  std::printf("pipeline (median of %d): untraced %.3f s, traced %.3f s, "
              "overhead %+.2f%%   [budget: < 2%%]\n",
              kReps, off, on, overhead_pct);

  obs::BenchReport report;
  report.bench = "bench_obs";
  report.case_name = "three-element-400";
  report.ranks = 1;
  report.wall_ms = 1000.0 * bench_wall.seconds();
  report.counters = {
      {"span_ns", span_ns},
      {"instant_ns", instant_ns},
      {"disabled_site_ns", disabled_ns},
      {"pipeline_untraced_s", off},
      {"pipeline_traced_s", on},
      {"overhead_pct", overhead_pct},
  };
  if (write_bench_json(report, "BENCH_obs.json")) {
    std::printf("wrote BENCH_obs.json\n");
  }
  return overhead_pct < 2.0 ? 0 : 1;
}
