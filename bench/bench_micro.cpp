// Micro-benchmarks (google-benchmark): the hot kernels under everything --
// exact predicates, ADT queries, incremental triangulation, refinement.

#include <benchmark/benchmark.h>

#include <deque>
#include <random>

#include "delaunay/brio.hpp"
#include "delaunay/quadedge.hpp"
#include "delaunay/triangulator.hpp"
#include "geom/predicates.hpp"
#include "geom/predicates_fast.hpp"
#include "hull/monotone_chain.hpp"
#include "runtime/rma.hpp"
#include "spatial/adt.hpp"

namespace aero {
namespace {

std::vector<Vec2> cloud(int n, unsigned seed = 1) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pts.push_back({d(rng), d(rng)});
  return pts;
}

void BM_Orient2dFastPath(benchmark::State& state) {
  const auto pts = cloud(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const Vec2 a = pts[i % 1024], b = pts[(i + 7) % 1024],
               c = pts[(i + 13) % 1024];
    benchmark::DoNotOptimize(orient2d(a, b, c));
    ++i;
  }
}
BENCHMARK(BM_Orient2dFastPath);

void BM_Orient2dDegenerate(benchmark::State& state) {
  // Exactly collinear inputs force the full exact evaluation.
  const Vec2 a{0.1, 0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(orient2d(a, a * 2.0, a * 3.0));
  }
}
BENCHMARK(BM_Orient2dDegenerate);

void BM_IncircleFastPath(benchmark::State& state) {
  const auto pts = cloud(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(incircle(pts[i % 1024], pts[(i + 3) % 1024],
                                      pts[(i + 11) % 1024],
                                      pts[(i + 17) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_IncircleFastPath);

void BM_Orient2dFiltered(benchmark::State& state) {
  // The kernel's semi-static filter entry (predicates_fast.hpp): on random
  // input it should stay entirely in the inline stage-A path.
  const auto pts = cloud(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const Vec2 a = pts[i % 1024], b = pts[(i + 7) % 1024],
               c = pts[(i + 13) % 1024];
    benchmark::DoNotOptimize(orient2d_fast(a, b, c));
    ++i;
  }
}
BENCHMARK(BM_Orient2dFiltered);

void BM_IncircleFiltered(benchmark::State& state) {
  const auto pts = cloud(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(incircle_fast(pts[i % 1024], pts[(i + 3) % 1024],
                                           pts[(i + 11) % 1024],
                                           pts[(i + 17) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_IncircleFiltered);

void BM_IncircleCocircular(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        incircle({0, 0}, {1, 0}, {1, 1}, {0, 1}));  // exact zero
  }
}
BENCHMARK(BM_IncircleCocircular);

void BM_AdtInsert(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto pts = cloud(n);
  for (auto _ : state) {
    AlternatingDigitalTree adt(BBox2{{0, 0}, {1, 1}});
    for (int i = 0; i < n; ++i) {
      adt.insert(BBox2{pts[static_cast<std::size_t>(i)],
                       pts[static_cast<std::size_t>(i)] + Vec2{0.01, 0.01}},
                 static_cast<std::uint32_t>(i));
    }
    benchmark::DoNotOptimize(adt.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AdtInsert)->Arg(1000)->Arg(10000);

void BM_AdtQuery(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto pts = cloud(n);
  AlternatingDigitalTree adt(BBox2{{0, 0}, {1, 1}});
  for (int i = 0; i < n; ++i) {
    adt.insert(BBox2{pts[static_cast<std::size_t>(i)],
                     pts[static_cast<std::size_t>(i)] + Vec2{0.01, 0.01}},
               static_cast<std::uint32_t>(i));
  }
  std::size_t i = 0;
  std::size_t hits = 0;
  for (auto _ : state) {
    const Vec2 q = pts[i++ % static_cast<std::size_t>(n)];
    adt.for_each_overlap(BBox2{q, q + Vec2{0.02, 0.02}},
                         [&hits](std::uint32_t) { ++hits; });
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_AdtQuery)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DelaunaySorted(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  auto pts = cloud(n);
  std::sort(pts.begin(), pts.end(), LessXY{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        triangulate_points(pts, /*assume_sorted=*/true).mesh.triangle_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DelaunaySorted)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_DelaunayShuffled(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  auto pts = cloud(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        triangulate_points(pts, /*assume_sorted=*/false)
            .mesh.triangle_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DelaunayShuffled)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_DelaunayDivideAndConquer(benchmark::State& state) {
  // The paper's Triangle configuration: D&C with vertical cuts on x-sorted
  // input. Compare against BM_DelaunaySorted (the incremental kernel).
  const auto n = static_cast<int>(state.range(0));
  auto pts = cloud(n);
  std::sort(pts.begin(), pts.end(), LessXY{});
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dc_delaunay(pts).size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DelaunayDivideAndConquer)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_BrioOrder(benchmark::State& state) {
  // Cost of computing the BRIO/Hilbert permutation alone (the overhead
  // kBrio pays up front before any insertion happens).
  const auto n = static_cast<int>(state.range(0));
  const auto pts = cloud(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(brio_order(pts).size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BrioOrder)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DelaunayBrio(benchmark::State& state) {
  // Full kBrio construction; compare against BM_DelaunaySorted (kXSorted
  // plus its sort) and BM_DelaunayShuffled on the same clouds.
  const auto n = static_cast<int>(state.range(0));
  const auto pts = cloud(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        triangulate_points(pts, InsertionOrder::kBrio).mesh.triangle_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DelaunayBrio)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_InsertWithHint(benchmark::State& state) {
  // Incremental insertion throughput into a warm mesh, seeding each locate
  // with the previous result's triangle (the Ruppert circumcenter pattern).
  const auto base = cloud(10000, 3);
  const auto extra = cloud(4096, 4);
  for (auto _ : state) {
    state.PauseTiming();
    DelaunayMesh mesh;
    mesh.triangulate(base);
    state.ResumeTiming();
    TriIndex hint = kNoTri;
    for (const Vec2 p : extra) {
      const LocateResult loc = mesh.locate(p, hint);
      mesh.insert_point(p, /*respect_constraints=*/false, loc.tri);
      hint = loc.tri;
    }
    benchmark::DoNotOptimize(mesh.triangle_count());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_InsertWithHint);

void BM_RuppertRefine(benchmark::State& state) {
  Pslg p;
  p.points = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  p.segments = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  const double area = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    TriangulateOptions o;
    o.refine = true;
    o.refine_options.radius_edge_bound = 1.4142135623730951;
    o.refine_options.max_area = area;
    benchmark::DoNotOptimize(triangulate(p, o).mesh.triangle_count());
  }
}
BENCHMARK(BM_RuppertRefine)->Arg(1000)->Arg(10000);

// -- Transport hot path ------------------------------------------------------
// Control traffic (acks 12 B, steal requests 0 B, window control frames
// 37 B) dominates message *count*; these measure one mailbox hop of such a
// payload. The vector variant is the pre-inline-storage behavior: every send
// heap-allocates. The ByteBuf variant must not touch the allocator at all
// for payloads at or below ByteBuf::kInlineCapacity (64 B).

void BM_SmallSendHeapVector(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<std::uint8_t> src(n, 0x5a);
  std::deque<std::vector<std::uint8_t>> mailbox;
  for (auto _ : state) {
    mailbox.emplace_back(src.begin(), src.end());  // alloc + copy per send
    benchmark::DoNotOptimize(mailbox.back().data());
    mailbox.pop_front();  // receiver consumes; allocation freed
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmallSendHeapVector)->Arg(12)->Arg(37)->Arg(64);

void BM_SmallSendInlineByteBuf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<std::uint8_t> src(n, 0x5a);
  std::deque<ByteBuf> mailbox;
  for (auto _ : state) {
    mailbox.emplace_back(src.data(), n);  // folds inline, no heap traffic
    benchmark::DoNotOptimize(mailbox.back().data());
    mailbox.pop_front();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmallSendInlineByteBuf)->Arg(12)->Arg(37)->Arg(64);

void BM_WindowFrameCodec(benchmark::State& state) {
  // Sealing plus parsing of the 37-byte zero-copy control frame: the entire
  // per-transfer mailbox cost of the RMA path.
  std::uint64_t nonce = 1;
  for (auto _ : state) {
    const ByteBuf f = make_window_frame(nonce++, 3, 17, 1 << 20, 0xabcdef);
    benchmark::DoNotOptimize(parse_frame(f));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowFrameCodec);

void BM_BufferPoolCycle(benchmark::State& state) {
  // Steady-state serialize/consume/release cycle against the size-classed
  // pool; compare with BM_FreshAllocCycle to see what recycling saves.
  const auto n = static_cast<std::size_t>(state.range(0));
  BufferPool pool;
  for (auto _ : state) {
    auto buf = pool.acquire(n);
    buf.resize(n);
    benchmark::DoNotOptimize(buf.data());
    pool.release(std::move(buf));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolCycle)->Arg(4096)->Arg(262144);

void BM_FreshAllocCycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<std::uint8_t> buf;
    buf.reserve(n);
    buf.resize(n);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreshAllocCycle)->Arg(4096)->Arg(262144);

void BM_LiftedHull(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  auto pts = cloud(n);
  std::sort(pts.begin(), pts.end(), LessYX{});
  const Vec2 median = pts[pts.size() / 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lifted_lower_hull(pts, median, CutAxis::kVertical).size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LiftedHull)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace aero
