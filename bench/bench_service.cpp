// Meshing-as-a-service throughput and latency.
//
// Three legs, all through the in-process MeshServer (the daemon adds only
// unix-socket framing around it):
//   1. Cache economics: one configuration meshed cold, then requested
//      again. Reports the hit/cold speedup (the acceptance bar is >= 100x)
//      and proves the cached bytes are bit-identical to the fresh mesh.
//   2. Multi-tenant throughput: 8 tenant threads, each submitting a mix of
//      repeat configurations at mixed priorities against 4 workers.
//      Reports requests/s and client-observed p50/p99 latency -- the
//      numbers tools/bench_compare.py gates.
//   3. Fault leg: 4-rank pooled requests under the PR 1 chaos fabric.
//      Every request must come back exactly once (zero dropped, zero
//      duplicated) with a complete mesh.

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/options.hpp"
#include "core/timer.hpp"
#include "obs/bench_report.hpp"
#include "service/server.hpp"

namespace {

aero::MeshRequest request_of(std::uint64_t id, int priority,
                             std::size_t points, int ranks = 0) {
  aero::MeshRequest req;
  req.id = id;
  req.priority = priority;
  req.options = aero::Options()
                    .geometry(aero::make_naca0012(points))
                    .set_max_layers(12)
                    .set_farfield_chords(8.0)
                    .set_ranks(ranks);
  return req;
}

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

}  // namespace

int main() {
  using namespace aero;
  obs::BenchReport report;
  report.bench = "bench_service";
  report.case_name = "naca0012-multitenant";
  report.ranks = 1;

  // -- Leg 1: cache economics -----------------------------------------------
  double cold_ms = 0.0, hit_ms = 0.0;
  bool bit_identical = false;
  {
    ServerConfig config;
    config.workers = 1;
    MeshServer server(config);
    Timer t_cold;
    const MeshResponse fresh = server.submit_wait(request_of(1, 0, 200));
    cold_ms = t_cold.seconds() * 1e3;
    Timer t_hit;
    const MeshResponse hit = server.submit_wait(request_of(2, 0, 200));
    hit_ms = t_hit.seconds() * 1e3;
    bit_identical = fresh.status == ServiceStatus::kOk &&
                    hit.status == ServiceStatus::kOk && hit.cache_hit &&
                    hit.mesh_blob == fresh.mesh_blob &&
                    !fresh.mesh_blob.empty();
    std::printf("cache: cold %.2f ms, hit %.4f ms, speedup %.0fx, "
                "bit-identical %s\n",
                cold_ms, hit_ms, cold_ms / hit_ms,
                bit_identical ? "yes" : "NO");
  }

  // -- Leg 2: multi-tenant throughput ---------------------------------------
  constexpr int kTenants = 8;
  constexpr int kPerTenant = 12;
  constexpr int kConfigs = 6;  // distinct geometries cycled by every tenant
  std::vector<double> latencies_ms;
  std::size_t throughput_hits = 0;
  double wall_ms = 0.0;
  {
    ServerConfig config;
    config.workers = 4;
    config.queue_capacity = 128;  // sized so this leg measures service, not
                                  // backpressure (leg-3 tests rejection)
    MeshServer server(config);
    std::mutex m;
    Timer wall;
    std::vector<std::thread> tenants;
    tenants.reserve(kTenants);
    for (int t = 0; t < kTenants; ++t) {
      tenants.emplace_back([&, t] {
        std::vector<double> mine;
        mine.reserve(kPerTenant);
        for (int j = 0; j < kPerTenant; ++j) {
          const std::uint64_t id =
              static_cast<std::uint64_t>(t * kPerTenant + j + 1);
          // Repeat configurations (cache hits) at mixed priorities.
          const std::size_t points =
              120 + 10 * static_cast<std::size_t>((t + j) % kConfigs);
          Timer rt;
          const MeshResponse resp =
              server.submit_wait(request_of(id, j % 3, points));
          if (resp.status != ServiceStatus::kOk) {
            std::fprintf(stderr, "request %llu failed: %s\n",
                         static_cast<unsigned long long>(id),
                         to_string(resp.status));
            std::exit(1);
          }
          mine.push_back(rt.seconds() * 1e3);
        }
        const std::lock_guard<std::mutex> lock(m);
        latencies_ms.insert(latencies_ms.end(), mine.begin(), mine.end());
      });
    }
    for (std::thread& t : tenants) t.join();
    wall_ms = wall.seconds() * 1e3;
    throughput_hits = server.stats().cache_hits;
  }
  const double total = kTenants * kPerTenant;
  const double requests_per_s = total / (wall_ms / 1e3);
  const double p50 = percentile(latencies_ms, 0.50);
  const double p99 = percentile(latencies_ms, 0.99);
  std::printf(
      "throughput: %d requests (%d tenants x %d), %.0f req/s, p50 %.2f ms, "
      "p99 %.2f ms, %zu cache hits\n",
      static_cast<int>(total), kTenants, kPerTenant, requests_per_s, p50,
      p99, throughput_hits);

  // -- Leg 3: 4-rank fault-injected sustained load --------------------------
  constexpr int kFaultRequests = 8;
  std::size_t fault_dropped = 0, fault_duplicated = 0, fault_ok = 0;
  {
    ServerConfig config;
    config.workers = 2;
    MeshServer server(config);
    std::vector<std::future<MeshResponse>> futures;
    futures.reserve(kFaultRequests);
    for (int i = 0; i < kFaultRequests; ++i) {
      MeshRequest req = request_of(static_cast<std::uint64_t>(100 + i),
                                   i % 2, 80 + 2 * static_cast<std::size_t>(i),
                                   /*ranks=*/4);
      req.options.set_fault_rate(0.02).set_fault_seed(
          static_cast<std::uint64_t>(i) * 7919 + 1);
      futures.push_back(server.submit(std::move(req)));
    }
    std::vector<int> responses(kFaultRequests, 0);
    for (int i = 0; i < kFaultRequests; ++i) {
      const MeshResponse resp = futures[static_cast<std::size_t>(i)].get();
      const std::size_t idx = static_cast<std::size_t>(resp.id) - 100;
      if (idx < responses.size()) ++responses[idx];
      if (resp.status == ServiceStatus::kOk && resp.triangles > 0) ++fault_ok;
    }
    for (const int n : responses) {
      if (n == 0) ++fault_dropped;
      if (n > 1) ++fault_duplicated;
    }
    std::printf(
        "fault leg: %d 4-rank chaos requests, %zu ok, %zu dropped, "
        "%zu duplicated\n",
        kFaultRequests, fault_ok, fault_dropped, fault_duplicated);
  }

  report.wall_ms = wall_ms;
  report.counters = {
      {"requests_per_s", requests_per_s},
      {"p50_ms", p50},
      {"p99_ms", p99},
      {"throughput_requests", total},
      {"throughput_cache_hits", static_cast<double>(throughput_hits)},
      {"cache_cold_ms", cold_ms},
      {"cache_hit_ms", hit_ms},
      {"cache_hit_speedup", cold_ms / hit_ms},
      {"cache_bit_identical", bit_identical ? 1.0 : 0.0},
      {"fault_requests", static_cast<double>(kFaultRequests)},
      {"fault_ok", static_cast<double>(fault_ok)},
      {"fault_dropped", static_cast<double>(fault_dropped)},
      {"fault_duplicated", static_cast<double>(fault_duplicated)},
  };
  if (obs::write_bench_json(report, "BENCH_service.json")) {
    std::printf("wrote BENCH_service.json\n");
  }

  const bool pass = bit_identical && cold_ms / hit_ms >= 100.0 &&
                    fault_dropped == 0 && fault_duplicated == 0 &&
                    fault_ok == static_cast<std::size_t>(kFaultRequests);
  std::printf("%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
