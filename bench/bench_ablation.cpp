// Ablations of the design choices the paper's Implementation section calls
// out (and DESIGN.md indexes):
//   1. cut axis by shortest bbox edge vs always-vertical cuts
//   2. x-sorted fast path into the triangulator vs re-sorting
//   3. storage reuse in the split (the left child keeps the parent array)
//      -- measured as split throughput
//   4. largest-first (priority) scheduling vs smallest-first in the
//      simulated cluster

#include <algorithm>
#include <cstdio>
#include <random>

#include "blayer/boundary_layer.hpp"
#include "hull/subdomain.hpp"
#include "core/timer.hpp"
#include "runtime/cluster_model.hpp"

using namespace aero;

namespace {

BoundaryLayer make_cloud() {
  const AirfoilConfig config = make_three_element(350);
  BoundaryLayerOptions opts;
  opts.growth = {GrowthKind::kGeometric, 2.5e-4, 1.2};
  opts.max_layers = 45;
  return build_boundary_layer(config, opts);
}

}  // namespace

int main() {
  const BoundaryLayer bl = make_cloud();
  std::printf("cloud: %zu points\n\n", bl.points.size());

  // --- 1. cut-axis policy --------------------------------------------------
  {
    std::printf("ablation 1: cut axis = shortest bbox edge vs forced axis\n");
    // Stretch the cloud in x so adaptive cutting prefers vertical lines and
    // a forced HORIZONTAL line is maximally wrong.
    std::vector<Vec2> pts;
    pts.reserve(bl.points.size());
    for (const Vec2 p : bl.points) pts.push_back({p.x * 8.0, p.y});
    for (const auto& [label, force] :
         {std::pair{"adaptive (shortest bbox edge)", -1},
          std::pair{"forced vertical", 0},
          std::pair{"forced horizontal", 1}}) {
      DecomposeOptions o{2000, 12, force};
      Timer t;
      auto leaves = decompose(make_root_subdomain(pts), o);
      const double dec_s = t.seconds();
      Timer tm;
      std::size_t shared_pts = 0;
      for (const auto& leaf : leaves) {
        triangulate_subdomain(leaf);
        shared_pts += leaf.size();
      }
      std::printf("  %-30s leaves=%3zu duplicated pts=%5zu decomp=%6.3f s "
                  "mesh=%6.3f s\n",
                  label, leaves.size(), shared_pts - pts.size(), dec_s,
                  tm.seconds());
    }
    std::printf("  (bad cut axes produce long skinny subdomains with longer "
                "dividing paths: more duplicated path vertices and slower "
                "meshing)\n\n");
  }

  // --- 2. sorted fast path -------------------------------------------------
  {
    std::printf("ablation 2: x-sorted fast path into the triangulator\n");
    std::vector<Vec2> pts = bl.points;
    std::sort(pts.begin(), pts.end(), LessXY{});
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
    Timer t1;
    const auto sorted = triangulate_points(pts, /*assume_sorted=*/true);
    const double t_sorted = t1.seconds();
    std::mt19937_64 rng(1);
    std::shuffle(pts.begin(), pts.end(), rng);
    Timer t2;
    const auto shuffled = triangulate_points(pts, /*assume_sorted=*/false);
    const double t_resort = t2.seconds();
    std::printf("  pre-sorted input : %.3f s (%zu tris)\n", t_sorted,
                sorted.mesh.triangle_count());
    std::printf("  shuffled + sort  : %.3f s (%zu tris)\n", t_resort,
                shuffled.mesh.triangle_count());
    std::printf("  speedup from maintaining sorted order: %.2fx\n\n",
                t_resort / std::max(t_sorted, 1e-9));
  }

  // --- 3. split throughput (storage reuse path) ----------------------------
  {
    std::printf("ablation 3: split throughput (left child reuses parent "
                "storage, hull copies placed to preserve sortedness)\n");
    Timer t;
    int splits = 0;
    std::vector<Subdomain> stack{make_root_subdomain(bl.points)};
    while (!stack.empty()) {
      Subdomain s = std::move(stack.back());
      stack.pop_back();
      if (s.size() < 4000 || s.level >= 8) continue;
      auto [l, r] = split_subdomain(std::move(s));
      ++splits;
      stack.push_back(std::move(l));
      stack.push_back(std::move(r));
    }
    const double sec = t.seconds();
    std::printf("  %d splits of a %zu-point cloud in %.3f s (%.0f kpts/s "
                "split throughput)\n\n",
                splits, bl.points.size(), sec,
                bl.points.size() * splits / sec / 1000.0);
  }

  // --- 4. scheduling policy in the cluster model ---------------------------
  {
    std::printf("ablation 4: largest-first vs smallest-first scheduling\n");
    Options config;
    config.airfoil = make_three_element(300);
    config.growth_kind = GrowthKind::kGeometric;
    config.first_height = 3e-4;
    config.growth_ratio = 1.22;
    config.max_layers = 40;
    config.farfield_chords = 15.0;
    config.inviscid_target_triangles = 15000.0;
    config.bl_min_points = 1000;
    config.bl_max_level = 12;
    TaskGraph graph = build_task_graph(config);

    const SimResult largest = simulate_cluster(graph, 32, ClusterOptions{});
    // Smallest-first: invert the priorities.
    TaskGraph inverted = graph;
    double max_cost = 0.0;
    for (const TaskNode& n : graph.nodes) {
      max_cost = std::max(max_cost, n.cost_estimate);
    }
    for (TaskNode& n : inverted.nodes) {
      n.cost_estimate = max_cost - n.cost_estimate;
    }
    const SimResult smallest = simulate_cluster(inverted, 32, ClusterOptions{});
    std::printf("  largest-first : speedup %.2f at 32 ranks (%zu steals)\n",
                largest.speedup, largest.steals);
    std::printf("  smallest-first: speedup %.2f at 32 ranks (%zu steals)\n",
                smallest.speedup, smallest.steals);
    std::printf("  (the paper meshes the largest subdomains first and saves "
                "small ones for endgame balancing)\n");
  }
  return 0;
}
