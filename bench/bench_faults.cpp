// Fault-tolerance overhead and chaos-run degradation.
//
// The recovery machinery (CRC-32 framing of every payload, acked work
// transfers with retransmission, heartbeats, the watchdog thread) is always
// on. Two questions:
//   1. What does it cost when nothing fails? Compare pool wall time against
//      the repetitions' spread; the budget is < 2% over a hypothetical
//      unprotected pool, and since the protection cannot be compiled out,
//      the measurable proxy is the CRC + framing share of the wall time
//      (bytes moved x CRC throughput + per-message constant).
//   2. How gracefully does a chaos run degrade? Same work, a lossy fabric,
//      a dead rank, and a poisoned unit -- report wall-time inflation and
//      the recovery counters.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/mesh_generator.hpp"
#include "core/pipeline_config.hpp"  // aerolint: allow(public-api)
#include "core/timer.hpp"
#include "runtime/pool.hpp"

int main() {
  using namespace aero;

  // Raw CRC-32 throughput: the per-byte cost of the framing.
  double crc_gbps = 0.0;
  {
    std::vector<std::uint8_t> buf(1 << 22);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
    }
    std::uint32_t acc = 0;
    Timer t;
    const int reps = 16;
    for (int r = 0; r < reps; ++r) acc ^= crc32(buf.data(), buf.size());
    const double sec = t.seconds();
    volatile std::uint32_t sink = acc;  // keep the loop alive
    (void)sink;
    crc_gbps = static_cast<double>(buf.size()) * reps / sec / 1e9;
    std::printf("crc32 throughput: %.2f GB/s\n", crc_gbps);
  }

  Options cfg;
  cfg.airfoil = make_naca0012(200);
  cfg.growth_kind = GrowthKind::kGeometric;
  cfg.first_height = 5e-4;
  cfg.growth_ratio = 1.25;
  cfg.max_layers = 35;
  cfg.farfield_chords = 10.0;
  cfg.inviscid_target_triangles = 6000.0;
  cfg.bl_min_points = 500;
  cfg.bl_max_level = 10;

  const BoundaryLayer bl = build_boundary_layer(cfg.airfoil, blayer_options(cfg));
  MergedMesh bl_mesh;
  triangulate_boundary_layer(bl, bl_decompose_options(cfg), bl_mesh, nullptr, nullptr);
  const InviscidDomain domain = make_inviscid_domain(bl, cfg, bl_mesh);

  PoolOptions opts;
  opts.nranks = 4;
  opts.steal_threshold = 1.0;
  opts.update_period = std::chrono::microseconds(50);
  opts.inviscid_target_triangles = cfg.inviscid_target_triangles;
  opts.tuning.heartbeat_timeout = std::chrono::milliseconds(1000);

  const auto make_initial = [&] {
    std::vector<WorkUnit> initial;
    for (InviscidSubdomain& quad : initial_quadrants(domain)) {
      initial.push_back(
          WorkUnit{WorkUnit::Kind::kInviscidDecouple, {}, std::move(quad)});
    }
    return initial;
  };

  // Fault-free pool: repeat and take the best (least-disturbed) run.
  const int reps = 5;
  double best = 1e30;
  std::size_t tris = 0, bytes = 0, messages_lower_bound = 0;
  for (int r = 0; r < reps; ++r) {
    MergedMesh out;
    const PoolStats s = run_pool(make_initial(), domain.sizing, opts, out);
    best = std::min(best, s.wall_seconds);
    tris = out.triangle_count();
    bytes = s.transfer_bytes + s.result_bytes;
    messages_lower_bound = s.steals * 2 + s.steal_denials * 2 + opts.nranks;
  }
  // The protection the pool cannot shed: a CRC at each payload end
  // (sender-side compute + receiver-side validation, at the measured
  // throughput) plus a 12-byte nonce frame and an ack message per transfer.
  // Estimate its share of the wall time.
  const double protection_sec =
      static_cast<double>(bytes) * 2.0 / (crc_gbps * 1e9) +
      static_cast<double>(messages_lower_bound) * 2e-6;
  std::printf(
      "fault-free pool: %.3f s best-of-%d, %zu triangles, %zu protocol "
      "bytes\n",
      best, reps, tris, bytes);
  std::printf(
      "protection share estimate: %.4f s (%.2f%% of wall; budget 2%%)\n",
      protection_sec, 100.0 * protection_sec / best);

  // Chaos run: lossy fabric + dead rank + poisoned unit.
  PoolOptions chaos = opts;
  chaos.faults.enabled = true;
  chaos.faults.seed = 7;
  chaos.faults.drop_rate = 0.08;
  chaos.faults.duplicate_rate = 0.05;
  chaos.faults.corrupt_rate = 0.05;
  chaos.faults.delay_rate = 0.05;
  chaos.faults.dead_ranks = {1};
  chaos.faults.fail_unit_ids = {0};

  MergedMesh out;
  const PoolStats s = run_pool(make_initial(), domain.sizing, chaos, out);
  std::printf(
      "chaos pool: %.3f s (%.2fx fault-free), %zu triangles (%s), "
      "status %s\n",
      s.wall_seconds, s.wall_seconds / best, out.triangle_count(),
      out.triangle_count() == tris ? "identical" : "MISMATCH",
      to_string(s.status));
  std::printf(
      "  dropped=%zu duplicated=%zu corrupt=%zu retransmits=%zu "
      "retries=%zu failures=%zu requeued=%zu fallback=%zu dead=%zu "
      "reclaimed=%zu\n",
      s.dropped_messages, s.duplicated_messages, s.corrupt_payloads,
      s.retransmits, s.unit_retries, s.unit_failures, s.requeued_units,
      s.fallback_units, s.dead_ranks, s.reclaimed_units);
  std::printf(
      "  transport: msgs=%zu copied=%zu B zero_copy=%zu (%zu B) "
      "coalesced=%zu batch_rejects=%zu pool_hits=%zu pool_misses=%zu\n",
      s.comm_messages, s.comm_bytes, s.zero_copy_hits, s.window_bytes,
      s.coalesced_messages, s.batch_rejects, s.buffer_pool_hits,
      s.buffer_pool_misses);

  // The same chaos over the copy path with coalescing on: the recovery
  // machinery must deliver the identical mesh on both transports.
  PoolOptions chaos_copy = chaos;
  chaos_copy.tuning.rma = false;
  chaos_copy.tuning.coalesce_delay = std::chrono::microseconds(150);
  MergedMesh out_copy;
  const PoolStats sc =
      run_pool(make_initial(), domain.sizing, chaos_copy, out_copy);
  std::printf(
      "chaos pool (rma=off, coalesce=150us): %.3f s, %zu triangles (%s), "
      "copied=%zu B coalesced=%zu batch_rejects=%zu status %s\n",
      sc.wall_seconds, out_copy.triangle_count(),
      out_copy.triangle_count() == tris ? "identical" : "MISMATCH",
      sc.comm_bytes, sc.coalesced_messages, sc.batch_rejects,
      to_string(sc.status));
  return 0;
}
