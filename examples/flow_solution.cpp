// Flow solution on a generated mesh: the paper's Figures 14-16 workflow.
//
// Generates the three-element mesh, computes the potential-flow field with
// the panel method (pressure coefficient and Mach proxy at every mesh
// vertex, written as VTK fields -- Figures 14 and 15), then runs the
// stationary FEM solver to a 1e-12 residual and reports the convergence
// iteration count (Figure 16's quantity).

#include <cstdio>

#include "aero.hpp"
#include "io/mesh_io.hpp"
#include "solver/fem.hpp"
#include "solver/panel.hpp"

int main() {
  using namespace aero;
  constexpr double kDeg = 3.14159265358979323846 / 180.0;

  Options config;
  config.airfoil = make_three_element(200);
  config.growth_kind = GrowthKind::kGeometric;
  config.first_height = 4e-4;
  config.growth_ratio = 1.25;
  config.max_layers = 35;
  config.farfield_chords = 6.0;
  config.grade = 0.4;

  std::printf("Meshing...\n");
  const MeshGenerationResult result = generate_mesh(config);
  std::printf("Mesh: %zu triangles\n", result.mesh.triangle_count());

  // The paper's simulation: Mach 0.3, 5 degrees angle of attack.
  std::printf("Panel method (alpha = 5 deg)...\n");
  const PanelMethod panel(config.airfoil, 5.0 * kDeg);
  std::printf("  lift coefficient Cl = %.3f\n", panel.lift_coefficient());

  const std::size_t np = result.mesh.point_count();
  std::vector<double> cp(np), mach(np);
  for (std::uint32_t i = 0; i < np; ++i) {
    const Vec2 p = result.mesh.point(i);
    cp[i] = panel.pressure_coefficient(p);
    mach[i] = panel.mach(p, 0.3);
  }
  write_vtk(result.mesh, "flow_pressure.vtk", &cp, "cp");
  write_vtk(result.mesh, "flow_mach.vtk", &mach, "mach");
  std::printf("Wrote flow_pressure.vtk (Figure 14), flow_mach.vtk (Figure 15)\n");

  // Convergence study on the mesh (Figure 16's measurement): symmetric
  // diffusion problem solved with Jacobi-preconditioned CG.
  std::printf("Stationary solve to 1e-12 residual...\n");
  FemProblem problem(result.mesh, 1.0, {0.0, 0.0}, nullptr, [](Vec2 p) {
    // Boundary-layer-like boundary data: unit on the inner boundary region,
    // zero far away.
    return std::abs(p.x) < 3.0 && std::abs(p.y) < 3.0 ? 1.0 : 0.0;
  });
  SolveOptions opts;
  opts.scheme = IterScheme::kConjugateGradient;
  opts.tolerance = 1e-12;
  const SolveResult sr = problem.solve(opts);
  std::printf("  unknowns  : %zu\n", problem.unknowns());
  std::printf("  iterations: %zu (converged=%s)\n", sr.iterations,
              sr.converged ? "yes" : "no");
  const auto field = problem.expand(sr.u);
  write_vtk(result.mesh, "flow_fem.vtk", &field, "u");
  std::printf("Wrote flow_fem.vtk\n");
  return 0;
}
