// Distributed meshing on the in-process rank pool, plus the cluster
// performance model: how the paper's 256-core run is reproduced on one
// machine.
//
// First the mesh is generated on a 4-rank pool (real message passing, RMA
// load window, work stealing), then the measured task graph drives the
// discrete-event cluster model up to 256 simulated ranks.

#include <cstdio>

#include "runtime/cluster_model.hpp"
#include "runtime/parallel_driver.hpp"

int main() {
  using namespace aero;

  const Options opts = Options()
                           .geometry(make_naca0012(300))
                           .set_first_height(3e-4)
                           .set_growth_ratio(1.22)
                           .set_max_layers(40)
                           .set_farfield_chords(10.0)
                           .set_grade(0.05)
                           .set_inviscid_target_triangles(2000.0)
                           .set_bl_min_points(800)
                           .set_ranks(4);

  std::printf("=== 4-rank in-process pool ===\n");
  const ParallelMeshResult par = parallel_generate_mesh(opts);
  std::printf("mesh: %zu triangles\n", par.mesh.triangle_count());
  const auto show_pool = [](const char* name, const PoolStats& p) {
    std::printf("%s pool: steals=%zu denials=%zu transfer=%zu B, tasks:",
                name, p.steals, p.steal_denials, p.transfer_bytes);
    for (const std::size_t t : p.tasks_per_rank) std::printf(" %zu", t);
    std::printf("\n");
  };
  show_pool("boundary-layer", par.bl_pool);
  show_pool("inviscid      ", par.inviscid_pool);

  std::printf("\n=== cluster performance model ===\n");
  std::printf("building measured task graph...\n");
  const TaskGraph graph = build_task_graph(opts);
  std::printf("tasks=%zu total work=%.2f s (distributable stages %.3f s)\n",
              graph.nodes.size(), graph.total_seconds(),
              graph.distributable_before[0] + graph.distributable_before[1]);
  std::printf("(small demo mesh: the curve saturates early; bench_scaling\n"
              " runs the paper-scale configuration for Figures 11-12)\n");

  std::printf("\n%8s %12s %10s %12s %8s\n", "ranks", "makespan(s)", "speedup",
              "efficiency", "steals");
  for (const SimResult& r : strong_scaling_sweep(
           graph, {1, 2, 4, 8, 16, 32, 64, 128, 256}, ClusterOptions{})) {
    std::printf("%8d %12.4f %10.2f %11.1f%% %8zu\n", r.ranks,
                r.makespan_seconds, r.speedup, 100.0 * r.efficiency,
                r.steals);
  }
  return 0;
}
