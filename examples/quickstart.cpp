// Quickstart: push-button mesh generation for a NACA 0012.
//
// Demonstrates the minimal API: build an aero::Options with the fluent
// setters, call generate_mesh (which validates first), inspect the result,
// write VTK + Triangle formats. This is the paper's "the user only needs to
// provide the input configuration and wait for the output" workflow.

#include <cstdio>

#include "aero.hpp"
#include "io/mesh_io.hpp"

int main() {
  using namespace aero;

  // Geometry: a NACA 0012 with 400 surface points per side, sharp TE.
  // Boundary layer: first cell 2e-4 chords, geometric growth 1.2, until the
  // triangles turn isotropic. Far field at 15 chords for a quick run (the
  // paper uses 30-50). Every unset knob keeps the documented library
  // default; generate_mesh(Options) rejects invalid combinations with a
  // typed issue list before any work starts.
  const Options opts = Options()
                           .geometry(make_naca0012(400))
                           .set_first_height(2e-4)
                           .set_growth_ratio(1.2)
                           .set_max_layers(40)
                           .set_farfield_chords(15.0);

  std::printf("Generating mesh (push-button)...\n");
  const MeshGenerationResult result = generate_mesh(opts);

  const MergedStats stats = compute_stats(result.mesh);
  std::printf("\nMesh: %zu triangles, %zu vertices\n", stats.triangles,
              stats.vertices);
  std::printf("  boundary layer : %zu triangles in %zu subdomains\n",
              result.bl_triangles, result.bl_subdomains);
  std::printf("  inviscid region: %zu triangles in %zu subdomains\n",
              result.inviscid_triangles, result.inviscid_subdomains);
  std::printf("  min angle %.2f deg, max aspect ratio %.0f:1\n",
              stats.min_angle_deg, stats.max_aspect_ratio);
  std::printf("  fans: %zu (trailing-edge cusp), ray truncations: %zu\n",
              result.boundary_layer.stats.fans,
              result.boundary_layer.stats.self_truncations);

  std::printf("\nPhase timings:\n");
  for (const auto& [phase, seconds] : result.timings.entries()) {
    std::printf("  %-32s %8.3f s\n", phase.c_str(), seconds);
  }

  const auto conf = result.mesh.check_conformity();
  std::printf("\nConformity: manifold=%s boundary_edges=%zu\n",
              conf.manifold ? "yes" : "NO", conf.boundary_edges);

  write_vtk(result.mesh, "naca0012.vtk");
  write_node_ele(result.mesh, "naca0012");
  std::printf("Wrote naca0012.vtk, naca0012.node, naca0012.ele\n");
  return conf.manifold ? 0 : 1;
}
