// Multi-element high-lift meshing: the paper's 30P30N scenario (Figure 13).
//
// The synthetic three-element configuration exercises every special case:
//   (b) self-intersecting rays in the slat cove,
//   (c) self-intersections at concave corners,
//   (d) multi-element intersections in the slat/main and main/flap gaps,
//   (e) fans at the sharp and blunt trailing edges.
// The example reports how each case resolved and writes the mesh.

#include <cstdio>

#include "aero.hpp"
#include "io/mesh_io.hpp"

int main() {
  using namespace aero;

  Options config;
  config.airfoil = make_three_element(360);
  config.growth_kind = GrowthKind::kGeometric;
  config.first_height = 3e-4;
  config.growth_ratio = 1.22;
  config.max_layers = 40;
  config.farfield_chords = 15.0;

  std::printf("Elements:\n");
  for (const auto& e : config.airfoil.elements) {
    const BBox2 b = e.bbox();
    std::printf("  %-6s %4zu surface points, bbox [%.3f,%.3f]x[%.3f,%.3f]\n",
                e.name.c_str(), e.surface.size(), b.lo.x, b.hi.x, b.lo.y,
                b.hi.y);
  }

  const MeshGenerationResult result = generate_mesh(config);
  const IntersectionStats& s = result.boundary_layer.stats;

  std::printf("\nBoundary-layer special cases (paper Figure 13):\n");
  std::printf("  fans emitted (cusps/corners)        : %zu (%zu rays)\n",
              s.fans, s.fan_rays);
  std::printf("  curvature refinement rays           : %zu\n",
              s.edge_refinement_rays);
  std::printf("  self-intersection ray truncations   : %zu\n",
              s.self_truncations);
  std::printf("  ray-vs-own-surface truncations      : %zu\n",
              s.surface_truncations);
  std::printf("  multi-element candidates (AABB prune): %zu\n",
              s.multi_candidates);
  std::printf("  multi-element pairs tested (ADT)    : %zu\n",
              s.multi_pairs_tested);
  std::printf("  multi-element ray truncations       : %zu\n",
              s.multi_truncations);

  const MergedStats stats = compute_stats(result.mesh);
  const auto conf = result.mesh.check_conformity();
  std::printf("\nMesh: %zu triangles (%zu boundary layer, %zu inviscid)\n",
              stats.triangles, result.bl_triangles,
              result.inviscid_triangles);
  std::printf("Conformity: manifold=%s nonmanifold_edges=%zu\n",
              conf.manifold ? "yes" : "NO", conf.nonmanifold_edges);

  write_vtk(result.mesh, "three_element.vtk");
  std::printf("Wrote three_element.vtk\n");
  return conf.manifold ? 0 : 1;
}
