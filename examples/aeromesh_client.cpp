// aeromesh-client: thin tenant CLI over the aeromeshd unix socket. Builds a
// small NACA 0012 request from a few flags, sends it, prints the typed
// response, and (optionally) writes the returned mesh block to disk. The
// --expect flag turns it into an assertion tool for the smoke test: exit 0
// iff the daemon answered with exactly the named status.
//
// One invocation is one connection and one request, so "three concurrent
// tenants" is just three client processes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "aero.hpp"
#include "service/client.hpp"
#include "service/wire.hpp"

namespace {

[[noreturn]] void usage(const char* argv0, bool requested) {
  FILE* out = requested ? stdout : stderr;
  std::fprintf(out,
               "usage: %s --socket PATH [options]\n"
               "  --socket PATH          aeromeshd unix socket (required)\n"
               "  --id N                 correlation id (default 1)\n"
               "  --priority N           dispatch priority (default 0)\n"
               "  --surface-points N     NACA 0012 points per side "
               "(default 120)\n"
               "  --ranks N              mesh on the in-process rank pool "
               "(0 = sequential, default 0)\n"
               "  --fault-rate P         chaos-inject the pooled run "
               "(default 0)\n"
               "  --max-layers N         boundary-layer cap (default 20)\n"
               "  --output FILE          write the mesh block to FILE\n"
               "  --expect STATUS        exit 0 iff the response status is "
               "STATUS (ok, overloaded, invalid-options, ...)\n"
               "  --shutdown             ask the daemon to exit instead of "
               "meshing\n"
               "  --help                 this table\n",
               argv0);
  std::exit(requested ? 0 : 2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string output_path;
  std::string expect;
  bool shutdown = false;
  std::uint64_t id = 1;
  std::int32_t priority = 0;
  std::size_t surface_points = 120;
  int ranks = 0;
  double fault_rate = 0.0;
  int max_layers = 20;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (arg != flag) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        usage(argv[0], false);
      }
      return argv[++i];
    };
    if (arg == "--help") usage(argv[0], true);
    if (arg == "--shutdown") {
      shutdown = true;
    } else if (const char* v = value("--socket")) {
      socket_path = v;
    } else if (const char* v = value("--id")) {
      id = static_cast<std::uint64_t>(std::atoll(v));
    } else if (const char* v = value("--priority")) {
      priority = std::atoi(v);
    } else if (const char* v = value("--surface-points")) {
      surface_points = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--ranks")) {
      ranks = std::atoi(v);
    } else if (const char* v = value("--fault-rate")) {
      fault_rate = std::atof(v);
    } else if (const char* v = value("--max-layers")) {
      max_layers = std::atoi(v);
    } else if (const char* v = value("--output")) {
      output_path = v;
    } else if (const char* v = value("--expect")) {
      expect = v;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      usage(argv[0], false);
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "error: --socket is required\n");
    usage(argv[0], false);
  }

  aero::ServiceClient client;
  if (!client.connect(socket_path)) {
    std::fprintf(stderr, "error: %s\n", client.error().c_str());
    return 1;
  }
  if (shutdown) {
    if (!client.shutdown_server()) {
      std::fprintf(stderr, "error: could not send shutdown frame\n");
      return 1;
    }
    std::printf("shutdown requested\n");
    return 0;
  }

  aero::MeshRequest req;
  req.id = id;
  req.priority = priority;
  req.options = aero::Options()
                    .geometry(aero::make_naca0012(surface_points))
                    .set_max_layers(max_layers)
                    .set_farfield_chords(10.0)
                    .set_ranks(ranks)
                    .set_fault_rate(fault_rate);

  const aero::MeshResponse resp = client.request(req);
  std::printf(
      "id=%llu status=%s cache_hit=%d key=%016llx triangles=%llu "
      "vertices=%llu mesh_ms=%.2f queue_ms=%.2f\n",
      static_cast<unsigned long long>(resp.id), to_string(resp.status),
      resp.cache_hit ? 1 : 0,
      static_cast<unsigned long long>(resp.cache_key),
      static_cast<unsigned long long>(resp.triangles),
      static_cast<unsigned long long>(resp.vertices), resp.mesh_wall_ms,
      resp.queue_ms);
  if (!resp.error.empty()) std::printf("error: %s\n", resp.error.c_str());

  if (!output_path.empty() && !resp.mesh_blob.empty()) {
    std::ofstream out(output_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(resp.mesh_blob.data()),
              static_cast<std::streamsize>(resp.mesh_blob.size()));
    if (out) {
      std::printf("wrote %s (%zu bytes)\n", output_path.c_str(),
                  resp.mesh_blob.size());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n",
                   output_path.c_str());
    }
  }

  if (!expect.empty()) {
    const bool match = expect == to_string(resp.status);
    if (!match) {
      std::fprintf(stderr, "expectation failed: wanted %s, got %s\n",
                   expect.c_str(), to_string(resp.status));
    }
    return match ? 0 : 3;
  }
  return resp.status == aero::ServiceStatus::kOk ? 0 : 1;
}
