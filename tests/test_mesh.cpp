// DelaunayMesh core: Bowyer-Watson construction, point location, topology
// and Delaunay invariants over parameterized point-cloud shapes.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "delaunay/mesh.hpp"  // aerolint: allow(public-api)
#include "delaunay/triangulator.hpp"

namespace aero {
namespace {

std::vector<Vec2> random_cloud(int n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pts.push_back({d(rng), d(rng)});
  return pts;
}

TEST(DelaunayMesh, RejectsDegenerateInput) {
  DelaunayMesh m;
  EXPECT_FALSE(m.triangulate({}));
  EXPECT_FALSE(m.triangulate({{0, 0}}));
  EXPECT_FALSE(m.triangulate({{0, 0}, {1, 1}}));
  EXPECT_FALSE(m.triangulate({{0, 0}, {1, 1}, {2, 2}, {3, 3}}));  // collinear
  EXPECT_FALSE(m.triangulate({{1, 1}, {1, 1}, {1, 1}}));          // identical
}

TEST(DelaunayMesh, TriangleOfThree) {
  DelaunayMesh m;
  ASSERT_TRUE(m.triangulate({{0, 0}, {1, 0}, {0, 1}}));
  EXPECT_EQ(m.triangle_count(), 1u);
  EXPECT_EQ(m.point_count(), 3u);
  EXPECT_TRUE(m.check_topology());
  EXPECT_TRUE(m.check_delaunay());
}

TEST(DelaunayMesh, DuplicatePointsMerge) {
  DelaunayMesh m;
  std::vector<VertIndex> ids;
  ASSERT_TRUE(m.triangulate({{0, 0}, {1, 0}, {0, 1}, {1, 0}, {0, 0}}, &ids));
  EXPECT_EQ(m.point_count(), 3u);
  EXPECT_EQ(ids[1], ids[3]);
  EXPECT_EQ(ids[0], ids[4]);
}

TEST(DelaunayMesh, CollinearPrefixHandled) {
  // The first k points lie on a line; the seed-triangle search must skip
  // ahead and the collinear points must insert correctly afterwards.
  std::vector<Vec2> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({static_cast<double>(i), 0.0});
  pts.push_back({5.0, 7.0});
  DelaunayMesh m;
  ASSERT_TRUE(m.triangulate(pts));
  EXPECT_EQ(m.point_count(), 21u);
  EXPECT_EQ(m.triangle_count(), 19u);  // fan from the apex
  EXPECT_TRUE(m.check_topology());
  EXPECT_TRUE(m.check_delaunay());
}

struct CloudParam {
  const char* name;
  int n;
  unsigned seed;
};

class CloudSweep : public ::testing::TestWithParam<CloudParam> {
 protected:
  std::vector<Vec2> make_points() const {
    const auto& p = GetParam();
    std::string name = p.name;
    if (name == "random") return random_cloud(p.n, p.seed);
    if (name == "grid") {
      const int side = static_cast<int>(std::sqrt(p.n));
      std::vector<Vec2> pts;
      for (int i = 0; i < side; ++i) {
        for (int j = 0; j < side; ++j) {
          pts.push_back({i * 0.25, j * 0.25});
        }
      }
      return pts;
    }
    if (name == "circle") {
      // Cocircular points: maximal incircle degeneracy.
      std::vector<Vec2> pts;
      for (int i = 0; i < p.n; ++i) {
        const double th = 2.0 * 3.141592653589793 * i / p.n;
        pts.push_back({std::cos(th), std::sin(th)});
      }
      pts.push_back({0.0, 0.0});
      return pts;
    }
    if (name == "anisotropic") {
      // Boundary-layer-like rows: x spacing 1, y spacing 1e-4.
      std::vector<Vec2> pts;
      const int cols = p.n / 8;
      for (int i = 0; i < cols; ++i) {
        for (int j = 0; j < 8; ++j) {
          pts.push_back({i * 0.01, j * 1e-6});
        }
      }
      return pts;
    }
    return {};
  }
};

TEST_P(CloudSweep, TopologyAndDelaunayInvariants) {
  const std::vector<Vec2> pts = make_points();
  DelaunayMesh m;
  ASSERT_TRUE(m.triangulate(pts));
  EXPECT_TRUE(m.check_topology());
  EXPECT_TRUE(m.check_delaunay());
  // Euler: for a triangulated point set, T = 2n - 2 - h (h = hull vertices).
  // Check the weaker invariant T <= 2n and T >= n - 2.
  const std::size_t n = m.point_count();
  EXPECT_LE(m.triangle_count(), 2 * n);
  EXPECT_GE(m.triangle_count() + 2, n);
}

INSTANTIATE_TEST_SUITE_P(
    Clouds, CloudSweep,
    ::testing::Values(CloudParam{"random", 100, 1},
                      CloudParam{"random", 1000, 2},
                      CloudParam{"random", 5000, 3},
                      CloudParam{"grid", 400, 4}, CloudParam{"grid", 2500, 5},
                      CloudParam{"circle", 64, 6},
                      CloudParam{"circle", 257, 7},
                      CloudParam{"anisotropic", 800, 8}),
    [](const auto& info) {
      return std::string(info.param.name) + "_" +
             std::to_string(info.param.n);
    });

TEST(DelaunayMesh, GridTriangleCountExact) {
  // An n x n unit grid triangulates into exactly 2 (n-1)^2 triangles.
  std::vector<Vec2> pts;
  for (int i = 0; i < 30; ++i) {
    for (int j = 0; j < 30; ++j) pts.push_back({i * 1.0, j * 1.0});
  }
  DelaunayMesh m;
  ASSERT_TRUE(m.triangulate(pts));
  EXPECT_EQ(m.triangle_count(), 2u * 29u * 29u);
}

TEST(DelaunayMesh, LocateClassifications) {
  DelaunayMesh m;
  ASSERT_TRUE(m.triangulate({{0, 0}, {4, 0}, {0, 4}, {4, 4}}));

  const LocateResult inside = m.locate({1.0, 1.0});
  EXPECT_EQ(inside.kind, LocateResult::Kind::kInside);

  const LocateResult vertex = m.locate({4.0, 0.0});
  EXPECT_EQ(vertex.kind, LocateResult::Kind::kOnVertex);
  EXPECT_EQ(m.tri(vertex.tri).v[vertex.edge],
            m.locate({4.0, 0.0}).tri >= 0
                ? m.tri(vertex.tri).v[vertex.edge]
                : -1);
  EXPECT_EQ(m.point(m.tri(vertex.tri).v[vertex.edge]), (Vec2{4, 0}));

  const LocateResult outside = m.locate({10.0, 10.0});
  EXPECT_EQ(outside.kind, LocateResult::Kind::kOutside);
  EXPECT_TRUE(m.tri(outside.tri).is_ghost());

  const LocateResult edge = m.locate({2.0, 0.0});  // on the hull edge
  EXPECT_EQ(edge.kind, LocateResult::Kind::kOnEdge);
}

TEST(DelaunayMesh, InsertOnHullEdgeExtendsHull) {
  DelaunayMesh m;
  ASSERT_TRUE(m.triangulate({{0, 0}, {4, 0}, {2, 3}}));
  const VertIndex v = m.insert_point({2.0, 0.0}, false);
  EXPECT_EQ(m.point(v), (Vec2{2, 0}));
  EXPECT_EQ(m.triangle_count(), 2u);
  EXPECT_TRUE(m.check_topology());
  EXPECT_TRUE(m.check_delaunay());
}

TEST(DelaunayMesh, InsertOutsideHull) {
  DelaunayMesh m;
  ASSERT_TRUE(m.triangulate({{0, 0}, {1, 0}, {0, 1}}));
  m.insert_point({2.0, 2.0}, false);
  EXPECT_EQ(m.triangle_count(), 2u);
  EXPECT_TRUE(m.check_topology());
  EXPECT_TRUE(m.check_delaunay());
}

TEST(DelaunayMesh, InsertCollinearBeyondHull) {
  // Extending the hull along an existing hull line (the case that once
  // produced degenerate collinear triangles).
  DelaunayMesh m;
  ASSERT_TRUE(m.triangulate({{0, 0}, {1, 0}, {0, 1}}));
  m.insert_point({0.0, 2.0}, false);  // collinear with hull edge (0,0)-(0,1)
  m.insert_point({0.0, 3.0}, false);
  EXPECT_TRUE(m.check_topology());
  EXPECT_TRUE(m.check_delaunay());
}

TEST(DelaunayMesh, FindEdge) {
  DelaunayMesh m;
  ASSERT_TRUE(m.triangulate({{0, 0}, {1, 0}, {0, 1}, {1, 1}}));
  // Directed hull edge exists in exactly one finite triangle.
  bool found_any = false;
  for (VertIndex u = 0; u < 4; ++u) {
    for (VertIndex w = 0; w < 4; ++w) {
      if (u == w) continue;
      const auto [t, slot] = m.find_edge(u, w);
      if (t == kNoTri) continue;
      found_any = true;
      EXPECT_EQ(m.tri(t).v[(slot + 1) % 3], u);
      EXPECT_EQ(m.tri(t).v[(slot + 2) % 3], w);
    }
  }
  EXPECT_TRUE(found_any);
}

TEST(DelaunayMesh, SortedInsertionOrderIndependence) {
  // The Delaunay triangulation is unique for points in general position:
  // sorted and shuffled insertion must produce the same triangle set.
  const std::vector<Vec2> pts = random_cloud(500, 42);
  std::vector<Vec2> sorted = pts;
  std::sort(sorted.begin(), sorted.end(), LessXY{});
  std::vector<Vec2> shuffled = pts;
  std::mt19937_64 rng(43);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);

  DelaunayMesh a, b;
  ASSERT_TRUE(a.triangulate(sorted));
  ASSERT_TRUE(b.triangulate(shuffled));
  EXPECT_EQ(a.triangle_count(), b.triangle_count());
  EXPECT_TRUE(a.check_delaunay());
  EXPECT_TRUE(b.check_delaunay());
}

}  // namespace
}  // namespace aero
