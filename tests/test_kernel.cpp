// The fast-path Delaunay kernel: BRIO insertion order, the reusable cavity
// arena, the semi-static predicate filters, and locate-hint plumbing.
//
// These are the paths the tentpole perf work added; each test pins the
// property that makes the fast path safe to use (order-independence of the
// mesh, arena reuse correctness, sign-exactness of the filters, hint
// independence of locate).

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "delaunay/brio.hpp"          // aerolint: allow(public-api)
#include "delaunay/mesh.hpp"          // aerolint: allow(public-api)
#include "delaunay/triangulator.hpp"
#include "geom/predicates.hpp"        // aerolint: allow(public-api)
#include "geom/predicates_fast.hpp"   // aerolint: allow(public-api)

namespace aero {
namespace {

int sgn(double v) { return (v > 0.0) - (v < 0.0); }

std::vector<Vec2> random_cloud(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<Vec2> pts(n);
  for (Vec2& p : pts) p = {u(rng), u(rng)};
  return pts;
}

/// Order-independent fingerprint: every live finite triangle as its three
/// vertex coordinates sorted lexicographically, the whole list sorted.
std::vector<std::array<double, 6>> canonical_triangles(
    const DelaunayMesh& mesh) {
  std::vector<std::array<double, 6>> tris;
  mesh.for_each_triangle([&](TriIndex t) {
    const MeshTri& mt = mesh.tri(t);
    std::array<Vec2, 3> v = {mesh.point(mt.v[0]), mesh.point(mt.v[1]),
                             mesh.point(mt.v[2])};
    std::sort(v.begin(), v.end(), LessXY{});
    tris.push_back({v[0].x, v[0].y, v[1].x, v[1].y, v[2].x, v[2].y});
  });
  std::sort(tris.begin(), tris.end());
  return tris;
}

/// Flat copy of the vertex array in id order (the SoA arena has no direct
/// vector accessor; exact id-order equality is what the tests compare).
std::vector<Vec2> mesh_points(const DelaunayMesh& mesh) {
  std::vector<Vec2> pts(mesh.point_count());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    pts[i] = mesh.point(static_cast<VertIndex>(i));
  }
  return pts;
}

/// The serialized-bytes form of the fingerprint: two meshes are considered
/// bit-identical iff these byte strings match (the acceptance contract of
/// the parallel kernel).
std::string canonical_bytes(const DelaunayMesh& mesh) {
  const auto tris = canonical_triangles(mesh);
  std::string bytes(tris.size() * sizeof(tris[0]), '\0');
  if (!tris.empty()) std::memcpy(bytes.data(), tris.data(), bytes.size());
  return bytes;
}

// --- BRIO order ------------------------------------------------------------

TEST(KernelBrio, OrderIsAPermutation) {
  for (const std::size_t n : {0u, 1u, 7u, 100u, 5000u}) {
    const std::vector<Vec2> pts = random_cloud(n, 42 + n);
    const std::vector<std::uint32_t> order = brio_order(pts);
    ASSERT_EQ(order.size(), n);
    std::vector<std::uint8_t> seen(n, 0);
    for (const std::uint32_t i : order) {
      ASSERT_LT(i, n);
      ASSERT_FALSE(seen[i]) << "index appears twice";
      seen[i] = 1;
    }
  }
}

TEST(KernelBrio, DeterministicForSameInput) {
  const std::vector<Vec2> pts = random_cloud(3000, 7);
  EXPECT_EQ(brio_order(pts), brio_order(pts));
}

TEST(KernelBrio, HilbertCurveIsABijection) {
  // Order-4 curve: every cell of the 16x16 grid gets a distinct distance.
  std::vector<std::uint8_t> seen(256, 0);
  for (std::uint32_t y = 0; y < 16; ++y) {
    for (std::uint32_t x = 0; x < 16; ++x) {
      const std::uint64_t d = hilbert_d(x, y, 4);
      ASSERT_LT(d, 256u);
      ASSERT_FALSE(seen[d]);
      seen[d] = 1;
    }
  }
  // Adjacent distances map to adjacent cells (the locality property that
  // makes the within-round sort worth doing).
  std::array<std::pair<std::uint32_t, std::uint32_t>, 256> cell_of;
  for (std::uint32_t y = 0; y < 16; ++y) {
    for (std::uint32_t x = 0; x < 16; ++x) {
      cell_of[hilbert_d(x, y, 4)] = {x, y};
    }
  }
  for (std::size_t d = 1; d < 256; ++d) {
    const auto [x0, y0] = cell_of[d - 1];
    const auto [x1, y1] = cell_of[d];
    const int manhattan = std::abs(static_cast<int>(x1) - static_cast<int>(x0)) +
                          std::abs(static_cast<int>(y1) - static_cast<int>(y0));
    EXPECT_EQ(manhattan, 1) << "curve jumps at d=" << d;
  }
}

TEST(KernelBrio, MatchesXSortedOnFuzzedClouds) {
  // Same cloud, both insertion orders: identical triangle sets. Random
  // doubles have no exactly-cocircular quadruples, so the Delaunay
  // triangulation is unique and any divergence is a kernel bug.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (const std::size_t n : {40u, 400u, 4000u}) {
      std::vector<Vec2> pts = random_cloud(n, seed * 1000 + n);
      // A few duplicates to exercise the merge path.
      pts.push_back(pts[n / 2]);
      pts.push_back(pts[0]);
      const TriangulateResult a =
          triangulate_points(pts, InsertionOrder::kXSorted);
      const TriangulateResult b = triangulate_points(pts, InsertionOrder::kBrio);
      ASSERT_TRUE(a.mesh.check_topology());
      ASSERT_TRUE(b.mesh.check_topology());
      ASSERT_TRUE(a.mesh.check_delaunay());
      ASSERT_TRUE(b.mesh.check_delaunay());
      EXPECT_EQ(canonical_triangles(a.mesh), canonical_triangles(b.mesh))
          << "seed " << seed << " n " << n;
    }
  }
}

TEST(KernelBrio, MatchesXSortedOnClusteredCloud) {
  // Highly non-uniform input (tight clusters + far outliers), the case BRIO
  // exists for: locality order must still reproduce the x-sorted mesh.
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::normal_distribution<double> tight(0.0, 1e-4);
  std::vector<Vec2> pts;
  for (int c = 0; c < 8; ++c) {
    const Vec2 center{u(rng) * 100.0, u(rng) * 100.0};
    for (int i = 0; i < 300; ++i) {
      pts.push_back({center.x + tight(rng), center.y + tight(rng)});
    }
  }
  const TriangulateResult a = triangulate_points(pts, InsertionOrder::kXSorted);
  const TriangulateResult b = triangulate_points(pts, InsertionOrder::kBrio);
  ASSERT_TRUE(b.mesh.check_delaunay());
  EXPECT_EQ(canonical_triangles(a.mesh), canonical_triangles(b.mesh));
}

// --- Cavity arena reuse ----------------------------------------------------

TEST(KernelArena, ReuseAcrossTriangulations) {
  // One DelaunayMesh object reused for clouds of varying size: the grow-only
  // arena must reset correctly between runs (stale cavity marks or fan-start
  // entries would corrupt the next triangulation; under ASan this also
  // proves reuse leaks nothing).
  DelaunayMesh mesh;
  for (const std::size_t n : {1500u, 40u, 2500u, 3u, 800u}) {
    const std::vector<Vec2> pts = random_cloud(n, 1234 + n);
    std::vector<VertIndex> ids;
    ASSERT_TRUE(mesh.triangulate(pts, &ids));
    ASSERT_EQ(ids.size(), n);
    ASSERT_EQ(mesh.point_count(), n);  // random doubles: no duplicates
    ASSERT_TRUE(mesh.check_topology());
    ASSERT_TRUE(mesh.check_delaunay());
  }
}

TEST(KernelArena, RepeatedRunsAreBitIdentical) {
  // Reuse must not change results: a fresh mesh and a heavily reused one
  // produce the same triangulation of the same cloud.
  const std::vector<Vec2> pts = random_cloud(2000, 5);
  DelaunayMesh reused;
  for (int warm = 0; warm < 3; ++warm) {
    ASSERT_TRUE(reused.triangulate(random_cloud(500 + 300 * warm, warm)));
  }
  ASSERT_TRUE(reused.triangulate(pts));
  DelaunayMesh fresh;
  ASSERT_TRUE(fresh.triangulate(pts));
  EXPECT_EQ(canonical_triangles(reused), canonical_triangles(fresh));
  EXPECT_EQ(mesh_points(reused), mesh_points(fresh));
}

// --- Predicate filter fast path ---------------------------------------------

TEST(KernelFilter, AgreesWithExactOnRandomTriples) {
  // 10^6 uniformly random triples/quadruples: the filtered predicates must
  // report the same *sign* as the exact adaptive predicates on every one.
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> u(-10.0, 10.0);
  for (int i = 0; i < 1000000; ++i) {
    const Vec2 a{u(rng), u(rng)}, b{u(rng), u(rng)}, c{u(rng), u(rng)};
    ASSERT_EQ(sgn(orient2d_fast(a, b, c)), sgn(orient2d(a, b, c)))
        << "triple " << i;
  }
  for (int i = 0; i < 1000000; ++i) {
    Vec2 a{u(rng), u(rng)}, b{u(rng), u(rng)}, c{u(rng), u(rng)};
    const Vec2 d{u(rng), u(rng)};
    if (orient2d(a, b, c) < 0.0) std::swap(b, c);  // incircle expects CCW
    ASSERT_EQ(sgn(incircle_fast(a, b, c, d)), sgn(incircle(a, b, c, d)))
        << "quad " << i;
  }
}

TEST(KernelFilter, AgreesWithExactOnAdversarialTriples) {
  // Near-degenerate orientation: c on the segment (a, b) (rounded), then
  // perturbed by a few ulps in each coordinate. These land inside the filter
  // bound, forcing the exact fallback; signs must still match.
  std::mt19937_64 rng(7777);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_int_distribution<int> ulps(-3, 3);
  const auto nudge = [&](double v) {
    int k = ulps(rng);
    while (k > 0) { v = std::nextafter(v, 2.0); --k; }
    while (k < 0) { v = std::nextafter(v, -2.0); ++k; }
    return v;
  };
  for (int i = 0; i < 200000; ++i) {
    const Vec2 a{u(rng), u(rng)};
    const Vec2 b{u(rng), u(rng)};
    const double t = 0.5 * (u(rng) + 1.0) * 2.0;  // [0, 2): beyond b too
    Vec2 c{a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
    c = {nudge(c.x), nudge(c.y)};
    ASSERT_EQ(sgn(orient2d_fast(a, b, c)), sgn(orient2d(a, b, c)))
        << "adversarial triple " << i;
  }
}

TEST(KernelFilter, AgreesWithExactOnAdversarialCocircular) {
  // Near-cocircular quadruples: four points of one circle (rounded to
  // doubles), perturbed by ulps. The semi-static and dynamic filter tiers
  // must both give up here and fall through to the exact predicate.
  std::mt19937_64 rng(31337);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_real_distribution<double> ang(0.0, 6.283185307179586);
  std::uniform_int_distribution<int> ulps(-2, 2);
  const auto nudge = [&](double v) {
    int k = ulps(rng);
    while (k > 0) { v = std::nextafter(v, 1e9); --k; }
    while (k < 0) { v = std::nextafter(v, -1e9); ++k; }
    return v;
  };
  for (int i = 0; i < 200000; ++i) {
    const Vec2 center{u(rng) * 100.0, u(rng) * 100.0};
    const double r = 0.1 + (u(rng) + 1.0) * 50.0;
    std::array<double, 4> theta{ang(rng), ang(rng), ang(rng), ang(rng)};
    std::sort(theta.begin(), theta.end());  // CCW order on the circle
    std::array<Vec2, 4> q;
    for (int k = 0; k < 4; ++k) {
      q[k] = {nudge(center.x + r * std::cos(theta[k])),
              nudge(center.y + r * std::sin(theta[k]))};
    }
    if (orient2d(q[0], q[1], q[2]) <= 0.0) continue;  // degenerate draw
    ASSERT_EQ(sgn(incircle_fast(q[0], q[1], q[2], q[3])),
              sgn(incircle(q[0], q[1], q[2], q[3])))
        << "adversarial quad " << i;
  }
}

TEST(KernelFilter, ExactDegeneraciesReportZero) {
  // Exactly representable degeneracies: the filter may not round a true zero
  // to either side.
  EXPECT_EQ(sgn(orient2d_fast({0, 0}, {1, 1}, {2, 2})), 0);
  EXPECT_EQ(sgn(orient2d_fast({-5, 3}, {-5, 7}, {-5, -11})), 0);
  // The unit square is exactly cocircular.
  EXPECT_EQ(sgn(incircle_fast({0, 0}, {1, 0}, {1, 1}, {0, 1})), 0);
  // And huge-coordinate collinear triples (stresses the error bound scale).
  EXPECT_EQ(sgn(orient2d_fast({1e18, 1e18}, {2e18, 2e18}, {3e18, 3e18})), 0);
}

// --- Locate hints ----------------------------------------------------------

TEST(KernelLocate, HintIndependence) {
  // locate() must return a triangle actually containing the query point no
  // matter which live triangle seeds the walk.
  const std::vector<Vec2> pts = random_cloud(1500, 11);
  const TriangulateResult r = triangulate_points(pts, InsertionOrder::kBrio);
  const DelaunayMesh& mesh = r.mesh;

  std::vector<TriIndex> live;
  mesh.for_each_triangle([&](TriIndex t) { live.push_back(t); });
  ASSERT_FALSE(live.empty());

  std::mt19937_64 rng(12);
  std::uniform_real_distribution<double> u(-0.95, 0.95);
  std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
  const auto contains = [&](TriIndex t, Vec2 p) {
    const MeshTri& mt = mesh.tri(t);
    if (mt.is_ghost()) return false;
    const Vec2 a = mesh.point(mt.v[0]);
    const Vec2 b = mesh.point(mt.v[1]);
    const Vec2 c = mesh.point(mt.v[2]);
    return orient2d(a, b, p) >= 0.0 && orient2d(b, c, p) >= 0.0 &&
           orient2d(c, a, p) >= 0.0;
  };
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p{u(rng), u(rng)};
    const LocateResult base = mesh.locate(p, kNoTri);
    const LocateResult hinted = mesh.locate(p, live[pick(rng)]);
    ASSERT_EQ(static_cast<int>(hinted.kind), static_cast<int>(base.kind));
    if (base.kind == LocateResult::Kind::kInside ||
        base.kind == LocateResult::Kind::kOnEdge) {
      EXPECT_TRUE(contains(hinted.tri, p));
      EXPECT_TRUE(contains(base.tri, p));
    }
  }
}

TEST(KernelLocate, HintAcrossConstrainedEdges) {
  // A constrained cross-wall through the domain: walks seeded on the far
  // side must cross the constrained edges and still land correctly (the
  // locate walk ignores constraint marks; only cavities respect them).
  Pslg pslg;
  pslg.points = {{-2, -2}, {2, -2}, {2, 2}, {-2, 2},   // outer box
                 {0, -2},  {0, 2}};                    // wall endpoints
  pslg.segments = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}};
  // Interior points on both sides of the wall.
  std::mt19937_64 rng(55);
  std::uniform_real_distribution<double> u(-1.9, 1.9);
  for (int i = 0; i < 400; ++i) pslg.points.push_back({u(rng), u(rng)});

  TriangulateOptions topts;
  topts.constrained = true;
  topts.carve = false;
  const TriangulateResult r = triangulate(pslg, topts);
  const DelaunayMesh& mesh = r.mesh;
  ASSERT_TRUE(mesh.check_topology());

  // Collect live triangles strictly left / right of the wall.
  std::vector<TriIndex> left, right;
  mesh.for_each_triangle([&](TriIndex t) {
    const MeshTri& mt = mesh.tri(t);
    double cx = 0.0;
    for (int k = 0; k < 3; ++k) cx += mesh.point(mt.v[k]).x / 3.0;
    (cx < 0.0 ? left : right).push_back(t);
  });
  ASSERT_FALSE(left.empty());
  ASSERT_FALSE(right.empty());

  std::uniform_int_distribution<std::size_t> pl(0, left.size() - 1);
  std::uniform_int_distribution<std::size_t> pr(0, right.size() - 1);
  for (int i = 0; i < 500; ++i) {
    // Query on one side, hint from the other: the walk must cross the wall.
    const bool query_left = (i % 2) == 0;
    const Vec2 p{query_left ? -1.0 + 0.4 * u(rng) : 1.0 + 0.4 * u(rng),
                 u(rng)};
    const TriIndex hint = query_left ? right[pr(rng)] : left[pl(rng)];
    const LocateResult base = mesh.locate(p, kNoTri);
    const LocateResult hinted = mesh.locate(p, hint);
    ASSERT_EQ(static_cast<int>(hinted.kind), static_cast<int>(base.kind));
    if (base.kind == LocateResult::Kind::kInside) {
      const MeshTri& mt = mesh.tri(hinted.tri);
      const Vec2 a = mesh.point(mt.v[0]);
      const Vec2 b = mesh.point(mt.v[1]);
      const Vec2 c = mesh.point(mt.v[2]);
      EXPECT_GE(orient2d(a, b, p), 0.0);
      EXPECT_GE(orient2d(b, c, p), 0.0);
      EXPECT_GE(orient2d(c, a, p), 0.0);
    }
  }
}

TEST(KernelLocate, InsertWithHintMatchesWithout) {
  // Bowyer-Watson with a hint must build the same mesh as without: insert
  // the same cloud twice, once hinting every insert with the previously
  // returned triangle neighborhood, once with kNoTri.
  const std::vector<Vec2> base = random_cloud(600, 77);
  const std::vector<Vec2> extra = random_cloud(200, 78);

  DelaunayMesh with_hint;
  ASSERT_TRUE(with_hint.triangulate(base));
  for (const Vec2 p : extra) {
    // Hint from a locate of the previous point's neighborhood: any valid
    // triangle is a legal hint, so use the last touched one via locate.
    const LocateResult loc = with_hint.locate(p, kNoTri);
    with_hint.insert_point(p, /*respect_constraints=*/false, loc.tri);
  }
  DelaunayMesh without;
  ASSERT_TRUE(without.triangulate(base));
  for (const Vec2 p : extra) {
    without.insert_point(p, /*respect_constraints=*/false, kNoTri);
  }
  ASSERT_TRUE(with_hint.check_delaunay());
  EXPECT_EQ(canonical_triangles(with_hint), canonical_triangles(without));
}

// --- Intra-rank parallel kernel ---------------------------------------------

// Plain sequential insertion of the exact scatter sequence the parallel
// engine commits: the ground truth every threaded run must reproduce.
DelaunayMesh sequential_scatter_reference(const std::vector<Vec2>& pts,
                                          std::vector<VertIndex>* ids_by_input
                                          = nullptr) {
  const std::vector<std::uint32_t> perm = brio_scatter_order(pts);
  std::vector<Vec2> ordered(pts.size());
  for (std::size_t i = 0; i < perm.size(); ++i) ordered[i] = pts[perm[i]];
  DelaunayMesh mesh;
  std::vector<VertIndex> ids;
  EXPECT_TRUE(mesh.triangulate(ordered, &ids));
  if (ids_by_input) {
    ids_by_input->assign(pts.size(), kGhost);
    for (std::size_t i = 0; i < perm.size(); ++i) {
      (*ids_by_input)[perm[i]] = ids[i];
    }
  }
  return mesh;
}

TEST(ParallelKernel, ScatterOrderIsAPermutation) {
  for (const std::size_t n : {0u, 1u, 7u, 100u, 5000u}) {
    const std::vector<Vec2> pts = random_cloud(n, 91 + n);
    const std::vector<std::uint32_t> order = brio_scatter_order(pts);
    ASSERT_EQ(order.size(), n);
    std::vector<std::uint8_t> seen(n, 0);
    for (const std::uint32_t i : order) {
      ASSERT_LT(i, n);
      ASSERT_FALSE(seen[i]) << "index appears twice";
      seen[i] = 1;
    }
    EXPECT_EQ(order, brio_scatter_order(pts)) << "not deterministic";
  }
}

TEST(ParallelKernel, MatchesSequentialOnUniformClouds) {
  // The acceptance contract: the threaded mesh is bit-identical (serialized
  // bytes) to inserting the same scatter sequence sequentially.
  for (const std::size_t n : {6000u, 20000u}) {
    std::vector<Vec2> pts = random_cloud(n, 1000 + n);
    pts.push_back(pts[n / 3]);  // duplicates exercise the merge fallback
    pts.push_back(pts[0]);
    std::vector<VertIndex> seq_ids;
    const DelaunayMesh seq = sequential_scatter_reference(pts, &seq_ids);
    for (const int threads : {1, 4}) {
      const TriangulateResult par =
          triangulate_points(pts, InsertionOrder::kScatter, threads);
      ASSERT_TRUE(par.mesh.check_topology()) << "threads " << threads;
      ASSERT_TRUE(par.mesh.check_delaunay()) << "threads " << threads;
      EXPECT_EQ(mesh_points(par.mesh), mesh_points(seq)) << "threads " << threads;
      EXPECT_EQ(par.vertex_ids, seq_ids) << "threads " << threads;
      EXPECT_EQ(canonical_bytes(par.mesh), canonical_bytes(seq))
          << "n " << n << " threads " << threads;
    }
  }
}

TEST(ParallelKernel, ThreadCountInvariance) {
  // T=1 and T=k run the same windowed speculate/commit schedule, so the
  // results must match bit-for-bit including internal vertex numbering.
  const std::vector<Vec2> pts = random_cloud(12000, 4242);
  const TriangulateResult base =
      triangulate_points(pts, InsertionOrder::kScatter, 1);
  for (const int threads : {2, 3, 4, 8}) {
    const TriangulateResult r =
        triangulate_points(pts, InsertionOrder::kScatter, threads);
    EXPECT_EQ(mesh_points(r.mesh), mesh_points(base.mesh)) << "threads " << threads;
    EXPECT_EQ(r.vertex_ids, base.vertex_ids) << "threads " << threads;
    EXPECT_EQ(canonical_bytes(r.mesh), canonical_bytes(base.mesh))
        << "threads " << threads;
  }
}

TEST(ParallelKernel, MatchesSequentialOnFuzzedDegenerateClouds) {
  // Clustered, cocircular, collinear, and duplicated inputs: the cases where
  // a speculation is most likely to invalidate and take the deterministic
  // fallback. Every one must still serialize identically to the sequential
  // insertion of the same sequence.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    std::normal_distribution<double> tight(0.0, 1e-5);
    std::uniform_int_distribution<int> lattice(0, 79);
    std::vector<Vec2> pts;
    // Tight Gaussian clusters (deep cavities, high conflict density).
    for (int c = 0; c < 6; ++c) {
      const Vec2 center{u(rng), u(rng)};
      for (int i = 0; i < 700; ++i) {
        pts.push_back({center.x + tight(rng), center.y + tight(rng)});
      }
    }
    // An exact lattice patch: every unit cell is exactly cocircular, so the
    // diagonal choice is decided purely by the insertion sequence.
    for (int i = 0; i < 2500; ++i) {
      pts.push_back({lattice(rng) / 40.0, lattice(rng) / 40.0});
    }
    // Exact collinear runs and duplicates sprinkled through the sequence.
    for (int i = 0; i < 500; ++i) pts.push_back({i / 250.0 - 1.0, 0.5});
    for (int i = 0; i < 200; ++i) {
      pts.push_back(pts[static_cast<std::size_t>(rng() % pts.size())]);
    }
    std::vector<VertIndex> seq_ids;
    const DelaunayMesh seq = sequential_scatter_reference(pts, &seq_ids);
    const TriangulateResult par =
        triangulate_points(pts, InsertionOrder::kScatter, 4);
    ASSERT_TRUE(par.mesh.check_topology()) << "seed " << seed;
    ASSERT_TRUE(par.mesh.check_delaunay()) << "seed " << seed;
    EXPECT_EQ(mesh_points(par.mesh), mesh_points(seq)) << "seed " << seed;
    EXPECT_EQ(par.vertex_ids, seq_ids) << "seed " << seed;
    EXPECT_EQ(canonical_bytes(par.mesh), canonical_bytes(seq))
        << "seed " << seed;
  }
}

TEST(ParallelKernel, CollinearBootstrapGrowsPrefix) {
  // Almost every point on one line: the engine's bootstrap prefix is likely
  // collinear and must grow until the off-line points appear (and an
  // entirely collinear input must still fail cleanly).
  std::vector<Vec2> pts;
  for (int i = 0; i < 6000; ++i) pts.push_back({i / 3000.0 - 1.0, 0.0});
  pts.push_back({0.1, 0.7});
  pts.push_back({-0.4, -0.3});
  const DelaunayMesh seq = sequential_scatter_reference(pts);
  const TriangulateResult par =
      triangulate_points(pts, InsertionOrder::kScatter, 4);
  ASSERT_TRUE(par.mesh.check_topology());
  EXPECT_EQ(canonical_bytes(par.mesh), canonical_bytes(seq));

  std::vector<Vec2> collinear;
  for (int i = 0; i < 6000; ++i) collinear.push_back({i * 0.001, i * 0.002});
  EXPECT_THROW(triangulate_points(collinear, InsertionOrder::kScatter, 4),
               std::invalid_argument);
}

TEST(ParallelKernel, SmallCloudsMatchAcrossThreadCounts) {
  // Below the engine's minimum the dispatch stays sequential regardless of
  // the thread request; results must be unaffected by `threads`.
  const std::vector<Vec2> pts = random_cloud(900, 8);
  const TriangulateResult a =
      triangulate_points(pts, InsertionOrder::kScatter, 1);
  const TriangulateResult b =
      triangulate_points(pts, InsertionOrder::kScatter, 8);
  EXPECT_EQ(mesh_points(a.mesh), mesh_points(b.mesh));
  EXPECT_EQ(canonical_bytes(a.mesh), canonical_bytes(b.mesh));
  // And the scatter mesh equals the x-sorted mesh on a general-position
  // cloud (unique Delaunay triangulation).
  const TriangulateResult c =
      triangulate_points(pts, InsertionOrder::kXSorted);
  EXPECT_EQ(canonical_triangles(a.mesh), canonical_triangles(c.mesh));
}

TEST(ParallelKernel, ThreadedUpgradeOfDefaultOrderIsThreadCountInvariant) {
  // TriangulateOptions{threads: k} on the default order upgrades to the
  // scatter engine; the mesh must not depend on k.
  const std::vector<Vec2> cloud = random_cloud(9000, 606);
  Pslg pslg;
  pslg.points = cloud;
  TriangulateOptions opts;
  opts.constrained = false;
  opts.carve = false;
  opts.threads = 2;
  const TriangulateResult two = triangulate(pslg, opts);
  opts.threads = 4;
  const TriangulateResult four = triangulate(pslg, opts);
  EXPECT_EQ(mesh_points(two.mesh), mesh_points(four.mesh));
  EXPECT_EQ(canonical_bytes(two.mesh), canonical_bytes(four.mesh));
  // And it still triangulates the same point set as the sequential default.
  opts.threads = 1;
  const TriangulateResult one = triangulate(pslg, opts);
  EXPECT_EQ(canonical_triangles(one.mesh), canonical_triangles(four.mesh));
}

TEST(ParallelKernel, RefinerScanThreadsDoNotChangeTheMesh) {
  // The threaded initial scan must enqueue the identical work in the
  // identical order, so refinement with 1 and 4 threads yields the same
  // mesh (the scan only engages past 16384 triangles; the sizing below
  // pushes well beyond that).
  const auto refine_with = [](int threads) {
    Pslg pslg;
    pslg.points = {{-1, -1}, {1, -1}, {1, 1}, {-1, 1}};
    pslg.segments = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
    TriangulateOptions opts;
    opts.refine = true;
    opts.refine_options.radius_edge_bound = 1.4142135623730951;
    opts.refine_options.max_area = 2.0e-4;
    opts.refine_options.threads = threads;
    return triangulate(pslg, opts);
  };
  const TriangulateResult one = refine_with(1);
  const TriangulateResult four = refine_with(4);
  ASSERT_GT(one.mesh.triangle_count(), 16384u);
  EXPECT_EQ(mesh_points(one.mesh), mesh_points(four.mesh));
  EXPECT_EQ(canonical_bytes(one.mesh), canonical_bytes(four.mesh));
}

}  // namespace
}  // namespace aero
