// Zero-copy transport: ByteBuf inline storage, the size-classed BufferPool,
// transfer-frame and batch codecs (with exhaustive and randomized corruption
// fuzzing), PayloadWindow ownership-handoff semantics, small-message
// coalescing, and the pool-level A/B guarantee that the RMA and full-copy
// paths produce bit-identical meshes.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>

#include "check/audit.hpp"  // aerolint: allow(public-api)
#include "core/mesh_generator.hpp"
#include "core/pipeline_config.hpp"  // aerolint: allow(public-api)
#include "runtime/parallel_driver.hpp"
#include "runtime/pool.hpp"  // aerolint: allow(public-api)
#include "runtime/rma.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

// ---------------------------------------------------------------------------
// ByteBuf: inline small-buffer storage.

TEST(ByteBuf, SmallPayloadsStayInline) {
  std::vector<std::uint8_t> v(ByteBuf::kInlineCapacity, 0xab);
  ByteBuf b(std::move(v));
  EXPECT_TRUE(b.inline_storage());
  EXPECT_EQ(b.size(), ByteBuf::kInlineCapacity);
  for (const std::uint8_t x : b) EXPECT_EQ(x, 0xab);
}

TEST(ByteBuf, LargeVectorsAreAdoptedWithoutCopy) {
  std::vector<std::uint8_t> v(ByteBuf::kInlineCapacity + 1, 0xcd);
  const std::uint8_t* original = v.data();
  ByteBuf b(std::move(v));
  EXPECT_FALSE(b.inline_storage());
  EXPECT_EQ(b.data(), original);  // zero copy: same heap block
  EXPECT_EQ(b.size(), ByteBuf::kInlineCapacity + 1);
}

TEST(ByteBuf, MoveEmptiesTheSource) {
  ByteBuf a{1, 2, 3};
  ByteBuf b(std::move(a));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
  ByteBuf c;
  c = std::move(b);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(b.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(c[0], 1);
  EXPECT_EQ(c[2], 3);
}

TEST(ByteBuf, EqualityComparesBytes) {
  EXPECT_EQ(ByteBuf({1, 2, 3}), ByteBuf({1, 2, 3}));
  EXPECT_NE(ByteBuf({1, 2, 3}), ByteBuf({1, 2, 4}));
  EXPECT_NE(ByteBuf({1, 2, 3}), ByteBuf({1, 2}));
  EXPECT_EQ(ByteBuf(), ByteBuf());
}

TEST(ByteBuf, ReleaseReturnsTheBytesAndEmpties) {
  std::vector<std::uint8_t> big(100, 7);
  const std::uint8_t* original = big.data();
  ByteBuf b(std::move(big));
  std::vector<std::uint8_t> out = b.release();
  EXPECT_EQ(out.data(), original);  // heap payload moves out unchanged
  EXPECT_EQ(out.size(), 100u);
  EXPECT_TRUE(b.empty());
  ByteBuf small{9, 8};
  EXPECT_EQ(small.release(), (std::vector<std::uint8_t>{9, 8}));
}

// ---------------------------------------------------------------------------
// BufferPool: recycling and size classes.

TEST(BufferPool, RecyclesWithinAClass) {
  BufferPool pool;
  auto a = pool.acquire(2000);
  EXPECT_GE(a.capacity(), 2000u);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(pool.misses(), 1u);
  const std::uint8_t* block = a.data();
  a.resize(1999, 1);
  pool.release(std::move(a));
  auto b = pool.acquire(1500);  // same 2 KiB class
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(b.data(), block);  // literally the same allocation
  EXPECT_TRUE(b.empty());      // recycled buffers come back cleared
}

TEST(BufferPool, TinyAndHugeBuffersAreNotPooled) {
  BufferPool pool;
  pool.release(std::vector<std::uint8_t>(16));  // below the 1 KiB floor
  auto a = pool.acquire(16);
  EXPECT_EQ(pool.hits(), 0u);
  pool.release(std::move(a));
}

TEST(BufferPool, FreeListDepthIsBounded) {
  BufferPool pool;
  for (int i = 0; i < 20; ++i) {
    pool.release(std::vector<std::uint8_t>(4096));
  }
  std::size_t hits = 0;
  for (int i = 0; i < 20; ++i) {
    pool.acquire(4096);
    hits = pool.hits();
  }
  EXPECT_GT(hits, 0u);
  EXPECT_LE(hits, 8u);  // kMaxFreePerClass
}

// ---------------------------------------------------------------------------
// Transfer frames.

TEST(RmaFrames, InlineFrameRoundTrip) {
  std::vector<std::uint8_t> payload{10, 20, 30, 40, 50};
  std::vector<std::uint8_t> framed(kInlineFrameHeader, 0);
  framed.insert(framed.end(), payload.begin(), payload.end());
  seal_inline_frame(0xdeadbeef12345678ull, framed);
  const ByteBuf wire(std::move(framed));  // parsed->data aliases this
  const auto parsed = parse_frame(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->windowed);
  EXPECT_EQ(parsed->nonce, 0xdeadbeef12345678ull);
  ASSERT_EQ(parsed->size, payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), parsed->data));
}

TEST(RmaFrames, WindowFrameRoundTrip) {
  const ByteBuf f = make_window_frame(0x1122334455667788ull, 3, 41,
                                      987654321ull, 0xfeedfacecafebeefull);
  EXPECT_EQ(f.size(), kWindowFrameSize);
  EXPECT_TRUE(f.inline_storage());  // control frames never heap-allocate
  const auto parsed = parse_frame(f);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->windowed);
  EXPECT_EQ(parsed->nonce, 0x1122334455667788ull);
  EXPECT_EQ(parsed->src, 3);
  EXPECT_EQ(parsed->slot, 41u);
  EXPECT_EQ(parsed->length, 987654321ull);
  EXPECT_EQ(parsed->digest, 0xfeedfacecafebeefull);
}

TEST(RmaFrames, EveryWindowFrameByteCorruptionIsRejected) {
  const ByteBuf good = make_window_frame(7, 1, 2, 3000, 0xabcdef);
  for (std::size_t i = 0; i < kWindowFrameSize; ++i) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xff}) {
      ByteBuf bad = good;
      bad[i] ^= flip;
      EXPECT_FALSE(parse_frame(bad).has_value())
          << "byte " << i << " flip " << int(flip);
    }
  }
}

TEST(RmaFrames, InlineHeaderCorruptionIsRejected) {
  std::vector<std::uint8_t> framed(kInlineFrameHeader + 8, 0x5a);
  seal_inline_frame(42, framed);
  const ByteBuf good(std::move(framed));
  for (std::size_t i = 0; i < kInlineFrameHeader; ++i) {
    ByteBuf bad = good;
    bad[i] ^= 0x10;
    EXPECT_FALSE(parse_frame(bad).has_value()) << "byte " << i;
  }
}

TEST(RmaFrames, TruncationIsRejected) {
  const ByteBuf w = make_window_frame(9, 0, 1, 64, 0);
  for (std::size_t n = 0; n < kWindowFrameSize; ++n) {
    EXPECT_FALSE(parse_frame(ByteBuf(w.data(), n)).has_value()) << n;
  }
  EXPECT_FALSE(parse_frame(ByteBuf()).has_value());
}

TEST(RmaFrames, AckRoundTripAndCorruption) {
  const ByteBuf ack = make_ack(0x0123456789abcdefull);
  EXPECT_EQ(parse_ack(ack), 0x0123456789abcdefull);
  for (std::size_t i = 0; i < ack.size(); ++i) {
    ByteBuf bad = ack;
    bad[i] ^= 0x04;
    EXPECT_FALSE(parse_ack(bad).has_value()) << "byte " << i;
  }
  EXPECT_FALSE(parse_ack(ByteBuf(ack.data(), ack.size() - 1)).has_value());
}

TEST(RmaFrames, DigestIsLengthAndContentSensitive) {
  std::vector<std::uint8_t> a(5000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::uint8_t>(i * 37);
  }
  const std::uint64_t d = payload_digest(a.data(), a.size());
  EXPECT_EQ(payload_digest(a.data(), a.size()), d);  // deterministic
  EXPECT_NE(payload_digest(a.data(), a.size() - 1), d);
  auto b = a;
  b[0] ^= 0xff;  // byte 0 is always sampled
  EXPECT_NE(payload_digest(b.data(), b.size()), d);
  EXPECT_NE(payload_digest(nullptr, 0), d);
}

// ---------------------------------------------------------------------------
// Batch codec.

TEST(BatchCodec, RoundTripPreservesOrderTagsAndBytes) {
  std::vector<StagedMessage> parts;
  parts.push_back({kTagWorkRequest, ByteBuf()});
  parts.push_back({kTagNoWork, ByteBuf({1, 2, 3})});
  parts.push_back({kTagWorkAck, make_ack(77)});
  const ByteBuf wire = encode_batch(parts);
  std::vector<Message> out;
  ASSERT_TRUE(decode_batch(wire, 5, out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].tag, kTagWorkRequest);
  EXPECT_TRUE(out[0].payload.empty());
  EXPECT_EQ(out[1].tag, kTagNoWork);
  EXPECT_EQ(out[1].payload, ByteBuf({1, 2, 3}));
  EXPECT_EQ(out[2].tag, kTagWorkAck);
  EXPECT_EQ(parse_ack(out[2].payload), 77u);
  for (const Message& m : out) EXPECT_EQ(m.from, 5);
}

TEST(BatchCodec, EveryByteCorruptionIsRejectedWholesale) {
  std::vector<StagedMessage> parts;
  parts.push_back({kTagNoWork, ByteBuf({0xaa, 0xbb})});
  parts.push_back({kTagWorkRequest, ByteBuf({0xcc})});
  const ByteBuf wire = encode_batch(parts);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ByteBuf bad = wire;
    bad[i] ^= 0x21;
    std::vector<Message> out;
    EXPECT_FALSE(decode_batch(bad, 0, out)) << "byte " << i;
    EXPECT_TRUE(out.empty());
  }
}

TEST(BatchCodec, RandomTruncationIsRejected) {
  std::mt19937 rng(0xbadc0de);
  std::vector<StagedMessage> parts;
  for (int i = 0; i < 8; ++i) {
    std::vector<std::uint8_t> bytes(rng() % 64);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    parts.push_back({static_cast<int>(1 + rng() % 8), ByteBuf(std::move(bytes))});
  }
  const ByteBuf wire = encode_batch(parts);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = rng() % wire.size();
    std::vector<Message> out;
    EXPECT_FALSE(decode_batch(ByteBuf(wire.data(), n), 0, out)) << n;
  }
}

// ---------------------------------------------------------------------------
// PayloadWindow ownership handoff.

std::vector<std::uint8_t> pattern_bytes(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 13);
  return v;
}

TEST(PayloadWindow, TakeIsExactlyOnce) {
  PayloadWindow w;
  const auto bytes = pattern_bytes(300);
  const std::uint32_t slot = w.publish(11, bytes);
  EXPECT_EQ(w.live(), 1u);
  auto got = w.take(slot, 11);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, bytes);
  EXPECT_FALSE(w.take(slot, 11).has_value());  // the duplicate finds nothing
  EXPECT_EQ(w.published(), 1u);
  EXPECT_EQ(w.taken(), 1u);
}

TEST(PayloadWindow, NonceMismatchDoesNotConsume) {
  PayloadWindow w;
  const std::uint32_t slot = w.publish(5, pattern_bytes(64));
  EXPECT_FALSE(w.take(slot, 6).has_value());       // stale/forged frame
  EXPECT_FALSE(w.take(slot + 9, 5).has_value());   // wrong slot
  EXPECT_TRUE(w.take(slot, 5).has_value());        // intact retry succeeds
}

TEST(PayloadWindow, VerifiedTakeRejectsWithoutConsuming) {
  PayloadWindow w;
  const auto bytes = pattern_bytes(2048);
  const std::uint64_t digest = payload_digest(bytes.data(), bytes.size());
  const std::uint32_t slot = w.publish(21, bytes);
  // A body-damaged control frame (wrong length or digest) must leave the
  // slot live so the sender's retransmission can still succeed.
  EXPECT_FALSE(w.take(slot, 21, bytes.size() - 1, digest).has_value());
  EXPECT_FALSE(w.take(slot, 21, bytes.size(), digest ^ 1).has_value());
  EXPECT_EQ(w.live(), 1u);
  auto got = w.take(slot, 21, bytes.size(), digest);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, bytes);
}

TEST(PayloadWindow, ReleaseRecyclesUntakenBytes) {
  BufferPool pool;
  PayloadWindow w(&pool);
  const std::uint32_t slot = w.publish(1, pattern_bytes(4096));
  w.release(slot, 1);  // ack arrived for a duplicate; bytes never taken
  EXPECT_EQ(w.live(), 0u);
  pool.acquire(4096);
  EXPECT_EQ(pool.hits(), 1u);  // the released payload came back
  // Releasing a taken slot must NOT recycle (the receiver owns the bytes).
  const std::uint32_t slot2 = w.publish(2, pattern_bytes(4096));
  auto got = w.take(slot2, 2);
  w.release(slot2, 2);
  pool.acquire(4096);
  EXPECT_EQ(pool.hits(), 1u);  // no second hit
  EXPECT_EQ(got->size(), 4096u);
}

TEST(PayloadWindow, ReclaimReturnsBytesOnlyIfUntaken) {
  PayloadWindow w;
  const auto bytes = pattern_bytes(128);
  const std::uint32_t s1 = w.publish(1, bytes);
  auto back = w.reclaim(s1, 1);  // dest died before taking
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
  const std::uint32_t s2 = w.publish(2, bytes);
  w.take(s2, 2);
  EXPECT_FALSE(w.reclaim(s2, 2).has_value());  // dest took it, then died
  EXPECT_EQ(w.live(), 0u);
}

// ---------------------------------------------------------------------------
// Work-unit encode/decode fuzz: empty, huge, and adversarial inputs, and the
// inline-frame path must be bit-identical to the bare serializer.

WorkUnit fuzz_unit(std::mt19937& rng, std::size_t npoints) {
  std::uniform_real_distribution<double> coord(-100.0, 100.0);
  std::vector<Vec2> pts;
  pts.reserve(npoints);
  for (std::size_t i = 0; i < npoints; ++i) {
    pts.push_back({coord(rng), coord(rng)});
  }
  WorkUnit u{WorkUnit::Kind::kBlDecompose, make_root_subdomain(pts), {}};
  u.id = rng();
  u.failed_ranks = rng();
  return u;
}

TEST(WorkFuzz, EmptyTriangleSoupRoundTrips) {
  const auto bytes = serialize_triangles({});
  EXPECT_EQ(bytes.size(), serialized_triangles_size(0));
  EXPECT_TRUE(deserialize_triangles(bytes).empty());
}

TEST(WorkFuzz, SerializedSizeIsExact) {
  std::mt19937 rng(123);
  for (const std::size_t n : {std::size_t{3}, std::size_t{100},
                              std::size_t{5000}}) {
    const WorkUnit u = fuzz_unit(rng, n);
    EXPECT_EQ(serialize(u).size(), serialized_size(u)) << n << " points";
  }
  const std::vector<std::array<Vec2, 3>> tris(
      257, {Vec2{0, 0}, Vec2{1, 0}, Vec2{0, 1}});
  EXPECT_EQ(serialize_triangles(tris).size(),
            serialized_triangles_size(tris.size()));
}

TEST(WorkFuzz, HugeUnitSurvivesTheWindowPath) {
  // A unit big enough that no inline path would ever carry it: publish,
  // verified-take, deserialize; the result must equal the direct round trip.
  std::mt19937 rng(99);
  const WorkUnit u = fuzz_unit(rng, 60000);
  auto bytes = serialize(u);
  ASSERT_GT(bytes.size(), std::size_t{1} << 20);
  const std::uint64_t digest = payload_digest(bytes.data(), bytes.size());
  const std::uint64_t len = bytes.size();
  PayloadWindow w;
  const std::uint32_t slot = w.publish(1, std::move(bytes));
  auto taken = w.take(slot, 1, len, digest);
  ASSERT_TRUE(taken.has_value());
  const WorkUnit back = deserialize_work(taken->data(), taken->size());
  EXPECT_EQ(back.id, u.id);
  EXPECT_EQ(back.bl.xsorted, u.bl.xsorted);
}

TEST(WorkFuzz, InlineFramePayloadIsBitIdenticalToBareSerialization) {
  std::mt19937 rng(7);
  BufferPool pool;
  for (int trial = 0; trial < 10; ++trial) {
    const WorkUnit u = fuzz_unit(rng, 3 + rng() % 200);
    const auto bare = serialize(u);
    auto framed = serialize(u, &pool, kInlineFrameHeader);
    seal_inline_frame(42 + trial, framed);
    const ByteBuf wire(std::move(framed));  // parsed->data aliases this
    const auto parsed = parse_frame(wire);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->size, bare.size());
    EXPECT_TRUE(std::equal(bare.begin(), bare.end(), parsed->data));
    pool.release(serialize(u, &pool));  // keep the pool cycling
  }
}

TEST(WorkFuzz, RandomBitFlipsAndTruncationsAreRejected) {
  std::mt19937 rng(0x5eed);
  for (int trial = 0; trial < 40; ++trial) {
    const WorkUnit u = fuzz_unit(rng, 3 + rng() % 500);
    const auto bytes = serialize(u);
    {
      auto bad = bytes;
      const std::size_t i = rng() % bad.size();
      bad[i] ^= static_cast<std::uint8_t>(1 + rng() % 255);
      EXPECT_THROW(deserialize_work(bad), std::runtime_error);
    }
    {
      auto bad = bytes;
      bad.resize(rng() % bytes.size());
      EXPECT_THROW(deserialize_work(bad), std::runtime_error);
    }
  }
}

// ---------------------------------------------------------------------------
// Coalescing: batching happens, per-pair FIFO survives, flush drains.

CoalesceOptions tight_coalescing() {
  CoalesceOptions co;
  co.flush_delay = std::chrono::microseconds(200);
  return co;
}

TEST(Coalesce, SmallMessagesBatchAndKeepFifoOrder) {
  Communicator comm(2);
  comm.set_coalescing(tight_coalescing());
  comm.send(0, 1, kTagWorkRequest);
  comm.send(0, 1, kTagNoWork, {1});
  // A large payload must flush the staged lane first so order holds.
  comm.send(0, 1, kTagWorkTransfer, std::vector<std::uint8_t>(300, 9));
  const Message a = comm.recv(1);
  const Message b = comm.recv(1);
  const Message c = comm.recv(1);
  EXPECT_EQ(a.tag, kTagWorkRequest);
  EXPECT_EQ(b.tag, kTagNoWork);
  EXPECT_EQ(c.tag, kTagWorkTransfer);
  EXPECT_EQ(c.payload.size(), 300u);
  const CommStats s = comm.stats();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.coalesced, 2u);
  EXPECT_EQ(s.messages, 2u);  // one batch + one large = two fabric messages
}

TEST(Coalesce, FlushShipsStagedSingletonsUnwrapped) {
  Communicator comm(3);
  comm.set_coalescing(tight_coalescing());
  comm.send(0, 2, kTagNoWork, {4});
  EXPECT_EQ(comm.pending(2), 0u);  // still staged
  comm.flush(0);
  const Message m = comm.recv(2);
  EXPECT_EQ(m.tag, kTagNoWork);
  EXPECT_EQ(m.payload[0], 4);
  EXPECT_EQ(comm.stats().batches, 0u);  // singleton went out unwrapped
}

TEST(Coalesce, MaybeFlushHonorsTheAgeBound) {
  // Young lanes stay staged (huge delay: the bound can never be reached
  // within the test), aged lanes ship (tiny delay plus a real sleep). Two
  // communicators so the check cannot flake on a slow, oversubscribed box.
  Communicator young(2);
  CoalesceOptions slow;
  slow.flush_delay = std::chrono::minutes(10);
  young.set_coalescing(slow);
  young.send(0, 1, kTagNoWork);
  young.maybe_flush(0);
  EXPECT_EQ(young.pending(1), 0u);  // still staged

  Communicator aged(2);
  CoalesceOptions fast;
  fast.flush_delay = std::chrono::microseconds(1);
  aged.set_coalescing(fast);
  aged.send(0, 1, kTagNoWork);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  aged.maybe_flush(0);
  EXPECT_EQ(aged.pending(1), 1u);
}

TEST(Coalesce, CapsForceImmediateShipment) {
  Communicator comm(2);
  CoalesceOptions co = tight_coalescing();
  co.max_messages = 3;
  comm.set_coalescing(co);
  comm.send(0, 1, kTagNoWork);
  comm.send(0, 1, kTagNoWork);
  EXPECT_EQ(comm.pending(1), 0u);
  comm.send(0, 1, kTagNoWork);  // hits the cap
  EXPECT_EQ(comm.pending(1), 1u);
  const Message m = comm.recv(1);
  EXPECT_EQ(m.tag, kTagNoWork);  // batch expanded transparently by recv
  EXPECT_EQ(comm.stats().coalesced, 3u);
}

// ---------------------------------------------------------------------------
// Pool-level A/B: the RMA window path and the full-copy path must produce
// bit-identical meshes, with the window path moving far fewer fabric bytes.

struct AbFixture {
  GradedSizing sizing;
  std::vector<WorkUnit> initial;
  PoolOptions opts;

  AbFixture() {
    Options cfg;
    cfg.airfoil = make_naca0012(120);
    cfg.growth_kind = GrowthKind::kGeometric;
    cfg.first_height = 8e-4;
    cfg.growth_ratio = 1.3;
    cfg.max_layers = 25;
    cfg.farfield_chords = 6.0;
    cfg.inviscid_target_triangles = 4000.0;
    cfg.bl_min_points = 600;
    cfg.bl_max_level = 8;

    const BoundaryLayer bl = build_boundary_layer(cfg.airfoil, blayer_options(cfg));
    MergedMesh bl_mesh;
    triangulate_boundary_layer(bl, bl_decompose_options(cfg), bl_mesh, nullptr,
                               nullptr);
    const InviscidDomain domain = make_inviscid_domain(bl, cfg, bl_mesh);
    sizing = domain.sizing;
    for (InviscidSubdomain& quad : initial_quadrants(domain)) {
      initial.push_back(
          WorkUnit{WorkUnit::Kind::kInviscidDecouple, {}, std::move(quad)});
    }

    opts.nranks = 4;
    opts.steal_threshold = 1.0;
    opts.update_period = std::chrono::microseconds(50);
    opts.inviscid_target_triangles = cfg.inviscid_target_triangles;
    opts.tuning.heartbeat_timeout = std::chrono::milliseconds(1000);
    opts.tuning.watchdog_timeout = std::chrono::seconds(120);
  }

  PoolStats run(const PoolTuning& tuning, MergedMesh& out,
                ProtocolTrace* trace = nullptr) const {
    PoolOptions o = opts;
    o.tuning = tuning;
    o.trace = trace;
    auto units = initial;
    return run_pool(std::move(units), sizing, o, out);
  }
};

TEST(PoolAb, RmaAndCopyPathsProduceBitIdenticalMeshes) {
  const AbFixture fx;
  PoolTuning rma_on;  // defaults: rma = true
  PoolTuning rma_off;
  rma_off.rma = false;

  MergedMesh mesh_on;
  MergedMesh mesh_off;
  const PoolStats on = fx.run(rma_on, mesh_on);
  const PoolStats off = fx.run(rma_off, mesh_off);
  EXPECT_EQ(on.status, RunStatus::kOk);
  EXPECT_EQ(off.status, RunStatus::kOk);

  // The transport must never change what gets computed: identical triangle
  // and welded point counts (the pool's determinism contract).
  EXPECT_EQ(mesh_on.triangle_count(), mesh_off.triangle_count());
  EXPECT_EQ(mesh_on.point_count(), mesh_off.point_count());

  // The window path actually engaged and the copy path never did.
  EXPECT_GT(on.zero_copy_hits, 0u);
  EXPECT_GT(on.window_bytes, 0u);
  EXPECT_EQ(off.zero_copy_hits, 0u);
  EXPECT_EQ(off.window_bytes, 0u);

  // Physical mailbox traffic collapses: with payloads moving by window
  // handoff, copied fabric bytes drop by at least half (the acceptance
  // bar), even though the logical payload volume is comparable.
  EXPECT_GT(on.result_bytes, 0u);
  EXPECT_GT(off.result_bytes, 0u);
  EXPECT_LT(on.comm_bytes * 2, off.comm_bytes);
  EXPECT_GT(on.buffer_pool_misses, 0u);  // serializers draw from the pool
}

TEST(PoolAb, CoalescingPreservesTheMeshUnderChaos) {
  const AbFixture fx;
  PoolTuning plain;
  MergedMesh reference;
  const PoolStats clean = fx.run(plain, reference);
  EXPECT_EQ(clean.status, RunStatus::kOk);

  PoolTuning coalesced;
  coalesced.coalesce_delay = std::chrono::microseconds(150);
  PoolOptions o = fx.opts;
  o.faults.enabled = true;
  o.faults.seed = 77;
  o.faults.drop_rate = 0.05;
  o.faults.duplicate_rate = 0.04;
  o.faults.corrupt_rate = 0.04;
  o.tuning = coalesced;
  MergedMesh mesh;
  auto units = fx.initial;
  const PoolStats stats = run_pool(std::move(units), fx.sizing, o, mesh);
  EXPECT_EQ(stats.status, RunStatus::kOk);
  EXPECT_EQ(mesh.triangle_count(), reference.triangle_count());
  EXPECT_EQ(mesh.point_count(), reference.point_count());
  EXPECT_GT(stats.coalesced_messages, 0u);  // batching really happened
}

TEST(PoolAb, RmaChaosRunPassesTheProtocolAudit) {
  const AbFixture fx;
  PoolOptions o = fx.opts;
  o.faults.enabled = true;
  o.faults.seed = 4242;
  o.faults.drop_rate = 0.06;
  o.faults.duplicate_rate = 0.05;
  o.faults.corrupt_rate = 0.05;
  o.faults.delay_rate = 0.04;
  o.faults.delay = std::chrono::microseconds(200);
  ProtocolTrace trace;
  o.trace = &trace;
  MergedMesh mesh;
  auto units = fx.initial;
  const PoolStats stats = run_pool(std::move(units), fx.sizing, o, mesh);
  EXPECT_EQ(stats.status, RunStatus::kOk);
  EXPECT_GT(stats.zero_copy_hits, 0u);  // chaos ran over the window path

  // Exactly-once window handoff under drops, duplicates, and corruption:
  // publish-once, take-once, take-before-accept, and every dispatch
  // resolved.
  const AuditReport report =
      audit_protocol(trace, stats.status == RunStatus::kFailed);
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace aero
