// Ruppert refinement: quality bounds, area/sizing bounds, concentric shells
// near small input angles, protected segments.

#include <gtest/gtest.h>

#include <cmath>

#include "delaunay/stats.hpp"  // aerolint: allow(public-api)
#include "delaunay/triangulator.hpp"

namespace aero {
namespace {

constexpr double kSqrt2 = 1.4142135623730951;

Pslg unit_square(double s = 1.0) {
  Pslg p;
  p.points = {{0, 0}, {s, 0}, {s, s}, {0, s}};
  p.segments = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  return p;
}

TriangulateResult refine_square(double max_area, double bound = kSqrt2) {
  TriangulateOptions o;
  o.refine = true;
  o.refine_options.radius_edge_bound = bound;
  o.refine_options.max_area = max_area;
  return triangulate(unit_square(), o);
}

TEST(Refine, QualityBoundAchieved) {
  const auto r = refine_square(0.01);
  const MeshStats st = compute_stats(r.mesh);
  // radius-edge sqrt(2) corresponds to a 20.7 degree minimum angle.
  EXPECT_GE(st.min_angle_deg, 20.6);
  EXPECT_LE(st.max_radius_edge, kSqrt2 + 1e-9);
  EXPECT_TRUE(r.mesh.check_topology());
  EXPECT_TRUE(r.mesh.check_delaunay());
}

TEST(Refine, AreaBoundRespected) {
  for (const double max_area : {0.1, 0.01, 0.001}) {
    const auto r = refine_square(max_area);
    const MeshStats st = compute_stats(r.mesh);
    EXPECT_LE(st.max_area, max_area + 1e-12) << "bound " << max_area;
    EXPECT_NEAR(st.total_area, 1.0, 1e-9);
    // Triangle count should scale like 1/area.
    EXPECT_GE(st.triangles, static_cast<std::size_t>(0.5 / max_area));
  }
}

TEST(Refine, SizingFunctionGradesMesh) {
  TriangulateOptions o;
  o.refine = true;
  o.refine_options.radius_edge_bound = kSqrt2;
  // Fine near x=0, coarse near x=1.
  o.refine_options.sizing = [](Vec2 p) {
    const double l = 0.01 + 0.2 * p.x;
    return 0.5 * l * l;
  };
  const auto r = triangulate(unit_square(), o);
  // Count triangles with centroid in the left vs right quarter.
  std::size_t left = 0, right = 0;
  r.mesh.for_each_triangle([&](TriIndex t) {
    const MeshTri& mt = r.mesh.tri(t);
    if (!mt.inside) return;
    const double cx = (r.mesh.point(mt.v[0]).x + r.mesh.point(mt.v[1]).x +
                       r.mesh.point(mt.v[2]).x) / 3.0;
    if (cx < 0.25) ++left;
    if (cx > 0.75) ++right;
  });
  EXPECT_GT(left, right * 5) << "left " << left << " right " << right;
  EXPECT_TRUE(r.mesh.check_delaunay());
}

TEST(Refine, SmallInputAngleTerminates) {
  // A 10-degree wedge: classic Ruppert non-termination case, survivable
  // with concentric shells + the seditious-edge rule.
  Pslg p;
  constexpr double kA = 10.0 * 3.14159265358979323846 / 180.0;
  p.points = {{0, 0}, {1, 0}, {std::cos(kA), std::sin(kA)},
              {1.2, 0.6}, {-0.2, 0.8}};
  p.segments = {{0, 1}, {0, 2}, {1, 3}, {3, 4}, {4, 2}};
  TriangulateOptions o;
  o.refine = true;
  o.refine_options.radius_edge_bound = kSqrt2;
  o.refine_options.max_steiner = 200000;
  const auto r = triangulate(p, o);
  EXPECT_FALSE(r.refine_stats.hit_steiner_cap);
  EXPECT_TRUE(r.mesh.check_topology());
}

TEST(Refine, ProtectedSegmentsNeverSplit) {
  Pslg p = unit_square();
  TriangulateOptions o;
  o.refine = true;
  o.refine_options.radius_edge_bound = kSqrt2;
  o.refine_options.max_area = 0.005;
  o.refine_options.splittable = [](Vec2, Vec2) { return false; };
  const auto r = triangulate(p, o);
  EXPECT_EQ(r.refine_stats.segment_splits, 0u);
  // The four original corners must still bound the mesh: corner vertices
  // are input vertices 0..3 and every boundary edge endpoint coordinate
  // must lie on the square border.
  r.mesh.for_each_triangle([&](TriIndex t) {
    const MeshTri& mt = r.mesh.tri(t);
    for (int i = 0; i < 3; ++i) {
      if (!mt.constrained[i]) continue;
      for (const Vec2 q : {r.mesh.point(mt.v[(i + 1) % 3]),
                           r.mesh.point(mt.v[(i + 2) % 3])}) {
        const bool on_border = q.x == 0.0 || q.x == 1.0 || q.y == 0.0 ||
                               q.y == 1.0;
        EXPECT_TRUE(on_border);
        // No Steiner point may appear in a border segment's interior:
        // only the original corners are allowed as constrained endpoints.
        const bool corner = (q.x == 0.0 || q.x == 1.0) &&
                            (q.y == 0.0 || q.y == 1.0);
        EXPECT_TRUE(corner) << q;
      }
    }
  });
}

TEST(Refine, SteinerCapStopsRunaway) {
  TriangulateOptions o;
  o.refine = true;
  o.refine_options.max_area = 1e-7;
  o.refine_options.max_steiner = 100;
  const auto r = triangulate(unit_square(), o);
  EXPECT_TRUE(r.refine_stats.hit_steiner_cap);
  EXPECT_LE(r.refine_stats.steiner_points, 101u);
  EXPECT_TRUE(r.mesh.check_topology());  // still a valid mesh
}

TEST(Refine, StatsAreConsistent) {
  const auto r = refine_square(0.01);
  EXPECT_EQ(r.refine_stats.steiner_points,
            r.refine_stats.segment_splits + r.refine_stats.circumcenters);
  EXPECT_GT(r.refine_stats.steiner_points, 0u);
}

TEST(Refine, HoleBoundaryRefinedConformally) {
  // Square with square hole: refinement must respect the hole.
  Pslg p;
  p.points = {{0, 0}, {4, 0}, {4, 4}, {0, 4},
              {1.8, 1.8}, {2.2, 1.8}, {2.2, 2.2}, {1.8, 2.2}};
  p.segments = {{0, 1}, {1, 2}, {2, 3}, {3, 0},
                {4, 5}, {5, 6}, {6, 7}, {7, 4}};
  p.holes = {{2, 2}};
  TriangulateOptions o;
  o.refine = true;
  o.refine_options.radius_edge_bound = kSqrt2;
  o.refine_options.max_area = 0.05;
  const auto r = triangulate(p, o);
  const MeshStats st = compute_stats(r.mesh);
  EXPECT_NEAR(st.total_area, 16.0 - 0.16, 1e-9);
  EXPECT_GE(st.min_angle_deg, 20.6);
}

}  // namespace
}  // namespace aero
