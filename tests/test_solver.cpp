// FEM substitute solver and the panel method.

#include <gtest/gtest.h>

#include <cmath>

#include "core/mesh_generator.hpp"
#include "delaunay/triangulator.hpp"
#include "solver/fem.hpp"
#include "solver/panel.hpp"

namespace aero {
namespace {

MergedMesh unit_square_mesh(double max_area) {
  Pslg p;
  p.points = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  p.segments = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  TriangulateOptions o;
  o.refine = true;
  o.refine_options.radius_edge_bound = 1.4142135623730951;
  o.refine_options.max_area = max_area;
  const auto r = triangulate(p, o);
  MergedMesh m;
  m.append(r.mesh);
  return m;
}

TEST(Fem, LaplaceLinearSolutionIsExact) {
  // u = x is harmonic: with Dirichlet u = x on the boundary, the P1 Galerkin
  // solution is exactly u = x at every vertex.
  const MergedMesh mesh = unit_square_mesh(0.01);
  FemProblem problem(mesh, 1.0, {0, 0}, nullptr,
                     [](Vec2 p) { return p.x; });
  SolveOptions opts;
  opts.tolerance = 1e-13;
  const SolveResult r = problem.solve(opts);
  ASSERT_TRUE(r.converged);
  const auto full = problem.expand(r.u);
  for (std::size_t v = 0; v < mesh.point_count(); ++v) {
    EXPECT_NEAR(full[v], mesh.point(v).x, 1e-8);
  }
}

TEST(Fem, PoissonAgainstManufacturedSolution) {
  // -lap(u) = 2 pi^2 sin(pi x) sin(pi y), u = 0 on the boundary.
  constexpr double kPi = 3.14159265358979323846;
  const MergedMesh mesh = unit_square_mesh(0.002);
  FemProblem problem(
      mesh, 1.0, {0, 0},
      [](Vec2 p) {
        return 2.0 * kPi * kPi * std::sin(kPi * p.x) * std::sin(kPi * p.y);
      },
      [](Vec2) { return 0.0; });
  SolveOptions opts;
  opts.tolerance = 1e-12;
  const SolveResult r = problem.solve(opts);
  ASSERT_TRUE(r.converged);
  const auto full = problem.expand(r.u);
  double max_err = 0.0;
  for (std::size_t v = 0; v < mesh.point_count(); ++v) {
    const Vec2 p = mesh.point(v);
    const double exact = std::sin(kPi * p.x) * std::sin(kPi * p.y);
    max_err = std::max(max_err, std::fabs(full[v] - exact));
  }
  EXPECT_LT(max_err, 0.01);  // O(h^2) with h ~ 0.06
}

TEST(Fem, ResidualHistoryMonotoneForGs) {
  const MergedMesh mesh = unit_square_mesh(0.01);
  FemProblem problem(mesh, 1.0, {0, 0}, [](Vec2) { return 1.0; },
                     [](Vec2) { return 0.0; });
  SolveOptions opts;
  opts.tolerance = 1e-12;
  const SolveResult r = problem.solve(opts);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.residual_history.size(), r.iterations);
  // Gauss-Seidel on an M-matrix: residual decreases monotonically (allow
  // tiny numerical wiggle).
  for (std::size_t i = 1; i < r.residual_history.size(); ++i) {
    EXPECT_LE(r.residual_history[i], r.residual_history[i - 1] * 1.01);
  }
}

TEST(Fem, JacobiSlowerThanGaussSeidel) {
  const MergedMesh mesh = unit_square_mesh(0.02);
  FemProblem problem(mesh, 1.0, {0, 0}, [](Vec2) { return 1.0; },
                     [](Vec2) { return 0.0; });
  SolveOptions gs;
  gs.scheme = IterScheme::kGaussSeidel;
  gs.tolerance = 1e-10;
  SolveOptions jac;
  jac.scheme = IterScheme::kJacobi;
  jac.tolerance = 1e-10;
  const auto rg = problem.solve(gs);
  const auto rj = problem.solve(jac);
  ASSERT_TRUE(rg.converged);
  ASSERT_TRUE(rj.converged);
  EXPECT_LT(rg.iterations, rj.iterations);  // classic 2x factor
}

TEST(Fem, FinerMeshNeedsMoreIterations) {
  // The conditioning argument behind the paper's Figure 16: more elements
  // (same physics) => more stationary iterations to a fixed tolerance.
  FemProblem coarse(unit_square_mesh(0.02), 1.0, {0, 0},
                    [](Vec2) { return 1.0; }, [](Vec2) { return 0.0; });
  FemProblem fine(unit_square_mesh(0.002), 1.0, {0, 0},
                  [](Vec2) { return 1.0; }, [](Vec2) { return 0.0; });
  SolveOptions opts;
  opts.tolerance = 1e-8;
  const auto rc = coarse.solve(opts);
  const auto rf = fine.solve(opts);
  ASSERT_TRUE(rc.converged);
  ASSERT_TRUE(rf.converged);
  EXPECT_GT(rf.iterations, rc.iterations * 2);
}

TEST(Fem, AdvectionSkewsSolution) {
  const MergedMesh mesh = unit_square_mesh(0.005);
  FemProblem diffusion(mesh, 0.05, {0, 0}, [](Vec2) { return 1.0; },
                       [](Vec2) { return 0.0; });
  FemProblem advected(mesh, 0.05, {1.0, 0}, [](Vec2) { return 1.0; },
                      [](Vec2) { return 0.0; });
  SolveOptions opts;
  opts.tolerance = 1e-10;
  const auto rd = diffusion.solve(opts);
  const auto ra = advected.solve(opts);
  ASSERT_TRUE(rd.converged);
  ASSERT_TRUE(ra.converged);
  // Advection in +x pushes the maximum downstream: compare the center of
  // mass of the two solutions.
  const auto full_d = diffusion.expand(rd.u);
  const auto full_a = advected.expand(ra.u);
  double cx_d = 0, sum_d = 0, cx_a = 0, sum_a = 0;
  for (std::size_t v = 0; v < mesh.point_count(); ++v) {
    cx_d += full_d[v] * mesh.point(v).x;
    sum_d += full_d[v];
    cx_a += full_a[v] * mesh.point(v).x;
    sum_a += full_a[v];
  }
  EXPECT_GT(cx_a / sum_a, cx_d / sum_d + 0.02);
}

TEST(Panel, FlatPlateLiftSlope) {
  // Thin symmetric section at small incidence: Cl ~ 2 pi alpha.
  const AirfoilConfig config = make_naca0012(200);
  const double alpha = 0.0523598776;  // 3 degrees
  PanelMethod panel(config, alpha);
  const double cl = panel.lift_coefficient();
  EXPECT_NEAR(cl, 2.0 * 3.14159265358979323846 * alpha, 0.12);
}

TEST(Panel, ZeroLiftAtZeroAlphaSymmetric) {
  PanelMethod panel(make_naca0012(200), 0.0);
  EXPECT_NEAR(panel.lift_coefficient(), 0.0, 1e-6);
}

TEST(Panel, FarFieldRecoversFreestream) {
  PanelMethod panel(make_naca0012(128), 0.05);
  const Vec2 v = panel.velocity({50.0, 40.0});
  EXPECT_NEAR(v.x, std::cos(0.05), 1e-3);
  EXPECT_NEAR(v.y, std::sin(0.05), 1e-3);
  EXPECT_NEAR(panel.pressure_coefficient({50.0, 40.0}), 0.0, 1e-3);
}

TEST(Panel, StagnationNearLeadingEdge) {
  PanelMethod panel(make_naca0012(256), 0.0);
  // At zero incidence the stagnation point is the leading edge: velocity
  // just ahead of it is far below freestream.
  const double speed = panel.velocity({-0.002, 0.0}).norm();
  EXPECT_LT(speed, 0.5);
}

TEST(Panel, HighLiftConfigurationCarriesMoreLift) {
  const double alpha = 0.0872664626;  // 5 degrees (the paper's run)
  PanelMethod single(make_naca0012(160), alpha);
  PanelMethod high_lift(make_three_element(160), alpha);
  EXPECT_GT(high_lift.lift_coefficient(), single.lift_coefficient());
}

TEST(Panel, SurfaceCpBoundedByStagnation) {
  PanelMethod panel(make_naca0012(200), 0.05);
  for (const double cp : panel.surface_cp()) {
    EXPECT_LE(cp, 1.0 + 1e-9);  // Cp = 1 at stagnation is the maximum
    EXPECT_GT(cp, -8.0);        // sane suction bound
  }
}

}  // namespace
}  // namespace aero
