// End-to-end push-button pipeline: NACA 0012 and the three-element high-lift
// configuration, checking conformity, region coverage, and the anisotropic /
// isotropic structure of the result.

#include <gtest/gtest.h>

#include <cmath>

#include "core/mesh_generator.hpp"
#include "geom/triangle_quality.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

Options small_config(AirfoilConfig airfoil) {
  Options cfg;
  cfg.airfoil = std::move(airfoil);
  cfg.growth_kind = GrowthKind::kGeometric;
  cfg.first_height = 6e-4;
  cfg.growth_ratio = 1.25;
  cfg.max_layers = 30;
  cfg.farfield_chords = 8.0;
  cfg.inviscid_target_triangles = 15000.0;
  cfg.bl_min_points = 800;
  cfg.bl_max_level = 10;
  return cfg;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void verify_common(const MeshGenerationResult& r,
                            const Options& cfg) {
    const auto conf = r.mesh.check_conformity();
    EXPECT_TRUE(conf.manifold);
    EXPECT_EQ(conf.nonmanifold_edges, 0u);
    EXPECT_TRUE(conf.orientation_ok);

    // Total area: far-field box minus the airfoil areas.
    double body_area = 0.0;
    for (const auto& e : cfg.airfoil.elements) {
      double a2 = 0.0;
      for (std::size_t i = 0; i < e.surface.size(); ++i) {
        a2 += e.surface[i].cross(e.surface[(i + 1) % e.surface.size()]);
      }
      body_area += 0.5 * a2;
    }
    const double box = 2.0 * cfg.farfield_chords * cfg.airfoil.chord;
    const MergedStats st = compute_stats(r.mesh);
    EXPECT_NEAR(st.total_area, box * box - body_area, box * box * 1e-6);

    EXPECT_GT(r.bl_triangles, 1000u);
    EXPECT_GT(r.inviscid_triangles, 10000u);
    EXPECT_GT(r.bl_subdomains, 1u);
    EXPECT_GE(r.inviscid_subdomains, 5u);
  }
};

TEST_F(PipelineTest, Naca0012) {
  const Options cfg = small_config(make_naca0012(200));
  const MeshGenerationResult r = generate_mesh(cfg);
  verify_common(r, cfg);

  // Anisotropic structure: the boundary layer must contain high-aspect
  // triangles; the far field must not.
  double max_aspect_near = 0.0, max_aspect_far = 0.0;
  r.mesh.for_each_triangle([&](Vec2 a, Vec2 b, Vec2 c) {
    const double ar = aspect_ratio(a, b, c);
    const double d = std::fabs(a.x - 0.5) + std::fabs(a.y);
    if (d < 1.0) {
      max_aspect_near = std::max(max_aspect_near, ar);
    } else if (d > 4.0) {
      max_aspect_far = std::max(max_aspect_far, ar);
    }
  });
  EXPECT_GT(max_aspect_near, 8.0);   // anisotropic boundary layer
  EXPECT_LT(max_aspect_far, 8.0);    // isotropic far field (sqrt(2) bound)
}

TEST_F(PipelineTest, ThreeElement) {
  const Options cfg = small_config(make_three_element(200));
  const MeshGenerationResult r = generate_mesh(cfg);
  verify_common(r, cfg);
  // All the paper's special cases fired.
  EXPECT_GT(r.boundary_layer.stats.fans, 0u);
  EXPECT_GT(r.boundary_layer.stats.self_truncations +
                r.boundary_layer.stats.surface_truncations, 0u);
  EXPECT_GT(r.boundary_layer.stats.multi_truncations, 0u);
}

TEST_F(PipelineTest, BluntTrailingEdge) {
  const Options cfg =
      small_config(make_naca0012(150, /*sharp_te=*/false));
  const MeshGenerationResult r = generate_mesh(cfg);
  const auto conf = r.mesh.check_conformity();
  EXPECT_TRUE(conf.manifold);
  EXPECT_TRUE(conf.orientation_ok);
  // Blunt TE produces two corner fans instead of one cusp fan.
  EXPECT_GE(r.boundary_layer.stats.fans, 2u);
}

TEST_F(PipelineTest, PushButtonDeterminism) {
  const Options cfg = small_config(make_naca0012(120));
  const MeshGenerationResult r1 = generate_mesh(cfg);
  const MeshGenerationResult r2 = generate_mesh(cfg);
  EXPECT_EQ(r1.mesh.triangle_count(), r2.mesh.triangle_count());
  EXPECT_EQ(r1.mesh.point_count(), r2.mesh.point_count());
}

TEST_F(PipelineTest, SizingControlsInviscidCount) {
  Options coarse = small_config(make_naca0012(120));
  Options fine = small_config(make_naca0012(120));
  fine.surface_length_factor = coarse.surface_length_factor * 0.5;
  const auto rc = generate_mesh(coarse);
  const auto rf = generate_mesh(fine);
  // Halving the near-body edge length multiplies near-body triangle counts;
  // globally the effect is smaller but must be clearly visible.
  EXPECT_GT(rf.inviscid_triangles, rc.inviscid_triangles * 3 / 2);
}

TEST_F(PipelineTest, TaskCostsRecorded) {
  const Options cfg = small_config(make_naca0012(120));
  const MeshGenerationResult r = generate_mesh(cfg);
  EXPECT_EQ(r.bl_task_seconds.size(), r.bl_subdomains);
  EXPECT_EQ(r.inviscid_task_seconds.size(), r.inviscid_subdomains);
  for (const double s : r.inviscid_task_seconds) EXPECT_GE(s, 0.0);
}

}  // namespace
}  // namespace aero
