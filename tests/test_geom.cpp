// Vec2 / BBox2 / segment intersection / clipping / polygon utilities.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geom/bbox.hpp"  // aerolint: allow(public-api)
#include "geom/segment.hpp"  // aerolint: allow(public-api)
#include "geom/triangle_quality.hpp"  // aerolint: allow(public-api)
#include "geom/vec2.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Vec2, Algebra) {
  const Vec2 a{1, 2}, b{3, -1};
  EXPECT_EQ(a + b, (Vec2{4, 1}));
  EXPECT_EQ(a - b, (Vec2{-2, 3}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_EQ(2.0 * a, (Vec2{2, 4}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
}

TEST(Vec2, PerpAndRotate) {
  const Vec2 v{1, 0};
  EXPECT_EQ(v.perp(), (Vec2{0, 1}));
  const Vec2 r = v.rotated(kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-15);
  EXPECT_NEAR(r.y, 1.0, 1e-15);
}

TEST(Vec2, NormalizedZeroIsZero) {
  EXPECT_EQ((Vec2{0, 0}).normalized(), (Vec2{0, 0}));
}

TEST(Vec2, Orderings) {
  EXPECT_TRUE(LessXY{}({0, 5}, {1, 0}));
  EXPECT_TRUE(LessXY{}({1, 0}, {1, 1}));
  EXPECT_FALSE(LessXY{}({1, 1}, {1, 1}));
  EXPECT_TRUE(LessYX{}({5, 0}, {0, 1}));
  EXPECT_TRUE(LessYX{}({0, 1}, {1, 1}));
}

TEST(BBox2, EmptyAndExpand) {
  BBox2 b;
  EXPECT_TRUE(b.empty());
  b.expand({1, 2});
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.lo, (Vec2{1, 2}));
  EXPECT_EQ(b.hi, (Vec2{1, 2}));
  b.expand({-1, 5});
  EXPECT_EQ(b.lo, (Vec2{-1, 2}));
  EXPECT_EQ(b.hi, (Vec2{1, 5}));
  EXPECT_DOUBLE_EQ(b.width(), 2.0);
  EXPECT_DOUBLE_EQ(b.height(), 3.0);
}

TEST(BBox2, IntersectsAndContains) {
  const BBox2 a{{0, 0}, {2, 2}};
  EXPECT_TRUE(a.intersects(BBox2{{1, 1}, {3, 3}}));
  EXPECT_TRUE(a.intersects(BBox2{{2, 2}, {3, 3}}));  // touching counts
  EXPECT_FALSE(a.intersects(BBox2{{2.1, 0}, {3, 1}}));
  EXPECT_TRUE(a.contains({1, 1}));
  EXPECT_TRUE(a.contains({2, 2}));
  EXPECT_FALSE(a.contains({2.0001, 1}));
}

TEST(SegmentIntersect, ProperCross) {
  const auto hit = intersect({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}});
  ASSERT_EQ(hit.kind, IntersectKind::kProper);
  EXPECT_NEAR(hit.point.x, 1.0, 1e-15);
  EXPECT_NEAR(hit.point.y, 1.0, 1e-15);
  EXPECT_NEAR(hit.t, 0.5, 1e-15);
}

TEST(SegmentIntersect, Disjoint) {
  EXPECT_FALSE(intersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}));
  EXPECT_FALSE(intersect({{0, 0}, {1, 0}}, {{2, -1}, {2, 1}}));
}

TEST(SegmentIntersect, EndpointTouch) {
  const auto hit = intersect({{0, 0}, {1, 1}}, {{1, 1}, {2, 0}});
  EXPECT_EQ(hit.kind, IntersectKind::kEndpoint);
  EXPECT_EQ(hit.point, (Vec2{1, 1}));
}

TEST(SegmentIntersect, TVertexTouch) {
  // Endpoint of one segment in the interior of the other.
  const auto hit = intersect({{0, 0}, {2, 0}}, {{1, 0}, {1, 5}});
  EXPECT_EQ(hit.kind, IntersectKind::kEndpoint);
  EXPECT_EQ(hit.point, (Vec2{1, 0}));
}

TEST(SegmentIntersect, CollinearOverlap) {
  const auto hit = intersect({{0, 0}, {2, 0}}, {{1, 0}, {3, 0}});
  EXPECT_EQ(hit.kind, IntersectKind::kCollinear);
  // Representative point inside the shared stretch [1,2].
  EXPECT_GE(hit.point.x, 1.0);
  EXPECT_LE(hit.point.x, 2.0);
}

TEST(SegmentIntersect, CollinearTouchIsEndpoint) {
  // Adjacent collinear segments share exactly one point: NOT an overlap.
  const auto hit = intersect({{0, 0}, {1, 0}}, {{1, 0}, {2, 0}});
  EXPECT_EQ(hit.kind, IntersectKind::kEndpoint);
  EXPECT_EQ(hit.point, (Vec2{1, 0}));
}

TEST(SegmentIntersect, CollinearDisjoint) {
  EXPECT_FALSE(intersect({{0, 0}, {1, 0}}, {{1.5, 0}, {2, 0}}));
}

TEST(SegmentIntersect, NearMissIsExact) {
  // Segments passing within 1 ulp of each other must not report a crossing.
  const double y = std::nextafter(0.0, 1.0);
  EXPECT_FALSE(intersect({{0, y}, {1, y}}, {{0, 0}, {1, 0}}));
}

TEST(CohenSutherland, Outcodes) {
  const BBox2 box{{0, 0}, {10, 10}};
  EXPECT_EQ(cohen_sutherland_outcode({5, 5}, box), 0u);
  EXPECT_EQ(cohen_sutherland_outcode({-1, 5}, box), 1u);
  EXPECT_EQ(cohen_sutherland_outcode({11, 5}, box), 2u);
  EXPECT_EQ(cohen_sutherland_outcode({5, -1}, box), 4u);
  EXPECT_EQ(cohen_sutherland_outcode({5, 11}, box), 8u);
  EXPECT_EQ(cohen_sutherland_outcode({-1, -1}, box), 5u);
  EXPECT_EQ(cohen_sutherland_outcode({11, 11}, box), 10u);
}

TEST(CohenSutherland, TrivialAcceptAndReject) {
  const BBox2 box{{0, 0}, {10, 10}};
  const auto in = clip_to_box({1, 1}, {9, 9}, box);
  ASSERT_TRUE(in.has_value());
  EXPECT_EQ(in->a, (Vec2{1, 1}));
  EXPECT_EQ(in->b, (Vec2{9, 9}));
  EXPECT_FALSE(clip_to_box({-5, -1}, {-1, -5}, box).has_value());
}

TEST(CohenSutherland, ClipsCrossingSegment) {
  const BBox2 box{{0, 0}, {10, 10}};
  const auto clipped = clip_to_box({-10, 5}, {20, 5}, box);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_NEAR(clipped->a.x, 0.0, 1e-12);
  EXPECT_NEAR(clipped->b.x, 10.0, 1e-12);
  EXPECT_NEAR(clipped->a.y, 5.0, 1e-12);
}

TEST(CohenSutherland, CornerGrazing) {
  const BBox2 box{{0, 0}, {10, 10}};
  // Passes exactly through the corner (0, 10).
  const auto clipped = clip_to_box({-5, 5}, {5, 15}, box);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_NEAR(distance(clipped->a, clipped->b), 0.0, 1e-9);
  // Misses the box entirely past the corner.
  EXPECT_FALSE(clip_to_box({-5, 6}, {5, 16}, box).has_value());
}

TEST(CohenSutherland, AgreesWithExactIntersectionSweep) {
  const BBox2 box{{0, 0}, {1, 1}};
  const Segment sides[4] = {{{0, 0}, {1, 0}},
                            {{1, 0}, {1, 1}},
                            {{1, 1}, {0, 1}},
                            {{0, 1}, {0, 0}}};
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> d(-2.0, 3.0);
  for (int i = 0; i < 20000; ++i) {
    const Vec2 a{d(rng), d(rng)}, b{d(rng), d(rng)};
    const bool clip = segment_intersects_box(a, b, box);
    bool exact = box.contains(a) || box.contains(b);
    for (const Segment& s : sides) {
      exact = exact || static_cast<bool>(intersect({a, b}, s));
    }
    EXPECT_EQ(clip, exact) << "a=" << a << " b=" << b;
  }
}

TEST(PointSegmentDistance, Cases) {
  EXPECT_DOUBLE_EQ(point_segment_distance({0, 1}, {-1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({5, 0}, {-1, 0}, {1, 0}), 4.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({0, 0}, {0, 0}, {0, 0}), 0.0);
}

TEST(Angles, AngleAt) {
  EXPECT_NEAR(angle_at({1, 0}, {0, 0}, {0, 1}), kPi / 2, 1e-14);
  EXPECT_NEAR(angle_at({1, 0}, {0, 0}, {-1, 0}), kPi, 1e-14);
  EXPECT_NEAR(angle_at({1, 0}, {0, 0}, {1, 1}), kPi / 4, 1e-14);
}

TEST(Angles, SignedAngle) {
  EXPECT_NEAR(signed_angle({1, 0}, {0, 1}), kPi / 2, 1e-14);
  EXPECT_NEAR(signed_angle({1, 0}, {0, -1}), -kPi / 2, 1e-14);
  EXPECT_NEAR(signed_angle({1, 0}, {1, 0}), 0.0, 1e-14);
}

TEST(PointInPolygon, SquareWithBoundary) {
  const std::vector<Vec2> square{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  EXPECT_TRUE(point_in_polygon({1, 1}, square));
  EXPECT_TRUE(point_in_polygon({0, 0}, square));   // vertex
  EXPECT_TRUE(point_in_polygon({1, 0}, square));   // edge
  EXPECT_FALSE(point_in_polygon({3, 1}, square));
  EXPECT_FALSE(point_in_polygon({-1e-12, 1}, square));
}

TEST(PointInPolygon, NonConvex) {
  // A "C" shape.
  const std::vector<Vec2> c{{0, 0}, {4, 0}, {4, 1}, {1, 1},
                            {1, 3}, {4, 3}, {4, 4}, {0, 4}};
  EXPECT_TRUE(point_in_polygon({0.5, 2}, c));
  EXPECT_FALSE(point_in_polygon({2, 2}, c));  // inside the notch
  EXPECT_TRUE(point_in_polygon({2, 0.5}, c));
}

TEST(TriangleQuality, Equilateral) {
  const Vec2 a{0, 0}, b{1, 0}, c{0.5, std::sqrt(3.0) / 2.0};
  EXPECT_NEAR(min_angle(a, b, c), kPi / 3, 1e-12);
  EXPECT_NEAR(max_angle(a, b, c), kPi / 3, 1e-12);
  EXPECT_NEAR(radius_edge_ratio(a, b, c), 1.0 / std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(aspect_ratio(a, b, c), std::sqrt(3.0), 1e-12);
  const Vec2 cc = circumcenter(a, b, c);
  EXPECT_NEAR(distance(cc, a), distance(cc, b), 1e-14);
  EXPECT_NEAR(distance(cc, b), distance(cc, c), 1e-14);
}

TEST(TriangleQuality, RightTriangle) {
  const Vec2 a{0, 0}, b{3, 0}, c{0, 4};
  // Circumcenter of a right triangle is the hypotenuse midpoint.
  const Vec2 cc = circumcenter(a, b, c);
  EXPECT_NEAR(cc.x, 1.5, 1e-13);
  EXPECT_NEAR(cc.y, 2.0, 1e-13);
  EXPECT_NEAR(circumradius(a, b, c), 2.5, 1e-13);
  EXPECT_DOUBLE_EQ(shortest_edge(a, b, c), 3.0);
}

TEST(TriangleQuality, AnisotropicSliver) {
  // A boundary-layer triangle: base 1, height 1e-4 (aspect ~ 10^4).
  const Vec2 a{0, 0}, b{1, 0}, c{0.5, 1e-4};
  EXPECT_GT(aspect_ratio(a, b, c), 1000.0);
  EXPECT_LT(min_angle(a, b, c) * 180.0 / kPi, 0.1);
  EXPECT_GT(radius_edge_ratio(a, b, c), 100.0);
}

TEST(TriangleQuality, SignedArea) {
  EXPECT_DOUBLE_EQ(signed_area({0, 0}, {1, 0}, {0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(signed_area({0, 0}, {0, 1}, {1, 0}), -0.5);
}

}  // namespace
}  // namespace aero
