// The projection-based (Blelloch) decomposition: the central correctness
// theorem of the parallel triangulation -- the union of circumcenter-owned
// triangles over all leaves equals the direct Delaunay triangulation of the
// whole cloud, exactly, triangle for triangle.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <random>

#include "hull/subdomain.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

using TriKey = std::array<std::pair<double, double>, 3>;

TriKey key_of(Vec2 a, Vec2 b, Vec2 c) {
  TriKey k{{{a.x, a.y}, {b.x, b.y}, {c.x, c.y}}};
  std::sort(k.begin(), k.end());
  return k;
}

std::map<TriKey, int> triangle_set(const DelaunayMesh& m, bool inside_only) {
  std::map<TriKey, int> out;
  m.for_each_triangle([&](TriIndex t) {
    const MeshTri& mt = m.tri(t);
    if (inside_only && !mt.inside) return;
    out[key_of(m.point(mt.v[0]), m.point(mt.v[1]), m.point(mt.v[2]))]++;
  });
  return out;
}

struct DecompParam {
  const char* shape;
  int n;
  std::size_t min_points;
  int max_level;
  unsigned seed;
};

class DecompositionSweep : public ::testing::TestWithParam<DecompParam> {
 protected:
  std::vector<Vec2> make_points() const {
    const auto& p = GetParam();
    const std::string shape = p.shape;
    std::vector<Vec2> pts;
    if (shape == "random") {
      std::mt19937_64 rng(p.seed);
      std::uniform_real_distribution<double> d(0.0, 1.0);
      for (int i = 0; i < p.n; ++i) pts.push_back({d(rng), d(rng)});
    } else if (shape == "grid") {
      const int side = static_cast<int>(std::sqrt(p.n));
      for (int i = 0; i < side; ++i) {
        for (int j = 0; j < side; ++j) {
          pts.push_back({i / static_cast<double>(side),
                         j / static_cast<double>(side)});
        }
      }
    } else if (shape == "annulus") {
      const int ns = p.n / 10;
      for (int i = 0; i < ns; ++i) {
        const double th = 2 * 3.14159265358979323846 * i / ns;
        for (int l = 0; l < 10; ++l) {
          const double r = 1.0 + 0.02 * (std::pow(1.3, l) - 1.0);
          pts.push_back({r * std::cos(th), 0.6 * r * std::sin(th)});
        }
      }
    } else if (shape == "skewed") {
      // Strongly anisotropic extent: forces alternating cut axes.
      std::mt19937_64 rng(p.seed);
      std::uniform_real_distribution<double> d(0.0, 1.0);
      for (int i = 0; i < p.n; ++i) pts.push_back({d(rng) * 100.0, d(rng)});
    }
    return pts;
  }
};

TEST_P(DecompositionSweep, UnionEqualsDirectTriangulation) {
  const auto& param = GetParam();
  const std::vector<Vec2> pts = make_points();

  const auto direct = triangulate_points(pts);
  const auto expected = triangle_set(direct.mesh, false);

  Subdomain root = make_root_subdomain(pts);
  DecomposeOptions opts{param.min_points, param.max_level};
  const auto leaves = decompose(std::move(root), opts);
  EXPECT_GT(leaves.size(), 1u);

  std::map<TriKey, int> got;
  for (const auto& leaf : leaves) {
    EXPECT_TRUE(leaf.final_);
    EXPECT_TRUE(leaf.ysorted.empty());  // dropped on finalize
    const auto r = triangulate_subdomain(leaf);
    for (const auto& [k, c] : triangle_set(r.mesh, true)) got[k] += c;
  }

  std::size_t missing = 0, extra = 0, dup = 0;
  for (const auto& [k, c] : expected) {
    if (!got.count(k)) ++missing;
  }
  for (const auto& [k, c] : got) {
    if (c > 1) ++dup;
    if (!expected.count(k)) ++extra;
  }
  EXPECT_EQ(missing, 0u);
  EXPECT_EQ(extra, 0u);
  EXPECT_EQ(dup, 0u);
  EXPECT_EQ(got.size(), expected.size());
}

INSTANTIATE_TEST_SUITE_P(
    Clouds, DecompositionSweep,
    ::testing::Values(
        DecompParam{"random", 2000, 100, 10, 1},
        DecompParam{"random", 2000, 100, 10, 2},
        DecompParam{"random", 5000, 50, 12, 3},   // deep recursion
        DecompParam{"grid", 1600, 100, 10, 4},    // full degeneracy
        DecompParam{"annulus", 2000, 150, 10, 5}, // hole + structure
        DecompParam{"skewed", 2000, 100, 10, 6}),
    [](const auto& info) {
      return std::string(info.param.shape) + "_" +
             std::to_string(info.param.n) + "_" +
             std::to_string(info.param.seed);
    });

TEST(Subdomain, BboxIsConstantTimeFromSortedArrays) {
  Subdomain s = make_root_subdomain({{3, 1}, {0, 5}, {7, 2}, {4, 9}});
  const BBox2 box = s.bbox();
  EXPECT_EQ(box.lo, (Vec2{0, 1}));
  EXPECT_EQ(box.hi, (Vec2{7, 9}));
}

TEST(Subdomain, MakeRootDeduplicates) {
  Subdomain s = make_root_subdomain({{1, 1}, {0, 0}, {1, 1}, {0, 0}});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(std::is_sorted(s.xsorted.begin(), s.xsorted.end(), LessXY{}));
  EXPECT_TRUE(std::is_sorted(s.ysorted.begin(), s.ysorted.end(), LessYX{}));
}

TEST(Subdomain, SplitMaintainsSortedArrays) {
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < 1000; ++i) pts.push_back({d(rng), d(rng)});
  Subdomain root = make_root_subdomain(pts);
  auto [l, r] = split_subdomain(std::move(root));
  for (const Subdomain* s : {&l, &r}) {
    EXPECT_TRUE(
        std::is_sorted(s->xsorted.begin(), s->xsorted.end(), LessXY{}));
    EXPECT_TRUE(
        std::is_sorted(s->ysorted.begin(), s->ysorted.end(), LessYX{}));
    EXPECT_EQ(s->xsorted.size(), s->ysorted.size());
    EXPECT_EQ(s->cuts.size(), 1u);
  }
  EXPECT_TRUE(l.cuts[0].keep_left);
  EXPECT_FALSE(r.cuts[0].keep_left);
  // Shared path vertices mean the sizes sum to >= the parent size.
  EXPECT_GE(l.size() + r.size(), 1000u);
}

TEST(Subdomain, CutAxisFollowsShortestBboxEdge) {
  // Wide cloud: vertical median line (cut of the x extent).
  std::vector<Vec2> wide;
  std::mt19937_64 rng(10);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  for (int i = 0; i < 500; ++i) wide.push_back({d(rng) * 10.0, d(rng)});
  Subdomain root = make_root_subdomain(wide);
  const std::size_t n = root.size();
  auto [l, r] = split_subdomain(std::move(root));
  EXPECT_EQ(l.cuts[0].axis, CutAxis::kVertical);
  // The median split halves the point count (up to shared path vertices;
  // bbox widths can exceed half because path endpoints are u-extreme points
  // of the whole cloud).
  EXPECT_NEAR(static_cast<double>(l.size()), n / 2.0, n * 0.2);
  EXPECT_NEAR(static_cast<double>(r.size()), n / 2.0, n * 0.2);
}

TEST(Subdomain, DegenerateCollinearCloudFinalizesWhole) {
  std::vector<Vec2> line;
  for (int i = 0; i < 100; ++i) line.push_back({i * 1.0, 0.0});
  Subdomain root = make_root_subdomain(line);
  DecomposeOptions opts{10, 10};
  const auto leaves = decompose(std::move(root), opts);
  // No valid 2D triangulation exists; all that matters is termination with
  // every point still present somewhere.
  ASSERT_GE(leaves.size(), 1u);
  std::size_t total = 0;
  for (const auto& leaf : leaves) total += leaf.size();
  EXPECT_GE(total, 100u);
}

TEST(Subdomain, DcKernelMatchesIncrementalOwnership) {
  // The production path triangulates leaves with the divide-and-conquer
  // kernel; its owned-triangle set must equal the incremental kernel's.
  std::mt19937_64 rng(21);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < 3000; ++i) pts.push_back({d(rng), d(rng)});
  Subdomain root = make_root_subdomain(pts);
  const auto leaves = decompose(std::move(root), {300, 10});
  ASSERT_GT(leaves.size(), 2u);
  for (const auto& leaf : leaves) {
    std::map<TriKey, int> inc_owned;
    const auto r = triangulate_subdomain(leaf);
    for (const auto& [k, c] : triangle_set(r.mesh, true)) inc_owned[k] += c;
    std::map<TriKey, int> dc_owned;
    for (const auto& t : triangulate_subdomain_dc(leaf)) {
      dc_owned[key_of(t[0], t[1], t[2])]++;
    }
    EXPECT_EQ(dc_owned, inc_owned);
  }
}

TEST(Subdomain, CostIsTriangleEstimate) {
  Subdomain s = make_root_subdomain({{0, 0}, {1, 0}, {0, 1}, {1, 1}});
  EXPECT_DOUBLE_EQ(s.cost(), 8.0);
}

}  // namespace
}  // namespace aero
