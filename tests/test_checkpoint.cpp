// Run-level resilience: the checkpoint journal's CRC framing and tail
// discard, the deterministic subdomain content key and config hash, pool
// checkpoint/resume equivalence, budget-driven graceful drains, process
// chaos (rank crashes, mesher kills) -> resume -> bit-identical meshes,
// and the driver-level end-to-end paths.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/mesh_generator.hpp"
#include "core/pipeline_config.hpp"  // aerolint: allow(public-api)
#include "io/journal.hpp"  // aerolint: allow(public-api)
#include "runtime/checkpoint.hpp"  // aerolint: allow(public-api)
#include "runtime/parallel_driver.hpp"  // aerolint: allow(public-api)
#include "runtime/pool.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

// ---------------------------------------------------------------------------
// Helpers.

/// A journal path in the test working directory, removed on scope exit.
/// The pid keeps concurrent instances of the same test apart: ctest runs
/// the soak both as a discovered test and as the named checkpoint_soak
/// entry, and under `ctest -j` the two overlap in the same directory.
struct TempJournal {
  std::string path;
  explicit TempJournal(const std::string& name)
      : path("ckpt_test_" + name + "_" + std::to_string(::getpid()) +
             ".aerojnl") {
    std::remove(path.c_str());
  }
  ~TempJournal() { std::remove(path.c_str()); }
  TempJournal(const TempJournal&) = delete;
  TempJournal& operator=(const TempJournal&) = delete;
};

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Canonical coordinate soup of the live triangles: each triangle's vertices
/// sorted, then the whole list sorted, so two meshes compare bit-identical
/// regardless of merge order, rank count, or resume scheduling.
std::vector<std::array<double, 6>> canonical_triangles(const MergedMesh& m) {
  std::vector<std::array<double, 6>> out;
  out.reserve(m.triangle_count());
  for (std::size_t t = 0; t < m.record_count(); ++t) {
    if (!m.alive(t)) continue;
    std::array<std::pair<double, double>, 3> v;
    for (int i = 0; i < 3; ++i) {
      const Vec2 p = m.point(m.tri(t)[static_cast<std::size_t>(i)]);
      v[static_cast<std::size_t>(i)] = {p.x, p.y};
    }
    std::sort(v.begin(), v.end());
    out.push_back({v[0].first, v[0].second, v[1].first, v[1].second,
                   v[2].first, v[2].second});
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Journal file format: framing, tail discard, header validation.

constexpr std::uint64_t kHash = 0x1234abcd5678ef01ull;

void write_records(const std::string& path, int n, bool append = false) {
  JournalWriter w;
  ASSERT_TRUE(w.open(path, kHash, append));
  for (int i = 0; i < n; ++i) {
    std::vector<std::uint8_t> payload(17 + static_cast<std::size_t>(i) * 5);
    for (std::size_t b = 0; b < payload.size(); ++b) {
      payload[b] = static_cast<std::uint8_t>(i * 31 + static_cast<int>(b));
    }
    ASSERT_TRUE(w.append(0x100u + static_cast<std::uint64_t>(i),
                         payload.data(), payload.size()));
  }
  ASSERT_TRUE(w.flush());
  w.close();
}

TEST(Journal, RoundTripPreservesEveryRecord) {
  TempJournal tj("roundtrip");
  write_records(tj.path, 3);

  const JournalContents j = read_journal(tj.path, kHash);
  EXPECT_TRUE(j.header_ok);
  EXPECT_FALSE(j.hash_mismatch);
  EXPECT_EQ(j.version, kJournalVersion);
  EXPECT_EQ(j.config_hash, kHash);
  EXPECT_EQ(j.discarded_bytes, 0u);
  ASSERT_EQ(j.records.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const JournalRecord& r = j.records[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.key, 0x100u + static_cast<std::uint64_t>(i));
    ASSERT_EQ(r.payload.size(), 17u + static_cast<std::size_t>(i) * 5);
    for (std::size_t b = 0; b < r.payload.size(); ++b) {
      EXPECT_EQ(r.payload[b],
                static_cast<std::uint8_t>(i * 31 + static_cast<int>(b)));
    }
  }
}

TEST(Journal, MissingFileDegradesToNothing) {
  const JournalContents j = read_journal("ckpt_test_no_such_file.aerojnl",
                                         kHash);
  EXPECT_FALSE(j.header_ok);
  EXPECT_TRUE(j.records.empty());
}

TEST(Journal, HashMismatchRejectsTheWholeFile) {
  TempJournal tj("hashmismatch");
  write_records(tj.path, 2);

  const JournalContents j = read_journal(tj.path, kHash ^ 1u);
  EXPECT_TRUE(j.header_ok);
  EXPECT_TRUE(j.hash_mismatch);
  EXPECT_TRUE(j.records.empty());
}

TEST(Journal, TruncatedTailKeepsTheIntactPrefix) {
  TempJournal tj("truncated");
  write_records(tj.path, 3);

  // A crash mid-write tears the last record: chop 5 bytes off the file.
  std::vector<std::uint8_t> bytes = slurp(tj.path);
  ASSERT_GT(bytes.size(), 5u);
  bytes.resize(bytes.size() - 5);
  dump(tj.path, bytes);

  const JournalContents j = read_journal(tj.path, kHash);
  EXPECT_TRUE(j.header_ok);
  ASSERT_EQ(j.records.size(), 2u);
  EXPECT_GT(j.discarded_bytes, 0u);
  EXPECT_EQ(j.records[1].key, 0x101u);
}

TEST(Journal, CorruptRecordStopsTheScanThere) {
  TempJournal tj("corrupt");
  write_records(tj.path, 3);

  // Flip one byte inside the second record's payload; its CRC frame must
  // reject it and everything after it, keeping only the first record.
  std::vector<std::uint8_t> bytes = slurp(tj.path);
  const std::size_t header = 24;
  const std::size_t rec0 = 4 + 8 + 17 + 4;  // len | key | payload | crc
  const std::size_t target = header + rec0 + 4 + 8 + 3;
  ASSERT_LT(target, bytes.size());
  bytes[target] ^= 0x40u;
  dump(tj.path, bytes);

  const JournalContents j = read_journal(tj.path, kHash);
  EXPECT_TRUE(j.header_ok);
  ASSERT_EQ(j.records.size(), 1u);
  EXPECT_EQ(j.records[0].key, 0x100u);
  EXPECT_GT(j.discarded_bytes, 0u);
}

TEST(Journal, CorruptHeaderIsNeverFatal) {
  TempJournal tj("badheader");
  write_records(tj.path, 2);

  std::vector<std::uint8_t> bytes = slurp(tj.path);
  bytes[3] ^= 0xffu;  // break the magic
  dump(tj.path, bytes);

  const JournalContents j = read_journal(tj.path, kHash);
  EXPECT_FALSE(j.header_ok);
  EXPECT_TRUE(j.records.empty());
}

TEST(Journal, AppendExtendsAnExistingJournal) {
  TempJournal tj("append");
  write_records(tj.path, 2);
  write_records(tj.path, 3, /*append=*/true);

  const JournalContents j = read_journal(tj.path, kHash);
  EXPECT_TRUE(j.header_ok);
  // 2 fresh + 3 appended (keys overlap on purpose; dedupe is the sink's
  // job, the file format records what it was given).
  EXPECT_EQ(j.records.size(), 5u);
  EXPECT_EQ(j.discarded_bytes, 0u);
}

TEST(Journal, WriterFailureLatchesInsteadOfThrowing) {
  JournalWriter w;
  EXPECT_FALSE(w.open("ckpt_test_no_such_dir/journal.aerojnl", kHash, false));
  EXPECT_FALSE(w.is_open());
  const std::uint8_t b = 0;
  EXPECT_FALSE(w.append(1, &b, 1));
  EXPECT_GE(w.write_failures(), 1u);
}

// ---------------------------------------------------------------------------
// Shared small-domain fixture (mirrors test_faults.cpp's ChaosFixture).

struct CheckpointFixture {
  Options cfg;
  GradedSizing sizing;
  std::vector<WorkUnit> initial;
  PoolOptions opts;

  CheckpointFixture() {
    cfg.airfoil = make_naca0012(120);
    cfg.growth_kind = GrowthKind::kGeometric;
    cfg.first_height = 8e-4;
    cfg.growth_ratio = 1.3;
    cfg.max_layers = 25;
    cfg.farfield_chords = 6.0;
    // Small target so the quadrants decompose into a real work tree (dozens
    // of units): resilience scenarios need mid-run state worth losing.
    cfg.inviscid_target_triangles = 300.0;
    cfg.bl_min_points = 600;
    cfg.bl_max_level = 8;

    const BoundaryLayer bl = build_boundary_layer(cfg.airfoil, blayer_options(cfg));
    MergedMesh bl_mesh;
    triangulate_boundary_layer(bl, bl_decompose_options(cfg), bl_mesh, nullptr,
                               nullptr);
    const InviscidDomain domain = make_inviscid_domain(bl, cfg, bl_mesh);
    sizing = domain.sizing;
    for (InviscidSubdomain& quad : initial_quadrants(domain)) {
      initial.push_back(
          WorkUnit{WorkUnit::Kind::kInviscidDecouple, {}, std::move(quad)});
    }

    opts.nranks = 4;
    opts.steal_threshold = 1.0;
    opts.update_period = std::chrono::microseconds(50);
    opts.inviscid_target_triangles = cfg.inviscid_target_triangles;
    // This box oversubscribes all pool threads onto very few cores.
    opts.tuning.heartbeat_timeout = std::chrono::milliseconds(1000);
    opts.tuning.watchdog_timeout = std::chrono::seconds(120);
  }
};

const CheckpointFixture& fixture() {
  static const CheckpointFixture fx;
  return fx;
}

/// The fault-free reference mesh of the fixture, computed once.
const std::vector<std::array<double, 6>>& reference_triangles() {
  static const std::vector<std::array<double, 6>> ref = [] {
    const CheckpointFixture& fx = fixture();
    MergedMesh clean;
    auto initial = fx.initial;
    const PoolStats s = run_pool(std::move(initial), fx.sizing, fx.opts,
                                 clean);
    EXPECT_EQ(s.status, RunStatus::kOk);
    return canonical_triangles(clean);
  }();
  return ref;
}

// ---------------------------------------------------------------------------
// Content keys and the config hash.

TEST(CheckpointKey, IgnoresSchedulingArtifacts) {
  const CheckpointFixture& fx = fixture();
  ASSERT_GE(fx.initial.size(), 2u);

  WorkUnit a = fx.initial[0];
  WorkUnit b = fx.initial[0];
  b.id = a.id + 999;        // pool-assigned identity
  b.failed_ranks = 0x5aull; // fault history
  EXPECT_EQ(subdomain_key(a), subdomain_key(b));

  // Different subdomains produce different keys.
  EXPECT_NE(subdomain_key(fx.initial[0]), subdomain_key(fx.initial[1]));
}

TEST(CheckpointKey, ConfigHashSeparatesMeshKnobsFromRuntimeKnobs) {
  Options base;
  base.airfoil = make_naca0012(60);
  const std::uint64_t h = mesh_config_hash(base);

  // Runtime knobs do not invalidate a journal: an 8-rank journal resumes a
  // 2-rank run, over either transport, with budgets or chaos or neither.
  Options runtime = base;
  runtime.ranks = 8;
  runtime.rma = !runtime.rma;
  runtime.fault_rate = 0.25;
  runtime.budget_wall_ms = 1234;
  runtime.checkpoint_path = "somewhere.aerojnl";
  EXPECT_EQ(mesh_config_hash(runtime), h);

  // Mesh-defining knobs do.
  Options grown = base;
  grown.max_layers += 1;
  EXPECT_NE(mesh_config_hash(grown), h);

  Options wider = base;
  wider.farfield_chords *= 2.0;
  EXPECT_NE(mesh_config_hash(wider), h);

  Options finer = base;
  finer.airfoil = make_naca0012(80);
  EXPECT_NE(mesh_config_hash(finer), h);

  Options retree = base;
  retree.inviscid_target_triangles *= 0.5;
  EXPECT_NE(mesh_config_hash(retree), h);
}

// ---------------------------------------------------------------------------
// Pool-level checkpoint/resume.

TEST(PoolResilience, CheckpointThenResumeReproducesTheMesh) {
  const CheckpointFixture& fx = fixture();
  TempJournal tj("pool_resume");

  // Checkpointed run: the journal fills with every finalized leaf and the
  // mesh is the reference mesh (checkpointing never perturbs results).
  CheckpointSink sink;
  ASSERT_TRUE(sink.open(tj.path, kHash, /*append=*/false));
  MergedMesh first;
  PoolOptions opts = fx.opts;
  opts.checkpoint = &sink;
  {
    auto initial = fx.initial;
    const PoolStats s = run_pool(std::move(initial), fx.sizing, opts, first);
    EXPECT_EQ(s.status, RunStatus::kOk);
    EXPECT_GT(s.checkpointed_units, 0u);
    EXPECT_EQ(s.checkpoint_failures, 0u);
    EXPECT_EQ(s.units_done, s.units_total);
  }
  sink.close();
  EXPECT_EQ(canonical_triangles(first), reference_triangles());

  // Resumed run: every leaf replays from the journal, nothing re-meshes,
  // and the mesh is bit-identical.
  const JournalContents loaded = read_journal(tj.path, kHash);
  ASSERT_TRUE(loaded.header_ok);
  ASSERT_FALSE(loaded.hash_mismatch);
  ASSERT_GT(loaded.records.size(), 0u);
  const ResumeState resume(loaded);
  EXPECT_EQ(resume.decode_failures(), 0u);

  MergedMesh second;
  PoolOptions ropts = fx.opts;
  ropts.resume = &resume;
  {
    auto initial = fx.initial;
    const PoolStats s = run_pool(std::move(initial), fx.sizing, ropts,
                                 second);
    EXPECT_EQ(s.status, RunStatus::kOk);
    EXPECT_EQ(s.resumed_units, loaded.records.size());
    EXPECT_EQ(s.units_done, s.units_total);
  }
  EXPECT_EQ(canonical_triangles(second), reference_triangles());
}

TEST(PoolResilience, CrashedRankRunResumesToTheIdenticalMesh) {
  const CheckpointFixture& fx = fixture();
  TempJournal tj("pool_crash");

  // Crash rank 2's threads after it finishes 2 units. Its gathered results
  // die with it, but every finished leaf is already journaled.
  CheckpointSink sink;
  ASSERT_TRUE(sink.open(tj.path, kHash, /*append=*/false));
  PoolOptions opts = fx.opts;
  opts.checkpoint = &sink;
  opts.faults.enabled = true;
  opts.faults.crash_rank_after_units = {{2, 2}};
  MergedMesh crashed;
  {
    auto initial = fx.initial;
    const PoolStats s = run_pool(std::move(initial), fx.sizing, opts,
                                 crashed);
    EXPECT_EQ(s.injected_crashes, 1u);
    EXPECT_EQ(s.dead_ranks, 1u);
    // When the crashed rank had finished leaves, their triangles died with
    // it (kPartial); when its two units were both splitters, reclamation
    // rescues the queued children and the run still completes (kOk).
    EXPECT_TRUE(s.status == RunStatus::kOk || s.status == RunStatus::kPartial)
        << to_string(s.status);
  }
  sink.close();

  // Resume from the journal on a healthy pool: the replayed leaves fill the
  // crater and the mesh comes out bit-identical to the fault-free run.
  const JournalContents loaded = read_journal(tj.path, kHash);
  ASSERT_TRUE(loaded.header_ok);
  ASSERT_GT(loaded.records.size(), 0u);
  const ResumeState resume(loaded);

  MergedMesh resumed;
  PoolOptions ropts = fx.opts;
  ropts.resume = &resume;
  {
    auto initial = fx.initial;
    const PoolStats s = run_pool(std::move(initial), fx.sizing, ropts,
                                 resumed);
    EXPECT_EQ(s.status, RunStatus::kOk);
    EXPECT_GT(s.resumed_units, 0u);
  }
  EXPECT_EQ(canonical_triangles(resumed), reference_triangles());
}

TEST(PoolResilience, WallBudgetDrainsToAResumablePartialMesh) {
  const CheckpointFixture& fx = fixture();
  TempJournal tj("pool_wall");

  CheckpointSink sink;
  ASSERT_TRUE(sink.open(tj.path, kHash, /*append=*/false));
  PoolOptions opts = fx.opts;
  opts.checkpoint = &sink;
  opts.budget.wall_ms = 1;  // exhausted before the work set can finish
  MergedMesh partial;
  PoolStats stopped;
  {
    auto initial = fx.initial;
    stopped = run_pool(std::move(initial), fx.sizing, opts, partial);
  }
  sink.close();
  EXPECT_EQ(stopped.status, RunStatus::kStopped);
  EXPECT_EQ(stopped.stop_cause, StopCause::kWallBudget);
  EXPECT_LT(stopped.units_done, stopped.units_total);
  EXPECT_LE(canonical_triangles(partial).size(), reference_triangles().size());

  // Whatever leaves finished are journaled; resuming completes the run and
  // lands on the reference mesh.
  const JournalContents loaded = read_journal(tj.path, kHash);
  ASSERT_TRUE(loaded.header_ok);
  EXPECT_EQ(loaded.records.size(), stopped.checkpointed_units);
  const ResumeState resume(loaded);

  MergedMesh completed;
  PoolOptions ropts = fx.opts;
  ropts.resume = &resume;
  {
    auto initial = fx.initial;
    const PoolStats s = run_pool(std::move(initial), fx.sizing, ropts,
                                 completed);
    EXPECT_EQ(s.status, RunStatus::kOk);
    EXPECT_EQ(s.resumed_units, loaded.records.size());
  }
  EXPECT_EQ(canonical_triangles(completed), reference_triangles());
}

TEST(PoolResilience, RssBudgetTripsTheMonitor) {
  const CheckpointFixture& fx = fixture();

  // Any real process peaks far above 1 MB, so the monitor's first RSS
  // sample (taken on its first tick, then every 16th) trips the budget.
  PoolOptions opts = fx.opts;
  opts.budget.peak_rss_mb = 1;
  MergedMesh partial;
  auto initial = fx.initial;
  const PoolStats s = run_pool(std::move(initial), fx.sizing, opts, partial);
  EXPECT_EQ(s.status, RunStatus::kStopped);
  EXPECT_EQ(s.stop_cause, StopCause::kRssBudget);
  EXPECT_LT(s.units_done, s.units_total);
}

TEST(PoolResilience, ExternalStopFlagDrainsTheRun) {
  const CheckpointFixture& fx = fixture();

  const std::atomic<bool> stop{true};  // pre-set: drain immediately
  PoolOptions opts = fx.opts;
  opts.stop = &stop;
  MergedMesh partial;
  auto initial = fx.initial;
  const PoolStats s = run_pool(std::move(initial), fx.sizing, opts, partial);
  EXPECT_EQ(s.status, RunStatus::kStopped);
  EXPECT_EQ(s.stop_cause, StopCause::kExternal);
  EXPECT_LT(s.units_done, s.units_total);
}

TEST(PoolResilience, MesherKillLeavesAResumableJournal) {
  const CheckpointFixture& fx = fixture();
  TempJournal tj("pool_kill");

  // Kill rank 3's mesher thread after one unit. Its communicator keeps
  // heartbeating and donating, so stealers drain most of its queue -- but
  // the half-dead rank never finishes its own in-hand work, a state the
  // heartbeat watchdog cannot see. Only the wall budget bounds the run; it
  // drains to a resumable journal.
  CheckpointSink sink;
  ASSERT_TRUE(sink.open(tj.path, kHash, /*append=*/false));
  PoolOptions opts = fx.opts;
  opts.checkpoint = &sink;
  opts.budget.wall_ms = 3000;
  opts.faults.enabled = true;
  opts.faults.kill_mesher_after_units = {{3, 1}};
  MergedMesh mesh;
  {
    auto initial = fx.initial;
    const PoolStats s = run_pool(std::move(initial), fx.sizing, opts, mesh);
    EXPECT_EQ(s.injected_mesher_kills, 1u);
    EXPECT_TRUE(s.status == RunStatus::kOk ||
                s.status == RunStatus::kStopped);
  }
  sink.close();

  const JournalContents loaded = read_journal(tj.path, kHash);
  ASSERT_TRUE(loaded.header_ok);
  ASSERT_GT(loaded.records.size(), 0u);
  const ResumeState resume(loaded);

  MergedMesh completed;
  PoolOptions ropts = fx.opts;
  ropts.resume = &resume;
  auto initial = fx.initial;
  const PoolStats s = run_pool(std::move(initial), fx.sizing, ropts,
                               completed);
  EXPECT_EQ(s.status, RunStatus::kOk);
  EXPECT_EQ(canonical_triangles(completed), reference_triangles());
}

// ---------------------------------------------------------------------------
// Driver-level end-to-end: both pool passes share one journal.

TEST(DriverResilience, CheckpointResumeEndToEnd) {
  const CheckpointFixture& fx = fixture();
  TempJournal tj("driver_e2e");
  constexpr std::uint64_t kCfgHash = 0x9e3779b97f4a7c15ull;

  // Reference run, no resilience wiring.
  const ParallelMeshResult ref = parallel_generate_mesh(fx.cfg, 4);
  ASSERT_EQ(ref.status, RunStatus::kOk);

  // Checkpointed run: both passes stream leaves into one journal.
  ResilienceOptions wr;
  wr.checkpoint_path = tj.path;
  wr.config_hash = kCfgHash;
  const ParallelMeshResult ck =
      parallel_generate_mesh(fx.cfg, 4, {}, nullptr, {}, wr);
  ASSERT_EQ(ck.status, RunStatus::kOk);
  EXPECT_GT(ck.resilience.checkpointed_units, 0u);
  EXPECT_EQ(ck.resilience.checkpoint_failures, 0u);
  EXPECT_EQ(ck.resilience.units_done, ck.resilience.units_total);
  EXPECT_EQ(canonical_triangles(ck.mesh), canonical_triangles(ref.mesh));

  // Resumed run: replays every leaf of both passes, bit-identical mesh.
  ResilienceOptions rd;
  rd.resume_path = tj.path;
  rd.config_hash = kCfgHash;
  const ParallelMeshResult rs =
      parallel_generate_mesh(fx.cfg, 4, {}, nullptr, {}, rd);
  ASSERT_EQ(rs.status, RunStatus::kOk);
  EXPECT_TRUE(rs.resilience.resume_attempted);
  EXPECT_FALSE(rs.resilience.resume_rejected);
  EXPECT_GT(rs.resilience.resumed_units, 0u);
  EXPECT_EQ(canonical_triangles(rs.mesh), canonical_triangles(ref.mesh));
}

TEST(DriverResilience, RejectedJournalRemeshesFromScratch) {
  const CheckpointFixture& fx = fixture();
  TempJournal tj("driver_reject");
  write_records(tj.path, 2);  // written under kHash, resumed under another

  ResilienceOptions rd;
  rd.resume_path = tj.path;
  rd.config_hash = kHash ^ 0xdeadbeefull;
  const ParallelMeshResult r =
      parallel_generate_mesh(fx.cfg, 4, {}, nullptr, {}, rd);
  EXPECT_EQ(r.status, RunStatus::kOk);
  EXPECT_TRUE(r.resilience.resume_attempted);
  EXPECT_TRUE(r.resilience.resume_rejected);
  EXPECT_FALSE(r.resilience.resume_error.empty());
  EXPECT_EQ(r.resilience.resumed_units, 0u);
  EXPECT_GT(r.mesh.triangle_count(), 0u);
}

TEST(DriverResilience, WallBudgetStopsWithAValidPartialMesh) {
  const CheckpointFixture& fx = fixture();
  TempJournal tj("driver_budget");
  constexpr std::uint64_t kCfgHash = 0x517cc1b727220a95ull;

  ResilienceOptions st;
  st.checkpoint_path = tj.path;
  st.config_hash = kCfgHash;
  st.budget.wall_ms = 1;
  const ParallelMeshResult stopped =
      parallel_generate_mesh(fx.cfg, 4, {}, nullptr, {}, st);
  EXPECT_EQ(stopped.status, RunStatus::kStopped);
  EXPECT_EQ(stopped.resilience.stop_cause, StopCause::kWallBudget);
  EXPECT_LT(stopped.resilience.units_done, stopped.resilience.units_total);

  // Resuming the stopped run's journal (checkpoint and resume pointed at
  // the same file exercises the append-in-place path) completes the mesh.
  ResilienceOptions go;
  go.checkpoint_path = tj.path;
  go.resume_path = tj.path;
  go.config_hash = kCfgHash;
  const ParallelMeshResult done =
      parallel_generate_mesh(fx.cfg, 4, {}, nullptr, {}, go);
  ASSERT_EQ(done.status, RunStatus::kOk);
  EXPECT_EQ(done.resilience.units_done, done.resilience.units_total);

  const ParallelMeshResult ref = parallel_generate_mesh(fx.cfg, 4);
  EXPECT_EQ(canonical_triangles(done.mesh), canonical_triangles(ref.mesh));
}

// ---------------------------------------------------------------------------
// Bounded chaos soak: seeds x transports x crash/resume (the checkpoint_soak
// ctest entry). Each iteration crashes a rank under a lossy fabric, then
// resumes from the journal and demands the fault-free mesh bit-for-bit.

TEST(CheckpointSoak, CrashResumeMatrix) {
  const CheckpointFixture& fx = fixture();
  const std::uint32_t seeds[] = {7u, 1912u};
  const bool transports[] = {true, false};  // rma on / off

  for (const std::uint32_t seed : seeds) {
    for (const bool rma : transports) {
      TempJournal tj("soak_" + std::to_string(seed) + (rma ? "_rma" : "_copy"));

      CheckpointSink sink;
      ASSERT_TRUE(sink.open(tj.path, kHash, /*append=*/false));
      PoolOptions opts = fx.opts;
      opts.tuning.rma = rma;
      opts.checkpoint = &sink;
      opts.faults.enabled = true;
      opts.faults.seed = seed;
      opts.faults.drop_rate = 0.05;
      opts.faults.duplicate_rate = 0.03;
      opts.faults.corrupt_rate = 0.03;
      opts.faults.crash_rank_after_units = {
          {1 + static_cast<int>(seed % 3), 1 + seed % 4}};
      MergedMesh chaotic;
      {
        auto initial = fx.initial;
        const PoolStats s = run_pool(std::move(initial), fx.sizing, opts,
                                     chaotic);
        EXPECT_EQ(s.injected_crashes, 1u)
            << "seed " << seed << " rma " << rma;
      }
      sink.close();

      // Resume leg: healthy pool, same transport, replay the journal.
      const JournalContents loaded = read_journal(tj.path, kHash);
      ASSERT_TRUE(loaded.header_ok);
      const ResumeState resume(loaded);
      MergedMesh resumed;
      PoolOptions ropts = fx.opts;
      ropts.tuning.rma = rma;
      ropts.resume = &resume;
      {
        auto initial = fx.initial;
        const PoolStats s = run_pool(std::move(initial), fx.sizing, ropts,
                                     resumed);
        EXPECT_EQ(s.status, RunStatus::kOk)
            << "seed " << seed << " rma " << rma;
        EXPECT_EQ(s.resumed_units, loaded.records.size());
      }
      EXPECT_EQ(canonical_triangles(resumed), reference_triangles())
          << "seed " << seed << " rma " << rma;
    }
  }
}

}  // namespace
}  // namespace aero
