// Quad-edge algebra and the Guibas-Stolfi divide-and-conquer Delaunay
// triangulation: equivalence with the incremental kernel.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <random>

#include "delaunay/quadedge.hpp"  // aerolint: allow(public-api)
#include "delaunay/triangulator.hpp"
#include "geom/predicates.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

TEST(QuadEdgeAlgebra, RotSymInverse) {
  QuadEdge q;
  const auto e = q.make_edge(0, 1);
  EXPECT_EQ(QuadEdge::sym(QuadEdge::sym(e)), e);
  EXPECT_EQ(QuadEdge::rot(QuadEdge::rot_inv(e)), e);
  EXPECT_EQ(QuadEdge::rot(QuadEdge::rot(e)), QuadEdge::sym(e));
  EXPECT_EQ(q.org(e), 0);
  EXPECT_EQ(q.dest(e), 1);
  EXPECT_EQ(q.org(QuadEdge::sym(e)), 1);
}

TEST(QuadEdgeAlgebra, FreshEdgeRings) {
  QuadEdge q;
  const auto e = q.make_edge(0, 1);
  EXPECT_EQ(q.onext(e), e);                      // isolated origin ring
  EXPECT_EQ(q.onext(QuadEdge::sym(e)), QuadEdge::sym(e));
  EXPECT_EQ(q.lnext(e), QuadEdge::sym(e));       // both sides same face
}

TEST(QuadEdgeAlgebra, SpliceMergesRings) {
  QuadEdge q;
  const auto a = q.make_edge(0, 1);
  const auto b = q.make_edge(0, 2);
  q.splice(a, b);  // both leave vertex 0: one origin ring
  EXPECT_EQ(q.onext(a), b);
  EXPECT_EQ(q.onext(b), a);
  q.splice(a, b);  // splice is an involution
  EXPECT_EQ(q.onext(a), a);
}

TEST(QuadEdgeAlgebra, ConnectMakesTriangle) {
  QuadEdge q;
  const auto a = q.make_edge(0, 1);
  const auto b = q.make_edge(1, 2);
  q.splice(QuadEdge::sym(a), b);
  const auto c = q.connect(b, a);
  EXPECT_EQ(q.org(c), 2);
  EXPECT_EQ(q.dest(c), 0);
  // Left face of a is the triangle 0-1-2.
  EXPECT_EQ(q.lnext(a), b);
  EXPECT_EQ(q.lnext(b), c);
  EXPECT_EQ(q.lnext(c), a);
}

TEST(DcDelaunay, RejectsUnsortedInput) {
  EXPECT_THROW(dc_delaunay({{1, 0}, {0, 0}, {2, 2}}), std::invalid_argument);
  EXPECT_THROW(dc_delaunay({{0, 0}, {0, 0}, {2, 2}}), std::invalid_argument);
}

TEST(DcDelaunay, SmallCases) {
  EXPECT_TRUE(dc_delaunay({}).empty());
  EXPECT_TRUE(dc_delaunay({{0, 0}, {1, 1}}).empty());
  const auto tri = dc_delaunay({{0, 0}, {1, 2}, {2, 0}});
  ASSERT_EQ(tri.size(), 1u);
  EXPECT_TRUE(orient2d({0, 0}, {1, 2}, {2, 0}) != 0.0);
  EXPECT_TRUE(dc_delaunay({{0, 0}, {1, 1}, {2, 2}, {3, 3}}).empty());
}

using TriKey = std::array<std::pair<double, double>, 3>;

std::map<TriKey, int> coord_set(
    const std::vector<Vec2>& pts,
    const std::vector<std::array<VertIndex, 3>>& tris) {
  std::map<TriKey, int> out;
  for (const auto& t : tris) {
    TriKey k{{{pts[t[0]].x, pts[t[0]].y},
              {pts[t[1]].x, pts[t[1]].y},
              {pts[t[2]].x, pts[t[2]].y}}};
    std::sort(k.begin(), k.end());
    out[k]++;
  }
  return out;
}

struct DcParam {
  const char* shape;
  int n;
  unsigned seed;
};

class DcEquivalence : public ::testing::TestWithParam<DcParam> {
 protected:
  std::vector<Vec2> make_points() const {
    const auto& p = GetParam();
    const std::string shape = p.shape;
    std::vector<Vec2> pts;
    if (shape == "random") {
      std::mt19937_64 rng(p.seed);
      std::uniform_real_distribution<double> d(0.0, 1.0);
      for (int i = 0; i < p.n; ++i) pts.push_back({d(rng), d(rng)});
    } else if (shape == "grid") {
      const int side = static_cast<int>(std::sqrt(p.n));
      for (int i = 0; i < side; ++i) {
        for (int j = 0; j < side; ++j) pts.push_back({i * 0.5, j * 0.5});
      }
    } else if (shape == "circle") {
      for (int i = 0; i < p.n; ++i) {
        const double th = 2.0 * 3.141592653589793 * i / p.n;
        pts.push_back({std::cos(th), std::sin(th)});
      }
      pts.push_back({0.1, 0.2});
    } else if (shape == "anisotropic") {
      for (int i = 0; i < p.n / 6; ++i) {
        for (int j = 0; j < 6; ++j) pts.push_back({i * 0.01, j * 1e-5});
      }
    }
    std::sort(pts.begin(), pts.end(), LessXY{});
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
    return pts;
  }
};

TEST_P(DcEquivalence, MatchesIncrementalKernel) {
  const std::vector<Vec2> pts = make_points();
  const auto dc = dc_delaunay(pts);

  // Every DC triangle must be CCW.
  for (const auto& t : dc) {
    EXPECT_GT(orient2d(pts[t[0]], pts[t[1]], pts[t[2]]), 0.0);
  }

  const auto inc = triangulate_points(pts, /*assume_sorted=*/true);
  EXPECT_EQ(dc.size(), inc.mesh.triangle_count());

  const std::string shape = GetParam().shape;
  if (shape == "random" || shape == "anisotropic") {
    // General position: the Delaunay triangulation is unique; compare the
    // triangle sets by coordinates.
    std::map<TriKey, int> inc_set;
    inc.mesh.for_each_triangle([&](TriIndex t) {
      const MeshTri& mt = inc.mesh.tri(t);
      TriKey k{{{inc.mesh.point(mt.v[0]).x, inc.mesh.point(mt.v[0]).y},
                {inc.mesh.point(mt.v[1]).x, inc.mesh.point(mt.v[1]).y},
                {inc.mesh.point(mt.v[2]).x, inc.mesh.point(mt.v[2]).y}}};
      std::sort(k.begin(), k.end());
      inc_set[k]++;
    });
    EXPECT_EQ(coord_set(pts, dc), inc_set);
  } else {
    // Degenerate (cocircular) inputs: both are valid Delaunay
    // triangulations; verify the DC one directly by empty circumcircles.
    for (const auto& t : dc) {
      for (std::size_t p = 0; p < pts.size(); ++p) {
        const auto v = static_cast<VertIndex>(p);
        if (v == t[0] || v == t[1] || v == t[2]) continue;
        EXPECT_LE(incircle(pts[t[0]], pts[t[1]], pts[t[2]], pts[p]), 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Clouds, DcEquivalence,
    ::testing::Values(DcParam{"random", 500, 1}, DcParam{"random", 5000, 2},
                      DcParam{"grid", 900, 3}, DcParam{"circle", 128, 4},
                      DcParam{"anisotropic", 1200, 5}),
    [](const auto& info) {
      return std::string(info.param.shape) + "_" +
             std::to_string(info.param.n);
    });

TEST(DcDelaunay, TotalAreaMatchesHull) {
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<Vec2> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  for (int i = 0; i < 2000; ++i) pts.push_back({d(rng), d(rng)});
  std::sort(pts.begin(), pts.end(), LessXY{});
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const auto dc = dc_delaunay(pts);
  double area = 0.0;
  for (const auto& t : dc) {
    area += 0.5 * (pts[t[1]] - pts[t[0]]).cross(pts[t[2]] - pts[t[0]]);
  }
  EXPECT_NEAR(area, 1.0, 1e-12);  // the hull is the unit square
}

}  // namespace
}  // namespace aero
