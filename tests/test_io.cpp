// Mesh and PSLG I/O round trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "delaunay/triangulator.hpp"
#include "io/mesh_io.hpp"
#include "core/timer.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "aeromesh_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const char* name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

MergedMesh small_mesh() {
  const auto r = triangulate_points({{0, 0}, {2, 0}, {1, 2}, {1, 0.7}});
  MergedMesh m;
  m.append(r.mesh);
  return m;
}

TEST_F(IoTest, VtkContainsAllCells) {
  const MergedMesh m = small_mesh();
  write_vtk(m, path("mesh.vtk"));
  std::ifstream f(path("mesh.vtk"));
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("POINTS 4 double"), std::string::npos);
  EXPECT_NE(content.find("CELLS 3 12"), std::string::npos);
  EXPECT_NE(content.find("CELL_TYPES 3"), std::string::npos);
}

TEST_F(IoTest, VtkWithScalars) {
  const MergedMesh m = small_mesh();
  const std::vector<double> field{1.0, 2.0, 3.0, 4.0};
  write_vtk(m, path("field.vtk"), &field, "pressure");
  std::ifstream f(path("field.vtk"));
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("SCALARS pressure double 1"), std::string::npos);
  EXPECT_THROW(write_vtk(m, path("bad.vtk"),
                         new std::vector<double>{1.0}, "x"),
               std::invalid_argument);
}

TEST_F(IoTest, NodeEleFormat) {
  const MergedMesh m = small_mesh();
  write_node_ele(m, path("mesh"));
  std::ifstream nodes(path("mesh") + ".node");
  std::size_t np, dim, a, b;
  nodes >> np >> dim >> a >> b;
  EXPECT_EQ(np, 4u);
  EXPECT_EQ(dim, 2u);
  std::ifstream eles(path("mesh") + ".ele");
  std::size_t nt, per;
  eles >> nt >> per;
  EXPECT_EQ(nt, 3u);
  EXPECT_EQ(per, 3u);
}

TEST_F(IoTest, BinaryDumpSized) {
  const MergedMesh m = small_mesh();
  write_binary(m, path("mesh.bin"));
  const auto size = std::filesystem::file_size(path("mesh.bin"));
  EXPECT_EQ(size, 16u + 4u * 16u + 3u * 12u);
}

TEST_F(IoTest, PolyRoundTrip) {
  Pslg p;
  p.points = {{0, 0}, {1.5, 0}, {1.5, 2.25}, {0, 2.25}, {0.5, 0.5}};
  p.segments = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  p.holes = {{0.75, 1.0}};
  p.point_markers = {1, 1, 1, 1, 0};
  write_poly(p, path("domain.poly"));
  const Pslg q = read_poly(path("domain.poly"));
  EXPECT_EQ(q.points, p.points);
  EXPECT_EQ(q.segments, p.segments);
  EXPECT_EQ(q.holes, p.holes);
  EXPECT_EQ(q.point_markers, p.point_markers);
}

TEST_F(IoTest, ReadPolyRejectsGarbage) {
  {
    std::ofstream f(path("bad.poly"));
    f << "not a poly file";
  }
  EXPECT_THROW(read_poly(path("bad.poly")), std::runtime_error);
  EXPECT_THROW(read_poly(path("missing.poly")), std::runtime_error);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(PhaseTimings, Accumulates) {
  PhaseTimings pt;
  pt.record("a", 1.5);
  pt.record("b", 2.5);
  EXPECT_EQ(pt.entries().size(), 2u);
  EXPECT_DOUBLE_EQ(pt.total(), 4.0);
}

}  // namespace
}  // namespace aero
