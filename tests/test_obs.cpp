// Observability subsystem: ring-buffer overflow accounting, concurrent
// emission (the TSan target), exporter golden files, and the determinism
// guarantee that tracing never perturbs the mesh.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/mesh_generator.hpp"
#include "obs/export.hpp"  // aerolint: allow(public-api)
#include "obs/metrics.hpp"  // aerolint: allow(public-api)
#include "obs/trace.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

using obs::MetricsRegistry;
using obs::RankLoad;
using obs::TraceEvent;
using obs::TraceRecorder;

/// Minimal JSON syntax checker: accepts iff `s` is exactly one complete JSON
/// value. No semantics -- just enough to catch unbalanced braces, trailing
/// commas, and unescaped strings in the exporters.
bool is_valid_json(const std::string& s) {
  std::size_t i = 0;
  const auto ws = [&] {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r')) {
      ++i;
    }
  };
  const std::function<bool()> value = [&]() -> bool {
    const std::function<bool()> string_lit = [&]() -> bool {
      if (i >= s.size() || s[i] != '"') return false;
      for (++i; i < s.size(); ++i) {
        if (s[i] == '\\') {
          ++i;
        } else if (s[i] == '"') {
          ++i;
          return true;
        }
      }
      return false;
    };
    ws();
    if (i >= s.size()) return false;
    const char c = s[i];
    if (c == '{') {
      ++i;
      ws();
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
      while (true) {
        ws();
        if (!string_lit()) return false;
        ws();
        if (i >= s.size() || s[i] != ':') return false;
        ++i;
        if (!value()) return false;
        ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        break;
      }
      if (i >= s.size() || s[i] != '}') return false;
      ++i;
      return true;
    }
    if (c == '[') {
      ++i;
      ws();
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      while (true) {
        if (!value()) return false;
        ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        break;
      }
      if (i >= s.size() || s[i] != ']') return false;
      ++i;
      return true;
    }
    if (c == '"') return string_lit();
    if (std::strchr("-0123456789", c) != nullptr) {
      ++i;
      while (i < s.size() &&
             std::strchr("0123456789.eE+-", s[i]) != nullptr) {
        ++i;
      }
      return true;
    }
    for (const char* lit : {"true", "false", "null"}) {
      const std::size_t n = std::strlen(lit);
      if (s.compare(i, n, lit) == 0) {
        i += n;
        return true;
      }
    }
    return false;
  };
  if (!value()) return false;
  ws();
  return i == s.size();
}

TEST(ObsRing, OverflowDropsAndCounts) {
  TraceRecorder& r = TraceRecorder::global();
  r.reset();
  r.set_capacity(8);
  r.set_enabled(true);
  for (int k = 0; k < 20; ++k) {
    r.instant("test", "tick", static_cast<std::uint64_t>(k));
  }
  EXPECT_EQ(r.local().size(), 8u);
  EXPECT_EQ(r.local().dropped(), 12u);
  EXPECT_EQ(r.total_dropped(), 12u);

  const TraceRecorder::Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  EXPECT_EQ(snap.threads[0].events.size(), 8u);
  EXPECT_EQ(snap.total_dropped, 12u);
  // The survivors are the FIRST 8 events, in emission order.
  for (std::size_t k = 0; k < snap.threads[0].events.size(); ++k) {
    EXPECT_EQ(snap.threads[0].events[k].arg, k);
  }
  r.set_enabled(false);
  r.reset();
}

TEST(ObsRing, ResetOrphansStaleRegistrations) {
  TraceRecorder& r = TraceRecorder::global();
  r.reset();
  r.set_capacity(16);
  r.set_enabled(true);
  r.instant("test", "before");
  EXPECT_EQ(r.snapshot().threads.size(), 1u);
  r.reset();  // this thread's cached buffer is now stale
  r.instant("test", "after");
  const TraceRecorder::Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);  // re-registered, old buffer gone
  ASSERT_EQ(snap.threads[0].events.size(), 1u);
  EXPECT_STREQ(snap.threads[0].events[0].name, "after");
  r.set_enabled(false);
  r.reset();
}

// The TSan entry point (`ctest -R obs_tsan`): four rank-tagged threads emit
// spans and instants into their own buffers while also bumping shared
// metrics; any lock or ordering bug in the recorder or registry is a data
// race here.
TEST(ObsConcurrent, ParallelEmitIsCleanAndLossless) {
  constexpr int kThreads = 4;
  constexpr std::size_t kEvents = 2000;
  static const char* kNames[kThreads] = {"w0", "w1", "w2", "w3"};

  TraceRecorder& r = TraceRecorder::global();
  r.reset();
  r.set_capacity(2 * kEvents);
  r.set_enabled(true);
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.reset();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      r.tag_thread(kNames[t], t);
      obs::Counter& emitted = reg.counter("test.emitted");
      obs::Histogram& hist = reg.histogram("test.values");
      for (std::size_t k = 0; k < kEvents; ++k) {
        if (k % 2 == 0) {
          r.span("test", "work", r.now_ns(), 10, k);
        } else {
          r.instant("test", "mark", k);
        }
        emitted.add(1);
        hist.observe(static_cast<double>(k));
        reg.gauge("test.last").set(static_cast<double>(k));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const TraceRecorder::Snapshot snap = r.snapshot();
  EXPECT_EQ(snap.total_dropped, 0u);
  std::size_t total = 0;
  std::vector<bool> rank_seen(kThreads, false);
  for (const auto& th : snap.threads) {
    total += th.events.size();
    if (th.rank >= 0 && th.rank < kThreads) {
      EXPECT_EQ(th.events.size(), kEvents);
      rank_seen[static_cast<std::size_t>(th.rank)] = true;
    }
  }
  EXPECT_EQ(total, kThreads * kEvents);
  for (const bool seen : rank_seen) EXPECT_TRUE(seen);

  const MetricsRegistry::Snapshot ms = reg.snapshot();
  ASSERT_EQ(ms.counters.size(), 1u);
  EXPECT_EQ(ms.counters[0].second, kThreads * kEvents);
  ASSERT_EQ(ms.histograms.size(), 1u);
  EXPECT_EQ(ms.histograms[0].count, kThreads * kEvents);

  r.set_enabled(false);
  r.reset();
  reg.reset();
}

TEST(ObsMetrics, HistogramLog2Binning) {
  obs::Histogram h;
  h.observe(0.0);     // bin 0: [0, 1)
  h.observe(0.5);     // bin 0
  h.observe(1.0);     // bin 1: [1, 2)
  h.observe(3.0);     // bin 2: [2, 4)
  h.observe(1024.0);  // bin 11: [1024, 2048)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1028.5);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(2), 1u);
  EXPECT_EQ(h.bin(11), 1u);
  EXPECT_DOUBLE_EQ(obs::Histogram::bin_upper_edge(0), 1.0);
  EXPECT_DOUBLE_EQ(obs::Histogram::bin_upper_edge(11), 2048.0);
}

TEST(ObsMetrics, RegistrySnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.counter("zeta").add(2);
  reg.counter("alpha").add(1);
  reg.counter("alpha").add(4);  // same instrument, accumulated
  reg.gauge("g").set(1.0);
  reg.gauge("g").set(2.0);  // last write wins
  const MetricsRegistry::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[0].second, 5u);
  EXPECT_EQ(snap.counters[1].first, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 2.0);
}

// Golden file: a hand-built snapshot must serialize to exactly this Chrome
// trace_event JSON (process/thread metadata, "X" complete span, "i" instant,
// pid = rank + 1, microsecond timestamps).
TEST(ObsExport, ChromeTraceGolden) {
  TraceRecorder::Snapshot snap;
  TraceRecorder::Snapshot::Thread t;
  t.tid = 7;
  t.name = "tester";
  t.rank = 2;
  t.dropped = 1;
  t.events.push_back(TraceEvent{"pool", "process_unit", 1000, 2500, 0,
                                TraceEvent::Kind::kSpan});
  t.events.push_back(
      TraceEvent{"comm", "donate", 3000, 0, 42, TraceEvent::Kind::kInstant});
  snap.threads.push_back(std::move(t));
  snap.total_dropped = 1;

  std::ostringstream out;
  obs::write_chrome_trace(snap, out);
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":\"1\"},"
      "\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":3,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"rank 2\"}},\n"
      "{\"ph\":\"M\",\"pid\":3,\"tid\":7,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"tester\"}},\n"
      "{\"ph\":\"X\",\"pid\":3,\"tid\":7,\"ts\":1,\"dur\":2.5,"
      "\"cat\":\"pool\",\"name\":\"process_unit\"},\n"
      "{\"ph\":\"i\",\"pid\":3,\"tid\":7,\"ts\":3,\"s\":\"t\","
      "\"cat\":\"comm\",\"name\":\"donate\",\"args\":{\"arg\":42}}\n"
      "]}\n";
  EXPECT_EQ(out.str(), expected);
  EXPECT_TRUE(is_valid_json(out.str()));
}

TEST(ObsExport, MetricsJsonGolden) {
  MetricsRegistry::Snapshot snap;
  snap.counters = {{"pool.steals", 4}};
  snap.gauges = {{"mesh.min_angle_deg", 30.5}};
  MetricsRegistry::Snapshot::Hist h;
  h.name = "delaunay.steiner";
  h.count = 2;
  h.sum = 10.0;
  h.bins = {{1.0, 1}, {std::numeric_limits<double>::infinity(), 1}};
  snap.histograms.push_back(std::move(h));
  const std::vector<RankLoad> ranks = {
      {/*rank=*/0, /*busy=*/1.5, /*comm=*/0.25, /*idle=*/0.0, /*units=*/12,
       /*donated=*/3, /*received=*/1, /*retransmits=*/0}};

  std::ostringstream out;
  obs::write_metrics_json(snap, ranks, out);
  const std::string expected =
      "{\n"
      "\"schema\":\"aeromesh.metrics.v1\",\n"
      "\"counters\":{\n"
      "\"pool.steals\":4\n"
      "},\n"
      "\"gauges\":{\n"
      "\"mesh.min_angle_deg\":30.5\n"
      "},\n"
      "\"histograms\":{\n"
      "\"delaunay.steiner\":{\"count\":2,\"sum\":10,"
      "\"bins\":[[1,1],[null,1]]}\n"
      "},\n"
      "\"load_balance\":[\n"
      "{\"rank\":0,\"busy_s\":1.5,\"comm_s\":0.25,\"idle_s\":0,"
      "\"units\":12,\"donated\":3,\"received\":1,\"retransmits\":0}\n"
      "]\n"
      "}\n";
  EXPECT_EQ(out.str(), expected);
  EXPECT_TRUE(is_valid_json(out.str()));
}

TEST(ObsExport, JsonEscape) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
}

#if AERO_TRACE_ENABLED
// End-to-end through the macros: nested spans, sampled spans, instants and
// thread tags all land in the export, and the result parses as JSON.
TEST(ObsExport, MacroEmissionExportsValidJson) {
  TraceRecorder& r = TraceRecorder::global();
  r.reset();
  r.set_capacity(1u << 12);
  r.set_enabled(true);
  AERO_TRACE_THREAD("macro-test", 1);
  {
    AERO_TRACE_SPAN("outer", "scope");
    for (int k = 0; k < 10; ++k) {
      AERO_TRACE_SPAN_SAMPLED("inner", "hot_loop", 4);
      AERO_TRACE_INSTANT_ARG("inner", "iter", k);
    }
    AERO_TRACE_INSTANT("outer", "done");
  }
  r.set_enabled(false);

  const TraceRecorder::Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  std::size_t sampled = 0, spans = 0, instants = 0;
  for (const TraceEvent& e : snap.threads[0].events) {
    if (e.kind == TraceEvent::Kind::kSpan) {
      ++spans;
      if (std::string(e.name) == "hot_loop") ++sampled;
    } else {
      ++instants;
    }
  }
  // 1/4 sampling over 10 iterations records iterations 0, 4, and 8.
  EXPECT_EQ(sampled, 3u);
  EXPECT_EQ(spans, 4u);      // outer scope + 3 sampled
  EXPECT_EQ(instants, 11u);  // 10 iters + done

  std::ostringstream out;
  obs::write_chrome_trace(snap, out);
  EXPECT_TRUE(is_valid_json(out.str()));
  EXPECT_NE(out.str().find("\"cat\":\"inner\""), std::string::npos);
  EXPECT_NE(out.str().find("\"name\":\"macro-test\""), std::string::npos);
  r.reset();
}
#endif  // AERO_TRACE_ENABLED

/// Exact byte image of a mesh: point coordinates plus live-triangle indices.
std::string mesh_bytes(const MergedMesh& m) {
  std::string bytes;
  for (std::uint32_t i = 0; i < m.point_count(); ++i) {
    const Vec2 p = m.point(i);
    bytes.append(reinterpret_cast<const char*>(&p), sizeof(Vec2));
  }
  for (std::size_t t = 0; t < m.record_count(); ++t) {
    if (!m.alive(t)) continue;
    const auto& tri = m.tri(t);
    bytes.append(reinterpret_cast<const char*>(tri.data()), sizeof(tri));
  }
  return bytes;
}

// The observation-only guarantee: a traced run produces a mesh bit-identical
// to an untraced one (tracing must never feed back into the pipeline).
TEST(ObsDeterminism, TraceLeavesMeshBitIdentical) {
  Options cfg;
  cfg.airfoil = make_naca0012(150);
  cfg.growth_kind = GrowthKind::kGeometric;
  cfg.first_height = 8e-4;
  cfg.growth_ratio = 1.3;
  cfg.max_layers = 20;
  cfg.farfield_chords = 6.0;
  cfg.inviscid_target_triangles = 8000.0;
  cfg.bl_min_points = 800;
  cfg.bl_max_level = 8;

  TraceRecorder::global().set_enabled(false);
  TraceRecorder::global().reset();
  const MeshGenerationResult plain = generate_mesh(cfg);

  cfg.trace = true;
  const MeshGenerationResult traced = generate_mesh(cfg);
  TraceRecorder::global().set_enabled(false);

#if AERO_TRACE_ENABLED
  // Tracing actually happened (with AERO_TRACE=OFF the sites compile out and
  // the run is trivially untraced -- the comparison below still must hold)...
  const TraceRecorder::Snapshot snap = TraceRecorder::global().snapshot();
  std::size_t events = 0;
  for (const auto& t : snap.threads) events += t.events.size();
  EXPECT_GT(events, 0u);
#endif
  TraceRecorder::global().reset();

  // ...and changed nothing.
  ASSERT_EQ(plain.mesh.point_count(), traced.mesh.point_count());
  ASSERT_EQ(plain.mesh.triangle_count(), traced.mesh.triangle_count());
  EXPECT_EQ(mesh_bytes(plain.mesh), mesh_bytes(traced.mesh));
}

}  // namespace
}  // namespace aero
