// The meshing service: cache-key canonicalization over core/options_hash
// (non-mesh knobs must not move the key, every mesh-defining knob must, and
// the key is stable across process restarts), the CRC-framed wire codec's
// round-trip and rejection paths, the LRU result cache's byte-budget
// accounting, and the MeshServer's admission/dispatch/shutdown contract --
// including deterministic overload, priority-then-FIFO order, bit-identical
// cached responses, and a concurrent storm with zero dropped or duplicated
// responses.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/options.hpp"
#include "core/options_hash.hpp"  // aerolint: allow(public-api)
#include "obs/metrics.hpp"  // aerolint: allow(public-api)
#include "service/cache.hpp"  // aerolint: allow(public-api)
#include "service/server.hpp"
#include "service/wire.hpp"

namespace aero {
namespace {

/// Small, fast, valid base configuration every test derives from.
Options base_options() {
  return Options()
      .geometry(make_naca0012(60))
      .set_max_layers(8)
      .set_farfield_chords(6.0);
}

// ---------------------------------------------------------------------------
// Cache-key canonicalization (core/options_hash).

TEST(ServiceCacheKey, NonMeshKnobsDoNotChangeKey) {
  const std::uint64_t base = mesh_config_hash(base_options());
  const std::atomic<bool> stop{false};

  // Every runtime/transport/fault/observability/server-side knob, flipped
  // away from its default: none of them changes the triangles, so none may
  // change the key (this is what lets a ranks=4 run answer a sequential
  // request from the cache).
  const Options variants[] = {
      base_options().set_ranks(4),
      base_options().set_threads_per_rank(4),
      base_options().set_rma(true),
      base_options().set_rma_threshold(1 << 12),
      base_options().set_coalesce_us(500),
      base_options().set_ack_timeout_ms(77),
      base_options().set_heartbeat_timeout_ms(333),
      base_options().set_watchdog_timeout_s(9),
      base_options().set_budget_wall_ms(1234),
      base_options().set_budget_rss_mb(512),
      base_options().set_checkpoint_path("ckpt.aerojnl"),
      base_options().set_resume_path("resume.aerojnl"),
      base_options().set_merge_spill_dir("/tmp/spill"),
      base_options().set_merge_resident_mb(1),
      base_options().set_stop_flag(&stop),
      base_options().set_fault_rate(0.05),
      base_options().set_fault_seed(42),
      base_options().set_trace(true),
      base_options().set_trace_events(128),
      base_options().set_phase_hook([](const char*, const PhaseArtifacts&) {}),
  };
  for (const Options& v : variants) {
    EXPECT_EQ(mesh_config_hash(v), base);
  }
}

TEST(ServiceCacheKey, EveryMeshDefiningKnobChangesKey) {
  const std::uint64_t base = mesh_config_hash(base_options());

  const Options variants[] = {
      base_options().geometry(make_naca0012(61)),  // geometry content
      base_options().growth(GrowthKind::kPolynomial),
      base_options().growth(GrowthKind::kAdaptive),
      base_options().set_first_height(3e-4),
      base_options().set_growth_ratio(1.25),
      base_options().set_max_layers(9),
      base_options().set_farfield_chords(7.0),
      base_options().set_nearbody_margin(1.75),
      base_options().set_grade(0.33),
      base_options().set_surface_length_factor(1.8),
      base_options().set_bl_min_points(7),
      base_options().set_bl_max_level(11),
      base_options().set_inviscid_target_triangles(5000.0),
      base_options().set_inviscid_max_level(13),
  };
  std::vector<std::uint64_t> keys{base};
  for (const Options& v : variants) {
    const std::uint64_t k = mesh_config_hash(v);
    EXPECT_NE(k, base);
    // And pairwise distinct, so two different knobs cannot alias.
    for (const std::uint64_t seen : keys) EXPECT_NE(k, seen);
    keys.push_back(k);
  }
}

TEST(ServiceCacheKey, GeometryContentIsHashedNotJustCounts) {
  AirfoilConfig a = make_naca0012(60);
  AirfoilConfig b = a;
  b.elements[0].surface[10].x += 1e-9;  // same counts, one coordinate moved
  EXPECT_NE(mesh_config_hash(base_options().geometry(a)),
            mesh_config_hash(base_options().geometry(b)));

  AirfoilConfig c = a;
  c.chord *= 2.0;
  EXPECT_NE(mesh_config_hash(base_options().geometry(a)),
            mesh_config_hash(base_options().geometry(c)));
}

TEST(ServiceCacheKey, StableAcrossProcessRestarts) {
  // Pinned golden value: FNV-1a over the canonical field order is pure
  // arithmetic on the input bytes, so the key a daemon computed yesterday
  // must match the key a fresh process computes today -- that is what makes
  // the result cache (and any future on-disk version of it) durable. If
  // this test fails, a field was added/reordered without bumping the
  // service wire version and invalidating caches deliberately.
  const std::uint64_t key = mesh_config_hash(
      Options().geometry(make_naca0012(120)).set_max_layers(20).set_farfield_chords(
          10.0));
  EXPECT_EQ(key, 0x16d9049cde11ef60ull);
}

// ---------------------------------------------------------------------------
// Wire codec.

MeshRequest sample_request() {
  MeshRequest req;
  req.id = 0xdeadbeef12345678ull;
  req.priority = -3;
  req.options = base_options()
                    .growth(GrowthKind::kAdaptive)
                    .set_first_height(2.5e-4)
                    .set_ranks(3)
                    .set_rma(true)
                    .set_fault_rate(0.01)
                    .set_fault_seed(99);
  return req;
}

TEST(ServiceWire, RequestRoundTrip) {
  const MeshRequest req = sample_request();
  const std::vector<std::uint8_t> bytes = encode_request(req);
  MeshRequest out;
  ASSERT_TRUE(decode_request(bytes, &out));
  EXPECT_EQ(out.id, req.id);
  EXPECT_EQ(out.priority, req.priority);
  EXPECT_EQ(out.options.growth_kind, req.options.growth_kind);
  EXPECT_EQ(out.options.first_height, req.options.first_height);
  EXPECT_EQ(out.options.ranks, req.options.ranks);
  EXPECT_EQ(out.options.rma, req.options.rma);
  EXPECT_EQ(out.options.fault_rate, req.options.fault_rate);
  EXPECT_EQ(out.options.fault_seed, req.options.fault_seed);
  ASSERT_EQ(out.options.airfoil.elements.size(),
            req.options.airfoil.elements.size());
  EXPECT_EQ(out.options.airfoil.elements[0].surface,
            req.options.airfoil.elements[0].surface);
  EXPECT_EQ(out.options.airfoil.chord, req.options.airfoil.chord);
  // The decoded options hash to the same cache key: the wire carries every
  // mesh-defining field faithfully.
  EXPECT_EQ(mesh_config_hash(out.options), mesh_config_hash(req.options));
}

TEST(ServiceWire, RequestScrubsServerSideFields) {
  MeshRequest req = sample_request();
  std::atomic<bool> stop{false};
  req.options.set_checkpoint_path("evil.aerojnl")
      .set_resume_path("evil2.aerojnl")
      .set_merge_spill_dir("/evil/spill")
      .set_stop_flag(&stop)
      .set_budget_wall_ms(1)
      .set_trace(true)
      .set_phase_hook([](const char*, const PhaseArtifacts&) {});
  MeshRequest out;
  ASSERT_TRUE(decode_request(encode_request(req), &out));
  EXPECT_TRUE(out.options.checkpoint_path.empty());
  EXPECT_TRUE(out.options.resume_path.empty());
  EXPECT_TRUE(out.options.merge_spill_dir.empty());
  EXPECT_EQ(out.options.stop_flag, nullptr);
  EXPECT_EQ(out.options.budget_wall_ms, 0);
  EXPECT_FALSE(out.options.trace);
  EXPECT_FALSE(static_cast<bool>(out.options.phase_hook));
}

TEST(ServiceWire, CorruptionAndTruncationRejected) {
  const std::vector<std::uint8_t> bytes = encode_request(sample_request());
  MeshRequest out;

  // Flip one byte anywhere: CRC trailer catches it.
  for (const std::size_t pos :
       {std::size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> bad = bytes;
    bad[pos] ^= 0x40;
    EXPECT_FALSE(decode_request(bad, &out)) << "flipped byte " << pos;
  }
  // Truncation at any boundary.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(decode_request(bytes.data(), keep, &out));
  }
  // Trailing garbage.
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(decode_request(padded, &out));
}

TEST(ServiceWire, ResponseRoundTrip) {
  MeshResponse resp;
  resp.id = 7;
  resp.status = ServiceStatus::kPartial;
  resp.cache_hit = true;
  resp.cache_key = 0x123456789abcdef0ull;
  resp.triangles = 1000;
  resp.vertices = 600;
  resp.mesh_wall_ms = 12.5;
  resp.queue_ms = 0.25;
  resp.error = "three ranks never reported";
  resp.mesh_blob = {1, 2, 3, 4, 5};

  MeshResponse out;
  ASSERT_TRUE(decode_response(encode_response(resp), &out));
  EXPECT_EQ(out.id, resp.id);
  EXPECT_EQ(out.status, resp.status);
  EXPECT_EQ(out.cache_hit, resp.cache_hit);
  EXPECT_EQ(out.cache_key, resp.cache_key);
  EXPECT_EQ(out.triangles, resp.triangles);
  EXPECT_EQ(out.vertices, resp.vertices);
  EXPECT_EQ(out.mesh_wall_ms, resp.mesh_wall_ms);
  EXPECT_EQ(out.queue_ms, resp.queue_ms);
  EXPECT_EQ(out.error, resp.error);
  EXPECT_EQ(out.mesh_blob, resp.mesh_blob);

  std::vector<std::uint8_t> bad = encode_response(resp);
  bad[bad.size() / 2] ^= 1;
  EXPECT_FALSE(decode_response(bad, &out));
}

// ---------------------------------------------------------------------------
// Result cache.

ResultCache::Entry entry_of(std::size_t bytes, std::uint64_t tris) {
  ResultCache::Entry e;
  e.mesh_blob.assign(bytes, static_cast<std::uint8_t>(tris));
  e.triangles = tris;
  e.vertices = tris / 2;
  return e;
}

TEST(ResultCache, LruEvictionUnderByteBudget) {
  ResultCache cache(250);  // fits two 100-byte entries, not three
  cache.insert(1, entry_of(100, 11));
  cache.insert(2, entry_of(100, 22));

  // Touch key 1 so key 2 is the LRU victim.
  ResultCache::Entry got;
  ASSERT_TRUE(cache.lookup(1, &got));
  EXPECT_EQ(got.triangles, 11u);

  cache.insert(3, entry_of(100, 33));
  EXPECT_FALSE(cache.lookup(2, &got));  // evicted
  EXPECT_TRUE(cache.lookup(1, &got));
  EXPECT_TRUE(cache.lookup(3, &got));

  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes, 200u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.insertions, 3u);
}

TEST(ResultCache, OversizeAndZeroBudget) {
  ResultCache cache(100);
  cache.insert(1, entry_of(101, 1));  // bigger than the whole budget
  ResultCache::Entry got;
  EXPECT_FALSE(cache.lookup(1, &got));
  EXPECT_EQ(cache.stats().rejected_oversize, 1u);

  ResultCache off(0);  // budget 0 = caching disabled
  off.insert(1, entry_of(1, 1));
  EXPECT_FALSE(off.lookup(1, &got));
  EXPECT_EQ(off.stats().entries, 0u);
}

TEST(ResultCache, RefreshKeepsByteAccountingHonest) {
  ResultCache cache(300);
  cache.insert(1, entry_of(100, 1));
  cache.insert(1, entry_of(150, 2));  // same key, new size
  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 150u);
  ResultCache::Entry got;
  ASSERT_TRUE(cache.lookup(1, &got));
  EXPECT_EQ(got.triangles, 2u);
}

// ---------------------------------------------------------------------------
// MeshServer: admission, dispatch, cache, shutdown.

MeshRequest request_of(std::uint64_t id, int priority, std::size_t points,
                       int ranks = 0) {
  MeshRequest req;
  req.id = id;
  req.priority = priority;
  req.options = Options()
                    .geometry(make_naca0012(points))
                    .set_max_layers(6)
                    .set_farfield_chords(5.0)
                    .set_ranks(ranks);
  return req;
}

TEST(MeshServer, CacheHitIsBitIdenticalToFreshMesh) {
  ServerConfig config;
  config.workers = 1;
  MeshServer server(config);

  const MeshResponse fresh = server.submit_wait(request_of(1, 0, 50));
  ASSERT_EQ(fresh.status, ServiceStatus::kOk);
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_GT(fresh.triangles, 0u);
  ASSERT_FALSE(fresh.mesh_blob.empty());

  const MeshResponse hit = server.submit_wait(request_of(2, 0, 50));
  ASSERT_EQ(hit.status, ServiceStatus::kOk);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.id, 2u);  // correlation id is the caller's, not the cache's
  EXPECT_EQ(hit.cache_key, fresh.cache_key);
  EXPECT_EQ(hit.mesh_blob, fresh.mesh_blob);  // bit-identical bytes

  std::uint64_t pts = 0, tris = 0;
  ASSERT_TRUE(mesh_blob_counts(hit.mesh_blob, &pts, &tris));
  EXPECT_EQ(pts, hit.vertices);
  EXPECT_EQ(tris, hit.triangles);
  EXPECT_EQ(server.stats().cache_hits, 1u);
}

TEST(MeshServer, PooledRunSharesCacheWithSequential) {
  // ranks is not mesh-defining, so a sequential mesh answers a pooled
  // request (and vice versa) -- the meshes are bit-identical by the pool's
  // determinism contract.
  ServerConfig config;
  config.workers = 1;
  MeshServer server(config);
  const MeshResponse seq = server.submit_wait(request_of(1, 0, 50, 0));
  ASSERT_EQ(seq.status, ServiceStatus::kOk);
  const MeshResponse pooled = server.submit_wait(request_of(2, 0, 50, 2));
  ASSERT_EQ(pooled.status, ServiceStatus::kOk);
  EXPECT_TRUE(pooled.cache_hit);
  EXPECT_EQ(pooled.mesh_blob, seq.mesh_blob);
}

TEST(MeshServer, ThreadsPerRankIsServerOwnedAndNotMeshDefining) {
  // The daemon's thread budget is a capacity decision: whatever
  // threads_per_rank a tenant sends is overwritten by the server config,
  // and since the knob is not mesh-defining the blobs stay bit-identical
  // (and cache-shared) across every tenant/server combination.
  ServerConfig threaded;
  threaded.workers = 1;
  threaded.threads_per_rank = 2;
  MeshServer server(threaded);
  MeshRequest wild = request_of(1, 0, 50);
  wild.options.set_threads_per_rank(64);  // tenant asks for the moon
  const MeshResponse a = server.submit_wait(std::move(wild));
  ASSERT_EQ(a.status, ServiceStatus::kOk);
  EXPECT_FALSE(a.cache_hit);
  const MeshResponse b = server.submit_wait(request_of(2, 0, 50));
  ASSERT_EQ(b.status, ServiceStatus::kOk);
  EXPECT_TRUE(b.cache_hit);  // same key despite differing thread requests
  EXPECT_EQ(b.mesh_blob, a.mesh_blob);

  ServerConfig sequential;
  sequential.workers = 1;
  MeshServer plain(sequential);
  const MeshResponse c = plain.submit_wait(request_of(3, 0, 50));
  ASSERT_EQ(c.status, ServiceStatus::kOk);
  EXPECT_EQ(c.mesh_blob, a.mesh_blob);  // threads never change the mesh

  // In-flight thread pressure is mirrored into the gauge; idle -> 0.
  EXPECT_EQ(obs::MetricsRegistry::global()
                .gauge("service.threads_active")
                .value(),
            0.0);
}

TEST(MeshServer, InvalidOptionsRejectedWithoutQueueing) {
  MeshServer server(ServerConfig{});
  MeshRequest req = request_of(9, 0, 50);
  req.options.set_first_height(-1.0);
  const MeshResponse resp = server.submit_wait(std::move(req));
  EXPECT_EQ(resp.status, ServiceStatus::kInvalidOptions);
  EXPECT_FALSE(resp.error.empty());
  EXPECT_EQ(server.stats().invalid, 1u);
  EXPECT_EQ(server.stats().completed, 0u);  // never reached a worker
}

/// Holds the single worker inside before_mesh until released, making queue
/// occupancy (and thus overload/priority behavior) deterministic.
struct WorkerGate {
  std::mutex m;
  std::condition_variable cv;
  bool released = false;
  bool holding = false;
  std::vector<std::uint64_t> dispatch_order;

  void hook(const MeshRequest& req) {
    std::unique_lock<std::mutex> lock(m);
    dispatch_order.push_back(req.id);
    if (dispatch_order.size() == 1) {  // only the first request is held
      holding = true;
      cv.notify_all();
      cv.wait(lock, [&] { return released; });
    }
  }
  void wait_until_holding() {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return holding; });
  }
  void release() {
    const std::lock_guard<std::mutex> lock(m);
    released = true;
    cv.notify_all();
  }
};

TEST(MeshServer, OverloadedWhenQueueFullAndPriorityOrder) {
  WorkerGate gate;
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 2;
  config.before_mesh = [&gate](const MeshRequest& r) { gate.hook(r); };
  MeshServer server(config);

  // r1 is dequeued and held: the worker is busy, the queue is empty.
  auto f1 = server.submit(request_of(1, 0, 50));
  gate.wait_until_holding();

  // r2 (low priority) and r3 (high priority) fill the queue; r4 must bounce.
  auto f2 = server.submit(request_of(2, 0, 52));
  auto f3 = server.submit(request_of(3, 5, 54));
  const MeshResponse r4 = server.submit_wait(request_of(4, 99, 56));
  EXPECT_EQ(r4.status, ServiceStatus::kOverloaded);
  EXPECT_EQ(r4.queue_ms, 0.0);  // rejected at admission, never queued

  gate.release();
  EXPECT_EQ(f1.get().status, ServiceStatus::kOk);
  EXPECT_EQ(f2.get().status, ServiceStatus::kOk);
  EXPECT_EQ(f3.get().status, ServiceStatus::kOk);

  // Dispatch order: r1 first (it was already running), then r3 beats r2 on
  // priority despite arriving later.
  ASSERT_EQ(gate.dispatch_order.size(), 3u);
  EXPECT_EQ(gate.dispatch_order[0], 1u);
  EXPECT_EQ(gate.dispatch_order[1], 3u);
  EXPECT_EQ(gate.dispatch_order[2], 2u);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_overload, 1u);
  EXPECT_EQ(stats.max_queue_depth, 2u);
}

TEST(MeshServer, StopAnswersQueuedRequestsWithShutdown) {
  WorkerGate gate;
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 4;
  config.before_mesh = [&gate](const MeshRequest& r) { gate.hook(r); };
  MeshServer server(config);

  auto f1 = server.submit(request_of(1, 0, 50));
  gate.wait_until_holding();
  auto f2 = server.submit(request_of(2, 0, 52));

  // stop() drains r2 with kShutdown immediately, then waits for r1 (held by
  // the gate until we release it) to finish meshing.
  std::thread stopper([&server] { server.stop(); });
  EXPECT_EQ(f2.get().status, ServiceStatus::kShutdown);
  gate.release();
  stopper.join();
  EXPECT_EQ(f1.get().status, ServiceStatus::kOk);

  // After stop, new submissions are answered kShutdown, not queued.
  const MeshResponse late = server.submit_wait(request_of(3, 0, 54));
  EXPECT_EQ(late.status, ServiceStatus::kShutdown);
}

TEST(MeshServer, ConcurrentStormNoDroppedOrDuplicatedResponses) {
  ServerConfig config;
  config.workers = 4;
  config.queue_capacity = 64;  // large enough that nothing bounces
  MeshServer server(config);

  // 24 requests from 8 tenant threads over 3 distinct configurations, so
  // the cache, the queue, and the workers all see real concurrency.
  constexpr int kTenants = 8;
  constexpr int kPerTenant = 3;
  std::vector<std::future<MeshResponse>> futures(kTenants * kPerTenant);
  std::vector<std::thread> tenants;
  tenants.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&, t] {
      for (int j = 0; j < kPerTenant; ++j) {
        const int i = t * kPerTenant + j;
        const std::size_t points = 48 + 2 * static_cast<std::size_t>(j);
        futures[static_cast<std::size_t>(i)] =
            server.submit(request_of(static_cast<std::uint64_t>(i + 1), j,
                                     points));
      }
    });
  }
  for (std::thread& t : tenants) t.join();

  std::vector<bool> seen(kTenants * kPerTenant, false);
  std::vector<std::vector<std::uint8_t>> blob_by_config(kPerTenant);
  for (auto& f : futures) {
    const MeshResponse resp = f.get();  // a dropped response would hang here
    ASSERT_EQ(resp.status, ServiceStatus::kOk);
    ASSERT_GE(resp.id, 1u);
    ASSERT_LE(resp.id, static_cast<std::uint64_t>(kTenants * kPerTenant));
    EXPECT_FALSE(seen[resp.id - 1]) << "duplicated response id " << resp.id;
    seen[resp.id - 1] = true;
    // Same configuration => bit-identical mesh bytes, hit or miss.
    const std::size_t cfg = (resp.id - 1) % kPerTenant;
    if (blob_by_config[cfg].empty()) {
      blob_by_config[cfg] = resp.mesh_blob;
    } else {
      EXPECT_EQ(resp.mesh_blob, blob_by_config[cfg]);
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::size_t>(kTenants * kPerTenant));
  EXPECT_EQ(stats.rejected_overload, 0u);
  EXPECT_EQ(stats.ok + stats.cache_hits,
            static_cast<std::size_t>(kTenants * kPerTenant));
}

TEST(MeshServer, FaultInjectedPooledRequestStillOkAndCached) {
  // A 4-rank run under the PR 1 chaos fabric: the fault-tolerance machinery
  // recovers (retransmits/unit retries), the service sees a clean kOk, and
  // the mesh matches the sequential bytes bit-for-bit.
  ServerConfig config;
  config.workers = 1;
  MeshServer server(config);
  const MeshResponse seq = server.submit_wait(request_of(1, 0, 50, 0));
  ASSERT_EQ(seq.status, ServiceStatus::kOk);

  MeshRequest req = request_of(2, 0, 52, 4);
  req.options.set_fault_rate(0.02).set_fault_seed(7);
  const MeshResponse pooled = server.submit_wait(std::move(req));
  ASSERT_EQ(pooled.status, ServiceStatus::kOk);
  EXPECT_FALSE(pooled.cache_hit);  // different surface points: a real mesh

  MeshRequest again = request_of(3, 0, 52, 0);
  const MeshResponse hit = server.submit_wait(std::move(again));
  ASSERT_EQ(hit.status, ServiceStatus::kOk);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.mesh_blob, pooled.mesh_blob);
}

}  // namespace
}  // namespace aero
