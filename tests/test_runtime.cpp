// In-process message-passing runtime: communicator, RMA window, work-unit
// serialization, and the work-stealing pool's equivalence to the sequential
// pipeline.

#include <gtest/gtest.h>

#include <thread>

#include "core/mesh_generator.hpp"
#include "core/pipeline_config.hpp"  // aerolint: allow(public-api)
#include "runtime/parallel_driver.hpp"
#include "runtime/pool.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

TEST(Communicator, SendRecvFifoPerPair) {
  Communicator comm(2);
  comm.send(0, 1, kTagWorkRequest, {1});
  comm.send(0, 1, kTagWorkRequest, {2});
  const Message m1 = comm.recv(1);
  const Message m2 = comm.recv(1);
  EXPECT_EQ(m1.payload[0], 1);
  EXPECT_EQ(m2.payload[0], 2);
  EXPECT_EQ(m1.from, 0);
}

TEST(Communicator, TryRecvNonBlocking) {
  Communicator comm(2);
  EXPECT_FALSE(comm.try_recv(0).has_value());
  comm.send(1, 0, kTagNoWork);
  const auto msg = comm.try_recv(0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->tag, kTagNoWork);
}

TEST(Communicator, BlockingRecvWakesOnSend) {
  Communicator comm(2);
  std::thread sender([&comm] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    comm.send(0, 1, kTagShutdown);
  });
  const Message m = comm.recv(1);  // blocks until the send
  EXPECT_EQ(m.tag, kTagShutdown);
  sender.join();
}

TEST(RmaWindow, PutGetRoundTrip) {
  RmaWindow win(4);
  win.put(2, 123.5);
  win.put(0, 7.0);
  const auto all = win.get_all();
  EXPECT_EQ(all[0], 7.0);
  EXPECT_EQ(all[1], 0.0);
  EXPECT_EQ(all[2], 123.5);
}

TEST(WorkSerialization, BlSubdomainRoundTrip) {
  Subdomain s = make_root_subdomain({{0, 0}, {1, 0}, {0.5, 1}, {2, 2}});
  s.cuts = {{CutAxis::kVertical, 0.5, true},
            {CutAxis::kHorizontal, 1.0, false}};
  s.level = 2;
  const WorkUnit unit{WorkUnit::Kind::kBlDecompose, s, {}};
  const WorkUnit back = deserialize_work(serialize(unit));
  EXPECT_EQ(back.kind, WorkUnit::Kind::kBlDecompose);
  EXPECT_EQ(back.bl.xsorted, s.xsorted);
  EXPECT_EQ(back.bl.ysorted, s.ysorted);
  EXPECT_EQ(back.bl.level, 2);
  ASSERT_EQ(back.bl.cuts.size(), 2u);
  EXPECT_EQ(back.bl.cuts[0].axis, CutAxis::kVertical);
  EXPECT_EQ(back.bl.cuts[0].line, 0.5);
  EXPECT_TRUE(back.bl.cuts[0].keep_left);
}

TEST(WorkSerialization, FinalizedShipsOnlyXsorted) {
  // The paper's communication optimization: a sufficiently decomposed
  // subdomain ships only its x-sorted vertices.
  Subdomain s = make_root_subdomain({{0, 0}, {1, 0}, {0.5, 1}, {2, 2}});
  const std::size_t full = serialize({WorkUnit::Kind::kBlDecompose, s, {}}).size();
  s.finalize();
  const std::size_t final_size =
      serialize({WorkUnit::Kind::kBlDecompose, s, {}}).size();
  EXPECT_LT(final_size, full);
  const WorkUnit back =
      deserialize_work(serialize({WorkUnit::Kind::kBlDecompose, s, {}}));
  EXPECT_TRUE(back.bl.final_);
  EXPECT_TRUE(back.bl.ysorted.empty());
  EXPECT_EQ(back.bl.xsorted.size(), 4u);
}

TEST(WorkSerialization, InviscidRoundTrip) {
  InviscidSubdomain s;
  s.border = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  s.corners = {0, 1, 2, 3};
  s.level = 3;
  s.hole_segments = {{{1, 1}, {2, 1}}, {{2, 1}, {1, 1.5}}};
  s.hole_seeds = {{1.4, 1.1}};
  const WorkUnit back =
      deserialize_work(serialize({WorkUnit::Kind::kInviscidDecouple, {}, s}));
  EXPECT_EQ(back.inv.border, s.border);
  EXPECT_EQ(back.inv.corners, s.corners);
  EXPECT_EQ(back.inv.hole_segments, s.hole_segments);
  EXPECT_EQ(back.inv.hole_seeds, s.hole_seeds);
  EXPECT_EQ(back.inv.level, 3);
}

TEST(WorkSerialization, TriangleSoupRoundTrip) {
  std::vector<std::array<Vec2, 3>> tris{
      {{Vec2{0, 0}, Vec2{1, 0}, Vec2{0, 1}}},
      {{Vec2{1e-300, -5}, Vec2{3.25, 0.1}, Vec2{7, 8}}}};
  const auto back = deserialize_triangles(serialize_triangles(tris));
  EXPECT_EQ(back, tris);
}

TEST(WorkSerialization, TruncatedPayloadThrows) {
  Subdomain s = make_root_subdomain({{0, 0}, {1, 0}, {0.5, 1}});
  auto bytes = serialize({WorkUnit::Kind::kBlDecompose, s, {}});
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_work(bytes), std::runtime_error);
}

class PoolEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PoolEquivalence, ParallelMatchesSequential) {
  const int nranks = GetParam();
  Options cfg;
  cfg.airfoil = make_naca0012(120);
  cfg.growth_kind = GrowthKind::kGeometric;
  cfg.first_height = 8e-4;
  cfg.growth_ratio = 1.3;
  cfg.max_layers = 25;
  cfg.farfield_chords = 6.0;
  cfg.inviscid_target_triangles = 8000.0;
  cfg.bl_min_points = 600;
  cfg.bl_max_level = 8;

  const MeshGenerationResult seq = generate_mesh(cfg);
  const ParallelMeshResult par = parallel_generate_mesh(cfg, nranks);

  // The mesh is deterministic: identical triangle counts and identical
  // welded point counts regardless of rank count and steal interleaving.
  EXPECT_EQ(par.mesh.triangle_count(), seq.mesh.triangle_count());
  EXPECT_EQ(par.mesh.point_count(), seq.mesh.point_count());
  const auto conf = par.mesh.check_conformity();
  EXPECT_TRUE(conf.manifold);
  EXPECT_TRUE(conf.orientation_ok);
}

INSTANTIATE_TEST_SUITE_P(Ranks, PoolEquivalence, ::testing::Values(1, 2, 4),
                         ::testing::PrintToStringParamName());

TEST(Pool, WorkIsActuallyDistributed) {
  // Drive the steal path deterministically: every idle rank requests work
  // (threshold 1) and the update period is tight, so even on a single
  // oversubscribed core the requests land while rank 0 still has queued
  // units.
  Options cfg;
  cfg.airfoil = make_naca0012(150);
  cfg.growth_kind = GrowthKind::kGeometric;
  cfg.first_height = 6e-4;
  cfg.growth_ratio = 1.25;
  cfg.max_layers = 30;
  cfg.farfield_chords = 8.0;
  cfg.inviscid_target_triangles = 3000.0;
  cfg.bl_min_points = 400;
  cfg.bl_max_level = 10;

  const BoundaryLayer bl = build_boundary_layer(cfg.airfoil, blayer_options(cfg));
  MergedMesh bl_mesh;
  triangulate_boundary_layer(bl, bl_decompose_options(cfg), bl_mesh, nullptr, nullptr);
  const InviscidDomain domain = make_inviscid_domain(bl, cfg, bl_mesh);

  PoolOptions opts;
  opts.nranks = 4;
  opts.steal_threshold = 1.0;
  opts.update_period = std::chrono::microseconds(50);
  opts.inviscid_target_triangles = cfg.inviscid_target_triangles;

  std::vector<WorkUnit> initial;
  for (InviscidSubdomain& quad : initial_quadrants(domain)) {
    initial.push_back(
        WorkUnit{WorkUnit::Kind::kInviscidDecouple, {}, std::move(quad)});
  }
  MergedMesh out;
  const PoolStats stats = run_pool(std::move(initial), domain.sizing, opts, out);

  std::size_t busy_ranks = 0;
  for (const std::size_t n : stats.tasks_per_rank) {
    if (n > 0) ++busy_ranks;
  }
  EXPECT_GE(busy_ranks, 2u);
  EXPECT_GT(stats.steals, 0u);
  EXPECT_GT(stats.transfer_bytes, 0u);
}

}  // namespace
}  // namespace aero
