// Tests of the error-free transformations and expansion arithmetic that
// every exact predicate is built on.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geom/expansion.hpp"  // aerolint: allow(public-api)

namespace aero::expansion {
namespace {

TEST(TwoSum, ExactForRepresentableResults) {
  double x, y;
  two_sum(1.0, 2.0, x, y);
  EXPECT_EQ(x, 3.0);
  EXPECT_EQ(y, 0.0);
}

TEST(TwoSum, CapturesRoundoff) {
  double x, y;
  two_sum(1.0, 1e-30, x, y);
  EXPECT_EQ(x, 1.0);
  EXPECT_EQ(y, 1e-30);  // the tail is the lost low part, exactly
}

TEST(TwoSum, RandomPairsReconstruct) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> mag(-40, 40);
  std::uniform_real_distribution<double> mant(-1.0, 1.0);
  for (int i = 0; i < 10000; ++i) {
    const double a = std::ldexp(mant(rng), static_cast<int>(mag(rng)));
    const double b = std::ldexp(mant(rng), static_cast<int>(mag(rng)));
    double x, y;
    two_sum(a, b, x, y);
    EXPECT_EQ(x, a + b);
    // x + y == a + b exactly: verify via long double (106-bit enough here).
    EXPECT_EQ(static_cast<long double>(x) + y,
              static_cast<long double>(a) + b);
  }
}

TEST(TwoDiff, TailMatchesTwoDiffTail) {
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> d(-1e6, 1e6);
  for (int i = 0; i < 10000; ++i) {
    const double a = d(rng), b = d(rng);
    double x, y;
    two_diff(a, b, x, y);
    EXPECT_EQ(x, a - b);
    EXPECT_EQ(y, two_diff_tail(a, b, x));
  }
}

TEST(TwoProduct, ExactViaFma) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> d(-1e8, 1e8);
  for (int i = 0; i < 10000; ++i) {
    const double a = d(rng), b = d(rng);
    double x, y;
    two_product(a, b, x, y);
    EXPECT_EQ(x, a * b);
    EXPECT_EQ(y, std::fma(a, b, -x));
    // |y| must be below half an ulp of x.
    if (x != 0.0) {
      EXPECT_LE(std::fabs(y), std::ldexp(std::fabs(x), -52));
    }
  }
}

TEST(FastExpansionSum, SumsSmallExpansions) {
  // e = 1 + 2^-60, f = 1 - 2^-60: sum must be exactly 2.
  double e[2] = {std::ldexp(1.0, -60), 1.0};
  double f[2] = {-std::ldexp(1.0, -60), 1.0};
  double h[4];
  const int len = fast_expansion_sum_zeroelim(2, e, 2, f, h);
  long double total = 0.0L;
  for (int i = 0; i < len; ++i) total += h[i];
  EXPECT_EQ(total, 2.0L);
}

TEST(FastExpansionSum, ZeroEliminationLeavesAtLeastOneComponent) {
  double e[1] = {1.0};
  double f[1] = {-1.0};
  double h[2];
  const int len = fast_expansion_sum_zeroelim(1, e, 1, f, h);
  ASSERT_GE(len, 1);
  EXPECT_EQ(h[len - 1], 0.0);
}

TEST(ScaleExpansion, MatchesLongDouble) {
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> d(-1e3, 1e3);
  for (int i = 0; i < 2000; ++i) {
    double e[2];
    two_sum(d(rng), d(rng) * 1e-12, e[1], e[0]);
    const double b = d(rng);
    double h[8];
    const int len = scale_expansion_zeroelim(2, e, b, h);
    long double expect = (static_cast<long double>(e[0]) + e[1]) * b;
    long double got = 0.0L;
    for (int k = 0; k < len; ++k) got += h[k];
    // The expansion is exact; long double (64-bit mantissa) comparison needs
    // a tolerance only because `expect` itself is rounded.
    EXPECT_NEAR(static_cast<double>(got), static_cast<double>(expect),
                std::fabs(static_cast<double>(expect)) * 1e-18 + 1e-300);
  }
}

TEST(Sign, TopComponentDecides) {
  double e[3] = {0.5, -1.0, 2.0};
  EXPECT_EQ(sign(3, e), 1);
  double f[2] = {1.0, -2.0};
  EXPECT_EQ(sign(2, f), -1);
  double z[1] = {0.0};
  EXPECT_EQ(sign(1, z), 0);
}

}  // namespace
}  // namespace aero::expansion
