// Alternating digital tree: correctness against brute force, including the
// parameterized property sweep over point-set shapes and sizes.

#include <gtest/gtest.h>

#include <random>

#include "spatial/adt.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

TEST(Adt, EmptyTreeReturnsNothing) {
  AlternatingDigitalTree adt(BBox2{{0, 0}, {1, 1}});
  EXPECT_TRUE(adt.empty());
  EXPECT_TRUE(adt.query_overlaps(BBox2{{0, 0}, {1, 1}}).empty());
}

TEST(Adt, SingleBox) {
  AlternatingDigitalTree adt(BBox2{{0, 0}, {10, 10}});
  adt.insert(BBox2{{1, 1}, {2, 2}}, 42);
  EXPECT_EQ(adt.size(), 1u);
  auto hits = adt.query_overlaps(BBox2{{1.5, 1.5}, {3, 3}});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
  EXPECT_TRUE(adt.query_overlaps(BBox2{{5, 5}, {6, 6}}).empty());
}

TEST(Adt, TouchingBoxesCount) {
  AlternatingDigitalTree adt(BBox2{{0, 0}, {10, 10}});
  adt.insert(BBox2{{0, 0}, {1, 1}}, 0);
  // Query box sharing only the corner point (1,1).
  auto hits = adt.query_overlaps(BBox2{{1, 1}, {2, 2}});
  EXPECT_EQ(hits.size(), 1u);
}

TEST(Adt, OverlapRangeConstruction) {
  const BBox2 world{{0, 0}, {10, 10}};
  const Range4 r = overlap_range(BBox2{{2, 3}, {4, 5}}, world);
  // A box (x0,y0,x1,y1) overlaps [2,4]x[3,5] iff x0<=4, y0<=5, x1>=2, y1>=3.
  EXPECT_TRUE(r.contains(to_point4(BBox2{{3, 4}, {3.5, 4.5}})));
  EXPECT_TRUE(r.contains(to_point4(BBox2{{0, 0}, {2, 3}})));   // corner touch
  EXPECT_FALSE(r.contains(to_point4(BBox2{{5, 0}, {6, 1}})));
}

struct AdtSweepParam {
  int n;
  unsigned seed;
  double box_scale;  // typical extent of inserted boxes
};

class AdtSweep : public ::testing::TestWithParam<AdtSweepParam> {};

TEST_P(AdtSweep, MatchesBruteForce) {
  const auto [n, seed, box_scale] = GetParam();
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pos(0.0, 100.0);
  std::uniform_real_distribution<double> ext(0.0, box_scale);

  std::vector<BBox2> boxes;
  boxes.reserve(static_cast<std::size_t>(n));
  BBox2 world;
  for (int i = 0; i < n; ++i) {
    const Vec2 lo{pos(rng), pos(rng)};
    const BBox2 b{lo, lo + Vec2{ext(rng), ext(rng)}};
    boxes.push_back(b);
    world.expand(b);
  }

  AlternatingDigitalTree adt(world.inflated(1e-9));
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    adt.insert(boxes[i], static_cast<std::uint32_t>(i));
  }

  for (int q = 0; q < 50; ++q) {
    const Vec2 lo{pos(rng), pos(rng)};
    const BBox2 query{lo, lo + Vec2{ext(rng) * 2, ext(rng) * 2}};
    auto hits = adt.query_overlaps(query);
    std::sort(hits.begin(), hits.end());

    std::vector<std::uint32_t> expected;
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].intersects(query)) {
        expected.push_back(static_cast<std::uint32_t>(i));
      }
    }
    EXPECT_EQ(hits, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AdtSweep,
    ::testing::Values(AdtSweepParam{10, 1, 5.0}, AdtSweepParam{100, 2, 5.0},
                      AdtSweepParam{1000, 3, 5.0},
                      AdtSweepParam{1000, 4, 0.5},   // tiny boxes
                      AdtSweepParam{1000, 5, 50.0},  // huge overlapping boxes
                      AdtSweepParam{5000, 6, 2.0}));

TEST(Adt, DegenerateSegmentBoxes) {
  // Extent boxes of axis-parallel segments are degenerate (zero width or
  // height) -- the boundary-layer rays of a flat surface produce these.
  AlternatingDigitalTree adt(BBox2{{0, 0}, {10, 10}});
  for (int i = 0; i < 10; ++i) {
    adt.insert(BBox2{{static_cast<double>(i), 0}, {static_cast<double>(i), 5}},
               static_cast<std::uint32_t>(i));
  }
  auto hits = adt.query_overlaps(BBox2{{2.5, 1}, {4.5, 2}});
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::uint32_t>{3, 4}));
}

TEST(Adt, ManyIdenticalBoxes) {
  // Identical boxes all go down the same side; the tree degenerates to a
  // list but must stay correct.
  AlternatingDigitalTree adt(BBox2{{0, 0}, {1, 1}});
  const BBox2 b{{0.25, 0.25}, {0.5, 0.5}};
  for (std::uint32_t i = 0; i < 64; ++i) adt.insert(b, i);
  EXPECT_EQ(adt.query_overlaps(b).size(), 64u);
  EXPECT_TRUE(adt.query_overlaps(BBox2{{0.6, 0.6}, {0.9, 0.9}}).empty());
}

}  // namespace
}  // namespace aero
