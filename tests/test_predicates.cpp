// Exactness tests of the adaptive orient2d / incircle predicates, including
// the degenerate near-collinear and near-cocircular inputs that break naive
// floating-point evaluation.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geom/predicates.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

TEST(Orient2d, BasicSigns) {
  EXPECT_GT(orient2d({0, 0}, {1, 0}, {0, 1}), 0.0);
  EXPECT_LT(orient2d({0, 0}, {0, 1}, {1, 0}), 0.0);
  EXPECT_EQ(orient2d({0, 0}, {1, 1}, {2, 2}), 0.0);
}

TEST(Orient2d, ExactlyCollinearAtAwkwardScales) {
  // Points on y = x with coordinates that are not powers of two.
  const Vec2 a{0.1, 0.1}, b{0.2, 0.2}, c{0.3, 0.3};
  // 0.1 + 0.2 != 0.3 in binary, but these are THE SAME multiples: c = 3a,
  // b = 2a exactly? Not exactly -- so this triple is NOT collinear exactly.
  // The predicate must agree with exact rational arithmetic:
  // orient = (b-a) x (c-a) computed exactly.
  const double exact_sign = orient2d(a, b, c);
  // Verified against exact rational arithmetic offline: with these doubles,
  // 0.2 - 0.1 and 0.3 - 0.2 differ in the last ulp; the triple is slightly
  // bent. All we assert here is stability: sign is consistent under cyclic
  // permutation and anti-symmetric under swap.
  EXPECT_EQ(exact_sign > 0, orient2d(b, c, a) > 0);
  EXPECT_EQ(exact_sign > 0, orient2d(c, a, b) > 0);
  EXPECT_EQ(exact_sign > 0, orient2d(b, a, c) < 0);
}

TEST(Orient2d, SignConsistencyUnderPermutation) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (int i = 0; i < 20000; ++i) {
    const Vec2 a{d(rng), d(rng)}, b{d(rng), d(rng)};
    // Nearly-collinear third point: c = a + t(b - a) + tiny perpendicular.
    const double t = d(rng);
    const Vec2 ab = b - a;
    const Vec2 c = a + ab * t + ab.perp() * (d(rng) * 1e-18);
    const double o1 = orient2d(a, b, c);
    const double o2 = orient2d(b, c, a);
    const double o3 = orient2d(c, a, b);
    EXPECT_EQ(o1 > 0, o2 > 0);
    EXPECT_EQ(o1 > 0, o3 > 0);
    EXPECT_EQ(o1 == 0, o2 == 0);
    const double om = orient2d(b, a, c);
    EXPECT_EQ(o1 > 0, om < 0);
    EXPECT_EQ(o1 == 0, om == 0);
  }
}

TEST(Orient2d, AdaptiveStagesFire) {
  predicates_detail::reset_counters();
  // Force near-collinear inputs that defeat the stage-A filter.
  std::mt19937_64 rng(8);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (int i = 0; i < 5000; ++i) {
    const Vec2 a{d(rng), d(rng)}, b{d(rng), d(rng)};
    const Vec2 c = midpoint(a, b);  // exactly on the segment in many cases
    orient2d(a, b, c);
  }
  const auto& counters = predicates_detail::counters();
  EXPECT_GT(counters.adapt + counters.exact, 0);
}

TEST(Incircle, UnitSquareCocircular) {
  // Four corners of a square are exactly cocircular.
  EXPECT_EQ(incircle({0, 0}, {1, 0}, {1, 1}, {0, 1}), 0.0);
  // Strictly inside / outside.
  EXPECT_GT(incircle({0, 0}, {1, 0}, {1, 1}, {0.5, 0.5}), 0.0);
  EXPECT_LT(incircle({0, 0}, {1, 0}, {1, 1}, {5, 5}), 0.0);
}

TEST(Incircle, TranslationOfCocircularQuadStaysExact) {
  // Cocircular quadruples moved far from the origin: the fixed-point of
  // naive evaluation, routine for the exact predicate.
  for (const double off : {0.0, 1.0, 1e3, 1e6, 1e9}) {
    const Vec2 a{off + 0, off + 0}, b{off + 1, off + 0};
    const Vec2 c{off + 1, off + 1}, d{off + 0, off + 1};
    EXPECT_EQ(incircle(a, b, c, d), 0.0) << "offset " << off;
  }
}

TEST(Incircle, AntiSymmetryInLastTwoArguments) {
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (int i = 0; i < 10000; ++i) {
    const Vec2 a{d(rng), d(rng)}, b{d(rng), d(rng)}, c{d(rng), d(rng)},
        p{d(rng), d(rng)};
    if (orient2d(a, b, c) <= 0.0) continue;
    const double v1 = incircle(a, b, c, p);
    // Swapping two points of the triangle flips orientation, so the sign
    // must flip.
    const double v2 = incircle(b, a, c, p);
    EXPECT_EQ(v1 > 0, v2 < 0);
    EXPECT_EQ(v1 == 0, v2 == 0);
  }
}

TEST(Incircle, PerturbationByOneUlpDetected) {
  // d exactly on the circle through a,b,c, then nudged by one ulp.
  const Vec2 a{0, 0}, b{2, 0}, c{2, 2};
  const Vec2 on{0, 2};
  EXPECT_EQ(incircle(a, b, c, on), 0.0);
  const Vec2 inside{0, std::nextafter(2.0, 0.0)};
  EXPECT_GT(incircle(a, b, c, inside), 0.0);
  const Vec2 outside{0, std::nextafter(2.0, 3.0)};
  EXPECT_LT(incircle(a, b, c, outside), 0.0);
}

TEST(Incircle, GridCocircularSweep) {
  // Structured-grid quadruples (the boundary-layer degeneracy): every unit
  // grid square is exactly cocircular at any offset.
  for (int ox = -3; ox <= 3; ++ox) {
    for (int oy = -3; oy <= 3; ++oy) {
      const double x = ox * 1234.5, y = oy * 987.25;
      EXPECT_EQ(
          incircle({x, y}, {x + 1, y}, {x + 1, y + 1}, {x, y + 1}), 0.0);
    }
  }
}

TEST(OnSegment, EndpointsAndInterior) {
  EXPECT_TRUE(on_segment({0, 0}, {2, 2}, {1, 1}));
  EXPECT_TRUE(on_segment({0, 0}, {2, 2}, {0, 0}));
  EXPECT_TRUE(on_segment({0, 0}, {2, 2}, {2, 2}));
  EXPECT_FALSE(on_segment({0, 0}, {2, 2}, {3, 3}));   // beyond
  EXPECT_FALSE(on_segment({0, 0}, {2, 2}, {1, 1.5})); // off the line
  // Vertical segment (x-extent zero) exercises the y-range branch.
  EXPECT_TRUE(on_segment({1, 0}, {1, 4}, {1, 2}));
  EXPECT_FALSE(on_segment({1, 0}, {1, 4}, {1, 5}));
}

}  // namespace
}  // namespace aero
