// The invariant auditors (src/check) must (a) stay quiet on healthy
// structures -- including full seed-pipeline meshes -- and (b) report each
// seeded defect class with a precise, located message. The corruption tests
// reach the private internals through the TestAccess backdoors declared in
// quadedge.hpp / mesh.hpp.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "airfoil/geometry.hpp"
#include "blayer/boundary_layer.hpp"  // aerolint: allow(public-api)
#include "check/audit.hpp"  // aerolint: allow(public-api)
#include "core/mesh_generator.hpp"
#include "delaunay/mesh.hpp"  // aerolint: allow(public-api)
#include "delaunay/quadedge.hpp"  // aerolint: allow(public-api)
#include "geom/predicates.hpp"  // aerolint: allow(public-api)
#include "runtime/parallel_driver.hpp"

namespace aero {

// White-box corruption fixture: the auditors are tested by mutating kernel
// storage directly, which is exactly what the mesh-internal-access rule
// forbids everywhere else.
struct QuadEdge::TestAccess {
  static ChunkedArray<QuadEdge::EdgeRef>& next(QuadEdge& q) {  // aerolint: allow(mesh-internal-access)
    return q.next_;
  }
  static ChunkedArray<VertIndex>& data(QuadEdge& q) { return q.data_; }  // aerolint: allow(mesh-internal-access)
};

struct DelaunayMesh::TestAccess {
  static ChunkedArray<std::array<VertIndex, 3>>& tri_v(DelaunayMesh& m) {  // aerolint: allow(mesh-internal-access)
    return m.tri_v_;
  }
  static ChunkedArray<std::array<TriIndex, 3>>& tri_n(DelaunayMesh& m) {  // aerolint: allow(mesh-internal-access)
    return m.tri_n_;
  }
  static ChunkedArray<Vec2>& points(DelaunayMesh& m) { return m.points_; }  // aerolint: allow(mesh-internal-access)
  static void flip(DelaunayMesh& m, TriIndex t, int edge) {
    m.flip_edge(t, edge);
  }
};

namespace {

bool has_issue(const AuditReport& r, const std::string& needle) {
  for (const std::string& s : r.issues) {
    if (s.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Quad-edge

/// A Guibas-Stolfi triangle: three edges 0->1->2->0 sharing faces.
QuadEdge make_triangle_quadedge() {
  QuadEdge q;
  const QuadEdge::EdgeRef a = q.make_edge(0, 1);
  const QuadEdge::EdgeRef b = q.make_edge(1, 2);
  q.splice(QuadEdge::sym(a), b);
  q.connect(b, a);
  return q;
}

TEST(AuditQuadEdge, CleanTriangle) {
  QuadEdge q = make_triangle_quadedge();
  const AuditReport r = audit_quadedge(q);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.checked, 12u);  // 3 physical edges, 4 quarters each
}

TEST(AuditQuadEdge, ParityCorruptionReported) {
  QuadEdge q = make_triangle_quadedge();
  // Point a primal quarter's Onext at a dual quarter.
  QuadEdge::TestAccess::next(q)[0] ^= 1u;
  const AuditReport r = audit_quadedge(q);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_issue(r, "crosses the primal/dual parity")) << r.summary();
}

TEST(AuditQuadEdge, RingCorruptionReported) {
  QuadEdge q = make_triangle_quadedge();
  // Redirect quarter 0's Onext onto quarter 4's successor: the involution
  // Oprev(Onext(e)) == e now fails for 0 (both land on the same successor),
  // the signature of a half-applied splice.
  auto& next = QuadEdge::TestAccess::next(q);
  ASSERT_NE(next[0], next[4]);
  next[0] = next[4];
  const AuditReport r = audit_quadedge(q);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_issue(r, "dual linkage broken")) << r.summary();
}

TEST(AuditQuadEdge, OriginDisagreementReported) {
  QuadEdge q = make_triangle_quadedge();
  // Two primal quarters on one origin ring must agree on the origin vertex;
  // rewrite one origin record without re-splicing.
  QuadEdge::TestAccess::data(q)[0] = 7;
  const AuditReport r = audit_quadedge(q);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_issue(r, "disagrees with ring origin")) << r.summary();
}

// ---------------------------------------------------------------------------
// Delaunay mesh

/// Triangle (0,0)-(1,0)-(0.5,1) with an interior vertex: the triangulation
/// is the 3-triangle fan around the interior point.
DelaunayMesh make_fan_mesh() {
  DelaunayMesh m;
  EXPECT_TRUE(m.triangulate(
      {{0.0, 0.0}, {1.0, 0.0}, {0.5, 1.0}, {0.5, 0.4}}));
  return m;
}

TEST(AuditDelaunay, CleanFan) {
  DelaunayMesh m = make_fan_mesh();
  const AuditReport r = audit_delaunay(m);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_GE(r.checked, 6u);  // 3 finite + 3 ghost triangles
}

TEST(AuditDelaunay, CavityCorruptionViolatesIncircle) {
  // An irregular convex quad with an interior vertex: plenty of interior
  // edges. Flip one whose surrounding quad is strictly convex -- the result
  // is a topologically consistent, correctly oriented triangulation whose
  // flipped edge fails the empty-circumcircle test: a stale cavity, exactly
  // what a Bowyer-Watson step that misses a triangle leaves behind.
  DelaunayMesh m;
  ASSERT_TRUE(m.triangulate(
      {{0.0, 0.0}, {2.0, 0.0}, {3.0, 1.5}, {1.0, 2.2}, {1.2, 0.9}}));
  ASSERT_TRUE(audit_delaunay(m).ok());

  bool flipped = false;
  for (TriIndex t = 0;
       t < static_cast<TriIndex>(m.triangle_slots()) && !flipped; ++t) {
    if (!m.is_live_finite(t)) continue;
    const MeshTri& mt = m.tri(t);
    for (int i = 0; i < 3 && !flipped; ++i) {
      const TriIndex nb = mt.n[i];
      if (nb == kNoTri || !m.is_live_finite(nb) || mt.constrained[i]) continue;
      const Vec2 a = m.point(mt.v[(i + 1) % 3]);
      const Vec2 b = m.point(mt.v[(i + 2) % 3]);
      const Vec2 c = m.point(mt.v[i]);
      // The neighbor's apex sits opposite its back edge.
      int j = 0;
      for (; j < 3; ++j) {
        if (m.tri(nb).n[j] == t) break;
      }
      if (j == 3) continue;
      const Vec2 d = m.point(m.tri(nb).v[j]);
      // Flip only a strictly convex quad c-a-d-b (both new triangles CCW).
      if (orient2d(c, a, d) > 0.0 && orient2d(a, d, b) > 0.0 &&
          orient2d(d, b, c) > 0.0 && orient2d(b, c, a) > 0.0) {
        DelaunayMesh::TestAccess::flip(m, t, i);
        flipped = true;
      }
    }
  }
  ASSERT_TRUE(flipped);

  const AuditReport r = audit_delaunay(m);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_issue(r, "is not locally Delaunay")) << r.summary();
  EXPECT_FALSE(has_issue(r, "not strictly CCW")) << r.summary();
}

TEST(AuditDelaunay, AdjacencyCorruptionReported) {
  DelaunayMesh m = make_fan_mesh();
  auto& tri_n = DelaunayMesh::TestAccess::tri_n(m);
  TriIndex victim = kNoTri;
  for (TriIndex t = 0; t < static_cast<TriIndex>(tri_n.size()); ++t) {
    if (m.is_live_finite(t)) victim = t;
  }
  ASSERT_NE(victim, kNoTri);
  tri_n[static_cast<std::size_t>(victim)][0] = kNoTri;
  const AuditReport r = audit_delaunay(m);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_issue(r, "missing/out-of-range neighbor")) << r.summary();
}

TEST(AuditDelaunay, OrientationCorruptionReported) {
  DelaunayMesh m = make_fan_mesh();
  auto& tri_v = DelaunayMesh::TestAccess::tri_v(m);
  for (TriIndex t = 0; t < static_cast<TriIndex>(tri_v.size()); ++t) {
    if (m.is_live_finite(t)) {
      std::swap(tri_v[static_cast<std::size_t>(t)][0],
                tri_v[static_cast<std::size_t>(t)][1]);
      break;
    }
  }
  const AuditReport r = audit_delaunay(m);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_issue(r, "not strictly CCW")) << r.summary();
}

// ---------------------------------------------------------------------------
// Protocol trace (the pool's ack table / exactly-once machinery)

TEST(AuditProtocol, CleanSingleTransfer) {
  ProtocolTrace t;
  t.begin_run();
  t.record(ProtocolEvent::Kind::kUnitCreated, 0, 0);
  t.record(ProtocolEvent::Kind::kDispatch, 1, 0, 1);
  t.record(ProtocolEvent::Kind::kAccept, 1, 1, 0);
  t.record(ProtocolEvent::Kind::kAckMatched, 1, 0, 1);
  t.record(ProtocolEvent::Kind::kUnitCompleted, 0, 1);
  const AuditReport r = audit_protocol(t);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.checked, 5u);
}

TEST(AuditProtocol, AckWithoutAcceptReported) {
  // A corrupted ack table: the donor erased an in-flight entry for a frame
  // the receiver never accepted (the unit would be lost in flight).
  ProtocolTrace t;
  t.begin_run();
  t.record(ProtocolEvent::Kind::kUnitCreated, 0, 0);
  t.record(ProtocolEvent::Kind::kDispatch, 1, 0, 1);
  t.record(ProtocolEvent::Kind::kAckMatched, 1, 0, 1);
  t.record(ProtocolEvent::Kind::kUnitCompleted, 0, 0);
  const AuditReport r = audit_protocol(t);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_issue(r, "ack-matched but the frame was never accepted"))
      << r.summary();
}

TEST(AuditProtocol, DedupeFailureReported) {
  ProtocolTrace t;
  t.begin_run();
  t.record(ProtocolEvent::Kind::kUnitCreated, 0, 0);
  t.record(ProtocolEvent::Kind::kDispatch, 1, 0, 1);
  t.record(ProtocolEvent::Kind::kAccept, 1, 1, 0);
  t.record(ProtocolEvent::Kind::kAccept, 1, 1, 0);  // retransmit re-accepted
  t.record(ProtocolEvent::Kind::kAckMatched, 1, 0, 1);
  t.record(ProtocolEvent::Kind::kUnitCompleted, 0, 1);
  const AuditReport r = audit_protocol(t);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_issue(r, "accepted twice (receiver dedupe failed)"))
      << r.summary();
}

TEST(AuditProtocol, DoubleResolveReported) {
  ProtocolTrace t;
  t.begin_run();
  t.record(ProtocolEvent::Kind::kUnitCreated, 0, 0);
  t.record(ProtocolEvent::Kind::kDispatch, 1, 0, 1);
  t.record(ProtocolEvent::Kind::kAccept, 1, 1, 0);
  t.record(ProtocolEvent::Kind::kAckMatched, 1, 0, 1);
  t.record(ProtocolEvent::Kind::kRecovered, 1, 0, 1);  // same entry, again
  t.record(ProtocolEvent::Kind::kUnitCompleted, 0, 1);
  const AuditReport r = audit_protocol(t);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_issue(r, "resolved twice")) << r.summary();
}

TEST(AuditProtocol, RequeueAfterCompletionReported) {
  ProtocolTrace t;
  t.begin_run();
  t.record(ProtocolEvent::Kind::kUnitCreated, 0, 0);
  t.record(ProtocolEvent::Kind::kUnitCompleted, 0, 0);
  t.record(ProtocolEvent::Kind::kUnitRequeued, 0, 0, 1);
  const AuditReport r = audit_protocol(t, /*run_aborted=*/true);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_issue(r, "after it already finished")) << r.summary();
}

TEST(AuditProtocol, UnresolvedNonceOnlyOnCompletedRuns) {
  ProtocolTrace t;
  t.begin_run();
  t.record(ProtocolEvent::Kind::kUnitCreated, 0, 0);
  t.record(ProtocolEvent::Kind::kDispatch, 1, 0, 1);
  t.record(ProtocolEvent::Kind::kUnitCompleted, 0, 0);
  const AuditReport completed = audit_protocol(t, /*run_aborted=*/false);
  EXPECT_FALSE(completed.ok());
  EXPECT_TRUE(has_issue(completed, "dispatched but never resolved"))
      << completed.summary();
  // A watchdog-aborted run legitimately strands in-flight entries.
  EXPECT_TRUE(audit_protocol(t, /*run_aborted=*/true).ok());
}

TEST(AuditProtocol, UnitIdsAreScopedPerRun) {
  // Two pool passes share one trace (the pipeline's boundary-layer and
  // inviscid pools); unit 0 exists in both without being "created twice".
  ProtocolTrace t;
  for (int run = 0; run < 2; ++run) {
    t.begin_run();
    t.record(ProtocolEvent::Kind::kUnitCreated, 0, 0);
    t.record(ProtocolEvent::Kind::kUnitCompleted, 0, 0);
  }
  const AuditReport r = audit_protocol(t);
  EXPECT_TRUE(r.ok()) << r.summary();
}

// ---------------------------------------------------------------------------
// Seed pipeline artifacts stay audit-clean

TEST(AuditPipeline, SequentialArtifactsClean) {
  Options cfg;
  cfg.airfoil = make_naca0012(120);
  cfg.growth_kind = GrowthKind::kGeometric;
  cfg.first_height = 6e-4;
  cfg.growth_ratio = 1.25;
  cfg.max_layers = 20;
  cfg.farfield_chords = 6.0;
  cfg.inviscid_target_triangles = 8000.0;
  cfg.bl_min_points = 800;
  cfg.bl_max_level = 10;

  const MeshGenerationResult r = generate_mesh(cfg);
  ASSERT_EQ(r.status, RunStatus::kOk);

  const AuditReport bl = audit_blayer(r.boundary_layer);
  EXPECT_TRUE(bl.ok()) << bl.summary();
  const AuditReport mm = audit_merged(r.mesh);
  EXPECT_TRUE(mm.ok()) << mm.summary();
}

TEST(AuditPipeline, ParallelProtocolTraceClean) {
  Options cfg;
  cfg.airfoil = make_naca0012(120);
  cfg.growth_kind = GrowthKind::kGeometric;
  cfg.first_height = 6e-4;
  cfg.growth_ratio = 1.25;
  cfg.max_layers = 20;
  cfg.farfield_chords = 6.0;
  cfg.inviscid_target_triangles = 8000.0;
  cfg.bl_min_points = 800;
  cfg.bl_max_level = 10;

  ProtocolTrace trace;
  const ParallelMeshResult r =
      parallel_generate_mesh(cfg, /*nranks=*/2, FaultConfig{}, &trace);
  ASSERT_EQ(r.status, RunStatus::kOk);
  EXPECT_GT(trace.size(), 0u);

  const AuditReport p = audit_protocol(trace);
  EXPECT_TRUE(p.ok()) << p.summary();
  const AuditReport mm = audit_merged(r.mesh);
  EXPECT_TRUE(mm.ok()) << mm.summary();
}

TEST(AuditRays, SingleElementClean) {
  const AirfoilConfig cfg = make_naca0012(100);
  BoundaryLayerOptions opts;
  opts.growth = {GrowthKind::kGeometric, 6e-4, 1.25};
  opts.max_layers = 20;
  IntersectionStats stats;
  ElementRays er = build_rays(cfg.elements[0], opts, 0, &stats);
  resolve_self_intersections(er, opts, &stats);
  const AuditReport r = audit_rays(er, opts);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_GT(r.checked, 100u);
}

}  // namespace
}  // namespace aero
