// Merged mesh assembly: point welding, carving, ring restriction, boundary
// extraction, conformity audit.

#include <gtest/gtest.h>

#include "core/merged_mesh.hpp"
#include "delaunay/triangulator.hpp"

namespace aero {
namespace {

TEST(MergedMesh, WeldsIdenticalPoints) {
  MergedMesh m;
  m.add_triangle({0, 0}, {1, 0}, {0, 1});
  m.add_triangle({1, 0}, {1, 1}, {0, 1});
  EXPECT_EQ(m.point_count(), 4u);  // shared edge endpoints welded
  EXPECT_EQ(m.triangle_count(), 2u);
  const auto conf = m.check_conformity();
  EXPECT_TRUE(conf.manifold);
  EXPECT_EQ(conf.interior_edges, 1u);
  EXPECT_EQ(conf.boundary_edges, 4u);
  EXPECT_TRUE(conf.orientation_ok);
}

TEST(MergedMesh, AppendFromDelaunayMesh) {
  const auto r = triangulate_points({{0, 0}, {2, 0}, {1, 2}, {1, 0.5}});
  MergedMesh m;
  m.append(r.mesh);
  EXPECT_EQ(m.triangle_count(), r.mesh.triangle_count());
  EXPECT_TRUE(m.check_conformity().manifold);
}

TEST(MergedMesh, DetectsNonManifoldOverlap) {
  MergedMesh m;
  m.add_triangle({0, 0}, {1, 0}, {0, 1});
  m.add_triangle({1, 0}, {1, 1}, {0, 1});
  m.add_triangle({1, 0}, {2, 1}, {0, 1});  // third triangle on edge (1,0)-(0,1)
  const auto conf = m.check_conformity();
  EXPECT_FALSE(conf.manifold);
  EXPECT_EQ(conf.nonmanifold_edges, 1u);
}

TEST(MergedMesh, DetectsBadOrientation) {
  MergedMesh m;
  m.add_triangle({0, 0}, {0, 1}, {1, 0});  // clockwise
  EXPECT_FALSE(m.check_conformity().orientation_ok);
}

MergedMesh grid_mesh(int n) {
  std::vector<Vec2> pts;
  for (int i = 0; i <= n; ++i) {
    for (int j = 0; j <= n; ++j) pts.push_back({i * 1.0, j * 1.0});
  }
  const auto r = triangulate_points(pts);
  MergedMesh m;
  m.append(r.mesh);
  return m;
}

TEST(MergedMesh, CarveRemovesEnclosedRegion) {
  MergedMesh m = grid_mesh(4);
  const std::size_t before = m.triangle_count();
  // Barrier: the unit square [1,3]x[1,3] boundary along grid edges.
  std::vector<std::pair<Vec2, Vec2>> barrier;
  for (int i = 1; i < 3; ++i) {
    barrier.push_back({{static_cast<double>(i), 1}, {static_cast<double>(i + 1), 1}});
    barrier.push_back({{static_cast<double>(i), 3}, {static_cast<double>(i + 1), 3}});
    barrier.push_back({{1, static_cast<double>(i)}, {1, static_cast<double>(i + 1)}});
    barrier.push_back({{3, static_cast<double>(i)}, {3, static_cast<double>(i + 1)}});
  }
  m.carve(barrier, {{2.0, 2.0}});
  // The 2x2 interior block (8 triangles) is gone.
  EXPECT_EQ(m.triangle_count(), before - 8);
  EXPECT_TRUE(m.check_conformity().manifold);
}

TEST(MergedMesh, KeepOnlyIsComplementOfCarve) {
  MergedMesh a = grid_mesh(4);
  MergedMesh b = grid_mesh(4);
  std::vector<std::pair<Vec2, Vec2>> barrier;
  for (int i = 1; i < 3; ++i) {
    barrier.push_back({{static_cast<double>(i), 1}, {static_cast<double>(i + 1), 1}});
    barrier.push_back({{static_cast<double>(i), 3}, {static_cast<double>(i + 1), 3}});
    barrier.push_back({{1, static_cast<double>(i)}, {1, static_cast<double>(i + 1)}});
    barrier.push_back({{3, static_cast<double>(i)}, {3, static_cast<double>(i + 1)}});
  }
  const std::size_t total = a.triangle_count();
  a.carve(barrier, {{2.0, 2.0}});
  b.keep_only(barrier, {{2.0, 2.0}});
  EXPECT_EQ(a.triangle_count() + b.triangle_count(), total);
  EXPECT_EQ(b.triangle_count(), 8u);
}

TEST(MergedMesh, CarveWithSeedOutsideMeshIsNoOp) {
  MergedMesh m = grid_mesh(2);
  const std::size_t before = m.triangle_count();
  m.carve({}, {{100.0, 100.0}});
  EXPECT_EQ(m.triangle_count(), before);
}

TEST(MergedMesh, BoundaryEdgesOfGrid) {
  MergedMesh m = grid_mesh(3);
  const auto boundary = m.boundary_edges({});
  EXPECT_EQ(boundary.size(), 12u);  // 4 sides x 3 edges
  // Excluding one side's edges removes them from the report.
  std::vector<std::pair<Vec2, Vec2>> exclude;
  for (int i = 0; i < 3; ++i) {
    exclude.push_back({{static_cast<double>(i), 0}, {static_cast<double>(i + 1), 0}});
  }
  EXPECT_EQ(m.boundary_edges(exclude).size(), 9u);
}

TEST(MergedMesh, MissingEdges) {
  MergedMesh m = grid_mesh(2);
  const std::vector<std::pair<Vec2, Vec2>> candidates = {
      {{0, 0}, {1, 0}},    // present
      {{0, 0}, {2, 2}},    // absent (not a grid edge)
      {{5, 5}, {6, 6}},    // endpoints not even in the mesh
  };
  const auto missing = m.missing_edges(candidates);
  ASSERT_EQ(missing.size(), 2u);
}

TEST(MergedStats, GridValues) {
  MergedMesh m = grid_mesh(4);
  const MergedStats st = compute_stats(m);
  EXPECT_EQ(st.triangles, 32u);
  EXPECT_EQ(st.vertices, 25u);
  EXPECT_NEAR(st.total_area, 16.0, 1e-12);
  EXPECT_NEAR(st.min_angle_deg, 45.0, 1e-9);
  EXPECT_NEAR(st.max_angle_deg, 90.0, 1e-9);
}

}  // namespace
}  // namespace aero
