// Boundary layer: growth functions, ray construction with fans and
// curvature refinement, self- and multi-element intersection resolution,
// isotropy transition.

#include <gtest/gtest.h>

#include <cmath>

#include "blayer/boundary_layer.hpp"  // aerolint: allow(public-api)
#include "geom/segment.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Growth, GeometricClosedForm) {
  const GrowthFunction g{GrowthKind::kGeometric, 1e-3, 1.2};
  EXPECT_DOUBLE_EQ(g.spacing(1), 1e-3);
  EXPECT_DOUBLE_EQ(g.spacing(2), 1.2e-3);
  EXPECT_DOUBLE_EQ(g.height(0), 0.0);
  // height(k) = sum of spacings.
  double acc = 0.0;
  for (int k = 1; k <= 10; ++k) {
    acc += g.spacing(k);
    EXPECT_NEAR(g.height(k), acc, 1e-15);
  }
}

TEST(Growth, PolynomialAndAdaptiveMonotone) {
  for (const GrowthKind kind :
       {GrowthKind::kPolynomial, GrowthKind::kAdaptive}) {
    const GrowthFunction g{kind, 1e-3, 1.5};
    double prev_h = 0.0;
    for (int k = 1; k <= 30; ++k) {
      EXPECT_GT(g.spacing(k), 0.0);
      EXPECT_GE(g.spacing(k), g.spacing(std::max(1, k - 1)) * 0.999);
      const double h = g.height(k);
      EXPECT_GT(h, prev_h);
      prev_h = h;
    }
  }
}

TEST(Growth, InvalidLayerThrows) {
  const GrowthFunction g{GrowthKind::kGeometric, 1e-3, 1.2};
  EXPECT_THROW(g.spacing(0), std::invalid_argument);
}

BoundaryLayerOptions default_opts() {
  BoundaryLayerOptions o;
  o.growth = {GrowthKind::kGeometric, 5e-4, 1.25};
  o.max_layers = 30;
  return o;
}

TEST(Rays, OneRayPerSmoothVertex) {
  // A circle is smooth: with enough points, no fans and no edge refinement.
  AirfoilElement circle{.name = "circle", .surface = {}};
  for (int i = 0; i < 128; ++i) {
    const double th = 2 * kPi * i / 128;
    circle.surface.push_back({std::cos(th), std::sin(th)});
  }
  IntersectionStats stats;
  const auto er = build_rays(circle, default_opts(), 0, &stats);
  EXPECT_EQ(er.rays.size(), 128u);
  EXPECT_EQ(stats.fans, 0u);
  EXPECT_EQ(stats.edge_refinement_rays, 0u);
  // Rays point radially outward.
  for (const Ray& r : er.rays) {
    EXPECT_GT(r.dir.dot(r.origin), 0.9);
  }
}

TEST(Rays, CoarseCircleGetsEdgeRefinement) {
  AirfoilElement circle{.name = "coarse", .surface = {}};
  for (int i = 0; i < 8; ++i) {
    const double th = 2 * kPi * i / 8;
    circle.surface.push_back({std::cos(th), std::sin(th)});
  }
  IntersectionStats stats;
  const auto er = build_rays(circle, default_opts(), 0, &stats);
  // 45-degree normal jumps far exceed the 20-degree threshold.
  EXPECT_GT(stats.edge_refinement_rays, 0u);
  EXPECT_GT(er.rays.size(), 8u);
  EXPECT_EQ(er.surface.size(), er.rays.size());  // one ray per refined vertex
}

TEST(Rays, SquareCornersGetFans) {
  AirfoilElement square{.name = "square",
                        .surface = {{0, 0}, {1, 0}, {1, 1}, {0, 1}}};
  IntersectionStats stats;
  const auto er = build_rays(square, default_opts(), 0, &stats);
  EXPECT_EQ(stats.fans, 4u);  // every 90-degree corner diverges
  // Fan rays share their origin.
  std::size_t shared_origin_pairs = 0;
  for (std::size_t i = 0; i + 1 < er.rays.size(); ++i) {
    if (er.rays[i].origin == er.rays[i + 1].origin) ++shared_origin_pairs;
  }
  EXPECT_GT(shared_origin_pairs, 0u);
}

TEST(Rays, SharpTrailingEdgeFanCurvesAround) {
  const AirfoilConfig config = make_naca0012(100);
  IntersectionStats stats;
  const auto er = build_rays(config.elements[0], default_opts(), 0, &stats);
  ASSERT_GE(stats.fans, 1u);  // the trailing-edge cusp
  // The trailing-edge fan rays all originate at the TE point (1 - eps, 0).
  std::size_t te_rays = 0;
  for (const Ray& r : er.rays) {
    if (r.fan) ++te_rays;
  }
  EXPECT_GE(te_rays, 5u);  // a near-180-degree cusp needs many rays
}

TEST(SelfIntersection, ConcaveChannelTruncatesRays) {
  // A "U" channel: rays from the two inner walls collide.
  AirfoilElement u{.name = "u", .surface = {}};
  // Outer boundary CCW with a deep thin slot.
  u.surface = {{0, 0},      {3, 0},     {3, 2},     {1.6, 2},
               {1.6, 0.5},  {1.4, 0.5}, {1.4, 2},   {0, 2}};
  BoundaryLayerOptions opts = default_opts();
  opts.growth.first_height = 0.01;
  opts.max_layers = 20;
  IntersectionStats stats;
  auto er = build_rays(u, opts, 0, &stats);
  resolve_self_intersections(er, opts, &stats);
  EXPECT_GT(stats.self_truncations + stats.surface_truncations, 0u);
  // Rays inside the 0.2-wide slot must be truncated below half the width.
  for (const Ray& r : er.rays) {
    if (r.origin.x > 1.35 && r.origin.x < 1.65 && r.origin.y > 0.6 &&
        r.origin.y < 1.9 && std::fabs(r.dir.x) > 0.9) {
      EXPECT_LT(r.max_height, 0.2);
    }
  }
}

TEST(MultiElement, CloseBodiesTruncateEachOther) {
  // Two circles 0.1 apart with boundary layers that would be 0.3 thick.
  AirfoilConfig config;
  for (int e = 0; e < 2; ++e) {
    AirfoilElement c{.name = e == 0 ? "left" : "right", .surface = {}};
    const double cx = e == 0 ? 0.0 : 2.1;
    for (int i = 0; i < 64; ++i) {
      const double th = 2 * kPi * i / 64;
      c.surface.push_back({cx + std::cos(th), std::sin(th)});
    }
    config.elements.push_back(std::move(c));
  }
  BoundaryLayerOptions opts = default_opts();
  opts.growth.first_height = 0.02;
  opts.max_layers = 20;
  const BoundaryLayer bl = build_boundary_layer(config, opts);
  EXPECT_GT(bl.stats.multi_candidates, 0u);
  EXPECT_GT(bl.stats.multi_truncations, 0u);
}

TEST(BoundaryLayer, PointsGrowAlongNormalsWithGrowthSpacing) {
  const AirfoilConfig config = make_naca0012(64);
  BoundaryLayerOptions opts = default_opts();
  const BoundaryLayer bl = build_boundary_layer(config, opts);
  EXPECT_GT(bl.points.size(), config.elements[0].surface.size());
  ASSERT_EQ(bl.surfaces.size(), 1u);
  ASSERT_EQ(bl.outer_borders.size(), 1u);
  ASSERT_EQ(bl.hole_seeds.size(), 1u);
  EXPECT_FALSE(bl.ring_seeds.empty());
  // The isotropy rule keeps layer counts finite even without truncation.
  for (const int layers : bl.layers_per_ray) {
    EXPECT_LE(layers, opts.max_layers);
  }
}

TEST(BoundaryLayer, IsotropyStopsAtLocalSpacing) {
  // Dense surface spacing ~ 0.0015 with first height 5e-4 growing by 1.25:
  // spacing(k) exceeds the lateral spacing after a handful of layers.
  const AirfoilConfig config = make_naca0012(2000);
  BoundaryLayerOptions opts = default_opts();
  const BoundaryLayer bl = build_boundary_layer(config, opts);
  double mean_layers = 0.0;
  for (const int l : bl.layers_per_ray) mean_layers += l;
  mean_layers /= static_cast<double>(bl.layers_per_ray.size());
  EXPECT_LT(mean_layers, 15.0);
  EXPECT_GT(mean_layers, 1.0);
}

TEST(BoundaryLayer, VariableHeightSmoothTransition) {
  // Figure 5's content: boundary-layer heights vary along the surface; the
  // border must stay a single polyline without gaps.
  const AirfoilConfig config = make_three_element(160);
  const BoundaryLayer bl = build_boundary_layer(config, default_opts());
  ASSERT_EQ(bl.outer_borders.size(), 3u);
  for (const auto& border : bl.outer_borders) {
    EXPECT_GT(border.size(), 10u);
    for (std::size_t i = 0; i + 1 < border.size(); ++i) {
      EXPECT_NE(border[i], border[i + 1]);  // consecutive deduped
    }
  }
  // The three-element configuration triggers every special case.
  EXPECT_GT(bl.stats.fans, 0u);
  EXPECT_GT(bl.stats.self_truncations + bl.stats.surface_truncations, 0u);
  EXPECT_GT(bl.stats.multi_truncations, 0u);
}

TEST(LayerCount, RespectsTruncationHeight) {
  const BoundaryLayerOptions opts = default_opts();
  Ray r{{0, 0}, {0, 1}, 0.002, 0, false};
  const int layers = layer_count(r, 1.0, 0.0, opts);
  EXPECT_LE(opts.growth.height(layers), 0.002);
  // Untruncated ray with huge lateral spacing: limited by max_layers.
  Ray free_ray{{0, 0}, {0, 1},
               std::numeric_limits<double>::infinity(), 0, false};
  EXPECT_EQ(layer_count(free_ray, 1e9, 0.0, opts), opts.max_layers);
}

}  // namespace
}  // namespace aero
