#!/usr/bin/env python3
"""Golden test for the aerolint fixture corpus.

Lints tests/aerolint/corpus (a miniature source tree seeded with >=4
violations per whole-program analysis plus clean files) and compares:

  * the text findings against expected.txt (byte-for-byte), and
  * the SARIF export against expected.sarif (parsed JSON equality, so
    formatting churn in the writer does not break the golden).

Run directly or via the `aerolint_fixtures` ctest entry. To regenerate
the goldens after an intentional rule change:

    python3 tools/aerolint tests/aerolint/corpus \
        --sarif tests/aerolint/expected.sarif \
        2> tests/aerolint/expected.txt
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
CORPUS = os.path.join(HERE, "corpus")
LINTER = os.path.join(REPO, "tools", "aerolint")


def fail(msg):
    sys.stderr.write("aerolint fixtures FAIL: %s\n" % msg)
    return 1


def main():
    with tempfile.TemporaryDirectory() as tmp:
        sarif_path = os.path.join(tmp, "fixtures.sarif")
        proc = subprocess.run(
            [sys.executable, LINTER, CORPUS, "--sarif", sarif_path],
            capture_output=True, text=True, cwd=REPO)
        if proc.returncode != 1:
            return fail("expected exit 1 (violations), got %d\nstderr:\n%s"
                        % (proc.returncode, proc.stderr))

        with open(os.path.join(HERE, "expected.txt"), encoding="utf-8") as f:
            want_text = f.read()
        if proc.stderr != want_text:
            import difflib
            diff = "".join(difflib.unified_diff(
                want_text.splitlines(keepends=True),
                proc.stderr.splitlines(keepends=True),
                fromfile="expected.txt", tofile="actual"))
            return fail("text findings diverged from the golden "
                        "(regenerate if intentional):\n" + diff)

        with open(sarif_path, encoding="utf-8") as f:
            got_sarif = json.load(f)
        with open(os.path.join(HERE, "expected.sarif"),
                  encoding="utf-8") as f:
            want_sarif = json.load(f)
        if got_sarif != want_sarif:
            return fail("SARIF export diverged from expected.sarif "
                        "(regenerate if intentional)")

    n = sum(1 for line in want_text.splitlines() if ": [" in line)
    sys.stderr.write("aerolint fixtures: corpus produced the %d golden "
                     "findings and a schema-valid SARIF export\n" % n)
    return 0


if __name__ == "__main__":
    sys.exit(main())
