// Fixture: seeded determinism violations (det-unordered-iter,
// det-pointer-key, det-clock) inside mesh-affecting code.
#pragma once

#include <chrono>
#include <cstdlib>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace aero {

struct CavityNode;

class CavityCache {
 public:
  double sum_weights() {
    double s = 0.0;
    for (const auto& kv : weights_) {  // det-unordered-iter: hash order
      s += kv.second;
    }
    return s;
  }

  int flood(int seed) {
    std::unordered_set<int> frontier;
    frontier.insert(seed);
    int visited = 0;
    for (int v : frontier) {  // det-unordered-iter: local hash order
      visited += v;
    }
    return visited;
  }

  double stamp() {
    // det-clock: wall-clock read feeding kernel code.
    const auto t = std::chrono::steady_clock::now();
    return static_cast<double>(t.time_since_epoch().count());
  }

  int jitter() {
    return rand() % 3;  // det-clock + heritage determinism: PRNG in kernel
  }

 private:
  std::unordered_map<int, double> weights_;
  std::map<CavityNode*, int> order_;  // det-pointer-key: address ordering
};

}  // namespace aero
