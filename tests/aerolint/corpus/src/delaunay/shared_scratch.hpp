// Fixture: kernel-shared-state violations (and exempt forms) on the
// Delaunay kernel path. Four seeded findings: two unannotated mutable
// members, one non-const namespace-scope global, one non-const
// function-local static. The const/constexpr/thread_local/atomic and
// AERO_SHARED_STATE-annotated declarations below must stay quiet.
#pragma once

namespace aero {

int g_walk_restarts = 0;                       // finding: mutable global
constexpr int kWalkGuard = 64;                 // quiet: constexpr
thread_local int tl_walk_depth = 0;            // quiet: thread_local

class LocateScratch {
 public:
  int hint() const;

 private:
  mutable int last_tri_ = -1;                  // finding: unannotated
  mutable unsigned rng_state_ = 1u;            // finding: unannotated
  mutable int hits_ AERO_SHARED_STATE("main thread only") = 0;  // quiet
  std::atomic<int> epoch_ AERO_ATOMIC_ROLE(counter){0};         // quiet
  int capacity_ = 0;                           // quiet: not mutable
};

inline int next_probe_id() {
  static int counter = 0;                      // finding: mutable static
  return ++counter;
}

inline int probe_limit() {
  static const int limit = 128;                // quiet: const static
  return limit;
}

}  // namespace aero
