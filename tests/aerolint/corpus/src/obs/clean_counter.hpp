// Fixture: a fully clean file -- annotated locks and atomics, ordered
// containers, checked statuses. Must produce zero findings.
#pragma once

#include <atomic>
#include <map>

#include "obs/annotations.hpp"

namespace aero {

class CleanCounter {
 public:
  void add(int k, double w) {
    MutexLock lock(m_);
    weights_[k] += w;
    total_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] bool flush();

  bool drain() { return flush(); }

 private:
  mutable Mutex m_ AERO_LOCK_NAME("fx.clean", 90);
  std::map<int, double> weights_;
  std::atomic<long> total_ AERO_ATOMIC_ROLE(counter){0};
};

}  // namespace aero
