// Fixture: seeded unchecked-status violations -- [[nodiscard]] results
// dropped on the floor in statement position.
#pragma once

namespace aero {

enum class [[nodiscard]] FixtureStatus { kOk, kFailed };

FixtureStatus run_stage();

class FrameWriter {
 public:
  [[nodiscard]] bool persist(int frame);
};

class StagePipeline {
 public:
  [[nodiscard]] bool step();

  void drive() {
    step();  // unchecked-status: own nodiscard method, result dropped
    run_stage();  // unchecked-status: nodiscard enum return dropped
  }
};

inline void flush_frames(FrameWriter& w) {
  w.persist(0);  // unchecked-status: resolved receiver, result dropped
}

class FrameHolder {
 public:
  void flush_all() {
    writer.persist(1);  // unchecked-status: member receiver, dropped
  }

 private:
  FrameWriter writer;
};

}  // namespace aero
