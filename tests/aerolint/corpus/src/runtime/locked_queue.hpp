// Fixture: seeded lock-discipline violations (lock-table, lock-order,
// lock-blocking). Golden expectations live in tests/aerolint/expected.txt.
#pragma once

#include <chrono>
#include <thread>

#include "obs/annotations.hpp"

namespace aero {

// lock-table: a mutex in scope with no AERO_LOCK_NAME annotation.
class UnrankedBox {
 public:
  void poke();

 private:
  Mutex m_;
};

// lock-table: ACQUIRED_BEFORE pointing the wrong way across the ranks.
class ContraUp {
  Mutex m_ AERO_LOCK_NAME("fx.up", 50) AERO_ACQUIRED_BEFORE("fx.down");
};
class ContraDown {
  Mutex m_ AERO_LOCK_NAME("fx.down", 40);
};

// lock-order: nested acquisition descending in rank, plus re-acquisition.
class LockedQueue {
 public:
  void drain() {
    MutexLock outer(hi_);
    MutexLock inner(lo_);  // lock-order: rank inversion
  }

  void requeue() {
    MutexLock a(lo_);
    MutexLock b(lo_);  // lock-order: re-acquiring a held lock
  }

  // lock-blocking: sleeping while the queue lock is held.
  void backoff() {
    MutexLock lock(lo_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

 private:
  Mutex lo_ AERO_LOCK_NAME("fx.queue", 10);
  Mutex hi_ AERO_LOCK_NAME("fx.flush", 20);
};

}  // namespace aero
