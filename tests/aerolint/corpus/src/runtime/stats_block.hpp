// Fixture: seeded atomics violations (atomic-role, atomic-order,
// atomic-implicit, atomic-mixed).
#pragma once

#include <atomic>
#include <cstring>

#include "obs/annotations.hpp"

namespace aero {

class StatsBlock {
 public:
  void bump() { done_.fetch_add(1); }  // atomic-role: fetch_add on a flag

  void publish() {
    // atomic-order: a published atomic needs release on the store side.
    head_.store(1, std::memory_order_relaxed);
  }

  void reset() { steals_ = 0; }  // atomic-implicit: plain '=' store

  void wipe(const void* src) {
    std::memcpy(&steals_, src, sizeof(steals_));  // atomic-mixed
  }

 private:
  std::atomic<int> retries_{0};  // atomic-role: no declared role
  std::atomic<int> done_ AERO_ATOMIC_ROLE(flag){0};
  std::atomic<int> head_ AERO_ATOMIC_ROLE(published){0};
  std::atomic<long> steals_ AERO_ATOMIC_ROLE(counter){0};
};

}  // namespace aero
