// Fixture: seeded mesh-internal-access violations -- code outside the mesh
// core (src/delaunay + core/merged_mesh.* / mesh_view.*) reaching into the
// SoA storage instead of reading through MergedMesh or aero::MeshView.
#pragma once

#include "delaunay/chunked.hpp"  // mesh-internal-access: arena header leaked
#include "core/merged_mesh.hpp"  // clean: the public assembled-mesh header

namespace aero {

class MeshProbe {
 public:
  void scan(const MergedMesh& mesh) {
    ChunkedArray<int> marks;  // mesh-internal-access: arena type named
    for (std::size_t t = 0; t < mesh.record_count(); ++t) {
      total_ += mesh.tris_[t][0];  // mesh-internal-access: SoA member poked
    }
    // Clean: the accessor surface is the sanctioned read path.
    total_ += mesh.tri(0)[0];
  }

 private:
  long total_ = 0;
};

}  // namespace aero
