// Cluster performance model: simulator invariants on synthetic task graphs
// plus sanity of the measured-graph path.

#include <gtest/gtest.h>

#include "core/mesh_generator.hpp"
#include "runtime/cluster_model.hpp"

namespace aero {
namespace {

/// Balanced binary decomposition: `levels` split levels, leaves of equal
/// cost. Mirrors the BL decomposition shape.
TaskGraph synthetic_tree(int levels, double split_cost, double leaf_cost,
                         std::size_t bytes) {
  TaskGraph g;
  g.serial_before = {0.0};
  std::vector<std::size_t> roots;

  // Build recursively.
  const std::function<std::size_t(int)> build = [&](int level) {
    const std::size_t id = g.nodes.size();
    g.nodes.emplace_back();
    g.nodes[id].bytes = bytes;
    g.nodes[id].cost_estimate = std::pow(2.0, levels - level);
    if (level == levels) {
      g.nodes[id].seconds = leaf_cost;
      return id;
    }
    g.nodes[id].seconds = split_cost;
    const std::size_t a = build(level + 1);
    const std::size_t b = build(level + 1);
    g.nodes[id].children = {a, b};
    return id;
  };
  roots.push_back(build(0));
  g.phases.push_back(roots);
  return g;
}

ClusterOptions fast_net() {
  ClusterOptions o;
  o.latency_seconds = 1e-7;
  o.bandwidth_bytes_per_s = 1e10;
  o.window_staleness_seconds = 1e-6;
  return o;
}

TEST(ClusterModel, OneRankMakespanIsTotalWork) {
  const TaskGraph g = synthetic_tree(6, 0.001, 0.1, 1000);
  const SimResult r = simulate_cluster(g, 1, fast_net());
  EXPECT_NEAR(r.makespan_seconds, g.total_seconds(), 1e-12);
  EXPECT_NEAR(r.speedup, 1.0, 1e-12);
  EXPECT_EQ(r.steals, 0u);
}

TEST(ClusterModel, SpeedupMonotoneAndBounded) {
  const TaskGraph g = synthetic_tree(8, 0.0005, 0.05, 10000);
  double prev = 0.0;
  for (const int p : {1, 2, 4, 8, 16, 32}) {
    const SimResult r = simulate_cluster(g, p, fast_net());
    EXPECT_GE(r.speedup, prev * 0.999) << p;  // monotone up to noise
    EXPECT_LE(r.speedup, static_cast<double>(p) * 1.0001) << p;
    EXPECT_LE(r.efficiency, 1.0001);
    prev = r.speedup;
  }
}

TEST(ClusterModel, NearLinearOnEmbarrassinglyParallelLeaves) {
  // Cheap splits, expensive leaves: efficiency at 16 ranks should be high.
  const TaskGraph g = synthetic_tree(8, 1e-5, 0.2, 1000);
  const SimResult r = simulate_cluster(g, 16, fast_net());
  EXPECT_GT(r.efficiency, 0.85);
}

TEST(ClusterModel, SerialPhaseLimitsSpeedup) {
  // Amdahl: huge serial stage caps speedup near 1.
  TaskGraph g = synthetic_tree(4, 0.001, 0.01, 1000);
  g.serial_before[0] = g.total_seconds() * 9.0;  // 90% serial
  const SimResult r = simulate_cluster(g, 64, fast_net());
  EXPECT_LT(r.speedup, 1.2);
}

TEST(ClusterModel, SlowNetworkHurtsScaling) {
  const TaskGraph g = synthetic_tree(8, 0.0005, 0.02, 4'000'000);
  ClusterOptions slow = fast_net();
  slow.bandwidth_bytes_per_s = 1e7;  // 10 MB/s
  const SimResult fast = simulate_cluster(g, 32, fast_net());
  const SimResult congested = simulate_cluster(g, 32, slow);
  EXPECT_GT(fast.speedup, congested.speedup);
  EXPECT_GT(congested.comm_seconds, fast.comm_seconds);
}

TEST(ClusterModel, SweepCoversAllRankCounts) {
  const TaskGraph g = synthetic_tree(6, 0.001, 0.05, 1000);
  const auto sweep = strong_scaling_sweep(g, {1, 2, 4, 8}, fast_net());
  ASSERT_EQ(sweep.size(), 4u);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(sweep[i].ranks, 1 << i);
  }
}

TEST(ClusterModel, MeasuredGraphFromRealPipeline) {
  Options cfg;
  cfg.airfoil = make_naca0012(120);
  cfg.growth_kind = GrowthKind::kGeometric;
  cfg.first_height = 8e-4;
  cfg.growth_ratio = 1.3;
  cfg.max_layers = 25;
  cfg.farfield_chords = 12.0;
  cfg.inviscid_target_triangles = 4000.0;
  cfg.bl_min_points = 500;
  cfg.bl_max_level = 8;

  const TaskGraph g = build_task_graph(cfg);
  EXPECT_EQ(g.phases.size(), 2u);
  EXPECT_EQ(g.serial_before.size(), 2u);
  EXPECT_GT(g.nodes.size(), 10u);
  EXPECT_GT(g.total_seconds(), 0.0);
  for (const TaskNode& n : g.nodes) {
    EXPECT_GE(n.seconds, 0.0);
    EXPECT_GT(n.bytes, 0u);
    for (const std::size_t c : n.children) EXPECT_LT(c, g.nodes.size());
  }
  // The model must show real speedup on the measured graph.
  const SimResult r8 = simulate_cluster(g, 8, ClusterOptions{});
  EXPECT_GT(r8.speedup, 1.5);
}

}  // namespace
}  // namespace aero
