// Distance-field grid and the body-overlap safety purge.

#include <gtest/gtest.h>

#include <cmath>

#include "core/distance_field.hpp"  // aerolint: allow(public-api)
#include "core/mesh_generator.hpp"
#include "geom/segment.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

TEST(DistanceField, ZeroOnTheLoopAndGrowsAway) {
  const std::vector<std::vector<Vec2>> loops{
      {{0, 0}, {1, 0}, {1, 1}, {0, 1}}};
  const DistanceField field(loops, BBox2{{-2, -2}, {3, 3}}, 256);
  // On the boundary: ~0 (within a cell).
  EXPECT_LT(field.distance({0.5, 0.0}), 0.05);
  EXPECT_LT(field.distance({1.0, 0.5}), 0.05);
  // Center of the square: ~0.5 from the nearest side.
  EXPECT_NEAR(field.distance({0.5, 0.5}), 0.5, 0.08);
  // Outside: approximately the true clearance.
  EXPECT_NEAR(field.distance({2.0, 0.5}), 1.0, 0.12);
  EXPECT_NEAR(field.distance({-1.0, -1.0}), std::sqrt(2.0), 0.2);
}

TEST(DistanceField, ChamferErrorBounded) {
  // The 2-pass chamfer with the sqrt(2) diagonal weight over-estimates the
  // Euclidean distance by at most ~8%.
  const std::vector<std::vector<Vec2>> loops{{{0, 0}, {0.0, 1.0}}};
  const DistanceField field(loops, BBox2{{-3, -3}, {3, 3}}, 512);
  for (double x = 0.2; x < 2.5; x += 0.3) {
    for (double y = -1.5; y < 1.5; y += 0.4) {
      const double exact =
          y >= 0.0 && y <= 1.0
              ? std::fabs(x)
              : std::hypot(x, y < 0 ? -y : y - 1.0);
      const double approx = field.distance({x, y});
      EXPECT_NEAR(approx, exact, 0.09 * exact + 0.04) << x << "," << y;
    }
  }
}

TEST(DistanceField, ClampsOutsideCoverage) {
  const std::vector<std::vector<Vec2>> loops{{{0, 0}, {1, 0}}};
  const DistanceField field(loops, BBox2{{-1, -1}, {2, 1}}, 128);
  // Far outside the grid: returns the boundary cell's value, no crash.
  EXPECT_GT(field.distance({100.0, 100.0}), 0.5);
}

TEST(RestrictToRing, MeshNeverOverlapsBodies) {
  // The cove geometry is exactly the case where nominal surface edges are
  // absent from the Delaunay triangulation and the flood leaks.
  BoundaryLayerOptions opts;
  opts.growth = {GrowthKind::kGeometric, 5e-4, 1.25};
  opts.max_layers = 30;
  const BoundaryLayer bl =
      build_boundary_layer(make_three_element(240), opts);

  MergedMesh mesh;
  std::size_t subdomains = 0;
  triangulate_boundary_layer(bl, {.min_points = 1000, .max_level = 10}, mesh,
                             &subdomains, nullptr);

  // No kept triangle's centroid may be inside any element.
  std::size_t inside_body = 0;
  mesh.for_each_triangle([&](Vec2 a, Vec2 b, Vec2 c) {
    const Vec2 centroid{(a.x + b.x + c.x) / 3.0, (a.y + b.y + c.y) / 3.0};
    for (const auto& surface : bl.surfaces) {
      if (point_in_polygon(centroid, surface)) ++inside_body;
    }
  });
  EXPECT_EQ(inside_body, 0u);
  EXPECT_GT(mesh.triangle_count(), 1000u);
}

TEST(RestrictToRing, KeepsTheAnisotropicLayer) {
  BoundaryLayerOptions opts;
  opts.growth = {GrowthKind::kGeometric, 5e-4, 1.25};
  opts.max_layers = 30;
  const BoundaryLayer bl = build_boundary_layer(make_naca0012(200), opts);
  MergedMesh mesh;
  triangulate_boundary_layer(bl, {.min_points = 1000, .max_level = 10}, mesh,
                             nullptr, nullptr);
  // The kept ring has far more vertices than the surface alone (the layer
  // points survive).
  EXPECT_GT(mesh.point_count(), bl.surfaces[0].size());
  // The ring's area is small (thin layer) but positive.
  const MergedStats st = compute_stats(mesh);
  EXPECT_GT(st.total_area, 0.0);
  EXPECT_LT(st.total_area, 1.0);  // much less than the unit-chord bbox
  EXPECT_GT(st.max_aspect_ratio, 8.0);  // anisotropic content survived
}

}  // namespace
}  // namespace aero
