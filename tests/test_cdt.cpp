// Constrained Delaunay: segment insertion (flip forcing), carving, and the
// triangulator facade.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "delaunay/triangulator.hpp"

namespace aero {
namespace {

bool has_edge(const DelaunayMesh& m, Vec2 a, Vec2 b) {
  bool found = false;
  m.for_each_triangle([&](TriIndex t) {
    const MeshTri& mt = m.tri(t);
    for (int i = 0; i < 3; ++i) {
      if ((m.point(mt.v[i]) == a &&
           m.point(mt.v[(i + 1) % 3]) == b) ||
          (m.point(mt.v[i]) == b && m.point(mt.v[(i + 1) % 3]) == a)) {
        found = true;
      }
    }
  });
  return found;
}

TEST(Cdt, ForcesMissingDiagonal) {
  // Four points whose Delaunay diagonal is (1,0)-(0,1); force the other.
  Pslg p;
  p.points = {{0, 0}, {2, 0}, {0, 2}, {2, 2}};
  p.segments = {{0, 3}};
  TriangulateOptions o;
  o.carve = false;
  const auto r = triangulate(p, o);
  EXPECT_TRUE(r.mesh.check_topology());
  EXPECT_TRUE(has_edge(r.mesh, {0, 0}, {2, 2}));
  EXPECT_TRUE(r.mesh.check_delaunay());  // constrained edges are exempt
}

TEST(Cdt, ForcedEdgeThroughManyPoints) {
  // A long segment across a random cloud: the flip-forcing walk crosses
  // many triangles.
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  Pslg p;
  p.points = {{-0.1, 0.5}, {1.1, 0.5}};
  for (int i = 0; i < 500; ++i) p.points.push_back({d(rng), d(rng)});
  p.segments = {{0, 1}};
  TriangulateOptions o;
  o.carve = false;
  const auto r = triangulate(p, o);
  EXPECT_TRUE(r.mesh.check_topology());
  EXPECT_TRUE(r.mesh.check_delaunay());
  // The forced edge may have been split by exactly-on-segment vertices
  // (none here with random data): the full edge must exist.
  EXPECT_TRUE(has_edge(r.mesh, {-0.1, 0.5}, {1.1, 0.5}));
}

TEST(Cdt, SegmentThroughCollinearVertexSplits) {
  Pslg p;
  p.points = {{0, 0}, {2, 0}, {1, 0}, {1, 2}, {1, -2}};
  p.segments = {{0, 1}};  // passes exactly through (1,0)
  TriangulateOptions o;
  o.carve = false;
  const auto r = triangulate(p, o);
  EXPECT_TRUE(r.mesh.check_topology());
  EXPECT_TRUE(has_edge(r.mesh, {0, 0}, {1, 0}));
  EXPECT_TRUE(has_edge(r.mesh, {1, 0}, {2, 0}));
}

TEST(Cdt, SegmentInsertionOrderIrrelevant) {
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<Vec2> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  for (int i = 0; i < 200; ++i) pts.push_back({d(rng), d(rng)});

  Pslg p1;
  p1.points = pts;
  p1.segments = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  Pslg p2 = p1;
  std::reverse(p2.segments.begin(), p2.segments.end());

  TriangulateOptions o;
  o.carve = false;
  const auto r1 = triangulate(p1, o);
  const auto r2 = triangulate(p2, o);
  EXPECT_EQ(r1.mesh.triangle_count(), r2.mesh.triangle_count());
  EXPECT_TRUE(r1.mesh.check_topology());
  EXPECT_TRUE(r2.mesh.check_topology());
}

TEST(Cdt, CarveSquareWithHole) {
  Pslg p;
  p.points = {{0, 0}, {4, 0}, {4, 4}, {0, 4},
              {1, 1}, {3, 1}, {3, 3}, {1, 3}};
  p.segments = {{0, 1}, {1, 2}, {2, 3}, {3, 0},
                {4, 5}, {5, 6}, {6, 7}, {7, 4}};
  p.holes = {{2, 2}};
  const auto r = triangulate(p, TriangulateOptions{});
  EXPECT_TRUE(r.mesh.check_topology());
  // Inside area = 16 - 4 = 12.
  double area = 0.0;
  r.mesh.for_each_triangle([&](TriIndex t) {
    const MeshTri& mt = r.mesh.tri(t);
    if (!mt.inside) return;
    const Vec2 a = r.mesh.point(mt.v[0]);
    const Vec2 b = r.mesh.point(mt.v[1]);
    const Vec2 c = r.mesh.point(mt.v[2]);
    area += 0.5 * (b - a).cross(c - a);
  });
  EXPECT_NEAR(area, 12.0, 1e-12);
}

TEST(Cdt, CarveWithoutHoleSeedsRemovesExteriorOnly) {
  Pslg p;
  p.points = {{0, 0}, {4, 0}, {2, 3}};
  p.segments = {{0, 1}, {1, 2}, {2, 0}};
  const auto r = triangulate(p, TriangulateOptions{});
  EXPECT_EQ(r.mesh.inside_triangle_count(), r.mesh.triangle_count());
}

TEST(Cdt, NonConvexBoundaryCarved) {
  // L-shaped domain: the convex-hull pocket must be removed.
  Pslg p;
  p.points = {{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}};
  p.segments = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}};
  const auto r = triangulate(p, TriangulateOptions{});
  double area = 0.0;
  r.mesh.for_each_triangle([&](TriIndex t) {
    const MeshTri& mt = r.mesh.tri(t);
    if (!mt.inside) return;
    const Vec2 a = r.mesh.point(mt.v[0]);
    const Vec2 b = r.mesh.point(mt.v[1]);
    const Vec2 c = r.mesh.point(mt.v[2]);
    area += 0.5 * (b - a).cross(c - a);
  });
  EXPECT_NEAR(area, 3.0, 1e-12);
}

TEST(Cdt, SortedFastPathMatchesSortingPath) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < 500; ++i) pts.push_back({d(rng), d(rng)});
  std::sort(pts.begin(), pts.end(), LessXY{});

  const auto r1 = triangulate_points(pts, /*assume_sorted=*/true);
  const auto r2 = triangulate_points(pts, /*assume_sorted=*/false);
  EXPECT_EQ(r1.mesh.triangle_count(), r2.mesh.triangle_count());
  EXPECT_TRUE(r1.mesh.check_delaunay());
}

TEST(Cdt, VertexIdsMapBackToInputOrder) {
  Pslg p;
  p.points = {{5, 5}, {0, 0}, {9, 1}, {3, 7}};
  p.segments = {};
  TriangulateOptions o;
  o.carve = false;
  o.constrained = false;
  const auto r = triangulate(p, o);
  ASSERT_EQ(r.vertex_ids.size(), 4u);
  for (std::size_t i = 0; i < p.points.size(); ++i) {
    EXPECT_EQ(r.mesh.point(r.vertex_ids[i]), p.points[i]);
  }
}

TEST(Cdt, ThrowsOnTrueCrossingConstraints) {
  Pslg p;
  p.points = {{0, 0}, {2, 2}, {0, 2}, {2, 0}, {5, 1}, {1, 5}};
  p.segments = {{0, 1}, {2, 3}};  // the two diagonals properly cross
  TriangulateOptions o;
  o.carve = false;
  EXPECT_THROW(triangulate(p, o), std::logic_error);
}

}  // namespace
}  // namespace aero
