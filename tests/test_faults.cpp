// Fault tolerance: the deterministic chaos injector, CRC-32 payload
// framing, the fabric's drop/duplicate/corrupt/delay behavior, work-unit
// retry -> re-queue -> fallback escalation, dead-rank detection, and the
// chaos run's equivalence to a fault-free run.

#include <gtest/gtest.h>

#include <chrono>

#include "core/mesh_generator.hpp"
#include "core/pipeline_config.hpp"  // aerolint: allow(public-api)
#include "core/timer.hpp"  // aerolint: allow(public-api)
#include "runtime/pool.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector: determinism and configuration semantics.

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 0xfeedbeef;
  cfg.drop_rate = 0.10;
  cfg.duplicate_rate = 0.07;
  cfg.corrupt_rate = 0.09;
  cfg.delay_rate = 0.05;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  for (int i = 0; i < 500; ++i) {
    const FaultInjector::Action x = a.next_action();
    const FaultInjector::Action y = b.next_action();
    EXPECT_EQ(x.drop, y.drop) << "event " << i;
    EXPECT_EQ(x.duplicate, y.duplicate) << "event " << i;
    EXPECT_EQ(x.corrupt, y.corrupt) << "event " << i;
    EXPECT_EQ(x.delay.count(), y.delay.count()) << "event " << i;
    EXPECT_EQ(x.salt, y.salt) << "event " << i;
  }
  EXPECT_EQ(a.dropped(), b.dropped());
  EXPECT_EQ(a.duplicated(), b.duplicated());
  EXPECT_EQ(a.corrupted(), b.corrupted());
  EXPECT_EQ(a.delayed(), b.delayed());
  // At these rates 500 draws must exercise every fault class.
  EXPECT_GT(a.dropped(), 0u);
  EXPECT_GT(a.duplicated(), 0u);
  EXPECT_GT(a.corrupted(), 0u);
  EXPECT_GT(a.delayed(), 0u);
}

TEST(FaultInjector, DisabledIsInert) {
  FaultConfig cfg;  // enabled defaults to false
  cfg.drop_rate = 1.0;
  cfg.duplicate_rate = 1.0;
  cfg.corrupt_rate = 1.0;
  cfg.delay_rate = 1.0;
  cfg.fail_unit_ids = {0, 1, 2};
  cfg.unit_failure_rate = 1.0;
  cfg.dead_ranks = {1, 2};
  FaultInjector inj(cfg);
  for (int i = 0; i < 50; ++i) {
    const FaultInjector::Action a = inj.next_action();
    EXPECT_FALSE(a.drop);
    EXPECT_FALSE(a.duplicate);
    EXPECT_FALSE(a.corrupt);
    EXPECT_EQ(a.delay.count(), 0);
    EXPECT_FALSE(inj.unit_should_fail(static_cast<std::uint64_t>(i)));
    EXPECT_FALSE(inj.rank_dead(i % 4));
  }
  EXPECT_EQ(inj.dropped(), 0u);
  EXPECT_EQ(inj.unit_faults(), 0u);
}

TEST(FaultInjector, RankZeroIsNeverDead) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.dead_ranks = {0, 2};
  FaultInjector inj(cfg);
  EXPECT_FALSE(inj.rank_dead(0));  // the root cannot be configured away
  EXPECT_FALSE(inj.rank_dead(1));
  EXPECT_TRUE(inj.rank_dead(2));
}

TEST(FaultInjector, FailUnitIdsAlwaysThrow) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.fail_unit_ids = {7};
  FaultInjector inj(cfg);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(inj.unit_should_fail(7));   // every attempt, not a rate
    EXPECT_FALSE(inj.unit_should_fail(8));  // rate is zero for the rest
  }
  EXPECT_EQ(inj.unit_faults(), 10u);
}

// ---------------------------------------------------------------------------
// Fabric behavior under forced fault classes (rates pinned to 0 or 1 so the
// outcome is schedule-independent).

TEST(FaultyFabric, DropRateOneDeliversNothing) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.drop_rate = 1.0;
  FaultInjector inj(cfg);
  Communicator comm(2);
  comm.set_fault_injector(&inj);
  comm.send(0, 1, kTagNoWork, {1, 2, 3});
  comm.send(0, 1, kTagNoWork);
  EXPECT_EQ(comm.pending(1), 0u);
  EXPECT_EQ(inj.dropped(), 2u);
}

TEST(FaultyFabric, DuplicateRateOneDeliversTwice) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.duplicate_rate = 1.0;
  FaultInjector inj(cfg);
  Communicator comm(2);
  comm.set_fault_injector(&inj);
  comm.send(0, 1, kTagWorkRequest, {9});
  EXPECT_EQ(comm.pending(1), 2u);
  const Message m1 = comm.recv(1);
  const Message m2 = comm.recv(1);
  EXPECT_EQ(m1.payload, m2.payload);
  EXPECT_EQ(inj.duplicated(), 1u);
}

TEST(FaultyFabric, DelayedMessageStillArrives) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.delay_rate = 1.0;
  cfg.delay = std::chrono::microseconds(2000);
  FaultInjector inj(cfg);
  Communicator comm(2);
  comm.set_fault_injector(&inj);
  comm.send(0, 1, kTagShutdown, {5});
  EXPECT_EQ(comm.pending(1), 1u);  // counted while still in the delay queue
  const Message m = comm.recv(1);  // blocks until due
  EXPECT_EQ(m.tag, kTagShutdown);
  EXPECT_EQ(m.payload[0], 5);
  EXPECT_EQ(inj.delayed(), 1u);
}

TEST(FaultyFabric, CorruptedTransferFailsTheCrc) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.corrupt_rate = 1.0;
  FaultInjector inj(cfg);
  Communicator comm(2);
  comm.set_fault_injector(&inj);
  Subdomain s = make_root_subdomain({{0, 0}, {1, 0}, {0.5, 1}});
  comm.send(0, 1, kTagWorkTransfer, serialize({WorkUnit::Kind::kBlDecompose, s, {}}));
  const Message m = comm.recv(1);
  EXPECT_EQ(inj.corrupted(), 1u);
  EXPECT_THROW(deserialize_work(m.payload), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Wire format: round trips over both unit kinds, CRC detection of every
// single-byte corruption, truncation.

WorkUnit sample_bl_unit(bool finalized) {
  Subdomain s = make_root_subdomain({{0, 0}, {1, 0}, {0.5, 1}, {2, 2}, {3, 1}});
  s.cuts = {{CutAxis::kVertical, 0.75, true},
            {CutAxis::kHorizontal, 1.25, false}};
  s.level = 3;
  if (finalized) s.finalize();
  WorkUnit u{WorkUnit::Kind::kBlDecompose, std::move(s), {}};
  u.id = 0x1122334455667788ull;
  u.failed_ranks = 0b1010;
  return u;
}

WorkUnit sample_inv_unit() {
  InviscidSubdomain s;
  s.border = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  s.corners = {0, 1, 2, 3};
  s.level = 2;
  s.hole_segments = {{{1, 1}, {2, 1}}};
  s.hole_seeds = {{1.5, 1.05}};
  WorkUnit u{WorkUnit::Kind::kInviscidDecouple, {}, std::move(s)};
  u.id = 42;
  u.failed_ranks = 1;
  return u;
}

TEST(WireFormat, Crc32MatchesTheStandardCheckValue) {
  // IEEE 802.3 reflected CRC-32 of "123456789" is the canonical 0xcbf43926.
  // Guards the sliced implementation against self-consistent-but-wrong
  // table mistakes, and pins lengths that exercise the 8-byte fast path,
  // the byte-at-a-time tail, and both together.
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xcbf43926u);
  std::vector<std::uint8_t> buf(1027);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 131u + 7u);
  }
  // Byte-at-a-time reference, inline.
  const auto reference = [](const std::uint8_t* d, std::size_t n) {
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i) {
      c ^= d[i];
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
    }
    return c ^ 0xffffffffu;
  };
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{8}, std::size_t{9}, std::size_t{64},
                              buf.size()}) {
    EXPECT_EQ(crc32(buf.data(), n), reference(buf.data(), n)) << "len " << n;
  }
}

TEST(WireFormat, RoundTripPreservesIdentityAndFailureMask) {
  for (const WorkUnit& u :
       {sample_bl_unit(false), sample_bl_unit(true), sample_inv_unit()}) {
    const WorkUnit back = deserialize_work(serialize(u));
    EXPECT_EQ(back.kind, u.kind);
    EXPECT_EQ(back.id, u.id);
    EXPECT_EQ(back.failed_ranks, u.failed_ranks);
    if (u.kind == WorkUnit::Kind::kBlDecompose) {
      EXPECT_EQ(back.bl.xsorted, u.bl.xsorted);
      EXPECT_EQ(back.bl.level, u.bl.level);
    } else {
      EXPECT_EQ(back.inv.border, u.inv.border);
      EXPECT_EQ(back.inv.hole_seeds, u.inv.hole_seeds);
    }
  }
}

TEST(WireFormat, EverySingleByteCorruptionIsDetected) {
  // CRC-32 detects any burst error shorter than 32 bits, so flipping bits
  // within one byte -- anywhere, including inside the trailer itself -- must
  // raise. Exhaustive over every byte position of both payload families.
  const auto bytes = serialize(sample_bl_unit(false));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto bad = bytes;
    bad[i] ^= 0x41;
    EXPECT_THROW(deserialize_work(bad), std::runtime_error) << "byte " << i;
  }
  const std::vector<std::array<Vec2, 3>> tris{
      {{Vec2{0, 0}, Vec2{1, 0}, Vec2{0, 1}}},
      {{Vec2{-2, 3}, Vec2{0.5, 0.5}, Vec2{9, 9}}}};
  const auto tri_bytes = serialize_triangles(tris);
  for (std::size_t i = 0; i < tri_bytes.size(); ++i) {
    auto bad = tri_bytes;
    bad[i] ^= 0x01;
    EXPECT_THROW(deserialize_triangles(bad), std::runtime_error)
        << "byte " << i;
  }
}

TEST(WireFormat, TruncationAlwaysThrows) {
  const auto bytes = serialize(sample_inv_unit());
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, bytes.size() / 2,
        bytes.size() - 1}) {
    auto bad = bytes;
    bad.resize(n);
    EXPECT_THROW(deserialize_work(bad), std::runtime_error) << "len " << n;
  }
  auto tri_bytes = serialize_triangles({{{Vec2{0, 0}, Vec2{1, 0}, Vec2{0, 1}}}});
  tri_bytes.pop_back();
  EXPECT_THROW(deserialize_triangles(tri_bytes), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Pool-level fault tolerance.

TEST(PoolFaults, EmptyInputReturnsImmediately) {
  // Regression: an empty initial set used to leave `outstanding` at zero
  // forever -- no unit ever completed, shutdown was never broadcast, and
  // every thread blocked until the watchdog. Must return at once instead.
  PoolOptions opts;
  opts.nranks = 4;
  GradedSizing sizing;
  MergedMesh out;
  const auto t0 = mono_now();
  const PoolStats stats = run_pool({}, sizing, opts, out);
  const auto elapsed = mono_now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5);
  EXPECT_EQ(stats.status, RunStatus::kOk);
  EXPECT_EQ(out.triangle_count(), 0u);
  EXPECT_EQ(stats.steals, 0u);
  ASSERT_EQ(stats.tasks_per_rank.size(), 4u);
  for (const std::size_t n : stats.tasks_per_rank) EXPECT_EQ(n, 0u);
}

/// The initial inviscid work set of a small but real domain (mirrors the
/// sequential pipeline's phase-2 input).
struct ChaosFixture {
  GradedSizing sizing;
  std::vector<WorkUnit> initial;
  PoolOptions opts;

  ChaosFixture() {
    Options cfg;
    cfg.airfoil = make_naca0012(120);
    cfg.growth_kind = GrowthKind::kGeometric;
    cfg.first_height = 8e-4;
    cfg.growth_ratio = 1.3;
    cfg.max_layers = 25;
    cfg.farfield_chords = 6.0;
    cfg.inviscid_target_triangles = 4000.0;
    cfg.bl_min_points = 600;
    cfg.bl_max_level = 8;

    const BoundaryLayer bl = build_boundary_layer(cfg.airfoil, blayer_options(cfg));
    MergedMesh bl_mesh;
    triangulate_boundary_layer(bl, bl_decompose_options(cfg), bl_mesh, nullptr,
                               nullptr);
    const InviscidDomain domain = make_inviscid_domain(bl, cfg, bl_mesh);
    sizing = domain.sizing;
    for (InviscidSubdomain& quad : initial_quadrants(domain)) {
      initial.push_back(
          WorkUnit{WorkUnit::Kind::kInviscidDecouple, {}, std::move(quad)});
    }

    opts.nranks = 4;
    opts.steal_threshold = 1.0;  // every idle rank asks for work
    opts.update_period = std::chrono::microseconds(50);
    opts.inviscid_target_triangles = cfg.inviscid_target_triangles;
    // Generous liveness bounds: this box oversubscribes all nine pool
    // threads onto very few cores, so a healthy communicator can be
    // scheduled away for tens of milliseconds at a time.
    opts.tuning.heartbeat_timeout = std::chrono::milliseconds(1000);
    opts.tuning.watchdog_timeout = std::chrono::seconds(120);
  }
};

TEST(PoolFaults, ChaosRunProducesTheFaultFreeMesh) {
  const ChaosFixture fx;

  // Reference: the same work with the injector disabled.
  MergedMesh clean;
  PoolStats clean_stats;
  {
    auto initial = fx.initial;
    clean_stats = run_pool(std::move(initial), fx.sizing, fx.opts, clean);
  }
  EXPECT_EQ(clean_stats.status, RunStatus::kOk);
  EXPECT_EQ(clean_stats.unit_retries, 0u);
  EXPECT_EQ(clean_stats.unit_failures, 0u);
  EXPECT_EQ(clean_stats.fallback_units, 0u);
  EXPECT_EQ(clean_stats.dropped_messages, 0u);
  EXPECT_EQ(clean_stats.corrupt_payloads, 0u);
  EXPECT_EQ(clean_stats.dead_ranks, 0u);
  EXPECT_GT(clean.triangle_count(), 0u);

  // Chaos: a lossy, corrupting, delaying fabric; one rank dead from the
  // start; one unit that throws on every in-pool attempt (unit 0 is the
  // first initial quadrant -- run_pool numbers the initial units 0..n-1).
  PoolOptions chaos_opts = fx.opts;
  chaos_opts.faults.enabled = true;
  chaos_opts.faults.seed = 2024;
  chaos_opts.faults.drop_rate = 0.08;  // >= 5% message drops
  chaos_opts.faults.duplicate_rate = 0.05;
  chaos_opts.faults.corrupt_rate = 0.05;
  chaos_opts.faults.delay_rate = 0.05;
  chaos_opts.faults.delay = std::chrono::microseconds(200);
  chaos_opts.faults.dead_ranks = {1};
  chaos_opts.faults.fail_unit_ids = {0};
  chaos_opts.max_unit_retries = 2;

  MergedMesh chaotic;
  auto initial = fx.initial;
  const PoolStats stats =
      run_pool(std::move(initial), fx.sizing, chaos_opts, chaotic);

  // Recovery is exactly-once and the fallback meshes escalated units with
  // the same deterministic expansion, so the mesh is bit-for-bit the size
  // of the fault-free one.
  EXPECT_EQ(chaotic.triangle_count(), clean.triangle_count());
  EXPECT_EQ(chaotic.point_count(), clean.point_count());
  EXPECT_EQ(stats.status, RunStatus::kOk);

  // The run actually suffered: messages were dropped, unit 0 threw through
  // its local retries on every live rank and escalated to the fallback, and
  // the dead rank was detected.
  EXPECT_GT(stats.dropped_messages, 0u);
  EXPECT_GT(stats.unit_retries, 0u);
  EXPECT_GT(stats.unit_failures, 0u);
  EXPECT_GE(stats.requeued_units, 1u);
  EXPECT_GE(stats.fallback_units, 1u);
  EXPECT_EQ(stats.dead_ranks, 1u);
  // The re-queue of unit 0 lands on rank 1 before the watchdog has declared
  // it dead, so the reliable channel must retransmit at least once before
  // recovering the unit from the donor's master copy.
  EXPECT_GT(stats.retransmits, 0u);
}

TEST(PoolFaults, ChaosRecoversOnTheCopyPathWithCoalescing) {
  // The deep-copy transport stays a first-class citizen behind the A/B
  // flag: the same lossy fabric with --rma=off and small-message coalescing
  // on (so injected drops and corruption also hit multi-message batches)
  // must recover to the fault-free mesh without ever touching the window.
  const ChaosFixture fx;

  MergedMesh clean;
  {
    auto initial = fx.initial;
    const PoolStats s = run_pool(std::move(initial), fx.sizing, fx.opts, clean);
    EXPECT_EQ(s.status, RunStatus::kOk);
  }

  PoolOptions chaos_opts = fx.opts;
  chaos_opts.tuning.rma = false;
  chaos_opts.tuning.coalesce_delay = std::chrono::microseconds(150);
  chaos_opts.faults.enabled = true;
  chaos_opts.faults.seed = 31337;
  chaos_opts.faults.drop_rate = 0.06;
  chaos_opts.faults.duplicate_rate = 0.05;
  chaos_opts.faults.corrupt_rate = 0.05;

  MergedMesh chaotic;
  auto initial = fx.initial;
  const PoolStats stats =
      run_pool(std::move(initial), fx.sizing, chaos_opts, chaotic);

  EXPECT_EQ(stats.status, RunStatus::kOk);
  EXPECT_EQ(chaotic.triangle_count(), clean.triangle_count());
  EXPECT_EQ(chaotic.point_count(), clean.point_count());
  EXPECT_EQ(stats.zero_copy_hits, 0u);
  EXPECT_EQ(stats.window_bytes, 0u);
  EXPECT_GT(stats.dropped_messages, 0u);
  EXPECT_GT(stats.coalesced_messages, 0u);
}

}  // namespace
}  // namespace aero
