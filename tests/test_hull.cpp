// Monotone chain hulls and the exact lifted-space predicates of the
// projection-based decomposition.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geom/predicates.hpp"  // aerolint: allow(public-api)
#include "hull/monotone_chain.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

TEST(LowerHull, Triangle) {
  const std::vector<Vec2> pts{{0, 0}, {1, 5}, {2, 0}};
  const auto h = lower_hull(pts);
  EXPECT_EQ(h, (std::vector<std::uint32_t>{0, 2}));
}

TEST(LowerHull, CollinearMiddleRemoved) {
  const std::vector<Vec2> pts{{0, 0}, {1, 0}, {2, 0}};
  const auto h = lower_hull(pts);
  EXPECT_EQ(h, (std::vector<std::uint32_t>{0, 2}));
}

TEST(LowerHull, RandomIsBelowAllPoints) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < 500; ++i) pts.push_back({d(rng), d(rng)});
  std::sort(pts.begin(), pts.end(), LessXY{});
  const auto h = lower_hull(pts);
  // Every point is on or above every hull segment.
  for (std::size_t k = 0; k + 1 < h.size(); ++k) {
    for (const Vec2 p : pts) {
      EXPECT_GE(orient2d(pts[h[k]], pts[h[k + 1]], p), 0.0);
    }
  }
}

TEST(ConvexHull, SquareWithInteriorAndBoundaryPoints) {
  std::vector<Vec2> pts{{0, 0}, {2, 0}, {2, 2}, {0, 2},
                        {1, 0}, {1, 1}, {0, 1}};
  std::sort(pts.begin(), pts.end(), LessXY{});
  const auto h = convex_hull_ccw(pts);
  // Collinear boundary points (1,0) and (0,1) are KEPT.
  EXPECT_EQ(h.size(), 6u);
  // CCW orientation: positive shoelace.
  double area2 = 0.0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    area2 += pts[h[i]].cross(pts[h[(i + 1) % h.size()]]);
  }
  EXPECT_GT(area2, 0.0);
  EXPECT_NEAR(area2, 8.0, 1e-12);
}

TEST(LiftedW, ComparesSquaredDistanceExactly) {
  const Vec2 m{0.5, 0.5};
  EXPECT_EQ(lifted_w_compare(m, {0.5, 0.625}, {0.5, 0.75}), 1);
  EXPECT_EQ(lifted_w_compare(m, {0.5, 0.75}, {0.5, 0.625}), -1);
  // Symmetric points with exactly representable coordinates: exactly equal
  // squared distances. (Decimal coordinates like 0.3/0.7 are NOT symmetric
  // after rounding to binary, and the exact predicate notices.)
  EXPECT_EQ(lifted_w_compare(m, {0.25, 0.5}, {0.75, 0.5}), 0);
  EXPECT_EQ(lifted_w_compare(m, {0.25, 0.375}, {0.75, 0.625}), 0);
  // One-ulp perturbation is detected.
  EXPECT_EQ(lifted_w_compare(m, {0.25, 0.5},
                             {std::nextafter(0.75, 1.0), 0.5}), 1);
}

TEST(LiftedTurn, CocircularAboutMedianCenteredCircleIsZero) {
  // Points on a circle centered on the vertical median line x = m.x lift to
  // collinear points.
  const Vec2 m{0.0, 0.0};
  const Vec2 a{0.0, -1.0};   // angle -90
  const Vec2 b{1.0, 0.0};    // angle 0
  const Vec2 c{0.0, 1.0};    // angle 90
  EXPECT_EQ(lifted_turn(m, a, b, c, CutAxis::kVertical), 0);
  // Point strictly inside the circle lifts strictly below the chord.
  const Vec2 inside{0.5, 0.0};
  EXPECT_NE(lifted_turn(m, a, inside, c, CutAxis::kVertical), 0);
}

TEST(LiftedTurn, MatchesRoundedEvaluationWhenSafe) {
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (int i = 0; i < 5000; ++i) {
    const Vec2 m{d(rng), d(rng)};
    const Vec2 p{d(rng), d(rng)}, q{d(rng), d(rng)}, r{d(rng), d(rng)};
    for (const CutAxis axis : {CutAxis::kVertical, CutAxis::kHorizontal}) {
      const double up = lifted_u(p, axis), uq = lifted_u(q, axis),
                   ur = lifted_u(r, axis);
      const double wp = (p - m).norm2(), wq = (q - m).norm2(),
                   wr = (r - m).norm2();
      const double det = (uq - up) * (wr - wp) - (ur - up) * (wq - wp);
      const int exact = lifted_turn(m, p, q, r, axis);
      if (std::fabs(det) > 1e-9) {
        EXPECT_EQ(exact, det > 0 ? 1 : -1);
      }
    }
  }
}

TEST(LiftedLowerHull, PathOfGridColumnIsChain) {
  // A single vertical column of points, vertical median line through them:
  // the lifted points form a parabola in w; the hull spans them all.
  std::vector<Vec2> pts;
  for (int j = 0; j < 9; ++j) pts.push_back({0.0, j * 1.0});
  const Vec2 m{0.0, 4.0};
  const auto h = lifted_lower_hull(pts, m, CutAxis::kVertical);
  // u = y strictly increasing, w convex: all points are on the hull.
  EXPECT_EQ(h.size(), pts.size());
}

TEST(LiftedLowerHull, EqualURunsOrderedByW) {
  // Two points at the same u (y): only the closer one can start the chain.
  std::vector<Vec2> pts{{3.0, 0.0}, {1.0, 0.0}, {0.5, 1.0}, {0.5, 2.0}};
  std::sort(pts.begin(), pts.end(), LessYX{});
  const Vec2 m{0.0, 0.0};
  const auto h = lifted_lower_hull(pts, m, CutAxis::kVertical);
  ASSERT_GE(h.size(), 2u);
  // First hull point is the equal-u point with smaller w: (1, 0).
  EXPECT_EQ(pts[h[0]], (Vec2{1.0, 0.0}));
}

TEST(CircumcenterSide, KnownPositions) {
  // Circumcenter of this triangle is (1, 1).
  const Vec2 a{0, 0}, b{2, 0}, c{2, 2};
  EXPECT_EQ(circumcenter_side(a, b, c, CutAxis::kVertical, 0.0), 1);
  EXPECT_EQ(circumcenter_side(a, b, c, CutAxis::kVertical, 2.0), -1);
  EXPECT_EQ(circumcenter_side(a, b, c, CutAxis::kVertical, 1.0), 0);
  EXPECT_EQ(circumcenter_side(a, b, c, CutAxis::kHorizontal, 0.5), 1);
  EXPECT_EQ(circumcenter_side(a, b, c, CutAxis::kHorizontal, 1.0), 0);
  EXPECT_EQ(circumcenter_side(a, b, c, CutAxis::kHorizontal, 1.5), -1);
}

TEST(CircumcenterSide, OrientationIndependent) {
  const Vec2 a{0, 0}, b{2, 0}, c{2, 2};
  for (const double line : {0.3, 0.99999999, 1.0, 1.1}) {
    EXPECT_EQ(circumcenter_side(a, b, c, CutAxis::kVertical, line),
              circumcenter_side(a, c, b, CutAxis::kVertical, line));
  }
}

TEST(CircumcenterSide, AgreesWithRoundedCircumcenter) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> d(-10.0, 10.0);
  int checked = 0;
  for (int i = 0; i < 5000; ++i) {
    const Vec2 a{d(rng), d(rng)}, b{d(rng), d(rng)}, c{d(rng), d(rng)};
    if (orient2d(a, b, c) == 0.0) continue;
    // Rounded circumcenter.
    const Vec2 ab = b - a, ac = c - a;
    const double den = 2.0 * ab.cross(ac);
    const double ux = (ac.y * ab.norm2() - ab.y * ac.norm2()) / den;
    const double ccx = a.x + ux;
    const double line = d(rng);
    if (std::fabs(ccx - line) < 1e-6) continue;  // too close to trust rounding
    EXPECT_EQ(circumcenter_side(a, b, c, CutAxis::kVertical, line),
              ccx > line ? 1 : -1);
    ++checked;
  }
  EXPECT_GT(checked, 4000);
}

}  // namespace
}  // namespace aero
