// Airfoil geometry generation: NACA sections, multi-element configuration,
// normals, interior points.

#include <gtest/gtest.h>

#include <cmath>

#include "airfoil/geometry.hpp"
#include "airfoil/naca.hpp"
#include "geom/predicates.hpp"  // aerolint: allow(public-api)
#include "geom/segment.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

TEST(Naca, CodeParsing) {
  const Naca4 p = Naca4::from_code("2412");
  EXPECT_DOUBLE_EQ(p.max_camber, 0.02);
  EXPECT_DOUBLE_EQ(p.camber_position, 0.4);
  EXPECT_DOUBLE_EQ(p.thickness, 0.12);
  EXPECT_THROW(Naca4::from_code("12"), std::invalid_argument);
}

TEST(Naca, ThicknessProfile) {
  const Naca4 p = Naca4::from_code("0012");
  EXPECT_DOUBLE_EQ(naca4_thickness(p, 0.0), 0.0);
  // Closed trailing edge: thickness returns to ~0 at x=1.
  EXPECT_NEAR(naca4_thickness(p, 1.0), 0.0, 1e-4);
  // Max thickness ~ 0.06 (half of 12%) near x = 0.3.
  EXPECT_NEAR(naca4_thickness(p, 0.3), 0.06, 0.002);
}

TEST(Naca, SymmetricSectionIsSymmetric) {
  const auto poly = naca4_polyline(Naca4::from_code("0012"), 64);
  // For every point (x, y) the mirrored point (x, -y) is also present.
  for (const Vec2 p : poly) {
    bool found = false;
    for (const Vec2 q : poly) {
      if (std::fabs(q.x - p.x) < 1e-12 && std::fabs(q.y + p.y) < 1e-12) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << p;
  }
}

TEST(Naca, PolylineIsCcwAndSimple) {
  for (const char* code : {"0012", "2412", "4412"}) {
    for (const TrailingEdge te : {TrailingEdge::kSharp, TrailingEdge::kBlunt}) {
      const auto poly = naca4_polyline(Naca4::from_code(code, te), 80);
      double area2 = 0.0;
      for (std::size_t i = 0; i < poly.size(); ++i) {
        area2 += poly[i].cross(poly[(i + 1) % poly.size()]);
      }
      EXPECT_GT(area2, 0.0) << code;  // CCW
      EXPECT_TRUE(polygon_is_simple(poly)) << code;
    }
  }
}

TEST(Naca, BluntTrailingEdgeHasBase) {
  const auto sharp = naca4_polyline(
      Naca4::from_code("0012", TrailingEdge::kSharp), 64);
  const auto blunt = naca4_polyline(
      Naca4::from_code("0012", TrailingEdge::kBlunt), 64);
  // Blunt: one extra point (distinct upper/lower TE).
  EXPECT_EQ(blunt.size(), sharp.size() + 1);
  // The closing edge of the blunt polyline is the vertical base.
  const Vec2 first = blunt.front();
  const Vec2 last = blunt.back();
  EXPECT_NEAR(first.x, last.x, 1e-12);
  EXPECT_GT(std::fabs(first.y - last.y), 1e-4);
}

TEST(Element, InteriorPointIsStrictlyInside) {
  for (std::size_t e = 0; e < 3; ++e) {
    const AirfoilConfig config = make_three_element(160);
    const Vec2 p = config.elements[e].interior_point();
    EXPECT_TRUE(point_in_polygon(p, config.elements[e].surface))
        << config.elements[e].name;
  }
  // Thin cambered single element too.
  AirfoilElement thin{.name = "thin",
                      .surface = naca4_polyline(Naca4::from_code("4408"), 64)};
  EXPECT_TRUE(point_in_polygon(thin.interior_point(), thin.surface));
}

TEST(Element, NormalsPointOutward) {
  const AirfoilConfig config = make_naca0012(128);
  const auto& e = config.elements[0];
  const auto normals = e.vertex_normals();
  ASSERT_EQ(normals.size(), e.surface.size());
  for (std::size_t i = 0; i < normals.size(); ++i) {
    EXPECT_NEAR(normals[i].norm(), 1.0, 1e-12);
    // Marching a small step along the normal leaves the body.
    const Vec2 out = e.surface[i] + normals[i] * 1e-6;
    EXPECT_FALSE(point_in_polygon(out, e.surface)) << i;
  }
}

TEST(Element, TransformPreservesShape) {
  const AirfoilConfig config = make_naca0012(64);
  const auto& e = config.elements[0];
  const AirfoilElement t = e.transformed(2.0, 0.5, {3.0, -1.0});
  ASSERT_EQ(t.surface.size(), e.surface.size());
  // Pairwise distances scale by exactly 2.
  const double d0 = distance(e.surface[0], e.surface[10]);
  const double d1 = distance(t.surface[0], t.surface[10]);
  EXPECT_NEAR(d1, 2.0 * d0, 1e-12);
}

TEST(ThreeElement, HasAllSpecialFeatures) {
  const AirfoilConfig config = make_three_element(240);
  ASSERT_EQ(config.elements.size(), 3u);
  for (const auto& e : config.elements) {
    EXPECT_TRUE(polygon_is_simple(e.surface)) << e.name;
    double area2 = 0.0;
    for (std::size_t i = 0; i < e.surface.size(); ++i) {
      area2 += e.surface[i].cross(e.surface[(i + 1) % e.surface.size()]);
    }
    EXPECT_GT(area2, 0.0) << e.name << " must stay CCW after transforms";
  }
  // Elements do not overlap: surfaces must not intersect pairwise.
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = a + 1; b < 3; ++b) {
      const auto& sa = config.elements[a].surface;
      const auto& sb = config.elements[b].surface;
      for (std::size_t i = 0; i < sa.size(); ++i) {
        for (std::size_t j = 0; j < sb.size(); ++j) {
          const auto hit =
              intersect({sa[i], sa[(i + 1) % sa.size()]},
                        {sb[j], sb[(j + 1) % sb.size()]});
          EXPECT_FALSE(static_cast<bool>(hit))
              << config.elements[a].name << " x " << config.elements[b].name;
        }
      }
    }
  }
}

TEST(CarveCove, CreatesConcavityButStaysSimple) {
  auto poly = naca4_polyline(Naca4::from_code("0012"), 100);
  const auto before = poly;
  carve_cove(poly, 0.55, 0.8, 0.02);
  EXPECT_TRUE(polygon_is_simple(poly));
  // Some vertices moved inward.
  bool moved = false;
  for (std::size_t i = 0; i < poly.size(); ++i) {
    if (poly[i] != before[i]) moved = true;
  }
  EXPECT_TRUE(moved);
  // A cove means at least one reflex vertex (concave corner).
  std::size_t reflex = 0;
  for (std::size_t i = 0; i < poly.size(); ++i) {
    const Vec2 prev = poly[(i + poly.size() - 1) % poly.size()];
    const Vec2 next = poly[(i + 1) % poly.size()];
    if (orient2d(prev, poly[i], next) < 0.0) ++reflex;
  }
  EXPECT_GT(reflex, 0u);
}

}  // namespace
}  // namespace aero
