// MeshView read facade over the SoA mesh core: the versioned "AMSH" blob
// (golden bytes, round-trip, typed rejection), chunk-boundary growth of the
// backing arenas, the 32-bit capacity ceiling, and the out-of-core spill
// merge's identity with the in-RAM merge under a bounded resident budget.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "airfoil/geometry.hpp"
#include "core/merged_mesh.hpp"
#include "core/mesh_view.hpp"
#include "delaunay/chunked.hpp"  // aerolint: allow(public-api) // aerolint: allow(mesh-internal-access)
#include "runtime/parallel_driver.hpp"

namespace aero {
namespace {

MergedMesh two_triangle_mesh() {
  MergedMesh m;
  m.add_triangle({0, 0}, {1, 0}, {0, 1});
  m.add_triangle({1, 0}, {1, 1}, {0, 1});
  return m;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

TEST(MeshBlob, GoldenBytes) {
  // The serialized form is a wire/disk contract (service cache, checkpoint
  // journal); pin its exact layout, not just its round-trip behavior.
  const MergedMesh m = two_triangle_mesh();
  const std::vector<std::uint8_t> blob = MeshView(m).serialize();
  ASSERT_EQ(blob.size(),
            kMeshBlobHeaderSize + 4 * sizeof(Vec2) +
                2 * 3 * sizeof(std::uint32_t));
  EXPECT_EQ(blob[0], 'A');
  EXPECT_EQ(blob[1], 'M');
  EXPECT_EQ(blob[2], 'S');
  EXPECT_EQ(blob[3], 'H');
  std::uint32_t version;
  std::memcpy(&version, blob.data() + 4, 4);
  EXPECT_EQ(version, kMeshBlobVersion);
  EXPECT_EQ(get_u64(blob.data() + 8), 4u);   // welded points
  EXPECT_EQ(get_u64(blob.data() + 16), 2u);  // live triangles
  // Points in interned-id order: (0,0) (1,0) (0,1) (1,1).
  const double expect_coords[8] = {0, 0, 1, 0, 0, 1, 1, 1};
  double coords[8];
  std::memcpy(coords, blob.data() + kMeshBlobHeaderSize, sizeof(coords));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(coords[i], expect_coords[i]);
  // Connectivity by interned id: {0,1,2} then {1,3,2}.
  const std::uint32_t expect_ids[6] = {0, 1, 2, 1, 3, 2};
  std::uint32_t ids[6];
  std::memcpy(ids, blob.data() + kMeshBlobHeaderSize + sizeof(expect_coords),
              sizeof(ids));
  for (int i = 0; i < 6; ++i) EXPECT_EQ(ids[i], expect_ids[i]);
}

TEST(MeshBlob, RoundTripThroughOwningView) {
  MergedMesh m = two_triangle_mesh();
  m.add_triangle({1, 1}, {2, 1}, {1, 2});
  m.kill(1);  // dead records are dropped from the blob
  const std::vector<std::uint8_t> blob = MeshView(m).serialize();

  MeshView back;
  ASSERT_EQ(MeshView::parse(blob, back), MeshBlobStatus::kOk);
  EXPECT_EQ(back.point_count(), m.point_count());
  EXPECT_EQ(back.triangle_count(), m.triangle_count());
  // The owning view re-serializes to the same bytes: serialization is a
  // fixed point, which is what lets the service cache store blobs produced
  // by either kind of view interchangeably.
  EXPECT_EQ(back.serialize(), blob);
}

TEST(MeshBlob, TypedRejection) {
  const std::vector<std::uint8_t> blob = MeshView(two_triangle_mesh()).serialize();

  EXPECT_EQ(mesh_blob_status(blob.data(), 7), MeshBlobStatus::kTruncated);

  std::vector<std::uint8_t> bad = blob;
  bad[0] = 'X';
  EXPECT_EQ(mesh_blob_status(bad), MeshBlobStatus::kBadMagic);

  bad = blob;
  bad[4] = 0xee;  // future layout version
  EXPECT_EQ(mesh_blob_status(bad), MeshBlobStatus::kBadVersion);

  bad = blob;
  bad.pop_back();  // counts no longer match the payload size
  EXPECT_EQ(mesh_blob_status(bad), MeshBlobStatus::kCountMismatch);

  MeshView out;
  EXPECT_EQ(MeshView::parse(bad, out), MeshBlobStatus::kCountMismatch);
  EXPECT_EQ(out.point_count(), 0u);
  EXPECT_EQ(out.triangle_count(), 0u);
}

TEST(ChunkedStorage, GrowthCrossesChunkBoundaryWithoutRelocation) {
  // Small chunks (2^2 = 4 elements) so the test exercises many boundaries.
  ChunkedArray<int, 2> a;  // aerolint: allow(mesh-internal-access)
  std::vector<const int*> addrs;
  for (int i = 0; i < 25; ++i) {
    a.push_back(i);
    addrs.push_back(&a[static_cast<std::size_t>(i)]);
  }
  ASSERT_EQ(a.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(a[static_cast<std::size_t>(i)], i);
    // Grow-only chunks never relocate: the address captured at insertion
    // time stays valid (this is what lets readers hold references across
    // concurrent appends).
    EXPECT_EQ(&a[static_cast<std::size_t>(i)], addrs[static_cast<std::size_t>(i)]);
  }
}

TEST(MeshView, SerializeAcrossDefaultChunkBoundary) {
  // Push the point arena past its first 2^14-element chunk and check the
  // chunk-wise blob copy against the element-wise accessors.
  MergedMesh m;
  const int side = 140;  // (side+1)^2 = 19881 points > 16384
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      const Vec2 a{static_cast<double>(x), static_cast<double>(y)};
      const Vec2 b{static_cast<double>(x + 1), static_cast<double>(y)};
      const Vec2 c{static_cast<double>(x), static_cast<double>(y + 1)};
      m.add_triangle(a, b, c);
    }
  }
  ASSERT_GT(m.point_count(), ChunkedArray<Vec2>::kChunkSize);  // aerolint: allow(mesh-internal-access)

  const std::vector<std::uint8_t> blob = MeshView(m).serialize();
  MeshView back;
  ASSERT_EQ(MeshView::parse(blob, back), MeshBlobStatus::kOk);
  ASSERT_EQ(back.point_count(), m.point_count());
  ASSERT_EQ(back.triangle_count(), m.triangle_count());
  for (std::uint32_t i = 0; i < m.point_count(); ++i) {
    ASSERT_EQ(back.point(i).x, m.point(i).x);
    ASSERT_EQ(back.point(i).y, m.point(i).y);
  }
  for (std::size_t t = 0; t < m.record_count(); ++t) {
    ASSERT_EQ(back.tri(t), m.tri(t));
  }
}

TEST(MergedMesh, CapacityCeilingThrowsMeshTooLarge) {
  MergedMesh m;
  m.set_capacity_limit_for_test(3);
  // Exactly at the ceiling is fine: ids 0..2.
  m.add_triangle({0, 0}, {1, 0}, {0, 1});
  EXPECT_EQ(m.point_count(), 3u);
  // Re-interning existing coordinates allocates no ids and must not throw.
  m.add_triangle({0, 0}, {1, 0}, {0, 1});
  // The first new coordinate past the ceiling throws the typed overflow.
  EXPECT_THROW(m.add_point({2, 2}), MeshTooLargeError);
  EXPECT_THROW(m.add_triangle({0, 0}, {1, 0}, {5, 5}), MeshTooLargeError);
  // The mesh already assembled stays intact after the rejection.
  EXPECT_EQ(m.point_count(), 3u);
  EXPECT_EQ(m.triangle_count(), 2u);
}

/// Canonical multiset of live triangles: vertex-rotated so the
/// lexicographically smallest coordinate leads (orientation preserved),
/// then sorted. Two meshes with equal signatures contain exactly the same
/// triangles regardless of merge order.
std::vector<std::array<double, 6>> triangle_signature(const MergedMesh& m) {
  std::vector<std::array<double, 6>> sig;
  sig.reserve(m.triangle_count());
  m.for_each_triangle([&](Vec2 a, Vec2 b, Vec2 c) {
    std::array<std::array<double, 2>, 3> v = {{{a.x, a.y}, {b.x, b.y}, {c.x, c.y}}};
    int lead = 0;
    for (int i = 1; i < 3; ++i) {
      if (v[static_cast<std::size_t>(i)] < v[static_cast<std::size_t>(lead)]) lead = i;
    }
    std::array<double, 6> row;
    for (int i = 0; i < 3; ++i) {
      const auto& p = v[static_cast<std::size_t>((lead + i) % 3)];
      row[static_cast<std::size_t>(2 * i)] = p[0];
      row[static_cast<std::size_t>(2 * i + 1)] = p[1];
    }
    sig.push_back(row);
  });
  std::sort(sig.begin(), sig.end());
  return sig;
}

Options spill_case() {
  Options cfg;
  cfg.airfoil = make_naca0012(120);
  cfg.growth_kind = GrowthKind::kGeometric;
  cfg.first_height = 8e-4;
  cfg.growth_ratio = 1.3;
  cfg.max_layers = 25;
  cfg.farfield_chords = 6.0;
  cfg.inviscid_target_triangles = 8000.0;
  cfg.bl_min_points = 600;
  cfg.bl_max_level = 8;
  cfg.ranks = 4;
  cfg.threads_per_rank = 1;
  return cfg;
}

TEST(SpillMerge, BitIdenticalToInRamMergeAtFourRanks) {
  const Options in_ram = spill_case();
  Options spilled = spill_case();
  spilled.merge_spill_dir = testing::TempDir();
  spilled.merge_resident_mb = 1;  // force many windows

  const ParallelMeshResult a = parallel_generate_mesh(in_ram);
  const ParallelMeshResult b = parallel_generate_mesh(spilled);
  ASSERT_EQ(a.status, RunStatus::kOk);
  ASSERT_EQ(b.status, RunStatus::kOk);

  // The out-of-core path spilled instead of holding results resident...
  EXPECT_EQ(a.bl_pool.spill_records + a.inviscid_pool.spill_records, 0u);
  EXPECT_GT(b.bl_pool.spill_records + b.inviscid_pool.spill_records, 0u);
  EXPECT_EQ(b.bl_pool.spill_write_failures + b.inviscid_pool.spill_write_failures,
            0u);

  // ...and produced exactly the same mesh: same welded points, same
  // triangle multiset, same conformity.
  EXPECT_EQ(b.mesh.point_count(), a.mesh.point_count());
  EXPECT_EQ(b.mesh.triangle_count(), a.mesh.triangle_count());
  EXPECT_EQ(triangle_signature(b.mesh), triangle_signature(a.mesh));
  const auto conf = b.mesh.check_conformity();
  EXPECT_TRUE(conf.manifold);
  EXPECT_TRUE(conf.orientation_ok);
}

TEST(SpillMerge, ResidentBudgetBoundsTheMergeWindows) {
  Options cfg = spill_case();
  cfg.airfoil = make_naca0012(300);  // spill well past the 1 MiB budget
  cfg.merge_spill_dir = testing::TempDir();
  cfg.merge_resident_mb = 1;

  const ParallelMeshResult r = parallel_generate_mesh(cfg);
  ASSERT_EQ(r.status, RunStatus::kOk);

  const std::size_t budget = std::size_t{1} << 20;
  const std::size_t spilled_bytes =
      r.bl_pool.spill_bytes + r.inviscid_pool.spill_bytes;
  ASSERT_GT(spilled_bytes, budget)
      << "scenario too small to exercise the out-of-core path";

  // The merge ran windowed (more than one window somewhere) and never held
  // more than the budget resident -- except that a single record larger
  // than the whole budget still merges as its own window (records are
  // never split), so the bound is max(budget, largest record).
  EXPECT_GT(r.bl_pool.merge_windows + r.inviscid_pool.merge_windows, 2u);
  EXPECT_LE(r.bl_pool.merge_resident_peak_bytes,
            std::max(budget, r.bl_pool.spill_max_record_bytes));
  EXPECT_LE(r.inviscid_pool.merge_resident_peak_bytes,
            std::max(budget, r.inviscid_pool.spill_max_record_bytes));
  EXPECT_GT(r.bl_pool.merge_resident_peak_bytes +
                r.inviscid_pool.merge_resident_peak_bytes,
            0u);
}

}  // namespace
}  // namespace aero
