// Graded Delaunay decoupling: the k-rule spacing, quadrant layout, '+'
// splits, and the central decoupling property -- independent refinement
// never touches a shared border.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "delaunay/stats.hpp"  // aerolint: allow(public-api)
#include "inviscid/decouple.hpp"  // aerolint: allow(public-api)

namespace aero {
namespace {

constexpr double kSqrt3 = 1.7320508075688772;

GradedSizing test_sizing() {
  return GradedSizing{BBox2{{-1, -1}, {1, 1}}, 0.05, 0.3};
}

TEST(Sizing, DistanceAndGrading) {
  const GradedSizing s = test_sizing();
  EXPECT_DOUBLE_EQ(s.distance_to_inner({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(s.distance_to_inner({3, 0}), 2.0);
  EXPECT_DOUBLE_EQ(s.distance_to_inner({4, 5}), 5.0);
  EXPECT_DOUBLE_EQ(s.length_at({0, 0}), 0.05);
  EXPECT_DOUBLE_EQ(s.length_at({3, 0}), 0.05 + 0.6);
  EXPECT_GT(s.area_at({10, 10}), s.area_at({0, 0}));
}

TEST(Sizing, PaperEquationOne) {
  const GradedSizing s = test_sizing();
  const Vec2 p{2, 3};
  EXPECT_DOUBLE_EQ(s.k_at(p),
                   0.5 * std::sqrt(s.area_at(p) / std::sqrt(2.0)));
}

TEST(DecoupleSegment, SpacingWithinBounds) {
  const GradedSizing s = test_sizing();
  const Vec2 a{-5, 2}, b{7, 2};
  const auto pts = decouple_segment(a, b, s);
  ASSERT_GT(pts.size(), 2u);
  std::vector<Vec2> full{a};
  full.insert(full.end(), pts.begin(), pts.end());
  full.push_back(b);
  for (std::size_t i = 0; i + 1 < full.size(); ++i) {
    const double d = distance(full[i], full[i + 1]);
    const double k_here = s.k_at(full[i]);
    const double k_next = s.k_at(full[i + 1]);
    // Paper's bounds: 2k/sqrt(3) <= D < 2k at the current vertex, and the
    // Delaunay repair D < 2 k_next (the final gap may be shorter -- denser
    // is conservative).
    EXPECT_LT(d, 2.0 * k_here + 1e-12);
    EXPECT_LT(d, 2.0 * k_next + 1e-12);
    if (i + 2 < full.size()) {
      EXPECT_GE(d, 2.0 * k_here / kSqrt3 - 1e-12);
    }
  }
}

TEST(DecoupleSegment, GradedDensity) {
  // March away from the inner box: spacing must grow monotonically-ish.
  const GradedSizing s = test_sizing();
  const auto pts = decouple_segment({1, 0}, {30, 0}, s);
  ASSERT_GT(pts.size(), 4u);
  const double first_gap = distance(Vec2{1, 0}, pts[0]);
  const double late_gap = distance(pts[pts.size() - 2], pts.back());
  EXPECT_GT(late_gap, 3.0 * first_gap);
}

TEST(DecoupleSegment, ZeroLengthIsEmpty) {
  const GradedSizing s = test_sizing();
  EXPECT_TRUE(decouple_segment({1, 1}, {1, 1}, s).empty());
}

InviscidDomain test_domain() {
  InviscidDomain d;
  d.inner = BBox2{{-1, -1}, {1, 1}};
  d.outer = BBox2{{-8, -8}, {8, 8}};
  d.sizing = GradedSizing{d.inner, 0.08, 0.3};
  return d;
}

TEST(Quadrants, SharedBordersIdentical) {
  const auto quads = initial_quadrants(test_domain());
  ASSERT_EQ(quads.size(), 4u);
  // Collect every border edge; each diagonal edge must appear exactly twice
  // (once per adjacent quadrant) with identical coordinates.
  std::map<std::pair<std::pair<double, double>, std::pair<double, double>>,
           int>
      edges;
  for (const auto& q : quads) {
    for (std::size_t i = 0; i < q.border.size(); ++i) {
      const Vec2 a = q.border[i];
      const Vec2 b = q.border[(i + 1) % q.border.size()];
      auto ka = std::make_pair(a.x, a.y);
      auto kb = std::make_pair(b.x, b.y);
      if (kb < ka) std::swap(ka, kb);
      ++edges[{ka, kb}];
    }
  }
  std::size_t shared = 0;
  for (const auto& [k, c] : edges) {
    EXPECT_LE(c, 2);
    if (c == 2) ++shared;
  }
  EXPECT_GT(shared, 8u);  // the four diagonals are finely discretized
}

TEST(Quadrants, ConvexCcwPolygons) {
  for (const auto& q : initial_quadrants(test_domain())) {
    double area2 = 0.0;
    for (std::size_t i = 0; i < q.border.size(); ++i) {
      area2 += q.border[i].cross(q.border[(i + 1) % q.border.size()]);
    }
    EXPECT_GT(area2, 0.0);
  }
}

TEST(PlusSplit, FourConvexChildrenCoverParent) {
  auto quads = initial_quadrants(test_domain());
  const double parent_est = quads[0].estimated_triangles(test_domain().sizing);
  const auto children = plus_split(quads[0], test_domain().sizing);
  ASSERT_EQ(children.size(), 4u);
  double child_est = 0.0;
  for (const auto& c : children) {
    EXPECT_GE(c.border.size(), 4u);
    EXPECT_EQ(c.level, quads[0].level + 1);
    child_est += c.estimated_triangles(test_domain().sizing);
  }
  // Children tile the parent: estimates agree within the integration error.
  EXPECT_NEAR(child_est, parent_est, 0.25 * parent_est);
}

TEST(PlusSplit, NearBodyNeverSplits) {
  InviscidDomain d = test_domain();
  d.bl_interface = {{{-0.5, -0.5}, {0.5, -0.5}},
                    {{0.5, -0.5}, {0.0, 0.5}},
                    {{0.0, 0.5}, {-0.5, -0.5}}};
  d.hole_seeds = {{0.0, 0.0}};
  const auto nb = near_body_subdomain(d);
  EXPECT_TRUE(plus_split(nb, d.sizing).empty());
}

TEST(DecoupleRecursive, ReachesTarget) {
  auto quads = initial_quadrants(test_domain());
  const double parent_est =
      quads[0].estimated_triangles(test_domain().sizing);
  const auto leaves = decouple_recursive(std::move(quads[0]),
                                         test_domain().sizing,
                                         parent_est / 10.0, 8);
  EXPECT_GT(leaves.size(), 4u);
  for (const auto& leaf : leaves) {
    // Leaves meet the target unless the recursion cap or geometry stopped
    // them; all must still be valid polygons.
    EXPECT_GE(leaf.border.size(), 4u);
  }
}

TEST(Refinement, DecoupledBordersUntouched) {
  // THE decoupling property: refine two adjacent subdomains independently
  // and verify the shared border vertices are exactly the pre-refinement
  // decoupled points on both sides.
  const InviscidDomain d = test_domain();
  auto quads = initial_quadrants(d);

  const auto boundary_points_on =
      [](const TriangulateResult& r, auto predicate) {
        std::set<std::pair<double, double>> pts;
        r.mesh.for_each_triangle([&](TriIndex t) {
          const MeshTri& mt = r.mesh.tri(t);
          for (int i = 0; i < 3; ++i) {
            if (!mt.constrained[i]) continue;
            for (const VertIndex v :
                 {mt.v[(i + 1) % 3], mt.v[(i + 2) % 3]}) {
              const Vec2 p = r.mesh.point(v);
              if (predicate(p)) pts.insert({p.x, p.y});
            }
          }
        });
        return pts;
      };

  // Bottom (quads[0]) and right (quads[1]) share the diagonal from
  // (8,-8) to (1,-1).
  const auto on_diagonal = [](Vec2 p) {
    return std::fabs(p.x + p.y) < 1e-9 && p.x >= 1.0 && p.x <= 8.0;
  };
  const auto r0 = refine_subdomain(quads[0], d.sizing);
  const auto r1 = refine_subdomain(quads[1], d.sizing);
  EXPECT_EQ(r0.refine_stats.segment_splits, 0u);
  EXPECT_EQ(r1.refine_stats.segment_splits, 0u);
  const auto pts0 = boundary_points_on(r0, on_diagonal);
  const auto pts1 = boundary_points_on(r1, on_diagonal);
  EXPECT_EQ(pts0, pts1);
  EXPECT_GT(pts0.size(), 4u);
}

TEST(Refinement, QualityInsideSubdomain) {
  const InviscidDomain d = test_domain();
  auto quads = initial_quadrants(d);
  const auto r = refine_subdomain(quads[2], d.sizing);
  const MeshStats st = compute_stats(r.mesh);
  // The graded decoupling is built for Ruppert's sqrt(2) bound; interior
  // quality must reach it (protected borders could in principle block a few
  // fixes, so allow a whisker).
  EXPECT_GE(st.min_angle_deg, 19.0);
  EXPECT_TRUE(r.mesh.check_topology());
}

TEST(Refinement, SizingBoundHolds) {
  const InviscidDomain d = test_domain();
  auto quads = initial_quadrants(d);
  const auto r = refine_subdomain(quads[0], d.sizing);
  std::size_t violations = 0, total = 0;
  r.mesh.for_each_triangle([&](TriIndex t) {
    const MeshTri& mt = r.mesh.tri(t);
    if (!mt.inside) return;
    const Vec2 a = r.mesh.point(mt.v[0]);
    const Vec2 b = r.mesh.point(mt.v[1]);
    const Vec2 c = r.mesh.point(mt.v[2]);
    const Vec2 centroid{(a.x + b.x + c.x) / 3, (a.y + b.y + c.y) / 3};
    const double area = 0.5 * (b - a).cross(c - a);
    ++total;
    if (area > d.sizing.area_at(centroid) * 1.0000001) ++violations;
  });
  EXPECT_EQ(violations, 0u);
  EXPECT_GT(total, 100u);
}

}  // namespace
}  // namespace aero
