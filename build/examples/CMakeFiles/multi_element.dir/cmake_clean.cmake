file(REMOVE_RECURSE
  "CMakeFiles/multi_element.dir/multi_element.cpp.o"
  "CMakeFiles/multi_element.dir/multi_element.cpp.o.d"
  "multi_element"
  "multi_element.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_element.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
