# Empty dependencies file for multi_element.
# This may be replaced when dependencies are built.
