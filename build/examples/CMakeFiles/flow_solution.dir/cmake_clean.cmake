file(REMOVE_RECURSE
  "CMakeFiles/flow_solution.dir/flow_solution.cpp.o"
  "CMakeFiles/flow_solution.dir/flow_solution.cpp.o.d"
  "flow_solution"
  "flow_solution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_solution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
