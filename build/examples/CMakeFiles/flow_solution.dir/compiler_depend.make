# Empty compiler generated dependencies file for flow_solution.
# This may be replaced when dependencies are built.
