file(REMOVE_RECURSE
  "CMakeFiles/parallel_meshing.dir/parallel_meshing.cpp.o"
  "CMakeFiles/parallel_meshing.dir/parallel_meshing.cpp.o.d"
  "parallel_meshing"
  "parallel_meshing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_meshing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
