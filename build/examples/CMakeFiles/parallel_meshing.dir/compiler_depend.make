# Empty compiler generated dependencies file for parallel_meshing.
# This may be replaced when dependencies are built.
