
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_airfoil.cpp" "tests/CMakeFiles/aero_tests.dir/test_airfoil.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_airfoil.cpp.o.d"
  "/root/repo/tests/test_blayer.cpp" "tests/CMakeFiles/aero_tests.dir/test_blayer.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_blayer.cpp.o.d"
  "/root/repo/tests/test_cdt.cpp" "tests/CMakeFiles/aero_tests.dir/test_cdt.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_cdt.cpp.o.d"
  "/root/repo/tests/test_cluster_model.cpp" "tests/CMakeFiles/aero_tests.dir/test_cluster_model.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_cluster_model.cpp.o.d"
  "/root/repo/tests/test_distance_field.cpp" "tests/CMakeFiles/aero_tests.dir/test_distance_field.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_distance_field.cpp.o.d"
  "/root/repo/tests/test_expansion.cpp" "tests/CMakeFiles/aero_tests.dir/test_expansion.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_expansion.cpp.o.d"
  "/root/repo/tests/test_geom.cpp" "tests/CMakeFiles/aero_tests.dir/test_geom.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_geom.cpp.o.d"
  "/root/repo/tests/test_hull.cpp" "tests/CMakeFiles/aero_tests.dir/test_hull.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_hull.cpp.o.d"
  "/root/repo/tests/test_inviscid.cpp" "tests/CMakeFiles/aero_tests.dir/test_inviscid.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_inviscid.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/aero_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_merged_mesh.cpp" "tests/CMakeFiles/aero_tests.dir/test_merged_mesh.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_merged_mesh.cpp.o.d"
  "/root/repo/tests/test_mesh.cpp" "tests/CMakeFiles/aero_tests.dir/test_mesh.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_mesh.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/aero_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_predicates.cpp" "tests/CMakeFiles/aero_tests.dir/test_predicates.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_predicates.cpp.o.d"
  "/root/repo/tests/test_quadedge.cpp" "tests/CMakeFiles/aero_tests.dir/test_quadedge.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_quadedge.cpp.o.d"
  "/root/repo/tests/test_refine.cpp" "tests/CMakeFiles/aero_tests.dir/test_refine.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_refine.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/aero_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_solver.cpp" "tests/CMakeFiles/aero_tests.dir/test_solver.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_solver.cpp.o.d"
  "/root/repo/tests/test_spatial.cpp" "tests/CMakeFiles/aero_tests.dir/test_spatial.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_spatial.cpp.o.d"
  "/root/repo/tests/test_subdomain.cpp" "tests/CMakeFiles/aero_tests.dir/test_subdomain.cpp.o" "gcc" "tests/CMakeFiles/aero_tests.dir/test_subdomain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/aero_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/aero_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/delaunay/CMakeFiles/aero_delaunay.dir/DependInfo.cmake"
  "/root/repo/build/src/hull/CMakeFiles/aero_hull.dir/DependInfo.cmake"
  "/root/repo/build/src/airfoil/CMakeFiles/aero_airfoil.dir/DependInfo.cmake"
  "/root/repo/build/src/blayer/CMakeFiles/aero_blayer.dir/DependInfo.cmake"
  "/root/repo/build/src/inviscid/CMakeFiles/aero_inviscid.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aero_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/aero_io.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/aero_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/aero_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
