# Empty compiler generated dependencies file for aero_tests.
# This may be replaced when dependencies are built.
