
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/cluster_model.cpp" "src/runtime/CMakeFiles/aero_runtime.dir/cluster_model.cpp.o" "gcc" "src/runtime/CMakeFiles/aero_runtime.dir/cluster_model.cpp.o.d"
  "/root/repo/src/runtime/comm.cpp" "src/runtime/CMakeFiles/aero_runtime.dir/comm.cpp.o" "gcc" "src/runtime/CMakeFiles/aero_runtime.dir/comm.cpp.o.d"
  "/root/repo/src/runtime/parallel_driver.cpp" "src/runtime/CMakeFiles/aero_runtime.dir/parallel_driver.cpp.o" "gcc" "src/runtime/CMakeFiles/aero_runtime.dir/parallel_driver.cpp.o.d"
  "/root/repo/src/runtime/pool.cpp" "src/runtime/CMakeFiles/aero_runtime.dir/pool.cpp.o" "gcc" "src/runtime/CMakeFiles/aero_runtime.dir/pool.cpp.o.d"
  "/root/repo/src/runtime/work.cpp" "src/runtime/CMakeFiles/aero_runtime.dir/work.cpp.o" "gcc" "src/runtime/CMakeFiles/aero_runtime.dir/work.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aero_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hull/CMakeFiles/aero_hull.dir/DependInfo.cmake"
  "/root/repo/build/src/blayer/CMakeFiles/aero_blayer.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/aero_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/airfoil/CMakeFiles/aero_airfoil.dir/DependInfo.cmake"
  "/root/repo/build/src/inviscid/CMakeFiles/aero_inviscid.dir/DependInfo.cmake"
  "/root/repo/build/src/delaunay/CMakeFiles/aero_delaunay.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/aero_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
