file(REMOVE_RECURSE
  "libaero_runtime.a"
)
