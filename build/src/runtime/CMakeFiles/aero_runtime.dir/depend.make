# Empty dependencies file for aero_runtime.
# This may be replaced when dependencies are built.
