file(REMOVE_RECURSE
  "CMakeFiles/aero_runtime.dir/cluster_model.cpp.o"
  "CMakeFiles/aero_runtime.dir/cluster_model.cpp.o.d"
  "CMakeFiles/aero_runtime.dir/comm.cpp.o"
  "CMakeFiles/aero_runtime.dir/comm.cpp.o.d"
  "CMakeFiles/aero_runtime.dir/parallel_driver.cpp.o"
  "CMakeFiles/aero_runtime.dir/parallel_driver.cpp.o.d"
  "CMakeFiles/aero_runtime.dir/pool.cpp.o"
  "CMakeFiles/aero_runtime.dir/pool.cpp.o.d"
  "CMakeFiles/aero_runtime.dir/work.cpp.o"
  "CMakeFiles/aero_runtime.dir/work.cpp.o.d"
  "libaero_runtime.a"
  "libaero_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
