file(REMOVE_RECURSE
  "CMakeFiles/aero_core.dir/distance_field.cpp.o"
  "CMakeFiles/aero_core.dir/distance_field.cpp.o.d"
  "CMakeFiles/aero_core.dir/merged_mesh.cpp.o"
  "CMakeFiles/aero_core.dir/merged_mesh.cpp.o.d"
  "CMakeFiles/aero_core.dir/mesh_generator.cpp.o"
  "CMakeFiles/aero_core.dir/mesh_generator.cpp.o.d"
  "libaero_core.a"
  "libaero_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
