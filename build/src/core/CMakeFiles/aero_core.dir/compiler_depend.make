# Empty compiler generated dependencies file for aero_core.
# This may be replaced when dependencies are built.
