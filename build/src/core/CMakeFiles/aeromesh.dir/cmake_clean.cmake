file(REMOVE_RECURSE
  "CMakeFiles/aeromesh.dir/cli_main.cpp.o"
  "CMakeFiles/aeromesh.dir/cli_main.cpp.o.d"
  "aeromesh"
  "aeromesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeromesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
