# Empty compiler generated dependencies file for aeromesh.
# This may be replaced when dependencies are built.
