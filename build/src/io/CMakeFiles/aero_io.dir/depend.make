# Empty dependencies file for aero_io.
# This may be replaced when dependencies are built.
