file(REMOVE_RECURSE
  "CMakeFiles/aero_io.dir/mesh_io.cpp.o"
  "CMakeFiles/aero_io.dir/mesh_io.cpp.o.d"
  "libaero_io.a"
  "libaero_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
