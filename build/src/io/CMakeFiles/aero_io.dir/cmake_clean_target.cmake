file(REMOVE_RECURSE
  "libaero_io.a"
)
