file(REMOVE_RECURSE
  "CMakeFiles/aero_delaunay.dir/mesh.cpp.o"
  "CMakeFiles/aero_delaunay.dir/mesh.cpp.o.d"
  "CMakeFiles/aero_delaunay.dir/quadedge.cpp.o"
  "CMakeFiles/aero_delaunay.dir/quadedge.cpp.o.d"
  "CMakeFiles/aero_delaunay.dir/refine.cpp.o"
  "CMakeFiles/aero_delaunay.dir/refine.cpp.o.d"
  "CMakeFiles/aero_delaunay.dir/stats.cpp.o"
  "CMakeFiles/aero_delaunay.dir/stats.cpp.o.d"
  "CMakeFiles/aero_delaunay.dir/triangulator.cpp.o"
  "CMakeFiles/aero_delaunay.dir/triangulator.cpp.o.d"
  "libaero_delaunay.a"
  "libaero_delaunay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_delaunay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
