
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/delaunay/mesh.cpp" "src/delaunay/CMakeFiles/aero_delaunay.dir/mesh.cpp.o" "gcc" "src/delaunay/CMakeFiles/aero_delaunay.dir/mesh.cpp.o.d"
  "/root/repo/src/delaunay/quadedge.cpp" "src/delaunay/CMakeFiles/aero_delaunay.dir/quadedge.cpp.o" "gcc" "src/delaunay/CMakeFiles/aero_delaunay.dir/quadedge.cpp.o.d"
  "/root/repo/src/delaunay/refine.cpp" "src/delaunay/CMakeFiles/aero_delaunay.dir/refine.cpp.o" "gcc" "src/delaunay/CMakeFiles/aero_delaunay.dir/refine.cpp.o.d"
  "/root/repo/src/delaunay/stats.cpp" "src/delaunay/CMakeFiles/aero_delaunay.dir/stats.cpp.o" "gcc" "src/delaunay/CMakeFiles/aero_delaunay.dir/stats.cpp.o.d"
  "/root/repo/src/delaunay/triangulator.cpp" "src/delaunay/CMakeFiles/aero_delaunay.dir/triangulator.cpp.o" "gcc" "src/delaunay/CMakeFiles/aero_delaunay.dir/triangulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/aero_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
