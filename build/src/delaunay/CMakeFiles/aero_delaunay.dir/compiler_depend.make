# Empty compiler generated dependencies file for aero_delaunay.
# This may be replaced when dependencies are built.
