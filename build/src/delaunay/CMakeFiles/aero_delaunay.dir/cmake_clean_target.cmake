file(REMOVE_RECURSE
  "libaero_delaunay.a"
)
