# CMake generated Testfile for 
# Source directory: /root/repo/src/airfoil
# Build directory: /root/repo/build/src/airfoil
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
