# Empty dependencies file for aero_airfoil.
# This may be replaced when dependencies are built.
