file(REMOVE_RECURSE
  "libaero_airfoil.a"
)
