file(REMOVE_RECURSE
  "CMakeFiles/aero_airfoil.dir/geometry.cpp.o"
  "CMakeFiles/aero_airfoil.dir/geometry.cpp.o.d"
  "CMakeFiles/aero_airfoil.dir/naca.cpp.o"
  "CMakeFiles/aero_airfoil.dir/naca.cpp.o.d"
  "libaero_airfoil.a"
  "libaero_airfoil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_airfoil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
