
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/airfoil/geometry.cpp" "src/airfoil/CMakeFiles/aero_airfoil.dir/geometry.cpp.o" "gcc" "src/airfoil/CMakeFiles/aero_airfoil.dir/geometry.cpp.o.d"
  "/root/repo/src/airfoil/naca.cpp" "src/airfoil/CMakeFiles/aero_airfoil.dir/naca.cpp.o" "gcc" "src/airfoil/CMakeFiles/aero_airfoil.dir/naca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/aero_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
