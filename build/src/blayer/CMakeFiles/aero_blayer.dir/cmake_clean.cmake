file(REMOVE_RECURSE
  "CMakeFiles/aero_blayer.dir/boundary_layer.cpp.o"
  "CMakeFiles/aero_blayer.dir/boundary_layer.cpp.o.d"
  "CMakeFiles/aero_blayer.dir/rays.cpp.o"
  "CMakeFiles/aero_blayer.dir/rays.cpp.o.d"
  "libaero_blayer.a"
  "libaero_blayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_blayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
