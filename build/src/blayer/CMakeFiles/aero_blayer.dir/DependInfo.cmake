
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blayer/boundary_layer.cpp" "src/blayer/CMakeFiles/aero_blayer.dir/boundary_layer.cpp.o" "gcc" "src/blayer/CMakeFiles/aero_blayer.dir/boundary_layer.cpp.o.d"
  "/root/repo/src/blayer/rays.cpp" "src/blayer/CMakeFiles/aero_blayer.dir/rays.cpp.o" "gcc" "src/blayer/CMakeFiles/aero_blayer.dir/rays.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/aero_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/aero_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/airfoil/CMakeFiles/aero_airfoil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
