file(REMOVE_RECURSE
  "libaero_blayer.a"
)
