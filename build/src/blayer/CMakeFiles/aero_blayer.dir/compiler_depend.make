# Empty compiler generated dependencies file for aero_blayer.
# This may be replaced when dependencies are built.
