file(REMOVE_RECURSE
  "CMakeFiles/aero_spatial.dir/adt.cpp.o"
  "CMakeFiles/aero_spatial.dir/adt.cpp.o.d"
  "libaero_spatial.a"
  "libaero_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
