file(REMOVE_RECURSE
  "libaero_spatial.a"
)
