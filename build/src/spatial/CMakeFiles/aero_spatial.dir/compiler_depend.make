# Empty compiler generated dependencies file for aero_spatial.
# This may be replaced when dependencies are built.
