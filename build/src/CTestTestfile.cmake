# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("geom")
subdirs("spatial")
subdirs("delaunay")
subdirs("hull")
subdirs("airfoil")
subdirs("blayer")
subdirs("inviscid")
subdirs("core")
subdirs("io")
subdirs("runtime")
subdirs("solver")
