# Empty dependencies file for aero_hull.
# This may be replaced when dependencies are built.
