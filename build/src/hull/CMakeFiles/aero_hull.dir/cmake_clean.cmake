file(REMOVE_RECURSE
  "CMakeFiles/aero_hull.dir/lifted.cpp.o"
  "CMakeFiles/aero_hull.dir/lifted.cpp.o.d"
  "CMakeFiles/aero_hull.dir/monotone_chain.cpp.o"
  "CMakeFiles/aero_hull.dir/monotone_chain.cpp.o.d"
  "CMakeFiles/aero_hull.dir/subdomain.cpp.o"
  "CMakeFiles/aero_hull.dir/subdomain.cpp.o.d"
  "libaero_hull.a"
  "libaero_hull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_hull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
