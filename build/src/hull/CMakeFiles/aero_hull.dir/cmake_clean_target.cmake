file(REMOVE_RECURSE
  "libaero_hull.a"
)
