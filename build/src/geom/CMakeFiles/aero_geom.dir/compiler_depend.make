# Empty compiler generated dependencies file for aero_geom.
# This may be replaced when dependencies are built.
