file(REMOVE_RECURSE
  "CMakeFiles/aero_geom.dir/expansion.cpp.o"
  "CMakeFiles/aero_geom.dir/expansion.cpp.o.d"
  "CMakeFiles/aero_geom.dir/predicates.cpp.o"
  "CMakeFiles/aero_geom.dir/predicates.cpp.o.d"
  "CMakeFiles/aero_geom.dir/segment.cpp.o"
  "CMakeFiles/aero_geom.dir/segment.cpp.o.d"
  "CMakeFiles/aero_geom.dir/triangle_quality.cpp.o"
  "CMakeFiles/aero_geom.dir/triangle_quality.cpp.o.d"
  "CMakeFiles/aero_geom.dir/vec2.cpp.o"
  "CMakeFiles/aero_geom.dir/vec2.cpp.o.d"
  "libaero_geom.a"
  "libaero_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
