file(REMOVE_RECURSE
  "libaero_geom.a"
)
