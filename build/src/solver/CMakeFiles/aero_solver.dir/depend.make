# Empty dependencies file for aero_solver.
# This may be replaced when dependencies are built.
