file(REMOVE_RECURSE
  "libaero_solver.a"
)
