file(REMOVE_RECURSE
  "CMakeFiles/aero_solver.dir/fem.cpp.o"
  "CMakeFiles/aero_solver.dir/fem.cpp.o.d"
  "CMakeFiles/aero_solver.dir/panel.cpp.o"
  "CMakeFiles/aero_solver.dir/panel.cpp.o.d"
  "libaero_solver.a"
  "libaero_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
