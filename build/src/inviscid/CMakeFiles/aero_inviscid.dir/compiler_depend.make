# Empty compiler generated dependencies file for aero_inviscid.
# This may be replaced when dependencies are built.
