file(REMOVE_RECURSE
  "CMakeFiles/aero_inviscid.dir/decouple.cpp.o"
  "CMakeFiles/aero_inviscid.dir/decouple.cpp.o.d"
  "libaero_inviscid.a"
  "libaero_inviscid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aero_inviscid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
