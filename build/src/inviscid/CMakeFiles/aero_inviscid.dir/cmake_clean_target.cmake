file(REMOVE_RECURSE
  "libaero_inviscid.a"
)
