# Empty compiler generated dependencies file for bench_blayer.
# This may be replaced when dependencies are built.
