file(REMOVE_RECURSE
  "CMakeFiles/bench_blayer.dir/bench_blayer.cpp.o"
  "CMakeFiles/bench_blayer.dir/bench_blayer.cpp.o.d"
  "bench_blayer"
  "bench_blayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
