file(REMOVE_RECURSE
  "CMakeFiles/bench_intersections.dir/bench_intersections.cpp.o"
  "CMakeFiles/bench_intersections.dir/bench_intersections.cpp.o.d"
  "bench_intersections"
  "bench_intersections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intersections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
