
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_decoupling.cpp" "bench/CMakeFiles/bench_decoupling.dir/bench_decoupling.cpp.o" "gcc" "bench/CMakeFiles/bench_decoupling.dir/bench_decoupling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aero_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/aero_io.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/aero_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/aero_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/hull/CMakeFiles/aero_hull.dir/DependInfo.cmake"
  "/root/repo/build/src/blayer/CMakeFiles/aero_blayer.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/aero_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/inviscid/CMakeFiles/aero_inviscid.dir/DependInfo.cmake"
  "/root/repo/build/src/delaunay/CMakeFiles/aero_delaunay.dir/DependInfo.cmake"
  "/root/repo/build/src/airfoil/CMakeFiles/aero_airfoil.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/aero_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
