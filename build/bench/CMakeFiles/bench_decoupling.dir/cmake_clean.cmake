file(REMOVE_RECURSE
  "CMakeFiles/bench_decoupling.dir/bench_decoupling.cpp.o"
  "CMakeFiles/bench_decoupling.dir/bench_decoupling.cpp.o.d"
  "bench_decoupling"
  "bench_decoupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
