file(REMOVE_RECURSE
  "CMakeFiles/bench_fans.dir/bench_fans.cpp.o"
  "CMakeFiles/bench_fans.dir/bench_fans.cpp.o.d"
  "bench_fans"
  "bench_fans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
