# Empty dependencies file for bench_fans.
# This may be replaced when dependencies are built.
