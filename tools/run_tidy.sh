#!/bin/sh
# Run clang-tidy (profile: .clang-tidy) over every library/test source using
# the exported compile database. When clang-tidy is not installed the script
# states why and exits 77 -- the conventional "skipped" code that ctest
# (SKIP_RETURN_CODE 77) and tools/check.sh both treat as a soft skip, so CI
# images without LLVM report SKIPPED rather than silently passing.
#
# Usage: tools/run_tidy.sh [build-dir]   (default: build)
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_tidy: SKIP -- clang-tidy not on PATH (install LLVM to enable)"
  exit 77
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_tidy: $build_dir/compile_commands.json missing; configure first" >&2
  exit 2
fi

# Library and test sources only; generated/external code is excluded by the
# compile database itself (we list our own files explicitly).
files=$(find "$repo_root/src" "$repo_root/tests" -name '*.cpp' | sort)
# shellcheck disable=SC2086  # word-splitting of the file list is intended
clang-tidy -p "$build_dir" --quiet $files
echo "run_tidy: clean"
