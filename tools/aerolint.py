#!/usr/bin/env python3
"""aerolint: in-tree static guardrails for the aeromesh library sources.

Dependency-free (stdlib only). Lints every .hpp/.cpp under src/ (all rules)
and under tests/ and examples/ (the public-api include-surface rule only)
for the project-specific rules that generic tools cannot know:

  geom-predicates  Floating-point orientation/incircle arithmetic (sign tests
                   of cross products, inline 2x2 determinants) belongs in
                   src/geom/ behind the exact predicates, nowhere else.
  determinism      No rand()/srand(), std::random_device, time(), or
                   system_clock::now in the library: meshes must be
                   bit-reproducible across runs (seeded engines are fine).
  no-raw-clock     Outside src/obs/ and src/core/timer.hpp, no direct
                   std::chrono::*_clock::now() reads: time through Timer /
                   mono_now() or the obs trace API so every clock read in
                   the tree is auditable and swappable in one place.
  no-stdout        Library code never prints to stdout (std::cout/printf);
                   diagnostics go through return values or stderr. The CLI
                   entry point is the only exempt file.
  naked-new        No naked new/delete; use containers or smart pointers
                   (`= delete` declarations and placement forms are fine).
  runtime-throw    src/runtime/ throws only at allowlisted sites: every other
                   throw risks crossing the communicator thread boundary
                   where nothing catches it and std::terminate kills the run.
  payload-copy     Message payloads in src/runtime/ move by ownership handoff
                   (std::move into the mailbox, publish/take through the
                   payload window). memcpy/memmove outside the serializers
                   and any by-value copy of a `.payload` member are deep
                   copies the zero-copy transport exists to eliminate.
  unchecked-io     The checkpoint journal and its serializer sink are the
                   only copy of a crashed run's finished work: a discarded
                   fwrite/fflush/fclose (or stream write/flush) return value
                   there is a short write nobody notices until the resume
                   that needed it. Statement-position I/O calls in those
                   files are violations; use or test the return value.
  layering         #include edges between src/ modules must follow the
                   dependency DAG below; no cycles, no upward includes.
  public-api       tests/ and examples/ compile against the public surface
                   only: the umbrella src/aero.hpp plus the PUBLIC_HEADERS
                   allowlist. A white-box test that genuinely needs an
                   internal header opts out per include line with the
                   escape comment.

A line may opt out of one rule with an inline escape comment:

    some_code();  // aerolint: allow(rule-name)

Usage:
    aerolint.py <repo-root>     lint the tree (exit 0 clean, 1 violations)
    aerolint.py --self-test     prove each rule fires on a seeded violation
"""

import os
import re
import sys

# ---------------------------------------------------------------------------
# Module dependency DAG: src/<module> -> modules it may #include from.
# Every module may include itself; anything absent here (or an edge not
# listed) is a layering violation. Keep this in sync with DESIGN.md.
ALLOWED_DEPS = {
    "obs": set(),
    "geom": set(),
    "spatial": {"geom"},
    "airfoil": {"geom"},
    "delaunay": {"geom", "obs"},
    "hull": {"delaunay", "geom"},
    "inviscid": {"delaunay", "geom"},
    "blayer": {"airfoil", "geom", "obs", "spatial"},
    "core": {"airfoil", "blayer", "delaunay", "geom", "hull", "inviscid",
             "obs", "spatial"},
    "io": {"core", "delaunay"},
    "check": {"blayer", "core", "delaunay", "geom", "obs"},
    "runtime": {"check", "core", "hull", "inviscid", "io", "obs"},
    "solver": {"airfoil", "core", "geom"},
}

# Files exempt from per-rule checks. cli_main.cpp is the application layer:
# it wires every module together and owns the terminal, so layering and
# stdout rules do not apply to it.
APP_FILES = {os.path.join("src", "core", "cli_main.cpp")}

# Throws permitted in src/runtime/: (file basename, regex over the line).
# Everything here is thrown on the mesher thread or before threads start,
# inside an established catch scope (see pool.cpp process_unit / run_pool).
RUNTIME_THROW_ALLOW = [
    ("comm.cpp", r"std::invalid_argument"),
    ("work.cpp", r'std::runtime_error\("work unit payload'),
    ("pool.cpp", r'std::runtime_error\("injected unit fault"\)'),
]

ESCAPE_RE = re.compile(r"//\s*aerolint:\s*allow\(([a-z-]+)\)")


def strip_code(raw, in_block):
    """Return (code, in_block): the line with string/char literals and
    comments blanked out, preserving length where convenient. `in_block`
    tracks /* */ state across lines."""
    out = []
    i, n = 0, len(raw)
    while i < n:
        c = raw[i]
        if in_block:
            if raw.startswith("*/", i):
                in_block = False
                i += 2
            else:
                i += 1
            continue
        if raw.startswith("//", i):
            break
        if raw.startswith("/*", i):
            in_block = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            i += 1
            while i < n and raw[i] != quote:
                i += 2 if raw[i] == "\\" else 1
            i += 1
            out.append(quote + quote)
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block


# ---------------------------------------------------------------------------
# Rules: name -> (applies(relpath), check(code) -> message or None).

CROSS_SIGN_RE = re.compile(r"\.cross\([^;]*\)\s*(==|!=|<=|>=|<|>)\s*")
INLINE_DET_RE = re.compile(
    r"\)\s*\*\s*\([^)]*\.y\b[^)]*\)\s*-\s*\([^)]*\.y\b[^)]*\)\s*\*\s*\(")
DETERMINISM_RE = re.compile(
    r"\b(rand|srand)\s*\(|std::random_device|system_clock::now"
    r"|\btime\s*\(\s*(NULL|nullptr|0)?\s*\)")
STDOUT_RE = re.compile(r"std::cout\b|(?<![\w.>])printf\s*\(")
NEW_RE = re.compile(r"(?<!\boperator )\bnew\s+[A-Za-z_(]")
DELETE_RE = re.compile(r"(?<![=\w] )\bdelete(\[\])?\s+[A-Za-z_*(]")
THROW_RE = re.compile(r"\bthrow\s+[A-Za-z_:]")


def in_module(relpath, module):
    return relpath.startswith(os.path.join("src", module) + os.sep)


def check_geom_predicates(relpath, code, raw):
    if in_module(relpath, "geom"):
        return None
    if CROSS_SIGN_RE.search(code):
        return ("sign test of a floating-point cross product; use the exact "
                "predicates in geom/predicates.hpp")
    if INLINE_DET_RE.search(code):
        return ("inline 2x2 determinant; orientation arithmetic belongs in "
                "src/geom/ behind exact predicates")
    return None


def check_determinism(relpath, code, raw):
    m = DETERMINISM_RE.search(code)
    if m:
        return ("non-deterministic source '%s'; meshes must be reproducible "
                "(use a seeded engine)" % m.group(0).strip())
    return None


RAW_CLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)::now\s*\(")

# The two places allowed to read the clock directly: the observability
# recorder (epoch + timestamps) and the Timer/mono_now() wrappers everything
# else times through.
CLOCK_EXEMPT_FILES = {os.path.join("src", "core", "timer.hpp")}


def check_no_raw_clock(relpath, code, raw):
    if in_module(relpath, "obs") or relpath in CLOCK_EXEMPT_FILES:
        return None
    if RAW_CLOCK_RE.search(code):
        return ("direct clock read; time through core/timer.hpp (Timer, "
                "mono_now) or the obs trace API")
    return None


def check_no_stdout(relpath, code, raw):
    if relpath in APP_FILES:
        return None
    if STDOUT_RE.search(code):
        return "library code must not print to stdout (std::cout/printf)"
    return None


def check_naked_new(relpath, code, raw):
    if NEW_RE.search(code):
        return "naked 'new'; use containers or std::make_unique"
    if DELETE_RE.search(code):
        return "naked 'delete'; use containers or smart pointers"
    return None


def check_runtime_throw(relpath, code, raw):
    if not in_module(relpath, "runtime"):
        return None
    if not THROW_RE.search(code):
        return None
    # The allowlist patterns name the thrown message, so match the raw line
    # (string literals are blanked out of `code`).
    base = os.path.basename(relpath)
    for allowed_base, pattern in RUNTIME_THROW_ALLOW:
        if base == allowed_base and re.search(pattern, raw):
            return None
    return ("throw in src/runtime/ outside the allowlist; an exception that "
            "crosses the communicator thread boundary calls std::terminate")


MEMCPY_RE = re.compile(r"\b(?:std::)?mem(?:cpy|move)\s*\(")
PAYLOAD_COPY_RE = re.compile(r"=\s*[\w.\[\]()>-]*(?:\.|->)payload\s*;")

# The serializers: the only runtime files allowed to memcpy, because turning
# structured work into wire bytes (and back) is the one legitimate byte-level
# copy. Everything downstream of them hands the resulting buffer off by move.
PAYLOAD_COPY_SERIALIZERS = {"work.cpp", "rma.cpp", "bytes.hpp"}


def check_payload_copy(relpath, code, raw):
    if not in_module(relpath, "runtime"):
        return None
    base = os.path.basename(relpath)
    if base not in PAYLOAD_COPY_SERIALIZERS and MEMCPY_RE.search(code):
        return ("memcpy/memmove in src/runtime/ outside the serializers (%s);"
                " payloads transfer by ownership handoff, not deep copy"
                % ", ".join(sorted(PAYLOAD_COPY_SERIALIZERS)))
    if PAYLOAD_COPY_RE.search(code):
        return ("by-value copy of a message payload; std::move it or publish "
                "it through the payload window")
    return None


# unchecked-io: files whose writes ARE the durability story. A call in
# statement position discards its result; every one of these returns a
# value that must decide success.
UNCHECKED_IO_FILES = {"journal.cpp", "journal.hpp",
                      "checkpoint.cpp", "checkpoint.hpp"}
# Only a call that IS the whole statement (`...);` ends the line) discards
# its result; a wrapped line continuing into `== n && ...` is a checked use.
UNCHECKED_C_IO_RE = re.compile(
    r"^\s*(?:std::)?(?:fwrite|fflush|fclose|fputc|fputs)\s*\([^;]*\)\s*;\s*$")
# Member spellings (stream or wrapper objects). `close()` is deliberately
# absent: void close() wrappers that internally count failures are fine.
UNCHECKED_STREAM_IO_RE = re.compile(
    r"^\s*\w+(?:\.|->)(?:write|flush|put)\s*\([^;]*\)\s*;\s*$")


def check_unchecked_io(relpath, code, raw):
    if os.path.basename(relpath) not in UNCHECKED_IO_FILES:
        return None
    if UNCHECKED_C_IO_RE.search(code) or UNCHECKED_STREAM_IO_RE.search(code):
        return ("discarded I/O return value in checkpoint persistence code; "
                "a silent short write here loses the journal -- branch on "
                "the result")
    return None


INCLUDE_RE = re.compile(r'#\s*include\s+"([A-Za-z0-9_]+)/')


def check_layering(relpath, code, raw):
    if relpath in APP_FILES:
        return None
    parts = relpath.split(os.sep)
    if len(parts) < 3 or parts[0] != "src":
        return None
    module = parts[1]
    # Include targets live inside string literals, so scan the raw line (but
    # only when the stripped line shows a real preprocessor directive, so a
    # quoted example inside a comment cannot fire).
    if not code.lstrip().startswith("#"):
        return None
    m = INCLUDE_RE.search(raw)
    if not m:
        return None
    target = m.group(1)
    if target == module or target not in ALLOWED_DEPS:
        return None
    if target not in ALLOWED_DEPS.get(module, set()):
        return ("module '%s' may not include from '%s' (allowed: %s)"
                % (module, target,
                   ", ".join(sorted(ALLOWED_DEPS.get(module, set()))) or
                   "nothing"))
    return None


# ---------------------------------------------------------------------------
# public-api: the headers external code (tests/, examples/, downstream users)
# may include directly. Everything else under src/ is internal; reaching for
# it from tests/examples is a white-box dependency that must be declared with
# an inline escape. Keep in sync with the table in src/aero.hpp.
PUBLIC_HEADERS = {
    "aero.hpp",
    "core/options.hpp",
    "core/mesh_generator.hpp",
    "core/run_status.hpp",
    "core/merged_mesh.hpp",
    "io/mesh_io.hpp",
    "runtime/parallel_driver.hpp",
    "runtime/cluster_model.hpp",
    "solver/panel.hpp",
    "solver/fem.hpp",
    "airfoil/naca.hpp",
    "airfoil/geometry.hpp",
    "delaunay/triangulator.hpp",
}

QUOTED_INCLUDE_RE = re.compile(r'#\s*include\s+"([^"]+)"')


def check_public_api(relpath, code, raw):
    top = relpath.split(os.sep)[0]
    if top not in ("tests", "examples"):
        return None
    if not code.lstrip().startswith("#"):
        return None
    m = QUOTED_INCLUDE_RE.search(raw)
    if m is None:
        return None
    target = m.group(1).replace("\\", "/")
    if target in PUBLIC_HEADERS:
        return None
    return ("non-public header \"%s\"; %s/ may include only src/aero.hpp and "
            "the public headers (white-box tests opt out per line)"
            % (target, top))


RULES = [
    ("geom-predicates", check_geom_predicates),
    ("determinism", check_determinism),
    ("no-raw-clock", check_no_raw_clock),
    ("no-stdout", check_no_stdout),
    ("naked-new", check_naked_new),
    ("runtime-throw", check_runtime_throw),
    ("payload-copy", check_payload_copy),
    ("unchecked-io", check_unchecked_io),
    ("layering", check_layering),
    ("public-api", check_public_api),
]

# tests/ and examples/ are not library code: only the include-surface rule
# applies there (they may print, use raw clocks, throw, ...).
EXTERNAL_RULES = [("public-api", check_public_api)]


def lint_lines(relpath, lines, rules=RULES):
    """Yield (lineno, rule, message) violations for one file's lines."""
    in_block = False
    for lineno, raw in enumerate(lines, start=1):
        code, in_block = strip_code(raw, in_block)
        escapes = set(ESCAPE_RE.findall(raw))
        for rule, check in rules:
            if rule in escapes:
                continue
            msg = check(relpath, code, raw)
            if msg is not None:
                yield (lineno, rule, msg)


def lint_tree(root):
    violations = []
    walks = [("src", RULES), ("tests", EXTERNAL_RULES),
             ("examples", EXTERNAL_RULES)]
    for top, rules in walks:
        for dirpath, _dirnames, filenames in os.walk(os.path.join(root, top)):
            for name in sorted(filenames):
                if not name.endswith((".hpp", ".cpp")):
                    continue
                path = os.path.join(dirpath, name)
                relpath = os.path.relpath(path, root)
                with open(path, "r", encoding="utf-8") as f:
                    lines = f.read().splitlines()
                for lineno, rule, msg in lint_lines(relpath, lines, rules):
                    violations.append("%s:%d: [%s] %s"
                                      % (relpath, lineno, rule, msg))
    return violations


# ---------------------------------------------------------------------------
# Self-test: every rule class must fire on a seeded violation, stay quiet on
# the matching clean line, and honor the inline escape.

SEEDED = [
    # (rule, relpath it is checked under, violating line, clean counterpart)
    ("geom-predicates", os.path.join("src", "hull", "x.cpp"),
     "if (ab.cross(ac) > 0) {",
     "const double w = ab.cross(ac);"),
    ("geom-predicates", os.path.join("src", "blayer", "x.cpp"),
     "double d = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);",
     "double d = orient2d(a, b, c);"),
    ("determinism", os.path.join("src", "core", "x.cpp"),
     "int r = rand() % 7;",
     "int r = engine() % 7;"),
    ("determinism", os.path.join("src", "runtime", "x.cpp"),
     "std::random_device rd;",
     "std::mt19937_64 rd(seed);"),
    ("determinism", os.path.join("src", "io", "x.cpp"),
     "auto t = std::chrono::system_clock::now();",
     "auto t = mono_now();"),
    ("no-raw-clock", os.path.join("src", "runtime", "x.cpp"),
     "auto t0 = std::chrono::steady_clock::now();",
     "auto t0 = mono_now();"),
    ("no-stdout", os.path.join("src", "delaunay", "x.cpp"),
     'std::cout << "tris: " << n;',
     'std::snprintf(buf, sizeof(buf), "tris: %zu", n);'),
    ("no-stdout", os.path.join("src", "io", "x.cpp"),
     'printf("done\\n");',
     'std::fprintf(stderr, "done\\n");'),
    ("naked-new", os.path.join("src", "spatial", "x.cpp"),
     "Node* n = new Node(k);",
     "auto n = std::make_unique<Node>(k);"),
    ("naked-new", os.path.join("src", "spatial", "x.cpp"),
     "delete node;",
     "Tree(const Tree&) = delete;"),
    ("runtime-throw", os.path.join("src", "runtime", "x.cpp"),
     'throw std::logic_error("bad state");',
     'throw_flag = true;'),
    ("payload-copy", os.path.join("src", "runtime", "x.cpp"),
     "std::memcpy(dst, msg.payload.data(), msg.payload.size());",
     "auto bytes = std::move(msg.payload);"),
    ("payload-copy", os.path.join("src", "runtime", "x.cpp"),
     "ByteBuf staged = msg->payload;",
     "comm.send(rank, dest, tag, std::move(msg->payload));"),
    ("unchecked-io", os.path.join("src", "io", "journal.cpp"),
     "std::fwrite(frame.data(), 1, frame.size(), file_);",
     "ok = std::fwrite(frame.data(), 1, frame.size(), file_) == frame.size();"),
    ("unchecked-io", os.path.join("src", "io", "journal.cpp"),
     "fflush(file_);",
     "if (std::fflush(file_) != 0) ++failures_;"),
    ("unchecked-io", os.path.join("src", "runtime", "checkpoint.cpp"),
     "writer_->flush();",
     "return writer_.flush();"),
    ("layering", os.path.join("src", "geom", "x.hpp"),
     '#include "delaunay/mesh.hpp"',
     '#include "geom/vec2.hpp"'),
    ("layering", os.path.join("src", "core", "x.cpp"),
     '#include "runtime/pool.hpp"',
     '#include "hull/subdomain.hpp"'),
    ("public-api", os.path.join("tests", "x.cpp"),
     '#include "delaunay/mesh.hpp"',
     '#include "aero.hpp"'),
    ("public-api", os.path.join("examples", "x.cpp"),
     '#include "runtime/pool.hpp"',
     '#include "runtime/parallel_driver.hpp"'),
]


def self_test():
    failures = []
    for rule, relpath, bad, good in SEEDED:
        hits = [r for (_ln, r, _m) in lint_lines(relpath, [bad])]
        if rule not in hits:
            failures.append("rule %s did not fire on: %s" % (rule, bad))
        hits = [r for (_ln, r, _m) in lint_lines(relpath, [good])]
        if rule in hits:
            failures.append("rule %s false-positived on: %s" % (rule, good))
        escaped = bad + "  // aerolint: allow(%s)" % rule
        hits = [r for (_ln, r, _m) in lint_lines(relpath, [escaped])]
        if rule in hits:
            failures.append("escape comment did not suppress %s" % rule)
    # Comment/string stripping: keywords inside comments and literals are not
    # code and must never fire.
    quiet = [
        "// spawns new units dynamically",
        "/* delete the old ring */",
        'log("rand() is banned");',
    ]
    for line in quiet:
        hits = [r for (_ln, r, _m)
                in lint_lines(os.path.join("src", "core", "x.cpp"), [line])]
        if hits:
            failures.append("fired %s inside comment/string: %s"
                            % (hits, line))
    if failures:
        for f in failures:
            sys.stderr.write("aerolint self-test FAIL: %s\n" % f)
        return 1
    sys.stderr.write("aerolint self-test: %d seeded violations, all rules "
                     "fire and all escapes hold\n" % len(SEEDED))
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    root = argv[1]
    if not os.path.isdir(os.path.join(root, "src")):
        sys.stderr.write("aerolint: no src/ under %s\n" % root)
        return 2
    violations = lint_tree(root)
    for v in violations:
        sys.stderr.write(v + "\n")
    if violations:
        sys.stderr.write("aerolint: %d violation(s)\n" % len(violations))
        return 1
    sys.stderr.write("aerolint: clean\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
