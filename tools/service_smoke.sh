#!/bin/sh
# aeromeshd end-to-end smoke: start the daemon deliberately tiny (one
# worker, queue capacity one, each request held 1500 ms after dequeue so
# queue occupancy is deterministic), then drive the full status surface
# through aeromesh-client over the unix socket:
#
#   req1  ok           (cold mesh; held by --hold-ms, occupying the worker)
#   req2  ok           (queued behind req1; fills the 1-slot queue)
#   req3  overloaded   (queue full -> typed backpressure, not a hang)
#   req4  ok+cache_hit (req1's configuration again, answered at admission)
#
# then a client-initiated shutdown frame, and the daemon must exit 0 after
# answering everything. Any unexpected status, a hung client, or a non-zero
# daemon exit fails the smoke.
#
# Usage: tools/service_smoke.sh [build-dir]   (default: build)
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
daemon="$build_dir/src/service/aeromeshd"
client="$build_dir/examples/aeromesh-client"
sock="/tmp/aeromeshd-smoke-$$.sock"
log="/tmp/aeromeshd-smoke-$$.log"

[ -x "$daemon" ] || { echo "smoke: $daemon not built" >&2; exit 1; }
[ -x "$client" ] || { echo "smoke: $client not built" >&2; exit 1; }

cleanup() {
  kill "$daemon_pid" 2>/dev/null || true
  rm -f "$sock" "$log" /tmp/aeromeshd-smoke-$$.*
}
trap cleanup EXIT INT TERM

"$daemon" --socket "$sock" --workers 1 --queue-capacity 1 \
    --hold-ms 1500 >"$log" 2>&1 &
daemon_pid=$!

# Wait for the socket to come up (the daemon prints after listen()).
i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  [ "$i" -le 50 ] || { echo "smoke: daemon never listened" >&2; exit 1; }
  kill -0 "$daemon_pid" 2>/dev/null || {
    echo "smoke: daemon died at startup:" >&2; cat "$log" >&2; exit 1; }
  sleep 0.1
done

# req1: dequeued immediately, then held 1500 ms -- the worker is busy.
"$client" --socket "$sock" --id 1 --surface-points 60 --expect ok \
    >/tmp/aeromeshd-smoke-$$.req1 &
req1_pid=$!
sleep 0.5

# req2: different configuration, queued behind req1 -- the queue is full.
"$client" --socket "$sock" --id 2 --surface-points 70 --expect ok \
    >/tmp/aeromeshd-smoke-$$.req2 &
req2_pid=$!
sleep 0.3

# req3: must bounce with the typed backpressure status, immediately.
"$client" --socket "$sock" --id 3 --surface-points 80 --expect overloaded

wait "$req1_pid" || { echo "smoke: req1 failed" >&2; exit 1; }
wait "$req2_pid" || { echo "smoke: req2 failed" >&2; exit 1; }

# req4: req1's configuration again -- answered from the result cache at
# admission (no queue, no hold), so it returns fast and flags cache_hit.
"$client" --socket "$sock" --id 4 --surface-points 60 --expect ok \
    >/tmp/aeromeshd-smoke-$$.req4
grep -q "cache_hit=1" /tmp/aeromeshd-smoke-$$.req4 || {
  echo "smoke: req4 was not a cache hit:" >&2
  cat /tmp/aeromeshd-smoke-$$.req4 >&2
  exit 1
}

"$client" --socket "$sock" --shutdown
wait "$daemon_pid" || { echo "smoke: daemon exited non-zero:" >&2
                        cat "$log" >&2; exit 1; }
grep -q "aeromeshd: exiting" "$log" || {
  echo "smoke: daemon log missing exit summary" >&2; cat "$log" >&2; exit 1; }

echo "service smoke: ok (mesh, queue, overload, cache hit, shutdown)"
