"""Lightweight C++ declaration/scope model for aerolint v2.

Built on lexer.Token streams, no regexes over raw lines. The model is
deliberately *lightweight*: it understands exactly as much C++ as the
analyses need --

  * namespaces / class & struct definitions (including nested and
    out-of-line `Outer::Inner`), with every member variable's type text,
    position, and attached AERO_* annotation macros;
  * enum definitions (with [[nodiscard]] detection);
  * function definitions and declarations: name, enclosing class (lexical
    or `Cls::method`), parameter names/types, [[nodiscard]], return type
    text, and the body's token range;
  * per-function local variable typing (declared class types, plus an
    `auto& x = expr;` heuristic that types x from the declaration of the
    variables `expr` mentions).

It does not evaluate templates, overload sets, or expressions; analyses
that need a receiver's class resolve it through Program helpers and fall
back to unique-member-name lookup.
"""

from lexer import lex

KEYWORDS = {
    "const", "constexpr", "consteval", "constinit", "static", "mutable",
    "inline", "virtual", "explicit", "volatile", "auto", "void", "bool",
    "int", "long", "short", "double", "float", "char", "unsigned", "signed",
    "struct", "class", "enum", "union", "using", "typedef", "operator",
    "return", "if", "else", "for", "while", "do", "switch", "case",
    "break", "continue", "new", "delete", "public", "private", "protected",
    "friend", "template", "typename", "noexcept", "override", "final",
    "default", "sizeof", "this", "namespace", "try", "catch", "throw",
    "static_assert", "decltype", "extern", "register", "thread_local",
    "alignas", "goto",
}

# Spellings of lockable member types (the annotated vocabulary plus the
# std types the analyzer still accepts and checks).
MUTEX_TYPES = ("Mutex", "std::mutex", "std::recursive_mutex",
               "std::shared_mutex", "std::timed_mutex")


class Annotation(object):
    """One AERO_* macro attached to a declaration: name + raw args."""

    __slots__ = ("name", "args", "line")

    def __init__(self, name, args, line):
        self.name = name
        self.args = args  # list of strings, one per top-level comma
        self.line = line

    def __repr__(self):
        return "%s(%s)" % (self.name, ", ".join(self.args))


class Member(object):
    __slots__ = ("cls", "name", "type_str", "line", "anns", "relpath")

    def __init__(self, cls, name, type_str, line, anns, relpath):
        self.cls = cls          # class name, or None for a namespace-scope var
        self.name = name
        self.type_str = type_str
        self.line = line
        self.anns = anns        # list of Annotation
        self.relpath = relpath

    def ann(self, name):
        for a in self.anns:
            if a.name == name:
                return a
        return None

    def is_mutex(self):
        t = self.type_str
        return (any(t == m or t.endswith(" " + m) or t.endswith("::" + m)
                    for m in MUTEX_TYPES)
                and "Lock" not in t and "<" not in t)

    def is_atomic(self):
        return "std::atomic<" in self.type_str or \
            self.type_str.startswith("atomic<")

    def qual(self):
        return "%s::%s" % (self.cls, self.name) if self.cls else self.name


class ClassInfo(object):
    __slots__ = ("name", "line", "relpath", "members", "methods")

    def __init__(self, name, line, relpath):
        self.name = name
        self.line = line
        self.relpath = relpath
        self.members = {}   # name -> Member
        self.methods = {}   # name -> FunctionInfo (last declaration wins)


class EnumInfo(object):
    __slots__ = ("name", "line", "relpath", "nodiscard")

    def __init__(self, name, line, relpath, nodiscard):
        self.name = name
        self.line = line
        self.relpath = relpath
        self.nodiscard = nodiscard


class FunctionInfo(object):
    __slots__ = ("name", "cls", "line", "relpath", "params", "ret_type",
                 "nodiscard", "body", "tokens", "_locals")

    def __init__(self, name, cls, line, relpath, params, ret_type,
                 nodiscard, body, tokens):
        self.name = name
        self.cls = cls              # enclosing/qualifying class or None
        self.line = line
        self.relpath = relpath
        self.params = params        # list of (type_str, name)
        self.ret_type = ret_type
        self.nodiscard = nodiscard
        self.body = body            # (lo, hi) token range of {...}, or None
        self.tokens = tokens        # the file's token list (shared)
        self._locals = None

    def param_types(self):
        return {n: t for (t, n) in self.params if n}


class FileModel(object):
    __slots__ = ("relpath", "tokens", "classes", "enums", "functions",
                 "globals")

    def __init__(self, relpath):
        self.relpath = relpath
        self.tokens = []
        self.classes = {}    # name -> ClassInfo
        self.enums = {}      # name -> EnumInfo
        self.functions = []  # FunctionInfo
        self.globals = []    # Member with cls=None


def _is_annotation(tokens, i):
    return (tokens[i].kind == "id" and tokens[i].text.startswith("AERO_"))


def _match(tokens, i, opener, closer):
    """Index just past the bracket pair opening at i (tokens[i] == opener)."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _skip_angles(tokens, i):
    """tokens[i] == '<' known to open template args; index past the '>'.
    Handles '>>' closing two levels."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
        elif t in (";", "{"):
            return i  # not template args after all
        i += 1
    return n


def _collect_annotation(tokens, i):
    """tokens[i] is an AERO_* id. Returns (Annotation-or-None, next_i)."""
    name = tokens[i].text
    line = tokens[i].line
    if i + 1 < len(tokens) and tokens[i + 1].text == "(":
        end = _match(tokens, i + 1, "(", ")")
        args, cur, depth = [], [], 0
        for t in tokens[i + 2:end - 1]:
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            if t.text == "," and depth == 0:
                args.append("".join(cur))
                cur = []
            else:
                cur.append(t.text)
        if cur:
            args.append("".join(cur))
        return Annotation(name, args, line), end
    return Annotation(name, [], line), i + 1


def _type_text(tokens):
    """Join type tokens readably: 'std::atomic<std::size_t>'."""
    out = []
    for t in tokens:
        txt = t.text
        if out and (txt in (">", ">>", "<", "::", ",", "*", "&", "[", "]")
                    or out[-1] in ("<", "::", "*", "&", "[")):
            out.append(txt)
        elif out:
            out.append(" " + txt)
        else:
            out.append(txt)
    return "".join(out).replace("< ", "<").replace(" >", ">")


class _Parser(object):
    def __init__(self, relpath, text):
        self.model = FileModel(relpath)
        self.model.tokens = [t for t in lex(text) if t.kind != "pp"]
        self.toks = self.model.tokens

    def parse(self):
        self._scope(0, len(self.toks), cls=None)
        return self.model

    # -- scope walkers -----------------------------------------------------

    def _scope(self, i, hi, cls):
        """Parse declarations in [i, hi) at namespace or class scope."""
        toks = self.toks
        while i < hi:
            t = toks[i]
            txt = t.text
            if txt in (";", ",") or txt in ("public", "private", "protected") \
                    and i + 1 < hi and toks[i + 1].text == ":":
                i += 2 if txt in ("public", "private", "protected") else 1
                continue
            if txt == "namespace":
                i = self._namespace(i, hi, cls)
                continue
            if txt == "template":
                i += 1
                if i < hi and toks[i].text == "<":
                    i = _skip_angles(toks, i)
                continue
            if txt in ("using", "typedef", "friend", "static_assert",
                       "extern"):
                i = self._skip_stmt(i, hi)
                continue
            if txt == "enum":
                i = self._enum(i, hi)
                continue
            if txt in ("class", "struct", "union"):
                handled, i = self._class(i, hi)
                if handled:
                    continue
                # fall through: elaborated type in a declaration
            i = self._declaration(i, hi, cls)

    def _namespace(self, i, hi, cls):
        toks = self.toks
        i += 1
        while i < hi and toks[i].text != "{":
            if toks[i].text == ";":  # namespace alias
                return i + 1
            i += 1
        if i >= hi:
            return hi
        end = _match(toks, i, "{", "}")
        self._scope(i + 1, end - 1, cls)
        return end

    def _enum(self, i, hi):
        toks = self.toks
        start = i
        i += 1
        if i < hi and toks[i].text in ("class", "struct"):
            i += 1
        nodiscard = False
        # attributes / annotations before the name
        while i < hi:
            if toks[i].text == "[" and i + 1 < hi and toks[i + 1].text == "[":
                end = _match(toks, i, "[", "]")
                if any(t.text == "nodiscard" for t in toks[i:end]):
                    nodiscard = True
                i = end
            elif _is_annotation(toks, i):
                _, i = _collect_annotation(toks, i)
            else:
                break
        name = toks[i].text if i < hi and toks[i].kind == "id" else None
        while i < hi and toks[i].text not in ("{", ";"):
            i += 1
        if i < hi and toks[i].text == "{":
            i = _match(toks, i, "{", "}")
        if name:
            self.model.enums[name] = EnumInfo(name, toks[start].line,
                                              self.model.relpath, nodiscard)
        return self._skip_stmt(i, hi)

    def _class(self, i, hi):
        """Parse class/struct at i. Returns (handled, next_i); handled is
        False for elaborated-type uses like `struct Foo x;`."""
        toks = self.toks
        i0 = i
        i += 1
        names = []
        while i < hi:
            t = toks[i]
            if t.text == "[" and i + 1 < hi and toks[i + 1].text == "[":
                i = _match(toks, i, "[", "]")
            elif _is_annotation(toks, i):
                _, i = _collect_annotation(toks, i)
            elif t.kind == "id" and t.text not in ("final",):
                names.append(t.text)
                i += 1
            elif t.text == "::":
                i += 1
            elif t.text == "final":
                i += 1
            else:
                break
        if not names:
            return True, self._skip_stmt(i, hi)
        name = names[-1]
        # forward declaration / elaborated use?
        j = i
        while j < hi and toks[j].text not in ("{", ";", "(", "="):
            j += 1
        return self._class_tail(i0, i, j, hi, name)

    def _class_tail(self, i0, i, j, hi, name):
        toks = self.toks
        if j >= hi or toks[j].text != "{":
            if j < hi and toks[j].text == ";" and j == i:
                return True, j + 1  # plain forward declaration
            return False, i0 + 1   # elaborated type in a declaration
        end = _match(toks, j, "{", "}")
        info = self.model.classes.setdefault(
            name, ClassInfo(name, toks[i0].line, self.model.relpath))
        # record, then parse the body with `cls` set
        self._scope(j + 1, end - 1, cls=info)
        return True, self._skip_stmt(end, hi)

    def _skip_stmt(self, i, hi):
        """Skip to just past the next ';' at bracket depth 0."""
        toks = self.toks
        depth = 0
        while i < hi:
            t = toks[i].text
            if t in ("(", "[", "{"):
                depth += 1
            elif t in (")", "]", "}"):
                depth -= 1
            elif t == ";" and depth <= 0:
                return i + 1
            i += 1
        return hi

    # -- declarations ------------------------------------------------------

    def _declaration(self, i, hi, cls):
        """Parse one member/namespace-scope declaration starting at i:
        either a variable or a function (definition or declaration)."""
        toks = self.toks
        start = i
        anns = []
        nodiscard = False
        head = []          # tokens before the declarator decision point
        angle = 0
        while i < hi:
            t = toks[i]
            txt = t.text
            if txt == "[" and i + 1 < hi and toks[i + 1].text == "[":
                end = _match(toks, i, "[", "]")
                if any(x.text == "nodiscard" for x in toks[i:end]):
                    nodiscard = True
                i = end
                continue
            if _is_annotation(toks, i):
                ann, i = _collect_annotation(toks, i)
                anns.append(ann)
                continue
            if txt == "<" and head and head[-1].kind == "id":
                end = _skip_angles(toks, i)
                head.extend(toks[i:end])
                i = end
                continue
            if txt == "(" and angle == 0:
                return self._function(start, i, hi, head, cls, anns,
                                      nodiscard)
            if txt == "=" and head and head[-1].text == "operator":
                head.append(t)  # operator=: the '=' is part of the name
                i += 1
                continue
            if txt in ("=", "{", ";") and angle == 0:
                return self._variable(start, i, hi, head, cls, anns)
            if txt == "}":
                return i + 1  # stray: bail out of a confused parse
            head.append(t)
            i += 1
        return hi

    def _variable(self, start, i, hi, head, cls, anns):
        toks = self.toks
        # declarator name: last id in head not followed by '::' or '<'
        name = None
        name_idx = -1
        for k, t in enumerate(head):
            if t.kind != "id" or t.text in KEYWORDS:
                continue
            nxt = head[k + 1].text if k + 1 < len(head) else None
            if nxt in ("::", "<"):
                continue
            prev = head[k - 1].text if k > 0 else None
            if prev in (".",):
                continue
            name = t.text
            name_idx = k
        if name is not None:
            type_toks = [t for t in head[:name_idx]
                         if t.text not in ("mutable", "static", "constexpr",
                                           "inline", "thread_local")]
            m = Member(cls.name if cls else None, name,
                       _type_text(type_toks), head[name_idx].line, anns,
                       self.model.relpath)
            if cls is not None:
                cls.members.setdefault(name, m)
            else:
                self.model.globals.append(m)
        return self._skip_stmt(i, hi)

    def _function(self, start, lparen, hi, head, cls, anns, nodiscard):
        toks = self.toks
        # name: token just before '('; possibly `Cls :: name`
        name = None
        qual_cls = cls.name if cls else None
        if head:
            last = head[-1]
            if last.kind == "id":
                name = last.text
                k = len(head) - 2
                if k >= 0 and head[k].text == "::" and k - 1 >= 0 \
                        and head[k - 1].kind == "id":
                    qual_cls = head[k - 1].text
                    head = head[:k - 1]
                else:
                    head = head[:-1]
            elif last.text == "operator" or (last.kind == "punct"):
                # operator overloads and conversion operators: name them
                # 'operator' and move on.
                name = "operator"
        params_end = _match(toks, lparen, "(", ")")
        params = _parse_params(toks[lparen + 1:params_end - 1])
        ret_type = _type_text([t for t in head
                               if t.text not in ("static", "virtual",
                                                 "explicit", "inline",
                                                 "constexpr", "friend")])
        # trailer: qualifiers, annotations, ctor-init, then body or ';'
        i = params_end
        body = None
        while i < hi:
            txt = toks[i].text
            if _is_annotation(toks, i):
                ann, i = _collect_annotation(toks, i)
                anns.append(ann)
                continue
            if txt == "[" and i + 1 < hi and toks[i + 1].text == "[":
                i = _match(toks, i, "[", "]")
                continue
            if txt in ("const", "noexcept", "override", "final", "mutable",
                       "&", "&&", "->", "::") or toks[i].kind == "id":
                i += 1
                continue
            if txt == "(":  # noexcept(...) or trailing return type bits
                i = _match(toks, i, "(", ")")
                continue
            if txt == "<":
                i = _skip_angles(toks, i)
                continue
            if txt == ":":  # ctor-init list
                i += 1
                while i < hi and toks[i].text != "{":
                    if toks[i].text == "(":
                        i = _match(toks, i, "(", ")")
                    elif toks[i].text == "{":
                        break
                    elif toks[i].text == ";":
                        break
                    elif toks[i].text == "<":
                        i = _skip_angles(toks, i)
                    else:
                        i += 1
                continue
            if txt == "{":
                end = _match(toks, i, "{", "}")
                body = (i, end)
                i = end
                break
            if txt == "=":  # = default / = delete / = 0
                i = self._skip_stmt(i, hi)
                break
            if txt == ";":
                i += 1
                break
            i += 1
        if name:
            fn = FunctionInfo(name, qual_cls, toks[start].line,
                              self.model.relpath, params, ret_type,
                              nodiscard, body, toks)
            self.model.functions.append(fn)
            if cls is not None:
                cls.methods[name] = fn
            elif qual_cls and qual_cls in self.model.classes:
                self.model.classes[qual_cls].methods.setdefault(name, fn)
        return i


def _parse_params(tokens):
    """Split a parameter token list into (type_str, name) pairs."""
    params = []
    depth = 0
    cur = []
    groups = []
    for t in tokens:
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        elif t.text == "<" and cur and cur[-1].kind == "id":
            depth += 1
        elif t.text == ">" and depth > 0:
            depth -= 1
        elif t.text == ">>" and depth > 0:
            depth -= 2
        if t.text == "," and depth <= 0:
            groups.append(cur)
            cur = []
        else:
            cur.append(t)
    if cur:
        groups.append(cur)
    for g in groups:
        # drop default argument
        for k, t in enumerate(g):
            if t.text == "=":
                g = g[:k]
                break
        name = None
        if g and g[-1].kind == "id" and g[-1].text not in KEYWORDS \
                and len(g) > 1:
            name = g[-1].text
            g = g[:-1]
        params.append((_type_text(g), name))
    return params


def parse_file(relpath, text):
    return _Parser(relpath, text).parse()


class Program(object):
    """Whole-program view: every parsed file, with merged class registry."""

    def __init__(self):
        self.files = {}        # relpath -> FileModel
        self.classes = {}      # name -> ClassInfo (first definition wins;
                               # members merged across files)
        self.enums = {}

    def add(self, model):
        self.files[model.relpath] = model
        for name, info in model.classes.items():
            if name in self.classes:
                merged = self.classes[name]
                for mn, mv in info.members.items():
                    merged.members.setdefault(mn, mv)
                for fn, fv in info.methods.items():
                    merged.methods.setdefault(fn, fv)
            else:
                self.classes[name] = info
        for name, e in model.enums.items():
            self.enums.setdefault(name, e)

    def member(self, cls, name):
        info = self.classes.get(cls)
        return info.members.get(name) if info else None

    def members_named(self, name, pred=None):
        out = []
        for info in self.classes.values():
            m = info.members.get(name)
            if m is not None and (pred is None or pred(m)):
                out.append(m)
        return out

    # -- type resolution helpers ------------------------------------------

    def class_in_type(self, type_str):
        """Innermost known class named by a type string, e.g.
        'std::vector<std::unique_ptr<RankState>>' -> 'RankState'."""
        best = None
        for name in self.classes:
            idx = type_str.rfind(name)
            if idx < 0:
                continue
            before = type_str[idx - 1] if idx > 0 else " "
            after_i = idx + len(name)
            after = type_str[after_i] if after_i < len(type_str) else " "
            if before.isalnum() or before == "_":
                continue
            if after.isalnum() or after == "_":
                continue
            if best is None or idx > best[0]:
                best = (idx, name)
        return best[1] if best else None

    def function_locals(self, fn):
        """name -> class-name map for a function body: parameters, declared
        locals of known class types, and `auto& x = expr;` resolved through
        the declarations `expr` mentions."""
        if fn._locals is not None:
            return fn._locals
        out = {}
        for (t, n) in fn.params:
            if n:
                c = self.class_in_type(t)
                if c:
                    out[n] = c
        if fn.body:
            toks = fn.tokens
            lo, hi = fn.body
            i = lo
            while i < hi:
                t = toks[i]
                if t.kind == "id" and t.text in self.classes:
                    # Type name [&*]* name [=({;] -- also matches the class
                    # buried in a container type (vector<unique_ptr<C>> v),
                    # typing v by its element class, consistent with
                    # class_in_type for members.
                    j = i + 1
                    while j < hi and toks[j].text in ("&", "*", "const",
                                                      ">", ">>", "]"):
                        j += 1
                    if j < hi and toks[j].kind == "id" \
                            and toks[j].text not in KEYWORDS:
                        nxt = toks[j + 1].text if j + 1 < hi else None
                        # ':' is the range-for declarator terminator
                        # (for (const MeshTri& t : tris_)).
                        if nxt in ("=", "(", "{", ";", ",", ":"):
                            out.setdefault(toks[j].text, t.text)
                            i = j + 1
                            continue
                if t.kind == "id" and t.text == "auto":
                    j = i + 1
                    while j < hi and toks[j].text in ("&", "*", "const"):
                        j += 1
                    if j < hi and toks[j].kind == "id" and j + 1 < hi \
                            and toks[j + 1].text in ("=", ":"):
                        # `auto& x = expr;` or range-for `auto& x : expr)`:
                        # type x by the classes the initializer/range names.
                        var = toks[j].text
                        stop = ";" if toks[j + 1].text == "=" else ")"
                        k = j + 2
                        resolved = None
                        while k < hi and toks[k].text != stop:
                            tk = toks[k]
                            if tk.kind == "id":
                                c = self._id_class(fn, tk.text, out)
                                if c:
                                    resolved = c
                            k += 1
                        if resolved:
                            out.setdefault(var, resolved)
                        i = k
                        continue
                i += 1
        fn._locals = out
        return out

    def _id_class(self, fn, ident, locals_so_far):
        if ident in self.classes:
            return ident
        if ident in locals_so_far:
            return locals_so_far[ident]
        if fn.cls:
            m = self.member(fn.cls, ident)
            if m is not None:
                return self.class_in_type(m.type_str)
        return None

    def resolve_receiver(self, fn, var):
        """Class of `var` as seen inside `fn`: local/param, else a member of
        the enclosing class, else None."""
        if var == "this":
            return fn.cls
        locs = self.function_locals(fn)
        if var in locs:
            return locs[var]
        if fn.cls:
            m = self.member(fn.cls, var)
            if m is not None:
                return self.class_in_type(m.type_str) or None
        return None
