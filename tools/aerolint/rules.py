"""Line rules: the aerolint v1 heritage set, unchanged in semantics.

Each rule is (name, check(relpath, code, raw) -> message | None) applied
per line, where `code` is the comment/string-stripped view produced by
lexer.stripped_lines and `raw` is the original line. The PR 2-6 seeded
self-test corpus in selftest.py pins this behavior.
"""

import os
import re

# ---------------------------------------------------------------------------
# Module dependency DAG: src/<module> -> modules it may #include from.
# Every module may include itself; anything absent here (or an edge not
# listed) is a layering violation. Keep this in sync with DESIGN.md.
# io -> obs is new in PR 7: the journal/checkpoint mutexes joined the
# annotated lock vocabulary (obs/annotations.hpp).
ALLOWED_DEPS = {
    "obs": set(),
    "geom": set(),
    "spatial": {"geom"},
    "airfoil": {"geom"},
    "delaunay": {"geom", "obs"},
    "hull": {"delaunay", "geom"},
    "inviscid": {"delaunay", "geom"},
    "blayer": {"airfoil", "geom", "obs", "spatial"},
    "core": {"airfoil", "blayer", "delaunay", "geom", "hull", "inviscid",
             "obs", "spatial"},
    "io": {"core", "delaunay", "obs"},
    "check": {"blayer", "core", "delaunay", "geom", "obs"},
    "runtime": {"check", "core", "hull", "inviscid", "io", "obs"},
    "solver": {"airfoil", "core", "geom"},
    # The meshing service sits at the top of the layering: it drives both
    # pipeline entry points and nothing may include from it -- no other
    # module lists "service" here, so any src/ include of service/ headers
    # outside the module fails this rule (only the daemon app file, tests,
    # and examples consume it).
    "service": {"core", "io", "obs", "runtime"},
}

# Files exempt from per-rule checks. cli_main.cpp and daemon_main.cpp are
# the application layer: they wire every module together and own the
# terminal, so layering and stdout rules do not apply to them.
APP_FILES = {os.path.join("src", "core", "cli_main.cpp"),
             os.path.join("src", "service", "daemon_main.cpp")}

# Throws permitted in src/runtime/: (file basename, regex over the line).
# Everything here is thrown on the mesher thread or before threads start,
# inside an established catch scope (see pool.cpp process_unit / run_pool).
RUNTIME_THROW_ALLOW = [
    ("comm.cpp", r"std::invalid_argument"),
    ("work.cpp", r'std::runtime_error\("work unit payload'),
    ("pool.cpp", r'std::runtime_error\("injected unit fault"\)'),
]

CROSS_SIGN_RE = re.compile(r"\.cross\([^;]*\)\s*(==|!=|<=|>=|<|>)\s*")
INLINE_DET_RE = re.compile(
    r"\)\s*\*\s*\([^)]*\.y\b[^)]*\)\s*-\s*\([^)]*\.y\b[^)]*\)\s*\*\s*\(")
DETERMINISM_RE = re.compile(
    r"\b(rand|srand)\s*\(|std::random_device|system_clock::now"
    r"|\btime\s*\(\s*(NULL|nullptr|0)?\s*\)")
STDOUT_RE = re.compile(r"std::cout\b|(?<![\w.>])printf\s*\(")
NEW_RE = re.compile(r"(?<!\boperator )\bnew\s+[A-Za-z_(]")
DELETE_RE = re.compile(r"(?<![=\w] )\bdelete(\[\])?\s+[A-Za-z_*(]")
THROW_RE = re.compile(r"\bthrow\s+[A-Za-z_:]")


def in_module(relpath, module):
    return relpath.startswith(os.path.join("src", module) + os.sep)


def check_geom_predicates(relpath, code, raw):
    if in_module(relpath, "geom"):
        return None
    if CROSS_SIGN_RE.search(code):
        return ("sign test of a floating-point cross product; use the exact "
                "predicates in geom/predicates.hpp")
    if INLINE_DET_RE.search(code):
        return ("inline 2x2 determinant; orientation arithmetic belongs in "
                "src/geom/ behind exact predicates")
    return None


def check_determinism(relpath, code, raw):
    m = DETERMINISM_RE.search(code)
    if m:
        return ("non-deterministic source '%s'; meshes must be reproducible "
                "(use a seeded engine)" % m.group(0).strip())
    return None


RAW_CLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)::now\s*\(")

# The two places allowed to read the clock directly: the observability
# recorder (epoch + timestamps) and the Timer/mono_now() wrappers everything
# else times through.
CLOCK_EXEMPT_FILES = {os.path.join("src", "core", "timer.hpp")}


def check_no_raw_clock(relpath, code, raw):
    if in_module(relpath, "obs") or relpath in CLOCK_EXEMPT_FILES:
        return None
    if RAW_CLOCK_RE.search(code):
        return ("direct clock read; time through core/timer.hpp (Timer, "
                "mono_now) or the obs trace API")
    return None


def check_no_stdout(relpath, code, raw):
    if relpath in APP_FILES:
        return None
    if STDOUT_RE.search(code):
        return "library code must not print to stdout (std::cout/printf)"
    return None


def check_naked_new(relpath, code, raw):
    if NEW_RE.search(code):
        return "naked 'new'; use containers or std::make_unique"
    if DELETE_RE.search(code):
        return "naked 'delete'; use containers or smart pointers"
    return None


def check_runtime_throw(relpath, code, raw):
    if not in_module(relpath, "runtime"):
        return None
    if not THROW_RE.search(code):
        return None
    # The allowlist patterns name the thrown message, so match the raw line
    # (string literals are blanked out of `code`).
    base = os.path.basename(relpath)
    for allowed_base, pattern in RUNTIME_THROW_ALLOW:
        if base == allowed_base and re.search(pattern, raw):
            return None
    return ("throw in src/runtime/ outside the allowlist; an exception that "
            "crosses the communicator thread boundary calls std::terminate")


MEMCPY_RE = re.compile(r"\b(?:std::)?mem(?:cpy|move)\s*\(")
PAYLOAD_COPY_RE = re.compile(r"=\s*[\w.\[\]()>-]*(?:\.|->)payload\s*;")

# The serializers: the only runtime files allowed to memcpy, because turning
# structured work into wire bytes (and back) is the one legitimate byte-level
# copy. Everything downstream of them hands the resulting buffer off by move.
PAYLOAD_COPY_SERIALIZERS = {"work.cpp", "rma.cpp", "bytes.hpp"}


def check_payload_copy(relpath, code, raw):
    if not in_module(relpath, "runtime"):
        return None
    base = os.path.basename(relpath)
    if base not in PAYLOAD_COPY_SERIALIZERS and MEMCPY_RE.search(code):
        return ("memcpy/memmove in src/runtime/ outside the serializers (%s);"
                " payloads transfer by ownership handoff, not deep copy"
                % ", ".join(sorted(PAYLOAD_COPY_SERIALIZERS)))
    if PAYLOAD_COPY_RE.search(code):
        return ("by-value copy of a message payload; std::move it or publish "
                "it through the payload window")
    return None


# unchecked-io: files whose writes ARE the durability story. A call in
# statement position discards its result; every one of these returns a
# value that must decide success.
UNCHECKED_IO_FILES = {"journal.cpp", "journal.hpp",
                      "checkpoint.cpp", "checkpoint.hpp"}
# Only a call that IS the whole statement (`...);` ends the line) discards
# its result; a wrapped line continuing into `== n && ...` is a checked use.
UNCHECKED_C_IO_RE = re.compile(
    r"^\s*(?:std::)?(?:fwrite|fflush|fclose|fputc|fputs)\s*\([^;]*\)\s*;\s*$")
# Member spellings (stream or wrapper objects). `close()` is deliberately
# absent: void close() wrappers that internally count failures are fine.
UNCHECKED_STREAM_IO_RE = re.compile(
    r"^\s*\w+(?:\.|->)(?:write|flush|put)\s*\([^;]*\)\s*;\s*$")


def check_unchecked_io(relpath, code, raw):
    if os.path.basename(relpath) not in UNCHECKED_IO_FILES:
        return None
    if UNCHECKED_C_IO_RE.search(code) or UNCHECKED_STREAM_IO_RE.search(code):
        return ("discarded I/O return value in checkpoint persistence code; "
                "a silent short write here loses the journal -- branch on "
                "the result")
    return None


INCLUDE_RE = re.compile(r'#\s*include\s+"([A-Za-z0-9_]+)/')


def check_layering(relpath, code, raw):
    if relpath in APP_FILES:
        return None
    parts = relpath.split(os.sep)
    if len(parts) < 3 or parts[0] != "src":
        return None
    module = parts[1]
    # Include targets live inside string literals, so scan the raw line (but
    # only when the stripped line shows a real preprocessor directive, so a
    # quoted example inside a comment cannot fire).
    if not code.lstrip().startswith("#"):
        return None
    m = INCLUDE_RE.search(raw)
    if not m:
        return None
    target = m.group(1)
    if target == module or target not in ALLOWED_DEPS:
        return None
    if target not in ALLOWED_DEPS.get(module, set()):
        return ("module '%s' may not include from '%s' (allowed: %s)"
                % (module, target,
                   ", ".join(sorted(ALLOWED_DEPS.get(module, set()))) or
                   "nothing"))
    return None


# ---------------------------------------------------------------------------
# public-api: the headers external code (tests/, examples/, downstream users)
# may include directly. Everything else under src/ is internal; reaching for
# it from tests/examples is a white-box dependency that must be declared with
# an inline escape. Keep in sync with the table in src/aero.hpp.
PUBLIC_HEADERS = {
    "aero.hpp",
    "core/options.hpp",
    "core/mesh_generator.hpp",
    "core/run_status.hpp",
    "core/merged_mesh.hpp",
    "core/mesh_view.hpp",
    "io/mesh_io.hpp",
    "runtime/parallel_driver.hpp",
    "runtime/cluster_model.hpp",
    "solver/panel.hpp",
    "solver/fem.hpp",
    "airfoil/naca.hpp",
    "airfoil/geometry.hpp",
    "delaunay/triangulator.hpp",
    "service/server.hpp",
    "service/wire.hpp",
    "service/client.hpp",
}

QUOTED_INCLUDE_RE = re.compile(r'#\s*include\s+"([^"]+)"')


def check_public_api(relpath, code, raw):
    top = relpath.split(os.sep)[0]
    if top not in ("tests", "examples"):
        return None
    if not code.lstrip().startswith("#"):
        return None
    m = QUOTED_INCLUDE_RE.search(raw)
    if m is None:
        return None
    target = m.group(1).replace("\\", "/")
    if target in PUBLIC_HEADERS:
        return None
    return ("non-public header \"%s\"; %s/ may include only src/aero.hpp and "
            "the public headers (white-box tests opt out per line)"
            % (target, top))


# ---------------------------------------------------------------------------
# mesh-internal-access: the SoA mesh storage (chunked arenas + the flat
# interner) is private to the mesh core. Everything else reads through the
# MergedMesh accessors or the aero::MeshView facade, which is what lets the
# storage layout change (32-bit ids, chunk size, interner scheme) without a
# ripple. The mesh core = src/delaunay/ plus the two core files that own the
# merged-mesh arenas. White-box tests opt out per line with
# allow(mesh-internal-access).
MESH_CORE_FILES = {
    os.path.join("src", "core", "merged_mesh.hpp"),
    os.path.join("src", "core", "merged_mesh.cpp"),
    os.path.join("src", "core", "mesh_view.hpp"),
    os.path.join("src", "core", "mesh_view.cpp"),
}
CHUNKED_INCLUDE_RE = re.compile(r'#\s*include\s+"delaunay/chunked\.hpp"')
MESH_INTERNAL_RE = re.compile(
    r"\bChunkedArray\b|(?:\.|->)\s*(?:points_|tris_|dead_|slots_)\b")


def check_mesh_internal_access(relpath, code, raw):
    if in_module(relpath, "delaunay") or relpath in MESH_CORE_FILES:
        return None
    if code.lstrip().startswith("#"):
        if CHUNKED_INCLUDE_RE.search(raw):
            return ("the chunked arena header is mesh-core internal; consume "
                    "the mesh through MergedMesh accessors or aero::MeshView")
        return None
    if MESH_INTERNAL_RE.search(code):
        return ("direct access to the SoA mesh storage outside the mesh "
                "core; read through MergedMesh accessors or aero::MeshView")
    return None


RULES = [
    ("geom-predicates", check_geom_predicates),
    ("determinism", check_determinism),
    ("no-raw-clock", check_no_raw_clock),
    ("no-stdout", check_no_stdout),
    ("naked-new", check_naked_new),
    ("runtime-throw", check_runtime_throw),
    ("payload-copy", check_payload_copy),
    ("unchecked-io", check_unchecked_io),
    ("layering", check_layering),
    ("public-api", check_public_api),
    ("mesh-internal-access", check_mesh_internal_access),
]

# tests/ and examples/ are not library code: only the include-surface rules
# apply there (they may print, use raw clocks, throw, ...) -- the public
# header surface and the mesh-core storage boundary.
EXTERNAL_RULES = [("public-api", check_public_api),
                  ("mesh-internal-access", check_mesh_internal_access)]

# Rule descriptions for --help / SARIF rule metadata.
RULE_HELP = {
    "geom-predicates": "orientation arithmetic belongs behind exact "
                       "predicates in src/geom/",
    "determinism": "no unseeded randomness or wall-clock reads in library "
                   "code",
    "no-raw-clock": "clock reads go through core/timer.hpp or the obs API",
    "no-stdout": "library code never prints to stdout",
    "naked-new": "no naked new/delete",
    "runtime-throw": "src/runtime/ throws only at allowlisted sites",
    "payload-copy": "message payloads move by ownership handoff",
    "unchecked-io": "journal/checkpoint I/O results must be checked",
    "layering": "module includes follow the dependency DAG",
    "public-api": "tests/examples include the public surface only",
    "mesh-internal-access": "the SoA mesh arenas are read through MergedMesh "
                            "accessors or aero::MeshView only",
    "lock-table": "every runtime/obs/io mutex is named and ranked "
                  "(AERO_LOCK_NAME)",
    "lock-order": "nested lock acquisitions follow the rank order",
    "lock-blocking": "no blocking call while holding a non-blocking-rank "
                     "lock",
    "det-unordered-iter": "no unordered-container iteration in "
                          "mesh-affecting code",
    "det-pointer-key": "no pointer-keyed ordering or hashing in "
                       "mesh-affecting code",
    "det-clock": "no clock/PRNG reads inside the mesh kernels",
    "atomic-role": "every std::atomic member declares a role "
                   "(AERO_ATOMIC_ROLE)",
    "atomic-order": "memory orders match the atomic's declared role",
    "atomic-implicit": "atomics are accessed via explicit load()/store()",
    "atomic-mixed": "no byte-level access to atomic-bearing memory",
    "unchecked-status": "[[nodiscard]] results (RunStatus, journal I/O, "
                        "validate()) must be used",
    "kernel-shared-state": "mutable members, non-const globals, and "
                           "function-local statics on the Delaunay kernel "
                           "path declare their threading discipline "
                           "(AERO_SHARED_STATE)",
}
