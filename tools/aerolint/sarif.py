"""SARIF 2.1.0 export for aerolint findings, plus a dependency-free
structural validator for the committed schema subset.

The export is the minimal SARIF shape CI dashboards ingest: one run, one
tool, one rule entry per aerolint rule, one result per finding with a
physical location. tools/aerolint/sarif-schema.json pins exactly the
properties we emit; `validate()` checks a document against it (type /
required / properties / items / enum / const -- the subset the schema
uses) so CI can prove the artifact is well-formed without jsonschema.
"""

import json

from rules import RULE_HELP

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "aerolint"
TOOL_VERSION = "2.0.0"


def to_sarif(findings):
    rule_ids = sorted({f.rule for f in findings} | set(RULE_HELP))
    rules = [{"id": rid,
              "shortDescription": {"text": RULE_HELP.get(rid, rid)}}
             for rid in rule_ids]
    index = {rid: k for k, rid in enumerate(rule_ids)}
    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule,
            "ruleIndex": index[f.rule],
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.relpath.replace("\\", "/"),
                    },
                    "region": {"startLine": f.line},
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "version": TOOL_VERSION,
                    "informationUri":
                        "https://example.invalid/aeromesh/tools/aerolint",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def write_sarif(findings, path):
    doc = to_sarif(findings)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return doc


# ---------------------------------------------------------------------------
# Minimal JSON-schema structural validator (draft-07 subset).

def validate(doc, schema, path="$"):
    """Return a list of violation strings (empty = valid). Supports the
    subset our sarif-schema.json uses: type, required, properties, items,
    enum, const, additionalProperties=false."""
    errors = []
    _validate(doc, schema, path, errors)
    return errors


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def _validate(doc, schema, path, errors):
    t = schema.get("type")
    if t is not None:
        py = _TYPES.get(t)
        ok = isinstance(doc, py)
        if t == "integer" and isinstance(doc, bool):
            ok = False
        if not ok:
            errors.append("%s: expected %s, got %s"
                          % (path, t, type(doc).__name__))
            return
    if "const" in schema and doc != schema["const"]:
        errors.append("%s: expected const %r, got %r"
                      % (path, schema["const"], doc))
    if "enum" in schema and doc not in schema["enum"]:
        errors.append("%s: %r not in enum %r"
                      % (path, doc, schema["enum"]))
    if isinstance(doc, dict):
        for req in schema.get("required", ()):
            if req not in doc:
                errors.append("%s: missing required property '%s'"
                              % (path, req))
        props = schema.get("properties", {})
        for key, val in doc.items():
            if key in props:
                _validate(val, props[key], "%s.%s" % (path, key), errors)
            elif schema.get("additionalProperties") is False:
                errors.append("%s: unexpected property '%s'" % (path, key))
    if isinstance(doc, list) and "items" in schema:
        for k, item in enumerate(doc):
            _validate(item, schema["items"], "%s[%d]" % (path, k), errors)
