"""C++ lexer for aerolint v2.

Two views of a source file, produced in one place so every analysis agrees
on what is code and what is comment/string:

  * lex(text)            -> [Token]: identifiers, numbers, literals and
                            punctuators with 1-based line/column positions.
                            Comments are dropped; preprocessor directives
                            are folded into single 'pp' tokens (with line
                            continuations resolved) so the declaration
                            parser never sees macro soup.
  * stripped_lines(text) -> per-line text with comments and string/char
                            literal *contents* blanked out (quotes kept as
                            empty literals). This is the view the line rules
                            (aerolint v1 heritage) match against, preserved
                            exactly so the PR 2-6 rule semantics carry over.

Dependency-free; stdlib only.
"""


class Token(object):
    __slots__ = ("kind", "text", "line", "col")

    # kind: 'id' | 'num' | 'str' | 'chr' | 'punct' | 'pp'
    def __init__(self, kind, text, line, col):
        self.kind = kind
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self):
        return "Token(%r, %r, %d:%d)" % (self.kind, self.text, self.line,
                                         self.col)


_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = ("::", "->", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
           "^=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "##")

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")


def _skip_string(text, i, quote):
    """Index just past the closing quote of the literal starting at i
    (i points at the opening quote)."""
    n = len(text)
    i += 1
    while i < n:
        c = text[i]
        if c == "\\":
            i += 2
            continue
        if c == quote or c == "\n":  # unterminated: stop at EOL like cpp
            return i + 1 if c == quote else i
        i += 1
    return i


def _skip_raw_string(text, i):
    """i points at the 'R' of R"delim( ... )delim". Returns index past the
    closing quote."""
    n = len(text)
    j = text.find('"', i)
    if j < 0:
        return n
    k = j + 1
    while k < n and text[k] not in "(\n":
        k += 1
    if k >= n or text[k] != "(":
        return _skip_string(text, j, '"')
    delim = text[j + 1:k]
    end = text.find(")" + delim + '"', k)
    return n if end < 0 else end + len(delim) + 2


def lex(text):
    """Tokenize C++ source. Comments vanish; a preprocessor directive becomes
    one 'pp' token carrying its full (continuation-joined) text."""
    tokens = []
    i, n = 0, len(text)
    line, col = 1, 1
    at_line_start = True  # only whitespace seen since the last newline

    def advance(j):
        """Move position from i to j, updating line/col."""
        nonlocal line, col
        chunk = text[i:j]
        nl = chunk.count("\n")
        if nl:
            line += nl
            col = j - chunk.rfind("\n") - i
        else:
            col += j - i

    while i < n:
        c = text[i]
        if c == "\n":
            advance(i + 1)
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            advance(i + 1)
            i += 1
            continue
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            advance(j)
            i = j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            advance(j)
            i = j
            continue
        if c == "#" and at_line_start:
            # Fold the directive (with backslash continuations) into one
            # token; strip trailing // comments per continuation line.
            start_line, start_col = line, col
            j = i
            parts = []
            while j < n:
                eol = text.find("\n", j)
                eol = n if eol < 0 else eol
                seg = text[j:eol]
                cut = seg.find("//")
                if cut >= 0:
                    seg = seg[:cut]
                if seg.rstrip().endswith("\\"):
                    parts.append(seg.rstrip()[:-1])
                    j = eol + 1
                else:
                    parts.append(seg)
                    j = eol
                    break
            tok_text = " ".join(p.strip() for p in parts)
            tokens.append(Token("pp", tok_text, start_line, start_col))
            advance(j)
            i = j
            continue
        at_line_start = False
        if c in _ID_START:
            # raw string literal prefix?
            if c == "R" and i + 1 < n and text[i + 1] == '"':
                j = _skip_raw_string(text, i)
                tokens.append(Token("str", '""', line, col))
                advance(j)
                i = j
                continue
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line, col))
            advance(j)
            i = j
            continue
        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            j = i + 1
            while j < n:
                d = text[j]
                if d in _ID_CONT or d == "." or d == "'":
                    j += 1
                elif d in "+-" and text[j - 1] in "eEpP":
                    j += 1
                else:
                    break
            tokens.append(Token("num", text[i:j], line, col))
            advance(j)
            i = j
            continue
        if c == '"':
            j = _skip_string(text, i, '"')
            tokens.append(Token("str", text[i:j], line, col))
            advance(j)
            i = j
            continue
        if c == "'":
            j = _skip_string(text, i, "'")
            tokens.append(Token("chr", "''", line, col))
            advance(j)
            i = j
            continue
        three = text[i:i + 3]
        if three in _PUNCT3:
            tokens.append(Token("punct", three, line, col))
            advance(i + 3)
            i += 3
            continue
        two = text[i:i + 2]
        if two in _PUNCT2:
            tokens.append(Token("punct", two, line, col))
            advance(i + 2)
            i += 2
            continue
        tokens.append(Token("punct", c, line, col))
        advance(i + 1)
        i += 1
    return tokens


def strip_code(raw, in_block):
    """Return (code, in_block): one line with string/char literals and
    comments blanked out. `in_block` carries /* */ state across lines.
    Semantics identical to aerolint v1 so the heritage rules behave the
    same on every line they ever matched."""
    out = []
    i, n = 0, len(raw)
    while i < n:
        c = raw[i]
        if in_block:
            if raw.startswith("*/", i):
                in_block = False
                i += 2
            else:
                i += 1
            continue
        if raw.startswith("//", i):
            break
        if raw.startswith("/*", i):
            in_block = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            i += 1
            while i < n and raw[i] != quote:
                i += 2 if raw[i] == "\\" else 1
            i += 1
            out.append(quote + quote)
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block


def stripped_lines(lines):
    """strip_code applied to every line, threading the block-comment state."""
    out = []
    in_block = False
    for raw in lines:
        code, in_block = strip_code(raw, in_block)
        out.append(code)
    return out
