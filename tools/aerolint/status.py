"""Unchecked-status enforcement: a [[nodiscard]] result that is discarded
is a silent failure path.

The registry is self-discovered from the declarations the model parsed:

  * every function/method declared [[nodiscard]];
  * every function returning a [[nodiscard]] enum type (RunStatus).

A call in statement position (the call IS the whole statement) discards
the result. The receiver is resolved through the scope model; when it
cannot be resolved, the call is flagged only if *every* known
declaration of that method name is nodiscard (conservative on overload
ambiguity, strict on unambiguous names like JournalWriter::append).

Rule: unchecked-status. Scope: all of src/.
"""

from model import _match

# Method names shared with std types the model cannot see (streams, ...):
# an *unresolved* receiver for these is not evidence of a discard. Resolved
# receivers are still checked.
_AMBIENT = {"flush", "write", "put", "open", "close", "clear", "reset"}


def _registry(eng):
    nodiscard_enums = {name for name, e in eng.program.enums.items()
                       if e.nodiscard}
    methods = {}  # name -> {cls or None: nodiscard?}
    for sf, fn in eng.functions():
        nd = fn.nodiscard or any(e in fn.ret_type.split()
                                 or ("::" + e) in fn.ret_type
                                 or fn.ret_type == e
                                 for e in nodiscard_enums)
        slot = methods.setdefault(fn.name, {})
        # a later declaration of the same (cls, name) that IS nodiscard wins
        slot[fn.cls] = slot.get(fn.cls, False) or nd
    return methods


def _scan_function(eng, sf, fn, methods):
    toks = fn.tokens
    lo, hi = fn.body
    i = lo
    while i < hi:
        t = toks[i]
        if t.kind != "id" or t.text not in methods:
            i += 1
            continue
        if i + 1 >= hi or toks[i + 1].text != "(":
            i += 1
            continue
        prev = toks[i - 1].text if i > lo else ""
        recv = None
        stmt_start = None
        if prev in (".", "->"):
            # Walk back through a chained receiver like
            # opts.checkpoint->record(...): ids alternating with . / ->.
            k = i - 2
            while k - 1 > lo and toks[k].kind == "id" \
                    and toks[k - 1].text in (".", "->"):
                k -= 2
            if toks[k].kind == "id":
                stmt_start = toks[k - 1].text if k - 1 >= lo else "{"
            else:
                stmt_start = toks[k].text  # ']' / ')' receivers: not a
                # plain statement-position discard we can attribute
            recv_tok = toks[i - 2]
            if recv_tok.kind == "id":
                recv = "this" if recv_tok.text == "this" else recv_tok.text
        else:
            stmt_start = toks[i - 1].text if i > lo else "{"
        if stmt_start not in (";", "{", "}"):
            i += 1
            continue
        end = _match(toks, i + 1, "(", ")")
        if end >= hi or toks[end].text != ";":
            i = end
            continue
        # statement-position call of a registry name: is it nodiscard?
        slot = methods[t.text]
        discard = False
        target_cls = None
        if prev in (".", "->"):
            cls = fn.cls if recv == "this" else (
                eng.program.resolve_receiver(fn, recv) if recv else None)
            if cls is not None and cls in slot:
                discard = slot[cls]
                target_cls = cls
            elif cls is None and t.text not in _AMBIENT:
                named = [c for c, nd in slot.items() if c is not None]
                if named and all(slot[c] for c in named):
                    discard = True
                    target_cls = named[0]
        else:
            if fn.cls and fn.cls in slot:
                discard = slot[fn.cls]
                target_cls = fn.cls
            elif None in slot:
                discard = slot[None]
        if discard:
            qual = "%s::%s" % (target_cls, t.text) if target_cls else t.text
            eng.report(
                "unchecked-status", sf.relpath, t.line,
                "discarded [[nodiscard]] result of %s(); branch on it or "
                "waive with an aerolint allow(unchecked-status: reason)"
                % qual)
        i = end
        continue


def analyze(eng):
    methods = _registry(eng)
    # prune names with no nodiscard declaration at all (fast path)
    methods = {n: slot for n, slot in methods.items()
               if any(slot.values())}
    for sf, fn in eng.functions():
        if fn.body is None:
            continue
        _scan_function(eng, sf, fn, methods)
