"""Atomics audit: every std::atomic member declares its role, and every
access site is checked against that role.

Roles (declared with AERO_ATOMIC_ROLE(role[, relaxed]) on the member):

  counter    monotonic statistics: ++/--/+=/-=/fetch_add/fetch_sub/load/
             store/compare_exchange; any memory order (relaxed counters
             are the point -- nothing is published through them).
  flag       state bits tested by other threads: load/store/exchange/
             compare_exchange. Default or acquire/release orders; relaxed
             only when the role says `relaxed` (e.g. a tag whose pointee
             is immutable, so the load orders nothing).
  published  data handed to other threads through the atomic: stores must
             be release/seq_cst (or default), loads acquire/seq_cst (or
             default); relaxed is forbidden unless the role says
             `relaxed` or the site carries a reasoned escape.

Rules:
  atomic-role      atomic member without a role annotation, or an op the
                   role does not admit (fetch_add on a flag, ...).
  atomic-order     a memory order the role forbids.
  atomic-implicit  plain `x = v` / bare `x` reads of an atomic member:
                   implicit seq_cst conversions hide the concurrency --
                   write .load()/.store() so the audit sees the order.
  atomic-mixed     memcpy/memset/reinterpret_cast over an atomic member
                   or an object that contains one.

Scope: all of src/ (pointers to atomics owned elsewhere are exempt).
"""

from model import _match

ROLES = ("counter", "flag", "published")

_OPS_BY_ROLE = {
    "counter": {"load", "store", "fetch_add", "fetch_sub", "exchange",
                "compare_exchange_weak", "compare_exchange_strong"},
    "flag": {"load", "store", "exchange", "compare_exchange_weak",
             "compare_exchange_strong"},
    "published": {"load", "store", "exchange", "compare_exchange_weak",
                  "compare_exchange_strong"},
}

_ORDER_IDS = {"memory_order_relaxed", "memory_order_acquire",
              "memory_order_release", "memory_order_acq_rel",
              "memory_order_seq_cst", "memory_order_consume"}

_LOAD_OK = {"published": {"memory_order_acquire", "memory_order_seq_cst"}}
_STORE_OK = {"published": {"memory_order_release", "memory_order_seq_cst"}}


class AtomicDecl(object):
    __slots__ = ("member", "role", "relaxed_ok")

    def __init__(self, member, role, relaxed_ok):
        self.member = member
        self.role = role
        self.relaxed_ok = relaxed_ok


def _is_tracked_atomic(m):
    t = m.type_str
    if "std::atomic<" not in t:
        return False
    if t.rstrip().endswith("*"):
        return False  # pointer to an atomic owned elsewhere
    return True


def _collect(eng):
    decls = {}  # (class, member) -> AtomicDecl
    for sf in eng.src_files():
        for cls in sf.model.classes.values():
            for m in cls.members.values():
                if not _is_tracked_atomic(m):
                    continue
                ann = m.ann("AERO_ATOMIC_ROLE")
                if ann is None or not ann.args \
                        or ann.args[0].strip() not in ROLES:
                    eng.report(
                        "atomic-role", sf.relpath, m.line,
                        "atomic member %s has no declared role; annotate "
                        "with AERO_ATOMIC_ROLE(counter|flag|published"
                        "[, relaxed])" % m.qual())
                    continue
                role = ann.args[0].strip()
                relaxed_ok = any(a.strip() == "relaxed"
                                 for a in ann.args[1:])
                decls[(cls.name, m.name)] = AtomicDecl(m, role, relaxed_ok)
        for g in sf.model.globals:
            if _is_tracked_atomic(g):
                ann = g.ann("AERO_ATOMIC_ROLE")
                if ann is None or not ann.args \
                        or ann.args[0].strip() not in ROLES:
                    eng.report(
                        "atomic-role", sf.relpath, g.line,
                        "atomic variable %s has no declared role; annotate "
                        "with AERO_ATOMIC_ROLE(counter|flag|published"
                        "[, relaxed])" % g.name)
                else:
                    decls[(None, g.name)] = AtomicDecl(
                        g, ann.args[0].strip(),
                        any(a.strip() == "relaxed" for a in ann.args[1:]))
    return decls


def _receiver_class(eng, fn, toks, lo, j):
    """Class of the receiver expression whose last token is at j (the token
    before the '.'/'->'). Follows member chains (r.bl_pool.steals) and
    subscripts (tris_[i].dead); returns None when the base cannot be
    resolved -- the audit prefers silence over a guessed receiver."""
    segs = []
    while True:
        if toks[j].text == "]":
            depth = 0
            k = j
            while k > lo:
                if toks[k].text == "]":
                    depth += 1
                elif toks[k].text == "[":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            j = k - 1  # the id the subscript applies to
            continue
        if j < lo or toks[j].kind != "id":
            return None
        segs.append(toks[j].text)
        if j - 1 > lo and toks[j - 1].text in (".", "->"):
            j -= 2
            continue
        break
    segs.reverse()
    cls = fn.cls if segs[0] == "this" else \
        eng.program.resolve_receiver(fn, segs[0])
    for name in segs[1:]:
        if cls is None:
            return None
        info = eng.program.classes.get(cls)
        m = info.members.get(name) if info else None
        if m is None:
            return None
        cls = eng.program.class_in_type(m.type_str)
    return cls


def _resolve_atomic(eng, fn, toks, lo, i, decls):
    """If the id at i names a tracked atomic member (via its receiver, the
    enclosing class, or a global), return its AtomicDecl."""
    name = toks[i].text
    prev = toks[i - 1].text if i > lo else ""
    if prev in (".", "->"):
        cls = _receiver_class(eng, fn, toks, lo, i - 2)
        return decls.get((cls, name)) if cls else None
    if fn.cls and (fn.cls, name) in decls:
        return decls[(fn.cls, name)]
    if (None, name) in decls:
        return decls[(None, name)]
    return None


def _call_order(toks, i, hi):
    """Memory-order ids inside the call whose '(' is at i (or None)."""
    end = _match(toks, i, "(", ")")
    return [t.text for t in toks[i:end] if t.text in _ORDER_IDS], end


def _scan_function(eng, sf, fn, decls):
    toks = fn.tokens
    lo, hi = fn.body
    i = lo
    while i < hi:
        t = toks[i]
        if t.kind != "id":
            i += 1
            continue
        if t.text in ("memcpy", "memmove", "memset"):
            i = _check_mixed(eng, sf, fn, toks, lo, i, hi, decls)
            continue
        d = _resolve_atomic(eng, fn, toks, lo, i, decls)
        if d is None:
            i += 1
            continue
        # follow an optional [index] (atomic arrays)
        j = i + 1
        if j < hi and toks[j].text == "[":
            j = _match(toks, j, "[", "]")
        nxt = toks[j].text if j < hi else ""
        if nxt in (".", "->") and j + 1 < hi:
            op = toks[j + 1].text
            if op in ("load", "store", "exchange", "fetch_add", "fetch_sub",
                      "compare_exchange_weak", "compare_exchange_strong"):
                orders = []
                if j + 2 < hi and toks[j + 2].text == "(":
                    orders, end = _call_order(toks, j + 2, hi)
                else:
                    end = j + 2
                _check_op(eng, sf, d, toks[j + 1], op, orders)
                i = end
                continue
            i = j + 2
            continue
        if nxt in ("++", "--", "+=", "-="):
            _check_op(eng, sf, d, toks[j], "fetch_add", [])
            i = j + 1
            continue
        if nxt == "=" :
            eng.report(
                "atomic-implicit", sf.relpath, t.line,
                "implicit store to atomic %s via '='; write "
                "%s.store(value, order) so the memory order is explicit"
                % (d.member.qual(), t.text))
            i = j + 1
            continue
        prev = toks[i - 1].text if i > lo else ""
        if prev in ("++", "--", "&"):
            if prev == "&":
                eng.report(
                    "atomic-mixed", sf.relpath, t.line,
                    "taking the address of atomic %s invites non-atomic "
                    "access to its storage" % d.member.qual())
            else:
                _check_op(eng, sf, d, t, "fetch_add", [])
            i = j
            continue
        # bare read: implicit seq_cst conversion
        eng.report(
            "atomic-implicit", sf.relpath, t.line,
            "implicit read of atomic %s; write %s.load(order) so the "
            "memory order is explicit" % (d.member.qual(), t.text))
        i = j
        continue
    return


def _check_op(eng, sf, d, tok, op, orders):
    role = d.role
    if op not in _OPS_BY_ROLE[role]:
        eng.report(
            "atomic-role", sf.relpath, tok.line,
            "%s() on atomic %s contradicts its declared role '%s'"
            % (op, d.member.qual(), role))
        return
    if not orders:
        return  # default seq_cst is admissible for every role
    for order in orders:
        if order == "memory_order_relaxed":
            if role == "counter" or d.relaxed_ok:
                continue
            eng.report(
                "atomic-order", sf.relpath, tok.line,
                "relaxed %s on atomic %s (role '%s'); this atomic "
                "synchronizes -- use acquire/release, or declare the role "
                "relaxed with a reason" % (op, d.member.qual(), role))
        elif role == "published":
            ok = _LOAD_OK["published"] if op == "load" \
                else _STORE_OK["published"] if op == "store" \
                else _ORDER_IDS
            if order not in ok:
                eng.report(
                    "atomic-order", sf.relpath, tok.line,
                    "%s with %s on published atomic %s; publication needs "
                    "release stores and acquire loads"
                    % (op, order, d.member.qual()))


def _check_mixed(eng, sf, fn, toks, lo, i, hi, decls):
    """memcpy/memset over atomic-bearing memory."""
    if i + 1 >= hi or toks[i + 1].text != "(":
        return i + 1
    end = _match(toks, i + 1, "(", ")")
    for k in range(i + 2, end - 1):
        t = toks[k]
        if t.kind != "id":
            continue
        d = _resolve_atomic(eng, fn, toks, lo, k, decls)
        if d is not None:
            eng.report(
                "atomic-mixed", sf.relpath, toks[i].line,
                "%s over atomic %s bypasses the atomic protocol; mixed "
                "atomic/non-atomic access to the same bytes is a data race"
                % (toks[i].text, d.member.qual()))
            return end
        cls = eng.program.resolve_receiver(fn, t.text)
        if cls:
            info = eng.program.classes.get(cls)
            if info and any(_is_tracked_atomic(m)
                            for m in info.members.values()):
                eng.report(
                    "atomic-mixed", sf.relpath, toks[i].line,
                    "%s over an object of %s, which contains atomic "
                    "members; byte-level access to atomic storage is a "
                    "data race" % (toks[i].text, cls))
                return end
    return end


def analyze(eng):
    decls = _collect(eng)
    for sf, fn in eng.functions():
        if fn.body is None:
            continue
        _scan_function(eng, sf, fn, decls)
