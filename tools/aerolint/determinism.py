"""Determinism dataflow analysis: the static complement of the runtime
audit modes. The repo's headline guarantee is bit-identical meshes, so
anything order-sensitive feeding mesh construction must be deterministic.

Scope (mesh-affecting code):
  * the mesh kernels: src/delaunay, src/geom, src/blayer, src/hull,
    src/inviscid;
  * the assembly layer that orders their output: src/core;
  * the pool's unit-dispatch path: src/runtime/pool.cpp.

Rules:
  det-unordered-iter  range-for over a std::unordered_map/unordered_set:
                      hash-order iteration leaks the allocator/seed into
                      whatever the loop emits. Probe-only use (find/
                      count/contains) is fine and not flagged.
  det-pointer-key     std::map/set ordered by a pointer key, sorting or
                      hashing on addresses: allocation order is not
                      reproducible across runs or ranks.
  det-clock           clock or PRNG reads inside the mesh kernels
                      (delaunay/geom/blayer/hull/inviscid): time must
                      never influence element creation. (Timing in core/
                      runtime is fine -- it feeds stats, not meshes.)
"""

import os

from model import _match, _skip_angles

KERNEL_DIRS = ("src/delaunay", "src/geom", "src/blayer", "src/hull",
               "src/inviscid")
SCOPE_DIRS = KERNEL_DIRS + ("src/core",)

UNORDERED = ("unordered_map", "unordered_set", "unordered_multimap",
             "unordered_multiset")

CLOCK_IDS = {"mono_now", "steady_clock", "system_clock",
             "high_resolution_clock", "random_device", "rand", "srand",
             "Timer"}


def _in_scope(eng, relpath):
    if eng.in_scope(relpath, *SCOPE_DIRS):
        return True
    return os.path.basename(relpath) == "pool.cpp" \
        and eng.in_scope(relpath, "src/runtime")


def _type_is_unordered(type_str):
    return any(u in type_str for u in UNORDERED)


def _expr_type(eng, fn, toks, lo, hi):
    """Resolved type string of a (simple) expression token range: the
    declared type of its last id chain, or None."""
    ids = [t for t in toks[lo:hi] if t.kind == "id"]
    if not ids:
        return None
    name = ids[-1].text
    locs = eng.program.function_locals(fn)
    # function_locals only records class-typed vars; for container typing we
    # need the raw declared type, so look in params and members directly.
    for (t, n) in fn.params:
        if n == name:
            return t
    if fn.cls:
        m = eng.program.member(fn.cls, name)
        if m is not None:
            return m.type_str
    if len(ids) >= 2:
        recv_cls = locs.get(ids[-2].text) or (
            fn.cls if ids[-2].text == "this" else
            eng.program.resolve_receiver(fn, ids[-2].text))
        if recv_cls:
            m = eng.program.member(recv_cls, name)
            if m is not None:
                return m.type_str
    # local declaration: scan the body for `Type ... name` before this use
    body_lo, body_hi = fn.body
    i = body_lo
    while i < body_hi and fn.tokens[i].line <= ids[-1].line:
        t = fn.tokens[i]
        if t.kind == "id" and t.text == name and i > body_lo:
            decl = _local_decl_type(fn.tokens, body_lo, i)
            if decl:
                return decl
        i += 1
    return None


def _local_decl_type(toks, lo, i):
    """If toks[i] is the declarator name of a local declaration, return the
    type text before it."""
    j = i - 1
    parts = []
    depth = 0
    while j >= lo:
        t = toks[j].text
        if t in (">", ">>"):
            depth += 2 if t == ">>" else 1
        elif t == "<":
            depth -= 1
        elif depth == 0 and (t in (";", "{", "}", "(", ")", "=", ",", ":")
                             or toks[j].kind not in ("id", "punct")
                             and t not in ("&", "*")):
            break
        if toks[j].kind == "id" or t in ("::", "<", ">", ">>", "&", "*",
                                         ","):
            parts.append(t)
        j -= 1
    parts.reverse()
    text = "".join(parts)
    return text if any(u in text for u in UNORDERED) else None


def _check_range_for(eng, sf, fn):
    toks = fn.tokens
    lo, hi = fn.body
    i = lo
    while i < hi:
        t = toks[i]
        if t.kind == "id" and t.text == "for" and i + 1 < hi \
                and toks[i + 1].text == "(":
            end = _match(toks, i + 1, "(", ")")
            # find the range-for ':' at paren depth 1 (not '::')
            colon = None
            depth = 0
            for k in range(i + 1, end - 1):
                x = toks[k].text
                if x in ("(", "[", "{"):
                    depth += 1
                elif x in (")", "]", "}"):
                    depth -= 1
                elif x == ":" and depth == 1:
                    colon = k
                    break
                elif x == ";":
                    break
            if colon is not None:
                type_str = _expr_type(eng, fn, toks, colon + 1, end - 1)
                if type_str and _type_is_unordered(type_str):
                    eng.report(
                        "det-unordered-iter", sf.relpath, t.line,
                        "iteration over %s visits elements in hash order, "
                        "which is not reproducible; iterate a deterministic "
                        "index or sort the view first" % type_str)
            i = end
            continue
        i += 1


def _check_pointer_keys(eng, sf):
    for cls in sf.model.classes.values():
        for m in cls.members.values():
            _flag_pointer_key(eng, sf.relpath, m.line, m.type_str,
                              "member %s" % m.qual())
    for g in sf.model.globals:
        _flag_pointer_key(eng, sf.relpath, g.line, g.type_str,
                          "variable %s" % g.name)


def _flag_pointer_key(eng, relpath, line, type_str, what):
    for container in ("std::map<", "std::set<", "std::multimap<",
                      "std::multiset<") + tuple("std::%s<" % u
                                                for u in UNORDERED):
        idx = type_str.find(container)
        if idx < 0:
            continue
        inner = type_str[idx + len(container):]
        key = _first_template_arg(inner)
        if key.rstrip().endswith("*"):
            eng.report(
                "det-pointer-key", relpath, line,
                "%s keys a container by pointer (%s); addresses vary "
                "run-to-run, so any ordering or hashing over them is "
                "non-deterministic" % (what, key.strip()))
            return
    if "std::hash<" in type_str and "*" in type_str.split("std::hash<", 1)[1]:
        eng.report("det-pointer-key", relpath, line,
                   "%s hashes a pointer; addresses vary run-to-run" % what)


def _first_template_arg(s):
    depth = 0
    for k, c in enumerate(s):
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
        elif c == "," and depth == 0:
            return s[:k]
    return s


def _check_clock(eng, sf, fn):
    toks = fn.tokens
    lo, hi = fn.body
    for i in range(lo, hi):
        t = toks[i]
        if t.kind != "id" or t.text not in CLOCK_IDS:
            continue
        nxt = toks[i + 1].text if i + 1 < hi else ""
        if t.text in ("mono_now", "rand", "srand") and nxt != "(":
            continue
        eng.report(
            "det-clock", sf.relpath, t.line,
            "clock/PRNG read (%s) inside a mesh kernel; time and unseeded "
            "randomness must never influence element creation" % t.text)


def analyze(eng):
    for sf in eng.src_files():
        if not _in_scope(eng, sf.relpath):
            continue
        _check_pointer_keys(eng, sf)
        for fn in sf.model.functions:
            if fn.body is None:
                continue
            _check_range_for(eng, sf, fn)
            if eng.in_scope(sf.relpath, *KERNEL_DIRS):
                _check_clock(eng, sf, fn)
