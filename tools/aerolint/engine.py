"""aerolint v2 engine: file loading, escape comments, rule orchestration.

The engine runs two rule families over one shared view of the sources:

  * line rules (the aerolint v1 heritage set) over comment/string-stripped
    lines, and
  * whole-program analyses (locks, determinism, atomics, status) over the
    token/declaration model built by lexer.py + model.py.

Everything operates on an in-memory {relpath: text} mapping so the
self-tests and the fixture corpus can lint synthetic trees without
touching disk.

Escape comments: a line opts out of one rule with

    code();  // aerolint: allow(rule-name)            (v1 rules)
    code();  // aerolint: allow(rule-name: reason)    (v2 analyses)

The v2 analyses REQUIRE the reason text: a bare allow() on one of them is
an undocumented waiver and does not suppress the finding.
"""

import os
import re

import model
import rules as line_rules
from lexer import stripped_lines

ESCAPE_RE = re.compile(r"//\s*aerolint:\s*allow\(([a-z-]+)(?::\s*([^)]+))?\)")

# Rules whose waivers must carry a documented reason.
REASON_REQUIRED = frozenset({
    "lock-table", "lock-order", "lock-blocking",
    "det-unordered-iter", "det-pointer-key", "det-clock",
    "atomic-role", "atomic-order", "atomic-implicit", "atomic-mixed",
    "unchecked-status", "kernel-shared-state",
})

ANALYSIS_OF_RULE = {
    "lock-table": "locks", "lock-order": "locks", "lock-blocking": "locks",
    "det-unordered-iter": "determinism", "det-pointer-key": "determinism",
    "det-clock": "determinism",
    "atomic-role": "atomics", "atomic-order": "atomics",
    "atomic-implicit": "atomics", "atomic-mixed": "atomics",
    "unchecked-status": "status",
    "kernel-shared-state": "kernel_state",
}


class Finding(object):
    __slots__ = ("rule", "relpath", "line", "message")

    def __init__(self, rule, relpath, line, message):
        self.rule = rule
        self.relpath = relpath
        self.line = line
        self.message = message

    def render(self):
        return "%s:%d: [%s] %s" % (self.relpath, self.line, self.rule,
                                   self.message)


class SourceFile(object):
    __slots__ = ("relpath", "lines", "code_lines", "escapes", "model",
                 "external")

    def __init__(self, relpath, text, external=False):
        self.relpath = relpath
        self.lines = text.splitlines()
        self.code_lines = stripped_lines(self.lines)
        # 1-based line -> {rule: reason-or-None}
        self.escapes = {}
        for ln, raw in enumerate(self.lines, start=1):
            esc = {}
            for rule, reason in ESCAPE_RE.findall(raw):
                esc[rule] = reason.strip() if reason else None
            if esc:
                self.escapes[ln] = esc
        self.external = external
        self.model = None if external else model.parse_file(relpath, text)


def _posix(relpath):
    return relpath.replace(os.sep, "/")


class Engine(object):
    def __init__(self, sources, external=()):
        """sources: {relpath: text}. Paths in `external` get only the
        public-surface rules (tests/, examples/)."""
        self.files = {}
        self.program = model.Program()
        ext = set(external)
        for relpath in sorted(sources):
            sf = SourceFile(relpath, sources[relpath],
                            external=relpath in ext)
            self.files[relpath] = sf
            if sf.model is not None:
                self.program.add(sf.model)
        self.findings = []
        self.lock_graph = None

    # -- reporting ---------------------------------------------------------

    def report(self, rule, relpath, line, message):
        """File a finding unless an escape suppresses it. Escapes attach to
        their own line or, when written on comment-only lines, to the next
        code line below them. Reason-required rules ignore bare allow()
        waivers (the finding stands, annotated)."""
        sf = self.files.get(relpath)
        found, reason = self._escape_for(sf, line, rule) if sf else (False,
                                                                     None)
        if found:
            if rule not in REASON_REQUIRED or reason:
                return
            message += ("  [waiver ignored: allow(%s) needs a reason -- "
                        "write allow(%s: why)]" % (rule, rule))
        self.findings.append(Finding(rule, relpath, line, message))

    @staticmethod
    def _escape_for(sf, line, rule):
        esc = sf.escapes.get(line, {})
        if rule in esc:
            return True, esc[rule]
        # Walk up through the contiguous comment block above the line.
        ln = line - 1
        while ln >= 1 and ln <= len(sf.lines):
            if sf.code_lines[ln - 1].strip():
                break  # a code line ends the block
            if not sf.lines[ln - 1].strip():
                break  # so does a blank line
            esc = sf.escapes.get(ln, {})
            if rule in esc:
                return True, esc[rule]
            ln -= 1
        return False, None

    # -- passes ------------------------------------------------------------

    def run(self):
        import atomics
        import determinism
        import kernel_state
        import locks
        import status

        for relpath in sorted(self.files):
            sf = self.files[relpath]
            ruleset = (line_rules.EXTERNAL_RULES if sf.external
                       else line_rules.RULES)
            self._run_line_rules(sf, ruleset)
        self.lock_graph = locks.analyze(self)
        determinism.analyze(self)
        atomics.analyze(self)
        status.analyze(self)
        kernel_state.analyze(self)
        self.findings.sort(key=lambda f: (f.relpath, f.line, f.rule))
        return self.findings

    def _run_line_rules(self, sf, ruleset):
        for lineno, (raw, code) in enumerate(zip(sf.lines, sf.code_lines),
                                             start=1):
            escapes = sf.escapes.get(lineno, {})
            for rule, check in ruleset:
                if rule in escapes:
                    continue  # v1 rules accept bare allow()
                msg = check(sf.relpath, code, raw)
                if msg is not None:
                    self.findings.append(Finding(rule, sf.relpath, lineno,
                                                 msg))

    # -- model access helpers for the analyses -----------------------------

    def src_files(self):
        for relpath in sorted(self.files):
            sf = self.files[relpath]
            if not sf.external:
                yield sf

    def functions(self):
        for sf in self.src_files():
            for fn in sf.model.functions:
                yield sf, fn

    def in_scope(self, relpath, *dirs):
        p = _posix(relpath)
        return any(("/" + d + "/") in ("/" + p) or p.startswith(d + "/")
                   for d in dirs)


def load_tree(root):
    """Read the repo tree into (sources, external) for Engine."""
    sources = {}
    external = set()
    fixtures = os.path.join("tests", "aerolint")
    for top in ("src", "tests", "examples"):
        base = os.path.join(root, top)
        for dirpath, _dirnames, filenames in os.walk(base):
            if os.path.relpath(dirpath, root).startswith(fixtures):
                continue  # the fixture corpus is linted as its own tree
            for name in sorted(filenames):
                if not name.endswith((".hpp", ".cpp")):
                    continue
                path = os.path.join(dirpath, name)
                relpath = os.path.relpath(path, root)
                with open(path, "r", encoding="utf-8") as f:
                    sources[relpath] = f.read()
                if top in ("tests", "examples"):
                    external.add(relpath)
    return sources, external


def lint_tree(root):
    sources, external = load_tree(root)
    eng = Engine(sources, external)
    eng.run()
    return eng
