#!/usr/bin/env python3
"""aerolint v2: whole-program static guardrails for the aeromesh sources.

Dependency-free (stdlib only). On top of the per-line heritage rules
(geom-predicates, determinism, no-raw-clock, no-stdout, naked-new,
runtime-throw, payload-copy, unchecked-io, layering, public-api), a C++
lexer + declaration model drives five whole-program analyses:

  locks        lock-table / lock-order / lock-blocking: every runtime/obs/
               io mutex is named+ranked (AERO_LOCK_NAME), nested
               acquisitions follow ascending rank, the acquisition graph
               is cycle-free, and no lock is held across a blocking call.
  determinism  det-unordered-iter / det-pointer-key / det-clock: hash-
               order iteration, pointer-keyed ordering, and clock reads
               must not reach mesh-affecting code.
  atomics      atomic-role / atomic-order / atomic-implicit / atomic-
               mixed: every std::atomic declares a role (counter | flag |
               published) checked against its memory orders and accesses.
  status       unchecked-status: [[nodiscard]] results (RunStatus,
               journal/checkpoint I/O, Options::validate()) must be used.
  kernel_state kernel-shared-state: mutable members, non-const globals,
               and function-local statics reachable from the Delaunay
               insert path (src/delaunay, src/geom) declare their
               threading discipline with AERO_SHARED_STATE(why); atomics
               and thread_local/const state are exempt (owned by the
               audits above / safe by construction).

Escapes: `// aerolint: allow(rule)` for the heritage rules;
`// aerolint: allow(rule: reason)` (reason REQUIRED) for the analyses.

Usage:
    python3 tools/aerolint <repo-root> [--sarif FILE] [--lock-graph FILE]
    python3 tools/aerolint --self-test

Exit codes: 0 clean, 1 violations, 2 usage error.
"""

import json
import os
import sys

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import engine
import sarif


def main(argv):
    args = argv[1:]
    if args == ["--self-test"]:
        import selftest
        return selftest.run()
    root = None
    sarif_path = None
    graph_path = None
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--sarif":
            i += 1
            if i >= len(args):
                sys.stderr.write("aerolint: --sarif needs a file\n")
                return 2
            sarif_path = args[i]
        elif a == "--lock-graph":
            i += 1
            if i >= len(args):
                sys.stderr.write("aerolint: --lock-graph needs a file\n")
                return 2
            graph_path = args[i]
        elif a in ("-h", "--help"):
            sys.stderr.write(__doc__)
            return 0
        elif a.startswith("-"):
            sys.stderr.write("aerolint: unknown flag %s\n%s" % (a, __doc__))
            return 2
        elif root is None:
            root = a
        else:
            sys.stderr.write(__doc__)
            return 2
        i += 1
    if root is None:
        sys.stderr.write(__doc__)
        return 2
    if not os.path.isdir(os.path.join(root, "src")):
        sys.stderr.write("aerolint: no src/ under %s\n" % root)
        return 2

    eng = engine.lint_tree(root)

    if sarif_path:
        doc = sarif.write_sarif(eng.findings, sarif_path)
        schema_file = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                   "sarif-schema.json")
        with open(schema_file, "r", encoding="utf-8") as f:
            schema = json.load(f)
        schema_errors = sarif.validate(doc, schema)
        for e in schema_errors:
            sys.stderr.write("aerolint: SARIF schema violation: %s\n" % e)
        if schema_errors:
            return 2
    if graph_path:
        with open(graph_path, "w", encoding="utf-8") as f:
            json.dump(eng.lock_graph, f, indent=2, sort_keys=True)
            f.write("\n")
        if eng.lock_graph["cycles"]:
            sys.stderr.write("aerolint: lock graph has cycles\n")

    for v in eng.findings:
        sys.stderr.write(v.render() + "\n")
    if eng.findings:
        sys.stderr.write("aerolint: %d violation(s)\n" % len(eng.findings))
        return 1
    sys.stderr.write("aerolint: clean (%d locks ranked, graph cycle-free)\n"
                     % len(eng.lock_graph["locks"]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
