"""Lock-order analysis: the lock table, the acquisition graph, and
blocking-while-locked enforcement.

Scope: src/runtime, src/obs, src/io (and any tree that mirrors that
layout, e.g. the fixture corpus).

The lock table is annotation-driven. Every mutex member in scope must
carry

    Mutex m_ AERO_LOCK_NAME("domain.name", rank);            // or
    Mutex m_ AERO_LOCK_NAME("domain.name", rank, may_block);

where a lower rank is acquired first and `may_block` marks a lock whose
entire purpose is to serialize a blocking operation (the journal's fwrite
mutex). Declared ordering intent is added with

    Mutex m_ AERO_LOCK_NAME(...) AERO_ACQUIRED_BEFORE("other.name");

Rules:
  lock-table     unnamed mutex in scope; duplicate name with a different
                 rank; ACQUIRED_BEFORE naming an unknown lock or
                 contradicting the ranks; unresolvable lock expression.
  lock-order     observed nested acquisition violating rank order (incl.
                 re-acquiring the same named lock); any cycle in the
                 declared+observed acquisition graph.
  lock-blocking  blocking call (comm send/recv, CV wait/wait_for/
                 wait_until, sleep, journal append/flush, raw fwrite/
                 fflush) while holding a lock not marked may_block. A CV
                 wait through a held RAII object is fine for that lock
                 (it releases during the wait) but still flags every
                 *other* lock held across it.
"""

SCOPE_DIRS = ("src/runtime", "src/obs", "src/io", "src/service")

# RAII lock spellings: `Type[<...>] var(expr, ...);`
RAII_TYPES = {"MutexLock", "UniqueLock", "lock_guard", "unique_lock",
              "scoped_lock", "shared_lock"}

# Calls that block by name alone, wherever they appear.
BLOCKING_NAMES = {"send", "recv", "wait_for", "wait_until", "sleep_for",
                  "sleep_until", "fwrite", "fflush"}
# Calls that block only on specific receiver classes (these names are too
# generic to flag unresolved).
BLOCKING_MEMBERS = {
    "append": {"JournalWriter"},
    "flush": {"JournalWriter"},
    "record": {"CheckpointSink"},
}


class LockDecl(object):
    __slots__ = ("name", "rank", "may_block", "member", "relpath", "line",
                 "before")

    def __init__(self, name, rank, may_block, member, relpath, line):
        self.name = name
        self.rank = rank
        self.may_block = may_block
        self.member = member
        self.relpath = relpath
        self.line = line
        self.before = []


def _unquote(s):
    s = s.strip()
    if len(s) >= 2 and s[0] == '"' and s[-1] == '"':
        return s[1:-1]
    return s


def _collect_table(eng):
    """Scan in-scope classes for mutex members; build name -> LockDecl and
    (class, member) -> lock name."""
    table = {}
    member_lock = {}
    for sf in eng.src_files():
        if not eng.in_scope(sf.relpath, *SCOPE_DIRS):
            continue
        for cls in sf.model.classes.values():
            if cls.name == "Mutex":
                continue  # the capability wrapper IS the lock primitive
            for m in cls.members.values():
                if not m.is_mutex():
                    continue
                ann = m.ann("AERO_LOCK_NAME")
                if ann is None or len(ann.args) < 2:
                    eng.report(
                        "lock-table", sf.relpath, m.line,
                        "mutex member %s has no AERO_LOCK_NAME(\"name\", "
                        "rank) annotation; every runtime/obs/io lock must "
                        "be named and ranked" % m.qual())
                    continue
                name = _unquote(ann.args[0])
                try:
                    rank = int(ann.args[1])
                except ValueError:
                    eng.report("lock-table", sf.relpath, m.line,
                               "AERO_LOCK_NAME rank '%s' is not an integer"
                               % ann.args[1])
                    continue
                may_block = any(a.strip() == "may_block"
                                for a in ann.args[2:])
                if name in table and table[name].rank != rank:
                    eng.report(
                        "lock-table", sf.relpath, m.line,
                        "lock name \"%s\" redeclared with rank %d "
                        "(previously %d at %s:%d)"
                        % (name, rank, table[name].rank,
                           table[name].relpath, table[name].line))
                else:
                    table.setdefault(
                        name, LockDecl(name, rank, may_block, m,
                                       sf.relpath, m.line))
                member_lock[(cls.name, m.name)] = name
                ab = m.ann("AERO_ACQUIRED_BEFORE")
                if ab is not None:
                    table[name].before.extend(_unquote(a) for a in ab.args)
    # validate declared ordering against the ranks
    for name, decl in sorted(table.items()):
        for other in decl.before:
            if other not in table:
                eng.report("lock-table", decl.relpath, decl.line,
                           "AERO_ACQUIRED_BEFORE(\"%s\") names an unknown "
                           "lock" % other)
            elif decl.rank >= table[other].rank:
                eng.report(
                    "lock-table", decl.relpath, decl.line,
                    "AERO_ACQUIRED_BEFORE(\"%s\") contradicts the ranks "
                    "(%s=%d must be below %s=%d)"
                    % (other, name, decl.rank, other, table[other].rank))
    return table, member_lock


def _lock_expr_name(eng, fn, arg_toks, member_lock):
    """Resolve a lock-argument token chain ('m_', 'box.m', 's->m', 'this->
    m_') to a declared lock name, or None."""
    ids = [t.text for t in arg_toks
           if t.kind == "id" or t.text in (".", "->")]
    ids = [x for x in ids if x not in (".", "->")]
    if not ids:
        return None
    member = ids[-1]
    if len(ids) == 1:
        cls = fn.cls
        if cls and (cls, member) in member_lock:
            return member_lock[(cls, member)]
    else:
        recv = ids[-2]
        cls = fn.cls if recv == "this" else \
            eng.program.resolve_receiver(fn, recv)
        if cls and (cls, member) in member_lock:
            return member_lock[(cls, member)]
    # fallback: the member name is unique across the lock table
    cands = {v for (c, n), v in member_lock.items() if n == member}
    if len(cands) == 1:
        return cands.pop()
    return None


class _Held(object):
    __slots__ = ("name", "var", "depth", "line", "may_block")

    def __init__(self, name, var, depth, line, may_block):
        self.name = name
        self.var = var
        self.depth = depth
        self.line = line
        self.may_block = may_block


def _scan_function(eng, sf, fn, table, member_lock, edges):
    toks = fn.tokens
    lo, hi = fn.body
    held = []
    depth = 0
    i = lo
    while i < hi:
        t = toks[i]
        txt = t.text
        if txt == "{":
            depth += 1
            i += 1
            continue
        if txt == "}":
            depth -= 1
            held = [h for h in held if h.depth <= depth]
            i += 1
            continue
        # RAII acquisition: Type[<...>] var ( expr[, expr...] ) ;
        if t.kind == "id" and txt in RAII_TYPES:
            prev = toks[i - 1].text if i > lo else ""
            j = i + 1
            if j < hi and toks[j].text == "<":
                from model import _skip_angles
                j = _skip_angles(toks, j)
            if j < hi and toks[j].kind == "id" and prev != "." \
                    and prev != "->":
                var = toks[j].text
                if j + 1 < hi and toks[j + 1].text == "(":
                    from model import _match
                    end = _match(toks, j + 1, "(", ")")
                    args = _split_args(toks[j + 2:end - 1])
                    for arg in args:
                        _acquire(eng, sf, fn, t, var, arg, depth, held,
                                 table, member_lock, edges)
                    i = end
                    continue
        # release / CV wait through a held RAII object
        if t.kind == "id" and held and i + 2 < hi \
                and toks[i + 1].text in (".", "->"):
            var_entry = next((h for h in held if h.var == txt), None)
            meth = toks[i + 2].text
            if var_entry is not None and meth == "unlock":
                held.remove(var_entry)
                i += 3
                continue
            if var_entry is not None and meth in ("wait", "wait_until",
                                                  "wait_for"):
                _flag_foreign(eng, sf, fn, toks[i + 2], held,
                              own=var_entry,
                              what="condition-variable wait on \"%s\""
                              % var_entry.name)
                i += 3
                continue
            if meth == "wait" and var_entry is None:
                # std-style cv.wait(lk): own lock is the RAII arg, if any
                own = None
                if i + 3 < hi and toks[i + 3].text == "(":
                    from model import _match
                    end = _match(toks, i + 3, "(", ")")
                    arg_ids = {x.text for x in toks[i + 4:end - 1]
                               if x.kind == "id"}
                    own = next((h for h in held if h.var in arg_ids), None)
                if held and (own is None or len(held) > 1):
                    _flag_foreign(eng, sf, fn, toks[i + 2], held, own=own,
                                  what="condition-variable wait")
                i += 3
                continue
        # blocking calls while holding a non-may_block lock
        if t.kind == "id" and held and i + 1 < hi \
                and toks[i + 1].text == "(" and not _is_decl_like(toks, i):
            blocking = txt in BLOCKING_NAMES
            if not blocking and txt in BLOCKING_MEMBERS:
                recv_cls = _receiver_class(eng, fn, toks, lo, i)
                blocking = recv_cls in BLOCKING_MEMBERS[txt]
            if blocking:
                offenders = [h for h in held if not h.may_block]
                if offenders:
                    eng.report(
                        "lock-blocking", sf.relpath, t.line,
                        "blocking call %s() while holding %s; release the "
                        "lock first or mark it may_block in its "
                        "AERO_LOCK_NAME" % (txt, _held_names(offenders)))
        i += 1


def _is_decl_like(toks, i):
    """True when toks[i] looks like a declarator name, not a call (the
    previous token is a type-ish id or '>', e.g. `ByteBuf send(...)`)."""
    prev = toks[i - 1]
    return prev.kind == "id" or prev.text in (">", "*", "&")


def _receiver_class(eng, fn, toks, lo, i):
    if i - 2 < lo or toks[i - 1].text not in (".", "->"):
        return None
    recv = toks[i - 2]
    if recv.kind != "id":
        return None
    if recv.text == "this":
        return fn.cls
    return eng.program.resolve_receiver(fn, recv.text)


def _held_names(held):
    return ", ".join("\"%s\" (line %d)" % (h.name, h.line) for h in held)


def _flag_foreign(eng, sf, fn, tok, held, own, what):
    foreign = [h for h in held if h is not own]
    if foreign:
        eng.report(
            "lock-blocking", sf.relpath, tok.line,
            "%s while also holding %s; a wait releases only its own lock"
            % (what, _held_names(foreign)))


def _split_args(toks):
    args, cur, depth = [], [], 0
    for t in toks:
        if t.text in ("(", "[", "{", "<"):
            depth += 1
        elif t.text in (")", "]", "}", ">"):
            depth -= 1
        if t.text == "," and depth == 0:
            args.append(cur)
            cur = []
        else:
            cur.append(t)
    if cur:
        args.append(cur)
    return args


def _acquire(eng, sf, fn, tok, var, arg_toks, depth, held, table,
             member_lock, edges):
    # std::adopt_lock / std::defer_lock tags are not lock expressions
    if any(t.text in ("adopt_lock", "defer_lock", "try_to_lock")
           for t in arg_toks):
        return
    name = _lock_expr_name(eng, fn, arg_toks, member_lock)
    if name is None:
        expr = "".join(t.text for t in arg_toks)
        eng.report(
            "lock-table", sf.relpath, tok.line,
            "cannot resolve lock expression '%s' to a named lock; the "
            "lock-order analysis needs every acquisition attributable"
            % expr)
        return
    decl = table.get(name)
    rank = decl.rank if decl else None
    may_block = decl.may_block if decl else False
    for h in held:
        key = (h.name, name)
        edges.setdefault(key, ("observed", sf.relpath, tok.line))
        h_rank = table[h.name].rank if h.name in table else None
        if h.name == name:
            eng.report("lock-order", sf.relpath, tok.line,
                       "re-acquiring lock \"%s\" already held since line %d"
                       % (name, h.line))
        elif h_rank is not None and rank is not None and h_rank >= rank:
            eng.report(
                "lock-order", sf.relpath, tok.line,
                "lock \"%s\" (rank %d) acquired while holding \"%s\" "
                "(rank %d); acquisition order must follow ascending rank"
                % (name, rank, h.name, h_rank))
    held.append(_Held(name, var, depth, tok.line, may_block))


def _find_cycles(nodes, adj):
    """Return one representative cycle (as a name list) per cycle found by
    DFS back-edge detection."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in nodes}
    stack = []
    cycles = []

    def dfs(u):
        color[u] = GREY
        stack.append(u)
        for v in sorted(adj.get(u, ())):
            if v not in color:
                continue
            if color[v] == GREY:
                k = stack.index(v)
                cycles.append(stack[k:] + [v])
            elif color[v] == WHITE:
                dfs(v)
        stack.pop()
        color[u] = BLACK

    for n in sorted(nodes):
        if color[n] == WHITE:
            dfs(n)
    return cycles


def analyze(eng):
    """Run the lock analyses; returns the exportable lock graph dict."""
    table, member_lock = _collect_table(eng)
    edges = {}  # (from, to) -> (kind, relpath, line)
    for decl in table.values():
        for other in decl.before:
            if other in table:
                edges.setdefault((decl.name, other),
                                 ("declared", decl.relpath, decl.line))
    for sf, fn in eng.functions():
        if not eng.in_scope(sf.relpath, *SCOPE_DIRS):
            continue
        if fn.body is None:
            continue
        _scan_function(eng, sf, fn, table, member_lock, edges)
    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, set()).add(b)
    cycles = _find_cycles(set(table), adj)
    for cyc in cycles:
        decl = table[cyc[0]]
        eng.report("lock-order", decl.relpath, decl.line,
                   "lock acquisition cycle: %s" % " -> ".join(cyc))
    return {
        "locks": [
            {"name": d.name, "rank": d.rank, "may_block": d.may_block,
             "member": d.member.qual(), "file": d.relpath.replace("\\", "/"),
             "line": d.line}
            for d in sorted(table.values(), key=lambda d: (d.rank, d.name))
        ],
        "edges": [
            {"from": a, "to": b, "kind": kind,
             "file": rel.replace("\\", "/"), "line": line}
            for (a, b), (kind, rel, line) in sorted(edges.items())
        ],
        "cycles": cycles,
    }
