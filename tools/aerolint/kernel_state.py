"""Kernel shared-state audit: mutable state reachable from the Delaunay
insert path must declare its threading discipline.

The intra-rank parallel kernel (delaunay/parallel_insert) runs worker
threads over a frozen DelaunayMesh between two barriers; its race-freedom
argument is that every byte the workers can reach is either immutable for
the duration of the window or owned by exactly one thread. That argument
only holds if no one quietly adds shared mutable state to the kernel later.
This audit enforces the paper trail: within the kernel's reach
(src/delaunay and src/geom), every

  * `mutable` class member,
  * namespace-scope variable that is not const/constexpr, and
  * function-local `static` that is not const/constexpr

must carry an AERO_SHARED_STATE(why) annotation stating who may touch it
and when (e.g. "main thread only", "worker-disjoint slots"). The macro is a
textual no-op (obs/annotations.hpp); the reason is the contract reviewers
and this audit hold the code to.

Exemptions -- state whose thread discipline is established elsewhere:

  * `thread_local` storage (per-thread by construction;
    geom/predicates.cpp's stage counters are the canonical case),
  * std::atomic members/globals (the atomics audit owns those: this audit
    extends that seed set to the non-atomic shared state the kernel adds),
  * const/constexpr declarations (immutable after initialization; a
    function-local `static const` is made safe by C++ magic-statics).

Rule:
  kernel-shared-state   unannotated mutable member, non-const global, or
                        non-const function-local static in kernel scope.

Waivers require a reason: // aerolint: allow(kernel-shared-state: why).
"""

SCOPE = ("src/delaunay", "src/geom")

_IMMUTABLE_WORDS = ("const", "constexpr", "constinit", "thread_local")


def _raw_decl_line(sf, line):
    """Comment-stripped source of the declaration's first line (specifier
    detection: model.py strips mutable/static/constexpr/thread_local from
    Member.type_str, so the audit reads the code line instead)."""
    if 1 <= line <= len(sf.code_lines):
        return sf.code_lines[line - 1]
    return ""


def _has_word(text, word):
    import re
    return re.search(r"\b%s\b" % word, text) is not None


def _is_exempt_decl(sf, decl):
    if "std::atomic<" in decl.type_str:
        return True  # the atomics audit owns the role annotation
    if _has_word(decl.type_str, "const"):
        return True
    raw = _raw_decl_line(sf, decl.line)
    return any(_has_word(raw, w) for w in _IMMUTABLE_WORDS)


def _check_members(eng, sf):
    for cls in sf.model.classes.values():
        for m in cls.members.values():
            raw = _raw_decl_line(sf, m.line)
            if not _has_word(raw, "mutable"):
                continue
            if _is_exempt_decl(sf, m):
                continue
            if m.ann("AERO_SHARED_STATE") is not None:
                continue
            eng.report(
                "kernel-shared-state", sf.relpath, m.line,
                "mutable member %s is reachable from the parallel kernel's "
                "const path; annotate with AERO_SHARED_STATE(why) stating "
                "which thread may touch it and when" % m.qual())


def _check_globals(eng, sf):
    for g in sf.model.globals:
        if _is_exempt_decl(sf, g):
            continue
        if g.ann("AERO_SHARED_STATE") is not None:
            continue
        eng.report(
            "kernel-shared-state", sf.relpath, g.line,
            "namespace-scope variable %s in kernel scope is shared mutable "
            "state; make it const/constexpr/thread_local or annotate with "
            "AERO_SHARED_STATE(why)" % g.name)


def _check_local_statics(eng, sf):
    for fn in sf.model.functions:
        if fn.body is None:
            continue
        toks = fn.tokens
        lo, hi = fn.body
        i = lo
        while i < hi:
            if toks[i].text != "static":
                i += 1
                continue
            # The declaration statement: everything to the terminating ';'
            # (or the '=' initializer, which is enough to see specifiers).
            j = i + 1
            stmt = ["static"]
            while j < hi and toks[j].text not in (";", "=", "{"):
                stmt.append(toks[j].text)
                j += 1
            text = " ".join(stmt)
            exempt = (any(_has_word(text, w) for w in _IMMUTABLE_WORDS)
                      or "atomic" in text
                      or "AERO_SHARED_STATE" in text)
            if not exempt:
                eng.report(
                    "kernel-shared-state", sf.relpath, toks[i].line,
                    "function-local static in %s is shared mutable state "
                    "on the kernel path; make it const/constexpr/"
                    "thread_local or annotate with AERO_SHARED_STATE(why)"
                    % (fn.name + "()"))
            i = j + 1


def analyze(eng):
    for sf in eng.src_files():
        if not eng.in_scope(sf.relpath, *SCOPE):
            continue
        _check_members(eng, sf)
        _check_globals(eng, sf)
        _check_local_statics(eng, sf)
