"""aerolint v2 self-test: every rule -- the heritage line rules and the
four whole-program analyses -- must fire on a seeded violation of its
class, stay quiet on the clean counterpart, and honor the escape
protocol (bare allow() for heritage rules; allow(rule: reason) with a
mandatory reason for the analyses).

Run with `python3 tools/aerolint --self-test`, or via the
`aerolint_selftest` ctest entry, which is the single consolidated
invocation covering all 22 rules.
"""

import os
import sys

from engine import Engine

# ---------------------------------------------------------------------------
# Heritage (v1) line rules: one-line seeds, checked file-by-file.

V1_SEEDED = [
    # (rule, relpath it is checked under, violating line, clean counterpart)
    ("geom-predicates", os.path.join("src", "hull", "x.cpp"),
     "if (ab.cross(ac) > 0) {",
     "const double w = ab.cross(ac);"),
    ("geom-predicates", os.path.join("src", "blayer", "x.cpp"),
     "double d = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);",
     "double d = orient2d(a, b, c);"),
    ("determinism", os.path.join("src", "core", "x.cpp"),
     "int r = rand() % 7;",
     "int r = engine() % 7;"),
    ("determinism", os.path.join("src", "runtime", "x.cpp"),
     "std::random_device rd;",
     "std::mt19937_64 rd(seed);"),
    ("determinism", os.path.join("src", "io", "x.cpp"),
     "auto t = std::chrono::system_clock::now();",
     "auto t = mono_now();"),
    ("no-raw-clock", os.path.join("src", "runtime", "x.cpp"),
     "auto t0 = std::chrono::steady_clock::now();",
     "auto t0 = mono_now();"),
    ("no-stdout", os.path.join("src", "delaunay", "x.cpp"),
     'std::cout << "tris: " << n;',
     'std::snprintf(buf, sizeof(buf), "tris: %zu", n);'),
    ("no-stdout", os.path.join("src", "io", "x.cpp"),
     'printf("done\\n");',
     'std::fprintf(stderr, "done\\n");'),
    ("naked-new", os.path.join("src", "spatial", "x.cpp"),
     "Node* n = new Node(k);",
     "auto n = std::make_unique<Node>(k);"),
    ("naked-new", os.path.join("src", "spatial", "x.cpp"),
     "delete node;",
     "Tree(const Tree&) = delete;"),
    ("runtime-throw", os.path.join("src", "runtime", "x.cpp"),
     'throw std::logic_error("bad state");',
     'throw_flag = true;'),
    ("payload-copy", os.path.join("src", "runtime", "x.cpp"),
     "std::memcpy(dst, msg.payload.data(), msg.payload.size());",
     "auto bytes = std::move(msg.payload);"),
    ("payload-copy", os.path.join("src", "runtime", "x.cpp"),
     "ByteBuf staged = msg->payload;",
     "comm.send(rank, dest, tag, std::move(msg->payload));"),
    ("unchecked-io", os.path.join("src", "io", "journal.cpp"),
     "std::fwrite(frame.data(), 1, frame.size(), file_);",
     "ok = std::fwrite(frame.data(), 1, frame.size(), file_) == frame.size();"),
    ("unchecked-io", os.path.join("src", "io", "journal.cpp"),
     "fflush(file_);",
     "if (std::fflush(file_) != 0) ++failures_;"),
    ("unchecked-io", os.path.join("src", "runtime", "checkpoint.cpp"),
     "writer_->flush();",
     "return writer_.flush();"),
    ("layering", os.path.join("src", "geom", "x.hpp"),
     '#include "delaunay/mesh.hpp"',
     '#include "geom/vec2.hpp"'),
    ("layering", os.path.join("src", "core", "x.cpp"),
     '#include "runtime/pool.hpp"',
     '#include "hull/subdomain.hpp"'),
    ("public-api", os.path.join("tests", "x.cpp"),
     '#include "delaunay/mesh.hpp"',
     '#include "aero.hpp"'),
    ("public-api", os.path.join("examples", "x.cpp"),
     '#include "runtime/pool.hpp"',
     '#include "aero.hpp"'),
    # Service layering: the service may reach down into the runtime but not
    # sideways into mesh internals, and nothing in src/ may reach into the
    # service (it has no entry in any ALLOWED_DEPS value set).
    ("layering", os.path.join("src", "service", "x.cpp"),
     '#include "blayer/growth.hpp"',
     '#include "runtime/pool.hpp"'),
    ("layering", os.path.join("src", "runtime", "x.cpp"),
     '#include "service/server.hpp"',
     '#include "io/journal.hpp"'),
    ("layering", os.path.join("src", "core", "x.cpp"),
     '#include "service/cache.hpp"',
     '#include "obs/metrics.hpp"'),
    # Tests/examples consume the service through its public surface only.
    ("public-api", os.path.join("examples", "x.cpp"),
     '#include "service/cache.hpp"',
     '#include "service/client.hpp"'),
    ("public-api", os.path.join("tests", "x.cpp"),
     '#include "service/channel.hpp"',
     '#include "service/wire.hpp"'),
    # The SoA mesh storage stays behind the MergedMesh/MeshView read surface:
    # nothing outside the mesh core names the chunked arenas or the interner.
    ("mesh-internal-access", os.path.join("src", "io", "x.cpp"),
     '#include "delaunay/chunked.hpp"',
     '#include "core/merged_mesh.hpp"'),
    ("mesh-internal-access", os.path.join("src", "solver", "x.cpp"),
     "ChunkedArray<Vec2> scratch;",
     "std::vector<Vec2> scratch;"),
    ("mesh-internal-access", os.path.join("src", "check", "x.cpp"),
     "const auto& t = mesh.tris_[i];",
     "const auto& t = mesh.tri(i);"),
    ("mesh-internal-access", os.path.join("tests", "x.cpp"),
     "auto p = m.points_[0];",
     "auto p = m.point(0);"),
]

# Comment/string stripping: keywords inside comments and literals are not
# code and must never fire any rule.
V1_QUIET = [
    "// spawns new units dynamically",
    "/* delete the old ring */",
    'log("rand() is banned");',
]

# ---------------------------------------------------------------------------
# Whole-program analyses: each seed is a miniature source tree. `bad` must
# produce the rule; `good` (when given) must produce zero findings of it.

RT = os.path.join("src", "runtime", "st.hpp")
DL = os.path.join("src", "delaunay", "st.hpp")
GM = os.path.join("src", "geom", "st.hpp")
HL = os.path.join("src", "hull", "st.cpp")
CR = os.path.join("src", "core", "st.hpp")

V2_SEEDED = [
    # ---- locks -----------------------------------------------------------
    dict(
        name="lock-table: unnamed mutex in scope",
        rule="lock-table",
        bad={RT: """
namespace aero {
class StBox {
 public:
  void poke();
 private:
  Mutex m_;
};
}  // namespace aero
"""},
        good={RT: """
namespace aero {
class StBox {
 public:
  void poke();
 private:
  Mutex m_ AERO_LOCK_NAME("st.box", 10);
};
}  // namespace aero
"""}),
    dict(
        name="lock-table: duplicate name with a different rank",
        rule="lock-table",
        bad={RT: """
namespace aero {
class StA { Mutex m_ AERO_LOCK_NAME("st.dup", 10); };
class StB { Mutex m_ AERO_LOCK_NAME("st.dup", 20); };
}  // namespace aero
"""},
        good={RT: """
namespace aero {
class StA { Mutex m_ AERO_LOCK_NAME("st.one", 10); };
class StB { Mutex m_ AERO_LOCK_NAME("st.two", 20); };
}  // namespace aero
"""}),
    dict(
        name="lock-table: ACQUIRED_BEFORE contradicting the ranks",
        rule="lock-table",
        bad={RT: """
namespace aero {
class StUp { Mutex m_ AERO_LOCK_NAME("st.up", 50) AERO_ACQUIRED_BEFORE("st.down"); };
class StDown { Mutex m_ AERO_LOCK_NAME("st.down", 40); };
}  // namespace aero
"""},
        good={RT: """
namespace aero {
class StUp { Mutex m_ AERO_LOCK_NAME("st.up", 50) AERO_ACQUIRED_BEFORE("st.down"); };
class StDown { Mutex m_ AERO_LOCK_NAME("st.down", 60); };
}  // namespace aero
"""}),
    dict(
        name="lock-order: nested acquisition against rank order",
        rule="lock-order",
        bad={RT: """
namespace aero {
class StPair {
 public:
  void both() {
    MutexLock a(hi_);
    MutexLock b(lo_);
  }
 private:
  Mutex lo_ AERO_LOCK_NAME("st.lo", 10);
  Mutex hi_ AERO_LOCK_NAME("st.hi", 20);
};
}  // namespace aero
"""},
        good={RT: """
namespace aero {
class StPair {
 public:
  void both() {
    MutexLock a(lo_);
    MutexLock b(hi_);
  }
 private:
  Mutex lo_ AERO_LOCK_NAME("st.lo", 10);
  Mutex hi_ AERO_LOCK_NAME("st.hi", 20);
};
}  // namespace aero
"""}),
    dict(
        name="lock-order: re-acquiring a held lock",
        rule="lock-order",
        bad={RT: """
namespace aero {
class StTwice {
 public:
  void twice() {
    MutexLock a(m_);
    MutexLock b(m_);
  }
 private:
  Mutex m_ AERO_LOCK_NAME("st.twice", 10);
};
}  // namespace aero
"""}),
    dict(
        name="lock-order: cycle in the observed acquisition graph",
        rule="lock-order",
        bad={RT: """
namespace aero {
class StCycle {
 public:
  void forward() {
    MutexLock x(a_);
    MutexLock y(b_);
  }
  void backward() {
    MutexLock x(b_);
    MutexLock y(a_);
  }
 private:
  Mutex a_ AERO_LOCK_NAME("st.a", 10);
  Mutex b_ AERO_LOCK_NAME("st.b", 20);
};
}  // namespace aero
""" }),
    dict(
        name="lock-blocking: sleep while holding a lock",
        rule="lock-blocking",
        bad={RT: """
namespace aero {
class StSleepy {
 public:
  void nap() {
    MutexLock lock(m_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
 private:
  Mutex m_ AERO_LOCK_NAME("st.sleepy", 30);
};
}  // namespace aero
"""},
        good={RT: """
namespace aero {
class StSleepy {
 public:
  void nap() {
    {
      MutexLock lock(m_);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
 private:
  Mutex m_ AERO_LOCK_NAME("st.sleepy", 30);
};
}  // namespace aero
"""}),
    # ---- determinism -----------------------------------------------------
    dict(
        name="det-unordered-iter: member unordered_map range-for",
        rule="det-unordered-iter",
        bad={DL: """
namespace aero {
class StCache {
 public:
  double walk() {
    double s = 0.0;
    for (const auto& kv : map_) {
      s += kv.second;
    }
    return s;
  }
 private:
  std::unordered_map<int, double> map_;
};
}  // namespace aero
"""},
        good={DL: """
namespace aero {
class StCache {
 public:
  double walk() {
    double s = 0.0;
    for (const auto& kv : map_) {
      s += kv.second;
    }
    return s;
  }
 private:
  std::map<int, double> map_;
};
}  // namespace aero
"""}),
    dict(
        name="det-unordered-iter: local unordered_set range-for",
        rule="det-unordered-iter",
        bad={HL: """
namespace aero {
int st_count() {
  std::unordered_set<int> seen;
  int n = 0;
  for (int v : seen) {
    n += v;
  }
  return n;
}
}  // namespace aero
"""}),
    dict(
        name="det-pointer-key: pointer-keyed ordered container",
        rule="det-pointer-key",
        bad={GM: """
namespace aero {
class StIndex {
 private:
  std::map<StNode*, int> by_node_;
};
}  // namespace aero
"""},
        good={GM: """
namespace aero {
class StIndex {
 private:
  std::map<int, int> by_node_;
};
}  // namespace aero
"""}),
    dict(
        name="det-clock: steady_clock read in kernel code",
        rule="det-clock",
        bad={DL: """
namespace aero {
double st_now() {
  const auto t = std::chrono::steady_clock::now();
  return 0.0;
}
}  // namespace aero
"""},
        good={DL: """
namespace aero {
double st_now(double t) {
  return t;
}
}  // namespace aero
"""}),
    dict(
        name="det-clock: rand() in kernel code",
        rule="det-clock",
        bad={HL: """
namespace aero {
int st_pick() {
  return rand() % 3;
}
}  // namespace aero
"""}),
    # ---- atomics ---------------------------------------------------------
    dict(
        name="atomic-role: member without a declared role",
        rule="atomic-role",
        bad={RT: """
namespace aero {
class StCount {
 private:
  std::atomic<int> n_{0};
};
}  // namespace aero
"""},
        good={RT: """
namespace aero {
class StCount {
 private:
  std::atomic<int> n_ AERO_ATOMIC_ROLE(counter){0};
};
}  // namespace aero
"""}),
    dict(
        name="atomic-role: op the role does not admit",
        rule="atomic-role",
        bad={RT: """
namespace aero {
class StFlag {
 public:
  void bump() { f_.fetch_add(1); }
 private:
  std::atomic<int> f_ AERO_ATOMIC_ROLE(flag){0};
};
}  // namespace aero
"""},
        good={RT: """
namespace aero {
class StFlag {
 public:
  void raise() { f_.store(1); }
 private:
  std::atomic<int> f_ AERO_ATOMIC_ROLE(flag){0};
};
}  // namespace aero
"""}),
    dict(
        name="atomic-order: relaxed store on a published atomic",
        rule="atomic-order",
        bad={RT: """
namespace aero {
class StPub {
 public:
  void push() { head_.store(1, std::memory_order_relaxed); }
 private:
  std::atomic<int> head_ AERO_ATOMIC_ROLE(published){0};
};
}  // namespace aero
"""},
        good={RT: """
namespace aero {
class StPub {
 public:
  void push() { head_.store(1, std::memory_order_release); }
 private:
  std::atomic<int> head_ AERO_ATOMIC_ROLE(published){0};
};
}  // namespace aero
"""}),
    dict(
        name="atomic-implicit: plain '=' store",
        rule="atomic-implicit",
        bad={RT: """
namespace aero {
class StSet {
 public:
  void set() { n_ = 4; }
 private:
  std::atomic<int> n_ AERO_ATOMIC_ROLE(counter){0};
};
}  // namespace aero
"""},
        good={RT: """
namespace aero {
class StSet {
 public:
  void set() { n_.store(4, std::memory_order_relaxed); }
 private:
  std::atomic<int> n_ AERO_ATOMIC_ROLE(counter){0};
};
}  // namespace aero
"""}),
    dict(
        name="atomic-implicit: bare read",
        rule="atomic-implicit",
        bad={RT: """
namespace aero {
class StGet {
 public:
  int get() { return n_ + 1; }
 private:
  std::atomic<int> n_ AERO_ATOMIC_ROLE(counter){0};
};
}  // namespace aero
"""}),
    dict(
        name="atomic-mixed: memcpy over an atomic member",
        rule="atomic-mixed",
        bad={RT: """
namespace aero {
class StWipe {
 public:
  void wipe(const void* src) { std::memcpy(&n_, src, sizeof(n_)); }
 private:
  std::atomic<int> n_ AERO_ATOMIC_ROLE(counter){0};
};
}  // namespace aero
"""}),
    # ---- status ----------------------------------------------------------
    dict(
        name="unchecked-status: discard through a resolved receiver",
        rule="unchecked-status",
        bad={CR: """
namespace aero {
class StWriter {
 public:
  [[nodiscard]] bool persist(int x);
};
inline void st_use(StWriter& w) {
  w.persist(1);
}
}  // namespace aero
"""},
        good={CR: """
namespace aero {
class StWriter {
 public:
  [[nodiscard]] bool persist(int x);
};
inline bool st_use(StWriter& w) {
  return w.persist(1);
}
}  // namespace aero
"""}),
    dict(
        name="unchecked-status: discarded [[nodiscard]] enum return",
        rule="unchecked-status",
        bad={CR: """
namespace aero {
enum class [[nodiscard]] StStatus { kOk, kBad };
StStatus st_stage();
inline void st_drive() {
  st_stage();
}
}  // namespace aero
"""},
        good={CR: """
namespace aero {
enum class [[nodiscard]] StStatus { kOk, kBad };
StStatus st_stage();
inline StStatus st_drive() {
  return st_stage();
}
}  // namespace aero
"""}),
    dict(
        name="unchecked-status: discard of an own nodiscard method",
        rule="unchecked-status",
        bad={CR: """
namespace aero {
class StPipeline {
 public:
  [[nodiscard]] bool step();
  void all() {
    step();
  }
};
}  // namespace aero
"""},
        good={CR: """
namespace aero {
class StPipeline {
 public:
  [[nodiscard]] bool step();
  void all() {
    if (!step()) {
      return;
    }
  }
};
}  // namespace aero
"""}),
    dict(
        name="unchecked-status: discard through a member receiver",
        rule="unchecked-status",
        bad={CR: """
namespace aero {
class StSink {
 public:
  [[nodiscard]] bool commit(int k);
};
class StHolder {
 public:
  void go() {
    sink.commit(3);
  }
 private:
  StSink sink;
};
}  // namespace aero
"""}),
    # ---- kernel shared state ---------------------------------------------
    dict(
        name="kernel-shared-state: unannotated mutable member in scope",
        rule="kernel-shared-state",
        bad={DL: """
namespace aero {
class StCache {
 public:
  int probe() const;
 private:
  mutable int last_hit_ = 0;
};
}  // namespace aero
"""},
        good={DL: """
namespace aero {
class StCache {
 public:
  int probe() const;
 private:
  mutable int last_hit_ AERO_SHARED_STATE("main thread only") = 0;
};
}  // namespace aero
"""}),
    dict(
        name="kernel-shared-state: non-const namespace-scope global",
        rule="kernel-shared-state",
        bad={GM: """
namespace aero {
int st_filter_failures = 0;
}  // namespace aero
"""},
        good={GM: """
namespace aero {
constexpr int st_filter_limit = 8;
thread_local int st_filter_failures = 0;
}  // namespace aero
"""}),
    dict(
        name="kernel-shared-state: non-const function-local static",
        rule="kernel-shared-state",
        bad={DL: """
namespace aero {
inline int st_next_id() {
  static int counter = 0;
  return ++counter;
}
}  // namespace aero
"""},
        good={DL: """
namespace aero {
inline int st_limit() {
  static const int limit = 64;
  return limit;
}
}  // namespace aero
"""}),
    dict(
        name="kernel-shared-state: out of scope (src/core) stays quiet",
        rule="kernel-shared-state",
        bad={DL: """
namespace aero {
class StDirty {
 public:
  int get() const;
 private:
  mutable int seen_ = 0;
};
}  // namespace aero
"""},
        good={CR: """
namespace aero {
class StDirty {
 public:
  int get() const;
 private:
  mutable int seen_ = 0;
};
}  // namespace aero
"""}),
]


def _lint(files):
    eng = Engine(files)
    eng.run()
    return eng.findings


def _fails_v1(failures):
    for rule, relpath, bad, good in V1_SEEDED:
        hits = {f.rule for f in _lint({relpath: bad + "\n"})}
        if rule not in hits:
            failures.append("rule %s did not fire on: %s" % (rule, bad))
        hits = {f.rule for f in _lint({relpath: good + "\n"})}
        if rule in hits:
            failures.append("rule %s false-positived on: %s" % (rule, good))
        escaped = bad + "  // aerolint: allow(%s)" % rule
        hits = {f.rule for f in _lint({relpath: escaped + "\n"})}
        if rule in hits:
            failures.append("escape comment did not suppress %s" % rule)
    quiet_path = os.path.join("src", "core", "x.cpp")
    for line in V1_QUIET:
        got = _lint({quiet_path: line + "\n"})
        if got:
            failures.append("fired %s inside comment/string: %s"
                            % (sorted({f.rule for f in got}), line))


def _fails_v2(failures):
    for case in V2_SEEDED:
        rule = case["rule"]
        name = case["name"]
        findings = _lint(case["bad"])
        mine = [f for f in findings if f.rule == rule]
        if not mine:
            failures.append("[%s] %s did not fire; got: %s"
                            % (name, rule,
                               [f.render() for f in findings] or "nothing"))
        if "good" in case:
            findings = _lint(case["good"])
            mine = [f for f in findings if f.rule == rule]
            if mine:
                failures.append("[%s] %s false-positived on the clean "
                                "variant: %s"
                                % (name, rule, mine[0].render()))


def _fails_escapes(failures):
    """The v2 waiver protocol: allow(rule: reason) suppresses, a bare
    allow(rule) does not, and a waiver on a comment-only line above the
    finding attaches to it."""
    base = """
namespace aero {
class StEsc {
 public:
  void set() { n_ = 4; %s}
 private:
  std::atomic<int> n_ AERO_ATOMIC_ROLE(counter){0};
};
}  // namespace aero
"""
    reasoned = base % "// aerolint: allow(atomic-implicit: seeded waiver)\n"
    got = [f for f in _lint({RT: reasoned}) if f.rule == "atomic-implicit"]
    if got:
        failures.append("reasoned allow() did not suppress atomic-implicit: "
                        + got[0].render())
    bare = base % "// aerolint: allow(atomic-implicit)\n"
    got = [f for f in _lint({RT: bare}) if f.rule == "atomic-implicit"]
    if not got:
        failures.append("bare allow() suppressed a reason-required rule")
    elif "waiver ignored" not in got[0].message:
        failures.append("bare allow() finding does not explain the ignored "
                        "waiver: " + got[0].render())
    above = """
namespace aero {
class StEsc {
 public:
  void set() {
    // aerolint: allow(atomic-implicit: seeded waiver on the line above)
    n_ = 4;
  }
 private:
  std::atomic<int> n_ AERO_ATOMIC_ROLE(counter){0};
};
}  // namespace aero
"""
    got = [f for f in _lint({RT: above}) if f.rule == "atomic-implicit"]
    if got:
        failures.append("comment-line allow() above the finding did not "
                        "attach: " + got[0].render())


def run():
    failures = []
    _fails_v1(failures)
    _fails_v2(failures)
    _fails_escapes(failures)
    if failures:
        for f in failures:
            sys.stderr.write("aerolint self-test FAIL: %s\n" % f)
        return 1
    sys.stderr.write(
        "aerolint self-test: %d heritage + %d analysis seeds, all rules "
        "fire, clean variants stay quiet, and the waiver protocol holds\n"
        % (len(V1_SEEDED), len(V2_SEEDED)))
    return 0
