"""aerolint v2: whole-program static analysis for the aeromesh tree.

Run as a directory: `python3 tools/aerolint <repo-root>`. The package is
dependency-free; modules import each other as top-level names so direct
directory execution (__main__.py puts the package dir on sys.path) and
test harnesses both work without installation.
"""
