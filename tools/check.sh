#!/bin/sh
# One-shot local gate: everything CI runs, in dependency order. Fails fast.
#
#   1. configure + build (compile_commands.json exported for tidy)
#   2. aerolint (project-specific static rules) + its self-test
#   3. the full ctest suite (unit, pipeline, runtime, audit tests)
#   4. clang-tidy profile (no-op when clang-tidy is absent)
#
# Usage: tools/check.sh [build-dir]   (default: build)
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

echo "== configure + build"
cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" -j"$(nproc)"

echo "== aerolint"
python3 "$repo_root/tools/aerolint.py" --self-test
python3 "$repo_root/tools/aerolint.py" "$repo_root"

echo "== ctest"
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)"

echo "== clang-tidy"
"$repo_root/tools/run_tidy.sh" "$build_dir"

echo "check: all gates passed"
