#!/bin/sh
# One-shot local gate: everything CI runs, in dependency order. Fails fast.
#
#   1. configure + build (compile_commands.json exported for tidy)
#   2. aerolint v2 as a hard gate: self-test, fixture goldens, then the
#      tree lint with SARIF export + schema check and the lock graph,
#      which must come back cycle-free
#   3. the full ctest suite (unit, pipeline, runtime, audit tests)
#   4. clang-tidy profile (exit 77 = soft skip when clang-tidy is absent)
#
# Usage: tools/check.sh [build-dir]   (default: build)
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

echo "== configure + build"
cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" -j"$(nproc)"

echo "== aerolint"
python3 "$repo_root/tools/aerolint" --self-test
python3 "$repo_root/tests/aerolint/run_fixtures.py"
python3 "$repo_root/tools/aerolint" "$repo_root" \
    --sarif "$build_dir/aerolint.sarif" \
    --lock-graph "$build_dir/lock_graph.json"
if grep -q '"cycles": \[\]' "$build_dir/lock_graph.json"; then
  echo "aerolint: lock graph exported cycle-free"
else
  echo "check: lock graph has cycles ($build_dir/lock_graph.json)" >&2
  exit 1
fi

echo "== ctest"
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)"

echo "== clang-tidy"
tidy_rc=0
"$repo_root/tools/run_tidy.sh" "$build_dir" || tidy_rc=$?
if [ "$tidy_rc" -ne 0 ] && [ "$tidy_rc" -ne 77 ]; then
  exit "$tidy_rc"
fi

echo "check: all gates passed"
