#!/usr/bin/env python3
"""Compare BENCH_*.json benchmark reports against committed baselines.

Every perf-trajectory bench writes a ``BENCH_<name>.json`` (schema in
src/obs/bench_report.hpp) into its working directory. The repo root carries
committed baselines of the headline benches; this tool diffs a fresh run
against them and fails on a wall-clock regression beyond the tolerance, so a
perf-sensitive PR can't silently lose what an earlier PR measured.

Wall times on a loaded or oversubscribed box are noisy, hence the generous
default tolerance (10%) and the counter report: counters (bytes moved,
speedups, triangle counts) are deterministic and are compared exactly in the
summary. Two fields gate: ``wall_ms`` and ``peak_rss_kb``. The RSS gate has
its own tolerance plus an absolute slack so small benches (where a few
freshly-touched allocator pages are a large fraction) don't flap; a report
with ``peak_rss_kb`` of 0 (platform unsupported) is not gated.

Service throughput: reports carrying ``requests_per_s`` and/or ``p99_ms``
counters (BENCH_service.json) are additionally gated on those -- a
throughput drop beyond the tolerance (default 10%) fails with the same
noise tolerance as wall_ms; the p99 ceiling uses its own ``--p99-tolerance``
(default 3x the wall tolerance) because a queue-tail latency is dominated by
scheduling jitter and legitimately swings far more than a mean under load.
Reports without the counters (every other bench) are unaffected.

Per-counter gates: a ``<report>.tolerances.json`` sidecar next to the
*baseline* report opts individual counters into gating with their own
tolerance, replacing the old one-global-flag-fits-all scheme. Schema::

  { "speedup_4t":  {"tolerance": 0.50, "higher_is_better": true},
    "threads_4_s": {"tolerance": 0.50},
    "refine_triangles": {"tolerance": 0.0} }

``higher_is_better`` flips the regression direction (a speedup falling below
``baseline * (1 - tolerance)`` fails; the default direction fails when the
counter rises above ``baseline * (1 + tolerance)``). ``tolerance: 0`` pins a
deterministic counter exactly. Counters absent from the sidecar keep the old
behavior: printed with a ``(changed)`` marker, never gated. Entries whose
value is not an object are ignored (room for ``_comment`` keys).

Exit codes: 0 ok, 1 regression or malformed input, 77 soft-skip (either side
has no reports -- e.g. the benches were never run in this build tree; the
ctest entry maps 77 to SKIPPED so a test-only checkout stays green).

Usage:
  bench_compare.py --baseline <dir-or-file> --current <dir-or-file>
                   [--tolerance 0.10] [--rss-tolerance 0.25]
                   [--rss-slack-kb 16384] [--p99-tolerance 0.30]
"""

import argparse
import glob
import json
import os
import sys

SKIP = 77


def collect(path):
    """Map report basename -> (parsed JSON, file path) for a file or dir."""
    if os.path.isfile(path):
        files = [path]
    else:
        files = sorted(f for f in glob.glob(os.path.join(path, "BENCH_*.json"))
                       if not f.endswith(".tolerances.json"))
    reports = {}
    for f in files:
        try:
            with open(f, encoding="utf-8") as fh:
                reports[os.path.basename(f)] = (json.load(fh), f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_compare: cannot read {f}: {e}", file=sys.stderr)
            sys.exit(1)
    return reports


def load_tolerances(baseline_file):
    """Per-counter gate spec from the baseline's .tolerances.json sidecar.

    Returns {counter: {"tolerance": float, "higher_is_better": bool}}; empty
    when there is no sidecar. A malformed sidecar is an error (exit 1): a
    typo silently ungating every counter is exactly what the sidecar is
    meant to prevent.
    """
    sidecar = baseline_file + ".tolerances.json"
    if not os.path.isfile(sidecar):
        return {}
    try:
        with open(sidecar, encoding="utf-8") as fh:
            raw = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {sidecar}: {e}", file=sys.stderr)
        sys.exit(1)
    spec = {}
    for key, entry in raw.items():
        if not isinstance(entry, dict):
            continue  # room for "_comment" keys
        try:
            tol = float(entry["tolerance"])
        except (KeyError, TypeError, ValueError):
            print(f"bench_compare: {sidecar}: entry {key!r} needs a numeric "
                  f"'tolerance'", file=sys.stderr)
            sys.exit(1)
        if tol < 0:
            print(f"bench_compare: {sidecar}: entry {key!r} has a negative "
                  f"tolerance", file=sys.stderr)
            sys.exit(1)
        spec[key] = {"tolerance": tol,
                     "higher_is_better": bool(entry.get("higher_is_better",
                                                        False))}
    return spec


def throughput_counter(report, key):
    """Fetch a numeric gate counter (requests_per_s, p99_ms) or None."""
    value = report.get("counters", {}).get(key)
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="committed baseline: a BENCH_*.json or a directory")
    ap.add_argument("--current", required=True,
                    help="fresh run: a BENCH_*.json or a directory")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional wall_ms increase (default 0.10)")
    ap.add_argument("--rss-tolerance", type=float, default=0.25,
                    help="allowed fractional peak_rss_kb increase "
                         "(default 0.25)")
    ap.add_argument("--rss-slack-kb", type=float, default=16384,
                    help="absolute peak_rss_kb headroom added on top of the "
                         "fractional tolerance (default 16384 = 16 MB)")
    ap.add_argument("--p99-tolerance", type=float, default=None,
                    help="allowed fractional p99_ms increase (default: "
                         "3x --tolerance; queue-tail latency is far noisier "
                         "than a mean)")
    args = ap.parse_args()
    if args.p99_tolerance is None:
        args.p99_tolerance = 3.0 * args.tolerance

    base = collect(args.baseline)
    cur = collect(args.current)
    if not base:
        print(f"bench_compare: no baselines under {args.baseline}; skipping")
        return SKIP
    if not cur:
        print(f"bench_compare: no current reports under {args.current} "
              "(run the benches first); skipping")
        return SKIP

    shared = sorted(set(base) & set(cur))
    if not shared:
        print("bench_compare: no report names in common; skipping")
        return SKIP

    failed = []
    for name in shared:
        (b, b_file), (c, _) = base[name], cur[name]
        gated = load_tolerances(b_file)
        try:
            b_wall, c_wall = float(b["wall_ms"]), float(c["wall_ms"])
        except (KeyError, TypeError, ValueError):
            print(f"{name}: malformed report (missing wall_ms)")
            return 1
        ratio = c_wall / b_wall if b_wall > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            failed.append(name)
        print(f"{name}: wall_ms {b_wall:.1f} -> {c_wall:.1f} "
              f"({100.0 * (ratio - 1.0):+.1f}%, tolerance "
              f"{100.0 * args.tolerance:.0f}%) {verdict}")

        # Peak-RSS gate: memory is far less noisy than wall time, but the
        # absolute slack keeps one-page-granularity jitter out of the gate.
        b_rss = float(b.get("peak_rss_kb", 0) or 0)
        c_rss = float(c.get("peak_rss_kb", 0) or 0)
        if b_rss > 0 and c_rss > 0:
            bound = b_rss * (1.0 + args.rss_tolerance) + args.rss_slack_kb
            rss_verdict = "ok"
            if c_rss > bound:
                rss_verdict = "REGRESSION"
                failed.append(name)
            print(f"  peak_rss_kb {b_rss:.0f} -> {c_rss:.0f} "
                  f"(bound {bound:.0f}) {rss_verdict}")

        # Service throughput gates: lower requests/s is the regression
        # direction, higher p99 is. Both sides must carry the counter --
        # a baseline without it (pre-service repo states, non-service
        # benches) is simply not gated.
        b_rps, c_rps = (throughput_counter(r, "requests_per_s")
                        for r in (b, c))
        if b_rps is not None and c_rps is not None and b_rps > 0:
            floor = b_rps * (1.0 - args.tolerance)
            rps_verdict = "ok"
            if c_rps < floor:
                rps_verdict = "REGRESSION"
                failed.append(name)
            print(f"  requests_per_s {b_rps:.1f} -> {c_rps:.1f} "
                  f"(floor {floor:.1f}) {rps_verdict}")
        b_p99, c_p99 = (throughput_counter(r, "p99_ms") for r in (b, c))
        if b_p99 is not None and c_p99 is not None and b_p99 > 0:
            ceiling = b_p99 * (1.0 + args.p99_tolerance)
            p99_verdict = "ok"
            if c_p99 > ceiling:
                p99_verdict = "REGRESSION"
                failed.append(name)
            print(f"  p99_ms {b_p99:.2f} -> {c_p99:.2f} "
                  f"(ceiling {ceiling:.2f}) {p99_verdict}")

        b_counters = b.get("counters", {})
        c_counters = c.get("counters", {})
        for key in sorted(set(b_counters) & set(c_counters)):
            bv, cv = b_counters[key], c_counters[key]
            if key in gated:
                spec = gated[key]
                try:
                    bf, cf = float(bv), float(cv)
                except (TypeError, ValueError):
                    print(f"{name}: counter {key} is gated but not numeric")
                    return 1
                tol = spec["tolerance"]
                if spec["higher_is_better"]:
                    bound = bf * (1.0 - tol)
                    bad = cf < bound
                    bound_name = "floor"
                else:
                    bound = bf * (1.0 + tol)
                    bad = cf > bound
                    bound_name = "ceiling"
                verdict = "ok"
                if bad:
                    verdict = "REGRESSION"
                    failed.append(name)
                print(f"  {key}: {bv} -> {cv} ({bound_name} {bound:g}) "
                      f"{verdict}")
            else:
                marker = "" if bv == cv else "  (changed)"
                print(f"  {key}: {bv} -> {cv}{marker}")
        for key in sorted(set(gated) - (set(b_counters) & set(c_counters))):
            print(f"  {key}: gated by sidecar but missing from a report; "
                  f"not compared")

    skipped = sorted(set(base) ^ set(cur))
    for name in skipped:
        side = "baseline" if name in base else "current"
        print(f"{name}: only in {side}; not compared")

    if failed:
        uniq = sorted(set(failed))
        print(f"bench_compare: wall-clock or peak-RSS regression in "
              f"{', '.join(uniq)}")
        return 1
    print(f"bench_compare: {len(shared)} report(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
