#pragma once

#include "blayer/boundary_layer.hpp"
#include "core/options.hpp"
#include "hull/subdomain.hpp"
#include "obs/trace.hpp"

namespace aero {

/// The one narrow lowering from the public aero::Options to the internal
/// stage structs. Used only by the pipeline drivers (sequential pipeline,
/// parallel driver, cluster-model builder) and the fixtures that mirror
/// them; everything else consumes Options directly.

inline BoundaryLayerOptions blayer_options(const Options& opts) {
  BoundaryLayerOptions bl;
  bl.growth = {opts.growth_kind, opts.first_height, opts.growth_ratio};
  bl.max_layers = opts.max_layers;
  return bl;
}

inline DecomposeOptions bl_decompose_options(const Options& opts) {
  return DecomposeOptions{.min_points = opts.bl_min_points,
                          .max_level = opts.bl_max_level};
}

inline obs::TraceConfig trace_config(const Options& opts) {
  obs::TraceConfig tc;
  tc.enabled = opts.trace;
  tc.events_per_thread = opts.trace_events;
  return tc;
}

}  // namespace aero
