#pragma once

#include <functional>

namespace aero {

struct BoundaryLayer;
class MergedMesh;

/// Artifacts visible to a phase observer; pointers are null for artifacts
/// the pipeline has not produced yet.
struct PhaseArtifacts {
  const BoundaryLayer* boundary_layer = nullptr;
  const MergedMesh* mesh = nullptr;
};

/// Observer invoked at pipeline phase boundaries. The pipeline stays
/// ignorant of who observes it (the CLI's --audit mode installs the
/// src/check invariant auditors here); observers must be read-only so an
/// observed run produces a mesh bit-identical to an unobserved one.
using PhaseHook =
    std::function<void(const char* phase, const PhaseArtifacts&)>;

}  // namespace aero
