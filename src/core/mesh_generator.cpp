#include "core/mesh_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "core/pipeline_config.hpp"
#include "geom/predicates.hpp"
#include "geom/segment.hpp"
#include "obs/trace.hpp"
#include "spatial/adt.hpp"

namespace aero {

namespace {

/// Exact removal of every live triangle that crosses or lies inside an
/// airfoil element. Needed because concave surface stretches (coves) are
/// legitimately non-Delaunay -- their surface edges can be absent from the
/// cloud triangulation, letting the ring flood leak into the body interior.
/// ADT-accelerated: candidate surface segments per triangle via extent-box
/// query; deep-inside tests by crossing parity along a rightward ray using
/// the same tree.
void remove_body_overlaps(MergedMesh& mesh,
                          const std::vector<std::vector<Vec2>>& surfaces) {
  for (const auto& surface : surfaces) {
    BBox2 box;
    for (const Vec2 p : surface) box.expand(p);
    AlternatingDigitalTree adt(box.inflated(1e-9 + 1e-9 * box.width()));
    std::vector<Segment> segs(surface.size());
    for (std::size_t i = 0; i < surface.size(); ++i) {
      segs[i] = Segment{surface[i], surface[(i + 1) % surface.size()]};
      adt.insert(segs[i].bbox(), static_cast<std::uint32_t>(i));
    }

    // Crossing-parity point-in-element using only ADT candidates.
    const auto inside_element = [&](Vec2 p) {
      if (!box.contains(p)) return false;
      bool inside = false;
      const BBox2 ray_box{{p.x, p.y}, {box.hi.x, p.y}};
      adt.for_each_overlap(ray_box, [&](std::uint32_t i) {
        const Vec2 a = segs[i].a;
        const Vec2 b = segs[i].b;
        if ((a.y <= p.y) != (b.y <= p.y)) {
          const double o = orient2d(a, b, p);
          if (b.y > a.y ? o > 0.0 : o < 0.0) inside = !inside;
        }
      });
      return inside;
    };

    for (std::size_t t = 0; t < mesh.record_count(); ++t) {
      if (!mesh.alive(t)) continue;
      const std::array<std::uint32_t, 3>& tri = mesh.tri(t);
      const Vec2 a = mesh.point(tri[0]);
      const Vec2 b = mesh.point(tri[1]);
      const Vec2 c = mesh.point(tri[2]);
      BBox2 tb;
      tb.expand(a);
      tb.expand(b);
      tb.expand(c);
      if (!tb.intersects(box)) continue;

      bool overlap = false;
      adt.for_each_overlap(tb, [&](std::uint32_t i) {
        if (overlap) return;
        for (const Segment e : {Segment{a, b}, Segment{b, c}, Segment{c, a}}) {
          // Only PROPER crossings mean the triangle straddles the surface.
          // Shared or collinear edges are the normal surface-adjacent case;
          // the centroid test below decides which side they are on.
          const IntersectResult hit = intersect(e, segs[i]);
          if (hit && hit.kind == IntersectKind::kProper) {
            overlap = true;
            return;
          }
        }
      });
      if (!overlap) {
        const Vec2 centroid{(a.x + b.x + c.x) / 3.0, (a.y + b.y + c.y) / 3.0};
        overlap = inside_element(centroid);
      }
      if (overlap) mesh.kill(t);
    }
  }
}

/// All surface and outer-border edges of a boundary layer, as the barrier
/// set of the ring flood.
std::vector<std::pair<Vec2, Vec2>> ring_barrier(const BoundaryLayer& bl) {
  std::vector<std::pair<Vec2, Vec2>> barrier;
  for (const auto& surface : bl.surfaces) {
    for (std::size_t i = 0; i < surface.size(); ++i) {
      barrier.emplace_back(surface[i], surface[(i + 1) % surface.size()]);
    }
  }
  for (const auto& border : bl.outer_borders) {
    for (std::size_t i = 0; i < border.size(); ++i) {
      const Vec2 a = border[i];
      const Vec2 b = border[(i + 1) % border.size()];
      if (a != b) barrier.emplace_back(a, b);
    }
  }
  return barrier;
}

/// Fire the configured phase observer (no-op when none is installed).
void notify_phase(const Options& opts, const char* phase,
                  const BoundaryLayer* bl, const MergedMesh* mesh) {
  if (opts.phase_hook) {
    opts.phase_hook(phase, PhaseArtifacts{bl, mesh});
  }
}

}  // namespace

void triangulate_boundary_layer(const BoundaryLayer& bl,
                                const DecomposeOptions& opts,
                                MergedMesh& out, std::size_t* subdomains,
                                std::vector<double>* task_seconds) {
  Subdomain root = make_root_subdomain(bl.points);
  const std::vector<Subdomain> leaves = decompose(std::move(root), opts);
  if (subdomains) *subdomains = leaves.size();

  for (const Subdomain& leaf : leaves) {
    Timer t;
    // Divide-and-conquer with vertical cuts, as the paper configures
    // Triangle for the over-decomposed leaves.
    const auto owned = triangulate_subdomain_dc(leaf);
    if (task_seconds) task_seconds->push_back(t.seconds());
    for (const auto& tri : owned) out.add_triangle(tri[0], tri[1], tri[2]);
  }

  // The Delaunay triangulation of the cloud covers its convex hull; the
  // boundary-layer mesh is only the ring between each surface and its outer
  // border. Airfoil interiors, coves, inter-element gaps, and hull pockets
  // are dropped and meshed isotropically by the near-body refinement.
  restrict_to_ring(out, bl);
}

void restrict_to_ring(MergedMesh& mesh, const BoundaryLayer& bl) {
  mesh.keep_only(ring_barrier(bl), bl.ring_seeds);
  // Safety pass: concave (cove) surface edges can be legitimately absent
  // from the Delaunay triangulation, letting the flood leak into a body.
  remove_body_overlaps(mesh, bl.surfaces);
}

InviscidDomain make_inviscid_domain(const BoundaryLayer& bl,
                                    const Options& opts,
                                    const MergedMesh& bl_mesh) {
  InviscidDomain domain;

  // Sizing: the near-body edge length continues the isotropic transition
  // size of the boundary layer (mean outer-border segment length).
  double mean_border_len = 0.0;
  std::size_t nseg = 0;
  for (const auto& border : bl.outer_borders) {
    for (std::size_t i = 0; i + 1 < border.size(); ++i) {
      mean_border_len += distance(border[i], border[i + 1]);
      ++nseg;
    }
  }
  mean_border_len = nseg > 0 ? mean_border_len / static_cast<double>(nseg)
                             : 0.01 * opts.airfoil.chord;

  BBox2 cloud_box;
  for (const Vec2 p : bl.points) cloud_box.expand(p);
  domain.inner =
      cloud_box.inflated(opts.nearbody_margin * opts.airfoil.chord);
  const Vec2 center = cloud_box.center();
  const double half = opts.farfield_chords * opts.airfoil.chord;
  domain.outer = BBox2{{center.x - half, center.y - half},
                       {center.x + half, center.y + half}};
  domain.sizing =
      GradedSizing{domain.inner,
                   opts.surface_length_factor * mean_border_len,
                   opts.grade};

  // The exact interface: the *actual* boundary of the assembled
  // boundary-layer mesh (minus the airfoil surfaces) becomes the hole
  // border of the near-body subdomain. Deriving it from the mesh rather
  // than from the nominal ray tips makes the two meshes conform by
  // construction, even where a nominal outer-border edge was not a Delaunay
  // edge of the cloud (e.g. around trailing-edge fans).
  std::vector<std::pair<Vec2, Vec2>> surface_edges;
  for (const auto& surface : bl.surfaces) {
    for (std::size_t i = 0; i < surface.size(); ++i) {
      surface_edges.emplace_back(surface[i],
                                 surface[(i + 1) % surface.size()]);
    }
  }
  domain.bl_interface = bl_mesh.boundary_edges(surface_edges);
  // Surface edges with no fluid-side triangle (zero-layer stretches) are
  // exposed directly to the near-body region and bound it too.
  for (const auto& e : bl_mesh.missing_edges(surface_edges)) {
    domain.bl_interface.push_back(e);
  }
  // Canonicalize: boundary_edges reports in triangle-scan order and
  // missing_edges in candidate order; both are deterministic, but neither is
  // the canonical form. The interface feeds the near-body unit's serialized
  // content (and the CDT's constraint insertion order), so checkpoint keys
  // and resumed meshes are bit-stable only if this list is sorted here.
  for (auto& e : domain.bl_interface) {
    if (std::make_pair(e.second.x, e.second.y) <
        std::make_pair(e.first.x, e.first.y)) {
      std::swap(e.first, e.second);
    }
  }
  std::sort(domain.bl_interface.begin(), domain.bl_interface.end(),
            [](const std::pair<Vec2, Vec2>& a, const std::pair<Vec2, Vec2>& b) {
              return std::tie(a.first.x, a.first.y, a.second.x, a.second.y) <
                     std::tie(b.first.x, b.first.y, b.second.x, b.second.y);
            });
  domain.hole_seeds = bl.hole_seeds;
  return domain;
}

MeshGenerationResult generate_mesh(const Options& opts) {
  const std::vector<OptionIssue> issues = opts.validate();
  for (const OptionIssue& i : issues) {
    if (i.is_error()) {
      throw std::invalid_argument("invalid options:\n" + format_issues(issues));
    }
  }

  MeshGenerationResult result;
  obs::apply(trace_config(opts));
  AERO_TRACE_THREAD("pipeline", -1);
  AERO_TRACE_SPAN("pipeline", "generate_mesh");
  Timer total;

  // Stage 1: anisotropic boundary layer (rays, fans, intersections, points).
  Timer t1;
  {
    AERO_TRACE_SPAN("pipeline", "boundary_layer_points");
    result.boundary_layer =
        build_boundary_layer(opts.airfoil, blayer_options(opts));
  }
  result.timings.record("boundary_layer_points", t1.seconds());
  notify_phase(opts, "boundary_layer", &result.boundary_layer, nullptr);

  // Stage 2: parallel-decomposed boundary-layer triangulation.
  Timer t3;
  {
    AERO_TRACE_SPAN("pipeline", "boundary_layer_triangulation");
    triangulate_boundary_layer(result.boundary_layer,
                               bl_decompose_options(opts), result.mesh,
                               &result.bl_subdomains,
                               &result.bl_task_seconds);
  }
  result.bl_triangles = result.mesh.triangle_count();
  result.timings.record("boundary_layer_triangulation", t3.seconds());
  notify_phase(opts, "boundary_layer_mesh", &result.boundary_layer,
               &result.mesh);

  // Stage 3: inviscid domain layout around the boundary-layer mesh.
  Timer t2;
  const InviscidDomain domain = [&] {
    AERO_TRACE_SPAN("pipeline", "inviscid_layout");
    return make_inviscid_domain(result.boundary_layer, opts, result.mesh);
  }();
  result.sizing = domain.sizing;
  result.timings.record("inviscid_layout", t2.seconds());

  // Stage 4: decoupled inviscid refinement.
  Timer t4;
  std::vector<InviscidSubdomain> subdomains;
  {
    AERO_TRACE_SPAN("pipeline", "inviscid_decoupling");
    for (InviscidSubdomain& quad : initial_quadrants(domain)) {
      for (InviscidSubdomain& leaf :
           decouple_recursive(std::move(quad), domain.sizing,
                              opts.inviscid_target_triangles,
                              opts.inviscid_max_level)) {
        subdomains.push_back(std::move(leaf));
      }
    }
    subdomains.push_back(near_body_subdomain(domain));
  }
  result.inviscid_subdomains = subdomains.size();
  result.timings.record("inviscid_decoupling", t4.seconds());

  Timer t5;
  {
    AERO_TRACE_SPAN("pipeline", "inviscid_refinement");
    for (const InviscidSubdomain& sub : subdomains) {
      Timer t;
      const TriangulateResult r =
          refine_subdomain(sub, domain.sizing, opts.threads_per_rank);
      result.inviscid_task_seconds.push_back(t.seconds());
      result.mesh.append(r.mesh);
    }
  }
  result.inviscid_triangles =
      result.mesh.triangle_count() - result.bl_triangles;
  result.timings.record("inviscid_refinement", t5.seconds());
  notify_phase(opts, "final_mesh", &result.boundary_layer, &result.mesh);

  result.status = RunStatus::kOk;  // every stage completed (throws otherwise)
  result.timings.record("total", total.seconds());
  return result;
}

}  // namespace aero
