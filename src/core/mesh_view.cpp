#include "core/mesh_view.hpp"

#include <cstring>

namespace aero {

namespace {

template <typename T>
void put_raw(std::vector<std::uint8_t>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T get_raw(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

MeshBlobStatus mesh_blob_status(const std::uint8_t* data, std::size_t len,
                                std::uint64_t* points,
                                std::uint64_t* triangles) {
  if (len < kMeshBlobHeaderSize) return MeshBlobStatus::kTruncated;
  if (std::memcmp(data, kMeshBlobMagic.data(), 4) != 0) {
    return MeshBlobStatus::kBadMagic;
  }
  if (get_raw<std::uint32_t>(data + 4) != kMeshBlobVersion) {
    return MeshBlobStatus::kBadVersion;
  }
  const auto np = get_raw<std::uint64_t>(data + 8);
  const auto nt = get_raw<std::uint64_t>(data + 16);
  const std::uint64_t body = len - kMeshBlobHeaderSize;
  if (np * 2 * sizeof(double) + nt * 3 * sizeof(std::uint32_t) != body) {
    return MeshBlobStatus::kCountMismatch;
  }
  if (points != nullptr) *points = np;
  if (triangles != nullptr) *triangles = nt;
  return MeshBlobStatus::kOk;
}

MeshBlobStatus MeshView::parse(const std::uint8_t* data, std::size_t len,
                               MeshView& out) {
  out = MeshView{};
  std::uint64_t np = 0, nt = 0;
  const MeshBlobStatus st = mesh_blob_status(data, len, &np, &nt);
  if (st != MeshBlobStatus::kOk) return st;
  const std::uint8_t* p = data + kMeshBlobHeaderSize;
  out.own_pts_.resize(np);
  std::memcpy(out.own_pts_.data(), p, np * 2 * sizeof(double));
  p += np * 2 * sizeof(double);
  out.own_tris_.resize(nt);
  std::memcpy(out.own_tris_.data(), p, nt * 3 * sizeof(std::uint32_t));
  return MeshBlobStatus::kOk;
}

std::vector<std::uint8_t> MeshView::serialize() const {
  std::vector<std::uint8_t> out;
  const std::uint64_t np = point_count();
  const std::uint64_t nt = triangle_count();
  out.reserve(kMeshBlobHeaderSize + np * 2 * sizeof(double) +
              nt * 3 * sizeof(std::uint32_t));
  out.insert(out.end(), kMeshBlobMagic.begin(), kMeshBlobMagic.end());
  put_raw(out, kMeshBlobVersion);
  put_raw(out, np);
  put_raw(out, nt);
  if (mesh_ != nullptr) {
    // Chunk-wise copies straight out of the SoA arenas.
    const auto& pts = mesh_->points_;
    for (std::size_t c = 0; c < pts.chunk_count(); ++c) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(pts.chunk_data(c));
      out.insert(out.end(), p, p + pts.chunk_len(c) * sizeof(Vec2));
    }
  } else {
    const auto* p = reinterpret_cast<const std::uint8_t*>(own_pts_.data());
    out.insert(out.end(), p, p + own_pts_.size() * sizeof(Vec2));
  }
  for_each_tri_ids([&](const std::array<std::uint32_t, 3>& ids) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(ids.data());
    out.insert(out.end(), p, p + 3 * sizeof(std::uint32_t));
  });
  return out;
}

}  // namespace aero
