#pragma once

#include <vector>

#include "geom/bbox.hpp"
#include "geom/vec2.hpp"

namespace aero {

/// Approximate unsigned distance-to-polyline field on a uniform grid
/// (multi-source chamfer sweep). O(1) lookups make it usable inside sizing
/// functions evaluated millions of times during refinement -- e.g. to band
/// an isotropic reference mesh around the airfoil surfaces the way a
/// solution-adapted isotropic mesher would.
class DistanceField {
 public:
  /// Build from polyline(s): each inner vector is a closed loop of points.
  /// `box` is the coverage area (distance saturates at the boundary);
  /// `resolution` is the grid size along the longer box edge.
  DistanceField(const std::vector<std::vector<Vec2>>& loops, const BBox2& box,
                int resolution = 512);

  /// Approximate distance from p to the nearest polyline (clamped to the
  /// grid's coverage; points outside the box return the boundary value).
  double distance(Vec2 p) const;

 private:
  BBox2 box_;
  int nx_ = 0, ny_ = 0;
  double cell_ = 0.0;
  std::vector<float> dist_;
};

}  // namespace aero
