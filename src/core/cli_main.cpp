// aeromesh: the push-button command-line mesh generator.
//
// "The user only needs to specify the input geometry and boundary layer
// parameters to start the program, then momentarily wait for the resulting
// mesh without having to further interact with the application."
//
// Usage: aeromesh [options]; run `aeromesh --help` for the full flag table.
//
// Application-level options (geometry selection, output, observers) are the
// short table below; every library knob (boundary layer, sizing, pool,
// faults, trace buffers) is parsed from aero::option_specs(), the metadata
// table generated from `aero::Options` — so --help, the benches, and the CLI
// can never drift from the library defaults documented in core/options.hpp.
//
// Long options also accept --name=value syntax (e.g. --trace=run.json).
//
// Exit codes: 0 success; 1 non-manifold mesh; 2 usage error; 3 partial or
// failed parallel run (watchdog/lost results); 4 pipeline exception; 5 an
// --audit pass reported defects; 6 run stopped by a budget or signal (valid
// partial mesh written; resumable with --resume when checkpointing); 7 mesh
// exceeded 32-bit index capacity (checked kMeshTooLarge, never a silent
// index truncation).
//
// Signals (parallel runs): the first SIGINT/SIGTERM requests a graceful
// drain -- in-flight subdomains finish, the checkpoint journal, partial
// mesh, trace, and metrics are all written, and the process exits 6. A
// second signal force-exits immediately (130).

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "aero.hpp"
#include "airfoil/naca.hpp"
#include "check/audit.hpp"
#include "io/mesh_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "runtime/parallel_driver.hpp"

namespace {

using namespace aero;

/// Application options: everything that is about this program (inputs,
/// outputs, observers) rather than about the mesher. Library knobs are NOT
/// listed here — they come from aero::option_specs().
struct AppFlag {
  const char* flag;
  const char* value_name;  ///< nullptr for boolean switches
  const char* help;
};

/// Signal-driven graceful stop. The handler only touches lock-free atomics
/// and _Exit, all async-signal-safe; the pool's monitor thread polls g_stop.
std::atomic<bool> g_stop AERO_ATOMIC_ROLE(flag){false};
std::atomic<int> g_signals AERO_ATOMIC_ROLE(counter){0};

void handle_stop_signal(int) {
  if (g_signals.fetch_add(1) >= 1) std::_Exit(130);  // second signal: now
  g_stop.store(true);
}

constexpr AppFlag kAppFlags[] = {
    {"--geometry", "NAME",
     "naca0012 | naca<code> | three-element (default naca0012)"},
    {"--poly", "FILE", "custom PSLG geometry (closed CCW loop(s))"},
    {"--surface-points", "N",
     "points per side for generated sections (default 300)"},
    {"--audit", nullptr,
     "run the invariant auditors at every phase boundary (read-only)"},
    {"--trace", "FILE",
     "record a timeline as Chrome trace_event JSON (observation-only)"},
    {"--metrics", "FILE",
     "write metrics.json (counters, gauges, per-rank load balance)"},
    {"--output", "BASE", "output basename (default \"mesh\")"},
    {"--format", "KIND", "vtk | node-ele | binary | all (default vtk)"},
    {"--help", nullptr, "print this table and exit"},
};

[[noreturn]] void usage(const char* argv0, bool requested) {
  FILE* out = requested ? stdout : stderr;
  std::fprintf(out, "usage: %s [options]\n\napplication options:\n", argv0);
  for (const AppFlag& f : kAppFlags) {
    char head[64];
    std::snprintf(head, sizeof(head), "%s %s", f.flag,
                  f.value_name != nullptr ? f.value_name : "");
    std::fprintf(out, "  %-28s %s\n", head, f.help);
  }
  std::fprintf(out, "\nlibrary options (defaults from aero::Options):\n");
  for (const OptionSpec& s : option_specs()) {
    char head[64];
    std::snprintf(head, sizeof(head), "%s %s", s.flag, s.value_name);
    std::fprintf(out, "  %-28s %s (default %s)\n", head, s.help,
                 s.default_str.c_str());
  }
  std::exit(requested ? 0 : 2);
}

AirfoilConfig load_poly_geometry(const std::string& path) {
  // A .poly whose segments form closed loops; each loop becomes an element.
  const Pslg pslg = read_poly(path);
  AirfoilConfig config;
  std::vector<bool> used(pslg.points.size(), false);
  // Walk loops: follow segments from an unused start point.
  std::vector<std::vector<std::uint32_t>> adjacency(pslg.points.size());
  for (std::size_t s = 0; s < pslg.segments.size(); ++s) {
    adjacency[pslg.segments[s].first].push_back(pslg.segments[s].second);
    adjacency[pslg.segments[s].second].push_back(pslg.segments[s].first);
  }
  for (std::uint32_t start = 0; start < pslg.points.size(); ++start) {
    if (used[start] || adjacency[start].size() != 2) continue;
    std::vector<Vec2> loop;
    std::uint32_t prev = start, cur = start;
    do {
      used[cur] = true;
      loop.push_back(pslg.points[cur]);
      const auto& nb = adjacency[cur];
      const std::uint32_t next = (nb[0] == prev && nb.size() > 1) ? nb[1] : nb[0];
      prev = cur;
      cur = next;
    } while (cur != start && !used[cur]);
    if (loop.size() >= 3) {
      // Ensure CCW orientation.
      double area2 = 0.0;
      for (std::size_t i = 0; i < loop.size(); ++i) {
        area2 += loop[i].cross(loop[(i + 1) % loop.size()]);
      }
      if (area2 < 0.0) std::reverse(loop.begin(), loop.end());
      AirfoilElement e;
      e.name = "element" + std::to_string(config.elements.size());
      e.surface = std::move(loop);
      if (!polygon_is_simple(e.surface)) {
        std::fprintf(stderr, "error: loop %zu in %s self-intersects\n",
                     config.elements.size(), path.c_str());
        std::exit(1);
      }
      config.elements.push_back(std::move(e));
    }
  }
  if (config.elements.empty()) {
    std::fprintf(stderr, "error: no closed loops in %s\n", path.c_str());
    std::exit(1);
  }
  const BBox2 box = config.bbox();
  config.chord = std::max(box.width(), box.height());
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  std::string geometry = "naca0012";
  std::string poly_path;
  std::string output = "mesh";
  std::string format = "vtk";
  std::size_t surface_points = 300;
  Options opts;
  bool audit = false;
  std::string trace_path;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--audit") == 0) {
      audit = true;
      continue;
    }
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0], /*requested=*/true);
    }
    // Value-taking option, in "--name value" or "--name=value" form.
    const auto arg = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) usage(argv[0], false);
      return argv[++i];
    };
    if (const char* v = arg("--geometry")) {
      geometry = v;
    } else if (const char* v = arg("--poly")) {
      poly_path = v;
    } else if (const char* v = arg("--surface-points")) {
      surface_points = std::strtoul(v, nullptr, 10);
    } else if (const char* v = arg("--trace")) {
      trace_path = v;
    } else if (const char* v = arg("--metrics")) {
      metrics_path = v;
    } else if (const char* v = arg("--output")) {
      output = v;
    } else if (const char* v = arg("--format")) {
      format = v;
    } else {
      // Library knobs: every remaining flag is looked up in the Options
      // metadata table, so the CLI needs no per-knob code at all.
      bool matched = false;
      for (const OptionSpec& spec : option_specs()) {
        if (const char* v = arg(spec.flag)) {
          if (!spec.apply(opts, v)) {
            std::fprintf(stderr, "error: bad value for %s: '%s'\n", spec.flag,
                         v);
            return 2;
          }
          matched = true;
          break;
        }
      }
      if (!matched) usage(argv[0], false);
    }
  }
  opts.trace = !trace_path.empty();

  if (!poly_path.empty()) {
    opts.airfoil = load_poly_geometry(poly_path);
  } else if (geometry == "three-element") {
    opts.airfoil = make_three_element(surface_points);
  } else if (geometry.rfind("naca", 0) == 0 && geometry.size() == 8) {
    AirfoilElement e;
    e.name = geometry;
    e.surface = naca4_polyline(Naca4::from_code(geometry.substr(4)),
                               surface_points);
    opts.airfoil.elements.push_back(std::move(e));
  } else if (geometry == "naca0012") {
    opts.airfoil = make_naca0012(surface_points);
  } else {
    usage(argv[0], false);
  }

  // Typed validation of the whole option set: print every issue, stop on
  // errors (warnings are advisory).
  {
    const std::vector<OptionIssue> issues = opts.validate();
    bool fatal = false;
    for (const OptionIssue& issue : issues) {
      std::fprintf(stderr, "%s: %s: %s\n",
                   issue.is_error() ? "error" : "warning", issue.field.c_str(),
                   issue.message.c_str());
      fatal = fatal || issue.is_error();
    }
    if (fatal) return 2;
  }

  const int ranks = opts.ranks;
  std::printf("aeromesh: %zu element(s), %zu surface points, farfield %g "
              "chords%s\n",
              opts.airfoil.elements.size(),
              opts.airfoil.surface_point_count(), opts.farfield_chords,
              ranks > 0 ? " (parallel pool)" : "");

  MergedMesh mesh;
  PhaseTimings timings;
  RunStatus status = RunStatus::kOk;
  ProtocolTrace trace;
  std::vector<obs::RankLoad> load_rows;
  std::size_t audit_defects = 0;
  if (audit) {
    // Deep invariant audits at every phase boundary. Read-only: the mesh of
    // an audited run is bit-identical to an unaudited one.
    opts.phase_hook = [&audit_defects](const char* phase,
                                       const PhaseArtifacts& a) {
      AuditReport report;
      if (std::strcmp(phase, "boundary_layer") == 0 &&
          a.boundary_layer != nullptr) {
        report.merge(audit_blayer(*a.boundary_layer));
      }
      if (a.mesh != nullptr) report.merge(audit_merged(*a.mesh));
      std::printf("audit[%s]: %s\n", phase, report.summary().c_str());
      audit_defects += report.defect_count;
    };
  }
  CheckpointSummary resilience;
  try {
    if (ranks > 0) {
      // Graceful signal handling only makes sense with the pool (the
      // sequential pipeline has no drain point); leave the default
      // immediate-kill behavior for sequential runs.
      // aerolint: allow(atomic-mixed: hands the atomic object itself to the pool's stop-flag observer, which loads it atomically)
      opts.stop_flag = &g_stop;
      std::signal(SIGINT, handle_stop_signal);
      std::signal(SIGTERM, handle_stop_signal);
      ParallelMeshResult r =
          parallel_generate_mesh(opts, audit ? &trace : nullptr);
      mesh = std::move(r.mesh);
      timings = r.timings;
      status = r.status;
      resilience = r.resilience;
      load_rows = rank_loads(r);
      if (resilience.resume_attempted) {
        if (resilience.resume_rejected) {
          std::fprintf(stderr, "warning: resume rejected: %s\n",
                       resilience.resume_error.c_str());
        } else {
          std::printf("resume: %zu journal record(s) loaded, %zu subdomain(s) "
                      "replayed instead of re-meshed",
                      resilience.resume_records, resilience.resumed_units);
          if (resilience.discarded_bytes > 0) {
            std::printf(" (%zu corrupt tail byte(s) discarded)",
                        resilience.discarded_bytes);
          }
          std::printf("\n");
        }
      }
      std::printf("pool steals: %zu (bl) + %zu (inviscid)\n", r.bl_pool.steals,
                  r.inviscid_pool.steals);
      if (opts.fault_rate > 0.0) {
        const PoolStats& b = r.bl_pool;
        const PoolStats& i = r.inviscid_pool;
        std::printf("faults: dropped %zu, corrupt %zu, retries %zu, "
                    "requeued %zu, fallback %zu, retransmits %zu, "
                    "dead ranks %zu\n",
                    b.dropped_messages + i.dropped_messages,
                    b.corrupt_payloads + i.corrupt_payloads,
                    b.unit_retries + i.unit_retries,
                    b.requeued_units + i.requeued_units,
                    b.fallback_units + i.fallback_units,
                    b.retransmits + i.retransmits,
                    b.dead_ranks + i.dead_ranks);
      }
      if (status == RunStatus::kStopped) {
        // Completeness report: what a drained run finished and how to get
        // the rest.
        std::printf("run stopped (%s): %zu of %zu subdomain(s) complete; "
                    "partial mesh is valid\n",
                    to_string(resilience.stop_cause), resilience.units_done,
                    resilience.units_total);
        if (resilience.checkpointed_units > 0 ||
            !opts.checkpoint_path.empty() || !opts.resume_path.empty()) {
          const std::string& journal = !opts.checkpoint_path.empty()
                                           ? opts.checkpoint_path
                                           : opts.resume_path;
          std::printf("re-run with --resume %s to mesh the remainder\n",
                      journal.c_str());
        } else {
          std::printf("re-run with --checkpoint FILE to make stopped runs "
                      "resumable\n");
        }
      } else if (status != RunStatus::kOk) {
        std::fprintf(stderr, "warning: parallel run status: %s\n",
                     to_string(status));
      }
      if (audit) {
        // Replay the recorded pool protocol. A watchdog-aborted or drained
        // run legitimately leaves work unfinished; only the exactly-once
        // and ordering invariants are enforced then.
        const AuditReport report = audit_protocol(
            trace, status == RunStatus::kFailed ||
                       status == RunStatus::kStopped);
        std::printf("audit[protocol]: %s\n", report.summary().c_str());
        audit_defects += report.defect_count;
      }
    } else {
      MeshGenerationResult r = generate_mesh(opts);
      mesh = std::move(r.mesh);
      timings = r.timings;
      status = r.status;
    }
  } catch (const MeshTooLargeError& e) {
    status = RunStatus::kMeshTooLarge;
    std::fprintf(stderr, "error: %s: %s\n", to_string(status), e.what());
    return 7;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: mesh generation failed: %s\n", e.what());
    return 4;
  }

  const MergedStats stats = compute_stats(mesh);
  const auto conf = mesh.check_conformity();
  std::printf("mesh: %zu triangles, %zu vertices, min angle %.2f deg, "
              "manifold=%s\n",
              stats.triangles, stats.vertices, stats.min_angle_deg,
              conf.manifold ? "yes" : "NO");
  for (const auto& [phase, sec] : timings.entries()) {
    std::printf("  %-32s %8.3f s\n", phase.c_str(), sec);
  }

  {
    // Mesh- and phase-level metrics, published whether or not they are
    // exported (recording is cheap; the registry is process-global).
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.gauge("mesh.triangles").set(static_cast<double>(stats.triangles));
    reg.gauge("mesh.vertices").set(static_cast<double>(stats.vertices));
    reg.gauge("mesh.min_angle_deg").set(stats.min_angle_deg);
    for (const auto& [phase, sec] : timings.entries()) {
      reg.gauge("phase." + phase + "_seconds").set(sec);
    }
  }
  if (!trace_path.empty()) {
    if (obs::write_chrome_trace(obs::TraceRecorder::global(), trace_path)) {
      std::printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write trace to %s\n",
                   trace_path.c_str());
    }
  }
  if (!metrics_path.empty()) {
    if (obs::write_metrics_json(obs::MetricsRegistry::global(), load_rows,
                                metrics_path)) {
      std::printf("wrote %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   metrics_path.c_str());
    }
  }

  if (format == "vtk" || format == "all") {
    write_vtk(mesh, output + ".vtk");
    std::printf("wrote %s.vtk\n", output.c_str());
  }
  if (format == "node-ele" || format == "all") {
    write_node_ele(mesh, output);
    std::printf("wrote %s.node/.ele\n", output.c_str());
  }
  if (format == "binary" || format == "all") {
    write_binary(mesh, output + ".bin");
    std::printf("wrote %s.bin\n", output.c_str());
  }
  if (audit_defects > 0) {
    std::fprintf(stderr, "error: --audit reported %zu defect(s)\n",
                 audit_defects);
    return 5;
  }
  if (status == RunStatus::kStopped) return 6;
  if (status == RunStatus::kPartial || status == RunStatus::kFailed) return 3;
  return conf.manifold ? 0 : 1;
}
