// aeromesh: the push-button command-line mesh generator.
//
// "The user only needs to specify the input geometry and boundary layer
// parameters to start the program, then momentarily wait for the resulting
// mesh without having to further interact with the application."
//
// Usage:
//   aeromesh [options]
// Options:
//   --geometry naca0012|naca<code>|three-element   (default naca0012)
//   --poly <file.poly>        custom PSLG geometry (closed CCW loop(s))
//   --surface-points N        points per side for generated sections (300)
//   --first-height H          first boundary-layer cell height (2e-4)
//   --growth-ratio R          geometric growth ratio (1.2)
//   --growth geometric|polynomial|adaptive
//   --max-layers N            cap on boundary-layer layers (40)
//   --farfield C              far-field half-extent in chords (30)
//   --grade G                 inviscid edge-length growth per unit (0.25)
//   --ranks P                 mesh on a P-rank in-process pool (sequential
//                             when omitted)
//   --fault-rate R            chaos run: inject message drops at rate R
//                             (duplication/corruption/delay at R/2) into the
//                             pool fabric; requires --ranks
//   --fault-seed S            deterministic seed for fault injection (0)
//   --rma on|off              zero-copy RMA-window transport for large pool
//                             payloads (on); off forces full-copy frames
//   --coalesce-us N           coalesce small pool control messages, flushing
//                             lanes after N microseconds (0 = off)
//   --audit                   run the src/check invariant auditors at every
//                             phase boundary (and over the pool protocol
//                             trace when combined with --ranks); audits are
//                             read-only, so the mesh is identical to a
//                             non-audit run
//   --trace FILE              record an execution timeline and write it as
//                             Chrome trace_event JSON (open chrome://tracing
//                             or ui.perfetto.dev); observation-only, the
//                             mesh is bit-identical to an untraced run
//   --metrics FILE            write metrics.json: every named counter/gauge/
//                             histogram plus the per-rank load-balance table
//                             (busy/comm/idle time, units, steals) when
//                             combined with --ranks
//   --output BASE             output basename (default "mesh")
//   --format vtk|node-ele|binary|all   (default vtk)
//
// Long options also accept --name=value syntax (e.g. --trace=run.json).
//
// Exit codes: 0 success; 1 non-manifold mesh; 2 usage error; 3 partial or
// failed parallel run (watchdog/lost results); 4 pipeline exception; 5 an
// --audit pass reported defects.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "airfoil/naca.hpp"
#include "check/audit.hpp"
#include "core/mesh_generator.hpp"
#include "io/mesh_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "runtime/parallel_driver.hpp"

namespace {

using namespace aero;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--geometry naca0012|naca<code>|three-element]\n"
               "  [--poly file.poly] [--surface-points N] [--first-height H]\n"
               "  [--growth-ratio R] [--growth geometric|polynomial|adaptive]\n"
               "  [--max-layers N] [--farfield C] [--grade G] [--ranks P]\n"
               "  [--fault-rate R] [--fault-seed S] [--rma on|off]\n"
               "  [--coalesce-us N] [--audit]\n"
               "  [--trace FILE] [--metrics FILE]\n"
               "  [--output BASE] [--format vtk|node-ele|binary|all]\n",
               argv0);
  std::exit(2);
}

AirfoilConfig load_poly_geometry(const std::string& path) {
  // A .poly whose segments form closed loops; each loop becomes an element.
  const Pslg pslg = read_poly(path);
  AirfoilConfig config;
  std::vector<bool> used(pslg.points.size(), false);
  // Walk loops: follow segments from an unused start point.
  std::vector<std::vector<std::uint32_t>> adjacency(pslg.points.size());
  for (std::size_t s = 0; s < pslg.segments.size(); ++s) {
    adjacency[pslg.segments[s].first].push_back(pslg.segments[s].second);
    adjacency[pslg.segments[s].second].push_back(pslg.segments[s].first);
  }
  for (std::uint32_t start = 0; start < pslg.points.size(); ++start) {
    if (used[start] || adjacency[start].size() != 2) continue;
    std::vector<Vec2> loop;
    std::uint32_t prev = start, cur = start;
    do {
      used[cur] = true;
      loop.push_back(pslg.points[cur]);
      const auto& nb = adjacency[cur];
      const std::uint32_t next = (nb[0] == prev && nb.size() > 1) ? nb[1] : nb[0];
      prev = cur;
      cur = next;
    } while (cur != start && !used[cur]);
    if (loop.size() >= 3) {
      // Ensure CCW orientation.
      double area2 = 0.0;
      for (std::size_t i = 0; i < loop.size(); ++i) {
        area2 += loop[i].cross(loop[(i + 1) % loop.size()]);
      }
      if (area2 < 0.0) std::reverse(loop.begin(), loop.end());
      AirfoilElement e;
      e.name = "element" + std::to_string(config.elements.size());
      e.surface = std::move(loop);
      if (!polygon_is_simple(e.surface)) {
        std::fprintf(stderr, "error: loop %zu in %s self-intersects\n",
                     config.elements.size(), path.c_str());
        std::exit(1);
      }
      config.elements.push_back(std::move(e));
    }
  }
  if (config.elements.empty()) {
    std::fprintf(stderr, "error: no closed loops in %s\n", path.c_str());
    std::exit(1);
  }
  const BBox2 box = config.bbox();
  config.chord = std::max(box.width(), box.height());
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  std::string geometry = "naca0012";
  std::string poly_path;
  std::string output = "mesh";
  std::string format = "vtk";
  std::size_t surface_points = 300;
  MeshGeneratorConfig config;
  config.blayer.growth = {GrowthKind::kGeometric, 2e-4, 1.2};
  config.blayer.max_layers = 40;
  int ranks = 0;
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 0;
  PoolTuning tuning;
  bool audit = false;
  std::string trace_path;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--audit") == 0) {
      audit = true;
      continue;
    }
    // Value-taking option, in "--name value" or "--name=value" form.
    const auto arg = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (const char* v = arg("--geometry")) {
      geometry = v;
    } else if (const char* v = arg("--poly")) {
      poly_path = v;
    } else if (const char* v = arg("--surface-points")) {
      surface_points = std::strtoul(v, nullptr, 10);
    } else if (const char* v = arg("--first-height")) {
      config.blayer.growth.first_height = std::strtod(v, nullptr);
    } else if (const char* v = arg("--growth-ratio")) {
      config.blayer.growth.rate = std::strtod(v, nullptr);
    } else if (const char* v = arg("--growth")) {
      const std::string g = v;
      config.blayer.growth.kind = g == "polynomial" ? GrowthKind::kPolynomial
                                  : g == "adaptive" ? GrowthKind::kAdaptive
                                                    : GrowthKind::kGeometric;
    } else if (const char* v = arg("--max-layers")) {
      config.blayer.max_layers = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = arg("--farfield")) {
      config.farfield_chords = std::strtod(v, nullptr);
    } else if (const char* v = arg("--grade")) {
      config.grade = std::strtod(v, nullptr);
    } else if (const char* v = arg("--ranks")) {
      ranks = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = arg("--fault-rate")) {
      fault_rate = std::strtod(v, nullptr);
    } else if (const char* v = arg("--fault-seed")) {
      fault_seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = arg("--rma")) {
      const std::string m = v;
      if (m != "on" && m != "off") usage(argv[0]);
      tuning.rma = m == "on";
    } else if (const char* v = arg("--coalesce-us")) {
      tuning.coalesce_delay =
          std::chrono::microseconds(std::strtol(v, nullptr, 10));
    } else if (const char* v = arg("--trace")) {
      trace_path = v;
    } else if (const char* v = arg("--metrics")) {
      metrics_path = v;
    } else if (const char* v = arg("--output")) {
      output = v;
    } else if (const char* v = arg("--format")) {
      format = v;
    } else {
      usage(argv[0]);
    }
  }
  config.trace.enabled = !trace_path.empty();

  if (!poly_path.empty()) {
    config.airfoil = load_poly_geometry(poly_path);
  } else if (geometry == "three-element") {
    config.airfoil = make_three_element(surface_points);
  } else if (geometry.rfind("naca", 0) == 0 && geometry.size() == 8) {
    AirfoilElement e;
    e.name = geometry;
    e.surface = naca4_polyline(Naca4::from_code(geometry.substr(4)),
                               surface_points);
    config.airfoil.elements.push_back(std::move(e));
  } else if (geometry == "naca0012") {
    config.airfoil = make_naca0012(surface_points);
  } else {
    usage(argv[0]);
  }

  std::printf("aeromesh: %zu element(s), %zu surface points, farfield %g "
              "chords%s\n",
              config.airfoil.elements.size(),
              config.airfoil.surface_point_count(), config.farfield_chords,
              ranks > 0 ? " (parallel pool)" : "");

  if (fault_rate > 0.0 && ranks <= 0) {
    std::fprintf(stderr, "error: --fault-rate requires --ranks\n");
    return 2;
  }

  MergedMesh mesh;
  PhaseTimings timings;
  RunStatus status = RunStatus::kOk;
  ProtocolTrace trace;
  std::vector<obs::RankLoad> load_rows;
  std::size_t audit_defects = 0;
  if (audit) {
    // Deep invariant audits at every phase boundary. Read-only: the mesh of
    // an audited run is bit-identical to an unaudited one.
    config.phase_hook = [&audit_defects](const char* phase,
                                         const PhaseArtifacts& a) {
      AuditReport report;
      if (std::strcmp(phase, "boundary_layer") == 0 &&
          a.boundary_layer != nullptr) {
        report.merge(audit_blayer(*a.boundary_layer));
      }
      if (a.mesh != nullptr) report.merge(audit_merged(*a.mesh));
      std::printf("audit[%s]: %s\n", phase, report.summary().c_str());
      audit_defects += report.defect_count;
    };
  }
  try {
    if (ranks > 0) {
      FaultConfig faults;
      faults.enabled = fault_rate > 0.0;
      faults.seed = fault_seed;
      faults.drop_rate = fault_rate;
      faults.duplicate_rate = fault_rate / 2.0;
      faults.corrupt_rate = fault_rate / 2.0;
      faults.delay_rate = fault_rate / 2.0;
      ParallelMeshResult r = parallel_generate_mesh(
          config, ranks, faults, audit ? &trace : nullptr, tuning);
      mesh = std::move(r.mesh);
      timings = r.timings;
      status = r.status;
      load_rows = rank_loads(r);
      std::printf("pool steals: %zu (bl) + %zu (inviscid)\n", r.bl_pool.steals,
                  r.inviscid_pool.steals);
      if (faults.enabled) {
        const PoolStats& b = r.bl_pool;
        const PoolStats& i = r.inviscid_pool;
        std::printf("faults: dropped %zu, corrupt %zu, retries %zu, "
                    "requeued %zu, fallback %zu, retransmits %zu, "
                    "dead ranks %zu\n",
                    b.dropped_messages + i.dropped_messages,
                    b.corrupt_payloads + i.corrupt_payloads,
                    b.unit_retries + i.unit_retries,
                    b.requeued_units + i.requeued_units,
                    b.fallback_units + i.fallback_units,
                    b.retransmits + i.retransmits,
                    b.dead_ranks + i.dead_ranks);
      }
      if (status != RunStatus::kOk) {
        std::fprintf(stderr, "warning: parallel run status: %s\n",
                     to_string(status));
      }
      if (audit) {
        // Replay the recorded pool protocol. A watchdog-aborted run
        // legitimately leaves work unfinished; only the exactly-once and
        // ordering invariants are enforced then.
        const AuditReport report =
            audit_protocol(trace, status == RunStatus::kFailed);
        std::printf("audit[protocol]: %s\n", report.summary().c_str());
        audit_defects += report.defect_count;
      }
    } else {
      MeshGenerationResult r = generate_mesh(config);
      mesh = std::move(r.mesh);
      timings = r.timings;
      status = r.status;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: mesh generation failed: %s\n", e.what());
    return 4;
  }

  const MergedStats stats = compute_stats(mesh);
  const auto conf = mesh.check_conformity();
  std::printf("mesh: %zu triangles, %zu vertices, min angle %.2f deg, "
              "manifold=%s\n",
              stats.triangles, stats.vertices, stats.min_angle_deg,
              conf.manifold ? "yes" : "NO");
  for (const auto& [phase, sec] : timings.entries()) {
    std::printf("  %-32s %8.3f s\n", phase.c_str(), sec);
  }

  {
    // Mesh- and phase-level metrics, published whether or not they are
    // exported (recording is cheap; the registry is process-global).
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.gauge("mesh.triangles").set(static_cast<double>(stats.triangles));
    reg.gauge("mesh.vertices").set(static_cast<double>(stats.vertices));
    reg.gauge("mesh.min_angle_deg").set(stats.min_angle_deg);
    for (const auto& [phase, sec] : timings.entries()) {
      reg.gauge("phase." + phase + "_seconds").set(sec);
    }
  }
  if (!trace_path.empty()) {
    if (obs::write_chrome_trace(obs::TraceRecorder::global(), trace_path)) {
      std::printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write trace to %s\n",
                   trace_path.c_str());
    }
  }
  if (!metrics_path.empty()) {
    if (obs::write_metrics_json(obs::MetricsRegistry::global(), load_rows,
                                metrics_path)) {
      std::printf("wrote %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   metrics_path.c_str());
    }
  }

  if (format == "vtk" || format == "all") {
    write_vtk(mesh, output + ".vtk");
    std::printf("wrote %s.vtk\n", output.c_str());
  }
  if (format == "node-ele" || format == "all") {
    write_node_ele(mesh, output);
    std::printf("wrote %s.node/.ele\n", output.c_str());
  }
  if (format == "binary" || format == "all") {
    write_binary(mesh, output + ".bin");
    std::printf("wrote %s.bin\n", output.c_str());
  }
  if (audit_defects > 0) {
    std::fprintf(stderr, "error: --audit reported %zu defect(s)\n",
                 audit_defects);
    return 5;
  }
  return conf.manifold ? 0 : 1;
}
