#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/merged_mesh.hpp"
#include "geom/vec2.hpp"

namespace aero {

/// Typed outcome of parsing a serialized mesh blob. Consumers (service
/// cache, journal replay, checkpoint sink) reject mismatched layouts with
/// one of these instead of silently mis-decoding.
enum class MeshBlobStatus {
  kOk = 0,
  kTruncated,      ///< shorter than the fixed header
  kBadMagic,       ///< not an "AMSH" blob
  kBadVersion,     ///< layout version this build does not speak
  kCountMismatch,  ///< header counts disagree with the payload size
};

inline const char* to_string(MeshBlobStatus s) {
  switch (s) {
    case MeshBlobStatus::kOk: return "ok";
    case MeshBlobStatus::kTruncated: return "truncated";
    case MeshBlobStatus::kBadMagic: return "bad-magic";
    case MeshBlobStatus::kBadVersion: return "bad-version";
    case MeshBlobStatus::kCountMismatch: return "count-mismatch";
  }
  return "unknown";
}

/// Serialized mesh layout: "AMSH" | u32 version | u64 points | u64 live
/// triangles | point coords (2 doubles each) | triangle vertex-id triples
/// (3 u32 each), all little-endian. Version 1 is the first tagged layout;
/// the pre-tag form (bare counts) is rejected as kBadMagic.
inline constexpr std::array<std::uint8_t, 4> kMeshBlobMagic = {'A', 'M', 'S',
                                                               'H'};
inline constexpr std::uint32_t kMeshBlobVersion = 1;
inline constexpr std::size_t kMeshBlobHeaderSize = 4 + 4 + 8 + 8;

/// Validate a blob header without materializing the mesh. On kOk the counts
/// are stored through the optional out-pointers.
MeshBlobStatus mesh_blob_status(const std::uint8_t* data, std::size_t len,
                                std::uint64_t* points = nullptr,
                                std::uint64_t* triangles = nullptr);
inline MeshBlobStatus mesh_blob_status(const std::vector<std::uint8_t>& blob,
                                       std::uint64_t* points = nullptr,
                                       std::uint64_t* triangles = nullptr) {
  return mesh_blob_status(blob.data(), blob.size(), points, triangles);
}

/// Stable read-only facade over an assembled mesh: index-based handles,
/// range iteration, and the one serialized form shared by the service
/// cache, the result journal, and the checkpoint sink. Callers outside the
/// mesh core consume this instead of reaching into MergedMesh internals.
///
/// A view is either borrowed (zero-copy over a live MergedMesh -- the mesh
/// must outlive the view) or owning (parsed from a serialized blob, in
/// which case every record is live and ids are the blob's ids).
class MeshView {
 public:
  MeshView() = default;
  /// Borrowed view; `mesh` must outlive the view.
  explicit MeshView(const MergedMesh& mesh) : mesh_(&mesh) {}

  /// Parse an "AMSH" blob into an owning view. On any status other than
  /// kOk, `out` is left empty.
  static MeshBlobStatus parse(const std::uint8_t* data, std::size_t len,
                              MeshView& out);
  static MeshBlobStatus parse(const std::vector<std::uint8_t>& blob,
                              MeshView& out) {
    return parse(blob.data(), blob.size(), out);
  }

  std::size_t point_count() const {
    return mesh_ ? mesh_->point_count() : own_pts_.size();
  }
  /// Triangle records including dead ones; iterate with alive().
  std::size_t record_count() const {
    return mesh_ ? mesh_->record_count() : own_tris_.size();
  }
  /// Live triangles only.
  std::size_t triangle_count() const {
    return mesh_ ? mesh_->triangle_count() : own_tris_.size();
  }
  bool alive(std::size_t t) const { return mesh_ ? mesh_->alive(t) : true; }
  const std::array<std::uint32_t, 3>& tri(std::size_t t) const {
    return mesh_ ? mesh_->tri(t) : own_tris_[t];
  }
  Vec2 point(std::uint32_t i) const {
    return mesh_ ? mesh_->point(i) : own_pts_[i];
  }

  /// Visit each live triangle's vertex ids, in record order.
  template <typename Fn>
  void for_each_tri_ids(Fn&& fn) const {
    const std::size_t n = record_count();
    for (std::size_t t = 0; t < n; ++t) {
      if (!alive(t)) continue;
      fn(tri(t));
    }
  }

  /// Visit each live triangle's vertex coordinates, in record order.
  template <typename Fn>
  void for_each_triangle(Fn&& fn) const {
    for_each_tri_ids([&](const std::array<std::uint32_t, 3>& ids) {
      fn(point(ids[0]), point(ids[1]), point(ids[2]));
    });
  }

  /// Serialize to the versioned "AMSH" form. Points keep their interned
  /// ids (including ids orphaned by carving); only live triangles are
  /// emitted. Borrowed views copy chunk-wise out of the SoA arenas.
  std::vector<std::uint8_t> serialize() const;

 private:
  const MergedMesh* mesh_ = nullptr;  ///< borrowed backing (nullptr = owning)
  std::vector<Vec2> own_pts_;
  std::vector<std::array<std::uint32_t, 3>> own_tris_;
};

}  // namespace aero
