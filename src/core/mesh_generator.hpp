#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "airfoil/geometry.hpp"
#include "blayer/boundary_layer.hpp"
#include "core/merged_mesh.hpp"
#include "core/run_status.hpp"
#include "hull/subdomain.hpp"
#include "inviscid/decouple.hpp"
#include "core/timer.hpp"
#include "obs/trace.hpp"

namespace aero {

/// Artifacts visible to a phase observer; pointers are null for artifacts
/// the pipeline has not produced yet.
struct PhaseArtifacts {
  const BoundaryLayer* boundary_layer = nullptr;
  const MergedMesh* mesh = nullptr;
};

/// Observer invoked at pipeline phase boundaries. The pipeline stays
/// ignorant of who observes it (the CLI's --audit mode installs the
/// src/check invariant auditors here); observers must be read-only so an
/// observed run produces a mesh bit-identical to an unobserved one.
using PhaseHook =
    std::function<void(const char* phase, const PhaseArtifacts&)>;

/// Configuration of the push-button mesh generator: the user provides the
/// geometry and boundary-layer parameters; everything else is derived.
struct MeshGeneratorConfig {
  AirfoilConfig airfoil;
  BoundaryLayerOptions blayer;

  /// Far-field half-extent in chord lengths (paper: 30-50).
  double farfield_chords = 30.0;
  /// Near-body box margin beyond the boundary-layer cloud, in chords. Keep
  /// it tight: the near-body subdomain is never split (it owns the airfoil
  /// holes), so everything inside it is one rank's work.
  double nearbody_margin = 0.12;
  /// Inviscid edge-length growth per unit distance from the near-body box.
  double grade = 0.25;
  /// Inviscid sizing at the near-body box, as a multiple of the mean
  /// boundary-layer outer-border spacing (the isotropic transition size).
  double surface_length_factor = 1.5;

  /// Boundary-layer decomposition tolerances (coarse partitioner).
  DecomposeOptions bl_decompose{.min_points = 2048, .max_level = 12};
  /// Inviscid decoupling recursion target.
  double inviscid_target_triangles = 40000.0;
  int inviscid_max_level = 10;

  /// Intra-rank threads for each subdomain refinement (the paper's ranks
  /// are processes; this adds threads inside one). Deliberately NOT
  /// mesh-defining: it reaches only RefineOptions::threads, whose chunked
  /// scan is thread-count invariant, so any value produces the identical
  /// mesh — which is why the service strips it from cache keys.
  int threads_per_rank = 1;

  /// Optional phase-boundary observer (see PhaseHook). Both the sequential
  /// pipeline and the parallel driver fire it after the boundary layer is
  /// built ("boundary_layer"), after the boundary-layer triangulation is
  /// assembled and ring-restricted ("boundary_layer_mesh"), and after the
  /// final mesh is complete ("final_mesh").
  PhaseHook phase_hook;

  /// Observability trace settings (see src/obs). Applied on entry to the
  /// pipeline; recording is observation-only, so a traced run produces a
  /// mesh bit-identical to an untraced one.
  obs::TraceConfig trace;
};

/// Everything the pipeline produces, including the per-stage artifacts the
/// benchmarks and figures are generated from.
struct MeshGenerationResult {
  MergedMesh mesh;
  BoundaryLayer boundary_layer;
  GradedSizing sizing;
  /// Sequential runs either complete (kOk) or throw; the field exists so
  /// every pipeline entry point surfaces the same success contract as the
  /// fault-tolerant parallel driver instead of assuming success.
  RunStatus status = RunStatus::kOk;

  std::size_t bl_subdomains = 0;
  std::size_t inviscid_subdomains = 0;
  std::size_t bl_triangles = 0;
  std::size_t inviscid_triangles = 0;
  PhaseTimings timings;

  /// Per-subdomain meshing costs in seconds, in completion order; the
  /// cluster performance model replays these through the work-stealing
  /// scheduler to produce the strong-scaling curves.
  std::vector<double> bl_task_seconds;
  std::vector<double> inviscid_task_seconds;
};

/// The push-button sequential pipeline (the parallel driver in src/runtime
/// runs exactly these stages with the subdomain work distributed).
///
/// Deprecated shim: new code should build an `aero::Options` (core/options.hpp
/// or the umbrella `aero.hpp`) and call `generate_mesh(const Options&)`, which
/// validates before running. This struct-poking overload is kept for one
/// release for existing callers and the internal pipeline.
MeshGenerationResult generate_mesh(const MeshGeneratorConfig& config);

/// Stage: triangulate the boundary-layer cloud by projection-based
/// decomposition, merge the owned triangles, and keep exactly the ring
/// between the surfaces and the outer borders. Exposed for tests/benches.
void triangulate_boundary_layer(const BoundaryLayer& bl,
                                const DecomposeOptions& opts,
                                MergedMesh& out, std::size_t* subdomains,
                                std::vector<double>* task_seconds);

/// Restrict an assembled boundary-layer triangulation to the ring between
/// the surfaces and the outer borders (flood from the ring seeds bounded by
/// the nominal barrier edges, then an exact purge of any triangle crossing
/// or inside a body -- concave surface edges may legitimately be absent from
/// the Delaunay triangulation, letting the flood leak). Shared by the
/// sequential pipeline, the parallel driver, and the cluster-model builder.
void restrict_to_ring(MergedMesh& mesh, const BoundaryLayer& bl);

/// Stage: build the inviscid domain description around the assembled
/// boundary-layer mesh (whose actual boundary becomes the near-body hole).
InviscidDomain make_inviscid_domain(const BoundaryLayer& bl,
                                    const MeshGeneratorConfig& config,
                                    const MergedMesh& bl_mesh);

}  // namespace aero
