#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "airfoil/geometry.hpp"
#include "blayer/boundary_layer.hpp"
#include "core/merged_mesh.hpp"
#include "core/options.hpp"
#include "core/phase_hook.hpp"
#include "core/run_status.hpp"
#include "hull/subdomain.hpp"
#include "inviscid/decouple.hpp"
#include "core/timer.hpp"

namespace aero {

/// Everything the pipeline produces, including the per-stage artifacts the
/// benchmarks and figures are generated from.
struct MeshGenerationResult {
  MergedMesh mesh;
  BoundaryLayer boundary_layer;
  GradedSizing sizing;
  /// Sequential runs either complete (kOk) or throw; the field exists so
  /// every pipeline entry point surfaces the same success contract as the
  /// fault-tolerant parallel driver instead of assuming success.
  RunStatus status = RunStatus::kOk;

  std::size_t bl_subdomains = 0;
  std::size_t inviscid_subdomains = 0;
  std::size_t bl_triangles = 0;
  std::size_t inviscid_triangles = 0;
  PhaseTimings timings;

  /// Per-subdomain meshing costs in seconds, in completion order; the
  /// cluster performance model replays these through the work-stealing
  /// scheduler to produce the strong-scaling curves.
  std::vector<double> bl_task_seconds;
  std::vector<double> inviscid_task_seconds;
};

/// The push-button sequential pipeline (the parallel driver in src/runtime
/// runs exactly these stages with the subdomain work distributed). Validates
/// first: throws std::invalid_argument listing every issue when validate()
/// reports an error. `ranks`/transport/fault knobs are ignored here
/// (sequential) — use parallel_generate_mesh(Options) for a pool run.
MeshGenerationResult generate_mesh(const Options& opts);

/// Stage: triangulate the boundary-layer cloud by projection-based
/// decomposition, merge the owned triangles, and keep exactly the ring
/// between the surfaces and the outer borders. Exposed for tests/benches.
void triangulate_boundary_layer(const BoundaryLayer& bl,
                                const DecomposeOptions& opts,
                                MergedMesh& out, std::size_t* subdomains,
                                std::vector<double>* task_seconds);

/// Restrict an assembled boundary-layer triangulation to the ring between
/// the surfaces and the outer borders (flood from the ring seeds bounded by
/// the nominal barrier edges, then an exact purge of any triangle crossing
/// or inside a body -- concave surface edges may legitimately be absent from
/// the Delaunay triangulation, letting the flood leak). Shared by the
/// sequential pipeline, the parallel driver, and the cluster-model builder.
void restrict_to_ring(MergedMesh& mesh, const BoundaryLayer& bl);

/// Stage: build the inviscid domain description around the assembled
/// boundary-layer mesh (whose actual boundary becomes the near-body hole).
InviscidDomain make_inviscid_domain(const BoundaryLayer& bl,
                                    const Options& opts,
                                    const MergedMesh& bl_mesh);

}  // namespace aero
