#include "core/options_hash.hpp"

#include <type_traits>
#include <vector>

namespace aero {

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n,
                    std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnv1aPrime;
  }
  return h;
}

namespace {

template <typename T>
void mix(std::uint64_t& h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  h = fnv1a(reinterpret_cast<const std::uint8_t*>(&v), sizeof(T), h);
}

void mix_points(std::uint64_t& h, const std::vector<Vec2>& pts) {
  mix<std::uint64_t>(h, pts.size());
  h = fnv1a(reinterpret_cast<const std::uint8_t*>(pts.data()),
            pts.size() * sizeof(Vec2), h);
}

}  // namespace

std::uint64_t mesh_config_hash(const Options& opts) {
  std::uint64_t h = kFnv1aOffset;
  // Geometry: the exact surface coordinates, element by element. Element
  // names are labels, not mesh inputs, and are excluded.
  mix<std::uint64_t>(h, opts.airfoil.elements.size());
  for (const AirfoilElement& e : opts.airfoil.elements) {
    mix_points(h, e.surface);
  }
  mix(h, opts.airfoil.chord);
  // Boundary layer.
  mix(h, static_cast<std::uint8_t>(opts.growth_kind));
  mix(h, opts.first_height);
  mix(h, opts.growth_ratio);
  mix(h, opts.max_layers);
  // Inviscid region.
  mix(h, opts.farfield_chords);
  mix(h, opts.nearbody_margin);
  mix(h, opts.grade);
  mix(h, opts.surface_length_factor);
  // Decomposition: these change the subdomain tree, hence the checkpoint
  // record keys, so a journal written under a different decomposition is
  // useless even though the final mesh would match. (The service cache
  // inherits the same conservatism: a decomposition change misses.)
  mix<std::uint64_t>(h, opts.bl_min_points);
  mix(h, opts.bl_max_level);
  mix(h, opts.inviscid_target_triangles);
  mix(h, opts.inviscid_max_level);
  return h;
}

}  // namespace aero
