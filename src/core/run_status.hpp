#pragma once

namespace aero {

/// Outcome of a pipeline stage or pool run. The fault-tolerant runtime
/// degrades instead of hanging or dying: a run that loses results to a dead
/// rank or hits the watchdog bound reports so here instead of blocking
/// forever or calling std::terminate.
enum class [[nodiscard]] RunStatus {
  kOk = 0,   ///< complete result
  kPartial,  ///< terminated in bounded time, but some results are missing
  kStopped,  ///< drained on a budget/stop request; partial mesh is valid
             ///< and a checkpoint journal makes the remainder resumable
  kFailed,   ///< aborted by the watchdog; result is best-effort
  kMeshTooLarge,  ///< mesh outgrew 32-bit index capacity; checked, never
                  ///< silently truncated (see MergedMesh::add_point)
};

inline const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kPartial: return "partial";
    case RunStatus::kStopped: return "stopped";
    case RunStatus::kFailed: return "failed";
    case RunStatus::kMeshTooLarge: return "mesh-too-large";
  }
  return "unknown";
}

/// Combine stage outcomes: the run is only as good as its worst stage.
inline RunStatus worse(RunStatus a, RunStatus b) { return a < b ? b : a; }

}  // namespace aero
