#include "core/distance_field.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace aero {

DistanceField::DistanceField(const std::vector<std::vector<Vec2>>& loops,
                             const BBox2& box, int resolution)
    : box_(box) {
  const double longer = std::max(box.width(), box.height());
  cell_ = longer / resolution;
  nx_ = std::max(2, static_cast<int>(std::ceil(box.width() / cell_)) + 1);
  ny_ = std::max(2, static_cast<int>(std::ceil(box.height() / cell_)) + 1);
  dist_.assign(static_cast<std::size_t>(nx_) * ny_,
               std::numeric_limits<float>::infinity());

  const auto idx = [this](int i, int j) {
    return static_cast<std::size_t>(j) * nx_ + i;
  };

  // Seed: sample every loop edge at sub-cell spacing.
  for (const auto& loop : loops) {
    for (std::size_t k = 0; k < loop.size(); ++k) {
      const Vec2 a = loop[k];
      const Vec2 b = loop[(k + 1) % loop.size()];
      const double len = (b - a).norm();  // aero::distance is shadowed here
      const int steps = std::max(1, static_cast<int>(len / (0.5 * cell_)));
      for (int s = 0; s <= steps; ++s) {
        const Vec2 p = lerp(a, b, static_cast<double>(s) / steps);
        const int i = std::clamp(
            static_cast<int>((p.x - box_.lo.x) / cell_), 0, nx_ - 1);
        const int j = std::clamp(
            static_cast<int>((p.y - box_.lo.y) / cell_), 0, ny_ - 1);
        dist_[idx(i, j)] = 0.0f;
      }
    }
  }

  // Two-pass chamfer sweep (3-4 metric scaled to the cell size).
  const float straight = static_cast<float>(cell_);
  const float diag = static_cast<float>(cell_ * 1.41421356237);
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      float d = dist_[idx(i, j)];
      if (i > 0) d = std::min(d, dist_[idx(i - 1, j)] + straight);
      if (j > 0) d = std::min(d, dist_[idx(i, j - 1)] + straight);
      if (i > 0 && j > 0) d = std::min(d, dist_[idx(i - 1, j - 1)] + diag);
      if (i + 1 < nx_ && j > 0) {
        d = std::min(d, dist_[idx(i + 1, j - 1)] + diag);
      }
      dist_[idx(i, j)] = d;
    }
  }
  for (int j = ny_; j-- > 0;) {
    for (int i = nx_; i-- > 0;) {
      float d = dist_[idx(i, j)];
      if (i + 1 < nx_) d = std::min(d, dist_[idx(i + 1, j)] + straight);
      if (j + 1 < ny_) d = std::min(d, dist_[idx(i, j + 1)] + straight);
      if (i + 1 < nx_ && j + 1 < ny_) {
        d = std::min(d, dist_[idx(i + 1, j + 1)] + diag);
      }
      if (i > 0 && j + 1 < ny_) d = std::min(d, dist_[idx(i - 1, j + 1)] + diag);
      dist_[idx(i, j)] = d;
    }
  }
}

double DistanceField::distance(Vec2 p) const {
  const int i = std::clamp(static_cast<int>((p.x - box_.lo.x) / cell_), 0,
                           nx_ - 1);
  const int j = std::clamp(static_cast<int>((p.y - box_.lo.y) / cell_), 0,
                           ny_ - 1);
  return dist_[static_cast<std::size_t>(j) * nx_ + i];
}

}  // namespace aero
