#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace aero {

/// The project's single raw monotonic-clock read. Everything outside the
/// observability layer times through Timer or this helper (the aerolint
/// no-raw-clock rule enforces it), so clock usage stays auditable and
/// swappable in one place.
inline std::chrono::steady_clock::time_point mono_now() {
  return std::chrono::steady_clock::now();
}

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Named phase timings accumulated through a pipeline run.
class PhaseTimings {
 public:
  void record(std::string name, double seconds) {
    entries_.emplace_back(std::move(name), seconds);
  }
  const std::vector<std::pair<std::string, double>>& entries() const {
    return entries_;
  }
  double total() const {
    double t = 0.0;
    for (const auto& [_, s] : entries_) t += s;
    return t;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

}  // namespace aero
