#pragma once

#include <cstddef>
#include <cstdint>

namespace aero {

/// CRC-32 (IEEE 802.3, reflected) of a byte range, slice-by-8. Every
/// protocol payload carries this as a 4-byte little-endian trailer so a
/// corrupted message is detected at the receiver instead of being
/// deserialized into garbage; the checkpoint journal frames every record
/// with it so a torn write is detected at resume instead of replaying
/// garbage triangles. Lives in core so both the runtime serializers and the
/// io journal can share one implementation.
///
/// `seed` chains ranges without concatenating them: crc32 of A++B equals
/// crc32(B, nb, crc32(A, na)), which is how the journal frames a record's
/// key and payload without copying them into one contiguous buffer first.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                    std::uint32_t seed = 0);

}  // namespace aero
