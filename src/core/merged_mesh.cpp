#include "core/merged_mesh.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "geom/predicates.hpp"
#include "geom/segment.hpp"
#include "geom/triangle_quality.hpp"

namespace aero {

std::size_t MergedMesh::probe(Vec2 p) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = Vec2Hash{}(p) & mask;
  while (true) {
    const std::uint32_t s = slots_[i];
    if (s == 0 || points_[s - 1] == p) return i;
    i = (i + 1) & mask;
  }
}

void MergedMesh::rehash(std::size_t new_cap) {
  slots_.assign(new_cap, 0);
  for (std::size_t id = 0; id < points_.size(); ++id) {
    slots_[probe(points_[id])] = static_cast<std::uint32_t>(id) + 1;
  }
}

std::uint32_t MergedMesh::add_point(Vec2 p) {
  // Keep load factor <= 1/2 (linear probing stays short). Rehashing only
  // changes lookup cost: ids are insertion-ordered, so mesh identity is
  // independent of the table layout.
  if (2 * (points_.size() + 1) > slots_.size()) {
    rehash(slots_.empty() ? 1024 : slots_.size() * 2);
  }
  const std::size_t i = probe(p);
  if (slots_[i] != 0) return slots_[i] - 1;
  if (points_.size() >= capacity_limit_) {
    throw MeshTooLargeError("merged mesh exceeds 32-bit point capacity");
  }
  const auto id = static_cast<std::uint32_t>(points_.size());
  points_.push_back(p);
  slots_[i] = id + 1;
  return id;
}

std::uint32_t MergedMesh::find_point(Vec2 p) const {
  if (slots_.empty()) return kNoPoint;
  const std::uint32_t s = slots_[probe(p)];
  return s == 0 ? kNoPoint : s - 1;
}

void MergedMesh::add_triangle(Vec2 a, Vec2 b, Vec2 c) {
  if (tris_.size() >= capacity_limit_) {
    throw MeshTooLargeError("merged mesh exceeds 32-bit triangle capacity");
  }
  tris_.push_back({add_point(a), add_point(b), add_point(c)});
  dead_.push_back(0);
}

void MergedMesh::append(const DelaunayMesh& mesh) {
  // Intern each piece vertex once instead of hashing every triangle corner:
  // a triangle soup probes the coordinate table ~6x per interior vertex, and
  // that hashing dominated merge time in profiles.
  constexpr auto kUnmapped = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> remap(mesh.point_count(), kUnmapped);
  mesh.for_each_triangle([&](TriIndex t) {
    const MeshTri mt = mesh.tri(t);
    if (!mt.inside) return;
    if (tris_.size() >= capacity_limit_) {
      throw MeshTooLargeError("merged mesh exceeds 32-bit triangle capacity");
    }
    std::array<std::uint32_t, 3> ids;
    for (int i = 0; i < 3; ++i) {
      std::uint32_t& slot = remap[static_cast<std::size_t>(mt.v[i])];
      if (slot == kUnmapped) slot = add_point(mesh.point(mt.v[i]));
      ids[i] = slot;
    }
    tris_.push_back(ids);
    dead_.push_back(0);
  });
}

std::vector<std::uint8_t> MergedMesh::flood_from(
    const std::vector<std::pair<Vec2, Vec2>>& barrier,
    const std::vector<Vec2>& seeds) const {
  // Edge -> incident live triangles.
  std::unordered_map<EdgeKey, std::array<std::int64_t, 2>, EdgeKeyHash> edges;
  edges.reserve(tris_.size() * 2);
  for (std::size_t t = 0; t < tris_.size(); ++t) {
    if (dead_[t]) continue;
    for (int i = 0; i < 3; ++i) {
      const EdgeKey k = edge_key(tris_[t][i], tris_[t][(i + 1) % 3]);
      auto [it, fresh] = edges.try_emplace(k, std::array<std::int64_t, 2>{-1, -1});
      auto& slots = it->second;
      (slots[0] < 0 ? slots[0] : slots[1]) = static_cast<std::int64_t>(t);
    }
  }

  std::unordered_set<EdgeKey, EdgeKeyHash> blocked;
  blocked.reserve(barrier.size() * 2);
  for (const auto& [a, b] : barrier) {
    const std::uint32_t ia = find_point(a);
    const std::uint32_t ib = find_point(b);
    if (ia == kNoPoint || ib == kNoPoint) continue;
    blocked.insert(edge_key(ia, ib));
  }

  std::vector<std::uint8_t> reached(tris_.size(), 0);
  for (const Vec2 seed : seeds) {
    // Locate a live triangle containing the seed (linear scan: seeds are
    // few and this is a one-shot assembly pass).
    std::int64_t start = -1;
    for (std::size_t t = 0; t < tris_.size() && start < 0; ++t) {
      if (dead_[t] || reached[t]) continue;
      const Vec2 a = points_[tris_[t][0]];
      const Vec2 b = points_[tris_[t][1]];
      const Vec2 c = points_[tris_[t][2]];
      if (orient2d(a, b, seed) >= 0.0 && orient2d(b, c, seed) >= 0.0 &&
          orient2d(c, a, seed) >= 0.0) {
        start = static_cast<std::int64_t>(t);
      }
    }
    if (start < 0) continue;

    std::vector<std::int64_t> stack{start};
    reached[static_cast<std::size_t>(start)] = 1;
    while (!stack.empty()) {
      const auto t = static_cast<std::size_t>(stack.back());
      stack.pop_back();
      for (int i = 0; i < 3; ++i) {
        const EdgeKey k = edge_key(tris_[t][i], tris_[t][(i + 1) % 3]);
        if (blocked.contains(k)) continue;
        const auto it = edges.find(k);
        if (it == edges.end()) continue;
        for (const std::int64_t nb : it->second) {
          if (nb < 0 || dead_[static_cast<std::size_t>(nb)] ||
              reached[static_cast<std::size_t>(nb)]) {
            continue;
          }
          reached[static_cast<std::size_t>(nb)] = 1;
          stack.push_back(nb);
        }
      }
    }
  }
  return reached;
}

void MergedMesh::carve(const std::vector<std::pair<Vec2, Vec2>>& barrier,
                       const std::vector<Vec2>& seeds) {
  const std::vector<std::uint8_t> reached = flood_from(barrier, seeds);
  for (std::size_t t = 0; t < tris_.size(); ++t) {
    if (!dead_[t] && reached[t]) {
      dead_[t] = 1;
      ++dead_count_;
    }
  }
}

void MergedMesh::keep_only(const std::vector<std::pair<Vec2, Vec2>>& barrier,
                           const std::vector<Vec2>& seeds) {
  const std::vector<std::uint8_t> reached = flood_from(barrier, seeds);
  for (std::size_t t = 0; t < tris_.size(); ++t) {
    if (!dead_[t] && !reached[t]) {
      dead_[t] = 1;
      ++dead_count_;
    }
  }
}

std::vector<std::pair<Vec2, Vec2>> MergedMesh::boundary_edges(
    const std::vector<std::pair<Vec2, Vec2>>& exclude) const {
  std::unordered_map<EdgeKey, int, EdgeKeyHash> counts;
  counts.reserve(tris_.size() * 2);
  for (std::size_t t = 0; t < tris_.size(); ++t) {
    if (dead_[t]) continue;
    for (int i = 0; i < 3; ++i) {
      ++counts[edge_key(tris_[t][i], tris_[t][(i + 1) % 3])];
    }
  }
  std::unordered_set<EdgeKey, EdgeKeyHash> excluded;
  excluded.reserve(exclude.size() * 2);
  for (const auto& [a, b] : exclude) {
    const std::uint32_t ia = find_point(a);
    const std::uint32_t ib = find_point(b);
    if (ia == kNoPoint || ib == kNoPoint) continue;
    excluded.insert(edge_key(ia, ib));
  }
  // Emit in triangle-scan order, not hash order: every boundary edge has
  // exactly one live triangle, so the scan yields each edge exactly once and
  // the output order is a pure function of the mesh.
  std::vector<std::pair<Vec2, Vec2>> out;
  for (std::size_t t = 0; t < tris_.size(); ++t) {
    if (dead_[t]) continue;
    for (int i = 0; i < 3; ++i) {
      const EdgeKey k = edge_key(tris_[t][i], tris_[t][(i + 1) % 3]);
      if (counts.at(k) != 1 || excluded.contains(k)) continue;
      out.emplace_back(points_[k.first], points_[k.second]);
    }
  }
  return out;
}

std::vector<std::pair<Vec2, Vec2>> MergedMesh::missing_edges(
    const std::vector<std::pair<Vec2, Vec2>>& candidates) const {
  std::unordered_set<EdgeKey, EdgeKeyHash> present;
  present.reserve(tris_.size() * 2);
  for (std::size_t t = 0; t < tris_.size(); ++t) {
    if (dead_[t]) continue;
    for (int i = 0; i < 3; ++i) {
      present.insert(edge_key(tris_[t][i], tris_[t][(i + 1) % 3]));
    }
  }
  std::vector<std::pair<Vec2, Vec2>> out;
  for (const auto& [a, b] : candidates) {
    const std::uint32_t ia = find_point(a);
    const std::uint32_t ib = find_point(b);
    if (ia == kNoPoint || ib == kNoPoint ||
        !present.contains(edge_key(ia, ib))) {
      out.emplace_back(a, b);
    }
  }
  return out;
}

MergedMesh::Conformity MergedMesh::check_conformity() const {
  Conformity c;
  std::unordered_map<EdgeKey, int, EdgeKeyHash> counts;
  counts.reserve(tris_.size() * 2);
  for (std::size_t t = 0; t < tris_.size(); ++t) {
    if (dead_[t]) continue;
    const Vec2 a = points_[tris_[t][0]];
    const Vec2 b = points_[tris_[t][1]];
    const Vec2 cc = points_[tris_[t][2]];
    if (orient2d(a, b, cc) <= 0.0) c.orientation_ok = false;
    for (int i = 0; i < 3; ++i) {
      ++counts[edge_key(tris_[t][i], tris_[t][(i + 1) % 3])];
    }
  }
  // aerolint: allow(det-unordered-iter: commutative counting -- the three sums are iteration-order independent)
  for (const auto& [k, n] : counts) {
    if (n == 1) {
      ++c.boundary_edges;
    } else if (n == 2) {
      ++c.interior_edges;
    } else {
      ++c.nonmanifold_edges;
      c.manifold = false;
    }
  }
  return c;
}

MergedStats compute_stats(const MergedMesh& mesh) {
  MergedStats s;
  s.vertices = mesh.point_count();
  mesh.for_each_triangle([&](Vec2 a, Vec2 b, Vec2 c) {
    ++s.triangles;
    constexpr double kRad2Deg = 180.0 / 3.14159265358979323846;
    s.min_angle_deg = std::min(s.min_angle_deg, min_angle(a, b, c) * kRad2Deg);
    s.max_angle_deg = std::max(s.max_angle_deg, max_angle(a, b, c) * kRad2Deg);
    s.max_aspect_ratio = std::max(s.max_aspect_ratio, aspect_ratio(a, b, c));
    s.total_area += signed_area(a, b, c);
  });
  return s;
}

}  // namespace aero
