#include "core/options.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace aero {

namespace {

// Strict scalar parsers for option_specs(): the whole token must consume,
// so "--ranks 4x" is a usage error instead of silently meaning 4.
bool parse_double(const char* text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_long(const char* text, long* out) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_u64(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_on_off(const char* text, bool* out) {
  const std::string s = text;
  if (s == "on") {
    *out = true;
  } else if (s == "off") {
    *out = false;
  } else {
    return false;
  }
  return true;
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

const char* growth_name(GrowthKind k) {
  switch (k) {
    case GrowthKind::kGeometric: return "geometric";
    case GrowthKind::kPolynomial: return "polynomial";
    case GrowthKind::kAdaptive: return "adaptive";
  }
  return "geometric";
}

void err(std::vector<OptionIssue>& out, const char* field, std::string msg) {
  out.push_back({OptionIssue::Severity::kError, field, std::move(msg)});
}

void warn(std::vector<OptionIssue>& out, const char* field, std::string msg) {
  out.push_back({OptionIssue::Severity::kWarning, field, std::move(msg)});
}

}  // namespace

std::string format_issues(const std::vector<OptionIssue>& issues) {
  std::string out;
  for (const OptionIssue& i : issues) {
    out += i.is_error() ? "error: " : "warning: ";
    out += i.field;
    out += ": ";
    out += i.message;
    out += '\n';
  }
  return out;
}

std::vector<OptionIssue> Options::validate() const {
  std::vector<OptionIssue> issues;
  if (airfoil.elements.empty()) {
    err(issues, "geometry", "no input surfaces (set Options::airfoil)");
  }
  for (std::size_t e = 0; e < airfoil.elements.size(); ++e) {
    if (airfoil.elements[e].surface.size() < 3) {
      err(issues, "geometry",
          "element " + std::to_string(e) + " has fewer than 3 surface points");
    }
  }
  if (!(first_height > 0.0)) {
    err(issues, "first_height", "first cell height must be > 0");
  }
  if (growth_kind != GrowthKind::kPolynomial && !(growth_ratio >= 1.0)) {
    err(issues, "growth_ratio", "geometric/adaptive growth ratio must be >= 1");
  }
  if (growth_kind == GrowthKind::kPolynomial && !(growth_ratio >= 0.0)) {
    err(issues, "growth_ratio", "polynomial growth exponent must be >= 0");
  }
  if (max_layers < 1) err(issues, "max_layers", "need at least one layer");
  if (!(farfield_chords > 1.0)) {
    err(issues, "farfield_chords", "far field must exceed one chord");
  } else if (farfield_chords < 10.0) {
    warn(issues, "farfield_chords",
         "far field below 10 chords; the paper uses 30-50");
  }
  if (!(nearbody_margin > 0.0)) {
    err(issues, "nearbody_margin", "near-body margin must be > 0");
  }
  if (!(grade > 0.0)) err(issues, "grade", "sizing grade must be > 0");
  if (!(surface_length_factor > 0.0)) {
    err(issues, "surface_length_factor", "transition factor must be > 0");
  }
  if (bl_min_points < 3) {
    err(issues, "bl_min_points", "subdomains need at least 3 points");
  }
  if (bl_max_level < 0) err(issues, "bl_max_level", "depth cap must be >= 0");
  if (!(inviscid_target_triangles > 0.0)) {
    err(issues, "inviscid_target_triangles", "target must be > 0");
  }
  if (inviscid_max_level < 0) {
    err(issues, "inviscid_max_level", "depth cap must be >= 0");
  }
  if (ranks < 0) err(issues, "ranks", "rank count must be >= 0");
  if (threads_per_rank < 1) {
    err(issues, "threads_per_rank", "thread count must be >= 1");
  }
  if (rma_threshold == 0) {
    err(issues, "rma_threshold", "threshold must be >= 1 byte");
  }
  if (coalesce_us < 0) {
    err(issues, "coalesce_us", "coalesce delay must be >= 0");
  }
  if (ack_timeout_ms < 1) {
    err(issues, "ack_timeout_ms", "ack timeout must be >= 1 ms");
  }
  if (heartbeat_timeout_ms < 1) {
    err(issues, "heartbeat_timeout_ms", "heartbeat timeout must be >= 1 ms");
  } else if (heartbeat_timeout_ms <= ack_timeout_ms) {
    warn(issues, "heartbeat_timeout_ms",
         "heartbeat timeout at or below the ack timeout: one retransmit "
         "window can get a live rank declared dead");
  }
  if (watchdog_timeout_s < 0) {
    err(issues, "watchdog_timeout_s", "watchdog bound must be >= 0 (0 = auto)");
  }
  if (budget_wall_ms < 0) {
    err(issues, "budget_wall_ms", "wall budget must be >= 0 (0 = unlimited)");
  }
  if (budget_rss_mb < 0) {
    err(issues, "budget_rss_mb", "RSS budget must be >= 0 (0 = unlimited)");
  }
  if ((budget_wall_ms > 0 || budget_rss_mb > 0) && ranks <= 0) {
    warn(issues, budget_wall_ms > 0 ? "budget_wall_ms" : "budget_rss_mb",
         "run budgets are enforced by the parallel pool; the sequential "
         "pipeline ignores them");
  }
  if (!checkpoint_path.empty() && ranks <= 0) {
    err(issues, "checkpoint_path", "checkpointing requires ranks > 0");
  }
  if (!resume_path.empty() && ranks <= 0) {
    err(issues, "resume_path", "resume requires ranks > 0");
  }
  if (!merge_spill_dir.empty() && ranks <= 0) {
    err(issues, "merge_spill_dir",
        "out-of-core merge is a parallel-pool feature; requires ranks > 0");
  }
  if (merge_resident_mb <= 0) {
    err(issues, "merge_resident_mb", "merge resident budget must be > 0 MiB");
  }
  if (fault_rate < 0.0 || fault_rate >= 1.0) {
    err(issues, "fault_rate", "injection rate must be in [0, 1)");
  } else if (fault_rate > 0.0 && ranks <= 0) {
    err(issues, "fault_rate", "fault injection requires ranks > 0");
  }
  if (trace_events == 0) {
    err(issues, "trace_events", "trace buffer capacity must be > 0");
  }
  return issues;
}

const std::vector<OptionSpec>& option_specs() {
  // Defaults are rendered from a default-constructed Options, so this table
  // can never disagree with the initializers in options.hpp.
  static const std::vector<OptionSpec> specs = [] {
    const Options d;
    std::vector<OptionSpec> s;
    s.push_back({"--first-height", "H",
                 "first boundary-layer cell height (chords)",
                 fmt_double(d.first_height),
                 [](Options& o, const char* t) {
                   return parse_double(t, &o.first_height);
                 }});
    s.push_back({"--growth-ratio", "R",
                 "growth ratio (geometric/adaptive) or exponent (polynomial)",
                 fmt_double(d.growth_ratio),
                 [](Options& o, const char* t) {
                   return parse_double(t, &o.growth_ratio);
                 }});
    s.push_back({"--growth", "KIND", "growth law: geometric|polynomial|adaptive",
                 growth_name(d.growth_kind),
                 [](Options& o, const char* t) {
                   const std::string g = t;
                   if (g == "geometric") {
                     o.growth_kind = GrowthKind::kGeometric;
                   } else if (g == "polynomial") {
                     o.growth_kind = GrowthKind::kPolynomial;
                   } else if (g == "adaptive") {
                     o.growth_kind = GrowthKind::kAdaptive;
                   } else {
                     return false;
                   }
                   return true;
                 }});
    s.push_back({"--max-layers", "N", "cap on boundary-layer layers",
                 std::to_string(d.max_layers),
                 [](Options& o, const char* t) {
                   long v;
                   if (!parse_long(t, &v)) return false;
                   o.max_layers = static_cast<int>(v);
                   return true;
                 }});
    s.push_back({"--farfield", "C", "far-field half-extent in chords",
                 fmt_double(d.farfield_chords),
                 [](Options& o, const char* t) {
                   return parse_double(t, &o.farfield_chords);
                 }});
    s.push_back({"--nearbody-margin", "M",
                 "near-body box margin beyond the layer cloud (chords)",
                 fmt_double(d.nearbody_margin),
                 [](Options& o, const char* t) {
                   return parse_double(t, &o.nearbody_margin);
                 }});
    s.push_back({"--grade", "G",
                 "inviscid edge-length growth per unit distance",
                 fmt_double(d.grade),
                 [](Options& o, const char* t) {
                   return parse_double(t, &o.grade);
                 }});
    s.push_back({"--surface-length-factor", "F",
                 "inviscid sizing at the near-body box (x mean border spacing)",
                 fmt_double(d.surface_length_factor),
                 [](Options& o, const char* t) {
                   return parse_double(t, &o.surface_length_factor);
                 }});
    s.push_back({"--bl-min-points", "N",
                 "stop splitting boundary-layer subdomains below N points",
                 std::to_string(d.bl_min_points),
                 [](Options& o, const char* t) {
                   long v;
                   if (!parse_long(t, &v) || v < 0) return false;
                   o.bl_min_points = static_cast<std::size_t>(v);
                   return true;
                 }});
    s.push_back({"--bl-max-level", "N",
                 "boundary-layer decomposition depth cap",
                 std::to_string(d.bl_max_level),
                 [](Options& o, const char* t) {
                   long v;
                   if (!parse_long(t, &v)) return false;
                   o.bl_max_level = static_cast<int>(v);
                   return true;
                 }});
    s.push_back({"--inviscid-target", "T",
                 "inviscid decoupling target triangles per subdomain",
                 fmt_double(d.inviscid_target_triangles),
                 [](Options& o, const char* t) {
                   return parse_double(t, &o.inviscid_target_triangles);
                 }});
    s.push_back({"--inviscid-max-level", "N",
                 "inviscid decoupling depth cap",
                 std::to_string(d.inviscid_max_level),
                 [](Options& o, const char* t) {
                   long v;
                   if (!parse_long(t, &v)) return false;
                   o.inviscid_max_level = static_cast<int>(v);
                   return true;
                 }});
    s.push_back({"--ranks", "P",
                 "mesh on a P-rank in-process pool (0 = sequential)",
                 std::to_string(d.ranks),
                 [](Options& o, const char* t) {
                   long v;
                   if (!parse_long(t, &v)) return false;
                   o.ranks = static_cast<int>(v);
                   return true;
                 }});
    s.push_back({"--threads-per-rank", "T",
                 "threads inside each rank's subdomain refinement "
                 "(performance-only; the mesh is identical at every T)",
                 std::to_string(d.threads_per_rank),
                 [](Options& o, const char* t) {
                   long v;
                   if (!parse_long(t, &v)) return false;
                   o.threads_per_rank = static_cast<int>(v);
                   return true;
                 }});
    s.push_back({"--rma", "on|off",
                 "zero-copy RMA-window transport for large pool payloads",
                 d.rma ? "on" : "off",
                 [](Options& o, const char* t) {
                   return parse_on_off(t, &o.rma);
                 }});
    s.push_back({"--rma-threshold", "BYTES",
                 "payloads at or above BYTES move through the RMA window",
                 std::to_string(d.rma_threshold),
                 [](Options& o, const char* t) {
                   long v;
                   if (!parse_long(t, &v) || v < 0) return false;
                   o.rma_threshold = static_cast<std::size_t>(v);
                   return true;
                 }});
    s.push_back({"--coalesce-us", "N",
                 "coalesce small pool control messages, flush after N us",
                 std::to_string(d.coalesce_us),
                 [](Options& o, const char* t) {
                   return parse_long(t, &o.coalesce_us);
                 }});
    s.push_back({"--ack-timeout-ms", "N",
                 "retransmit unacked pool transfers after N ms",
                 std::to_string(d.ack_timeout_ms),
                 [](Options& o, const char* t) {
                   return parse_long(t, &o.ack_timeout_ms);
                 }});
    s.push_back({"--heartbeat-timeout-ms", "N",
                 "declare a silent rank dead after N ms without a heartbeat",
                 std::to_string(d.heartbeat_timeout_ms),
                 [](Options& o, const char* t) {
                   return parse_long(t, &o.heartbeat_timeout_ms);
                 }});
    s.push_back({"--watchdog-timeout-s", "N",
                 "hard watchdog bound per pool pass (0 = auto-scale with "
                 "problem size)",
                 std::to_string(d.watchdog_timeout_s),
                 [](Options& o, const char* t) {
                   return parse_long(t, &o.watchdog_timeout_s);
                 }});
    s.push_back({"--budget-wall-ms", "N",
                 "wall budget per pool pass; on exhaustion drain gracefully "
                 "to a resumable partial mesh (0 = unlimited)",
                 std::to_string(d.budget_wall_ms),
                 [](Options& o, const char* t) {
                   return parse_long(t, &o.budget_wall_ms);
                 }});
    s.push_back({"--budget-rss-mb", "N",
                 "peak-RSS budget in MiB; same graceful drain (0 = unlimited)",
                 std::to_string(d.budget_rss_mb),
                 [](Options& o, const char* t) {
                   return parse_long(t, &o.budget_rss_mb);
                 }});
    s.push_back({"--checkpoint", "FILE",
                 "append finalized subdomains to this journal",
                 "none",
                 [](Options& o, const char* t) {
                   o.checkpoint_path = t;
                   return !o.checkpoint_path.empty();
                 }});
    s.push_back({"--resume", "FILE",
                 "resume from a journal: replay completed subdomains, mesh "
                 "only the remainder (appends in place unless --checkpoint)",
                 "none",
                 [](Options& o, const char* t) {
                   o.resume_path = t;
                   return !o.resume_path.empty();
                 }});
    s.push_back({"--merge-spill-dir", "DIR",
                 "out-of-core merge: spill finalized subdomains to journals "
                 "in DIR, merge under the resident budget",
                 "none",
                 [](Options& o, const char* t) {
                   o.merge_spill_dir = t;
                   return !o.merge_spill_dir.empty();
                 }});
    s.push_back({"--merge-resident-mb", "N",
                 "resident-payload budget per spill-merge window in MiB",
                 std::to_string(d.merge_resident_mb),
                 [](Options& o, const char* t) {
                   return parse_long(t, &o.merge_resident_mb);
                 }});
    s.push_back({"--fault-rate", "R",
                 "chaos run: inject message drops at rate R (dup/corrupt/"
                 "delay at R/2); requires --ranks",
                 fmt_double(d.fault_rate),
                 [](Options& o, const char* t) {
                   return parse_double(t, &o.fault_rate);
                 }});
    s.push_back({"--fault-seed", "S",
                 "deterministic seed for fault injection",
                 std::to_string(d.fault_seed),
                 [](Options& o, const char* t) {
                   return parse_u64(t, &o.fault_seed);
                 }});
    s.push_back({"--trace-events", "N",
                 "per-thread trace buffer capacity in events",
                 std::to_string(d.trace_events),
                 [](Options& o, const char* t) {
                   long v;
                   if (!parse_long(t, &v) || v <= 0) return false;
                   o.trace_events = static_cast<std::size_t>(v);
                   return true;
                 }});
    return s;
  }();
  return specs;
}

long scaled_watchdog_seconds(const Options& opts) {
  if (opts.watchdog_timeout_s > 0) return opts.watchdog_timeout_s;
  // Work scales roughly with the boundary-layer point count (surface points
  // x layers); 2500 point-layers per second is far below what even an
  // oversubscribed CI box manages, so the bound only catches real hangs.
  const std::size_t points = opts.airfoil.surface_point_count();
  const long layers = static_cast<long>(opts.max_layers) + 1;
  const long scaled =
      120 + static_cast<long>(points) * layers / 2500;
  return scaled < 120 ? 120 : (scaled > 7200 ? 7200 : scaled);
}

}  // namespace aero
