#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "airfoil/geometry.hpp"
#include "blayer/growth.hpp"
#include "core/phase_hook.hpp"

namespace aero {

/// One problem found by Options::validate(). `field` names the offending
/// knob exactly as its fluent setter / CLI flag spells it, so a caller can
/// point the user at the right option without string-matching the message.
struct OptionIssue {
  enum class Severity { kError, kWarning };
  Severity severity = Severity::kError;
  std::string field;    ///< setter name, e.g. "growth_ratio"
  std::string message;  ///< human-readable explanation

  bool is_error() const { return severity == Severity::kError; }
};

/// Render a list of issues as one multi-line string (for error messages).
std::string format_issues(const std::vector<OptionIssue>& issues);

/// The unified public configuration of the mesher: one value type covering
/// everything the internal stage structs (`BoundaryLayerOptions`,
/// `DecomposeOptions`, `PoolTuning`, `obs::TraceConfig`, `FaultConfig`)
/// split across their own headers.
/// Defaults below are the library defaults; the CLI and the benches render
/// their `--help`/flag tables from option_specs(), so the documented
/// defaults can never drift from these initializers.
///
/// Usage (fluent builder — every setter returns *this):
///
///   auto result = generate_mesh(Options()
///                                   .geometry(make_naca0012(300))
///                                   .first_height(2e-4)
///                                   .max_layers(40));
///
/// `validate()` reports typed errors; the generate_mesh / parallel
/// entry points call it and throw std::invalid_argument on any kError.
struct Options {
  // -- Geometry -----------------------------------------------------------
  /// Input surfaces (closed CCW loops). Required: validate() rejects an
  /// empty element list.
  AirfoilConfig airfoil;

  // -- Boundary layer -----------------------------------------------------
  /// Normal-spacing growth law (geometric/polynomial/adaptive).
  GrowthKind growth_kind = GrowthKind::kGeometric;
  /// First boundary-layer cell height h0, in chord units. The push-button
  /// default (2e-4, 40 layers) matches the aeromesh CLI's historical tuning
  /// for unit-chord sections.
  double first_height = 2e-4;
  /// Growth ratio r (geometric/adaptive) or exponent p (polynomial).
  double growth_ratio = 1.2;
  /// Cap on the number of anisotropic layers per ray.
  int max_layers = 40;

  // -- Inviscid region ----------------------------------------------------
  /// Far-field half-extent in chord lengths (paper: 30-50).
  double farfield_chords = 30.0;
  /// Near-body box margin beyond the boundary-layer cloud, in chords.
  double nearbody_margin = 0.12;
  /// Inviscid edge-length growth per unit distance from the near-body box.
  double grade = 0.25;
  /// Inviscid sizing at the near-body box, as a multiple of the mean
  /// boundary-layer outer-border spacing.
  double surface_length_factor = 1.5;

  // -- Decomposition ------------------------------------------------------
  /// Boundary-layer decomposition: stop splitting below this many points.
  std::size_t bl_min_points = 2048;
  /// Boundary-layer decomposition: recursion depth cap.
  int bl_max_level = 12;
  /// Inviscid decoupling: target triangles per subdomain.
  double inviscid_target_triangles = 40000.0;
  /// Inviscid decoupling: recursion depth cap.
  int inviscid_max_level = 10;

  // -- Parallel runtime ---------------------------------------------------
  /// Rank count of the in-process pool; 0 = run the sequential pipeline.
  int ranks = 0;
  /// Intra-rank threads for each subdomain refinement (1 = sequential
  /// kernel). Performance-only: the mesh is bit-identical at every value
  /// (see RefineOptions::threads), so — like the transport knobs below —
  /// this never participates in mesh-defining hashes or cache keys.
  int threads_per_rank = 1;
  /// Zero-copy RMA-window transport for large pool payloads (off = the
  /// full-copy frame path, kept for differential testing).
  bool rma = true;
  /// Payloads at or above this many bytes move through the RMA window.
  std::size_t rma_threshold = 1024;
  /// Coalesce small pool control messages, flushing lanes after this many
  /// microseconds (0 = coalescing off).
  long coalesce_us = 0;
  /// Unacknowledged pool work transfers are retransmitted after this long.
  long ack_timeout_ms = 25;
  /// A rank whose heartbeat stalls this long is declared dead and its
  /// queued work reclaimed.
  long heartbeat_timeout_ms = 500;
  /// Hard watchdog bound on a pool pass, in seconds. 0 = auto: scaled with
  /// the problem size (see scaled_watchdog_seconds), never below 120 s.
  long watchdog_timeout_s = 0;

  // -- Run-level resilience -----------------------------------------------
  /// Wall-clock budget per pool pass, in milliseconds (0 = unlimited). On
  /// exhaustion the run drains gracefully: in-flight subdomains finish, the
  /// partial mesh and checkpoint journal are written, and the run reports
  /// RunStatus::kStopped with a completeness summary.
  long budget_wall_ms = 0;
  /// Peak-RSS budget for the process, in MiB (0 = unlimited). Same graceful
  /// drain as the wall budget when exceeded.
  long budget_rss_mb = 0;
  /// Append finalized subdomains to this checkpoint journal ("" = off).
  std::string checkpoint_path;
  /// Resume from this journal: completed subdomains are replayed instead of
  /// re-meshed; the merged result is bit-identical to an uninterrupted run.
  /// When checkpoint_path is empty the journal is also appended in place, so
  /// an interrupted resume is itself resumable.
  std::string resume_path;
  /// Out-of-core finalization: when non-empty, each pool pass spills
  /// finalized subdomains to a CRC-framed journal in this directory instead
  /// of holding their triangle soup resident, then merges window-by-window
  /// under the resident budget below. The merged mesh is bit-identical to
  /// the in-RAM path at every rank/thread count ("" = merge in RAM).
  std::string merge_spill_dir;
  /// Resident-payload budget for the spill merge, in MiB. Each merge window
  /// loads at most this many payload bytes (always at least one record).
  long merge_resident_mb = 256;
  /// External stop request (programmatic, not CLI-settable): when the
  /// pointee flips true mid-run the pool drains exactly like an exhausted
  /// budget. The aeromesh CLI points this at its SIGINT flag.
  const std::atomic<bool>* stop_flag = nullptr;

  // -- Fault injection (chaos testing; the tolerance machinery is always
  //    on, these only control the injector) -------------------------------
  /// P(message dropped); duplication/corruption/delay are injected at half
  /// this rate, mirroring the CLI's historical --fault-rate behavior.
  double fault_rate = 0.0;
  /// Deterministic seed for the fault injector.
  std::uint64_t fault_seed = 0;

  // -- Observability ------------------------------------------------------
  /// Record an execution trace (observation-only; a traced run produces a
  /// mesh bit-identical to an untraced one).
  bool trace = false;
  /// Per-thread trace buffer capacity in events (overflow drops, never
  /// grows).
  std::size_t trace_events = std::size_t{1} << 16;

  /// Optional phase-boundary observer (not CLI-settable; see PhaseHook).
  PhaseHook phase_hook;

  // -- Fluent setters (each returns *this for chaining) -------------------
  Options& geometry(AirfoilConfig g) { airfoil = std::move(g); return *this; }
  Options& growth(GrowthKind k) { growth_kind = k; return *this; }
  Options& set_first_height(double h) { first_height = h; return *this; }
  Options& set_growth_ratio(double r) { growth_ratio = r; return *this; }
  Options& set_max_layers(int n) { max_layers = n; return *this; }
  Options& set_farfield_chords(double c) { farfield_chords = c; return *this; }
  Options& set_nearbody_margin(double m) { nearbody_margin = m; return *this; }
  Options& set_grade(double g) { grade = g; return *this; }
  Options& set_surface_length_factor(double f) {
    surface_length_factor = f;
    return *this;
  }
  Options& set_bl_min_points(std::size_t n) { bl_min_points = n; return *this; }
  Options& set_bl_max_level(int n) { bl_max_level = n; return *this; }
  Options& set_inviscid_target_triangles(double t) {
    inviscid_target_triangles = t;
    return *this;
  }
  Options& set_inviscid_max_level(int n) {
    inviscid_max_level = n;
    return *this;
  }
  Options& set_ranks(int n) { ranks = n; return *this; }
  Options& set_threads_per_rank(int n) { threads_per_rank = n; return *this; }
  Options& set_rma(bool on) { rma = on; return *this; }
  Options& set_rma_threshold(std::size_t bytes) {
    rma_threshold = bytes;
    return *this;
  }
  Options& set_coalesce_us(long us) { coalesce_us = us; return *this; }
  Options& set_ack_timeout_ms(long ms) { ack_timeout_ms = ms; return *this; }
  Options& set_heartbeat_timeout_ms(long ms) {
    heartbeat_timeout_ms = ms;
    return *this;
  }
  Options& set_watchdog_timeout_s(long s) {
    watchdog_timeout_s = s;
    return *this;
  }
  Options& set_budget_wall_ms(long ms) { budget_wall_ms = ms; return *this; }
  Options& set_budget_rss_mb(long mb) { budget_rss_mb = mb; return *this; }
  Options& set_checkpoint_path(std::string p) {
    checkpoint_path = std::move(p);
    return *this;
  }
  Options& set_resume_path(std::string p) {
    resume_path = std::move(p);
    return *this;
  }
  Options& set_merge_spill_dir(std::string d) {
    merge_spill_dir = std::move(d);
    return *this;
  }
  Options& set_merge_resident_mb(long mb) {
    merge_resident_mb = mb;
    return *this;
  }
  Options& set_stop_flag(const std::atomic<bool>* f) {
    stop_flag = f;
    return *this;
  }
  Options& set_fault_rate(double r) { fault_rate = r; return *this; }
  Options& set_fault_seed(std::uint64_t s) { fault_seed = s; return *this; }
  Options& set_trace(bool on) { trace = on; return *this; }
  Options& set_trace_events(std::size_t n) { trace_events = n; return *this; }
  Options& set_phase_hook(PhaseHook h) {
    phase_hook = std::move(h);
    return *this;
  }

  /// Check every knob; returns all problems found (empty = valid). Errors
  /// make the run entry points throw; warnings are advisory (the CLI prints
  /// them to stderr and continues).
  [[nodiscard]] std::vector<OptionIssue> validate() const;
};

/// Metadata row describing one CLI-settable Options knob. The CLI's parser
/// and --help text, and any bench that wants library flags, iterate this
/// table instead of hand-rolling flags, so they cannot drift from the
/// defaults documented on Options.
struct OptionSpec {
  const char* flag;        ///< e.g. "--first-height"
  const char* value_name;  ///< metavar for help, e.g. "H"
  const char* help;        ///< one-line description
  std::string default_str; ///< default rendered from a default Options
  /// Parse `text` into `opts`; false on malformed input.
  bool (*apply)(Options& opts, const char* text);
};

/// The full table of CLI-settable knobs (everything except geometry,
/// phase_hook, and stop_flag, which are programmatic). Built once, in
/// declaration order.
const std::vector<OptionSpec>& option_specs();

/// Effective watchdog bound: watchdog_timeout_s when set, otherwise scaled
/// with the problem size (surface points x layers) so big cases on slow or
/// oversubscribed machines are not killed by a fixed 120 s default. Always
/// at least 120 s, capped at 2 hours.
long scaled_watchdog_seconds(const Options& opts);

}  // namespace aero
