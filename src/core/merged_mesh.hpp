#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "delaunay/chunked.hpp"
#include "delaunay/mesh.hpp"
#include "geom/vec2.hpp"

namespace aero {

/// Thrown when a merged mesh outgrows 32-bit index capacity. The pipeline
/// drivers catch it and report RunStatus::kMeshTooLarge instead of silently
/// truncating vertex ids.
struct MeshTooLargeError : std::length_error {
  using std::length_error::length_error;
};

/// Global mesh assembled from independently generated pieces (boundary-layer
/// subdomain triangulations and inviscid subdomain refinements). Vertices
/// are welded by exact coordinate identity -- the whole pipeline guarantees
/// shared border points are bit-identical on both sides, which is what makes
/// the distributed pieces conform without any stitching pass.
///
/// Storage is structure-of-arrays over chunked grow-only arenas: point
/// coordinates, triangle connectivity, and the dead flags each live in their
/// own ChunkedArray, and the coordinate interner is a flat open-addressing
/// table of 32-bit ids (no per-node heap allocations). Growing never
/// relocates elements, so peak RSS tracks the live mesh instead of the
/// transient doubling of vector reallocation. Read access goes through the
/// index-based accessors below or the aero::MeshView facade; the arenas
/// themselves are private.
class MergedMesh {
 public:
  /// Intern a point, returning its global index.
  /// Throws MeshTooLargeError past 32-bit index capacity.
  std::uint32_t add_point(Vec2 p);

  /// Append one triangle by coordinates (CCW).
  void add_triangle(Vec2 a, Vec2 b, Vec2 c);

  /// Append every live inside triangle of a piece.
  void append(const DelaunayMesh& mesh);

  /// Remove the triangles enclosed by `barrier` edges around each `seed`
  /// (flood fill from the seed's containing triangle, stopping at barrier
  /// edges). Used to cut the airfoil interiors out of the boundary-layer
  /// triangulation.
  void carve(const std::vector<std::pair<Vec2, Vec2>>& barrier,
             const std::vector<Vec2>& seeds);

  /// Complement of carve: keep only the triangles reachable from the seeds
  /// without crossing a barrier edge. Used to restrict the boundary-layer
  /// triangulation to the ring between the surface and the outer border
  /// (the junk triangles a Delaunay triangulation puts in coves, gaps, and
  /// hole interiors are dropped; the inviscid near-body refinement meshes
  /// those regions isotropically instead).
  void keep_only(const std::vector<std::pair<Vec2, Vec2>>& barrier,
                 const std::vector<Vec2>& seeds);

  /// Live triangles (records minus carved ones).
  std::size_t triangle_count() const { return tris_.size() - dead_count_; }
  /// Interned points, in insertion order. Ids are dense in [0, point_count).
  std::size_t point_count() const { return points_.size(); }
  /// All triangle records including carved ones; check alive().
  std::size_t record_count() const { return tris_.size(); }
  const std::array<std::uint32_t, 3>& tri(std::size_t t) const {
    return tris_[t];
  }
  bool alive(std::size_t t) const { return !dead_[t]; }
  Vec2 point(std::uint32_t i) const { return points_[i]; }

  /// Interner lookup: the id of an exact-coordinate match, or kNoPoint.
  static constexpr std::uint32_t kNoPoint = 0xffffffffu;
  std::uint32_t find_point(Vec2 p) const;

  /// Remove a single triangle by record index.
  void kill(std::size_t t) {
    if (!dead_[t]) {
      dead_[t] = 1;
      ++dead_count_;
    }
  }

  /// Visit each live triangle's vertex coordinates.
  template <typename Fn>
  void for_each_triangle(Fn&& fn) const {
    for (std::size_t t = 0; t < tris_.size(); ++t) {
      if (dead_[t]) continue;
      fn(points_[tris_[t][0]], points_[tris_[t][1]], points_[tris_[t][2]]);
    }
  }

  /// Edges incident to exactly one live triangle, excluding any listed in
  /// `exclude` (coordinate pairs, unordered). These are the mesh boundary
  /// edges; after the ring restriction they are the exact interface the
  /// near-body inviscid subdomain must conform to.
  std::vector<std::pair<Vec2, Vec2>> boundary_edges(
      const std::vector<std::pair<Vec2, Vec2>>& exclude) const;

  /// Subset of `candidates` that are NOT edges of any live triangle (either
  /// endpoint missing or edge count zero).
  std::vector<std::pair<Vec2, Vec2>> missing_edges(
      const std::vector<std::pair<Vec2, Vec2>>& candidates) const;

  /// Conformity audit of the assembled mesh.
  struct Conformity {
    bool manifold = true;          ///< no edge with more than two triangles
    std::size_t interior_edges = 0;
    std::size_t boundary_edges = 0;
    std::size_t nonmanifold_edges = 0;
    bool orientation_ok = true;    ///< all triangles CCW with positive area
  };
  Conformity check_conformity() const;

  /// Test-only: lower the 32-bit capacity ceiling so the kMeshTooLarge path
  /// is reachable without interning four billion points.
  void set_capacity_limit_for_test(std::uint64_t limit) {
    capacity_limit_ = limit;
  }

 private:
  friend class MeshView;  ///< chunk-level access for zero-copy serialization

  using EdgeKey = std::pair<std::uint32_t, std::uint32_t>;
  struct EdgeKeyHash {
    std::size_t operator()(const EdgeKey& e) const {
      return (static_cast<std::size_t>(e.first) << 32) ^ e.second;
    }
  };
  static EdgeKey edge_key(std::uint32_t a, std::uint32_t b) {
    return a < b ? EdgeKey{a, b} : EdgeKey{b, a};
  }

  /// Flood fill from seed-containing triangles across non-barrier edges;
  /// returns a reached flag per triangle record.
  std::vector<std::uint8_t> flood_from(
      const std::vector<std::pair<Vec2, Vec2>>& barrier,
      const std::vector<Vec2>& seeds) const;

  /// Interner slot for p: either the occupied slot holding p's id+1 or the
  /// empty slot where p would go. Requires a non-empty table.
  std::size_t probe(Vec2 p) const;
  void rehash(std::size_t new_cap);

  ChunkedArray<Vec2> points_;
  ChunkedArray<std::array<std::uint32_t, 3>> tris_;
  ChunkedArray<std::uint8_t> dead_;
  std::size_t dead_count_ = 0;

  // Flat open-addressing interner: each slot holds id+1 (0 = empty).
  // Power-of-two capacity, linear probing, rehash at 1/2 load. Ids are
  // assigned in insertion order, so the table layout never affects mesh
  // identity -- only lookup cost.
  std::vector<std::uint32_t> slots_;
  std::uint64_t capacity_limit_ = 0xffffffffull;
};

/// Quality statistics of a merged mesh (same fields as delaunay/stats).
struct MergedStats {
  std::size_t triangles = 0;
  std::size_t vertices = 0;
  double min_angle_deg = 180.0;
  double max_angle_deg = 0.0;
  double max_aspect_ratio = 0.0;
  double total_area = 0.0;
};
MergedStats compute_stats(const MergedMesh& mesh);

}  // namespace aero
