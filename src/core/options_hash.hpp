#pragma once

#include <cstddef>
#include <cstdint>

#include "core/options.hpp"

namespace aero {

/// Seed/prime of the 64-bit FNV-1a hash shared by the checkpoint keys and
/// the service result cache. FNV-1a is deliberately boring: byte-serial,
/// endian-stable within one ABI, and with no process-local state (unlike
/// std::hash), so a key computed today equals the same key computed by a
/// fresh process tomorrow -- which is what lets a journal written by a dead
/// run be trusted by its successor, and a cache key be compared across
/// daemon restarts.
inline constexpr std::uint64_t kFnv1aOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// FNV-1a over a byte range, chainable through `seed` like core/crc32.
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n,
                    std::uint64_t seed = kFnv1aOffset);

/// Canonical hash over the mesh-defining options and the input geometry:
/// everything that changes the triangles, nothing that doesn't. Runtime
/// knobs (ranks, transport, faults, tracing, budgets, paths, hooks) are
/// excluded on purpose -- the pool produces rank-count-independent meshes,
/// so a journal written by an 8-rank run legitimately resumes a 2-rank run,
/// and a cached mesh produced sequentially legitimately answers a 4-rank
/// request. This is THE one list of mesh-defining fields: the checkpoint
/// journal header and the service result cache both key off it, so a new
/// Options knob that changes the triangles must be added here (and only
/// here) to invalidate both.
///
/// The hash covers option *values*, not serialization layout: format
/// changes to the stored bytes are versioned separately by the "AMSH" mesh
/// blob tag (core/mesh_view.hpp) and the "ASUP" checkpoint soup tag
/// (runtime/checkpoint.hpp), so a layout bump rejects stale bytes with a
/// typed status even when the config hash still matches.
std::uint64_t mesh_config_hash(const Options& opts);

}  // namespace aero
