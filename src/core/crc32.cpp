#include "core/crc32.hpp"

#include <array>
#include <cstring>

namespace aero {

namespace {

/// Slice-by-8 CRC-32 tables: table[0] is the classic byte-at-a-time table;
/// table[k][b] extends a byte processed k positions earlier, so eight bytes
/// fold into the running CRC with eight independent lookups per iteration
/// instead of a serial chain. Byte-at-a-time runs ~0.35 GB/s here; the
/// result gather alone moves hundreds of KB per run, and the framing must
/// stay under the 2% overhead budget.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t t = 1; t < 8; ++t) {
      c = tables[0][c & 0xffu] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                    std::uint32_t seed) {
  static constexpr std::array<std::array<std::uint32_t, 256>, 8> kTables =
      make_crc_tables();
  std::uint32_t c = seed ^ 0xffffffffu;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, data + i, 4);
    std::memcpy(&hi, data + i + 4, 4);
    lo ^= c;
    c = kTables[7][lo & 0xffu] ^ kTables[6][(lo >> 8) & 0xffu] ^
        kTables[5][(lo >> 16) & 0xffu] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xffu] ^ kTables[2][(hi >> 8) & 0xffu] ^
        kTables[1][(hi >> 16) & 0xffu] ^ kTables[0][hi >> 24];
  }
  for (; i < n; ++i) {
    c = kTables[0][(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace aero
