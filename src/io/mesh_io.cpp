#include "io/mesh_io.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace aero {

namespace {

std::ofstream open_out(const std::string& path, bool binary = false) {
  std::ofstream f(path, binary ? std::ios::binary : std::ios::out);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  return f;
}

}  // namespace

void write_vtk(const MergedMesh& mesh, const std::string& path,
               const std::vector<double>* point_scalars,
               const std::string& scalar_name) {
  std::ofstream f = open_out(path);
  f << "# vtk DataFile Version 3.0\naeromesh\nASCII\n"
    << "DATASET UNSTRUCTURED_GRID\n";
  const auto& pts = mesh.points();
  f << "POINTS " << pts.size() << " double\n";
  for (const Vec2 p : pts) f << p.x << ' ' << p.y << " 0\n";

  const std::size_t nt = mesh.triangle_count();
  f << "CELLS " << nt << ' ' << nt * 4 << '\n';
  const auto& tris = mesh.triangles();
  for (std::size_t t = 0; t < tris.size(); ++t) {
    if (!mesh.alive(t)) continue;
    f << "3 " << tris[t][0] << ' ' << tris[t][1] << ' ' << tris[t][2] << '\n';
  }
  f << "CELL_TYPES " << nt << '\n';
  for (std::size_t t = 0; t < nt; ++t) f << "5\n";

  if (point_scalars) {
    if (point_scalars->size() != pts.size()) {
      throw std::invalid_argument("scalar field size mismatch");
    }
    f << "POINT_DATA " << pts.size() << "\nSCALARS " << scalar_name
      << " double 1\nLOOKUP_TABLE default\n";
    for (const double v : *point_scalars) f << v << '\n';
  }
}

void write_node_ele(const MergedMesh& mesh, const std::string& basename) {
  {
    std::ofstream f = open_out(basename + ".node");
    const auto& pts = mesh.points();
    f << pts.size() << " 2 0 0\n";
    for (std::size_t i = 0; i < pts.size(); ++i) {
      f << i << ' ' << pts[i].x << ' ' << pts[i].y << '\n';
    }
  }
  {
    std::ofstream f = open_out(basename + ".ele");
    f << mesh.triangle_count() << " 3 0\n";
    const auto& tris = mesh.triangles();
    std::size_t id = 0;
    for (std::size_t t = 0; t < tris.size(); ++t) {
      if (!mesh.alive(t)) continue;
      f << id++ << ' ' << tris[t][0] << ' ' << tris[t][1] << ' '
        << tris[t][2] << '\n';
    }
  }
}

void write_binary(const MergedMesh& mesh, const std::string& path) {
  std::ofstream f = open_out(path, /*binary=*/true);
  const auto& pts = mesh.points();
  const std::uint64_t np = pts.size();
  const std::uint64_t nt = mesh.triangle_count();
  f.write(reinterpret_cast<const char*>(&np), sizeof np);
  f.write(reinterpret_cast<const char*>(&nt), sizeof nt);
  for (const Vec2 p : pts) {
    f.write(reinterpret_cast<const char*>(&p.x), sizeof p.x);
    f.write(reinterpret_cast<const char*>(&p.y), sizeof p.y);
  }
  const auto& tris = mesh.triangles();
  for (std::size_t t = 0; t < tris.size(); ++t) {
    if (!mesh.alive(t)) continue;
    f.write(reinterpret_cast<const char*>(tris[t].data()),
            sizeof(std::uint32_t) * 3);
  }
}

void write_poly(const Pslg& pslg, const std::string& path) {
  std::ofstream f = open_out(path);
  f << pslg.points.size() << " 2 0 "
    << (pslg.point_markers.empty() ? 0 : 1) << '\n';
  for (std::size_t i = 0; i < pslg.points.size(); ++i) {
    f << i << ' ' << pslg.points[i].x << ' ' << pslg.points[i].y;
    if (!pslg.point_markers.empty()) f << ' ' << pslg.point_markers[i];
    f << '\n';
  }
  f << pslg.segments.size() << " 0\n";
  for (std::size_t i = 0; i < pslg.segments.size(); ++i) {
    f << i << ' ' << pslg.segments[i].first << ' ' << pslg.segments[i].second
      << '\n';
  }
  f << pslg.holes.size() << '\n';
  for (std::size_t i = 0; i < pslg.holes.size(); ++i) {
    f << i << ' ' << pslg.holes[i].x << ' ' << pslg.holes[i].y << '\n';
  }
}

Pslg read_poly(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  Pslg pslg;
  std::size_t np, dim, nattr, nmark;
  f >> np >> dim >> nattr >> nmark;
  if (!f || dim != 2) throw std::runtime_error("bad .poly header: " + path);
  pslg.points.resize(np);
  if (nmark) pslg.point_markers.resize(np);
  for (std::size_t i = 0; i < np; ++i) {
    std::size_t id;
    f >> id >> pslg.points[i].x >> pslg.points[i].y;
    for (std::size_t a = 0; a < nattr; ++a) {
      double skip;
      f >> skip;
    }
    if (nmark) f >> pslg.point_markers[i];
  }
  std::size_t ns, smark;
  f >> ns >> smark;
  pslg.segments.resize(ns);
  for (std::size_t i = 0; i < ns; ++i) {
    std::size_t id;
    f >> id >> pslg.segments[i].first >> pslg.segments[i].second;
    for (std::size_t a = 0; a < smark; ++a) {
      int skip;
      f >> skip;
    }
  }
  std::size_t nh;
  f >> nh;
  pslg.holes.resize(nh);
  for (std::size_t i = 0; i < nh; ++i) {
    std::size_t id;
    f >> id >> pslg.holes[i].x >> pslg.holes[i].y;
  }
  if (!f) throw std::runtime_error("truncated .poly file: " + path);
  return pslg;
}

}  // namespace aero
