#include "io/mesh_io.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "core/mesh_view.hpp"

namespace aero {

namespace {

std::ofstream open_out(const std::string& path, bool binary = false) {
  std::ofstream f(path, binary ? std::ios::binary : std::ios::out);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  return f;
}

}  // namespace

void write_vtk(const MergedMesh& mesh, const std::string& path,
               const std::vector<double>* point_scalars,
               const std::string& scalar_name) {
  std::ofstream f = open_out(path);
  f << "# vtk DataFile Version 3.0\naeromesh\nASCII\n"
    << "DATASET UNSTRUCTURED_GRID\n";
  const MeshView view(mesh);
  const std::size_t np = view.point_count();
  f << "POINTS " << np << " double\n";
  for (std::uint32_t i = 0; i < np; ++i) {
    const Vec2 p = view.point(i);
    f << p.x << ' ' << p.y << " 0\n";
  }

  const std::size_t nt = view.triangle_count();
  f << "CELLS " << nt << ' ' << nt * 4 << '\n';
  view.for_each_tri_ids([&](const std::array<std::uint32_t, 3>& tri) {
    f << "3 " << tri[0] << ' ' << tri[1] << ' ' << tri[2] << '\n';
  });
  f << "CELL_TYPES " << nt << '\n';
  for (std::size_t t = 0; t < nt; ++t) f << "5\n";

  if (point_scalars) {
    if (point_scalars->size() != np) {
      throw std::invalid_argument("scalar field size mismatch");
    }
    f << "POINT_DATA " << np << "\nSCALARS " << scalar_name
      << " double 1\nLOOKUP_TABLE default\n";
    for (const double v : *point_scalars) f << v << '\n';
  }
}

void write_node_ele(const MergedMesh& mesh, const std::string& basename) {
  const MeshView view(mesh);
  {
    std::ofstream f = open_out(basename + ".node");
    f << view.point_count() << " 2 0 0\n";
    for (std::uint32_t i = 0; i < view.point_count(); ++i) {
      const Vec2 p = view.point(i);
      f << i << ' ' << p.x << ' ' << p.y << '\n';
    }
  }
  {
    std::ofstream f = open_out(basename + ".ele");
    f << view.triangle_count() << " 3 0\n";
    std::size_t id = 0;
    view.for_each_tri_ids([&](const std::array<std::uint32_t, 3>& tri) {
      f << id++ << ' ' << tri[0] << ' ' << tri[1] << ' ' << tri[2] << '\n';
    });
  }
}

void write_binary(const MergedMesh& mesh, const std::string& path) {
  // The on-disk .bin layout is the MeshView blob minus its tag+version
  // header: [np u64 | nt u64 | points | tris]. It predates the versioned
  // blob and external tooling reads it, so the bytes stay as they are.
  std::ofstream f = open_out(path, /*binary=*/true);
  const std::vector<std::uint8_t> blob = MeshView(mesh).serialize();
  f.write(reinterpret_cast<const char*>(blob.data() + 8),
          static_cast<std::streamsize>(blob.size() - 8));
}

void write_poly(const Pslg& pslg, const std::string& path) {
  std::ofstream f = open_out(path);
  f << pslg.points.size() << " 2 0 "
    << (pslg.point_markers.empty() ? 0 : 1) << '\n';
  for (std::size_t i = 0; i < pslg.points.size(); ++i) {
    f << i << ' ' << pslg.points[i].x << ' ' << pslg.points[i].y;
    if (!pslg.point_markers.empty()) f << ' ' << pslg.point_markers[i];
    f << '\n';
  }
  f << pslg.segments.size() << " 0\n";
  for (std::size_t i = 0; i < pslg.segments.size(); ++i) {
    f << i << ' ' << pslg.segments[i].first << ' ' << pslg.segments[i].second
      << '\n';
  }
  f << pslg.holes.size() << '\n';
  for (std::size_t i = 0; i < pslg.holes.size(); ++i) {
    f << i << ' ' << pslg.holes[i].x << ' ' << pslg.holes[i].y << '\n';
  }
}

Pslg read_poly(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  Pslg pslg;
  std::size_t np, dim, nattr, nmark;
  f >> np >> dim >> nattr >> nmark;
  if (!f || dim != 2) throw std::runtime_error("bad .poly header: " + path);
  pslg.points.resize(np);
  if (nmark) pslg.point_markers.resize(np);
  for (std::size_t i = 0; i < np; ++i) {
    std::size_t id;
    f >> id >> pslg.points[i].x >> pslg.points[i].y;
    for (std::size_t a = 0; a < nattr; ++a) {
      double skip;
      f >> skip;
    }
    if (nmark) f >> pslg.point_markers[i];
  }
  std::size_t ns, smark;
  f >> ns >> smark;
  pslg.segments.resize(ns);
  for (std::size_t i = 0; i < ns; ++i) {
    std::size_t id;
    f >> id >> pslg.segments[i].first >> pslg.segments[i].second;
    for (std::size_t a = 0; a < smark; ++a) {
      int skip;
      f >> skip;
    }
  }
  std::size_t nh;
  f >> nh;
  pslg.holes.resize(nh);
  for (std::size_t i = 0; i < nh; ++i) {
    std::size_t id;
    f >> id >> pslg.holes[i].x >> pslg.holes[i].y;
  }
  if (!f) throw std::runtime_error("truncated .poly file: " + path);
  return pslg;
}

}  // namespace aero
