#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/annotations.hpp"

namespace aero {

/// Append-only checkpoint journal: the on-disk record of every finalized
/// subdomain of a parallel run, written as the run progresses so a crash,
/// budget stop, or signal at minute 59 loses at most the in-flight units.
///
/// File layout (all integers little-endian, matching the wire serializers):
///
///   header   "AEROJNL1" magic (8) | version u32 | config_hash u64
///            | crc32 u32 over the preceding 20 bytes
///   record*  payload_len u32 | key u64 | payload bytes | crc32 u32 over
///            key+payload
///
/// `config_hash` is the canonical options+geometry hash of the run that
/// wrote the journal; a resume against different options is rejected whole.
/// `key` is the deterministic subdomain content key (runtime/checkpoint),
/// `payload` an opaque serialized block -- since journal version 2 every
/// checkpoint payload carries its own "ASUP" tag + version prefix (see
/// runtime/checkpoint.hpp), so a payload-format change is rejected per
/// record with a typed status instead of silently mis-decoding. Each record
/// is framed independently so a torn tail -- the normal outcome of a crash
/// mid-write -- invalidates only the bytes after the last intact record,
/// never the journal: the loader stops at the first truncated or corrupt
/// record and reports the discarded byte count.

inline constexpr std::uint32_t kJournalVersion = 2;

/// Hard sanity bound on a single record's payload: a corrupt length field
/// must not become a multi-gigabyte allocation.
inline constexpr std::uint32_t kJournalMaxPayload = 1u << 30;

struct JournalRecord {
  std::uint64_t key = 0;
  std::vector<std::uint8_t> payload;
};

/// Result of scanning a journal file. `records` holds the intact prefix;
/// nothing here is ever fatal -- a missing file, a corrupt header, or a
/// mismatched hash all degrade to "resume nothing, re-mesh everything".
struct JournalContents {
  bool header_ok = false;      ///< file exists and the header is intact
  bool hash_mismatch = false;  ///< header intact but written for another run
  std::uint32_t version = 0;
  std::uint64_t config_hash = 0;
  std::vector<JournalRecord> records;
  std::size_t discarded_bytes = 0;  ///< truncated/corrupt tail dropped
};

/// Scan `path`, validating the header and then each record's CRC frame.
/// Records are returned only when the header is intact, the version is
/// current, and the stored config hash equals `expected_config_hash`
/// (otherwise `hash_mismatch` is set and `records` stays empty).
JournalContents read_journal(const std::string& path,
                             std::uint64_t expected_config_hash);

/// One record's location in a journal file: everything the out-of-core
/// merge needs to schedule a seek-read later, without the payload bytes.
struct JournalFrame {
  std::uint64_t key = 0;
  std::uint64_t payload_offset = 0;  ///< file offset of the payload bytes
  std::uint32_t payload_len = 0;
};

/// read_journal's bounded-memory sibling: same header and per-record CRC
/// validation, but payloads are streamed through a small scratch buffer for
/// the CRC check and only their offsets are kept. Peak resident memory is
/// O(1) regardless of journal size -- this is what lets the out-of-core
/// merge index a spill file bigger than the resident budget.
struct JournalIndex {
  bool header_ok = false;
  bool hash_mismatch = false;
  std::uint32_t version = 0;
  std::uint64_t config_hash = 0;
  std::vector<JournalFrame> frames;
  std::size_t discarded_bytes = 0;
};
JournalIndex scan_journal_index(const std::string& path,
                                std::uint64_t expected_config_hash);

/// Random-access payload reader over an indexed journal: seeks to a frame
/// and re-verifies its CRC trailer on every read, so a file torn or
/// rewritten between scan and read is caught, never mis-decoded.
class JournalReader {
 public:
  JournalReader() = default;
  ~JournalReader() { close(); }
  JournalReader(const JournalReader&) = delete;
  JournalReader& operator=(const JournalReader&) = delete;

  [[nodiscard]] bool open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }
  void close();

  /// Load one frame's payload into `out` (resized to payload_len). False on
  /// seek/read failure or CRC mismatch; `out` is unusable then.
  [[nodiscard]] bool read(const JournalFrame& frame,
                          std::vector<std::uint8_t>& out);

 private:
  std::FILE* file_ = nullptr;
};

/// Thread-safe append-only writer. Every write and flush return value is
/// checked: the first failure (disk full, torn mount) latches the writer
/// into a failed state so callers see `false` instead of silently losing
/// checkpoints, and the run carries on unjournaled -- checkpointing is an
/// optimization, never a correctness dependency.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Open for a fresh run (truncate + write header) or, with `append`,
  /// extend an existing journal whose header the caller already validated
  /// via read_journal. Returns false (and stays closed) on any I/O error.
  [[nodiscard]] bool open(const std::string& path, std::uint64_t config_hash,
                          bool append);
  bool is_open() const;

  /// Append one framed record and flush it to the OS so the bytes survive
  /// this process dying. Returns false on any write error.
  [[nodiscard]] bool append(std::uint64_t key, const std::uint8_t* payload,
                            std::size_t n) {
    return append(key, nullptr, 0, payload, n);
  }

  /// Two-span append: `prefix` (a small framing header) then `payload`,
  /// CRC-chained as one logical record. Lets a caller prepend a payload tag
  /// without copying the payload into a contiguous buffer first.
  [[nodiscard]] bool append(std::uint64_t key, const std::uint8_t* prefix,
                            std::size_t prefix_n, const std::uint8_t* payload,
                            std::size_t n);

  [[nodiscard]] bool flush();
  void close();

  std::size_t bytes_written() const;
  std::size_t write_failures() const;

 private:
  // may_block: this lock exists to serialize the fwrite/fflush below it;
  // holding it across those calls is its whole job.
  mutable Mutex m_ AERO_LOCK_NAME("io.journal", 90, may_block);
  std::FILE* file_ AERO_GUARDED_BY(m_) = nullptr;
  bool failed_ AERO_GUARDED_BY(m_) = false;
  std::size_t bytes_ AERO_GUARDED_BY(m_) = 0;
  std::size_t failures_ AERO_GUARDED_BY(m_) = 0;
};

}  // namespace aero
