#pragma once

#include <string>

#include "core/merged_mesh.hpp"
#include "delaunay/pslg.hpp"

namespace aero {

/// Write a merged mesh as legacy ASCII VTK (viewable in ParaView), with an
/// optional per-point scalar field.
void write_vtk(const MergedMesh& mesh, const std::string& path,
               const std::vector<double>* point_scalars = nullptr,
               const std::string& scalar_name = "field");

/// Write Triangle-compatible .node / .ele ASCII files (the paper's output
/// format; its sequential write of a 172M-triangle mesh took 9 minutes).
void write_node_ele(const MergedMesh& mesh, const std::string& basename);

/// Binary dump (the paper's suggested faster alternative): a flat
/// little-endian [n_points, n_tris, points..., tris...] layout.
void write_binary(const MergedMesh& mesh, const std::string& path);

/// Write / read a PSLG in a simple .poly-like ASCII format.
void write_poly(const Pslg& pslg, const std::string& path);
Pslg read_poly(const std::string& path);

}  // namespace aero
