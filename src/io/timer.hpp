#pragma once

// Forwarding shim: the timer moved to src/core so that core (which times its
// pipeline phases) does not depend on the io layer. Kept so existing
// includes of "io/timer.hpp" continue to work.
#include "core/timer.hpp"  // IWYU pragma: export
