#include "io/journal.hpp"

#include <cstring>

#include "core/crc32.hpp"

namespace aero {

namespace {

constexpr char kMagic[8] = {'A', 'E', 'R', 'O', 'J', 'N', 'L', '1'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 4;  // magic, ver, hash, crc

void put_u32(std::uint8_t* dst, std::uint32_t v) {
  std::memcpy(dst, &v, sizeof(v));
}
void put_u64(std::uint8_t* dst, std::uint64_t v) {
  std::memcpy(dst, &v, sizeof(v));
}
std::uint32_t get_u32(const std::uint8_t* src) {
  std::uint32_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
std::uint64_t get_u64(const std::uint8_t* src) {
  std::uint64_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

std::vector<std::uint8_t> make_header(std::uint64_t config_hash) {
  std::vector<std::uint8_t> h(kHeaderBytes);
  std::memcpy(h.data(), kMagic, sizeof(kMagic));
  put_u32(h.data() + 8, kJournalVersion);
  put_u64(h.data() + 12, config_hash);
  put_u32(h.data() + 20, crc32(h.data(), 20));
  return h;
}

/// Scoped close for the read path, where a close failure changes nothing
/// (the bytes are already in memory) but still must not leak the handle.
struct FileCloser {
  std::FILE* f;
  ~FileCloser() {
    if (f != nullptr && std::fclose(f) != 0) {
      f = nullptr;  // read path: nothing useful to do with the error
    }
  }
};

}  // namespace

JournalContents read_journal(const std::string& path,
                             std::uint64_t expected_config_hash) {
  JournalContents out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  const FileCloser closer{f};

  std::size_t file_size = 0;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long end = std::ftell(f);
    if (end > 0) file_size = static_cast<std::size_t>(end);
  }
  if (std::fseek(f, 0, SEEK_SET) != 0) return out;

  std::uint8_t header[kHeaderBytes];
  std::size_t pos = std::fread(header, 1, kHeaderBytes, f);
  const bool header_intact =
      pos == kHeaderBytes &&
      std::memcmp(header, kMagic, sizeof(kMagic)) == 0 &&
      get_u32(header + 20) == crc32(header, 20);
  if (!header_intact) {
    out.discarded_bytes = file_size;
    return out;
  }
  out.version = get_u32(header + 8);
  out.config_hash = get_u64(header + 12);
  if (out.version != kJournalVersion) {
    // An unknown version is treated like a corrupt header: nothing usable,
    // but the caller still learns the file was a journal.
    out.discarded_bytes = file_size;
    return out;
  }
  out.header_ok = true;
  if (out.config_hash != expected_config_hash) {
    out.hash_mismatch = true;
    out.discarded_bytes = file_size - kHeaderBytes;
    return out;
  }

  // Record scan: stop at the first truncated or corrupt frame and discard
  // everything from its first byte to EOF -- the torn tail of an
  // interrupted run.
  std::vector<std::uint8_t> frame;
  for (;;) {
    const std::size_t record_start = pos;
    std::uint8_t lenbuf[4];
    const std::size_t got = std::fread(lenbuf, 1, sizeof(lenbuf), f);
    if (got == 0) break;  // clean EOF on a record boundary
    pos += got;
    if (got < sizeof(lenbuf)) {
      out.discarded_bytes = file_size - record_start;
      break;
    }
    const std::uint32_t payload_len = get_u32(lenbuf);
    if (payload_len > kJournalMaxPayload) {
      out.discarded_bytes = file_size - record_start;
      break;
    }
    // frame = key (8) + payload, then the CRC trailer (4).
    const std::size_t body = 8 + static_cast<std::size_t>(payload_len);
    frame.resize(body + 4);
    const std::size_t rd = std::fread(frame.data(), 1, frame.size(), f);
    pos += rd;
    if (rd < frame.size() ||
        get_u32(frame.data() + body) != crc32(frame.data(), body)) {
      out.discarded_bytes = file_size - record_start;
      break;
    }
    JournalRecord rec;
    rec.key = get_u64(frame.data());
    rec.payload.assign(frame.begin() + 8,
                       frame.begin() + static_cast<std::ptrdiff_t>(body));
    out.records.push_back(std::move(rec));
  }
  return out;
}

JournalIndex scan_journal_index(const std::string& path,
                                std::uint64_t expected_config_hash) {
  JournalIndex out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  const FileCloser closer{f};

  std::size_t file_size = 0;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long end = std::ftell(f);
    if (end > 0) file_size = static_cast<std::size_t>(end);
  }
  if (std::fseek(f, 0, SEEK_SET) != 0) return out;

  std::uint8_t header[kHeaderBytes];
  std::size_t pos = std::fread(header, 1, kHeaderBytes, f);
  const bool header_intact =
      pos == kHeaderBytes &&
      std::memcmp(header, kMagic, sizeof(kMagic)) == 0 &&
      get_u32(header + 20) == crc32(header, 20);
  if (!header_intact) {
    out.discarded_bytes = file_size;
    return out;
  }
  out.version = get_u32(header + 8);
  out.config_hash = get_u64(header + 12);
  if (out.version != kJournalVersion) {
    out.discarded_bytes = file_size;
    return out;
  }
  out.header_ok = true;
  if (out.config_hash != expected_config_hash) {
    out.hash_mismatch = true;
    out.discarded_bytes = file_size - kHeaderBytes;
    return out;
  }

  // Same stop-at-first-bad-frame walk as read_journal, but each payload is
  // pumped through a fixed scratch buffer purely to extend the CRC; only
  // {key, offset, len} survives per record.
  std::uint8_t scratch[1u << 16];
  for (;;) {
    const std::size_t record_start = pos;
    std::uint8_t head[12];  // payload_len u32 | key u64
    const std::size_t got = std::fread(head, 1, sizeof(head), f);
    if (got == 0) break;  // clean EOF on a record boundary
    pos += got;
    if (got < sizeof(head)) {
      out.discarded_bytes = file_size - record_start;
      break;
    }
    const std::uint32_t payload_len = get_u32(head);
    if (payload_len > kJournalMaxPayload) {
      out.discarded_bytes = file_size - record_start;
      break;
    }
    JournalFrame frame;
    frame.key = get_u64(head + 4);
    frame.payload_offset = pos;
    frame.payload_len = payload_len;
    std::uint32_t crc = crc32(head + 4, 8);
    std::size_t remaining = payload_len;
    bool torn = false;
    while (remaining > 0) {
      const std::size_t chunk = remaining < sizeof(scratch)
                                    ? remaining
                                    : sizeof(scratch);
      if (std::fread(scratch, 1, chunk, f) != chunk) {
        torn = true;
        break;
      }
      crc = crc32(scratch, chunk, crc);
      pos += chunk;
      remaining -= chunk;
    }
    std::uint8_t tail[4];
    if (torn || std::fread(tail, 1, sizeof(tail), f) != sizeof(tail) ||
        get_u32(tail) != crc) {
      out.discarded_bytes = file_size - record_start;
      break;
    }
    pos += sizeof(tail);
    out.frames.push_back(frame);
  }
  return out;
}

bool JournalReader::open(const std::string& path) {
  if (file_ != nullptr) return false;
  file_ = std::fopen(path.c_str(), "rb");
  return file_ != nullptr;
}

void JournalReader::close() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0) {
      // Read path: the bytes are already consumed or abandoned.
    }
    file_ = nullptr;
  }
}

bool JournalReader::read(const JournalFrame& frame,
                         std::vector<std::uint8_t>& out) {
  if (file_ == nullptr) return false;
  if (frame.payload_offset < 12) return false;
  if (std::fseek(file_,
                 static_cast<long>(frame.payload_offset - 8),
                 SEEK_SET) != 0) {
    return false;
  }
  std::uint8_t keybuf[8];
  if (std::fread(keybuf, 1, sizeof(keybuf), file_) != sizeof(keybuf) ||
      get_u64(keybuf) != frame.key) {
    return false;
  }
  out.resize(frame.payload_len);
  if (frame.payload_len > 0 &&
      std::fread(out.data(), 1, out.size(), file_) != out.size()) {
    return false;
  }
  std::uint8_t tail[4];
  if (std::fread(tail, 1, sizeof(tail), file_) != sizeof(tail)) return false;
  return get_u32(tail) == crc32(out.data(), out.size(), crc32(keybuf, 8));
}

bool JournalWriter::open(const std::string& path, std::uint64_t config_hash,
                         bool append) {
  const MutexLock lock(m_);
  if (file_ != nullptr) return false;  // already open
  failed_ = false;
  file_ = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (file_ == nullptr) {
    ++failures_;
    return false;
  }
  if (!append) {
    const std::vector<std::uint8_t> h = make_header(config_hash);
    const bool ok = std::fwrite(h.data(), 1, h.size(), file_) == h.size() &&
                    std::fflush(file_) == 0;
    if (!ok) {
      ++failures_;
      failed_ = true;
      if (std::fclose(file_) != 0) ++failures_;
      file_ = nullptr;
      return false;
    }
    bytes_ += h.size();
  }
  return true;
}

bool JournalWriter::is_open() const {
  const MutexLock lock(m_);
  return file_ != nullptr && !failed_;
}

bool JournalWriter::append(std::uint64_t key, const std::uint8_t* prefix,
                           std::size_t prefix_n, const std::uint8_t* payload,
                           std::size_t n) {
  const std::size_t total = prefix_n + n;
  if (total > kJournalMaxPayload) return false;
  const MutexLock lock(m_);
  if (file_ == nullptr || failed_) {
    ++failures_;
    return false;
  }
  // Header, prefix, payload, and CRC trailer are written as separate stream
  // writes -- copying the payload into one contiguous frame would double the
  // journal's memory traffic for nothing, since a torn record is detected by
  // the loader's CRC regardless of how many writes composed it. The CRC
  // covers key+prefix+payload by chaining the ranges.
  std::uint8_t head[12];
  put_u32(head, static_cast<std::uint32_t>(total));
  put_u64(head + 4, key);
  std::uint8_t tail[4];
  put_u32(tail,
          crc32(payload, n, crc32(prefix, prefix_n, crc32(head + 4, 8))));
  const bool ok =
      std::fwrite(head, 1, sizeof(head), file_) == sizeof(head) &&
      (prefix_n == 0 ||
       std::fwrite(prefix, 1, prefix_n, file_) == prefix_n) &&
      (n == 0 || std::fwrite(payload, 1, n, file_) == n) &&
      std::fwrite(tail, 1, sizeof(tail), file_) == sizeof(tail) &&
      std::fflush(file_) == 0;
  if (!ok) {
    ++failures_;
    failed_ = true;
    return false;
  }
  bytes_ += sizeof(head) + total + sizeof(tail);
  return true;
}

bool JournalWriter::flush() {
  const MutexLock lock(m_);
  if (file_ == nullptr || failed_) return false;
  if (std::fflush(file_) != 0) {
    ++failures_;
    failed_ = true;
    return false;
  }
  return true;
}

void JournalWriter::close() {
  const MutexLock lock(m_);
  if (file_ == nullptr) return;
  if (std::fclose(file_) != 0) ++failures_;
  file_ = nullptr;
}

std::size_t JournalWriter::bytes_written() const {
  const MutexLock lock(m_);
  return bytes_;
}

std::size_t JournalWriter::write_failures() const {
  const MutexLock lock(m_);
  return failures_;
}

}  // namespace aero
