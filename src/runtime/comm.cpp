#include "runtime/comm.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/timer.hpp"
#include "obs/trace.hpp"
#include "runtime/rma.hpp"

namespace aero {

namespace {

/// splitmix64: the standard seed-expansion mixer; full-period, well
/// distributed, and cheap enough for a per-message draw.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform [0, 1) from the top 53 bits of a hash.
double unit_interval(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double draw(std::uint64_t seed, std::uint64_t event, std::uint64_t salt) {
  return unit_interval(mix64(seed ^ mix64(event ^ (salt << 56))));
}

}  // namespace

bool FaultInjector::rank_dead(int rank) const {
  if (!cfg_.enabled || rank == 0) return false;
  return std::find(cfg_.dead_ranks.begin(), cfg_.dead_ranks.end(), rank) !=
         cfg_.dead_ranks.end();
}

FaultInjector::Action FaultInjector::next_action() {
  Action a;
  if (!cfg_.enabled) return a;
  const std::uint64_t e = event_.fetch_add(1, std::memory_order_relaxed);
  if (draw(cfg_.seed, e, 1) < cfg_.drop_rate) {
    a.drop = true;
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return a;
  }
  if (draw(cfg_.seed, e, 2) < cfg_.duplicate_rate) {
    a.duplicate = true;
    duplicated_.fetch_add(1, std::memory_order_relaxed);
  }
  if (draw(cfg_.seed, e, 3) < cfg_.corrupt_rate) {
    a.corrupt = true;
    a.salt = mix64(cfg_.seed ^ mix64(e ^ 0x5151ull));
    corrupted_.fetch_add(1, std::memory_order_relaxed);
  }
  if (draw(cfg_.seed, e, 4) < cfg_.delay_rate) {
    a.delay = cfg_.delay;
    delayed_.fetch_add(1, std::memory_order_relaxed);
  }
  return a;
}

bool FaultInjector::unit_should_fail(std::uint64_t unit_id) {
  if (!cfg_.enabled) return false;
  if (std::find(cfg_.fail_unit_ids.begin(), cfg_.fail_unit_ids.end(),
                unit_id) != cfg_.fail_unit_ids.end()) {
    unit_faults_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (cfg_.unit_failure_rate > 0.0) {
    const std::uint64_t e = event_.fetch_add(1, std::memory_order_relaxed);
    if (draw(cfg_.seed, e ^ unit_id, 5) < cfg_.unit_failure_rate) {
      unit_faults_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

std::size_t FaultInjector::crash_after(int rank) const {
  if (!cfg_.enabled || rank == 0) return 0;
  for (const auto& [r, n] : cfg_.crash_rank_after_units) {
    if (r == rank) return n;
  }
  return 0;
}

std::size_t FaultInjector::kill_mesher_after(int rank) const {
  if (!cfg_.enabled) return 0;
  for (const auto& [r, n] : cfg_.kill_mesher_after_units) {
    if (r == rank) return n;
  }
  return 0;
}

/// One (src, dst) coalescing lane: small messages staged in send order.
struct Communicator::Lane {
  std::vector<StagedMessage> q;
  std::size_t bytes = 0;
  std::chrono::steady_clock::time_point oldest;
};

/// Per-sender staging area. Keyed by sender so the owning thread's poll loop
/// is the flush driver; the lock covers the rare case of two threads sending
/// from one rank (the monitor acking on the exited root's behalf).
struct Communicator::Sender {
  // Every flush path drains the lane under this lock, drops it, and only
  // then posts into the destination mailbox; the declared edge records the
  // one direction a future nesting would be allowed to take.
  Mutex m AERO_LOCK_NAME("comm.sender", 40) AERO_ACQUIRED_BEFORE("comm.mailbox");
  std::vector<Lane> lanes AERO_GUARDED_BY(m);  ///< indexed by destination
};

Communicator::~Communicator() = default;

Communicator::Communicator(int nranks)
    : boxes_(static_cast<std::size_t>(nranks)) {
  if (nranks < 1) throw std::invalid_argument("need at least one rank");
  senders_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    auto s = std::make_unique<Sender>();
    {
      MutexLock lock(s->m);
      s->lanes.resize(static_cast<std::size_t>(nranks));
    }
    senders_.push_back(std::move(s));
  }
}

void Communicator::promote_due(Mailbox& box,
                               std::chrono::steady_clock::time_point now) {
  if (box.delayed.empty()) return;
  auto it = box.delayed.begin();
  while (it != box.delayed.end()) {
    if (it->due <= now) {
      box.q.push_back(std::move(it->msg));
      it = box.delayed.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<Message> Communicator::pop_ready(Mailbox& box) {
  while (!box.q.empty()) {
    Message msg = std::move(box.q.front());
    box.q.pop_front();
    if (msg.tag != kTagBatch) return msg;
    std::vector<Message> parts;
    if (decode_batch(msg.payload, msg.from, parts)) {
      for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
        box.q.push_front(std::move(*it));
      }
    } else {
      // A corrupted batch is dropped wholesale; each constituent's own
      // ack/retransmit machinery recovers whatever mattered.
      batch_rejects_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return std::nullopt;
}

void Communicator::deliver(int to, Message msg,
                           std::chrono::microseconds delay) {
  Mailbox& box = boxes_[static_cast<std::size_t>(to)];
  {
    MutexLock lock(box.m);
    if (delay.count() > 0) {
      box.delayed.push_back(Delayed{mono_now() + delay, std::move(msg)});
    } else {
      box.q.push_back(std::move(msg));
    }
  }
  box.cv.notify_one();
}

void Communicator::post(int from, int to, int tag, ByteBuf payload) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  payload_bytes_.fetch_add(payload.size(), std::memory_order_relaxed);
  Message msg{tag, from, std::move(payload)};
  if (injector_ != nullptr && injector_->enabled()) {
    const FaultInjector::Action a = injector_->next_action();
    if (a.drop) {
      AERO_TRACE_INSTANT_ARG("comm", "injected_drop", tag);
      return;
    }
    if (a.corrupt && !msg.payload.empty()) {
      // Flip at least one bit of one deterministic byte.
      const std::size_t i = a.salt % msg.payload.size();
      msg.payload[i] ^= static_cast<std::uint8_t>(1 + ((a.salt >> 32) & 0x7f));
      AERO_TRACE_INSTANT_ARG("comm", "injected_corrupt", tag);
    }
    if (a.duplicate) {
      AERO_TRACE_INSTANT_ARG("comm", "injected_duplicate", tag);
      deliver(to, msg, a.delay);
    }
    deliver(to, std::move(msg), a.delay);
    return;
  }
  deliver(to, std::move(msg), std::chrono::microseconds{0});
}

void Communicator::send(int from, int to, int tag, ByteBuf payload) {
  AERO_TRACE_SPAN("comm", "send");
  if (coalescing_enabled() && from >= 0 && from < size()) {
    Sender& s = *senders_[static_cast<std::size_t>(from)];
    if (tag != kTagShutdown && tag != kTagBatch &&
        payload.size() <= copts_.small_threshold) {
      std::vector<StagedMessage> ready;
      {
        MutexLock lock(s.m);
        Lane& lane = s.lanes[static_cast<std::size_t>(to)];
        if (lane.q.empty()) lane.oldest = mono_now();
        lane.bytes += payload.size();
        lane.q.push_back(StagedMessage{tag, std::move(payload)});
        if (lane.q.size() >= copts_.max_messages ||
            lane.bytes >= copts_.max_bytes) {
          ready.swap(lane.q);
          lane.bytes = 0;
        }
      }
      ship(from, to, std::move(ready));
      return;
    }
    // Large or non-coalescable send: drain this destination's staged small
    // messages first so per-(src, dst) FIFO order is preserved.
    flush_lane(from, to);
  }
  post(from, to, tag, std::move(payload));
}

void Communicator::ship(int from, int to, std::vector<StagedMessage> parts) {
  if (parts.empty()) return;
  if (parts.size() == 1) {
    post(from, to, parts[0].tag, std::move(parts[0].payload));
    return;
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  coalesced_.fetch_add(parts.size(), std::memory_order_relaxed);
  AERO_TRACE_INSTANT_ARG("comm", "coalesced_batch", parts.size());
  post(from, to, kTagBatch, encode_batch(parts));
}

void Communicator::flush_lane(int from, int to) {
  Sender& s = *senders_[static_cast<std::size_t>(from)];
  std::vector<StagedMessage> ready;
  {
    MutexLock lock(s.m);
    Lane& lane = s.lanes[static_cast<std::size_t>(to)];
    if (lane.q.empty()) return;
    ready.swap(lane.q);
    lane.bytes = 0;
  }
  ship(from, to, std::move(ready));
}

void Communicator::maybe_flush(int from) {
  if (!coalescing_enabled() || from < 0 || from >= size()) return;
  Sender& s = *senders_[static_cast<std::size_t>(from)];
  const auto now = mono_now();
  for (int to = 0; to < size(); ++to) {
    std::vector<StagedMessage> ready;
    {
      MutexLock lock(s.m);
      Lane& lane = s.lanes[static_cast<std::size_t>(to)];
      if (lane.q.empty() || now - lane.oldest < copts_.flush_delay) continue;
      ready.swap(lane.q);
      lane.bytes = 0;
    }
    ship(from, to, std::move(ready));
  }
}

void Communicator::flush(int from) {
  if (!coalescing_enabled() || from < 0 || from >= size()) return;
  Sender& s = *senders_[static_cast<std::size_t>(from)];
  for (int to = 0; to < size(); ++to) {
    std::vector<StagedMessage> ready;
    {
      MutexLock lock(s.m);
      Lane& lane = s.lanes[static_cast<std::size_t>(to)];
      if (lane.q.empty()) continue;
      ready.swap(lane.q);
      lane.bytes = 0;
    }
    ship(from, to, std::move(ready));
  }
}

Message Communicator::recv(int rank) {
  Mailbox& box = boxes_[static_cast<std::size_t>(rank)];
  UniqueLock lock(box.m);
  for (;;) {
    promote_due(box, mono_now());
    if (auto msg = pop_ready(box)) return std::move(*msg);
    if (box.delayed.empty()) {
      while (box.q.empty() && box.delayed.empty()) lock.wait(box.cv);
    } else {
      auto due = box.delayed.front().due;
      for (const Delayed& d : box.delayed) due = std::min(due, d.due);
      lock.wait_until(box.cv, due);
    }
  }
}

std::optional<Message> Communicator::try_recv(int rank) {
  Mailbox& box = boxes_[static_cast<std::size_t>(rank)];
  MutexLock lock(box.m);
  promote_due(box, mono_now());
  return pop_ready(box);
}

std::size_t Communicator::pending(int rank) const {
  const Mailbox& box = boxes_[static_cast<std::size_t>(rank)];
  MutexLock lock(box.m);
  return box.q.size() + box.delayed.size();
}

CommStats Communicator::stats() const {
  CommStats s;
  s.messages = messages_.load(std::memory_order_relaxed);
  s.payload_bytes = payload_bytes_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.batch_rejects = batch_rejects_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace aero
