#include "runtime/comm.hpp"

#include <stdexcept>

namespace aero {

Communicator::Communicator(int nranks)
    : boxes_(static_cast<std::size_t>(nranks)) {
  if (nranks < 1) throw std::invalid_argument("need at least one rank");
}

void Communicator::send(int from, int to, int tag,
                        std::vector<std::uint8_t> payload) {
  Mailbox& box = boxes_[static_cast<std::size_t>(to)];
  {
    std::lock_guard lock(box.m);
    box.q.push_back(Message{tag, from, std::move(payload)});
  }
  box.cv.notify_one();
}

Message Communicator::recv(int rank) {
  Mailbox& box = boxes_[static_cast<std::size_t>(rank)];
  std::unique_lock lock(box.m);
  box.cv.wait(lock, [&box] { return !box.q.empty(); });
  Message msg = std::move(box.q.front());
  box.q.pop_front();
  return msg;
}

std::optional<Message> Communicator::try_recv(int rank) {
  Mailbox& box = boxes_[static_cast<std::size_t>(rank)];
  std::lock_guard lock(box.m);
  if (box.q.empty()) return std::nullopt;
  Message msg = std::move(box.q.front());
  box.q.pop_front();
  return msg;
}

std::size_t Communicator::pending(int rank) const {
  const Mailbox& box = boxes_[static_cast<std::size_t>(rank)];
  std::lock_guard lock(box.m);
  return box.q.size();
}

}  // namespace aero
