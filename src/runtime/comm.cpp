#include "runtime/comm.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/timer.hpp"
#include "obs/trace.hpp"

namespace aero {

namespace {

/// splitmix64: the standard seed-expansion mixer; full-period, well
/// distributed, and cheap enough for a per-message draw.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform [0, 1) from the top 53 bits of a hash.
double unit_interval(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double draw(std::uint64_t seed, std::uint64_t event, std::uint64_t salt) {
  return unit_interval(mix64(seed ^ mix64(event ^ (salt << 56))));
}

}  // namespace

bool FaultInjector::rank_dead(int rank) const {
  if (!cfg_.enabled || rank == 0) return false;
  return std::find(cfg_.dead_ranks.begin(), cfg_.dead_ranks.end(), rank) !=
         cfg_.dead_ranks.end();
}

FaultInjector::Action FaultInjector::next_action() {
  Action a;
  if (!cfg_.enabled) return a;
  const std::uint64_t e = event_.fetch_add(1, std::memory_order_relaxed);
  if (draw(cfg_.seed, e, 1) < cfg_.drop_rate) {
    a.drop = true;
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return a;
  }
  if (draw(cfg_.seed, e, 2) < cfg_.duplicate_rate) {
    a.duplicate = true;
    duplicated_.fetch_add(1, std::memory_order_relaxed);
  }
  if (draw(cfg_.seed, e, 3) < cfg_.corrupt_rate) {
    a.corrupt = true;
    a.salt = mix64(cfg_.seed ^ mix64(e ^ 0x5151ull));
    corrupted_.fetch_add(1, std::memory_order_relaxed);
  }
  if (draw(cfg_.seed, e, 4) < cfg_.delay_rate) {
    a.delay = cfg_.delay;
    delayed_.fetch_add(1, std::memory_order_relaxed);
  }
  return a;
}

bool FaultInjector::unit_should_fail(std::uint64_t unit_id) {
  if (!cfg_.enabled) return false;
  if (std::find(cfg_.fail_unit_ids.begin(), cfg_.fail_unit_ids.end(),
                unit_id) != cfg_.fail_unit_ids.end()) {
    unit_faults_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (cfg_.unit_failure_rate > 0.0) {
    const std::uint64_t e = event_.fetch_add(1, std::memory_order_relaxed);
    if (draw(cfg_.seed, e ^ unit_id, 5) < cfg_.unit_failure_rate) {
      unit_faults_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

Communicator::Communicator(int nranks)
    : boxes_(static_cast<std::size_t>(nranks)) {
  if (nranks < 1) throw std::invalid_argument("need at least one rank");
}

void Communicator::promote_due(Mailbox& box,
                               std::chrono::steady_clock::time_point now) {
  if (box.delayed.empty()) return;
  auto it = box.delayed.begin();
  while (it != box.delayed.end()) {
    if (it->due <= now) {
      box.q.push_back(std::move(it->msg));
      it = box.delayed.erase(it);
    } else {
      ++it;
    }
  }
}

void Communicator::deliver(int to, Message msg,
                           std::chrono::microseconds delay) {
  Mailbox& box = boxes_[static_cast<std::size_t>(to)];
  {
    MutexLock lock(box.m);
    if (delay.count() > 0) {
      box.delayed.push_back(Delayed{mono_now() + delay, std::move(msg)});
    } else {
      box.q.push_back(std::move(msg));
    }
  }
  box.cv.notify_one();
}

void Communicator::send(int from, int to, int tag,
                        std::vector<std::uint8_t> payload) {
  AERO_TRACE_SPAN("comm", "send");
  Message msg{tag, from, std::move(payload)};
  if (injector_ != nullptr && injector_->enabled()) {
    const FaultInjector::Action a = injector_->next_action();
    if (a.drop) {
      AERO_TRACE_INSTANT_ARG("comm", "injected_drop", tag);
      return;
    }
    if (a.corrupt && !msg.payload.empty()) {
      // Flip at least one bit of one deterministic byte.
      const std::size_t i = a.salt % msg.payload.size();
      msg.payload[i] ^= static_cast<std::uint8_t>(1 + ((a.salt >> 32) & 0x7f));
      AERO_TRACE_INSTANT_ARG("comm", "injected_corrupt", tag);
    }
    if (a.duplicate) {
      AERO_TRACE_INSTANT_ARG("comm", "injected_duplicate", tag);
      deliver(to, msg, a.delay);
    }
    deliver(to, std::move(msg), a.delay);
    return;
  }
  deliver(to, std::move(msg), std::chrono::microseconds{0});
}

Message Communicator::recv(int rank) {
  Mailbox& box = boxes_[static_cast<std::size_t>(rank)];
  UniqueLock lock(box.m);
  for (;;) {
    promote_due(box, mono_now());
    if (!box.q.empty()) {
      Message msg = std::move(box.q.front());
      box.q.pop_front();
      return msg;
    }
    if (box.delayed.empty()) {
      while (box.q.empty() && box.delayed.empty()) lock.wait(box.cv);
    } else {
      auto due = box.delayed.front().due;
      for (const Delayed& d : box.delayed) due = std::min(due, d.due);
      lock.wait_until(box.cv, due);
    }
  }
}

std::optional<Message> Communicator::try_recv(int rank) {
  Mailbox& box = boxes_[static_cast<std::size_t>(rank)];
  MutexLock lock(box.m);
  promote_due(box, mono_now());
  if (box.q.empty()) return std::nullopt;
  Message msg = std::move(box.q.front());
  box.q.pop_front();
  return msg;
}

std::size_t Communicator::pending(int rank) const {
  const Mailbox& box = boxes_[static_cast<std::size_t>(rank)];
  MutexLock lock(box.m);
  return box.q.size() + box.delayed.size();
}

}  // namespace aero
