#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/mesh_view.hpp"  // MeshBlobStatus
#include "core/options_hash.hpp"  // fnv1a, mesh_config_hash
#include "io/journal.hpp"
#include "runtime/work.hpp"  // WorkUnit, Vec2

namespace aero {

/// Every checkpoint payload ("triangle soup" of one finalized leaf) carries
/// its own 8-byte prefix -- "ASUP" tag + u32 format version -- mirroring the
/// "AMSH" prefix on serialized meshes (core/mesh_view.hpp). The journal's
/// file-level version guards the framing; this guards the payload encoding,
/// so a soup-layout change is rejected per record with a typed status
/// instead of silently mis-decoding into garbage triangles.
inline constexpr std::array<std::uint8_t, 4> kSoupMagic = {'A', 'S', 'U',
                                                           'P'};
inline constexpr std::uint32_t kSoupVersion = 1;
inline constexpr std::size_t kSoupHeaderSize = 4 + 4;

/// Classify a checkpoint payload: kOk when the tag, version, and triangle
/// block length all check out (an empty soup is valid). Reuses the
/// MeshBlobStatus vocabulary so journal and service-cache rejections read
/// the same way in logs and tests.
MeshBlobStatus soup_status(const std::uint8_t* data, std::size_t len);
inline MeshBlobStatus soup_status(const std::vector<std::uint8_t>& payload) {
  return soup_status(payload.data(), payload.size());
}

/// Deterministic 64-bit content key of a work unit's subdomain description.
/// Hashes the serialized form minus the pool-assigned id, the failed_ranks
/// fault history (both vary with thread interleaving), and the CRC trailer.
/// The decomposition tree is a pure function of the input, so two runs of
/// the same problem produce the same keys for the same logical subdomains
/// regardless of rank count, schedule, transport, or injected faults --
/// which is what lets a resumed run recognize work a dead run finished.
///
/// The companion config-level key, mesh_config_hash(), moved to
/// core/options_hash.hpp in PR 8 so the service result cache and the
/// checkpoint journal share one list of mesh-defining fields; it is
/// re-exported by the include above for existing callers.
std::uint64_t subdomain_key(const WorkUnit& unit);

/// Completed-subdomain lookup built once from a validated journal and then
/// read lock-free by every mesher thread. Records whose triangle payload
/// fails to decode (CRC passed but soup_status rejects the tag, version, or
/// block length) are skipped and counted, never fatal.
class ResumeState {
 public:
  explicit ResumeState(const JournalContents& journal);

  /// The stored triangles for `key`, or nullptr if that subdomain must be
  /// meshed fresh.
  const std::vector<std::array<Vec2, 3>>* find(std::uint64_t key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }
  std::size_t size() const { return map_.size(); }
  std::size_t decode_failures() const { return decode_failures_; }
  /// Subset of decode_failures: intact "ASUP" payloads written by a
  /// different soup format version.
  std::size_t version_rejects() const { return version_rejects_; }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::array<Vec2, 3>>> map_;
  std::size_t decode_failures_ = 0;
  std::size_t version_rejects_ = 0;
};

/// Thread-safe streaming checkpoint sink: every finalized leaf's triangles
/// are serialized and appended to the journal as the run progresses. Keys
/// already present in the journal (seeded from a resume load, or recorded
/// earlier this run) are skipped, so append-to-the-same-file resume chains
/// never duplicate records. All failures are counted and absorbed: a full
/// disk degrades checkpointing, never the mesh.
class CheckpointSink {
 public:
  [[nodiscard]] bool open(const std::string& path, std::uint64_t config_hash,
                          bool append);
  bool is_open() const { return writer_.is_open(); }

  /// Mark `key` as already journaled (from a loaded journal's records).
  void seed(std::uint64_t key);

  /// Serialize and append one finalized subdomain. Returns false only on a
  /// write error; duplicate keys return true without writing.
  [[nodiscard]] bool record(std::uint64_t key,
                            const std::vector<std::array<Vec2, 3>>& tris);

  [[nodiscard]] bool flush() { return writer_.flush(); }
  void close() { writer_.close(); }

  std::size_t records() const;
  std::size_t bytes() const { return writer_.bytes_written(); }
  std::size_t failures() const { return writer_.write_failures(); }

 private:
  JournalWriter writer_;
  // Guards only the dedup set; the journal append happens outside this lock
  // (JournalWriter serializes itself), keeping the blocking write out of the
  // sink's critical section.
  mutable Mutex m_ AERO_LOCK_NAME("ckpt.sink", 80)
      AERO_ACQUIRED_BEFORE("io.journal");
  std::unordered_set<std::uint64_t> seen_ AERO_GUARDED_BY(m_);
  std::size_t records_ AERO_GUARDED_BY(m_) = 0;
};

}  // namespace aero
