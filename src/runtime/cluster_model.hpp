#pragma once

#include <cstddef>
#include <vector>

#include "core/mesh_generator.hpp"

namespace aero {

/// One node of the instrumented task graph: a decomposition split or a
/// subdomain meshing task, with its measured sequential cost and the size of
/// its serialized payload (what a steal would transfer over the wire).
struct TaskNode {
  double seconds = 0.0;          ///< measured single-core work time
  std::size_t bytes = 0;         ///< serialized transfer size
  double cost_estimate = 0.0;    ///< scheduler priority (estimated triangles)
  const char* label = "";        ///< task kind, for diagnostics
  std::vector<std::size_t> children;  ///< tasks spawned on completion
};

/// The full dynamic task graph of one mesh generation run, measured on the
/// real pipeline. The pipeline has two pool phases (boundary layer, then
/// inviscid) separated by the sequential interface extraction; each phase's
/// root tasks are handed to rank 0 when the phase starts.
struct TaskGraph {
  std::vector<TaskNode> nodes;
  /// Root task ids per phase.
  std::vector<std::vector<std::size_t>> phases;
  /// Truly sequential seconds before each phase (root-only work such as
  /// reading the input and the final gather bookkeeping).
  std::vector<double> serial_before;
  /// Distributable pre-phase seconds: work that is data-parallel in the
  /// paper's implementation (ray generation is done in parallel over surface
  /// chunks; the ring restriction and interface extraction are local
  /// per-triangle filters). The simulator charges `value / ranks`.
  std::vector<double> distributable_before;

  /// Total single-core time: all task work plus the serial stages. This is
  /// the simulated 1-rank makespan by construction.
  double total_seconds() const {
    double t = 0.0;
    for (const TaskNode& n : nodes) t += n.seconds;
    for (const double s : serial_before) t += s;
    for (const double s : distributable_before) t += s;
    return t;
  }
};

/// Build the measured task graph by running the full pipeline sequentially
/// with per-task timers: boundary-layer splits and leaf triangulations,
/// inviscid '+' splits and refinements (near-body included).
TaskGraph build_task_graph(const Options& opts);

/// Interconnect and scheduling parameters of the simulated cluster
/// (defaults approximate the paper's 4X FDR Infiniband testbed).
struct ClusterOptions {
  double latency_seconds = 2e-6;        ///< per-message latency
  double bandwidth_bytes_per_s = 7e9;   ///< ~56 Gbit/s
  /// Staleness of the RMA load window: a stealing rank acts on information
  /// this old, adding to the idle time before the transfer starts.
  double window_staleness_seconds = 1e-4;
};

/// Result of simulating one rank count.
struct SimResult {
  int ranks = 0;
  double makespan_seconds = 0.0;
  double busy_seconds = 0.0;     ///< sum of task work
  double comm_seconds = 0.0;     ///< total transfer time paid by thieves
  std::size_t steals = 0;
  double speedup = 0.0;          ///< vs the graph's total sequential time
  double efficiency = 0.0;       ///< speedup / ranks
};

/// Discrete-event simulation of the paper's execution model on P ranks:
/// per-rank cost-ordered queues, spawned children stay local, idle ranks
/// steal the largest task from the most-loaded rank, paying latency +
/// bytes/bandwidth + window staleness before the stolen task starts.
SimResult simulate_cluster(const TaskGraph& graph, int ranks,
                           const ClusterOptions& opts);

/// Strong-scaling sweep (the paper's Figures 11 and 12): simulate each rank
/// count against the same measured task graph.
std::vector<SimResult> strong_scaling_sweep(const TaskGraph& graph,
                                            const std::vector<int>& rank_counts,
                                            const ClusterOptions& opts);

}  // namespace aero
