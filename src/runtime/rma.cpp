#include "runtime/rma.hpp"

#include <cstring>

namespace aero {

namespace {

constexpr std::uint8_t kKindInline = 0x00;
constexpr std::uint8_t kKindWindow = 0x01;

/// splitmix64 finalizer (same mixer the fault injector uses; redeclared here
/// because both live in anonymous namespaces of their translation units).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename T>
void store(std::uint8_t* p, const T& v) {
  std::memcpy(p, &v, sizeof(T));
}

template <typename T>
T load(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

void seal_inline_frame(std::uint64_t nonce,
                       std::vector<std::uint8_t>& framed) {
  framed[0] = kKindInline;
  store(framed.data() + 1, nonce);
  store(framed.data() + 9, crc32(framed.data(), 9));
}

ByteBuf make_window_frame(std::uint64_t nonce, int src, std::uint32_t slot,
                          std::uint64_t length, std::uint64_t digest) {
  std::uint8_t b[kWindowFrameSize];
  b[0] = kKindWindow;
  store(b + 1, nonce);
  store(b + 9, static_cast<std::int32_t>(src));
  store(b + 13, slot);
  store(b + 17, length);
  store(b + 25, digest);
  store(b + 33, crc32(b, 33));
  return ByteBuf(b, kWindowFrameSize);
}

std::optional<ParsedFrame> parse_frame(const ByteBuf& payload) {
  if (payload.size() < kInlineFrameHeader) return std::nullopt;
  const std::uint8_t* p = payload.data();
  ParsedFrame f;
  if (p[0] == kKindInline) {
    if (load<std::uint32_t>(p + 9) != crc32(p, 9)) return std::nullopt;
    f.nonce = load<std::uint64_t>(p + 1);
    f.windowed = false;
    f.data = p + kInlineFrameHeader;
    f.size = payload.size() - kInlineFrameHeader;
    return f;
  }
  if (p[0] == kKindWindow) {
    if (payload.size() != kWindowFrameSize) return std::nullopt;
    if (load<std::uint32_t>(p + 33) != crc32(p, 33)) return std::nullopt;
    f.nonce = load<std::uint64_t>(p + 1);
    f.windowed = true;
    f.src = load<std::int32_t>(p + 9);
    f.slot = load<std::uint32_t>(p + 13);
    f.length = load<std::uint64_t>(p + 17);
    f.digest = load<std::uint64_t>(p + 25);
    return f;
  }
  return std::nullopt;  // unknown kind byte (corruption)
}

ByteBuf make_ack(std::uint64_t nonce) {
  std::uint8_t b[12];
  store(b, nonce);
  store(b + 8, crc32(b, 8));
  return ByteBuf(b, sizeof(b));
}

std::optional<std::uint64_t> parse_ack(const ByteBuf& b) {
  if (b.size() != 12) return std::nullopt;
  if (load<std::uint32_t>(b.data() + 8) != crc32(b.data(), 8)) {
    return std::nullopt;
  }
  return load<std::uint64_t>(b.data());
}

std::uint64_t payload_digest(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = mix64(0x6165726f'726d61ull ^ n);
  if (n > 0) {
    const std::size_t step = n / 16 + 1;
    for (std::size_t i = 0; i < n; i += step) {
      h = mix64(h ^ (static_cast<std::uint64_t>(data[i]) + (i << 8)));
    }
  }
  return h;
}

ByteBuf encode_batch(const std::vector<StagedMessage>& parts) {
  std::size_t total = 4 + 4;  // count + trailer CRC
  for (const StagedMessage& s : parts) total += 8 + s.payload.size();
  std::vector<std::uint8_t> b;
  b.reserve(total);
  const auto append = [&b](const void* p, std::size_t n) {
    const auto* u = static_cast<const std::uint8_t*>(p);
    b.insert(b.end(), u, u + n);
  };
  const std::uint32_t count = static_cast<std::uint32_t>(parts.size());
  append(&count, 4);
  for (const StagedMessage& s : parts) {
    const std::int32_t tag = s.tag;
    const std::uint32_t len = static_cast<std::uint32_t>(s.payload.size());
    append(&tag, 4);
    append(&len, 4);
    append(s.payload.data(), s.payload.size());
  }
  const std::uint32_t crc = crc32(b.data(), b.size());
  append(&crc, 4);
  return ByteBuf(std::move(b));
}

bool decode_batch(const ByteBuf& payload, int from,
                  std::vector<Message>& out) {
  const std::uint8_t* p = payload.data();
  const std::size_t n = payload.size();
  if (n < 8) return false;
  if (load<std::uint32_t>(p + n - 4) != crc32(p, n - 4)) return false;
  const std::uint32_t count = load<std::uint32_t>(p);
  std::size_t pos = 4;
  std::vector<Message> parts;
  parts.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 8 > n - 4) return false;
    const std::int32_t tag = load<std::int32_t>(p + pos);
    const std::uint32_t len = load<std::uint32_t>(p + pos + 4);
    pos += 8;
    if (pos + len > n - 4) return false;
    parts.push_back(Message{tag, from, ByteBuf(p + pos, len)});
    pos += len;
  }
  if (pos != n - 4) return false;  // trailing garbage
  out = std::move(parts);
  return true;
}

std::uint32_t PayloadWindow::publish(std::uint64_t nonce,
                                     std::vector<std::uint8_t> bytes) {
  published_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(m_);
  const std::uint32_t slot = next_slot_++;
  slots_.emplace(slot, Slot{nonce, std::move(bytes), false});
  return slot;
}

std::optional<std::vector<std::uint8_t>> PayloadWindow::take(
    std::uint32_t slot, std::uint64_t nonce) {
  MutexLock lock(m_);
  auto it = slots_.find(slot);
  if (it == slots_.end() || it->second.taken || it->second.nonce != nonce) {
    return std::nullopt;
  }
  it->second.taken = true;
  taken_.fetch_add(1, std::memory_order_relaxed);
  return std::move(it->second.bytes);
}

std::optional<std::vector<std::uint8_t>> PayloadWindow::take(
    std::uint32_t slot, std::uint64_t nonce, std::uint64_t length,
    std::uint64_t digest) {
  MutexLock lock(m_);
  auto it = slots_.find(slot);
  if (it == slots_.end() || it->second.taken || it->second.nonce != nonce) {
    return std::nullopt;
  }
  const std::vector<std::uint8_t>& b = it->second.bytes;
  if (b.size() != length || payload_digest(b.data(), b.size()) != digest) {
    return std::nullopt;  // slot stays live for an intact resend
  }
  it->second.taken = true;
  taken_.fetch_add(1, std::memory_order_relaxed);
  return std::move(it->second.bytes);
}

void PayloadWindow::release(std::uint32_t slot, std::uint64_t nonce) {
  std::vector<std::uint8_t> recycled;
  {
    MutexLock lock(m_);
    auto it = slots_.find(slot);
    if (it == slots_.end() || it->second.nonce != nonce) return;
    if (!it->second.taken) recycled = std::move(it->second.bytes);
    slots_.erase(it);
  }
  if (recycle_ != nullptr && !recycled.empty()) {
    recycle_->release(std::move(recycled));
  }
}

std::optional<std::vector<std::uint8_t>> PayloadWindow::reclaim(
    std::uint32_t slot, std::uint64_t nonce) {
  MutexLock lock(m_);
  auto it = slots_.find(slot);
  if (it == slots_.end() || it->second.nonce != nonce) return std::nullopt;
  const bool taken = it->second.taken;
  std::vector<std::uint8_t> bytes = std::move(it->second.bytes);
  slots_.erase(it);
  if (taken) return std::nullopt;
  return bytes;
}

std::size_t PayloadWindow::live() const {
  MutexLock lock(m_);
  return slots_.size();
}

}  // namespace aero
