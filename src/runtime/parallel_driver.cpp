#include "runtime/parallel_driver.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/pipeline_config.hpp"
#include "io/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/checkpoint.hpp"

namespace aero {

ParallelMeshResult parallel_generate_mesh(const Options& opts, int nranks,
                                          const FaultConfig& faults,
                                          ProtocolTrace* trace,
                                          const PoolTuning& tuning,
                                          const ResilienceOptions& resilience) {
  ParallelMeshResult result;
  obs::apply(trace_config(opts));
  AERO_TRACE_THREAD("driver", -1);
  AERO_TRACE_SPAN("pipeline", "parallel_generate_mesh");
  Timer total;

  // -- Resume load + checkpoint sink ---------------------------------------
  // Nothing in this block is ever fatal: a missing, corrupt, or mismatched
  // journal degrades to re-meshing from scratch, and an unopenable sink
  // degrades to an unjournaled run.
  CheckpointSummary& cs = result.resilience;
  JournalContents loaded;
  bool resume_active = false;
  if (!resilience.resume_path.empty()) {
    cs.resume_attempted = true;
    loaded = read_journal(resilience.resume_path, resilience.config_hash);
    if (!loaded.header_ok) {
      cs.resume_rejected = true;
      cs.resume_error =
          "journal missing or header corrupt; re-meshing from scratch";
    } else if (loaded.hash_mismatch) {
      cs.resume_rejected = true;
      cs.resume_error = "journal was written for different options/geometry; "
                        "re-meshing from scratch";
    } else {
      resume_active = true;
      cs.resume_records = loaded.records.size();
      cs.discarded_bytes = loaded.discarded_bytes;
    }
  }
  const ResumeState resume(loaded);
  CheckpointSink sink;
  if (!resilience.checkpoint_path.empty()) {
    // Append in place only when extending the very journal we resumed from
    // AND its tail was clean; a discarded tail means garbage bytes sit past
    // the last intact record, so the file is rewritten fresh instead (the
    // pool re-records every resumed leaf, repopulating it as the run goes).
    const bool append_in_place =
        resume_active && resilience.checkpoint_path == resilience.resume_path &&
        loaded.discarded_bytes == 0;
    if (sink.open(resilience.checkpoint_path, resilience.config_hash,
                  append_in_place) &&
        append_in_place) {
      for (const JournalRecord& r : loaded.records) sink.seed(r.key);
    }
  }

  Timer t1;
  {
    AERO_TRACE_SPAN("pipeline", "boundary_layer_points");
    result.boundary_layer =
        build_boundary_layer(opts.airfoil, blayer_options(opts));
  }
  result.timings.record("boundary_layer_points", t1.seconds());
  if (opts.phase_hook) {
    opts.phase_hook("boundary_layer",
                      PhaseArtifacts{&result.boundary_layer, nullptr});
  }

  PoolOptions pool_opts;
  pool_opts.nranks = nranks;
  pool_opts.bl_decompose = bl_decompose_options(opts);
  pool_opts.inviscid_target_triangles = opts.inviscid_target_triangles;
  pool_opts.inviscid_max_level = opts.inviscid_max_level;
  pool_opts.faults = faults;
  pool_opts.trace = trace;
  pool_opts.tuning = tuning;
  pool_opts.budget = resilience.budget;
  pool_opts.stop = resilience.stop_flag;
  pool_opts.checkpoint = sink.is_open() ? &sink : nullptr;
  pool_opts.resume = resume_active ? &resume : nullptr;
  pool_opts.merge_resident_bytes =
      static_cast<std::size_t>(opts.merge_resident_mb) << 20;

  // Aggregate both passes' resilience stats into the summary (the BL-only
  // early return below uses it too).
  const auto fill_summary = [&result, &cs, &sink] {
    const PoolStats& bl = result.bl_pool;
    const PoolStats& inv = result.inviscid_pool;
    cs.resumed_units = bl.resumed_units + inv.resumed_units;
    cs.checkpointed_units = bl.checkpointed_units + inv.checkpointed_units;
    cs.checkpoint_failures = bl.checkpoint_failures + inv.checkpoint_failures;
    cs.units_total = bl.units_total + inv.units_total;
    cs.units_done = bl.units_done + inv.units_done;
    cs.stop_cause =
        bl.stop_cause != StopCause::kNone ? bl.stop_cause : inv.stop_cause;
    // A failed flush leaves the journal short its tail records; the sink's
    // own failure counter already feeds cs.checkpoint_failures upstream, so
    // surface the event and carry on -- checkpointing never fails the run.
    if (sink.is_open() && !sink.flush()) {
      AERO_TRACE_INSTANT("pipeline", "checkpoint_flush_failed");
    }
  };

  // Phase 1 pool: boundary-layer decomposition + triangulation. The sizing
  // is not needed by BL units; pass a placeholder.
  Timer t2;
  GradedSizing placeholder;
  {
    AERO_TRACE_SPAN("pipeline", "boundary_layer_pool");
    if (!opts.merge_spill_dir.empty()) {
      pool_opts.spill_path = opts.merge_spill_dir + "/bl.spill";
    }
    std::vector<WorkUnit> initial;
    initial.push_back(WorkUnit{WorkUnit::Kind::kBlDecompose,
                               make_root_subdomain(result.boundary_layer.points),
                               {}});
    result.bl_pool =
        run_pool(std::move(initial), placeholder, pool_opts, result.mesh);
    if (result.bl_pool.status != RunStatus::kStopped) {
      // Ring restriction on the gathered mesh (root side).
      restrict_to_ring(result.mesh, result.boundary_layer);
    }
  }
  publish_pool_metrics(result.bl_pool, "pool.bl.");
  result.timings.record("boundary_layer_pool", t2.seconds());
  if (result.bl_pool.status == RunStatus::kStopped) {
    // Drained mid-boundary-layer. The gathered subdomain triangulations form
    // a valid conformal sub-mesh, but ring restriction and the interface
    // extraction both assume full cloud coverage, so the run ends here: raw
    // partial BL mesh out, journal flushed, remainder resumable.
    fill_summary();
    result.status = RunStatus::kStopped;
    result.timings.record("total", total.seconds());
    return result;
  }
  if (opts.phase_hook) {
    opts.phase_hook("boundary_layer_mesh",
                      PhaseArtifacts{&result.boundary_layer, &result.mesh});
  }

  // Interface + inviscid layout.
  Timer t3;
  const InviscidDomain domain = [&] {
    AERO_TRACE_SPAN("pipeline", "inviscid_layout");
    return make_inviscid_domain(result.boundary_layer, opts, result.mesh);
  }();
  result.sizing = domain.sizing;
  result.timings.record("inviscid_layout", t3.seconds());

  // Phase 2 pool: inviscid decoupling + refinement.
  Timer t4;
  {
    AERO_TRACE_SPAN("pipeline", "inviscid_pool");
    if (!opts.merge_spill_dir.empty()) {
      pool_opts.spill_path = opts.merge_spill_dir + "/inviscid.spill";
    }
    std::vector<WorkUnit> initial;
    for (InviscidSubdomain& quad : initial_quadrants(domain)) {
      initial.push_back(
          WorkUnit{WorkUnit::Kind::kInviscidDecouple, {}, std::move(quad)});
    }
    initial.push_back(WorkUnit{WorkUnit::Kind::kInviscidDecouple,
                               {},
                               near_body_subdomain(domain)});
    result.inviscid_pool =
        run_pool(std::move(initial), domain.sizing, pool_opts, result.mesh);
  }
  publish_pool_metrics(result.inviscid_pool, "pool.inviscid.");
  result.timings.record("inviscid_pool", t4.seconds());
  if (opts.phase_hook) {
    opts.phase_hook("final_mesh",
                      PhaseArtifacts{&result.boundary_layer, &result.mesh});
  }

  fill_summary();
  result.status = worse(result.bl_pool.status, result.inviscid_pool.status);
  result.timings.record("total", total.seconds());
  return result;
}

ParallelMeshResult parallel_generate_mesh(const Options& opts,
                                          ProtocolTrace* trace) {
  std::vector<OptionIssue> issues = opts.validate();
  if (opts.ranks < 1) {
    issues.push_back({OptionIssue::Severity::kError, "ranks",
                      "parallel run requires ranks >= 1"});
  }
  for (const OptionIssue& i : issues) {
    if (i.is_error()) {
      // Thrown on the caller's thread, before any pool thread exists.
      throw std::invalid_argument(  // aerolint: allow(runtime-throw)
          "invalid options:\n" + format_issues(issues));
    }
  }
  FaultConfig faults;
  faults.enabled = opts.fault_rate > 0.0;
  faults.seed = opts.fault_seed;
  faults.drop_rate = opts.fault_rate;
  faults.duplicate_rate = opts.fault_rate / 2.0;
  faults.corrupt_rate = opts.fault_rate / 2.0;
  faults.delay_rate = opts.fault_rate / 2.0;
  PoolTuning tuning;
  tuning.rma = opts.rma;
  tuning.rma_threshold = opts.rma_threshold;
  tuning.coalesce_delay = std::chrono::microseconds(opts.coalesce_us);
  tuning.ack_timeout = std::chrono::milliseconds(opts.ack_timeout_ms);
  tuning.heartbeat_timeout =
      std::chrono::milliseconds(opts.heartbeat_timeout_ms);
  tuning.watchdog_timeout = std::chrono::seconds(scaled_watchdog_seconds(opts));
  tuning.threads_per_rank = opts.threads_per_rank;
  ResilienceOptions resilience;
  resilience.budget.wall_ms = opts.budget_wall_ms;
  resilience.budget.peak_rss_mb = opts.budget_rss_mb;
  resilience.stop_flag = opts.stop_flag;
  resilience.checkpoint_path = opts.checkpoint_path;
  resilience.resume_path = opts.resume_path;
  if (resilience.checkpoint_path.empty() && !resilience.resume_path.empty()) {
    // --resume without --checkpoint appends in place, so an interrupted
    // resume is itself resumable.
    resilience.checkpoint_path = resilience.resume_path;
  }
  resilience.config_hash = mesh_config_hash(opts);
  return parallel_generate_mesh(opts, opts.ranks, faults, trace, tuning,
                                resilience);
}

void publish_pool_metrics(const PoolStats& stats, const std::string& prefix) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const auto count = [&](const char* name, std::size_t v) {
    reg.counter(prefix + name).add(v);
  };
  count("steals", stats.steals);
  count("steal_denials", stats.steal_denials);
  count("transfer_bytes", stats.transfer_bytes);
  count("result_bytes", stats.result_bytes);
  count("unit_retries", stats.unit_retries);
  count("unit_failures", stats.unit_failures);
  count("fallback_units", stats.fallback_units);
  count("requeued_units", stats.requeued_units);
  count("dropped_messages", stats.dropped_messages);
  count("duplicated_messages", stats.duplicated_messages);
  count("corrupt_payloads", stats.corrupt_payloads);
  count("retransmits", stats.retransmits);
  count("dead_ranks", stats.dead_ranks);
  count("reclaimed_units", stats.reclaimed_units);
  count("missing_results", stats.missing_results);
  count("injected_corruptions", stats.injected_corruptions);
  count("delayed_messages", stats.delayed_messages);
  count("injected_unit_faults", stats.injected_unit_faults);
  count("comm_messages", stats.comm_messages);
  count("comm_bytes", stats.comm_bytes);
  count("zero_copy_hits", stats.zero_copy_hits);
  count("window_bytes", stats.window_bytes);
  count("coalesced_messages", stats.coalesced_messages);
  count("batch_rejects", stats.batch_rejects);
  count("buffer_pool_hits", stats.buffer_pool_hits);
  count("buffer_pool_misses", stats.buffer_pool_misses);
  std::size_t units = 0;
  for (const std::size_t t : stats.tasks_per_rank) units += t;
  count("units_processed", units);
  count("units_total", stats.units_total);
  count("units_done", stats.units_done);
  count("resumed_units", stats.resumed_units);
  count("checkpointed_units", stats.checkpointed_units);
  count("checkpoint_failures", stats.checkpoint_failures);
  count("injected_crashes", stats.injected_crashes);
  count("injected_mesher_kills", stats.injected_mesher_kills);
  count("spill_records", stats.spill_records);
  count("spill_bytes", stats.spill_bytes);
  count("spill_write_failures", stats.spill_write_failures);
  count("spill_max_record_bytes", stats.spill_max_record_bytes);
  count("merge_windows", stats.merge_windows);
  count("merge_resident_peak_bytes", stats.merge_resident_peak_bytes);
  reg.gauge(prefix + "wall_seconds").set(stats.wall_seconds);

  // Issue-mandated global names (aggregated across pool passes), alongside
  // the per-pass prefixed counters above.
  reg.counter("comm.bytes").add(stats.comm_bytes);
  reg.counter("comm.msgs").add(stats.comm_messages);
  reg.counter("comm.zero_copy_hits").add(stats.zero_copy_hits);
  reg.counter("pool.coalesced").add(stats.coalesced_messages);
}

std::vector<obs::RankLoad> rank_loads(const ParallelMeshResult& result) {
  const std::size_t n = std::max(result.bl_pool.tasks_per_rank.size(),
                                 result.inviscid_pool.tasks_per_rank.size());
  const double wall =
      result.bl_pool.wall_seconds + result.inviscid_pool.wall_seconds;
  std::vector<obs::RankLoad> rows(n);
  const auto at = [](const std::vector<double>& v, std::size_t i) {
    return i < v.size() ? v[i] : 0.0;
  };
  const auto atz = [](const std::vector<std::size_t>& v, std::size_t i) {
    return i < v.size() ? v[i] : std::size_t{0};
  };
  for (std::size_t r = 0; r < n; ++r) {
    obs::RankLoad& row = rows[r];
    row.rank = static_cast<int>(r);
    row.busy_seconds = at(result.bl_pool.busy_seconds_per_rank, r) +
                       at(result.inviscid_pool.busy_seconds_per_rank, r);
    row.comm_seconds = at(result.bl_pool.comm_seconds_per_rank, r) +
                       at(result.inviscid_pool.comm_seconds_per_rank, r);
    row.idle_seconds =
        std::max(0.0, wall - row.busy_seconds - row.comm_seconds);
    row.units = atz(result.bl_pool.tasks_per_rank, r) +
                atz(result.inviscid_pool.tasks_per_rank, r);
    row.donated = atz(result.bl_pool.donated_per_rank, r) +
                  atz(result.inviscid_pool.donated_per_rank, r);
    row.received = atz(result.bl_pool.received_per_rank, r) +
                   atz(result.inviscid_pool.received_per_rank, r);
    row.retransmits = atz(result.bl_pool.retransmits_per_rank, r) +
                      atz(result.inviscid_pool.retransmits_per_rank, r);
  }
  return rows;
}

}  // namespace aero
