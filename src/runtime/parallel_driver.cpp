#include "runtime/parallel_driver.hpp"

namespace aero {

ParallelMeshResult parallel_generate_mesh(const MeshGeneratorConfig& config,
                                          int nranks,
                                          const FaultConfig& faults,
                                          ProtocolTrace* trace) {
  ParallelMeshResult result;
  Timer total;

  Timer t1;
  result.boundary_layer = build_boundary_layer(config.airfoil, config.blayer);
  result.timings.record("boundary_layer_points", t1.seconds());
  if (config.phase_hook) {
    config.phase_hook("boundary_layer",
                      PhaseArtifacts{&result.boundary_layer, nullptr});
  }

  PoolOptions pool_opts;
  pool_opts.nranks = nranks;
  pool_opts.bl_decompose = config.bl_decompose;
  pool_opts.inviscid_target_triangles = config.inviscid_target_triangles;
  pool_opts.inviscid_max_level = config.inviscid_max_level;
  pool_opts.faults = faults;
  pool_opts.trace = trace;

  // Phase 1 pool: boundary-layer decomposition + triangulation. The sizing
  // is not needed by BL units; pass a placeholder.
  Timer t2;
  GradedSizing placeholder;
  {
    std::vector<WorkUnit> initial;
    initial.push_back(WorkUnit{WorkUnit::Kind::kBlDecompose,
                               make_root_subdomain(result.boundary_layer.points),
                               {}});
    result.bl_pool =
        run_pool(std::move(initial), placeholder, pool_opts, result.mesh);
  }
  // Ring restriction on the gathered mesh (root side).
  restrict_to_ring(result.mesh, result.boundary_layer);
  result.timings.record("boundary_layer_pool", t2.seconds());
  if (config.phase_hook) {
    config.phase_hook("boundary_layer_mesh",
                      PhaseArtifacts{&result.boundary_layer, &result.mesh});
  }

  // Interface + inviscid layout.
  Timer t3;
  const InviscidDomain domain =
      make_inviscid_domain(result.boundary_layer, config, result.mesh);
  result.sizing = domain.sizing;
  result.timings.record("inviscid_layout", t3.seconds());

  // Phase 2 pool: inviscid decoupling + refinement.
  Timer t4;
  {
    std::vector<WorkUnit> initial;
    for (InviscidSubdomain& quad : initial_quadrants(domain)) {
      initial.push_back(
          WorkUnit{WorkUnit::Kind::kInviscidDecouple, {}, std::move(quad)});
    }
    initial.push_back(WorkUnit{WorkUnit::Kind::kInviscidDecouple,
                               {},
                               near_body_subdomain(domain)});
    result.inviscid_pool =
        run_pool(std::move(initial), domain.sizing, pool_opts, result.mesh);
  }
  result.timings.record("inviscid_pool", t4.seconds());
  if (config.phase_hook) {
    config.phase_hook("final_mesh",
                      PhaseArtifacts{&result.boundary_layer, &result.mesh});
  }

  result.status = worse(result.bl_pool.status, result.inviscid_pool.status);
  result.timings.record("total", total.seconds());
  return result;
}

}  // namespace aero
