#include "runtime/cluster_model.hpp"

#include "core/pipeline_config.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "core/timer.hpp"
#include "runtime/work.hpp"

namespace aero {

namespace {

/// Measured processing of one BL unit, mirroring the pool's process_unit.
std::size_t instrument_bl(Subdomain sub, const DecomposeOptions& opts,
                          TaskGraph& graph, MergedMesh* mesh) {
  const std::size_t id = graph.nodes.size();
  graph.nodes.emplace_back();
  {
    WorkUnit probe{WorkUnit::Kind::kBlDecompose, sub, {}};
    graph.nodes[id].bytes = serialize(probe).size();
    graph.nodes[id].cost_estimate = sub.cost();
  }

  Timer timer;
  if (sufficiently_decomposed(sub, opts)) {
    sub.finalize();
    const auto owned = triangulate_subdomain_dc(sub);
    graph.nodes[id].seconds = timer.seconds();
    graph.nodes[id].label = "bl-leaf";
    if (mesh) {
      for (const auto& tri : owned) mesh->add_triangle(tri[0], tri[1], tri[2]);
    }
    return id;
  }
  graph.nodes[id].label = "bl-split";
  const std::size_t parent_size = sub.size();
  auto [l, r] = split_subdomain(std::move(sub));
  graph.nodes[id].seconds = timer.seconds();
  if (l.size() >= parent_size || r.size() >= parent_size) {
    Subdomain whole = l.size() >= parent_size ? std::move(l) : std::move(r);
    whole.level -= 1;
    whole.cuts.pop_back();
    whole.finalize();
    Timer t2;
    const auto owned = triangulate_subdomain_dc(whole);
    graph.nodes[id].seconds += t2.seconds();
    if (mesh) {
      for (const auto& tri : owned) mesh->add_triangle(tri[0], tri[1], tri[2]);
    }
    return id;
  }
  const std::size_t cl = instrument_bl(std::move(l), opts, graph, mesh);
  const std::size_t cr = instrument_bl(std::move(r), opts, graph, mesh);
  graph.nodes[id].children = {cl, cr};
  return id;
}

std::size_t instrument_inviscid(InviscidSubdomain sub,
                                const GradedSizing& sizing,
                                double target, int max_level,
                                TaskGraph& graph, MergedMesh* mesh) {
  const std::size_t id = graph.nodes.size();
  graph.nodes.emplace_back();
  {
    WorkUnit probe{WorkUnit::Kind::kInviscidDecouple, {}, sub};
    graph.nodes[id].bytes = serialize(probe).size();
  }
  graph.nodes[id].cost_estimate = sub.estimated_triangles(sizing);

  Timer timer;
  const bool leaf = !sub.hole_segments.empty() || sub.level >= max_level ||
                    graph.nodes[id].cost_estimate <= target;
  std::vector<InviscidSubdomain> children;
  if (!leaf) children = plus_split(sub, sizing);
  if (leaf || children.empty()) {
    const TriangulateResult r = refine_subdomain(sub, sizing);
    graph.nodes[id].seconds = timer.seconds();
    graph.nodes[id].label =
        sub.hole_segments.empty() ? "inviscid-leaf" : "near-body";
    if (mesh) mesh->append(r.mesh);
    return id;
  }
  graph.nodes[id].seconds = timer.seconds();
  graph.nodes[id].label = "inviscid-split";
  for (auto& c : children) {
    // The recursive call may reallocate graph.nodes: take the child id
    // first, then re-access the node.
    const std::size_t child = instrument_inviscid(std::move(c), sizing,
                                                  target, max_level, graph,
                                                  mesh);
    graph.nodes[id].children.push_back(child);
  }
  return id;
}

}  // namespace

TaskGraph build_task_graph(const Options& opts) {
  TaskGraph graph;

  Timer serial0;
  BoundaryLayer bl = build_boundary_layer(opts.airfoil, blayer_options(opts));
  graph.serial_before.push_back(0.0);
  graph.distributable_before.push_back(serial0.seconds());

  MergedMesh mesh;
  std::vector<std::size_t> phase0;
  phase0.push_back(instrument_bl(make_root_subdomain(bl.points),
                                 bl_decompose_options(opts), graph, &mesh));
  graph.phases.push_back(std::move(phase0));

  // Serial inter-phase work: ring restriction + interface extraction.
  Timer serial1;
  restrict_to_ring(mesh, bl);
  const InviscidDomain domain = make_inviscid_domain(bl, opts, mesh);
  graph.serial_before.push_back(0.0);
  graph.distributable_before.push_back(serial1.seconds());

  std::vector<std::size_t> phase1;
  for (InviscidSubdomain& quad : initial_quadrants(domain)) {
    phase1.push_back(instrument_inviscid(
        std::move(quad), domain.sizing, opts.inviscid_target_triangles,
        opts.inviscid_max_level, graph, nullptr));
  }
  phase1.push_back(instrument_inviscid(
      near_body_subdomain(domain), domain.sizing,
      opts.inviscid_target_triangles, opts.inviscid_max_level, graph,
      nullptr));
  graph.phases.push_back(std::move(phase1));
  return graph;
}

SimResult simulate_cluster(const TaskGraph& graph, int ranks,
                           const ClusterOptions& opts) {
  SimResult result;
  result.ranks = ranks;

  struct RankSim {
    // Queued (not executing) tasks, cost-descending.
    std::multimap<double, std::size_t, std::greater<>> queue;
    double queued_cost = 0.0;
    bool busy = false;
  };
  struct Event {
    double time;
    int rank;
    std::size_t node;
    bool operator>(const Event& o) const { return time > o.time; }
  };

  std::vector<RankSim> sims(static_cast<std::size_t>(ranks));
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  double now = 0.0;

  const auto start_task = [&](int rank, std::size_t node, double at) {
    sims[static_cast<std::size_t>(rank)].busy = true;
    events.push(Event{at + graph.nodes[node].seconds, rank, node});
  };

  // Hand each idle rank work: its own largest queued task, else steal the
  // largest queued task from the most-loaded rank (paying the window
  // staleness, message latency, and payload transfer time).
  const auto dispatch = [&](double at) {
    for (int r = 0; r < ranks; ++r) {
      RankSim& rs = sims[static_cast<std::size_t>(r)];
      if (rs.busy) continue;
      if (!rs.queue.empty()) {
        auto it = rs.queue.begin();
        const std::size_t node = it->second;
        rs.queued_cost -= it->first;
        rs.queue.erase(it);
        start_task(r, node, at);
        continue;
      }
      // Steal.
      int victim = -1;
      double best = 0.0;
      for (int v = 0; v < ranks; ++v) {
        if (v == r) continue;
        const RankSim& vs = sims[static_cast<std::size_t>(v)];
        if (!vs.queue.empty() && vs.queued_cost > best) {
          best = vs.queued_cost;
          victim = v;
        }
      }
      if (victim < 0) continue;  // nothing anywhere; stay idle
      RankSim& vs = sims[static_cast<std::size_t>(victim)];
      auto it = vs.queue.begin();
      const std::size_t node = it->second;
      vs.queued_cost -= it->first;
      vs.queue.erase(it);
      const double delay =
          opts.window_staleness_seconds + 2.0 * opts.latency_seconds +
          static_cast<double>(graph.nodes[node].bytes) /
              opts.bandwidth_bytes_per_s;
      result.comm_seconds += delay;
      ++result.steals;
      start_task(r, node, at + delay);
    }
  };

  for (std::size_t phase = 0; phase < graph.phases.size(); ++phase) {
    now += phase < graph.serial_before.size() ? graph.serial_before[phase]
                                              : 0.0;
    if (phase < graph.distributable_before.size()) {
      now += graph.distributable_before[phase] / static_cast<double>(ranks);
    }
    RankSim& root = sims[0];
    for (const std::size_t n : graph.phases[phase]) {
      root.queue.emplace(graph.nodes[n].cost_estimate, n);
      root.queued_cost += graph.nodes[n].cost_estimate;
    }
    dispatch(now);
    while (!events.empty()) {
      const Event ev = events.top();
      events.pop();
      now = std::max(now, ev.time);
      RankSim& rs = sims[static_cast<std::size_t>(ev.rank)];
      rs.busy = false;
      for (const std::size_t child : graph.nodes[ev.node].children) {
        rs.queue.emplace(graph.nodes[child].cost_estimate, child);
        rs.queued_cost += graph.nodes[child].cost_estimate;
      }
      result.busy_seconds += graph.nodes[ev.node].seconds;
      dispatch(now);
    }
  }

  result.makespan_seconds = now;
  result.speedup = graph.total_seconds() / now;
  result.efficiency = result.speedup / static_cast<double>(ranks);
  return result;
}

std::vector<SimResult> strong_scaling_sweep(const TaskGraph& graph,
                                            const std::vector<int>& rank_counts,
                                            const ClusterOptions& opts) {
  std::vector<SimResult> out;
  out.reserve(rank_counts.size());
  for (const int p : rank_counts) {
    out.push_back(simulate_cluster(graph, p, opts));
  }
  return out;
}

}  // namespace aero
