#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "obs/annotations.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/bytes.hpp"
#include "runtime/comm.hpp"

namespace aero {

// ---------------------------------------------------------------------------
// Transfer frames.
//
// Every work-unit transfer and result gather is framed under a fresh
// per-dispatch nonce; acks and receiver-side deduplication key on the nonce,
// NOT the unit id (retransmissions and fabric-duplicated copies of one
// dispatch share its nonce and are dropped, while a unit that legitimately
// returns to a rank it visited before arrives under a fresh nonce and is
// accepted). Two frame kinds share the wire, distinguished by the leading
// byte and both protected by a header CRC so a corrupted kind or nonce
// cannot masquerade as a different dispatch:
//
//   inline (copy path):  [kind=0][nonce:8][hcrc:4][unit bytes...]
//   window (RMA path):   [kind=1][nonce:8][src:4][slot:4][len:8][digest:8]
//                        [hcrc:4]
//
// The inline frame carries the full serialized payload through the mailbox.
// The window frame is a 37-byte control message: the payload itself sits in
// the sender's PayloadWindow and moves to the receiver by ownership handoff
// (the in-process equivalent of MPI_Get against a registered window). The
// digest is a sampled fingerprint of the published bytes -- the window is
// outside the fault injector's reach, but a handoff that pairs a control
// frame with the wrong slot contents must still be detected.
// ---------------------------------------------------------------------------

constexpr std::size_t kInlineFrameHeader = 13;
constexpr std::size_t kWindowFrameSize = 37;

/// Decoded view of either frame kind. For inline frames `data/size` alias
/// the message payload (valid while the message lives); window frames carry
/// the handoff coordinates instead.
struct ParsedFrame {
  std::uint64_t nonce = 0;
  bool windowed = false;
  // Inline frames: the serialized unit bytes (CRC trailer included).
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  // Window frames: where to take the payload from, and what it should be.
  int src = -1;
  std::uint32_t slot = 0;
  std::uint64_t length = 0;
  std::uint64_t digest = 0;
};

/// Stamp the inline-frame header into `framed[0..13)`. `framed` must have
/// been produced by serialize(..., kInlineFrameHeader) so the serialized
/// payload already sits after the reserved header room -- sealing is a
/// 13-byte write, never a payload copy.
void seal_inline_frame(std::uint64_t nonce, std::vector<std::uint8_t>& framed);

/// Build the 37-byte control frame for a window transfer (fits ByteBuf
/// inline storage; the mailbox never heap-allocates for it).
ByteBuf make_window_frame(std::uint64_t nonce, int src, std::uint32_t slot,
                          std::uint64_t length, std::uint64_t digest);

/// Validate and decode a transfer frame; nullopt on truncation or header
/// corruption (the sender retransmits an intact copy).
std::optional<ParsedFrame> parse_frame(const ByteBuf& payload);

/// Work acknowledgements carry the transfer nonce plus a CRC so a corrupted
/// ack cannot erase the wrong in-flight entry (nonces are small integers; a
/// single flipped byte could otherwise alias another pending transfer).
ByteBuf make_ack(std::uint64_t nonce);
std::optional<std::uint64_t> parse_ack(const ByteBuf& b);

/// Sampled fingerprint of a published payload: length plus ~16 evenly spaced
/// bytes folded through splitmix64. Cheap enough for every handoff; strong
/// enough that a frame paired with the wrong or stale slot contents fails.
std::uint64_t payload_digest(const std::uint8_t* data, std::size_t n);

// ---------------------------------------------------------------------------
// Small-message coalescing batches.
//
//   [count:4] ([tag:4][len:4][bytes...])* [crc:4]
//
// The whole batch is one fabric message (one injector draw, one mailbox
// hop); a corrupted batch is dropped wholesale at unpack and the individual
// senders' ack/retransmit machinery recovers whatever mattered.
// ---------------------------------------------------------------------------

ByteBuf encode_batch(const std::vector<StagedMessage>& parts);

/// Unpack a batch payload into messages stamped with `from`; false (and no
/// output) when the batch CRC or structure is invalid.
bool decode_batch(const ByteBuf& payload, int from,
                  std::vector<Message>& out);

// ---------------------------------------------------------------------------

/// Per-rank registered payload window: the zero-copy half of a transfer.
/// The donor publishes the serialized payload under the dispatch nonce and
/// sends only a control frame; the receiver takes the bytes by ownership
/// handoff. Slots are single-take -- a duplicate control frame (fabric
/// duplicate or retransmission racing the ack) finds the slot already
/// consumed and is answered from the nonce dedupe, never by a second read.
///
/// Lifecycle of a slot:
///   publish -> take      (receiver consumed it; donor's release is a no-op)
///   publish -> release   (ack arrived first copy; bytes recycle to the pool)
///   publish -> reclaim   (dest died: bytes return to the donor if the dest
///                         never took them, nullopt if it did -- then the
///                         watchdog's queue reclamation owns recovery)
class PayloadWindow {
 public:
  explicit PayloadWindow(BufferPool* recycle = nullptr)
      : recycle_(recycle) {}

  /// Register `bytes` under `nonce`; returns the slot for the control frame.
  std::uint32_t publish(std::uint64_t nonce, std::vector<std::uint8_t> bytes);

  /// Ownership handoff: move the bytes out if `slot` is live and was
  /// published under `nonce`. Exactly-once -- a second take of the same slot
  /// returns nullopt, as does a nonce mismatch (stale or forged frame).
  std::optional<std::vector<std::uint8_t>> take(std::uint32_t slot,
                                                std::uint64_t nonce);

  /// Like take, but additionally checks the control frame's length and
  /// sampled digest against the slot contents BEFORE consuming it, so a
  /// frame that survived the header CRC with a damaged body cannot destroy
  /// the published payload (the slot stays live for the retransmission).
  std::optional<std::vector<std::uint8_t>> take(std::uint32_t slot,
                                                std::uint64_t nonce,
                                                std::uint64_t length,
                                                std::uint64_t digest);

  /// Donor-side disposal after the ack: drop the slot, recycling untaken
  /// bytes into the buffer pool. Idempotent.
  void release(std::uint32_t slot, std::uint64_t nonce);

  /// Donor-side recovery when the destination is declared dead: the bytes
  /// come back if the dest never took them; nullopt means the dest accepted
  /// the payload before dying.
  std::optional<std::vector<std::uint8_t>> reclaim(std::uint32_t slot,
                                                   std::uint64_t nonce);

  std::size_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  std::size_t taken() const { return taken_.load(std::memory_order_relaxed); }
  std::size_t live() const;

 private:
  struct Slot {
    std::uint64_t nonce = 0;
    std::vector<std::uint8_t> bytes;
    bool taken = false;
  };

  mutable Mutex m_ AERO_LOCK_NAME("rt.payload_window", 65)
      AERO_ACQUIRED_BEFORE("rt.buffer_pool");
  std::map<std::uint32_t, Slot> slots_ AERO_GUARDED_BY(m_);
  std::uint32_t next_slot_ AERO_GUARDED_BY(m_) = 1;
  BufferPool* recycle_ = nullptr;
  std::atomic<std::size_t> published_ AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> taken_ AERO_ATOMIC_ROLE(counter){0};
};

}  // namespace aero
