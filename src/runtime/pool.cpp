#include "runtime/pool.hpp"

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "io/timer.hpp"

namespace aero {

namespace {

/// Per-rank shared state between its mesher and communicator threads.
struct RankState {
  std::mutex m;
  std::condition_variable cv;
  /// Cost-descending priority queue (paper: largest subdomains meshed first,
  /// small ones saved for endgame load balancing).
  std::multimap<double, WorkUnit, std::greater<>> queue;
  double queued_cost = 0.0;
  bool shutdown = false;
  std::vector<std::array<Vec2, 3>> triangles;
  std::size_t tasks_done = 0;
};

struct SharedState {
  Communicator comm;
  RmaWindow window;
  std::atomic<long> outstanding{0};
  std::atomic<std::size_t> steals{0};
  std::atomic<std::size_t> denials{0};
  std::atomic<std::size_t> transfer_bytes{0};
  const GradedSizing* sizing = nullptr;
  const PoolOptions* opts = nullptr;

  SharedState(int nranks) : comm(nranks), window(static_cast<std::size_t>(nranks)) {}
};

void push_local(SharedState& shared, RankState& rs, WorkUnit unit) {
  const double c = unit.cost(*shared.sizing);
  {
    std::lock_guard lock(rs.m);
    rs.queue.emplace(c, std::move(unit));
    rs.queued_cost += c;
  }
  rs.cv.notify_one();
}

/// Process one unit on `rank`: either split it (spawning new local units) or
/// mesh it (collecting inside triangles).
void process_unit(SharedState& shared, RankState& rs, WorkUnit unit) {
  const PoolOptions& opts = *shared.opts;
  // Children are accounted in `outstanding` BEFORE they are enqueued, so the
  // counter can never reach zero while spawned work is still invisible.
  if (unit.kind == WorkUnit::Kind::kBlDecompose) {
    const std::size_t parent_size = unit.bl.size();
    if (sufficiently_decomposed(unit.bl, opts.bl_decompose)) {
      unit.bl.finalize();
      for (const auto& tri : triangulate_subdomain_dc(unit.bl)) {
        rs.triangles.push_back(tri);
      }
    } else {
      auto [l, r] = split_subdomain(std::move(unit.bl));
      if (l.size() >= parent_size || r.size() >= parent_size) {
        Subdomain whole = l.size() >= parent_size ? std::move(l) : std::move(r);
        whole.level -= 1;
        whole.cuts.pop_back();
        whole.finalize();
        for (const auto& tri : triangulate_subdomain_dc(whole)) {
          rs.triangles.push_back(tri);
        }
      } else {
        shared.outstanding.fetch_add(2);
        push_local(shared, rs, WorkUnit{WorkUnit::Kind::kBlDecompose,
                                        std::move(l), {}});
        push_local(shared, rs, WorkUnit{WorkUnit::Kind::kBlDecompose,
                                        std::move(r), {}});
      }
    }
  } else {
    const bool leaf =
        !unit.inv.hole_segments.empty() ||
        unit.inv.level >= opts.inviscid_max_level ||
        unit.inv.estimated_triangles(*shared.sizing) <=
            opts.inviscid_target_triangles;
    std::vector<InviscidSubdomain> children;
    if (!leaf) children = plus_split(unit.inv, *shared.sizing);
    if (leaf || children.empty()) {
      const TriangulateResult r = refine_subdomain(unit.inv, *shared.sizing);
      r.mesh.for_each_triangle([&](TriIndex t) {
        const MeshTri& mt = r.mesh.tri(t);
        if (!mt.inside) return;
        rs.triangles.push_back({r.mesh.point(mt.v[0]), r.mesh.point(mt.v[1]),
                                r.mesh.point(mt.v[2])});
      });
    } else {
      shared.outstanding.fetch_add(static_cast<long>(children.size()));
      for (auto& c : children) {
        push_local(shared, rs,
                   WorkUnit{WorkUnit::Kind::kInviscidDecouple, {}, std::move(c)});
      }
    }
  }
  ++rs.tasks_done;

  if (shared.outstanding.fetch_sub(1) == 1) {
    // Global termination: every created unit has completed.
    for (int r = 0; r < shared.comm.size(); ++r) {
      shared.comm.send(-1, r, kTagShutdown);
    }
  }
}

void mesher_main(SharedState& shared, std::vector<RankState>& ranks,
                 int rank) {
  RankState& rs = ranks[static_cast<std::size_t>(rank)];
  while (true) {
    WorkUnit unit;
    {
      std::unique_lock lock(rs.m);
      rs.cv.wait(lock, [&rs] { return rs.shutdown || !rs.queue.empty(); });
      if (rs.queue.empty()) {
        if (rs.shutdown) return;
        continue;
      }
      auto it = rs.queue.begin();  // largest cost first
      rs.queued_cost -= it->first;
      unit = std::move(it->second);
      rs.queue.erase(it);
    }
    process_unit(shared, rs, std::move(unit));
    // Give the communicator threads a scheduling window (matters on
    // oversubscribed machines; a real cluster has a core per thread).
    std::this_thread::yield();
  }
}

void communicator_main(SharedState& shared, std::vector<RankState>& ranks,
                       int rank) {
  RankState& rs = ranks[static_cast<std::size_t>(rank)];
  const PoolOptions& opts = *shared.opts;
  bool requested = false;
  auto last_update = std::chrono::steady_clock::now();

  while (true) {
    if (auto msg = shared.comm.try_recv(rank)) {
      switch (msg->tag) {
        case kTagWorkRequest: {
          // Donate the largest queued unit if we can spare it.
          std::optional<WorkUnit> donation;
          {
            std::lock_guard lock(rs.m);
            if (rs.queue.size() > 1 &&
                rs.queued_cost > opts.steal_threshold) {
              auto it = rs.queue.begin();
              rs.queued_cost -= it->first;
              donation = std::move(it->second);
              rs.queue.erase(it);
            }
          }
          if (donation) {
            auto bytes = serialize(*donation);
            shared.transfer_bytes += bytes.size();
            shared.steals += 1;
            shared.comm.send(rank, msg->from, kTagWorkTransfer,
                             std::move(bytes));
          } else {
            shared.denials += 1;
            shared.comm.send(rank, msg->from, kTagNoWork);
          }
          break;
        }
        case kTagWorkTransfer: {
          WorkUnit unit = deserialize_work(msg->payload);
          push_local(shared, rs, std::move(unit));
          requested = false;
          break;
        }
        case kTagNoWork:
          requested = false;
          break;
        case kTagShutdown: {
          {
            std::lock_guard lock(rs.m);
            rs.shutdown = true;
          }
          rs.cv.notify_all();
          if (rank != 0) {
            // Gather this rank's triangles at the root ("the points are
            // gathered at the root process").
            shared.comm.send(rank, 0, kTagResult,
                             serialize_triangles(rs.triangles));
          }
          return;
        }
        default:
          break;
      }
      continue;  // drain the mailbox before housekeeping
    }

    const auto now = std::chrono::steady_clock::now();
    if (now - last_update >= opts.update_period) {
      last_update = now;
      double cost;
      {
        std::lock_guard lock(rs.m);
        cost = rs.queued_cost;
      }
      shared.window.put(static_cast<std::size_t>(rank), cost);

      if (!requested && cost < opts.steal_threshold) {
        // Fetch the global loads and ask the busiest rank for work.
        const std::vector<double> loads = shared.window.get_all();
        int target = -1;
        double best = opts.steal_threshold;
        for (int r = 0; r < shared.comm.size(); ++r) {
          if (r != rank && loads[static_cast<std::size_t>(r)] > best) {
            best = loads[static_cast<std::size_t>(r)];
            target = r;
          }
        }
        if (target >= 0) {
          shared.comm.send(rank, target, kTagWorkRequest);
          requested = true;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

}  // namespace

PoolStats run_pool(std::vector<WorkUnit> initial, const GradedSizing& sizing,
                   const PoolOptions& opts, MergedMesh& out) {
  PoolStats stats;
  Timer timer;

  SharedState shared(opts.nranks);
  shared.sizing = &sizing;
  shared.opts = &opts;
  shared.outstanding = static_cast<long>(initial.size());

  std::vector<RankState> ranks(static_cast<std::size_t>(opts.nranks));
  for (auto& unit : initial) {
    push_local(shared, ranks[0], std::move(unit));
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(opts.nranks) * 2);
  for (int r = 0; r < opts.nranks; ++r) {
    threads.emplace_back(mesher_main, std::ref(shared), std::ref(ranks), r);
    threads.emplace_back(communicator_main, std::ref(shared), std::ref(ranks),
                         r);
  }
  for (auto& t : threads) t.join();

  // Root-side gather: rank 0's own triangles plus every other rank's
  // serialized soup (already sitting in rank 0's mailbox).
  for (const auto& tri : ranks[0].triangles) {
    out.add_triangle(tri[0], tri[1], tri[2]);
  }
  int results = 0;
  while (results < opts.nranks - 1) {
    const Message msg = shared.comm.recv(0);
    if (msg.tag != kTagResult) continue;
    stats.result_bytes += msg.payload.size();
    for (const auto& tri : deserialize_triangles(msg.payload)) {
      out.add_triangle(tri[0], tri[1], tri[2]);
    }
    ++results;
  }

  stats.steals = shared.steals;
  stats.steal_denials = shared.denials;
  stats.transfer_bytes = shared.transfer_bytes;
  for (const auto& rs : ranks) stats.tasks_per_rank.push_back(rs.tasks_done);
  stats.wall_seconds = timer.seconds();
  return stats;
}

}  // namespace aero
