#include "runtime/pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <thread>

#include "core/timer.hpp"
#include "io/journal.hpp"
#include "obs/bench_report.hpp"
#include "obs/trace.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/rma.hpp"

namespace aero {

namespace {

/// Per-rank shared state between its mesher and communicator threads.
struct RankState {
  Mutex m AERO_LOCK_NAME("pool.rank", 10) AERO_ACQUIRED_BEFORE("pool.results");
  CondVar cv;
  /// Cost-descending priority queue (paper: largest subdomains meshed first,
  /// small ones saved for endgame load balancing).
  std::multimap<double, WorkUnit, std::greater<>> queue AERO_GUARDED_BY(m);
  double queued_cost AERO_GUARDED_BY(m) = 0.0;
  bool shutdown AERO_GUARDED_BY(m) = false;
  /// Units that exhausted this rank's retries, awaiting a reliable re-queue
  /// to another rank (drained by the communicator thread).
  std::vector<WorkUnit> retry_outbox AERO_GUARDED_BY(m);
  /// Not lock-guarded: owned by the mesher thread until it observes
  /// `shutdown` (set under `m`, which orders the hand-off), then read by the
  /// communicator thread for the result gather.
  std::vector<std::array<Vec2, 3>> triangles;
  std::size_t tasks_done = 0;

  /// Load accounting with the same ownership discipline as `triangles`: the
  /// mesher thread writes busy_seconds, the communicator thread writes the
  /// rest, and run_pool reads them only after the threads join.
  double busy_seconds = 0.0;   ///< mesher time spent inside units
  double comm_seconds = 0.0;   ///< communicator time spent handling messages
  std::size_t donated = 0;     ///< units donated to work stealers
  std::size_t received = 0;    ///< transfers accepted fresh (non-duplicate)
  std::size_t retransmits_sent = 0;  ///< unacked payloads this rank resent

  /// Units this rank's mesher has finished processing (mesher-thread local;
  /// drives the injector's crash/kill thresholds).
  std::size_t mesher_units = 0;
  /// Injected process crash: both of this rank's threads exit silently.
  std::atomic<bool> crashed AERO_ATOMIC_ROLE(flag){false};
  /// Set when the mesher thread returns (any path). A draining communicator
  /// waits on it before reading `triangles` for the result gather.
  std::atomic<bool> mesher_exited AERO_ATOMIC_ROLE(flag){false};
};

struct SharedState {
  Communicator comm;
  RmaWindow window;
  FaultInjector injector;
  /// Recycles serialization buffers across ranks and threads (donor
  /// serializes, receiver releases): the steady-state hot path reuses
  /// buffers instead of allocating.
  BufferPool buffers;
  /// Per-rank registered payload windows for zero-copy transfers (deque:
  /// PayloadWindow owns a mutex and cannot move).
  std::deque<PayloadWindow> payload_windows;
  std::atomic<long> outstanding AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::uint64_t> next_unit_id AERO_ATOMIC_ROLE(counter){0};
  /// Per-dispatch transfer nonces (see make_frame). Starts at 1 so 0 never
  /// names a live transfer.
  std::atomic<std::uint64_t> next_transfer_seq AERO_ATOMIC_ROLE(counter){1};
  std::atomic<bool> shutdown_broadcast AERO_ATOMIC_ROLE(flag){false};
  std::atomic<bool> abort AERO_ATOMIC_ROLE(flag){false};
  std::atomic<bool> gather_timed_out AERO_ATOMIC_ROLE(flag){false};
  /// Graceful drain (budget exhausted / external stop): meshers stop taking
  /// units, communicators run the normal bounded result gather, and the
  /// pool reports kStopped with completeness accounting -- unlike `abort`,
  /// which skips the gather entirely.
  std::atomic<bool> drain AERO_ATOMIC_ROLE(flag){false};
  /// StopCause of a drain.
  std::atomic<int> stop_cause AERO_ATOMIC_ROLE(flag){0};
  /// Ranks declared dead by the heartbeat watchdog.
  std::unique_ptr<std::atomic<bool>[]> dead AERO_ATOMIC_ROLE(flag);
  /// Communicator threads that exited cleanly (dead ranks never set this).
  std::unique_ptr<std::atomic<bool>[]> comm_exited AERO_ATOMIC_ROLE(flag);

  std::atomic<std::size_t> steals AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> denials AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> transfer_bytes AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> result_bytes AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> unit_retries AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> unit_failures AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> requeues AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> retransmits AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> crc_failures AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> dead_count AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> reclaimed AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> zero_copy AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> window_bytes AERO_ATOMIC_ROLE(counter){0};

  // Run-level resilience accounting.
  /// Units that produced output.
  std::atomic<std::size_t> completed AERO_ATOMIC_ROLE(counter){0};
  /// Leaves replayed from a journal.
  std::atomic<std::size_t> resumed AERO_ATOMIC_ROLE(counter){0};
  /// Injected rank crashes fired.
  std::atomic<std::size_t> crashes AERO_ATOMIC_ROLE(counter){0};
  /// Injected mesher kills fired.
  std::atomic<std::size_t> mesher_kills AERO_ATOMIC_ROLE(counter){0};

  /// Units escalated to the root-side sequential fallback (meshed after the
  /// pool terminates, outside the fault injector's reach).
  Mutex fallback_m AERO_LOCK_NAME("pool.fallback", 20);
  std::vector<WorkUnit> fallback AERO_GUARDED_BY(fallback_m);

  /// Result gather, keyed by sender rank (deduplicates resends).
  Mutex results_m AERO_LOCK_NAME("pool.results", 30);
  std::map<int, std::vector<std::array<Vec2, 3>>> results
      AERO_GUARDED_BY(results_m);

  /// Out-of-core finalization (see PoolOptions::spill_path). `spilling` is
  /// decided once before any worker thread starts; the writer serializes its
  /// own appends. Blocks whose spill write failed fall back to this resident
  /// overflow map, keyed identically to their would-be spill records, so the
  /// merge walks one global key order regardless of where a block ended up.
  bool spilling = false;
  JournalWriter spill;
  std::atomic<std::uint64_t> spill_seq AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> spill_records AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> spill_payload_bytes AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> spill_max_record AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> spill_failures AERO_ATOMIC_ROLE(counter){0};
  Mutex overflow_m AERO_LOCK_NAME("pool.spill_overflow", 35);
  std::map<std::uint64_t, std::vector<std::array<Vec2, 3>>> spill_overflow
      AERO_GUARDED_BY(overflow_m);

  std::chrono::steady_clock::time_point deadline;
  const GradedSizing* sizing = nullptr;
  const PoolOptions* opts = nullptr;

  explicit SharedState(const PoolOptions& o)
      : comm(o.nranks),
        window(static_cast<std::size_t>(o.nranks)),
        injector(o.faults),
        dead(std::make_unique<std::atomic<bool>[]>(
            static_cast<std::size_t>(o.nranks))),
        comm_exited(std::make_unique<std::atomic<bool>[]>(
            static_cast<std::size_t>(o.nranks))) {
    for (int r = 0; r < o.nranks; ++r) {
      dead[static_cast<std::size_t>(r)].store(false);
      comm_exited[static_cast<std::size_t>(r)].store(false);
      payload_windows.emplace_back(&buffers);
    }
    comm.set_fault_injector(&injector);
    CoalesceOptions co;
    co.flush_delay = o.tuning.coalesce_delay;
    comm.set_coalescing(co);
  }
};

/// Record one protocol event on the attached trace (no-op when auditing is
/// off). Every site below mirrors an invariant audit_protocol() checks, so a
/// new protocol path must record its events or the audit reports it as a
/// completeness violation.
void trace_event(SharedState& shared, ProtocolEvent::Kind kind,
                 std::uint64_t id, int rank = -1, int peer = -1) {
  if (shared.opts->trace != nullptr) {
    shared.opts->trace->record(kind, id, rank, peer);
  }
}

/// Spill-record key of a finalized block. Root blocks (rank 0's own leaves,
/// resume replays, fallback output) take (0 << 32) | seq with seq in append
/// order; rank r's single gathered soup takes (r << 32). Sorting all keys
/// ascending therefore replays exactly the in-RAM merge order -- rank 0's
/// triangles in append order, then each rank's soup rank-ascending -- which
/// is what keeps the spill-merged mesh bit-identical to the resident one.
std::uint64_t spill_rank_key(int rank) {
  return static_cast<std::uint64_t>(rank) << 32;
}

/// Stream one finalized triangle block to the root's spill journal under
/// `key`, tagged with the same "ASUP" prefix as checkpoint soups. A write
/// failure (disk full, torn mount) degrades the block to the resident
/// overflow map -- out-of-core finalization is an optimization, never a
/// correctness dependency.
void spill_block(SharedState& shared, std::uint64_t key,
                 std::vector<std::array<Vec2, 3>> tris) {
  if (tris.empty()) return;
  std::uint8_t soup_head[kSoupHeaderSize];
  // ASUP tag framing (8 bytes), not a payload copy; the triangle bytes go
  // to the spill journal by pointer.
  std::memcpy(soup_head, kSoupMagic.data(), kSoupMagic.size());  // aerolint: allow(payload-copy)
  std::memcpy(soup_head + 4, &kSoupVersion, sizeof(kSoupVersion));  // aerolint: allow(payload-copy)
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(tris.data());
  const std::size_t n = tris.size() * sizeof(std::array<Vec2, 3>);
  if (shared.spill.append(key, soup_head, sizeof(soup_head), bytes, n)) {
    shared.spill_records.fetch_add(1);
    shared.spill_payload_bytes.fetch_add(n + sizeof(soup_head));
    const std::size_t record = n + sizeof(soup_head);
    std::size_t prev = shared.spill_max_record.load();
    while (prev < record &&
           !shared.spill_max_record.compare_exchange_weak(prev, record)) {
    }
    return;
  }
  shared.spill_failures.fetch_add(1);
  const MutexLock lock(shared.overflow_m);
  shared.spill_overflow.emplace(key, std::move(tris));
}

/// Deserialize the unit carried by an inline transfer frame we built
/// ourselves (the in-flight master copy; intact by construction).
WorkUnit unit_from_inline_frame(const ByteBuf& frame) {
  return deserialize_work(frame.data() + kInlineFrameHeader,
                          frame.size() - kInlineFrameHeader);
}

/// A transfer sent but not yet acknowledged. On the copy path `payload` is
/// the full framed master copy (the fabric may corrupt the transmitted
/// copy); on the window path it is only the 37-byte control frame -- the
/// payload master lives in this rank's PayloadWindow slot until the ack
/// releases it or a dead destination lets us reclaim it.
struct InFlight {
  int dest = -1;
  int tag = 0;
  ByteBuf payload;
  std::chrono::steady_clock::time_point deadline;
  int tries = 0;
  bool windowed = false;
  std::uint32_t slot = 0;
};

/// Frame and dispatch one unit to `dest` under a fresh nonce, choosing the
/// transport by serialized size: at or above the RMA threshold the payload
/// is published into this rank's window (zero-copy handoff; the mailbox
/// carries a control frame), below it the whole frame rides the mailbox as
/// before. Frames and in-flight bookkeeping are recorded identically so the
/// ack/retransmit/dead-dest machinery is path-agnostic.
void send_unit(SharedState& shared, int rank, int dest, int tag,
               const WorkUnit& unit,
               std::map<std::uint64_t, InFlight>& in_flight) {
  const PoolOptions& opts = *shared.opts;
  const std::size_t payload_size = serialized_size(unit);
  const bool windowed = opts.tuning.rma &&
                        payload_size >= opts.tuning.rma_threshold;
  const std::uint64_t nonce = shared.next_transfer_seq.fetch_add(1);
  shared.transfer_bytes.fetch_add(payload_size);
  if (windowed) {
    AERO_TRACE_SPAN("rma", "publish");
    auto bytes = serialize(unit, &shared.buffers);
    const std::uint64_t len = bytes.size();
    const std::uint64_t digest = payload_digest(bytes.data(), bytes.size());
    const std::uint32_t slot =
        shared.payload_windows[static_cast<std::size_t>(rank)].publish(
            nonce, std::move(bytes));
    trace_event(shared, ProtocolEvent::Kind::kWindowPublished, nonce, rank,
                dest);
    trace_event(shared, ProtocolEvent::Kind::kDispatch, nonce, rank, dest);
    ByteBuf frame = make_window_frame(nonce, rank, slot, len, digest);
    ByteBuf copy = frame;
    in_flight[nonce] = InFlight{dest, tag, std::move(frame),
                                mono_now() + opts.tuning.ack_timeout, 0, true,
                                slot};
    shared.comm.send(rank, dest, tag, std::move(copy));
  } else {
    auto bytes = serialize(unit, &shared.buffers, kInlineFrameHeader);
    seal_inline_frame(nonce, bytes);
    trace_event(shared, ProtocolEvent::Kind::kDispatch, nonce, rank, dest);
    ByteBuf frame(std::move(bytes));
    ByteBuf copy = frame;
    in_flight[nonce] = InFlight{dest, tag, std::move(frame),
                                mono_now() + opts.tuning.ack_timeout, 0, false,
                                0};
    shared.comm.send(rank, dest, tag, std::move(copy));
  }
}

void push_local(SharedState& shared, RankState& rs, WorkUnit unit) {
  const double c = unit.cost(*shared.sizing);
  {
    MutexLock lock(rs.m);
    rs.queue.emplace(c, std::move(unit));
    rs.queued_cost += c;
  }
  rs.cv.notify_one();
}

/// A completed (or fallback-escalated) unit leaves the outstanding count;
/// the rank that drives it to zero broadcasts global termination.
void complete_unit(SharedState& shared) {
  if (shared.outstanding.fetch_sub(1) == 1) {
    shared.shutdown_broadcast.store(true);
    for (int r = 0; r < shared.comm.size(); ++r) {
      shared.comm.send(-1, r, kTagShutdown);
    }
  }
}

/// Expand one unit: either split it (emitting child units) or mesh it
/// (emitting inside triangles). Pure with respect to `unit`, so a throwing
/// attempt can be retried from the unchanged input; nothing is committed to
/// shared state here.
void expand_unit(const GradedSizing& sizing, const PoolOptions& opts,
                 const WorkUnit& unit, std::vector<WorkUnit>& children,
                 std::vector<std::array<Vec2, 3>>& triangles) {
  if (unit.kind == WorkUnit::Kind::kBlDecompose) {
    const std::size_t parent_size = unit.bl.size();
    if (sufficiently_decomposed(unit.bl, opts.bl_decompose)) {
      Subdomain s = unit.bl;
      s.finalize();
      triangles = triangulate_subdomain_dc(s);
    } else {
      Subdomain parent = unit.bl;
      auto [l, r] = split_subdomain(std::move(parent));
      if (l.size() >= parent_size || r.size() >= parent_size) {
        Subdomain whole = l.size() >= parent_size ? std::move(l) : std::move(r);
        whole.level -= 1;
        whole.cuts.pop_back();
        whole.finalize();
        triangles = triangulate_subdomain_dc(whole);
      } else {
        children.push_back(
            WorkUnit{WorkUnit::Kind::kBlDecompose, std::move(l), {}});
        children.push_back(
            WorkUnit{WorkUnit::Kind::kBlDecompose, std::move(r), {}});
      }
    }
  } else {
    const bool leaf =
        !unit.inv.hole_segments.empty() ||
        unit.inv.level >= opts.inviscid_max_level ||
        unit.inv.estimated_triangles(sizing) <= opts.inviscid_target_triangles;
    std::vector<InviscidSubdomain> kids;
    if (!leaf) kids = plus_split(unit.inv, sizing);
    if (leaf || kids.empty()) {
      const TriangulateResult r =
          refine_subdomain(unit.inv, sizing, opts.tuning.threads_per_rank);
      r.mesh.for_each_triangle([&](TriIndex t) {
        const MeshTri& mt = r.mesh.tri(t);
        if (!mt.inside) return;
        triangles.push_back({r.mesh.point(mt.v[0]), r.mesh.point(mt.v[1]),
                             r.mesh.point(mt.v[2])});
      });
    } else {
      for (auto& c : kids) {
        children.push_back(
            WorkUnit{WorkUnit::Kind::kInviscidDecouple, {}, std::move(c)});
      }
    }
  }
}

/// First rank (other than `self`) that has not already failed this unit and
/// is not known dead; -1 when the unit has nowhere left to go.
int pick_retry_rank(const SharedState& shared, int self, std::uint64_t mask) {
  for (int r = 0; r < shared.comm.size(); ++r) {
    if (r == self) continue;
    if (r < 64 && ((mask >> r) & 1ull)) continue;
    if (shared.dead[static_cast<std::size_t>(r)].load()) continue;
    return r;
  }
  return -1;
}

/// Process one unit on `rank` with exception containment: a throwing
/// attempt is retried locally, then re-queued to another rank, then
/// escalated to the root-side sequential fallback. Triangles and children
/// are committed only after a successful attempt, so a mid-expansion throw
/// never leaks partial output.
void process_unit(SharedState& shared, std::vector<RankState>& ranks, int rank,
                  WorkUnit unit) {
  RankState& rs = ranks[static_cast<std::size_t>(rank)];
  const PoolOptions& opts = *shared.opts;

  // Checkpoint/resume identity. The key hashes the unit's *content* (id and
  // fault history excluded), so a leaf finished by a previous interrupted
  // run is recognized here no matter which rank or schedule produced it.
  std::uint64_t key = 0;
  if (opts.checkpoint != nullptr || opts.resume != nullptr) {
    key = subdomain_key(unit);
  }
  if (opts.resume != nullptr) {
    if (const auto* stored = opts.resume->find(key)) {
      if (rank == 0 && shared.spilling) {
        spill_block(shared, shared.spill_seq.fetch_add(1), *stored);
      } else {
        rs.triangles.insert(rs.triangles.end(), stored->begin(),
                            stored->end());
      }
      ++rs.tasks_done;
      shared.resumed.fetch_add(1);
      shared.completed.fetch_add(1);
      if (opts.checkpoint != nullptr) {
        // Re-record into the active journal (a no-op when appending to the
        // journal the record came from; keeps a fresh journal complete).
        opts.checkpoint->record(key, *stored);
      }
      AERO_TRACE_INSTANT_ARG("pool", "resume_hit", unit.id);
      trace_event(shared, ProtocolEvent::Kind::kUnitCompleted, unit.id, rank);
      complete_unit(shared);
      return;
    }
  }

  std::vector<WorkUnit> children;
  std::vector<std::array<Vec2, 3>> triangles;
  bool ok = false;
  for (int attempt = 0; attempt <= opts.max_unit_retries; ++attempt) {
    if (attempt > 0) shared.unit_retries.fetch_add(1);
    children.clear();
    triangles.clear();
    try {
      if (shared.injector.unit_should_fail(unit.id)) {
        throw std::runtime_error("injected unit fault");
      }
      expand_unit(*shared.sizing, opts, unit, children, triangles);
      ok = true;
      break;
    } catch (...) {
      // Retry from the unchanged unit; fall through on exhaustion.
    }
  }

  if (ok) {
    if (!children.empty()) {
      // Children are accounted in `outstanding` BEFORE they are enqueued, so
      // the counter can never reach zero while spawned work is invisible.
      shared.outstanding.fetch_add(static_cast<long>(children.size()));
      for (auto& c : children) {
        c.id = shared.next_unit_id.fetch_add(1);
        trace_event(shared, ProtocolEvent::Kind::kUnitCreated, c.id, rank);
        push_local(shared, rs, std::move(c));
      }
    } else if (opts.checkpoint != nullptr &&
               !opts.checkpoint->record(key, triangles)) {
      // The leaf is journaled BEFORE it is counted complete, so a crash
      // right after loses nothing. A failed append is absorbed: the run
      // continues unjournaled and the sink counts the failure.
      AERO_TRACE_INSTANT_ARG("pool", "checkpoint_write_failed", unit.id);
    }
    if (rank == 0 && shared.spilling) {
      spill_block(shared, shared.spill_seq.fetch_add(1), std::move(triangles));
    } else {
      rs.triangles.insert(rs.triangles.end(), triangles.begin(),
                          triangles.end());
    }
    ++rs.tasks_done;
    shared.completed.fetch_add(1);
    trace_event(shared, ProtocolEvent::Kind::kUnitCompleted, unit.id, rank);
    complete_unit(shared);
    return;
  }

  shared.unit_failures.fetch_add(1);
  if (rank < 64) unit.failed_ranks |= 1ull << rank;
  if (pick_retry_rank(shared, rank, unit.failed_ranks) >= 0) {
    // Hand to our communicator for a reliable (acked) re-queue; the unit
    // stays outstanding until its new host completes it.
    {
      MutexLock lock(rs.m);
      rs.retry_outbox.push_back(std::move(unit));
    }
    rs.cv.notify_one();
  } else {
    trace_event(shared, ProtocolEvent::Kind::kUnitFallback, unit.id, rank);
    {
      MutexLock lock(shared.fallback_m);
      shared.fallback.push_back(std::move(unit));
    }
    complete_unit(shared);
  }
}

void mesher_main(SharedState& shared, std::vector<RankState>& ranks,
                 int rank) {
  if (shared.injector.rank_dead(rank)) return;
  AERO_TRACE_THREAD("mesher", rank);
  RankState& rs = ranks[static_cast<std::size_t>(rank)];
  while (true) {
    WorkUnit unit;
    {
      UniqueLock lock(rs.m);
      while (!rs.shutdown && rs.queue.empty()) lock.wait(rs.cv);
      if (shared.abort.load()) return;
      // A drain stops meshing immediately: queued units stay unprocessed
      // and are reported through the completeness accounting.
      if (shared.drain.load()) return;
      if (rs.queue.empty()) {
        if (rs.shutdown) return;
        continue;
      }
      auto it = rs.queue.begin();  // largest cost first
      rs.queued_cost -= it->first;
      unit = std::move(it->second);
      rs.queue.erase(it);
    }
    {
      AERO_TRACE_SPAN("pool", "process_unit");
      const Timer busy;
      process_unit(shared, ranks, rank, std::move(unit));
      rs.busy_seconds += busy.seconds();
    }
    ++rs.mesher_units;
    if (const std::size_t k = shared.injector.kill_mesher_after(rank);
        k > 0 && rs.mesher_units >= k) {
      // Injected half-dead rank: the mesher dies but the communicator keeps
      // heartbeating, so dead-rank recovery never fires and any stranded
      // queue is caught only by the run budget or the watchdog bound.
      shared.mesher_kills.fetch_add(1);
      AERO_TRACE_INSTANT_ARG("pool", "mesher_killed", rank);
      return;
    }
    if (const std::size_t k = shared.injector.crash_after(rank);
        k > 0 && rs.mesher_units >= k) {
      // Injected process crash: both of this rank's threads exit silently.
      // Heartbeats stop, the monitor declares the rank dead, and its queued
      // (but not its meshed) work is reclaimed.
      rs.crashed.store(true);
      shared.crashes.fetch_add(1);
      AERO_TRACE_INSTANT_ARG("pool", "rank_crashed", rank);
      return;
    }
    // Give the communicator threads a scheduling window (matters on
    // oversubscribed machines; a real cluster has a core per thread).
    std::this_thread::yield();
  }
}

/// Accept one gathered result at the root (first copy wins; every copy is
/// acked so a resending rank can stop). Each rank sends exactly one result
/// under one nonce, so the rank-keyed results map doubles as the nonce
/// dedupe -- and for window frames the dedupe is consulted BEFORE the take,
/// so a resend racing the ack never consumes a second slot.
void root_accept_result(SharedState& shared, const Message& msg) {
  const auto parsed = parse_frame(msg.payload);
  if (!parsed) {
    shared.crc_failures.fetch_add(1);
    return;  // sender retransmits an intact control frame
  }
  const int from = msg.from;
  bool fresh;
  {
    MutexLock lock(shared.results_m);
    fresh = shared.results.find(from) == shared.results.end();
  }
  if (fresh) {
    std::vector<std::array<Vec2, 3>> tris;
    std::size_t logical_bytes = 0;
    if (parsed->windowed) {
      if (parsed->src < 0 || parsed->src >= shared.comm.size()) {
        shared.crc_failures.fetch_add(1);
        return;
      }
      auto bytes =
          shared.payload_windows[static_cast<std::size_t>(parsed->src)].take(
              parsed->slot, parsed->nonce, parsed->length, parsed->digest);
      if (!bytes) {
        shared.crc_failures.fetch_add(1);
        return;  // frame/slot mismatch; sender resends
      }
      trace_event(shared, ProtocolEvent::Kind::kWindowTaken, parsed->nonce, 0,
                  from);
      try {
        tris = deserialize_triangles(bytes->data(), bytes->size());
      } catch (const std::exception&) {
        shared.crc_failures.fetch_add(1);
        return;
      }
      shared.zero_copy.fetch_add(1);
      shared.window_bytes.fetch_add(bytes->size());
      logical_bytes = bytes->size();
      shared.buffers.release(std::move(*bytes));
    } else {
      try {
        tris = deserialize_triangles(parsed->data, parsed->size);
      } catch (const std::exception&) {
        shared.crc_failures.fetch_add(1);
        return;  // sender retransmits an intact copy
      }
      logical_bytes = parsed->size;
    }
    bool accepted = false;
    {
      MutexLock lock(shared.results_m);
      if (shared.spilling) {
        // Presence marker only: the triangles go to the spill file, while
        // the empty vector keeps the nonce dedupe and the missing-results
        // accounting exactly as in the resident path.
        accepted =
            shared.results
                .emplace(from, std::vector<std::array<Vec2, 3>>{})
                .second;
      } else {
        accepted = shared.results.emplace(from, std::move(tris)).second;
      }
      if (accepted) shared.result_bytes.fetch_add(logical_bytes);
    }
    if (accepted && shared.spilling) {
      spill_block(shared, spill_rank_key(from), std::move(tris));
    }
    trace_event(shared, ProtocolEvent::Kind::kAccept, parsed->nonce, 0, from);
  } else {
    trace_event(shared, ProtocolEvent::Kind::kDuplicate, parsed->nonce, 0,
                from);
  }
  shared.comm.send(0, from, kTagResultAck, make_ack(parsed->nonce));
}

/// Send `unit` to another rank over the reliable channel, or escalate it to
/// the root fallback when no candidate remains.
void dispatch_retry(SharedState& shared, int rank, WorkUnit unit,
                    std::map<std::uint64_t, InFlight>& in_flight) {
  const int dest = pick_retry_rank(shared, rank, unit.failed_ranks);
  if (dest < 0) {
    trace_event(shared, ProtocolEvent::Kind::kUnitFallback, unit.id, rank);
    {
      MutexLock lock(shared.fallback_m);
      shared.fallback.push_back(std::move(unit));
    }
    complete_unit(shared);
    return;
  }
  shared.requeues.fetch_add(1);
  trace_event(shared, ProtocolEvent::Kind::kUnitRequeued, unit.id, rank, dest);
  send_unit(shared, rank, dest, kTagFaultRetry, unit, in_flight);
}

void communicator_main(SharedState& shared, std::vector<RankState>& ranks,
                       int rank) {
  if (shared.injector.rank_dead(rank)) return;  // never sets comm_exited
  AERO_TRACE_THREAD("comm", rank);
  RankState& rs = ranks[static_cast<std::size_t>(rank)];
  const PoolOptions& opts = *shared.opts;
  const auto request_timeout = opts.tuning.ack_timeout * 4;
  bool requested = false;
  auto request_deadline = mono_now();
  auto last_update = mono_now();
  std::map<std::uint64_t, InFlight> in_flight;
  /// Transfer nonces already queued here: dedupes retransmissions and
  /// fabric-duplicated copies of one dispatch without rejecting a unit that
  /// legitimately returns later under a new nonce.
  std::set<std::uint64_t> seen_frames;
  bool shut = false;

  while (!shut && !shared.abort.load()) {
    if (rs.crashed.load()) return;  // injected crash: vanish silently
    shared.window.beat(static_cast<std::size_t>(rank));
    shared.comm.maybe_flush(rank);
    if (auto msg = shared.comm.try_recv(rank)) {
      AERO_TRACE_SPAN("pool", "handle_message");
      const Timer handling;
      switch (msg->tag) {
        case kTagWorkRequest: {
          // Donate the largest queued unit if we can spare it.
          std::optional<WorkUnit> donation;
          {
            MutexLock lock(rs.m);
            if (rs.queue.size() > 1 &&
                rs.queued_cost > opts.steal_threshold) {
              auto it = rs.queue.begin();
              rs.queued_cost -= it->first;
              donation = std::move(it->second);
              rs.queue.erase(it);
            }
          }
          if (donation) {
            shared.steals.fetch_add(1);
            ++rs.donated;
            AERO_TRACE_INSTANT_ARG("pool", "donate", donation->id);
            send_unit(shared, rank, msg->from, kTagWorkTransfer, *donation,
                      in_flight);
          } else {
            shared.denials.fetch_add(1);
            shared.comm.send(rank, msg->from, kTagNoWork);
          }
          break;
        }
        case kTagWorkTransfer:
        case kTagFaultRetry: {
          const auto parsed = parse_frame(msg->payload);
          if (!parsed) {
            shared.crc_failures.fetch_add(1);
            AERO_TRACE_INSTANT("pool", "crc_reject");
            break;  // sender retransmits an intact copy
          }
          // The nonce dedupe is consulted BEFORE any window access so a
          // duplicate control frame (fabric duplicate, or a retransmission
          // racing the ack) is answered from the dedupe and never touches
          // the already-consumed slot.
          const bool fresh = seen_frames.count(parsed->nonce) == 0;
          WorkUnit unit;
          if (fresh) {
            if (parsed->windowed) {
              AERO_TRACE_SPAN("rma", "take");
              if (parsed->src < 0 || parsed->src >= shared.comm.size()) {
                shared.crc_failures.fetch_add(1);
                break;
              }
              auto bytes =
                  shared.payload_windows[static_cast<std::size_t>(parsed->src)]
                      .take(parsed->slot, parsed->nonce, parsed->length,
                            parsed->digest);
              if (!bytes) {
                shared.crc_failures.fetch_add(1);
                AERO_TRACE_INSTANT("pool", "window_reject");
                break;  // slot intact; sender resends the control frame
              }
              trace_event(shared, ProtocolEvent::Kind::kWindowTaken,
                          parsed->nonce, rank, parsed->src);
              try {
                unit = deserialize_work(bytes->data(), bytes->size());
              } catch (const std::exception&) {
                shared.crc_failures.fetch_add(1);
                break;  // can't happen off the wire; payload never framed
              }
              shared.zero_copy.fetch_add(1);
              shared.window_bytes.fetch_add(bytes->size());
              shared.buffers.release(std::move(*bytes));
            } else {
              try {
                unit = deserialize_work(parsed->data, parsed->size);
              } catch (const std::exception&) {
                shared.crc_failures.fetch_add(1);
                AERO_TRACE_INSTANT("pool", "crc_reject");
                break;  // sender retransmits an intact copy
              }
            }
            seen_frames.insert(parsed->nonce);
          }
          // Record the accept/duplicate verdict BEFORE the ack leaves: the
          // sender records kAckMatched on receipt, and the audit requires
          // the accept to precede its ack in the trace's total order.
          trace_event(shared,
                      fresh ? ProtocolEvent::Kind::kAccept
                            : ProtocolEvent::Kind::kDuplicate,
                      parsed->nonce, rank, msg->from);
          shared.comm.send(rank, msg->from, kTagWorkAck,
                           make_ack(parsed->nonce));
          if (!fresh) break;
          ++rs.received;
          AERO_TRACE_INSTANT_ARG("pool", "accept_work", parsed->nonce);
          push_local(shared, rs, std::move(unit));
          requested = false;
          break;
        }
        case kTagWorkAck: {
          if (const auto id = parse_ack(msg->payload)) {
            auto it = in_flight.find(*id);
            if (it != in_flight.end()) {
              if (it->second.windowed) {
                // Ack on an untaken slot means the receiver accepted a
                // duplicate nonce without consuming; either way the slot is
                // finished -- drop it (recycling untaken bytes).
                shared.payload_windows[static_cast<std::size_t>(rank)].release(
                    it->second.slot, *id);
              }
              in_flight.erase(it);
              trace_event(shared, ProtocolEvent::Kind::kAckMatched, *id, rank,
                          msg->from);
            }
          }
          break;
        }
        case kTagNoWork:
          requested = false;
          break;
        case kTagShutdown:
          shut = true;
          break;
        case kTagResult:
          if (rank == 0) root_accept_result(shared, *msg);
          break;
        default:
          break;
      }
      rs.comm_seconds += handling.seconds();
      continue;  // drain the mailbox before housekeeping
    }

    const auto now = mono_now();

    // Reliable-channel housekeeping: retransmit unacked payloads; recover
    // payloads addressed to ranks the watchdog has since declared dead.
    if (!in_flight.empty()) {
      std::vector<std::pair<std::uint64_t, InFlight>> dead_dest;
      for (auto it = in_flight.begin(); it != in_flight.end();) {
        InFlight& f = it->second;
        if (now < f.deadline) {
          ++it;
        } else if (shared.dead[static_cast<std::size_t>(f.dest)].load()) {
          dead_dest.emplace_back(it->first, std::move(f));
          it = in_flight.erase(it);
        } else {
          // Retransmission needs a master copy: the frame must survive in
          // in_flight until acked. Window payloads only ever resend the
          // 37-byte control frame, so this never deep-copies mesh bytes.
          auto copy = f.payload;  // aerolint: allow(payload-copy)
          shared.comm.send(rank, f.dest, f.tag, std::move(copy));
          shared.retransmits.fetch_add(1);
          ++rs.retransmits_sent;
          AERO_TRACE_INSTANT_ARG("pool", "retransmit", it->first);
          f.deadline = now + opts.tuning.ack_timeout;
          ++f.tries;
          ++it;
        }
      }
      for (auto& [nonce, f] : dead_dest) {
        std::optional<WorkUnit> unit;
        if (f.windowed) {
          // The payload master sits in our window. Reclaim returns the
          // bytes only if the dest never took them; a taken slot means the
          // dest queued the unit before dying, and the watchdog's queue
          // reclamation owns it now -- re-dispatching here would
          // double-process the unit.
          auto bytes =
              shared.payload_windows[static_cast<std::size_t>(rank)].reclaim(
                  f.slot, nonce);
          if (bytes) {
            unit = deserialize_work(bytes->data(), bytes->size());
            shared.buffers.release(std::move(*bytes));
          }
        } else {
          unit = unit_from_inline_frame(f.payload);  // own bytes, intact
        }
        if (!unit) {
          trace_event(shared, ProtocolEvent::Kind::kAbandoned, nonce, rank,
                      f.dest);
          continue;
        }
        trace_event(shared, ProtocolEvent::Kind::kRecovered, nonce, rank,
                    f.dest);
        if (f.tag == kTagWorkTransfer) {
          push_local(shared, rs, std::move(*unit));  // donation comes home
        } else {
          if (f.dest < 64) unit->failed_ranks |= 1ull << f.dest;
          dispatch_retry(shared, rank, std::move(*unit), in_flight);
        }
      }
    }

    // Ship units that exhausted the mesher's local retries.
    {
      std::vector<WorkUnit> outbox;
      {
        MutexLock lock(rs.m);
        outbox.swap(rs.retry_outbox);
      }
      for (WorkUnit& u : outbox) {
        dispatch_retry(shared, rank, std::move(u), in_flight);
      }
    }

    if (now - last_update >= opts.update_period) {
      last_update = now;
      double cost;
      {
        MutexLock lock(rs.m);
        cost = rs.queued_cost;
      }
      shared.window.put(static_cast<std::size_t>(rank), cost);

      if (requested && now >= request_deadline) {
        requested = false;  // request or its answer was lost; ask again
      }
      if (!requested && cost < opts.steal_threshold) {
        // Fetch the global loads and ask the busiest live rank for work.
        const std::vector<double> loads = shared.window.get_all();
        int target = -1;
        double best = opts.steal_threshold;
        for (int r = 0; r < shared.comm.size(); ++r) {
          if (r == rank || shared.dead[static_cast<std::size_t>(r)].load()) {
            continue;
          }
          if (loads[static_cast<std::size_t>(r)] > best) {
            best = loads[static_cast<std::size_t>(r)];
            target = r;
          }
        }
        if (target >= 0) {
          shared.comm.send(rank, target, kTagWorkRequest);
          requested = true;
          request_deadline = now + request_timeout;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  if (rs.crashed.load()) return;  // crash raced the shutdown broadcast

  // Shutdown phase. Any in-flight residue is ack loss on completed work:
  // termination implies every unit completed, so nothing is retransmitted.
  // Windowed residue was therefore taken; release is a harmless erase (and
  // recycles the bytes in the ack-lost-before-take corner).
  for (const auto& [nonce, f] : in_flight) {
    if (f.windowed) {
      shared.payload_windows[static_cast<std::size_t>(rank)].release(f.slot,
                                                                     nonce);
    }
    trace_event(shared, ProtocolEvent::Kind::kAbandoned, nonce, rank, f.dest);
  }
  in_flight.clear();
  shared.comm.flush(rank);  // staged acks must not outlive the poll loop
  {
    MutexLock lock(rs.m);
    rs.shutdown = true;
  }
  rs.cv.notify_all();

  // Under a drain the mesher may still be inside its final unit, appending
  // to rs.triangles. The normal path orders that hand-off through
  // `outstanding` reaching zero before shutdown; a drain bypasses it, so
  // wait for the mesher thread to exit before the gather reads the list.
  while (shared.drain.load() && !rs.mesher_exited.load() &&
         !shared.abort.load()) {
    shared.window.beat(static_cast<std::size_t>(rank));
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  if (rank == 0) {
    // Bounded result gather: wait for every live rank's soup, re-acking
    // resends, until the watchdog deadline.
    AERO_TRACE_SPAN("pool", "gather");
    while (!shared.abort.load()) {
      bool complete = true;
      {
        MutexLock lock(shared.results_m);
        for (int r = 1; r < shared.comm.size(); ++r) {
          if (shared.dead[static_cast<std::size_t>(r)].load()) continue;
          if (shared.results.find(r) == shared.results.end()) {
            complete = false;
            break;
          }
        }
      }
      if (complete) break;
      shared.comm.maybe_flush(0);
      if (auto msg = shared.comm.try_recv(0)) {
        if (msg->tag == kTagResult) root_accept_result(shared, *msg);
        continue;
      }
      if (mono_now() > shared.deadline) {
        shared.gather_timed_out.store(true);
        break;
      }
      shared.window.beat(0);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  } else {
    // Reliable result send: resend until the root acks ("the points are
    // gathered at the root process"), bounded by the retransmit cap. The
    // result rides the same two-path transport as work transfers: above the
    // RMA threshold the soup is published into this rank's window and only
    // the control frame is (re)sent.
    AERO_TRACE_SPAN("pool", "send_results");
    constexpr int kMaxResultTries = 64;
    const std::uint64_t nonce = shared.next_transfer_seq.fetch_add(1);
    const std::size_t logical = serialized_triangles_size(rs.triangles.size());
    const bool windowed =
        opts.tuning.rma && logical >= opts.tuning.rma_threshold;
    ByteBuf frame;
    std::uint32_t slot = 0;
    if (windowed) {
      AERO_TRACE_SPAN("rma", "publish_result");
      auto bytes = serialize_triangles(rs.triangles, &shared.buffers);
      const std::uint64_t len = bytes.size();
      const std::uint64_t digest = payload_digest(bytes.data(), bytes.size());
      slot = shared.payload_windows[static_cast<std::size_t>(rank)].publish(
          nonce, std::move(bytes));
      trace_event(shared, ProtocolEvent::Kind::kWindowPublished, nonce, rank,
                  0);
      frame = make_window_frame(nonce, rank, slot, len, digest);
    } else {
      auto bytes =
          serialize_triangles(rs.triangles, &shared.buffers, kInlineFrameHeader);
      seal_inline_frame(nonce, bytes);
      frame = ByteBuf(std::move(bytes));
    }
    trace_event(shared, ProtocolEvent::Kind::kDispatch, nonce, rank, 0);
    {
      ByteBuf first = frame;
      shared.comm.send(rank, 0, kTagResult, std::move(first));
    }
    auto deadline = mono_now() + opts.tuning.ack_timeout;
    int tries = 0;
    bool acked = false;
    while (!shared.abort.load()) {
      shared.window.beat(static_cast<std::size_t>(rank));
      if (auto msg = shared.comm.try_recv(rank)) {
        if (msg->tag == kTagResultAck && parse_ack(msg->payload) == nonce) {
          acked = true;
          break;
        }
        continue;  // stray shutdown rebroadcasts, corrupted acks, etc.
      }
      const auto now = mono_now();
      if (now >= deadline) {
        if (++tries > kMaxResultTries) break;
        auto again = frame;
        shared.comm.send(rank, 0, kTagResult, std::move(again));
        shared.retransmits.fetch_add(1);
        ++rs.retransmits_sent;
        AERO_TRACE_INSTANT("pool", "retransmit_result");
        deadline = now + opts.tuning.ack_timeout;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    if (acked) {
      trace_event(shared, ProtocolEvent::Kind::kAckMatched, nonce, rank, 0);
      if (windowed) {
        shared.payload_windows[static_cast<std::size_t>(rank)].release(slot,
                                                                       nonce);
      }
    } else {
      // Gave up (abort or retry cap). The slot is deliberately NOT released:
      // a frame already in flight (injector delay) may still reach the root
      // or the monitor, and the window dies with the run anyway.
      trace_event(shared, ProtocolEvent::Kind::kAbandoned, nonce, rank, 0);
    }
  }
  shared.comm.flush(rank);
  shared.comm_exited[static_cast<std::size_t>(rank)].store(true);
}

/// Pool watchdog: declares silent ranks dead (reclaiming their queued work
/// for the root), re-broadcasts dropped shutdowns, services late result
/// resends after the root's communicator has exited, and enforces the
/// global deadline.
void monitor_main(SharedState& shared, std::vector<RankState>& ranks) {
  AERO_TRACE_THREAD("monitor", -1);
  const PoolOptions& opts = *shared.opts;
  const int n = shared.comm.size();
  const auto start = mono_now();
  std::vector<std::uint64_t> last_beat(static_cast<std::size_t>(n), 0);
  std::vector<std::chrono::steady_clock::time_point> last_advance(
      static_cast<std::size_t>(n), start);
  auto last_rebroadcast = start;
  bool aborted = false;
  bool draining = false;
  unsigned rss_tick = 0;

  for (;;) {
    bool all_done = true;
    for (int r = 0; r < n; ++r) {
      if (!shared.comm_exited[static_cast<std::size_t>(r)].load() &&
          !shared.dead[static_cast<std::size_t>(r)].load()) {
        all_done = false;
        break;
      }
    }
    if (all_done) return;

    const auto now = mono_now();
    if (!aborted && now > shared.deadline) {
      // Watchdog bound hit: force-terminate everything still running.
      aborted = true;
      shared.abort.store(true);
      for (auto& rs : ranks) {
        {
          MutexLock lock(rs.m);
          rs.shutdown = true;
        }
        rs.cv.notify_all();
      }
    }

    // Run budget / external stop: unlike the watchdog abort above, this
    // drains gracefully -- meshers stop taking units, communicators run the
    // normal bounded result gather, and the pool reports kStopped.
    if (!aborted && !draining) {
      StopCause cause = StopCause::kNone;
      if (opts.stop != nullptr && opts.stop->load()) {
        cause = StopCause::kExternal;
      } else if (opts.budget.wall_ms > 0 &&
                 now - start >=
                     std::chrono::milliseconds(opts.budget.wall_ms)) {
        cause = StopCause::kWallBudget;
      } else if (opts.budget.peak_rss_mb > 0 && rss_tick++ % 16 == 0 &&
                 obs::peak_rss_kb() >
                     static_cast<long>(opts.budget.peak_rss_mb) * 1024) {
        cause = StopCause::kRssBudget;
      }
      if (cause != StopCause::kNone) {
        draining = true;
        shared.stop_cause.store(static_cast<int>(cause));
        shared.drain.store(true);
        // Reuse the shutdown machinery: wake the meshers (they observe
        // `drain` and exit) and move the communicators into their gather
        // phase; the rebroadcast loop below keeps re-sending kTagShutdown
        // until every communicator got the message.
        shared.shutdown_broadcast.store(true);
        AERO_TRACE_INSTANT_ARG("pool", "drain", static_cast<int>(cause));
        for (auto& rs : ranks) {
          {
            MutexLock lock(rs.m);
            rs.shutdown = true;
          }
          rs.cv.notify_all();
        }
        for (int r = 0; r < n; ++r) {
          if (!shared.comm_exited[static_cast<std::size_t>(r)].load() &&
              !shared.dead[static_cast<std::size_t>(r)].load()) {
            shared.comm.send(-1, r, kTagShutdown);
          }
        }
      }
    }

    if (shared.shutdown_broadcast.load() && !aborted &&
        now - last_rebroadcast >= opts.tuning.ack_timeout) {
      // A dropped shutdown must not strand a communicator forever.
      last_rebroadcast = now;
      for (int r = 0; r < n; ++r) {
        if (!shared.comm_exited[static_cast<std::size_t>(r)].load() &&
            !shared.dead[static_cast<std::size_t>(r)].load()) {
          shared.comm.send(-1, r, kTagShutdown);
        }
      }
    }

    // Once the root communicator is gone the monitor is the sole consumer
    // of mailbox 0: keep acking late result resends so their senders exit.
    if (shared.comm_exited[0].load()) {
      while (auto msg = shared.comm.try_recv(0)) {
        if (msg->tag == kTagResult) root_accept_result(shared, *msg);
      }
      shared.comm.flush(0);  // push out any acks staged on rank 0's behalf
    }

    // Heartbeat scan (rank 0 is the root and is never declared dead).
    for (int r = 1; r < n; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      if (shared.comm_exited[ri].load() || shared.dead[ri].load()) continue;
      const std::uint64_t hb = shared.window.heartbeat(ri);
      if (hb != last_beat[ri]) {
        last_beat[ri] = hb;
        last_advance[ri] = now;
        continue;
      }
      if (now - last_advance[ri] >= opts.tuning.heartbeat_timeout) {
        shared.dead[ri].store(true);
        shared.dead_count.fetch_add(1);
        AERO_TRACE_INSTANT_ARG("pool", "rank_dead", r);
        // Reclaim the dead rank's queued work for the root. Its completed
        // triangles are NOT recoverable (no persistence across death); a
        // rank killed mid-run loses what it had meshed.
        RankState& dr = ranks[ri];
        std::vector<WorkUnit> orphans;
        {
          MutexLock lock(dr.m);
          for (auto& kv : dr.queue) orphans.push_back(std::move(kv.second));
          dr.queue.clear();
          dr.queued_cost = 0.0;
          dr.shutdown = true;
        }
        dr.cv.notify_all();
        shared.reclaimed.fetch_add(orphans.size());
        AERO_TRACE_INSTANT_ARG("pool", "reclaimed_units", orphans.size());
        for (WorkUnit& u : orphans) {
          trace_event(shared, ProtocolEvent::Kind::kUnitReclaimed, u.id, r);
          push_local(shared, ranks[0], std::move(u));
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// Out-of-core finalization: seal the spill journal, index it with the
/// bounded-memory scanner, and replay every block into `out` in global key
/// order, loading at most `merge_resident_bytes` of payload at a time (one
/// record minimum, so an oversized block still merges). Blocks that
/// overflowed to RAM on a spill-write failure are interleaved at their key
/// position, so the merged order is identical to the resident path's.
void merge_spilled(SharedState& shared, const PoolOptions& opts,
                   MergedMesh& out, PoolStats& stats,
                   std::size_t& lost_units) {
  using Tri = std::array<Vec2, 3>;
  if (!shared.spill.flush()) {
    AERO_TRACE_INSTANT("pool", "spill_flush_failed");
  }
  shared.spill.close();

  JournalIndex index = scan_journal_index(opts.spill_path, 0);
  std::sort(index.frames.begin(), index.frames.end(),
            [](const JournalFrame& a, const JournalFrame& b) {
              return a.key < b.key;
            });
  // A torn tail (disk full mid-append) drops whole blocks; surface the loss
  // through the same accounting as an unmeshable unit so the run reports
  // kPartial instead of a silently thinner mesh.
  const std::size_t written = shared.spill_records.load();
  if (index.frames.size() < written) {
    lost_units += written - index.frames.size();
  }

  std::map<std::uint64_t, std::vector<Tri>> overflow;
  {
    const MutexLock lock(shared.overflow_m);
    overflow.swap(shared.spill_overflow);
  }
  auto ov = overflow.begin();
  const auto emit_overflow_below = [&](std::uint64_t key) {
    for (; ov != overflow.end() && ov->first < key; ++ov) {
      for (const Tri& tri : ov->second) {
        out.add_triangle(tri[0], tri[1], tri[2]);
      }
    }
  };

  JournalReader reader;
  const bool reader_ok = reader.open(opts.spill_path);
  const std::size_t budget =
      opts.merge_resident_bytes > 0 ? opts.merge_resident_bytes : 1;
  std::size_t fi = 0;
  std::vector<std::vector<std::uint8_t>> loaded;
  while (fi < index.frames.size()) {
    // Window = the longest run of key-ordered frames whose payloads fit the
    // resident budget (always at least one frame).
    std::size_t fj = fi;
    std::size_t window_bytes = 0;
    while (fj < index.frames.size()) {
      const std::size_t len = index.frames[fj].payload_len;
      if (fj > fi && window_bytes + len > budget) break;
      window_bytes += len;
      ++fj;
    }
    loaded.assign(fj - fi, {});
    std::size_t resident = 0;
    for (std::size_t k = fi; k < fj; ++k) {
      if (!reader_ok || !reader.read(index.frames[k], loaded[k - fi])) {
        loaded[k - fi].clear();  // torn between scan and read; block lost
        ++lost_units;
        continue;
      }
      resident += loaded[k - fi].size();
    }
    ++stats.merge_windows;
    if (resident > stats.merge_resident_peak_bytes) {
      stats.merge_resident_peak_bytes = resident;
    }
    for (std::size_t k = fi; k < fj; ++k) {
      emit_overflow_below(index.frames[k].key);
      const std::vector<std::uint8_t>& payload = loaded[k - fi];
      if (payload.empty()) continue;  // read failure, counted above
      if (soup_status(payload) != MeshBlobStatus::kOk) {
        ++lost_units;
        continue;
      }
      const std::uint8_t* body = payload.data() + kSoupHeaderSize;
      const std::size_t ntris = (payload.size() - kSoupHeaderSize) /
                                sizeof(Tri);
      for (std::size_t t = 0; t < ntris; ++t) {
        Tri tri;
        // Deframing one 48-byte triangle from the spill record.
        std::memcpy(&tri, body + t * sizeof(Tri), sizeof(Tri));  // aerolint: allow(payload-copy)
        out.add_triangle(tri[0], tri[1], tri[2]);
      }
    }
    fi = fj;
  }
  emit_overflow_below(~std::uint64_t{0});
  // Flush any overflow at or past the largest key (emit_overflow_below is
  // strictly below; the sentinel above covers all real keys, but be exact).
  for (; ov != overflow.end(); ++ov) {
    for (const Tri& tri : ov->second) {
      out.add_triangle(tri[0], tri[1], tri[2]);
    }
  }
  reader.close();
  // The spill is single-run scratch; remove it once merged. Failure to
  // remove is harmless (the next run truncates it on open).
  std::remove(opts.spill_path.c_str());
}

}  // namespace

PoolStats run_pool(std::vector<WorkUnit> initial, const GradedSizing& sizing,
                   const PoolOptions& opts, MergedMesh& out) {
  PoolStats stats;
  stats.tasks_per_rank.assign(static_cast<std::size_t>(opts.nranks), 0);
  if (initial.empty()) {
    // Nothing to do: without this, `outstanding` starts at zero, no unit
    // ever completes, shutdown is never broadcast, and every thread blocks
    // forever.
    return stats;
  }
  Timer timer;
  AERO_TRACE_SPAN("pool", "run_pool");
  if (opts.trace != nullptr) opts.trace->begin_run();

  SharedState shared(opts);
  shared.sizing = &sizing;
  shared.opts = &opts;
  if (!opts.spill_path.empty()) {
    // Hash 0: the spill is a single-run scratch file, created and consumed
    // here; an unopenable spill degrades to the in-RAM merge.
    shared.spilling = shared.spill.open(opts.spill_path, 0, /*append=*/false);
  }
  shared.deadline = mono_now() + opts.tuning.watchdog_timeout;
  shared.outstanding.store(static_cast<long>(initial.size()),
                         std::memory_order_relaxed);

  std::vector<RankState> ranks(static_cast<std::size_t>(opts.nranks));
  for (auto& unit : initial) {
    unit.id = shared.next_unit_id.fetch_add(1);
    trace_event(shared, ProtocolEvent::Kind::kUnitCreated, unit.id, 0);
    push_local(shared, ranks[0], std::move(unit));
  }

  // Per-pass checkpoint baselines: the driver may run two pool passes (BL,
  // inviscid) through one shared sink, so this pass's stats are deltas.
  const std::size_t ckpt_base =
      opts.checkpoint != nullptr ? opts.checkpoint->records() : 0;
  const std::size_t ckpt_fail_base =
      opts.checkpoint != nullptr ? opts.checkpoint->failures() : 0;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(opts.nranks) * 2 + 1);
  for (int r = 0; r < opts.nranks; ++r) {
    // The mesher is wrapped so `mesher_exited` flips on EVERY exit path
    // (normal shutdown, abort, drain, injected crash/kill); a draining
    // communicator synchronizes on it before reading rs.triangles.
    threads.emplace_back([&shared, &ranks, r] {
      mesher_main(shared, ranks, r);
      ranks[static_cast<std::size_t>(r)].mesher_exited.store(true);
    });
    threads.emplace_back(communicator_main, std::ref(shared), std::ref(ranks),
                         r);
  }
  threads.emplace_back(monitor_main, std::ref(shared), std::ref(ranks));
  for (auto& t : threads) t.join();

  // Root-side sequential fallback: units every rank gave up on are meshed
  // here, outside the fault injector's reach, so a poisoned unit still ends
  // up in the final mesh.
  std::size_t lost_units = 0;
  std::vector<WorkUnit> fallback;
  {
    MutexLock lock(shared.fallback_m);
    fallback.swap(shared.fallback);
  }
  stats.fallback_units = fallback.size();
  AERO_TRACE_SPAN("pool", "fallback_mesh");
  const bool drained = shared.drain.load();
  while (!fallback.empty()) {
    WorkUnit unit = std::move(fallback.back());
    fallback.pop_back();
    std::uint64_t key = 0;
    if (opts.checkpoint != nullptr || opts.resume != nullptr) {
      key = subdomain_key(unit);
    }
    if (opts.resume != nullptr) {
      if (const auto* stored = opts.resume->find(key)) {
        if (shared.spilling) {
          spill_block(shared, shared.spill_seq.fetch_add(1), *stored);
        } else {
          ranks[0].triangles.insert(ranks[0].triangles.end(), stored->begin(),
                                    stored->end());
        }
        shared.resumed.fetch_add(1);
        shared.completed.fetch_add(1);
        if (opts.checkpoint != nullptr) opts.checkpoint->record(key, *stored);
        trace_event(shared, ProtocolEvent::Kind::kUnitCompleted, unit.id, 0);
        continue;
      }
    }
    if (drained) {
      // The drain stops meshing here too: escalated units join the
      // unfinished remainder (units_done < units_total) for the next run.
      continue;
    }
    std::vector<WorkUnit> children;
    std::vector<std::array<Vec2, 3>> triangles;
    try {
      expand_unit(sizing, opts, unit, children, triangles);
    } catch (...) {
      ++lost_units;  // genuinely unmeshable, not an injected fault
      trace_event(shared, ProtocolEvent::Kind::kUnitLost, unit.id, 0);
      continue;
    }
    trace_event(shared, ProtocolEvent::Kind::kUnitCompleted, unit.id, 0);
    shared.completed.fetch_add(1);
    for (auto& c : children) {
      c.id = shared.next_unit_id.fetch_add(1);
      trace_event(shared, ProtocolEvent::Kind::kUnitCreated, c.id, 0);
      fallback.push_back(std::move(c));
    }
    if (children.empty() && opts.checkpoint != nullptr) {
      opts.checkpoint->record(key, triangles);
    }
    if (shared.spilling) {
      spill_block(shared, shared.spill_seq.fetch_add(1), std::move(triangles));
    } else {
      ranks[0].triangles.insert(ranks[0].triangles.end(), triangles.begin(),
                                triangles.end());
    }
  }

  // Root-side merge: rank 0's own triangles plus every gathered soup --
  // either resident (the two loops below) or replayed from the spill file
  // window-by-window under the resident budget. The spill keys reproduce
  // exactly this loop's order (see spill_rank_key), so both paths build the
  // identical mesh.
  if (shared.spilling) {
    merge_spilled(shared, opts, out, stats, lost_units);
  }
  for (const auto& tri : ranks[0].triangles) {
    out.add_triangle(tri[0], tri[1], tri[2]);
  }
  {
    MutexLock lock(shared.results_m);
    for (const auto& [from, tris] : shared.results) {
      for (const auto& tri : tris) {
        out.add_triangle(tri[0], tri[1], tri[2]);
      }
    }
    for (int r = 1; r < opts.nranks; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      if (shared.results.find(r) != shared.results.end()) continue;
      if (shared.dead[ri].load()) {
        // A rank that died mid-run takes its meshed-but-ungathered triangles
        // with it; that loss must not report kOk. A rank dead from the start
        // (or that only split units) meshed nothing and is missing nothing.
        if (!ranks[ri].triangles.empty()) ++stats.missing_results;
      } else {
        ++stats.missing_results;
      }
    }
  }

  stats.steals = shared.steals.load(std::memory_order_relaxed);
  stats.steal_denials = shared.denials.load(std::memory_order_relaxed);
  stats.transfer_bytes = shared.transfer_bytes.load(std::memory_order_relaxed);
  stats.result_bytes = shared.result_bytes.load(std::memory_order_relaxed);
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    stats.tasks_per_rank[r] = ranks[r].tasks_done;
  }
  stats.unit_retries = shared.unit_retries.load(std::memory_order_relaxed);
  stats.unit_failures = shared.unit_failures.load(std::memory_order_relaxed);
  stats.requeued_units = shared.requeues.load(std::memory_order_relaxed);
  stats.dropped_messages = shared.injector.dropped();
  stats.duplicated_messages = shared.injector.duplicated();
  stats.corrupt_payloads = shared.crc_failures.load(std::memory_order_relaxed);
  stats.retransmits = shared.retransmits.load(std::memory_order_relaxed);
  stats.dead_ranks = shared.dead_count.load(std::memory_order_relaxed);
  stats.reclaimed_units = shared.reclaimed.load(std::memory_order_relaxed);
  stats.injected_corruptions = shared.injector.corrupted();
  stats.delayed_messages = shared.injector.delayed();
  stats.injected_unit_faults = shared.injector.unit_faults();
  stats.units_total = static_cast<std::size_t>(shared.next_unit_id.load());
  stats.units_done = shared.completed.load();
  stats.resumed_units = shared.resumed.load();
  stats.checkpointed_units =
      opts.checkpoint != nullptr ? opts.checkpoint->records() - ckpt_base : 0;
  stats.checkpoint_failures =
      opts.checkpoint != nullptr ? opts.checkpoint->failures() - ckpt_fail_base
                                 : 0;
  stats.injected_crashes = shared.crashes.load();
  stats.injected_mesher_kills = shared.mesher_kills.load();
  stats.spill_records = shared.spill_records.load(std::memory_order_relaxed);
  stats.spill_bytes =
      shared.spill_payload_bytes.load(std::memory_order_relaxed);
  stats.spill_write_failures =
      shared.spill_failures.load(std::memory_order_relaxed);
  stats.spill_max_record_bytes =
      shared.spill_max_record.load(std::memory_order_relaxed);
  stats.stop_cause = static_cast<StopCause>(shared.stop_cause.load());
  {
    const CommStats cs = shared.comm.stats();
    stats.comm_messages = cs.messages;
    stats.comm_bytes = cs.payload_bytes;
    stats.coalesced_messages = cs.coalesced;
    stats.batch_rejects = cs.batch_rejects;
  }
  stats.zero_copy_hits = shared.zero_copy.load(std::memory_order_relaxed);
  stats.window_bytes = shared.window_bytes.load(std::memory_order_relaxed);
  stats.buffer_pool_hits = shared.buffers.hits();
  stats.buffer_pool_misses = shared.buffers.misses();
  stats.busy_seconds_per_rank.resize(ranks.size());
  stats.comm_seconds_per_rank.resize(ranks.size());
  stats.donated_per_rank.resize(ranks.size());
  stats.received_per_rank.resize(ranks.size());
  stats.retransmits_per_rank.resize(ranks.size());
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    stats.busy_seconds_per_rank[r] = ranks[r].busy_seconds;
    stats.comm_seconds_per_rank[r] = ranks[r].comm_seconds;
    stats.donated_per_rank[r] = ranks[r].donated;
    stats.received_per_rank[r] = ranks[r].received;
    stats.retransmits_per_rank[r] = ranks[r].retransmits_sent;
  }
  if (shared.abort.load()) {
    stats.status = RunStatus::kFailed;
  } else if (drained && stats.units_done < stats.units_total) {
    // Drained with work left over: the mesh gathered so far is valid and
    // conformal, and the journal makes the remainder resumable.
    stats.status = RunStatus::kStopped;
  } else if (shared.gather_timed_out.load() || stats.missing_results > 0 ||
             lost_units > 0) {
    stats.status = RunStatus::kPartial;
  }
  stats.wall_seconds = timer.seconds();
  return stats;
}

}  // namespace aero
