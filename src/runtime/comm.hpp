#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace aero {

/// Message tags used by the mesh-generation protocol (mirrors the paper's
/// MPI tag usage).
enum MsgTag : int {
  kTagWorkRequest = 1,   ///< "I am running low; send me a subdomain"
  kTagWorkTransfer = 2,  ///< serialized subdomain payload
  kTagNoWork = 3,        ///< request denied (nothing spare)
  kTagShutdown = 4,      ///< global termination
  kTagResult = 5,        ///< triangle soup gathered to the root
};

/// A point-to-point message.
struct Message {
  int tag = 0;
  int from = -1;
  std::vector<std::uint8_t> payload;
};

/// In-process message-passing fabric: one mailbox per rank, blocking
/// receives, FIFO per sender-receiver pair. This is the MPI send/recv
/// substitute -- the communication *structure* of the paper's implementation
/// (who sends what to whom, and when) is preserved exactly; only the wire is
/// shared memory instead of Infiniband.
class Communicator {
 public:
  explicit Communicator(int nranks);

  int size() const { return static_cast<int>(boxes_.size()); }

  /// Enqueue a message into `to`'s mailbox.
  void send(int from, int to, int tag, std::vector<std::uint8_t> payload = {});

  /// Blocking receive of the next message for `rank`.
  Message recv(int rank);

  /// Non-blocking receive.
  std::optional<Message> try_recv(int rank);

  /// Count of queued messages (diagnostics).
  std::size_t pending(int rank) const;

 private:
  struct Mailbox {
    mutable std::mutex m;
    std::condition_variable cv;
    std::deque<Message> q;
  };
  std::vector<Mailbox> boxes_;
};

/// Remote-memory-access window emulation: an array of work-load estimates
/// hosted on the root, written with `put` (MPI_Put) by each rank's
/// communicator thread and snapshot with `get_all` (MPI_Get) when a rank
/// decides whom to steal from.
class RmaWindow {
 public:
  explicit RmaWindow(std::size_t n) : data_(n, 0.0) {}

  void put(std::size_t index, double value) {
    std::lock_guard lock(m_);
    data_[index] = value;
  }

  std::vector<double> get_all() const {
    std::lock_guard lock(m_);
    return data_;
  }

 private:
  mutable std::mutex m_;
  std::vector<double> data_;
};

}  // namespace aero
