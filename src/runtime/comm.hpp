#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "obs/annotations.hpp"
#include "runtime/bytes.hpp"

namespace aero {

/// Message tags used by the mesh-generation protocol (mirrors the paper's
/// MPI tag usage).
enum MsgTag : int {
  kTagWorkRequest = 1,   ///< "I am running low; send me a subdomain"
  kTagWorkTransfer = 2,  ///< serialized subdomain payload
  kTagNoWork = 3,        ///< request denied (nothing spare)
  kTagShutdown = 4,      ///< global termination
  kTagResult = 5,        ///< triangle soup gathered to the root
  kTagWorkAck = 6,       ///< acknowledges a work transfer (payload: nonce)
  kTagFaultRetry = 7,    ///< unit re-queued away from a failing rank
  kTagResultAck = 8,     ///< root acknowledges a rank's result payload
  kTagBatch = 9,         ///< coalesced small messages (see runtime/rma.hpp)
};

/// A point-to-point message. The payload stores up to 64 bytes inline
/// (ByteBuf), so the control traffic that dominates message *count* --
/// acks, steal requests, denials, window control frames -- moves through
/// the fabric without touching the heap.
struct Message {
  int tag = 0;
  int from = -1;
  ByteBuf payload;
};

/// Deterministic fault-injection configuration. All decisions derive from
/// `seed` and a per-event counter (splitmix64), so a chaos run with a fixed
/// seed injects a reproducible *amount* of faults regardless of thread
/// interleaving, and two injectors with the same seed make identical
/// decisions for the same event index.
struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 0;
  double drop_rate = 0.0;       ///< P(message silently dropped)
  double duplicate_rate = 0.0;  ///< P(message delivered twice)
  double corrupt_rate = 0.0;    ///< P(one payload byte flipped in transit)
  double delay_rate = 0.0;      ///< P(delivery postponed by `delay`)
  std::chrono::microseconds delay{300};
  /// Ranks that die before doing any work (their threads never run, never
  /// heartbeat, and never answer). Rank 0 is the root and is never killed.
  std::vector<int> dead_ranks;
  /// Units that throw on every in-pool processing attempt (exercises the
  /// full retry -> re-queue -> root-fallback escalation).
  std::vector<std::uint64_t> fail_unit_ids;
  /// P(a unit-processing attempt throws), on top of `fail_unit_ids`.
  double unit_failure_rate = 0.0;
  /// Process-level chaos: (rank, n) -- after the rank's mesher completes n
  /// units, BOTH of its threads exit silently, simulating a process crash
  /// mid-run: no shutdown handshake, no result send, heartbeats stop, and
  /// the monitor eventually declares the rank dead and reclaims its queue.
  /// Rank 0 hosts the gather and is never crashed (like dead_ranks).
  std::vector<std::pair<int, std::size_t>> crash_rank_after_units;
  /// (rank, n) -- only the mesher thread exits after n units; the
  /// communicator keeps heartbeating and donating, so any work stranded in
  /// the rank's queue is caught by the run budget or the watchdog bound
  /// instead of dead-rank recovery. The nastier half-dead failure mode.
  std::vector<std::pair<int, std::size_t>> kill_mesher_after_units;
};

/// Seed-driven chaos source consulted by the Communicator on every send and
/// by the pool on every unit-processing attempt. Thread-safe; counters are
/// cumulative over the injector's lifetime.
class FaultInjector {
 public:
  /// What the fabric should do with one message.
  struct Action {
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;
    std::chrono::microseconds delay{0};
    std::uint64_t salt = 0;  ///< deterministic byte/bit choice for corruption
  };

  FaultInjector() = default;
  explicit FaultInjector(FaultConfig cfg) : cfg_(std::move(cfg)) {}

  const FaultConfig& config() const { return cfg_; }
  bool enabled() const { return cfg_.enabled; }

  /// True if `rank` is configured to be dead from the start (never rank 0).
  bool rank_dead(int rank) const;

  /// Draw the fabric's decision for the next message.
  Action next_action();

  /// True if this unit-processing attempt should throw.
  bool unit_should_fail(std::uint64_t unit_id);

  /// Completed-unit count after which `rank` crashes (both threads exit
  /// silently), or 0 if the rank is not scheduled to crash. Never rank 0.
  std::size_t crash_after(int rank) const;
  /// Completed-unit count after which `rank`'s mesher thread alone dies,
  /// or 0 if not scheduled.
  std::size_t kill_mesher_after(int rank) const;

  std::size_t dropped() const { return dropped_.load(); }
  std::size_t duplicated() const { return duplicated_.load(); }
  std::size_t corrupted() const { return corrupted_.load(); }
  std::size_t delayed() const { return delayed_.load(); }
  std::size_t unit_faults() const { return unit_faults_.load(); }

 private:
  FaultConfig cfg_;
  std::atomic<std::uint64_t> event_ AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> dropped_ AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> duplicated_ AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> corrupted_ AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> delayed_ AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> unit_faults_ AERO_ATOMIC_ROLE(counter){0};
};

/// Coalescing policy for small control messages: sends at or below
/// `small_threshold` bytes from a real rank are staged per (src, dst) pair
/// and shipped as one kTagBatch message when the pair accumulates
/// `max_messages`/`max_bytes` or its oldest stage entry ages past
/// `flush_delay` (enforced by the owner thread calling maybe_flush from its
/// poll loop). flush_delay zero disables coalescing entirely.
struct CoalesceOptions {
  std::chrono::microseconds flush_delay{0};
  std::size_t small_threshold = 64;
  std::size_t max_messages = 8;
  std::size_t max_bytes = 512;
};

/// One staged message awaiting a coalesced flush (batch codec: rma.hpp).
struct StagedMessage {
  int tag = 0;
  ByteBuf payload;
};

/// Wire accounting, counted at the point a message is actually posted into
/// a mailbox (so a coalesced batch is one message and retransmits count per
/// copy). `coalesced` counts the original small messages that rode inside a
/// multi-message batch.
struct CommStats {
  std::size_t messages = 0;
  std::size_t payload_bytes = 0;
  std::size_t batches = 0;
  std::size_t coalesced = 0;
  std::size_t batch_rejects = 0;  ///< corrupted batches dropped at unpack
};

/// In-process message-passing fabric: one mailbox per rank, blocking
/// receives, FIFO per sender-receiver pair. This is the MPI send/recv
/// substitute -- the communication *structure* of the paper's implementation
/// (who sends what to whom, and when) is preserved exactly; only the wire is
/// shared memory instead of Infiniband. An optional FaultInjector sits on
/// the wire and may drop, duplicate, corrupt, or delay any message.
class Communicator {
 public:
  explicit Communicator(int nranks);
  ~Communicator();  // out-of-line: Sender is incomplete here

  int size() const { return static_cast<int>(boxes_.size()); }

  /// Attach a chaos source to the wire (nullptr detaches; not thread-safe
  /// with concurrent sends -- install before the pool threads start).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Configure small-message coalescing (install before the pool threads
  /// start). Staged lanes are keyed by sender, so each sending thread must
  /// drive its own maybe_flush.
  void set_coalescing(CoalesceOptions opts) { copts_ = opts; }

  /// Enqueue a message into `to`'s mailbox (subject to fault injection).
  /// Small messages from a real rank may be staged for coalescing; a large
  /// or non-coalescable send first flushes the (from, to) lane so per-pair
  /// FIFO order is preserved.
  void send(int from, int to, int tag, ByteBuf payload = {});

  /// Ship staged lanes of `from` whose oldest entry is older than the flush
  /// delay. Called by the owning thread from its poll loop.
  void maybe_flush(int from);

  /// Ship every staged lane of `from` immediately (shutdown, phase ends).
  void flush(int from);

  /// Blocking receive of the next message for `rank`.
  Message recv(int rank);

  /// Non-blocking receive.
  std::optional<Message> try_recv(int rank);

  /// Count of queued messages, including not-yet-due delayed ones (batches
  /// count as one until unpacked by a receive).
  std::size_t pending(int rank) const;

  CommStats stats() const;

 private:
  struct Delayed {
    std::chrono::steady_clock::time_point due;
    Message msg;
  };
  struct Mailbox {
    mutable Mutex m AERO_LOCK_NAME("comm.mailbox", 50);
    CondVar cv;
    std::deque<Message> q AERO_GUARDED_BY(m);
    std::vector<Delayed> delayed AERO_GUARDED_BY(m);
  };
  struct Lane;
  struct Sender;
  /// Move due delayed messages into the FIFO. Caller holds `box.m`.
  static void promote_due(Mailbox& box, std::chrono::steady_clock::time_point now)
      AERO_REQUIRES(box.m);
  /// Pop the next deliverable message, expanding batches in place. Caller
  /// holds `box.m`.
  std::optional<Message> pop_ready(Mailbox& box) AERO_REQUIRES(box.m);
  void deliver(int to, Message msg, std::chrono::microseconds delay);
  /// Injector + mailbox entry point every message funnels through.
  void post(int from, int to, int tag, ByteBuf payload);
  bool coalescing_enabled() const { return copts_.flush_delay.count() > 0; }
  /// Post a drained lane: singletons go out unwrapped, 2+ as one batch.
  void ship(int from, int to, std::vector<StagedMessage> parts);
  void flush_lane(int from, int to);

  std::vector<Mailbox> boxes_;
  std::vector<std::unique_ptr<Sender>> senders_;
  CoalesceOptions copts_;
  FaultInjector* injector_ = nullptr;
  std::atomic<std::size_t> messages_ AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> payload_bytes_ AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> batches_ AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> coalesced_ AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> batch_rejects_ AERO_ATOMIC_ROLE(counter){0};
};

/// Remote-memory-access window emulation for *scheduling state*: an array of
/// work-load estimates hosted on the root, written with `put` (MPI_Put) by
/// each rank's communicator thread and snapshot with `get_all` (MPI_Get)
/// when a rank decides whom to steal from. Also hosts the liveness
/// heartbeats: each communicator thread bumps its counter with `beat`, and
/// the pool watchdog declares a rank dead when its counter stops advancing.
/// (Payload transfer has its own window -- PayloadWindow in runtime/rma.hpp.)
class RmaWindow {
 public:
  explicit RmaWindow(std::size_t n)
      : data_(n, 0.0),
        beats_(std::make_unique<std::atomic<std::uint64_t>[]>(n)) {
    for (std::size_t i = 0; i < n; ++i) beats_[i].store(0);
  }

  void put(std::size_t index, double value) {
    MutexLock lock(m_);
    data_[index] = value;
  }

  std::vector<double> get_all() const {
    MutexLock lock(m_);
    return data_;
  }

  void beat(std::size_t rank) {
    beats_[rank].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t heartbeat(std::size_t rank) const {
    return beats_[rank].load(std::memory_order_relaxed);
  }

 private:
  mutable Mutex m_ AERO_LOCK_NAME("rt.rma_window", 60);
  std::vector<double> data_ AERO_GUARDED_BY(m_);
  std::unique_ptr<std::atomic<std::uint64_t>[]> beats_ AERO_ATOMIC_ROLE(counter);
};

}  // namespace aero
