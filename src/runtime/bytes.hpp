#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <utility>
#include <vector>

#include "core/crc32.hpp"

namespace aero {

/// Message payload container with inline small-buffer storage. Control
/// traffic (acks, steal requests, window control frames) is 12-37 bytes;
/// routing every such send through the heap made malloc the top cost of a
/// refinement storm. Payloads at or below kInlineCapacity live inside the
/// object; larger ones adopt the vector produced by the serializer without
/// copying, so a mailbox send moves at most 64 bytes plus bookkeeping.
class ByteBuf {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  ByteBuf() = default;

  ByteBuf(const std::uint8_t* data, std::size_t n) {
    if (n <= kInlineCapacity) {
      size_ = n;
      if (n > 0) std::memcpy(inline_, data, n);
    } else {
      heap_.assign(data, data + n);
      size_ = n;
    }
  }

  ByteBuf(std::initializer_list<std::uint8_t> init)
      : ByteBuf(init.begin(), init.size()) {}

  /// Implicit on purpose: `send(..., serialize(unit))` must keep working.
  /// Large buffers are adopted (zero copy); small ones fold inline and the
  /// source allocation is dropped.
  ByteBuf(std::vector<std::uint8_t>&& v) {  // NOLINT(google-explicit-...)
    if (v.size() <= kInlineCapacity) {
      size_ = v.size();
      if (size_ > 0) std::memcpy(inline_, v.data(), size_);
    } else {
      heap_ = std::move(v);
      size_ = heap_.size();
    }
  }

  ByteBuf(const ByteBuf&) = default;
  ByteBuf& operator=(const ByteBuf&) = default;

  ByteBuf(ByteBuf&& other) noexcept
      : heap_(std::move(other.heap_)), size_(other.size_) {
    if (size_ <= kInlineCapacity && size_ > 0) {
      std::memcpy(inline_, other.inline_, size_);
    }
    other.size_ = 0;
  }

  ByteBuf& operator=(ByteBuf&& other) noexcept {
    if (this != &other) {
      heap_ = std::move(other.heap_);
      size_ = other.size_;
      if (size_ <= kInlineCapacity && size_ > 0) {
        std::memcpy(inline_, other.inline_, size_);
      }
      other.size_ = 0;
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True while the bytes live inside the object (no heap allocation).
  bool inline_storage() const { return size_ <= kInlineCapacity; }

  const std::uint8_t* data() const {
    return inline_storage() ? inline_ : heap_.data();
  }
  std::uint8_t* data() { return inline_storage() ? inline_ : heap_.data(); }

  std::uint8_t operator[](std::size_t i) const { return data()[i]; }
  std::uint8_t& operator[](std::size_t i) { return data()[i]; }

  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + size_; }

  friend bool operator==(const ByteBuf& a, const ByteBuf& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data(), b.data(), a.size_) == 0);
  }
  friend bool operator!=(const ByteBuf& a, const ByteBuf& b) {
    return !(a == b);
  }

  /// Surrender the bytes as a vector (heap buffers move out without a copy;
  /// inline ones are materialized). Used to recycle consumed payloads into
  /// the BufferPool. Leaves the buffer empty.
  std::vector<std::uint8_t> release() {
    std::vector<std::uint8_t> out;
    if (inline_storage()) {
      out.assign(inline_, inline_ + size_);
    } else {
      out = std::move(heap_);
    }
    heap_.clear();
    size_ = 0;
    return out;
  }

 private:
  std::uint8_t inline_[kInlineCapacity];
  std::vector<std::uint8_t> heap_;
  /// Authoritative length. Invariant: size_ > kInlineCapacity implies the
  /// bytes are in heap_; otherwise they are in inline_ and heap_ is empty.
  std::size_t size_ = 0;
};

}  // namespace aero
