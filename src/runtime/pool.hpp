#pragma once

#include <chrono>
#include <vector>

#include "core/merged_mesh.hpp"
#include "runtime/comm.hpp"
#include "runtime/work.hpp"

namespace aero {

/// Options of the in-process work-stealing pool.
struct PoolOptions {
  int nranks = 4;
  /// A rank's communicator requests work when its queued cost estimate
  /// falls below this many estimated triangles.
  double steal_threshold = 5000.0;
  /// Period of the RMA window load updates.
  std::chrono::microseconds update_period{200};

  /// Boundary-layer decomposition tolerances.
  DecomposeOptions bl_decompose;
  /// Inviscid decoupling recursion target and cap.
  double inviscid_target_triangles = 40000.0;
  int inviscid_max_level = 10;
};

/// Statistics of a pool run.
struct PoolStats {
  std::size_t steals = 0;          ///< successful work transfers
  std::size_t steal_denials = 0;   ///< requests answered with no-work
  std::size_t transfer_bytes = 0;  ///< total serialized work payload moved
  std::size_t result_bytes = 0;    ///< triangle payload gathered to the root
  std::vector<std::size_t> tasks_per_rank;
  double wall_seconds = 0.0;
};

/// Run the distributed mesh generation protocol: every rank hosts a mesher
/// thread (splitting and meshing subdomains from a cost-ordered priority
/// queue, largest first) and a communicator thread (periodic RMA load
/// updates, steal requests toward the most-loaded rank, request service,
/// shutdown, and the final gather of triangle soups to the root).
///
/// `initial` work is handed to rank 0, matching the paper's pipeline where
/// the root owns the undecomposed domain and the decomposition itself is
/// distributed by the load balancer. The merged triangles of all ranks are
/// appended to `out` (root side).
PoolStats run_pool(std::vector<WorkUnit> initial, const GradedSizing& sizing,
                   const PoolOptions& opts, MergedMesh& out);

}  // namespace aero
