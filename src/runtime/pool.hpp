#pragma once

#include <atomic>
#include <chrono>
#include <vector>

#include "check/protocol_trace.hpp"
#include "core/merged_mesh.hpp"
#include "core/run_status.hpp"
#include "runtime/comm.hpp"
#include "runtime/work.hpp"

namespace aero {

class CheckpointSink;
class ResumeState;

/// Transport and robustness tuning shared by the pool, drivers, and CLI:
/// the RMA-vs-copy A/B switch, the small-message coalescing bound, and the
/// fault-tolerance timeouts. Kept as its own struct so callers (benches,
/// tests, aeromesh flags) can thread it through parallel_generate_mesh
/// without restating every pool option.
struct PoolTuning {
  /// Zero-copy transfers: payloads at or above `rma_threshold` bytes are
  /// published into the sender's PayloadWindow and move by ownership
  /// handoff; the mailbox carries a 37-byte control frame. Off = the PR 1
  /// deep-copy path (kept for differential testing; results must be
  /// bit-identical either way).
  bool rma = true;
  std::size_t rma_threshold = 1024;
  /// Bounded flush delay for small-control-message coalescing (0 = off).
  std::chrono::microseconds coalesce_delay{0};
  /// Unacknowledged work transfers are retransmitted after this long.
  std::chrono::milliseconds ack_timeout{25};
  /// A rank whose heartbeat stalls this long is declared dead: its queued
  /// work is reclaimed by the root and nobody waits on its results.
  std::chrono::milliseconds heartbeat_timeout{500};
  /// Global bound on the whole run (including the result gather). When it
  /// expires the pool is force-terminated and reports RunStatus::kFailed.
  std::chrono::seconds watchdog_timeout{120};
  /// Intra-rank threads for each subdomain refinement (RefineOptions::
  /// threads on the mesher's refine_subdomain calls). Performance-only:
  /// the refined subdomain mesh is identical at every value, so this is
  /// runtime tuning like the timeouts above, never mesh-defining.
  int threads_per_rank = 1;
};

/// Run-level budget enforced by the pool's monitor thread. Unlike the
/// watchdog (a hard fault bound that aborts), exceeding a budget drains the
/// run gracefully: in-flight units finish, queued work is dropped, results
/// are gathered, the checkpoint journal is intact, and the pool reports
/// RunStatus::kStopped with completeness accounting. 0 = unlimited.
struct RunBudget {
  long wall_ms = 0;      ///< wall-clock bound on the pool pass
  long peak_rss_mb = 0;  ///< process peak-RSS bound (monotonic, so once
                         ///< exceeded every later check trips too)
};

/// Why a drained run stopped (PoolStats::stop_cause).
enum class StopCause {
  kNone = 0,
  kWallBudget,  ///< RunBudget::wall_ms exhausted
  kRssBudget,   ///< RunBudget::peak_rss_mb exceeded
  kExternal,    ///< the external stop flag flipped (e.g. SIGINT)
};

inline const char* to_string(StopCause c) {
  switch (c) {
    case StopCause::kNone: return "none";
    case StopCause::kWallBudget: return "wall-budget";
    case StopCause::kRssBudget: return "rss-budget";
    case StopCause::kExternal: return "stop-request";
  }
  return "unknown";
}

/// Options of the in-process work-stealing pool.
struct PoolOptions {
  int nranks = 4;
  /// A rank's communicator requests work when its queued cost estimate
  /// falls below this many estimated triangles.
  double steal_threshold = 5000.0;
  /// Period of the RMA window load updates.
  std::chrono::microseconds update_period{200};

  /// Boundary-layer decomposition tolerances.
  DecomposeOptions bl_decompose;
  /// Inviscid decoupling recursion target and cap.
  double inviscid_target_triangles = 40000.0;
  int inviscid_max_level = 10;

  /// Fault injection (off by default; the recovery machinery is always on).
  FaultConfig faults;
  /// Re-attempts of a throwing unit on the same rank before it is re-queued
  /// to another rank / escalated to the root-side sequential fallback.
  int max_unit_retries = 2;

  /// Optional protocol event recorder (audit_protocol replays it). Off by
  /// default; recording takes one short lock per protocol event.
  ProtocolTrace* trace = nullptr;

  /// Transport switches and robustness timeouts (see PoolTuning).
  PoolTuning tuning;

  // -- Run-level resilience ------------------------------------------------
  /// Wall/RSS budget; on exhaustion the monitor drains instead of aborting.
  RunBudget budget;
  /// External stop request (the CLI points this at its SIGINT flag): when
  /// it flips true the pool drains in-flight units and gathers what exists.
  const std::atomic<bool>* stop = nullptr;
  /// Checkpoint journal sink: every finalized leaf's triangles stream here
  /// before the unit is counted complete, so a crash loses only in-flight
  /// work. Null = no journaling.
  CheckpointSink* checkpoint = nullptr;
  /// Completed subdomains loaded from a previous run's journal: leaves
  /// found here replay their stored triangles instead of re-meshing.
  const ResumeState* resume = nullptr;

  // -- Out-of-core finalization --------------------------------------------
  /// When non-empty, the root streams every finalized triangle block (its
  /// own leaves, resume replays, gathered rank soups, fallback output) into
  /// this CRC-framed spill journal instead of holding them resident, then
  /// merges window-by-window under `merge_resident_bytes`. The merged mesh
  /// is bit-identical to the in-RAM path; a spill write failure degrades
  /// that block back to resident, never the run. "" = in-RAM merge.
  std::string spill_path;
  /// Resident-payload budget of the windowed spill merge, in bytes. At
  /// least one record is always loaded per window, so the merge progresses
  /// even when a single block exceeds the budget.
  std::size_t merge_resident_bytes = std::size_t{256} << 20;
};

/// Statistics of a pool run.
struct PoolStats {
  std::size_t steals = 0;          ///< successful work transfers
  std::size_t steal_denials = 0;   ///< requests answered with no-work
  std::size_t transfer_bytes = 0;  ///< total serialized work payload moved
  std::size_t result_bytes = 0;    ///< triangle payload gathered to the root
  std::vector<std::size_t> tasks_per_rank;
  double wall_seconds = 0.0;

  // Transport accounting. transfer_bytes/result_bytes above count *logical*
  // serialized payload (identical across the RMA and copy paths, so A/B
  // comparisons line up); the fields below count what actually moved where.
  std::size_t comm_messages = 0;  ///< messages posted into mailboxes
  std::size_t comm_bytes = 0;     ///< payload bytes copied through mailboxes
  std::size_t zero_copy_hits = 0; ///< payloads that moved by window handoff
  std::size_t window_bytes = 0;   ///< payload bytes moved zero-copy
  std::size_t coalesced_messages = 0;  ///< small messages that rode a batch
  std::size_t batch_rejects = 0;  ///< corrupted batches dropped at unpack
  std::size_t buffer_pool_hits = 0;    ///< serialization buffers recycled
  std::size_t buffer_pool_misses = 0;  ///< fresh buffer allocations

  // Fault-tolerance accounting.
  std::size_t unit_retries = 0;    ///< same-rank re-attempts after a throw
  std::size_t unit_failures = 0;   ///< units that exhausted a rank's retries
  std::size_t fallback_units = 0;  ///< units meshed by the root-side fallback
  std::size_t requeued_units = 0;  ///< cross-rank fault re-queues sent
  std::size_t dropped_messages = 0;    ///< injector-dropped messages
  std::size_t duplicated_messages = 0; ///< injector-duplicated messages
  std::size_t corrupt_payloads = 0;    ///< CRC failures seen at receivers
  std::size_t retransmits = 0;     ///< unacked payloads sent again
  std::size_t dead_ranks = 0;      ///< ranks declared dead by the watchdog
  std::size_t reclaimed_units = 0; ///< queued units rescued off dead ranks
  std::size_t missing_results = 0; ///< live ranks whose gather never landed

  // Injector-side counters (what the chaos layer actually did, as opposed to
  // the receiver-side observations above; e.g. a corrupted ack the receiver
  // silently ignores shows up only here).
  std::size_t injected_corruptions = 0;  ///< payload bytes flipped in transit
  std::size_t delayed_messages = 0;      ///< deliveries postponed by the fabric
  std::size_t injected_unit_faults = 0;  ///< unit attempts forced to throw

  // Run-level resilience accounting (completeness report + checkpointing).
  std::size_t units_total = 0;   ///< work units created (initial + spawned)
  std::size_t units_done = 0;    ///< units that produced their output
  std::size_t resumed_units = 0; ///< leaves replayed from a resume journal
  std::size_t checkpointed_units = 0;  ///< leaf records streamed to journal
  std::size_t checkpoint_failures = 0; ///< journal appends that failed
  std::size_t injected_crashes = 0;      ///< ranks crashed by the injector
  std::size_t injected_mesher_kills = 0; ///< mesher threads killed by it
  StopCause stop_cause = StopCause::kNone;  ///< why a kStopped run drained

  // Out-of-core finalization accounting (zero unless spill_path was set).
  std::size_t spill_records = 0;  ///< triangle blocks streamed to the spill
  std::size_t spill_bytes = 0;    ///< payload bytes written to the spill
  std::size_t spill_write_failures = 0;  ///< blocks degraded to resident
  std::size_t spill_max_record_bytes = 0;  ///< largest single spilled block
  std::size_t merge_windows = 0;  ///< bounded-resident merge passes
  /// Largest window resident set. Bounded by merge_resident_bytes, except
  /// that a single record larger than the whole budget still merges as its
  /// own window (the merge never splits a record), so the true invariant is
  /// peak <= max(merge_resident_bytes, spill_max_record_bytes).
  std::size_t merge_resident_peak_bytes = 0;

  // Per-rank load balance, indexed by rank (filled from thread-owned
  // accumulators after the pool threads join; feeds the obs load report).
  std::vector<double> busy_seconds_per_rank;  ///< mesher time inside units
  std::vector<double> comm_seconds_per_rank;  ///< communicator handling time
  std::vector<std::size_t> donated_per_rank;   ///< units donated to stealers
  std::vector<std::size_t> received_per_rank;  ///< transfers accepted (fresh)
  std::vector<std::size_t> retransmits_per_rank;  ///< unacked resends sent
  RunStatus status = RunStatus::kOk;
};

/// Run the distributed mesh generation protocol: every rank hosts a mesher
/// thread (splitting and meshing subdomains from a cost-ordered priority
/// queue, largest first) and a communicator thread (periodic RMA load
/// updates, steal requests toward the most-loaded rank, request service,
/// shutdown, and the final gather of triangle soups to the root). A monitor
/// thread watches heartbeats, reclaims dead ranks' queues, re-broadcasts
/// dropped shutdowns, and enforces the watchdog bound, so a faulty fabric
/// degrades the run instead of deadlocking it.
///
/// `initial` work is handed to rank 0, matching the paper's pipeline where
/// the root owns the undecomposed domain and the decomposition itself is
/// distributed by the load balancer. The merged triangles of all ranks are
/// appended to `out` (root side).
PoolStats run_pool(std::vector<WorkUnit> initial, const GradedSizing& sizing,
                   const PoolOptions& opts, MergedMesh& out);

}  // namespace aero
