#include "runtime/work.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

namespace aero {

namespace {

class Writer {
 public:
  /// `capacity` sizes the (optionally pooled) buffer exactly; `header_room`
  /// zero bytes are reserved at the front and excluded from the CRC, to be
  /// stamped by the transport (seal_inline_frame) without a payload copy.
  Writer(std::size_t capacity, BufferPool* pool, std::size_t header_room)
      : bytes_(pool != nullptr ? pool->acquire(capacity)
                               : std::vector<std::uint8_t>()),
        skip_(header_room) {
    if (pool == nullptr) bytes_.reserve(capacity);
    bytes_.assign(header_room, 0);
  }
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }
  void put_points(const std::vector<Vec2>& pts) {
    put<std::uint64_t>(pts.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(pts.data());
    bytes_.insert(bytes_.end(), p, p + pts.size() * sizeof(Vec2));
  }
  /// Append the CRC-32 trailer (over the payload past the header room) and
  /// hand out the framed payload.
  std::vector<std::uint8_t> take() {
    const std::uint32_t crc =
        crc32(bytes_.data() + skip_, bytes_.size() - skip_);
    put<std::uint32_t>(crc);
    return std::move(bytes_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t skip_ = 0;
};

class Reader {
 public:
  /// Validates the CRC-32 trailer up front; the readable range excludes it.
  Reader(const std::uint8_t* data, std::size_t n) : data_(data) {
    if (n < sizeof(std::uint32_t)) {
      throw std::runtime_error("work unit payload truncated");
    }
    end_ = n - sizeof(std::uint32_t);
    std::uint32_t stored;
    std::memcpy(&stored, data_ + end_, sizeof(stored));
    if (stored != crc32(data_, end_)) {
      throw std::runtime_error("work unit payload corrupt (CRC-32 mismatch)");
    }
  }
  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > end_) {
      throw std::runtime_error("work unit payload truncated");
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  std::vector<Vec2> get_points() {
    const auto n = get<std::uint64_t>();
    if (pos_ + n * sizeof(Vec2) > end_) {
      throw std::runtime_error("work unit payload truncated");
    }
    std::vector<Vec2> pts(n);
    std::memcpy(pts.data(), data_ + pos_, n * sizeof(Vec2));
    pos_ += n * sizeof(Vec2);
    return pts;
  }

 private:
  const std::uint8_t* data_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
};

}  // namespace

std::size_t serialized_size(const WorkUnit& unit) {
  std::size_t n = 8 + 8 + 1;  // id, failed_ranks, kind
  if (unit.kind == WorkUnit::Kind::kBlDecompose) {
    const Subdomain& s = unit.bl;
    n += 4 + 1 + 8;                                  // level, final_, ncuts
    n += s.cuts.size() * (1 + 8 + 1);                // axis, line, keep_left
    n += 8 + s.xsorted.size() * sizeof(Vec2);        // xsorted
    if (!s.final_) n += 8 + s.ysorted.size() * sizeof(Vec2);
  } else {
    const InviscidSubdomain& s = unit.inv;
    n += 4 + s.corners.size() * 8;                   // level, corners
    n += 8 + s.border.size() * sizeof(Vec2);
    n += 8 + s.hole_segments.size() * 2 * sizeof(Vec2);
    n += 8 + s.hole_seeds.size() * sizeof(Vec2);
  }
  return n + 4;  // CRC trailer
}

std::size_t serialized_triangles_size(std::size_t ntris) {
  return 8 + ntris * 3 * sizeof(Vec2) + 4;
}

std::vector<std::uint8_t> serialize(const WorkUnit& unit, BufferPool* pool,
                                    std::size_t header_room) {
  Writer w(header_room + serialized_size(unit), pool, header_room);
  w.put<std::uint64_t>(unit.id);
  w.put<std::uint64_t>(unit.failed_ranks);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(unit.kind));
  if (unit.kind == WorkUnit::Kind::kBlDecompose) {
    const Subdomain& s = unit.bl;
    w.put<std::int32_t>(s.level);
    w.put<std::uint8_t>(s.final_ ? 1 : 0);
    w.put<std::uint64_t>(s.cuts.size());
    for (const Cut& c : s.cuts) {
      w.put<std::uint8_t>(c.axis == CutAxis::kVertical ? 1 : 0);
      w.put<double>(c.line);
      w.put<std::uint8_t>(c.keep_left ? 1 : 0);
    }
    w.put_points(s.xsorted);
    if (!s.final_) w.put_points(s.ysorted);
  } else {
    const InviscidSubdomain& s = unit.inv;
    w.put<std::int32_t>(s.level);
    for (const std::size_t c : s.corners) w.put<std::uint64_t>(c);
    w.put_points(s.border);
    w.put<std::uint64_t>(s.hole_segments.size());
    for (const auto& [a, b] : s.hole_segments) {
      w.put<Vec2>(a);
      w.put<Vec2>(b);
    }
    w.put_points(s.hole_seeds);
  }
  return w.take();
}

WorkUnit deserialize_work(const std::uint8_t* data, std::size_t n) {
  Reader r(data, n);
  WorkUnit unit;
  unit.id = r.get<std::uint64_t>();
  unit.failed_ranks = r.get<std::uint64_t>();
  unit.kind = static_cast<WorkUnit::Kind>(r.get<std::uint8_t>());
  if (unit.kind == WorkUnit::Kind::kBlDecompose) {
    Subdomain& s = unit.bl;
    s.level = r.get<std::int32_t>();
    s.final_ = r.get<std::uint8_t>() != 0;
    const auto ncuts = r.get<std::uint64_t>();
    s.cuts.resize(ncuts);
    for (auto& c : s.cuts) {
      c.axis = r.get<std::uint8_t>() ? CutAxis::kVertical
                                     : CutAxis::kHorizontal;
      c.line = r.get<double>();
      c.keep_left = r.get<std::uint8_t>() != 0;
    }
    s.xsorted = r.get_points();
    if (!s.final_) s.ysorted = r.get_points();
  } else {
    InviscidSubdomain& s = unit.inv;
    s.level = r.get<std::int32_t>();
    for (auto& c : s.corners) c = r.get<std::uint64_t>();
    s.border = r.get_points();
    const auto nholes = r.get<std::uint64_t>();
    s.hole_segments.resize(nholes);
    for (auto& [a, b] : s.hole_segments) {
      a = r.get<Vec2>();
      b = r.get<Vec2>();
    }
    s.hole_seeds = r.get_points();
  }
  return unit;
}

WorkUnit deserialize_work(const std::vector<std::uint8_t>& bytes) {
  return deserialize_work(bytes.data(), bytes.size());
}

WorkUnit deserialize_work(const ByteBuf& bytes) {
  return deserialize_work(bytes.data(), bytes.size());
}

std::vector<std::uint8_t> serialize_triangles(
    const std::vector<std::array<Vec2, 3>>& tris, BufferPool* pool,
    std::size_t header_room) {
  Writer w(header_room + serialized_triangles_size(tris.size()), pool,
           header_room);
  w.put<std::uint64_t>(tris.size());
  for (const auto& t : tris) {
    for (const Vec2 p : t) w.put<Vec2>(p);
  }
  return w.take();
}

std::vector<std::array<Vec2, 3>> deserialize_triangles(
    const std::uint8_t* data, std::size_t n) {
  Reader r(data, n);
  const auto count = r.get<std::uint64_t>();
  std::vector<std::array<Vec2, 3>> tris(count);
  for (auto& t : tris) {
    for (Vec2& p : t) p = r.get<Vec2>();
  }
  return tris;
}

std::vector<std::array<Vec2, 3>> deserialize_triangles(
    const std::vector<std::uint8_t>& bytes) {
  return deserialize_triangles(bytes.data(), bytes.size());
}

}  // namespace aero
