#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/annotations.hpp"

namespace aero {

/// Size-classed recycling pool for serialization buffers. The steady-state
/// hot path of the pool -- serialize a unit, ship it, deserialize it, throw
/// the bytes away -- allocated a fresh heap buffer per hop; under a
/// refinement storm that is thousands of large, short-lived allocations per
/// second. The pool keeps a small free list per power-of-two size class
/// (1 KiB .. 16 MiB) so a buffer released by a receiver is handed back to
/// the next serializer instead of the allocator. Thread-safe; buffers cross
/// threads freely (donor serializes, receiver releases).
class BufferPool {
 public:
  /// A buffer whose capacity is at least `size_hint`, empty, recycled when
  /// one is available (counted as a hit), freshly reserved otherwise.
  std::vector<std::uint8_t> acquire(std::size_t size_hint);

  /// Return a consumed buffer for reuse. Buffers below the smallest class or
  /// above the largest, and classes already at capacity, are simply freed.
  void release(std::vector<std::uint8_t> buf);

  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kMinClassLog2 = 10;  ///< 1 KiB
  static constexpr std::size_t kMaxClassLog2 = 24;  ///< 16 MiB
  static constexpr std::size_t kClasses = kMaxClassLog2 - kMinClassLog2 + 1;
  /// Free-list depth per class; beyond this, released buffers are freed (the
  /// pool bounds steady-state memory, it is not a cache of everything ever).
  static constexpr std::size_t kMaxFreePerClass = 8;

  mutable Mutex m_ AERO_LOCK_NAME("rt.buffer_pool", 70);
  std::array<std::vector<std::vector<std::uint8_t>>, kClasses> free_
      AERO_GUARDED_BY(m_);
  std::atomic<std::size_t> hits_ AERO_ATOMIC_ROLE(counter){0};
  std::atomic<std::size_t> misses_ AERO_ATOMIC_ROLE(counter){0};
};

}  // namespace aero
