#pragma once

#include <cstdint>
#include <vector>

#include "hull/subdomain.hpp"
#include "inviscid/decouple.hpp"

namespace aero {

/// One schedulable unit of meshing work. Mirrors the paper's subdomain work
/// units: boundary-layer subdomains still being decomposed, and decoupled
/// inviscid subdomains awaiting refinement. Both decomposition and meshing
/// happen inside the pool, so splits spawn new units dynamically.
struct WorkUnit {
  enum class Kind : std::uint8_t {
    kBlDecompose,      ///< boundary-layer subdomain (split or triangulate)
    kInviscidDecouple, ///< inviscid subdomain (split or refine)
  };
  Kind kind = Kind::kBlDecompose;
  Subdomain bl;
  InviscidSubdomain inv;

  /// Estimated triangles produced (the load-balancing cost of the paper:
  /// boundary-layer units carry their point payload and sort first).
  double cost(const GradedSizing& sizing) const {
    return kind == Kind::kBlDecompose ? bl.cost()
                                      : inv.estimated_triangles(sizing);
  }
};

/// Serialize a work unit for transfer to another rank. Finalized
/// boundary-layer subdomains ship only their x-sorted vertices (the paper's
/// communication optimization); unfinalized ones also ship the y-sorted
/// copy. Projected coordinates are never shipped -- they depend on the next
/// median vertex and are recomputed after transfer.
std::vector<std::uint8_t> serialize(const WorkUnit& unit);
WorkUnit deserialize_work(const std::vector<std::uint8_t>& bytes);

/// Serialize a triangle soup (coordinate triples) for the result gather.
std::vector<std::uint8_t> serialize_triangles(
    const std::vector<std::array<Vec2, 3>>& tris);
std::vector<std::array<Vec2, 3>> deserialize_triangles(
    const std::vector<std::uint8_t>& bytes);

}  // namespace aero
