#pragma once

#include <cstdint>
#include <vector>

#include "hull/subdomain.hpp"
#include "inviscid/decouple.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/bytes.hpp"

namespace aero {

/// One schedulable unit of meshing work. Mirrors the paper's subdomain work
/// units: boundary-layer subdomains still being decomposed, and decoupled
/// inviscid subdomains awaiting refinement. Both decomposition and meshing
/// happen inside the pool, so splits spawn new units dynamically.
struct WorkUnit {
  enum class Kind : std::uint8_t {
    kBlDecompose,      ///< boundary-layer subdomain (split or triangulate)
    kInviscidDecouple, ///< inviscid subdomain (split or refine)
  };
  Kind kind = Kind::kBlDecompose;
  Subdomain bl;
  InviscidSubdomain inv;

  /// Pool-wide unique identity, assigned at creation. Targets injected unit
  /// faults and names the unit in diagnostics; transfers themselves are
  /// acknowledged and deduplicated by a per-dispatch nonce (see pool.cpp),
  /// never by this id, so a unit may revisit a rank it has been on before.
  std::uint64_t id = 0;
  /// Bitmask of ranks on which processing this unit already failed; a
  /// fault re-queue excludes them when picking the next host.
  std::uint64_t failed_ranks = 0;

  /// Estimated triangles produced (the load-balancing cost of the paper:
  /// boundary-layer units carry their point payload and sort first).
  double cost(const GradedSizing& sizing) const {
    return kind == Kind::kBlDecompose ? bl.cost()
                                      : inv.estimated_triangles(sizing);
  }
};

/// Exact size in bytes of serialize(unit) including the CRC trailer (and of
/// serialize_triangles for a soup of `ntris`). Lets the transport pick the
/// copy-vs-window path and size a pooled buffer before serializing, so the
/// hot path writes once into a right-sized buffer and never reallocates.
std::size_t serialized_size(const WorkUnit& unit);
std::size_t serialized_triangles_size(std::size_t ntris);

/// Serialize a work unit for transfer to another rank. Finalized
/// boundary-layer subdomains ship only their x-sorted vertices (the paper's
/// communication optimization); unfinalized ones also ship the y-sorted
/// copy. Projected coordinates are never shipped -- they depend on the next
/// median vertex and are recomputed after transfer. The payload ends with a
/// CRC-32 trailer; `deserialize_work` throws `std::runtime_error` on a
/// truncated or corrupted payload.
///
/// `pool` (optional) recycles the output buffer; `header_room` reserves
/// zeroed bytes at the front for a transfer-frame header (the CRC trailer
/// covers only the serialized payload after the reserved room), so framing
/// is an in-place header write instead of a second payload copy.
std::vector<std::uint8_t> serialize(const WorkUnit& unit,
                                    BufferPool* pool = nullptr,
                                    std::size_t header_room = 0);
WorkUnit deserialize_work(const std::uint8_t* data, std::size_t n);
WorkUnit deserialize_work(const std::vector<std::uint8_t>& bytes);
WorkUnit deserialize_work(const ByteBuf& bytes);

/// Serialize a triangle soup (coordinate triples) for the result gather.
/// Same CRC-32 trailer / pool / header-room contract as work-unit payloads.
std::vector<std::uint8_t> serialize_triangles(
    const std::vector<std::array<Vec2, 3>>& tris, BufferPool* pool = nullptr,
    std::size_t header_room = 0);
std::vector<std::array<Vec2, 3>> deserialize_triangles(
    const std::uint8_t* data, std::size_t n);
std::vector<std::array<Vec2, 3>> deserialize_triangles(
    const std::vector<std::uint8_t>& bytes);

}  // namespace aero
