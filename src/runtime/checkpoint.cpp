#include "runtime/checkpoint.hpp"

#include <cstring>
#include <type_traits>

namespace aero {

std::uint64_t subdomain_key(const WorkUnit& unit) {
  const std::vector<std::uint8_t> bytes = serialize(unit);
  // Serialized layout: id (8) | failed_ranks (8) | kind + subdomain fields
  // | crc32 (4). The id and fault history are scheduling artifacts; the CRC
  // is redundant with the hash. Everything between is the subdomain.
  constexpr std::size_t kSkip = 16;
  constexpr std::size_t kTrailer = 4;
  return fnv1a(bytes.data() + kSkip, bytes.size() - kSkip - kTrailer);
}

// A journal record's payload is the raw triangle array: array<Vec2, 3> is
// trivially copyable and padding-free, the record CRC already guards the
// bytes, and the wire serializers are native-endian memcpy anyway -- so the
// checkpoint path writes straight from the mesher's vector with no
// serialization pass, no allocation, and no extra CRC. (This is what keeps
// checkpointing's wall overhead marginal: journaling a leaf costs one
// chained-CRC pass and one stream write of memory that already exists.)
using Tri = std::array<Vec2, 3>;
static_assert(std::is_trivially_copyable_v<Tri> &&
              sizeof(Tri) == 6 * sizeof(double));

ResumeState::ResumeState(const JournalContents& journal) {
  map_.reserve(journal.records.size());
  for (const JournalRecord& rec : journal.records) {
    if (rec.payload.size() % sizeof(Tri) != 0) {
      ++decode_failures_;  // CRC-intact but not a triangle block
      continue;
    }
    std::vector<Tri> tris(rec.payload.size() / sizeof(Tri));
    if (!tris.empty()) {
      // Decoding journal bytes into the typed vector, not copying a live
      // payload -- the journal is the owner handoff's far side.
      std::memcpy(tris.data(), rec.payload.data(),  // aerolint: allow(payload-copy)
                  rec.payload.size());
    }
    map_.emplace(rec.key, std::move(tris));
  }
}

bool CheckpointSink::open(const std::string& path, std::uint64_t config_hash,
                          bool append) {
  return writer_.open(path, config_hash, append);
}

void CheckpointSink::seed(std::uint64_t key) {
  const MutexLock lock(m_);
  seen_.insert(key);
}

bool CheckpointSink::record(std::uint64_t key,
                            const std::vector<std::array<Vec2, 3>>& tris) {
  {
    const MutexLock lock(m_);
    if (!seen_.insert(key).second) return true;  // already journaled
  }
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(tris.data());
  if (!writer_.append(key, bytes, tris.size() * sizeof(Tri))) return false;
  const MutexLock lock(m_);
  ++records_;
  return true;
}

std::size_t CheckpointSink::records() const {
  const MutexLock lock(m_);
  return records_;
}

}  // namespace aero
