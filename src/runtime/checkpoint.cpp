#include "runtime/checkpoint.hpp"

#include <cstring>
#include <type_traits>

namespace aero {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n,
                    std::uint64_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
void mix(std::uint64_t& h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  h = fnv1a(reinterpret_cast<const std::uint8_t*>(&v), sizeof(T), h);
}

void mix_points(std::uint64_t& h, const std::vector<Vec2>& pts) {
  mix<std::uint64_t>(h, pts.size());
  h = fnv1a(reinterpret_cast<const std::uint8_t*>(pts.data()),
            pts.size() * sizeof(Vec2), h);
}

}  // namespace

std::uint64_t subdomain_key(const WorkUnit& unit) {
  const std::vector<std::uint8_t> bytes = serialize(unit);
  // Serialized layout: id (8) | failed_ranks (8) | kind + subdomain fields
  // | crc32 (4). The id and fault history are scheduling artifacts; the CRC
  // is redundant with the hash. Everything between is the subdomain.
  constexpr std::size_t kSkip = 16;
  constexpr std::size_t kTrailer = 4;
  return fnv1a(bytes.data() + kSkip, bytes.size() - kSkip - kTrailer,
               kFnvOffset);
}

std::uint64_t mesh_config_hash(const Options& opts) {
  std::uint64_t h = kFnvOffset;
  // Geometry: the exact surface coordinates, element by element. Element
  // names are labels, not mesh inputs, and are excluded.
  mix<std::uint64_t>(h, opts.airfoil.elements.size());
  for (const AirfoilElement& e : opts.airfoil.elements) {
    mix_points(h, e.surface);
  }
  mix(h, opts.airfoil.chord);
  // Boundary layer.
  mix(h, static_cast<std::uint8_t>(opts.growth_kind));
  mix(h, opts.first_height);
  mix(h, opts.growth_ratio);
  mix(h, opts.max_layers);
  // Inviscid region.
  mix(h, opts.farfield_chords);
  mix(h, opts.nearbody_margin);
  mix(h, opts.grade);
  mix(h, opts.surface_length_factor);
  // Decomposition: these change the subdomain tree, hence the record keys,
  // so a journal written under a different decomposition is useless even
  // though the final mesh would match.
  mix<std::uint64_t>(h, opts.bl_min_points);
  mix(h, opts.bl_max_level);
  mix(h, opts.inviscid_target_triangles);
  mix(h, opts.inviscid_max_level);
  return h;
}

// A journal record's payload is the raw triangle array: array<Vec2, 3> is
// trivially copyable and padding-free, the record CRC already guards the
// bytes, and the wire serializers are native-endian memcpy anyway -- so the
// checkpoint path writes straight from the mesher's vector with no
// serialization pass, no allocation, and no extra CRC. (This is what keeps
// checkpointing's wall overhead marginal: journaling a leaf costs one
// chained-CRC pass and one stream write of memory that already exists.)
using Tri = std::array<Vec2, 3>;
static_assert(std::is_trivially_copyable_v<Tri> &&
              sizeof(Tri) == 6 * sizeof(double));

ResumeState::ResumeState(const JournalContents& journal) {
  map_.reserve(journal.records.size());
  for (const JournalRecord& rec : journal.records) {
    if (rec.payload.size() % sizeof(Tri) != 0) {
      ++decode_failures_;  // CRC-intact but not a triangle block
      continue;
    }
    std::vector<Tri> tris(rec.payload.size() / sizeof(Tri));
    if (!tris.empty()) {
      // Decoding journal bytes into the typed vector, not copying a live
      // payload -- the journal is the owner handoff's far side.
      std::memcpy(tris.data(), rec.payload.data(),  // aerolint: allow(payload-copy)
                  rec.payload.size());
    }
    map_.emplace(rec.key, std::move(tris));
  }
}

bool CheckpointSink::open(const std::string& path, std::uint64_t config_hash,
                          bool append) {
  return writer_.open(path, config_hash, append);
}

void CheckpointSink::seed(std::uint64_t key) {
  const MutexLock lock(m_);
  seen_.insert(key);
}

bool CheckpointSink::record(std::uint64_t key,
                            const std::vector<std::array<Vec2, 3>>& tris) {
  {
    const MutexLock lock(m_);
    if (!seen_.insert(key).second) return true;  // already journaled
  }
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(tris.data());
  if (!writer_.append(key, bytes, tris.size() * sizeof(Tri))) return false;
  const MutexLock lock(m_);
  ++records_;
  return true;
}

std::size_t CheckpointSink::records() const {
  const MutexLock lock(m_);
  return records_;
}

}  // namespace aero
