#include "runtime/checkpoint.hpp"

#include <cstring>
#include <type_traits>

namespace aero {

std::uint64_t subdomain_key(const WorkUnit& unit) {
  const std::vector<std::uint8_t> bytes = serialize(unit);
  // Serialized layout: id (8) | failed_ranks (8) | kind + subdomain fields
  // | crc32 (4). The id and fault history are scheduling artifacts; the CRC
  // is redundant with the hash. Everything between is the subdomain.
  constexpr std::size_t kSkip = 16;
  constexpr std::size_t kTrailer = 4;
  return fnv1a(bytes.data() + kSkip, bytes.size() - kSkip - kTrailer);
}

// A journal record's payload is the raw triangle array: array<Vec2, 3> is
// trivially copyable and padding-free, the record CRC already guards the
// bytes, and the wire serializers are native-endian memcpy anyway -- so the
// checkpoint path writes straight from the mesher's vector with no
// serialization pass, no allocation, and no extra CRC. (This is what keeps
// checkpointing's wall overhead marginal: journaling a leaf costs one
// chained-CRC pass and one stream write of memory that already exists.)
using Tri = std::array<Vec2, 3>;
static_assert(std::is_trivially_copyable_v<Tri> &&
              sizeof(Tri) == 6 * sizeof(double));

MeshBlobStatus soup_status(const std::uint8_t* data, std::size_t len) {
  if (len < kSoupHeaderSize) return MeshBlobStatus::kTruncated;
  if (std::memcmp(data, kSoupMagic.data(), kSoupMagic.size()) != 0) {
    return MeshBlobStatus::kBadMagic;
  }
  std::uint32_t version = 0;
  // Header deframing, not a payload copy.
  std::memcpy(&version, data + 4, sizeof(version));  // aerolint: allow(payload-copy)
  if (version != kSoupVersion) return MeshBlobStatus::kBadVersion;
  if ((len - kSoupHeaderSize) % sizeof(Tri) != 0) {
    return MeshBlobStatus::kCountMismatch;
  }
  return MeshBlobStatus::kOk;
}

ResumeState::ResumeState(const JournalContents& journal) {
  map_.reserve(journal.records.size());
  for (const JournalRecord& rec : journal.records) {
    const MeshBlobStatus st = soup_status(rec.payload);
    if (st != MeshBlobStatus::kOk) {
      ++decode_failures_;  // CRC-intact but not a current-format soup
      if (st == MeshBlobStatus::kBadVersion) ++version_rejects_;
      continue;
    }
    const std::size_t body = rec.payload.size() - kSoupHeaderSize;
    std::vector<Tri> tris(body / sizeof(Tri));
    if (!tris.empty()) {
      // Decoding journal bytes into the typed vector, not copying a live
      // payload -- the journal is the owner handoff's far side.
      std::memcpy(tris.data(),  // aerolint: allow(payload-copy)
                  rec.payload.data() + kSoupHeaderSize, body);
    }
    map_.emplace(rec.key, std::move(tris));
  }
}

bool CheckpointSink::open(const std::string& path, std::uint64_t config_hash,
                          bool append) {
  return writer_.open(path, config_hash, append);
}

void CheckpointSink::seed(std::uint64_t key) {
  const MutexLock lock(m_);
  seen_.insert(key);
}

bool CheckpointSink::record(std::uint64_t key,
                            const std::vector<std::array<Vec2, 3>>& tris) {
  {
    const MutexLock lock(m_);
    if (!seen_.insert(key).second) return true;  // already journaled
  }
  std::uint8_t soup_head[kSoupHeaderSize];
  // ASUP tag framing (8 bytes), not a payload copy; the triangle bytes
  // below go to the journal by pointer, never staged through a buffer.
  std::memcpy(soup_head, kSoupMagic.data(), kSoupMagic.size());  // aerolint: allow(payload-copy)
  std::memcpy(soup_head + 4, &kSoupVersion, sizeof(kSoupVersion));  // aerolint: allow(payload-copy)
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(tris.data());
  if (!writer_.append(key, soup_head, sizeof(soup_head), bytes,
                      tris.size() * sizeof(Tri))) {
    return false;
  }
  const MutexLock lock(m_);
  ++records_;
  return true;
}

std::size_t CheckpointSink::records() const {
  const MutexLock lock(m_);
  return records_;
}

}  // namespace aero
