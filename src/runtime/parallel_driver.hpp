#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/mesh_generator.hpp"
#include "core/options.hpp"
#include "obs/export.hpp"
#include "runtime/pool.hpp"

namespace aero {

/// Run-level resilience wiring for the struct-poking driver overload (the
/// Options entry point derives this from the flat knobs). Everything is
/// optional; the defaults are a plain uncheckpointed, unbudgeted run.
struct ResilienceOptions {
  /// Wall/RSS budget enforced per pool pass (0 = unlimited).
  RunBudget budget;
  /// External stop request; flipping the pointee true drains the run.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Journal to stream finalized subdomains into ("" = no checkpointing).
  std::string checkpoint_path;
  /// Journal to resume from ("" = fresh run).
  std::string resume_path;
  /// Canonical options+geometry hash stamped into (and demanded of) the
  /// journal; use mesh_config_hash(opts).
  std::uint64_t config_hash = 0;
};

/// Completeness and checkpoint/resume accounting for one driver run,
/// aggregated over both pool passes. This is the data behind the CLI's
/// completeness report on a stopped run.
struct CheckpointSummary {
  bool resume_attempted = false;  ///< a resume_path was given
  bool resume_rejected = false;   ///< journal unusable; re-meshed from scratch
  std::string resume_error;       ///< why, when resume_rejected
  std::size_t resume_records = 0;    ///< intact records loaded
  std::size_t discarded_bytes = 0;   ///< corrupt/truncated tail dropped
  std::size_t resumed_units = 0;     ///< leaves replayed instead of meshed
  std::size_t checkpointed_units = 0;  ///< leaf records written this run
  std::size_t checkpoint_failures = 0; ///< journal appends that failed
  std::size_t units_total = 0;  ///< work units created across both passes
  std::size_t units_done = 0;   ///< units that produced their output
  StopCause stop_cause = StopCause::kNone;  ///< why a kStopped run drained
};

/// Result of a parallel (in-process rank pool) mesh generation run.
struct ParallelMeshResult {
  MergedMesh mesh;
  BoundaryLayer boundary_layer;
  GradedSizing sizing;
  PoolStats bl_pool;
  PoolStats inviscid_pool;
  PhaseTimings timings;
  /// Completeness + checkpoint/resume accounting across both passes.
  CheckpointSummary resilience;
  /// Worst outcome across the two pool passes: kOk when the mesh is
  /// complete, kStopped when a budget/stop drained the run (valid partial
  /// mesh, resumable journal), kPartial/kFailed when a pool lost results or
  /// hit the watchdog bound.
  RunStatus status = RunStatus::kOk;
};

/// The push-button pipeline with the subdomain work distributed over an
/// in-process rank pool (the MPI-substitute runtime): boundary-layer
/// decomposition+triangulation in one pool pass, then inviscid
/// decoupling+refinement in a second pass (the interface between them is
/// extracted from the assembled boundary-layer mesh, which is the one global
/// synchronization point of the pipeline).
///
/// `faults` configures the chaos fabric for the run (disabled by default);
/// the fault-*tolerance* machinery (CRC framing, acked transfers, watchdog)
/// is always on. A non-null `trace` records both pool passes' protocol
/// events for audit_protocol(); `opts.phase_hook` fires at the same phase
/// boundaries as in the sequential pipeline. `tuning` selects the transport
/// (RMA windows vs full-copy frames, small-message coalescing) and the
/// fault-tolerance timeouts for both pool passes. `resilience` wires
/// checkpointing, resume, budgets, and the external stop flag; a run
/// stopped mid-boundary-layer returns the raw partial BL mesh (no ring
/// restriction, no inviscid pass) -- valid, conformal, and resumable.
/// This fine-grained overload does NOT validate and ignores the fault /
/// transport / resilience knobs on `opts` in favor of the explicit structs
/// (chaos fixtures need rates the flat knobs cannot express); `nranks`
/// overrides `opts.ranks`.
ParallelMeshResult parallel_generate_mesh(
    const Options& opts, int nranks,
    const FaultConfig& faults = {}, ProtocolTrace* trace = nullptr,
    const PoolTuning& tuning = {}, const ResilienceOptions& resilience = {});

/// The unified-Options entry point: validates (throwing std::invalid_argument
/// on errors, including ranks < 1), derives the fault/transport structs from
/// the flat knobs (drop at `fault_rate`, duplication/corruption/delay at half
/// of it — the CLI's historical chaos mix), and runs the pool.
ParallelMeshResult parallel_generate_mesh(const Options& opts,
                                          ProtocolTrace* trace = nullptr);

/// Publish one pool pass's statistics into the global metrics registry under
/// `prefix` (e.g. "pool.bl." -> "pool.bl.steals"). Called by the driver for
/// both passes; exposed so benches can publish standalone run_pool calls.
void publish_pool_metrics(const PoolStats& stats, const std::string& prefix);

/// Per-rank load-balance rows aggregated over both pool passes (the
/// metrics.json load_balance table). Idle time is each rank's share of the
/// two passes' wall time not spent meshing or on protocol work.
std::vector<obs::RankLoad> rank_loads(const ParallelMeshResult& result);

}  // namespace aero
