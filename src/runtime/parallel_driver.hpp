#pragma once

#include <string>
#include <vector>

#include "core/mesh_generator.hpp"
#include "core/options.hpp"
#include "obs/export.hpp"
#include "runtime/pool.hpp"

namespace aero {

/// Result of a parallel (in-process rank pool) mesh generation run.
struct ParallelMeshResult {
  MergedMesh mesh;
  BoundaryLayer boundary_layer;
  GradedSizing sizing;
  PoolStats bl_pool;
  PoolStats inviscid_pool;
  PhaseTimings timings;
  /// Worst outcome across the two pool passes: kOk when the mesh is
  /// complete, kPartial/kFailed when a pool lost results or hit the
  /// watchdog bound.
  RunStatus status = RunStatus::kOk;
};

/// The push-button pipeline with the subdomain work distributed over an
/// in-process rank pool (the MPI-substitute runtime): boundary-layer
/// decomposition+triangulation in one pool pass, then inviscid
/// decoupling+refinement in a second pass (the interface between them is
/// extracted from the assembled boundary-layer mesh, which is the one global
/// synchronization point of the pipeline).
///
/// `faults` configures the chaos fabric for the run (disabled by default);
/// the fault-*tolerance* machinery (CRC framing, acked transfers, watchdog)
/// is always on. A non-null `trace` records both pool passes' protocol
/// events for audit_protocol(); `config.phase_hook` fires at the same phase
/// boundaries as in the sequential pipeline. `tuning` selects the transport
/// (RMA windows vs full-copy frames, small-message coalescing) for both pool
/// passes; the default keeps zero-copy on and coalescing off.
ParallelMeshResult parallel_generate_mesh(const MeshGeneratorConfig& config,
                                          int nranks,
                                          const FaultConfig& faults = {},
                                          ProtocolTrace* trace = nullptr,
                                          const PoolTuning& tuning = {});

/// The unified-Options entry point: validates (throwing std::invalid_argument
/// on errors, including ranks < 1), derives the fault/transport structs from
/// the flat knobs (drop at `fault_rate`, duplication/corruption/delay at half
/// of it — the CLI's historical chaos mix), and runs the pool. The
/// struct-poking overload above remains as the deprecated fine-grained path.
ParallelMeshResult parallel_generate_mesh(const Options& opts,
                                          ProtocolTrace* trace = nullptr);

/// Publish one pool pass's statistics into the global metrics registry under
/// `prefix` (e.g. "pool.bl." -> "pool.bl.steals"). Called by the driver for
/// both passes; exposed so benches can publish standalone run_pool calls.
void publish_pool_metrics(const PoolStats& stats, const std::string& prefix);

/// Per-rank load-balance rows aggregated over both pool passes (the
/// metrics.json load_balance table). Idle time is each rank's share of the
/// two passes' wall time not spent meshing or on protocol work.
std::vector<obs::RankLoad> rank_loads(const ParallelMeshResult& result);

}  // namespace aero
