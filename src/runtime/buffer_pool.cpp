#include "runtime/buffer_pool.hpp"

namespace aero {

namespace {

/// Smallest class index whose capacity (1 << (kMinClassLog2 + i)) holds `n`
/// bytes; one past the last class when `n` exceeds the largest.
std::size_t class_for_request(std::size_t n, std::size_t min_log2,
                              std::size_t classes) {
  for (std::size_t i = 0; i < classes; ++i) {
    if (n <= (std::size_t{1} << (min_log2 + i))) return i;
  }
  return classes;
}

}  // namespace

std::vector<std::uint8_t> BufferPool::acquire(std::size_t size_hint) {
  const std::size_t ci = class_for_request(size_hint, kMinClassLog2, kClasses);
  if (ci < kClasses) {
    MutexLock lock(m_);
    if (!free_[ci].empty()) {
      std::vector<std::uint8_t> buf = std::move(free_[ci].back());
      free_[ci].pop_back();
      hits_.fetch_add(1, std::memory_order_relaxed);
      return buf;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::uint8_t> buf;
  buf.reserve(ci < kClasses ? (std::size_t{1} << (kMinClassLog2 + ci))
                            : size_hint);
  return buf;
}

void BufferPool::release(std::vector<std::uint8_t> buf) {
  const std::size_t cap = buf.capacity();
  if (cap < (std::size_t{1} << kMinClassLog2)) return;
  // File under the largest class the capacity fully covers, so an acquire
  // from that class is guaranteed not to reallocate.
  std::size_t ci = 0;
  while (ci + 1 < kClasses &&
         cap >= (std::size_t{1} << (kMinClassLog2 + ci + 1))) {
    ++ci;
  }
  if (cap > (std::size_t{1} << kMaxClassLog2)) return;
  buf.clear();
  MutexLock lock(m_);
  if (free_[ci].size() < kMaxFreePerClass) {
    free_[ci].push_back(std::move(buf));
  }
}

}  // namespace aero
