#pragma once

#include <algorithm>
#include <limits>

#include "geom/vec2.hpp"

namespace aero {

/// Axis-aligned bounding box in two dimensions.
///
/// An empty box has min > max and behaves as the identity for `expand`.
struct BBox2 {
  Vec2 lo{std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
  Vec2 hi{-std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};

  constexpr BBox2() = default;
  constexpr BBox2(Vec2 lo_, Vec2 hi_) : lo(lo_), hi(hi_) {}

  /// Box spanning exactly the segment [a, b].
  static constexpr BBox2 of_segment(Vec2 a, Vec2 b) {
    return {{std::min(a.x, b.x), std::min(a.y, b.y)},
            {std::max(a.x, b.x), std::max(a.y, b.y)}};
  }

  constexpr bool empty() const { return lo.x > hi.x || lo.y > hi.y; }

  constexpr double width() const { return hi.x - lo.x; }
  constexpr double height() const { return hi.y - lo.y; }
  constexpr Vec2 center() const {
    return {(lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0};
  }

  /// Grow to include point p.
  void expand(Vec2 p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  /// Grow to include another box.
  void expand(const BBox2& b) {
    if (b.empty()) return;
    expand(b.lo);
    expand(b.hi);
  }

  /// Uniformly inflate by `margin` on every side.
  constexpr BBox2 inflated(double margin) const {
    return {{lo.x - margin, lo.y - margin}, {hi.x + margin, hi.y + margin}};
  }

  constexpr bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  constexpr bool intersects(const BBox2& b) const {
    return !(b.lo.x > hi.x || b.hi.x < lo.x || b.lo.y > hi.y || b.hi.y < lo.y);
  }
};

}  // namespace aero
