#pragma once

#include "geom/vec2.hpp"

namespace aero {

/// Signed area of triangle (a, b, c); positive when counter-clockwise.
/// This is the rounded value — use orient2d for the exact sign.
inline double signed_area(Vec2 a, Vec2 b, Vec2 c) {
  return 0.5 * ((b - a).cross(c - a));
}

/// Circumcenter of triangle (a, b, c). The triangle must be non-degenerate.
Vec2 circumcenter(Vec2 a, Vec2 b, Vec2 c);

/// Circumradius of triangle (a, b, c).
double circumradius(Vec2 a, Vec2 b, Vec2 c);

/// Length of the shortest edge of triangle (a, b, c).
double shortest_edge(Vec2 a, Vec2 b, Vec2 c);

/// Circumradius-to-shortest-edge ratio. Ruppert's algorithm terminates with
/// all ratios <= bound B; B = sqrt(2) corresponds to a 20.7 degree min angle.
double radius_edge_ratio(Vec2 a, Vec2 b, Vec2 c);

/// Smallest interior angle in radians.
double min_angle(Vec2 a, Vec2 b, Vec2 c);

/// Largest interior angle in radians.
double max_angle(Vec2 a, Vec2 b, Vec2 c);

/// Aspect ratio: longest edge / (2 * inradius). 1 for equilateral-ish, large
/// for the slivers and needles of an anisotropic boundary layer.
double aspect_ratio(Vec2 a, Vec2 b, Vec2 c);

}  // namespace aero
