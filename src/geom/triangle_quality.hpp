#pragma once

#include <algorithm>

#include "geom/vec2.hpp"

namespace aero {

/// Signed area of triangle (a, b, c); positive when counter-clockwise.
/// This is the rounded value — use orient2d for the exact sign.
inline double signed_area(Vec2 a, Vec2 b, Vec2 c) {
  return 0.5 * ((b - a).cross(c - a));
}

/// Circumcenter of triangle (a, b, c). The triangle must be non-degenerate.
Vec2 circumcenter(Vec2 a, Vec2 b, Vec2 c);

/// Circumradius of triangle (a, b, c).
double circumradius(Vec2 a, Vec2 b, Vec2 c);

/// Length of the shortest edge of triangle (a, b, c).
double shortest_edge(Vec2 a, Vec2 b, Vec2 c);

/// Circumradius-to-shortest-edge ratio. Ruppert's algorithm terminates with
/// all ratios <= bound B; B = sqrt(2) corresponds to a 20.7 degree min angle.
double radius_edge_ratio(Vec2 a, Vec2 b, Vec2 c);

/// True when radius_edge_ratio(a, b, c) > bound, evaluated without square
/// roots or divisions (compare R^2 * d^2 against bound^2 * s^2 * d^2
/// cross-multiplied). This is the refinement-loop form of the test: it may
/// disagree with the sqrt formulation by ~1 ulp at the threshold, which only
/// moves the split decision of exactly-borderline triangles.
inline bool radius_edge_exceeds(Vec2 a, Vec2 b, Vec2 c, double bound) {
  const Vec2 ab = b - a;
  const Vec2 ac = c - a;
  const double d = 2.0 * ab.cross(ac);
  const double ab2 = ab.norm2();
  const double ac2 = ac.norm2();
  // Circumcenter offset from `a`, scaled by d (see circumcenter()).
  const double ux = ac.y * ab2 - ab.y * ac2;
  const double uy = ab.x * ac2 - ac.x * ab2;
  const double bc2 = (c - b).norm2();
  const double s2 = std::min(std::min(ab2, ac2), bc2);
  if (s2 == 0.0) return true;  // coincident vertices: the ratio is infinite
  return ux * ux + uy * uy > (bound * bound) * s2 * (d * d);
}

/// Smallest interior angle in radians.
double min_angle(Vec2 a, Vec2 b, Vec2 c);

/// Largest interior angle in radians.
double max_angle(Vec2 a, Vec2 b, Vec2 c);

/// Aspect ratio: longest edge / (2 * inradius). 1 for equilateral-ish, large
/// for the slivers and needles of an anisotropic boundary layer.
double aspect_ratio(Vec2 a, Vec2 b, Vec2 c);

}  // namespace aero
