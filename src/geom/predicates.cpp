// Adaptive-precision floating-point predicates, after:
//   J. R. Shewchuk, "Adaptive Precision Floating-Point Arithmetic and Fast
//   Robust Geometric Predicates," Discrete & Computational Geometry 18, 1997.
//
// The implementation follows Shewchuk's staged design: a cheap floating-point
// evaluation with a forward error bound (stage A), successively tighter
// correction stages (B, C), and a fully exact expansion-arithmetic evaluation
// as the final fallback. The exact product tails use std::fma, which computes
// a*b - round(a*b) exactly and replaces the classic Dekker splitting; the
// published error bounds are unchanged because the tail value is identical.
//
// incircle() implements stages A-C and then falls back to the exact
// determinant on the *original* (untranslated) coordinates instead of
// Shewchuk's very long fully-adaptive stage D. This is exactly as robust and
// only slower on inputs that are within a few ulps of cocircular, which the
// structured boundary-layer point sets do hit -- the stage counters exist so
// tests can confirm both that the fallback fires and that it is rare.

#include "geom/predicates.hpp"

#include "geom/expansion.hpp"

#include <cmath>
#include <limits>

namespace aero {
namespace predicates_detail {

StageCounters& counters() {
  thread_local StageCounters c;
  return c;
}

void reset_counters() { counters() = StageCounters{}; }

}  // namespace predicates_detail

namespace {

using predicates_detail::counters;
using namespace aero::expansion;

constexpr double kEps = std::numeric_limits<double>::epsilon() / 2.0;  // 2^-53
constexpr double kResultErrBound = (3.0 + 8.0 * kEps) * kEps;
constexpr double kCcwErrBoundA = (3.0 + 16.0 * kEps) * kEps;
constexpr double kCcwErrBoundB = (2.0 + 12.0 * kEps) * kEps;
constexpr double kCcwErrBoundC = (9.0 + 64.0 * kEps) * kEps * kEps;
constexpr double kIccErrBoundA = (10.0 + 96.0 * kEps) * kEps;
constexpr double kIccErrBoundB = (4.0 + 48.0 * kEps) * kEps;
constexpr double kIccErrBoundC = (44.0 + 576.0 * kEps) * kEps * kEps;

// --- orient2d ----------------------------------------------------------------

double orient2d_adapt(Vec2 pa, Vec2 pb, Vec2 pc, double detsum) {
  const double acx = pa.x - pc.x;
  const double bcx = pb.x - pc.x;
  const double acy = pa.y - pc.y;
  const double bcy = pb.y - pc.y;

  double detleft, detlefttail, detright, detrighttail;
  two_product(acx, bcy, detleft, detlefttail);
  two_product(acy, bcx, detright, detrighttail);

  double b[4];
  two_two_diff(detleft, detlefttail, detright, detrighttail, b[3], b[2], b[1],
               b[0]);

  double det = estimate(4, b);
  double errbound = kCcwErrBoundB * detsum;
  if ((det >= errbound) || (-det >= errbound)) {
    ++counters().adapt;
    return det;
  }

  const double acxtail = two_diff_tail(pa.x, pc.x, acx);
  const double bcxtail = two_diff_tail(pb.x, pc.x, bcx);
  const double acytail = two_diff_tail(pa.y, pc.y, acy);
  const double bcytail = two_diff_tail(pb.y, pc.y, bcy);

  if ((acxtail == 0.0) && (acytail == 0.0) && (bcxtail == 0.0) &&
      (bcytail == 0.0)) {
    ++counters().adapt;
    return det;
  }

  errbound = kCcwErrBoundC * detsum + kResultErrBound * std::fabs(det);
  det += (acx * bcytail + bcy * acxtail) - (acy * bcxtail + bcx * acytail);
  if ((det >= errbound) || (-det >= errbound)) {
    ++counters().adapt;
    return det;
  }

  // Exact remainder: accumulate the four cross terms into one expansion.
  ++counters().exact;
  double u[4];
  double s1, s0, t1, t0;

  two_product(acxtail, bcy, s1, s0);
  two_product(acytail, bcx, t1, t0);
  two_two_diff(s1, s0, t1, t0, u[3], u[2], u[1], u[0]);
  double c1[8];
  const int c1len = fast_expansion_sum_zeroelim(4, b, 4, u, c1);

  two_product(acx, bcytail, s1, s0);
  two_product(acy, bcxtail, t1, t0);
  two_two_diff(s1, s0, t1, t0, u[3], u[2], u[1], u[0]);
  double c2[12];
  const int c2len = fast_expansion_sum_zeroelim(c1len, c1, 4, u, c2);

  two_product(acxtail, bcytail, s1, s0);
  two_product(acytail, bcxtail, t1, t0);
  two_two_diff(s1, s0, t1, t0, u[3], u[2], u[1], u[0]);
  double d[16];
  const int dlen = fast_expansion_sum_zeroelim(c2len, c2, 4, u, d);

  return d[dlen - 1];
}

// --- incircle ----------------------------------------------------------------

// Exact sign of the 4x4 incircle determinant on the original coordinates.
double incircle_exact(Vec2 pa, Vec2 pb, Vec2 pc, Vec2 pd) {
  double p1, p0, q1, q0;
  double ab[4], bc[4], cd[4], da[4], ac[4], bd[4];

  two_product(pa.x, pb.y, p1, p0);
  two_product(pb.x, pa.y, q1, q0);
  two_two_diff(p1, p0, q1, q0, ab[3], ab[2], ab[1], ab[0]);

  two_product(pb.x, pc.y, p1, p0);
  two_product(pc.x, pb.y, q1, q0);
  two_two_diff(p1, p0, q1, q0, bc[3], bc[2], bc[1], bc[0]);

  two_product(pc.x, pd.y, p1, p0);
  two_product(pd.x, pc.y, q1, q0);
  two_two_diff(p1, p0, q1, q0, cd[3], cd[2], cd[1], cd[0]);

  two_product(pd.x, pa.y, p1, p0);
  two_product(pa.x, pd.y, q1, q0);
  two_two_diff(p1, p0, q1, q0, da[3], da[2], da[1], da[0]);

  two_product(pa.x, pc.y, p1, p0);
  two_product(pc.x, pa.y, q1, q0);
  two_two_diff(p1, p0, q1, q0, ac[3], ac[2], ac[1], ac[0]);

  two_product(pb.x, pd.y, p1, p0);
  two_product(pd.x, pb.y, q1, q0);
  two_two_diff(p1, p0, q1, q0, bd[3], bd[2], bd[1], bd[0]);

  double temp8[8];
  double cda[12], dab[12], abc[12], bcd[12];
  int temp8len, cdalen, dablen, abclen, bcdlen;

  temp8len = fast_expansion_sum_zeroelim(4, cd, 4, da, temp8);
  cdalen = fast_expansion_sum_zeroelim(temp8len, temp8, 4, ac, cda);
  temp8len = fast_expansion_sum_zeroelim(4, da, 4, ab, temp8);
  dablen = fast_expansion_sum_zeroelim(temp8len, temp8, 4, bd, dab);
  for (int i = 0; i < 4; ++i) {
    bd[i] = -bd[i];
    ac[i] = -ac[i];
  }
  temp8len = fast_expansion_sum_zeroelim(4, ab, 4, bc, temp8);
  abclen = fast_expansion_sum_zeroelim(temp8len, temp8, 4, ac, abc);
  temp8len = fast_expansion_sum_zeroelim(4, bc, 4, cd, temp8);
  bcdlen = fast_expansion_sum_zeroelim(temp8len, temp8, 4, bd, bcd);

  double det24x[24], det24y[24], det48x[48], det48y[48];
  double adet[96], bdet[96], cdet[96], ddet[96];
  int xlen, ylen, alen, blen, clen, dlen;

  xlen = scale_expansion_zeroelim(bcdlen, bcd, pa.x, det24x);
  xlen = scale_expansion_zeroelim(xlen, det24x, pa.x, det48x);
  ylen = scale_expansion_zeroelim(bcdlen, bcd, pa.y, det24y);
  ylen = scale_expansion_zeroelim(ylen, det24y, pa.y, det48y);
  alen = fast_expansion_sum_zeroelim(xlen, det48x, ylen, det48y, adet);

  xlen = scale_expansion_zeroelim(cdalen, cda, pb.x, det24x);
  xlen = scale_expansion_zeroelim(xlen, det24x, -pb.x, det48x);
  ylen = scale_expansion_zeroelim(cdalen, cda, pb.y, det24y);
  ylen = scale_expansion_zeroelim(ylen, det24y, -pb.y, det48y);
  blen = fast_expansion_sum_zeroelim(xlen, det48x, ylen, det48y, bdet);

  xlen = scale_expansion_zeroelim(dablen, dab, pc.x, det24x);
  xlen = scale_expansion_zeroelim(xlen, det24x, pc.x, det48x);
  ylen = scale_expansion_zeroelim(dablen, dab, pc.y, det24y);
  ylen = scale_expansion_zeroelim(ylen, det24y, pc.y, det48y);
  clen = fast_expansion_sum_zeroelim(xlen, det48x, ylen, det48y, cdet);

  xlen = scale_expansion_zeroelim(abclen, abc, pd.x, det24x);
  xlen = scale_expansion_zeroelim(xlen, det24x, -pd.x, det48x);
  ylen = scale_expansion_zeroelim(abclen, abc, pd.y, det24y);
  ylen = scale_expansion_zeroelim(ylen, det24y, -pd.y, det48y);
  dlen = fast_expansion_sum_zeroelim(xlen, det48x, ylen, det48y, ddet);

  double abdet[192], cddet[192], deter[384];
  const int ablen = fast_expansion_sum_zeroelim(alen, adet, blen, bdet, abdet);
  const int cdlen = fast_expansion_sum_zeroelim(clen, cdet, dlen, ddet, cddet);
  const int deterlen =
      fast_expansion_sum_zeroelim(ablen, abdet, cdlen, cddet, deter);
  return deter[deterlen - 1];
}

double incircle_adapt(Vec2 pa, Vec2 pb, Vec2 pc, Vec2 pd, double permanent) {
  const double adx = pa.x - pd.x;
  const double bdx = pb.x - pd.x;
  const double cdx = pc.x - pd.x;
  const double ady = pa.y - pd.y;
  const double bdy = pb.y - pd.y;
  const double cdy = pc.y - pd.y;

  double p1, p0, q1, q0;
  double bc[4], ca[4], ab[4];

  two_product(bdx, cdy, p1, p0);
  two_product(cdx, bdy, q1, q0);
  two_two_diff(p1, p0, q1, q0, bc[3], bc[2], bc[1], bc[0]);

  two_product(cdx, ady, p1, p0);
  two_product(adx, cdy, q1, q0);
  two_two_diff(p1, p0, q1, q0, ca[3], ca[2], ca[1], ca[0]);

  two_product(adx, bdy, p1, p0);
  two_product(bdx, ady, q1, q0);
  two_two_diff(p1, p0, q1, q0, ab[3], ab[2], ab[1], ab[0]);

  double axtb[8], axxtb[16], aytb[8], ayytb[16];
  double adet[32], bdet[32], cdet[32];
  int len, alen, blen, clen;

  len = scale_expansion_zeroelim(4, bc, adx, axtb);
  len = scale_expansion_zeroelim(len, axtb, adx, axxtb);
  int leny = scale_expansion_zeroelim(4, bc, ady, aytb);
  leny = scale_expansion_zeroelim(leny, aytb, ady, ayytb);
  alen = fast_expansion_sum_zeroelim(len, axxtb, leny, ayytb, adet);

  len = scale_expansion_zeroelim(4, ca, bdx, axtb);
  len = scale_expansion_zeroelim(len, axtb, bdx, axxtb);
  leny = scale_expansion_zeroelim(4, ca, bdy, aytb);
  leny = scale_expansion_zeroelim(leny, aytb, bdy, ayytb);
  blen = fast_expansion_sum_zeroelim(len, axxtb, leny, ayytb, bdet);

  len = scale_expansion_zeroelim(4, ab, cdx, axtb);
  len = scale_expansion_zeroelim(len, axtb, cdx, axxtb);
  leny = scale_expansion_zeroelim(4, ab, cdy, aytb);
  leny = scale_expansion_zeroelim(leny, aytb, cdy, ayytb);
  clen = fast_expansion_sum_zeroelim(len, axxtb, leny, ayytb, cdet);

  double abdet[64], fin1[96];
  const int ablen = fast_expansion_sum_zeroelim(alen, adet, blen, bdet, abdet);
  const int finlength =
      fast_expansion_sum_zeroelim(ablen, abdet, clen, cdet, fin1);

  double det = estimate(finlength, fin1);
  double errbound = kIccErrBoundB * permanent;
  if ((det >= errbound) || (-det >= errbound)) {
    ++counters().adapt;
    return det;
  }

  const double adxtail = two_diff_tail(pa.x, pd.x, adx);
  const double adytail = two_diff_tail(pa.y, pd.y, ady);
  const double bdxtail = two_diff_tail(pb.x, pd.x, bdx);
  const double bdytail = two_diff_tail(pb.y, pd.y, bdy);
  const double cdxtail = two_diff_tail(pc.x, pd.x, cdx);
  const double cdytail = two_diff_tail(pc.y, pd.y, cdy);
  if ((adxtail == 0.0) && (bdxtail == 0.0) && (cdxtail == 0.0) &&
      (adytail == 0.0) && (bdytail == 0.0) && (cdytail == 0.0)) {
    ++counters().adapt;
    return det;
  }

  errbound = kIccErrBoundC * permanent + kResultErrBound * std::fabs(det);
  det += ((adx * adx + ady * ady) *
              ((bdx * cdytail + cdy * bdxtail) -
               (bdy * cdxtail + cdx * bdytail)) +
          2.0 * (adx * adxtail + ady * adytail) * (bdx * cdy - bdy * cdx)) +
         ((bdx * bdx + bdy * bdy) *
              ((cdx * adytail + ady * cdxtail) -
               (cdy * adxtail + adx * cdytail)) +
          2.0 * (bdx * bdxtail + bdy * bdytail) * (cdx * ady - cdy * adx)) +
         ((cdx * cdx + cdy * cdy) *
              ((adx * bdytail + bdy * adxtail) -
               (ady * bdxtail + bdx * adytail)) +
          2.0 * (cdx * cdxtail + cdy * cdytail) * (adx * bdy - ady * bdx));
  if ((det >= errbound) || (-det >= errbound)) {
    ++counters().adapt;
    return det;
  }

  // Within a few ulps of cocircular: fall back to the exact determinant on
  // the original coordinates (replaces Shewchuk's fully adaptive stage D).
  ++counters().exact;
  return incircle_exact(pa, pb, pc, pd);
}

}  // namespace

double orient2d(Vec2 pa, Vec2 pb, Vec2 pc) {
  const double detleft = (pa.x - pc.x) * (pb.y - pc.y);
  const double detright = (pa.y - pc.y) * (pb.x - pc.x);
  const double det = detleft - detright;
  double detsum;

  if (detleft > 0.0) {
    if (detright <= 0.0) {
      ++counters().fast;
      return det;
    }
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) {
      ++counters().fast;
      return det;
    }
    detsum = -detleft - detright;
  } else {
    ++counters().fast;
    return det;
  }

  const double errbound = kCcwErrBoundA * detsum;
  if ((det >= errbound) || (-det >= errbound)) {
    ++counters().fast;
    return det;
  }
  return orient2d_adapt(pa, pb, pc, detsum);
}

double incircle(Vec2 pa, Vec2 pb, Vec2 pc, Vec2 pd) {
  const double adx = pa.x - pd.x;
  const double bdx = pb.x - pd.x;
  const double cdx = pc.x - pd.x;
  const double ady = pa.y - pd.y;
  const double bdy = pb.y - pd.y;
  const double cdy = pc.y - pd.y;

  const double bdxcdy = bdx * cdy;
  const double cdxbdy = cdx * bdy;
  const double alift = adx * adx + ady * ady;

  const double cdxady = cdx * ady;
  const double adxcdy = adx * cdy;
  const double blift = bdx * bdx + bdy * bdy;

  const double adxbdy = adx * bdy;
  const double bdxady = bdx * ady;
  const double clift = cdx * cdx + cdy * cdy;

  const double det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) +
                     clift * (adxbdy - bdxady);

  const double permanent =
      (std::fabs(bdxcdy) + std::fabs(cdxbdy)) * alift +
      (std::fabs(cdxady) + std::fabs(adxcdy)) * blift +
      (std::fabs(adxbdy) + std::fabs(bdxady)) * clift;
  const double errbound = kIccErrBoundA * permanent;
  if ((det > errbound) || (-det > errbound)) {
    ++counters().fast;
    return det;
  }
  return incircle_adapt(pa, pb, pc, pd, permanent);
}

bool on_segment(Vec2 a, Vec2 b, Vec2 c) {
  if (orient2d(a, b, c) != 0.0) return false;
  if (a.x != b.x) {
    return (c.x >= std::min(a.x, b.x)) && (c.x <= std::max(a.x, b.x));
  }
  return (c.y >= std::min(a.y, b.y)) && (c.y <= std::max(a.y, b.y));
}

}  // namespace aero
