#pragma once

#include "geom/vec2.hpp"

namespace aero {

/// Orientation of an ordered point triple.
enum class Orientation {
  kClockwise = -1,
  kCollinear = 0,
  kCounterClockwise = 1,
};

/// Adaptive-precision orientation test (Shewchuk).
///
/// Returns a positive value if the points a, b, c occur in counter-clockwise
/// order; a negative value if they occur in clockwise order; and zero if they
/// are exactly collinear. The magnitude approximates twice the signed area of
/// the triangle, and the *sign* is always exact: a fast floating-point filter
/// handles the common case and progressively more precise stages (culminating
/// in exact expansion arithmetic) resolve near-degenerate inputs.
double orient2d(Vec2 a, Vec2 b, Vec2 c);

/// Adaptive-precision in-circle test (Shewchuk).
///
/// Returns a positive value if point d lies strictly inside the circle
/// through a, b, c; negative if strictly outside; zero if the four points are
/// exactly cocircular. The points a, b, c must be in counter-clockwise order
/// or the sign is reversed. The sign is always exact.
double incircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// Classified orientation of a, b, c with an exact sign.
inline Orientation orientation(Vec2 a, Vec2 b, Vec2 c) {
  const double d = orient2d(a, b, c);
  if (d > 0.0) return Orientation::kCounterClockwise;
  if (d < 0.0) return Orientation::kClockwise;
  return Orientation::kCollinear;
}

/// True if d is strictly inside the circumcircle of ccw triangle (a, b, c).
inline bool in_circle(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  return incircle(a, b, c, d) > 0.0;
}

/// Exact test for c lying on the closed segment [a, b].
/// Requires collinearity to be established by the caller or checks it itself.
bool on_segment(Vec2 a, Vec2 b, Vec2 c);

namespace predicates_detail {
/// Counters for predicate stage usage; exposed for tests and benchmarks so we
/// can verify the exact fallback actually fires on degenerate inputs.
struct StageCounters {
  long fast = 0;    ///< resolved by the stage-A floating-point filter
  long adapt = 0;   ///< resolved by an adaptive refinement stage
  long exact = 0;   ///< resolved by full exact expansion arithmetic
};
StageCounters& counters();
void reset_counters();
}  // namespace predicates_detail

}  // namespace aero
