#include "geom/expansion.hpp"

namespace aero::expansion {

int fast_expansion_sum_zeroelim(int elen, const double* e, int flen,
                                const double* f, double* h) {
  double q, qnew, hh;
  int eindex = 0, findex = 0, hindex = 0;
  double enow = e[0];
  double fnow = f[0];
  if ((fnow > enow) == (fnow > -enow)) {
    q = enow;
    if (++eindex < elen) enow = e[eindex];
  } else {
    q = fnow;
    if (++findex < flen) fnow = f[findex];
  }
  if ((eindex < elen) && (findex < flen)) {
    if ((fnow > enow) == (fnow > -enow)) {
      fast_two_sum(enow, q, qnew, hh);
      if (++eindex < elen) enow = e[eindex];
    } else {
      fast_two_sum(fnow, q, qnew, hh);
      if (++findex < flen) fnow = f[findex];
    }
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
    while ((eindex < elen) && (findex < flen)) {
      if ((fnow > enow) == (fnow > -enow)) {
        two_sum(q, enow, qnew, hh);
        if (++eindex < elen) enow = e[eindex];
      } else {
        two_sum(q, fnow, qnew, hh);
        if (++findex < flen) fnow = f[findex];
      }
      q = qnew;
      if (hh != 0.0) h[hindex++] = hh;
    }
  }
  while (eindex < elen) {
    two_sum(q, enow, qnew, hh);
    if (++eindex < elen) enow = e[eindex];
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  while (findex < flen) {
    two_sum(q, fnow, qnew, hh);
    if (++findex < flen) fnow = f[findex];
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  if ((q != 0.0) || (hindex == 0)) h[hindex++] = q;
  return hindex;
}

int scale_expansion_zeroelim(int elen, const double* e, double b, double* h) {
  double q, sum, hh, product1, product0;
  int hindex = 0;
  two_product(e[0], b, q, hh);
  if (hh != 0.0) h[hindex++] = hh;
  for (int eindex = 1; eindex < elen; ++eindex) {
    two_product(e[eindex], b, product1, product0);
    two_sum(q, product0, sum, hh);
    if (hh != 0.0) h[hindex++] = hh;
    fast_two_sum(product1, sum, q, hh);
    if (hh != 0.0) h[hindex++] = hh;
  }
  if ((q != 0.0) || (hindex == 0)) h[hindex++] = q;
  return hindex;
}

double estimate(int elen, const double* e) {
  double q = e[0];
  for (int i = 1; i < elen; ++i) q += e[i];
  return q;
}

}  // namespace aero::expansion
