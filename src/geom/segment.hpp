#pragma once

#include <optional>
#include <span>

#include "geom/bbox.hpp"
#include "geom/vec2.hpp"

namespace aero {

/// Closed line segment between two points.
struct Segment {
  Vec2 a;
  Vec2 b;

  BBox2 bbox() const { return BBox2::of_segment(a, b); }
  double length() const { return distance(a, b); }
  Vec2 direction() const { return (b - a).normalized(); }
};

/// How two segments meet, as classified by `intersect`.
enum class IntersectKind {
  kNone,        ///< disjoint
  kProper,      ///< cross at a single interior point of both
  kEndpoint,    ///< touch at an endpoint of at least one segment
  kCollinear,   ///< overlap along a shared collinear stretch
};

/// Result of a segment-segment intersection query.
struct IntersectResult {
  IntersectKind kind = IntersectKind::kNone;
  /// Intersection point (for kProper / kEndpoint) or a representative point
  /// of the overlap (for kCollinear).
  Vec2 point{};
  /// Parameter along the first segment in [0, 1] at `point` (approximate;
  /// the classification itself is exact).
  double t = 0.0;

  explicit operator bool() const { return kind != IntersectKind::kNone; }
};

/// Exact-classification segment intersection.
///
/// The *decision* (whether and how the segments intersect) is made with the
/// exact orient2d predicate; only the coordinates of the intersection point
/// are computed in rounded arithmetic. This is the contract the boundary-layer
/// ray clipping needs: a ray is truncated at an approximate point, but a
/// crossing is never missed or invented.
IntersectResult intersect(const Segment& s1, const Segment& s2);

/// True if the segments share at least one point (any IntersectKind).
bool segments_intersect(const Segment& s1, const Segment& s2);

/// Cohen–Sutherland outcode for point p against box `box`.
/// Bit layout: 1 = left, 2 = right, 4 = bottom, 8 = top; 0 means inside.
unsigned cohen_sutherland_outcode(Vec2 p, const BBox2& box);

/// Cohen–Sutherland line clipping. Returns the portion of [a, b] inside
/// `box`, or nullopt if the segment lies entirely outside.
std::optional<Segment> clip_to_box(Vec2 a, Vec2 b, const BBox2& box);

/// Fast conservative test: does segment [a, b] possibly intersect `box`?
/// (Trivial-reject via outcodes plus the clip; used to prune candidate rays
/// against another element's boundary-layer AABB.)
bool segment_intersects_box(Vec2 a, Vec2 b, const BBox2& box);

/// Distance from point p to the closed segment [a, b].
double point_segment_distance(Vec2 p, Vec2 a, Vec2 b);

/// Exact point-in-polygon test (crossing parity with robust orientation
/// tests). The polygon is closed implicitly (last -> first) and may be
/// non-convex. Points exactly on the boundary report true.
bool point_in_polygon(Vec2 p, std::span<const Vec2> polygon);

/// Interior angle at vertex b of the polyline a-b-c, in radians [0, pi].
double angle_at(Vec2 a, Vec2 b, Vec2 c);

/// Signed angle from direction u to direction v in (-pi, pi].
double signed_angle(Vec2 u, Vec2 v);

}  // namespace aero
