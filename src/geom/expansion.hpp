#pragma once

// Error-free floating-point transformations and expansion arithmetic
// (Shewchuk 1997). An "expansion" is a sum of doubles with nonoverlapping,
// increasing-magnitude components; arithmetic on expansions is exact. These
// primitives back both the classic orient2d/incircle predicates and the
// custom lifted-turn predicate used by the projection-based domain
// decomposition.

#include <cmath>

namespace aero::expansion {

/// Requires |a| >= |b| (or a == 0). x + y == a + b exactly, x == fl(a + b).
inline void fast_two_sum(double a, double b, double& x, double& y) {
  x = a + b;
  const double bvirt = x - a;
  y = b - bvirt;
}

inline void two_sum(double a, double b, double& x, double& y) {
  x = a + b;
  const double bvirt = x - a;
  const double avirt = x - bvirt;
  const double bround = b - bvirt;
  const double around = a - avirt;
  y = around + bround;
}

inline void two_diff(double a, double b, double& x, double& y) {
  x = a - b;
  const double bvirt = a - x;
  const double avirt = x + bvirt;
  const double bround = bvirt - b;
  const double around = a - avirt;
  y = around + bround;
}

/// Tail of a - b given the already-rounded difference x.
inline double two_diff_tail(double a, double b, double x) {
  const double bvirt = a - x;
  const double avirt = x + bvirt;
  const double bround = bvirt - b;
  const double around = a - avirt;
  return around + bround;
}

/// x + y == a * b exactly, x == fl(a * b). Uses FMA for the exact tail.
inline void two_product(double a, double b, double& x, double& y) {
  x = a * b;
  y = std::fma(a, b, -x);
}

/// (a1, a0) - b -> (x2, x1, x0).
inline void two_one_diff(double a1, double a0, double b, double& x2,
                         double& x1, double& x0) {
  double i;
  two_diff(a0, b, i, x0);
  two_sum(a1, i, x2, x1);
}

/// (a1, a0) - (b1, b0) -> (x3, x2, x1, x0).
inline void two_two_diff(double a1, double a0, double b1, double b0,
                         double& x3, double& x2, double& x1, double& x0) {
  double j, r0;
  two_one_diff(a1, a0, b0, j, r0, x0);
  two_one_diff(j, r0, b1, x3, x2, x1);
}

/// h = e + f for expansions sorted by increasing magnitude; returns the
/// number of components written (zero components eliminated, at least one).
int fast_expansion_sum_zeroelim(int elen, const double* e, int flen,
                                const double* f, double* h);

/// h = e * b; returns the component count (zero components eliminated).
int scale_expansion_zeroelim(int elen, const double* e, double b, double* h);

/// Approximate value of an expansion (useful with a forward error bound).
double estimate(int elen, const double* e);

/// Exact sign of an expansion: sign of its largest-magnitude component.
inline int sign(int elen, const double* e) {
  const double top = e[elen - 1];
  return top > 0.0 ? 1 : (top < 0.0 ? -1 : 0);
}

}  // namespace aero::expansion
