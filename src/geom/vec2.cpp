#include "geom/vec2.hpp"

#include <ostream>

namespace aero {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace aero
