#pragma once

#include <cmath>
#include <cstddef>
#include <functional>
#include <iosfwd>

namespace aero {

/// Two-dimensional point / vector with double coordinates.
///
/// This is the coordinate type used throughout the mesh generator. It is a
/// trivially-copyable aggregate so that arrays of vertices can be moved with
/// low-level memory copies during subdomain partitioning (see the storage
/// discussion in the paper's Implementation section).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  Vec2& operator*=(double s) { x *= s; y *= s; return *this; }

  constexpr bool operator==(const Vec2&) const = default;

  /// Dot product.
  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// Z-component of the 3D cross product (signed parallelogram area).
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }

  double norm() const { return std::hypot(x, y); }
  constexpr double norm2() const { return x * x + y * y; }

  /// Unit vector in the same direction. Returns {0,0} for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  /// Counter-clockwise perpendicular (rotate by +90 degrees).
  constexpr Vec2 perp() const { return {-y, x}; }

  /// Rotate by `theta` radians counter-clockwise.
  Vec2 rotated(double theta) const {
    const double c = std::cos(theta), s = std::sin(theta);
    return {c * x - s * y, s * x + c * y};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// Midpoint of two points.
constexpr Vec2 midpoint(Vec2 a, Vec2 b) { return {(a.x + b.x) / 2.0, (a.y + b.y) / 2.0}; }

/// Linear interpolation: t=0 gives a, t=1 gives b.
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

std::ostream& operator<<(std::ostream& os, Vec2 v);

/// Lexicographic x-then-y ordering, used for x-sorted vertex arrays.
struct LessXY {
  constexpr bool operator()(Vec2 a, Vec2 b) const {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  }
};

/// Lexicographic y-then-x ordering, used for y-sorted vertex arrays.
struct LessYX {
  constexpr bool operator()(Vec2 a, Vec2 b) const {
    return a.y < b.y || (a.y == b.y && a.x < b.x);
  }
};

struct Vec2Hash {
  std::size_t operator()(Vec2 v) const {
    const std::size_t hx = std::hash<double>{}(v.x);
    const std::size_t hy = std::hash<double>{}(v.y);
    return hx ^ (hy + 0x9e3779b97f4a7c15ULL + (hx << 6) + (hx >> 2));
  }
};

}  // namespace aero
