#include "geom/triangle_quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/segment.hpp"

namespace aero {

Vec2 circumcenter(Vec2 a, Vec2 b, Vec2 c) {
  // Translate so `a` is the origin: better conditioning for thin triangles
  // far from the origin, which boundary layers are full of.
  const Vec2 ab = b - a;
  const Vec2 ac = c - a;
  const double d = 2.0 * ab.cross(ac);
  const double ab2 = ab.norm2();
  const double ac2 = ac.norm2();
  const double ux = (ac.y * ab2 - ab.y * ac2) / d;
  const double uy = (ab.x * ac2 - ac.x * ab2) / d;
  return {a.x + ux, a.y + uy};
}

double circumradius(Vec2 a, Vec2 b, Vec2 c) {
  return distance(circumcenter(a, b, c), a);
}

double shortest_edge(Vec2 a, Vec2 b, Vec2 c) {
  return std::min({distance(a, b), distance(b, c), distance(c, a)});
}

double radius_edge_ratio(Vec2 a, Vec2 b, Vec2 c) {
  const double s = shortest_edge(a, b, c);
  return s > 0.0 ? circumradius(a, b, c) / s
                 : std::numeric_limits<double>::infinity();
}

double min_angle(Vec2 a, Vec2 b, Vec2 c) {
  return std::min({angle_at(c, a, b), angle_at(a, b, c), angle_at(b, c, a)});
}

double max_angle(Vec2 a, Vec2 b, Vec2 c) {
  return std::max({angle_at(c, a, b), angle_at(a, b, c), angle_at(b, c, a)});
}

double aspect_ratio(Vec2 a, Vec2 b, Vec2 c) {
  const double lab = distance(a, b);
  const double lbc = distance(b, c);
  const double lca = distance(c, a);
  const double longest = std::max({lab, lbc, lca});
  const double area = std::fabs(signed_area(a, b, c));
  if (area == 0.0) return std::numeric_limits<double>::infinity();
  const double s = (lab + lbc + lca) / 2.0;  // semi-perimeter
  const double inradius = area / s;
  return longest / (2.0 * inradius);
}

}  // namespace aero
