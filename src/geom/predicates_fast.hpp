#pragma once

// Semi-static predicate filter fast path.
//
// The adaptive predicates in predicates.cpp are sign-exact but live behind a
// function call: every orient2d()/incircle() in the Bowyer-Watson hot loop
// pays call overhead even when the stage-A floating-point filter (the common
// case by far) would have resolved the sign in a dozen flops. These inline
// wrappers evaluate the same filters at the call site and fall through to
// the exact adaptive predicates only on an inconclusive sign, so:
//
//   * the *sign* of every result is identical to the exact predicate's sign
//     (callers of the fast path must consume only the sign -- the magnitude
//     is the unadapted stage-A determinant, not the refined estimate);
//   * meshes built through the fast path are bit-identical to meshes built
//     through orient2d()/incircle() directly (verified by test_kernel.cpp on
//     1e6 random and adversarial near-degenerate inputs);
//   * the predicate stage counters are NOT incremented on the inline accept
//     path (counting through a thread_local is most of the cost being
//     removed); inconclusive calls fall into the exact predicates and count
//     there as before.
//
// incircle_fast additionally carries a *semi-static* first tier: a forward
// error bound computed from the maximum coordinate-difference magnitude
// (4 multiplies off the critical path) that certifies the sign before the
// dynamic stage-A permanent is even assembled. The static bound over-covers
// the dynamic one (permanent <= 12*m^4, certified with factor 16), so a
// sign it accepts is always one stage A would also accept.

#include <cmath>
#include <limits>

#include "geom/predicates.hpp"
#include "geom/vec2.hpp"

namespace aero {

namespace predicates_fast_detail {
constexpr double kEps = std::numeric_limits<double>::epsilon() / 2.0;
/// Stage-A bounds, identical to the ones inside predicates.cpp.
constexpr double kCcwErrBoundA = (3.0 + 16.0 * kEps) * kEps;
constexpr double kIccErrBoundA = (10.0 + 96.0 * kEps) * kEps;
/// Semi-static incircle tier: |det| > kIccStatic * m^4 certifies the sign,
/// where m bounds every coordinate difference. The true permanent is at most
/// 12*m^4; the factor 16 absorbs the rounding of m^2 and m^4 themselves.
constexpr double kIccStatic = 16.0 * kIccErrBoundA;
}  // namespace predicates_fast_detail

/// Sign-exact orientation test with the floating-point filter inlined at the
/// call site. Returns the stage-A determinant when the filter certifies its
/// sign, otherwise the exact adaptive result. Consume only the sign.
inline double orient2d_fast(Vec2 a, Vec2 b, Vec2 c) {
  const double detleft = (a.x - c.x) * (b.y - c.y);
  const double detright = (a.y - c.y) * (b.x - c.x);
  const double det = detleft - detright;
  // Symmetric form of Shewchuk's stage-A branch ladder: when detleft and
  // detright have opposite signs the bound is trivially met (detsum == |det|)
  // and the sign is certified without the sign enumeration.
  const double detsum = std::fabs(detleft) + std::fabs(detright);
  const double errbound = predicates_fast_detail::kCcwErrBoundA * detsum;
  if (det > errbound || -det > errbound) return det;
  return orient2d(a, b, c);
}

/// Sign-exact incircle test with a semi-static filter and the stage-A filter
/// inlined at the call site; falls through to the exact adaptive predicate on
/// an inconclusive sign. Consume only the sign.
inline double incircle_fast(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  const double adx = a.x - d.x;
  const double bdx = b.x - d.x;
  const double cdx = c.x - d.x;
  const double ady = a.y - d.y;
  const double bdy = b.y - d.y;
  const double cdy = c.y - d.y;

  const double bdxcdy = bdx * cdy;
  const double cdxbdy = cdx * bdy;
  const double alift = adx * adx + ady * ady;

  const double cdxady = cdx * ady;
  const double adxcdy = adx * cdy;
  const double blift = bdx * bdx + bdy * bdy;

  const double adxbdy = adx * bdy;
  const double bdxady = bdx * ady;
  const double clift = cdx * cdx + cdy * cdy;

  const double det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) +
                     clift * (adxbdy - bdxady);

  // Tier 1 (semi-static): one max-magnitude bound instead of the permanent.
  const double mx = std::fmax(std::fmax(std::fabs(adx), std::fabs(bdx)),
                              std::fabs(cdx));
  const double my = std::fmax(std::fmax(std::fabs(ady), std::fabs(bdy)),
                              std::fabs(cdy));
  const double m = std::fmax(mx, my);
  const double m2 = m * m;
  const double statbound = predicates_fast_detail::kIccStatic * (m2 * m2);
  if (det > statbound || -det > statbound) return det;

  // Tier 2 (dynamic stage A): the exact permanent-scaled bound.
  const double permanent = (std::fabs(bdxcdy) + std::fabs(cdxbdy)) * alift +
                           (std::fabs(cdxady) + std::fabs(adxcdy)) * blift +
                           (std::fabs(adxbdy) + std::fabs(bdxady)) * clift;
  const double errbound = predicates_fast_detail::kIccErrBoundA * permanent;
  if (det > errbound || -det > errbound) return det;

  return incircle(a, b, c, d);
}

}  // namespace aero
