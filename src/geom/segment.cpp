#include "geom/segment.hpp"

#include <algorithm>
#include <cmath>

#include "geom/predicates.hpp"

namespace aero {

namespace {

// Representative point of the overlap of two collinear segments.
Vec2 collinear_overlap_point(const Segment& s1, const Segment& s2) {
  // Order the four endpoints along the dominant axis and take the midpoint of
  // the middle two; for touching segments this is the shared endpoint.
  Vec2 pts[4] = {s1.a, s1.b, s2.a, s2.b};
  const bool use_x =
      std::fabs(s1.b.x - s1.a.x) >= std::fabs(s1.b.y - s1.a.y);
  std::sort(pts, pts + 4, [use_x](Vec2 p, Vec2 q) {
    return use_x ? p.x < q.x : p.y < q.y;
  });
  return midpoint(pts[1], pts[2]);
}

}  // namespace

IntersectResult intersect(const Segment& s1, const Segment& s2) {
  const double d1 = orient2d(s2.a, s2.b, s1.a);
  const double d2 = orient2d(s2.a, s2.b, s1.b);
  const double d3 = orient2d(s1.a, s1.b, s2.a);
  const double d4 = orient2d(s1.a, s1.b, s2.b);

  IntersectResult res;

  if (((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0)) &&
      ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))) {
    // Proper crossing. Solve for the point with the (well-conditioned here)
    // parametric form; the classification above is exact.
    const Vec2 r = s1.b - s1.a;
    const Vec2 s = s2.b - s2.a;
    const double denom = r.cross(s);
    const double t = (s2.a - s1.a).cross(s) / denom;
    res.kind = IntersectKind::kProper;
    res.t = std::clamp(t, 0.0, 1.0);
    res.point = lerp(s1.a, s1.b, res.t);
    return res;
  }

  // Collinear: all four orientations are zero. Distinguish a genuine
  // 1-dimensional overlap from segments that merely touch at an endpoint.
  if (d1 == 0.0 && d2 == 0.0 && d3 == 0.0 && d4 == 0.0) {
    if (!s1.bbox().intersects(s2.bbox())) return res;
    const bool use_x =
        std::fabs(s1.b.x - s1.a.x) >= std::fabs(s1.b.y - s1.a.y);
    const auto coord = [use_x](Vec2 p) { return use_x ? p.x : p.y; };
    const double lo1 = std::min(coord(s1.a), coord(s1.b));
    const double hi1 = std::max(coord(s1.a), coord(s1.b));
    const double lo2 = std::min(coord(s2.a), coord(s2.b));
    const double hi2 = std::max(coord(s2.a), coord(s2.b));
    const double lo = std::max(lo1, lo2);
    const double hi = std::min(hi1, hi2);
    if (lo > hi) return res;  // disjoint along the carrier line
    const Vec2 r = s1.b - s1.a;
    const double rr = r.norm2();
    if (lo == hi) {
      // Touching at a single shared point.
      res.kind = IntersectKind::kEndpoint;
      res.point = coord(s1.a) == lo ? s1.a
                  : coord(s1.b) == lo ? s1.b
                  : coord(s2.a) == lo ? s2.a
                                      : s2.b;
      res.t = rr > 0.0
                  ? std::clamp((res.point - s1.a).dot(r) / rr, 0.0, 1.0)
                  : 0.0;
      return res;
    }
    res.kind = IntersectKind::kCollinear;
    res.point = collinear_overlap_point(s1, s2);
    res.t = rr > 0.0 ? std::clamp((res.point - s1.a).dot(r) / rr, 0.0, 1.0)
                     : 0.0;
    return res;
  }

  // Endpoint touch: exactly one orientation is zero and that endpoint lies
  // on the other closed segment.
  auto endpoint_hit = [&](Vec2 p, const Segment& other,
                          double t_on_s1) -> bool {
    if (!on_segment(other.a, other.b, p)) return false;
    res.kind = IntersectKind::kEndpoint;
    res.point = p;
    res.t = t_on_s1;
    return true;
  };

  if (d1 == 0.0 && endpoint_hit(s1.a, s2, 0.0)) return res;
  if (d2 == 0.0 && endpoint_hit(s1.b, s2, 1.0)) return res;
  if (d3 == 0.0 && on_segment(s1.a, s1.b, s2.a)) {
    res.kind = IntersectKind::kEndpoint;
    res.point = s2.a;
    const Vec2 r = s1.b - s1.a;
    const double rr = r.norm2();
    res.t = rr > 0.0 ? std::clamp((s2.a - s1.a).dot(r) / rr, 0.0, 1.0) : 0.0;
    return res;
  }
  if (d4 == 0.0 && on_segment(s1.a, s1.b, s2.b)) {
    res.kind = IntersectKind::kEndpoint;
    res.point = s2.b;
    const Vec2 r = s1.b - s1.a;
    const double rr = r.norm2();
    res.t = rr > 0.0 ? std::clamp((s2.b - s1.a).dot(r) / rr, 0.0, 1.0) : 0.0;
    return res;
  }
  return res;
}

bool segments_intersect(const Segment& s1, const Segment& s2) {
  return static_cast<bool>(intersect(s1, s2));
}

unsigned cohen_sutherland_outcode(Vec2 p, const BBox2& box) {
  unsigned code = 0;
  if (p.x < box.lo.x) {
    code |= 1u;  // left
  } else if (p.x > box.hi.x) {
    code |= 2u;  // right
  }
  if (p.y < box.lo.y) {
    code |= 4u;  // bottom
  } else if (p.y > box.hi.y) {
    code |= 8u;  // top
  }
  return code;
}

std::optional<Segment> clip_to_box(Vec2 a, Vec2 b, const BBox2& box) {
  unsigned code_a = cohen_sutherland_outcode(a, box);
  unsigned code_b = cohen_sutherland_outcode(b, box);

  // Classic Cohen–Sutherland loop: trivially accept when both inside,
  // trivially reject when both outcodes share a side, otherwise clip the
  // endpoint that is outside against one violated boundary and re-code.
  while (true) {
    if ((code_a | code_b) == 0u) return Segment{a, b};
    if ((code_a & code_b) != 0u) return std::nullopt;

    const unsigned out = code_a != 0u ? code_a : code_b;
    Vec2 p;
    if (out & 8u) {  // above
      p.x = a.x + (b.x - a.x) * (box.hi.y - a.y) / (b.y - a.y);
      p.y = box.hi.y;
    } else if (out & 4u) {  // below
      p.x = a.x + (b.x - a.x) * (box.lo.y - a.y) / (b.y - a.y);
      p.y = box.lo.y;
    } else if (out & 2u) {  // right
      p.y = a.y + (b.y - a.y) * (box.hi.x - a.x) / (b.x - a.x);
      p.x = box.hi.x;
    } else {  // left
      p.y = a.y + (b.y - a.y) * (box.lo.x - a.x) / (b.x - a.x);
      p.x = box.lo.x;
    }

    if (out == code_a) {
      a = p;
      code_a = cohen_sutherland_outcode(a, box);
    } else {
      b = p;
      code_b = cohen_sutherland_outcode(b, box);
    }
  }
}

bool segment_intersects_box(Vec2 a, Vec2 b, const BBox2& box) {
  return clip_to_box(a, b, box).has_value();
}

double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 == 0.0) return distance(p, a);
  const double t = std::clamp((p - a).dot(ab) / len2, 0.0, 1.0);
  return distance(p, a + ab * t);
}

bool point_in_polygon(Vec2 p, std::span<const Vec2> polygon) {
  const std::size_t n = polygon.size();
  bool inside = false;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = polygon[i];
    const Vec2 b = polygon[(i + 1) % n];
    if (on_segment(a, b, p)) return true;
    // Half-open vertical span rule + exact side test: the edge crosses the
    // rightward horizontal ray from p iff its endpoints straddle p's y and
    // the crossing lies right of p.
    if ((a.y <= p.y) != (b.y <= p.y)) {
      const double o = orient2d(a, b, p);
      if (b.y > a.y ? o > 0.0 : o < 0.0) inside = !inside;
    }
  }
  return inside;
}

double angle_at(Vec2 a, Vec2 b, Vec2 c) {
  const Vec2 u = (a - b).normalized();
  const Vec2 v = (c - b).normalized();
  return std::atan2(std::fabs(u.cross(v)), u.dot(v));
}

double signed_angle(Vec2 u, Vec2 v) {
  return std::atan2(u.cross(v), u.dot(v));
}

}  // namespace aero
