#pragma once

// Biased Randomized Insertion Order (BRIO) with Hilbert-curve locality.
//
// Amenta, Choi & Rote ("Incremental constructions con BRIO", SoCG 2003):
// assign every point to a round by repeated fair coin flips (about half the
// points land in the last round, a quarter in the one before, ...), insert
// the rounds smallest-first, and order the points *within* each round along
// a space-filling curve. The coin flips preserve the randomized-incremental
// expected-work bounds; the curve order keeps consecutive insertions
// spatially adjacent, so the walk-from-previous-triangle point location in
// DelaunayMesh::locate() stays O(1) steps per insert.
//
// Everything here is deterministic: the "coin" is a splitmix64 hash of the
// point's position in the input array, so a given input always produces the
// same order (meshes must be bit-reproducible across runs).

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"

namespace aero {

/// Distance along the Hilbert curve of order `order` (a 2^order x 2^order
/// grid) for cell (x, y). Exposed for tests; coordinates must be < 2^order.
std::uint64_t hilbert_d(std::uint32_t x, std::uint32_t y, int order);

/// The BRIO insertion permutation for `pts`: a vector of indices into `pts`
/// such that inserting in that order is both randomized (per-point coin into
/// geometric rounds) and spatially local (Hilbert sort within each round).
/// Deterministic for a given input. Duplicate points are kept (the mesher
/// merges them on insertion).
std::vector<std::uint32_t> brio_order(const std::vector<Vec2>& pts);

}  // namespace aero
