#pragma once

// Biased Randomized Insertion Order (BRIO) with Hilbert-curve locality.
//
// Amenta, Choi & Rote ("Incremental constructions con BRIO", SoCG 2003):
// assign every point to a round by repeated fair coin flips (about half the
// points land in the last round, a quarter in the one before, ...), insert
// the rounds smallest-first, and order the points *within* each round along
// a space-filling curve. The coin flips preserve the randomized-incremental
// expected-work bounds; the curve order keeps consecutive insertions
// spatially adjacent, so the walk-from-previous-triangle point location in
// DelaunayMesh::locate() stays O(1) steps per insert.
//
// Everything here is deterministic: the "coin" is a splitmix64 hash of the
// point's position in the input array, so a given input always produces the
// same order (meshes must be bit-reproducible across runs).

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"

namespace aero {

/// splitmix64: the deterministic per-index "coin"/shuffle hash used by the
/// BRIO round assignment, the scatter order, and the parallel inserter's
/// per-point walk seeds. Stateless, so every consumer gets the same value
/// for the same index regardless of call order or thread.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Distance along the Hilbert curve of order `order` (a 2^order x 2^order
/// grid) for cell (x, y). Exposed for tests; coordinates must be < 2^order.
std::uint64_t hilbert_d(std::uint32_t x, std::uint32_t y, int order);

/// The BRIO insertion permutation for `pts`: a vector of indices into `pts`
/// such that inserting in that order is both randomized (per-point coin into
/// geometric rounds) and spatially local (Hilbert sort within each round).
/// Deterministic for a given input. Duplicate points are kept (the mesher
/// merges them on insertion).
std::vector<std::uint32_t> brio_order(const std::vector<Vec2>& pts);

/// The scatter insertion permutation for the intra-rank parallel kernel:
/// the same geometric BRIO rounds as brio_order (each round doubles the
/// committed density, keeping every locate walk short), but *within* a round
/// the points are shuffled pseudorandomly instead of Hilbert-sorted. A
/// speculation window is a consecutive chunk of this order, so scattering
/// within rounds spreads each window uniformly over the domain -- two points
/// of one window almost never touch overlapping cavities, which is what
/// keeps the deterministic conflict-resolution fallback rare. Deterministic
/// for a given input, like brio_order.
std::vector<std::uint32_t> brio_scatter_order(const std::vector<Vec2>& pts);

}  // namespace aero
